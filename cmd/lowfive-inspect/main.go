// Command lowfive-inspect dumps the metadata hierarchy of a native
// container file (the Base VOL's on-disk format): groups, datasets with
// their types and extents, attributes, and (with -stats) value summaries.
// With -run it instead pretty-prints a run artifact written by
// lowfive-bench -profile -stats-out: the aggregated serve/query counters,
// the per-OST load, the metrics snapshot table, and any retained slow
// queries.
//
// Usage:
//
//	lowfive-inspect [-stats] file.h5
//	lowfive-inspect -run run.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"lowfive/h5"
	"lowfive/internal/harness"
	"lowfive/internal/inspect"
	"lowfive/internal/native"
)

func main() {
	stats := flag.Bool("stats", false, "compute min/max/mean for numeric datasets")
	run := flag.Bool("run", false, "treat the argument as a run artifact JSON (from lowfive-bench -profile -stats-out) and print its stats and metrics")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lowfive-inspect [-stats] <container-file>\n       lowfive-inspect -run <run-artifact.json>")
		os.Exit(2)
	}
	path := flag.Arg(0)

	if *run {
		if err := dumpRun(path); err != nil {
			fmt.Fprintf(os.Stderr, "lowfive-inspect: %v\n", err)
			os.Exit(1)
		}
		return
	}

	conn := native.New(native.OSBackend(filepath.Dir(path)))
	f, err := h5.OpenFile(filepath.Base(path), h5.NewFileAccessProps(conn))
	if err != nil {
		fmt.Fprintf(os.Stderr, "lowfive-inspect: %v\n", err)
		os.Exit(1)
	}
	if err := inspect.Dump(os.Stdout, f, inspect.Options{Stats: *stats}); err != nil {
		fmt.Fprintf(os.Stderr, "lowfive-inspect: %v\n", err)
		os.Exit(1)
	}
}

// dumpRun reads a RunArtifact JSON and pretty-prints it.
func dumpRun(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	a, err := harness.ReadRunArtifact(f)
	if err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	a.WriteText(os.Stdout)
	return nil
}
