// Command lowfive-inspect dumps the metadata hierarchy of a native
// container file (the Base VOL's on-disk format): groups, datasets with
// their types and extents, attributes, and (with -stats) value summaries.
//
// Usage:
//
//	lowfive-inspect [-stats] file.h5
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"lowfive/h5"
	"lowfive/internal/inspect"
	"lowfive/internal/native"
)

func main() {
	stats := flag.Bool("stats", false, "compute min/max/mean for numeric datasets")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lowfive-inspect [-stats] <container-file>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	conn := native.New(native.OSBackend(filepath.Dir(path)))
	f, err := h5.OpenFile(filepath.Base(path), h5.NewFileAccessProps(conn))
	if err != nil {
		fmt.Fprintf(os.Stderr, "lowfive-inspect: %v\n", err)
		os.Exit(1)
	}
	if err := inspect.Dump(os.Stdout, f, inspect.Options{Stats: *stats}); err != nil {
		fmt.Fprintf(os.Stderr, "lowfive-inspect: %v\n", err)
		os.Exit(1)
	}
}
