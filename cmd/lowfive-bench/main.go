// Command lowfive-bench regenerates the paper's synthetic-benchmark tables
// and figures (Table I and Figures 5–9 and 11). Each figure is printed as
// an aligned text table: one row per total process count, one column per
// transport, completion time in seconds.
//
// Usage:
//
//	lowfive-bench                      # all experiments at default scale
//	lowfive-bench -exp fig7            # a single experiment
//	lowfive-bench -scales 4,16,64,256,1024 -factor 100 -trials 3
//	lowfive-bench -quick               # tiny smoke-test configuration
//	lowfive-bench -profile             # one instrumented exchange + summary
//	lowfive-bench -trace out.json -profile   # also write a Chrome trace
//	lowfive-bench -faults              # fault + supervised-recovery sweeps (chaos testing)
//	lowfive-bench -storm               # query-storm overload sweep (admission control, load shedding)
//	lowfive-bench -json                # write BENCH_<date>.json benchmark baseline
//	lowfive-bench -compare BENCH_2026-08-06.json -bench-iters 1   # warn-only diff vs baseline
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"lowfive/internal/harness"
	"lowfive/internal/rankmain"
	"lowfive/internal/workload"
	"lowfive/metrics"
	"lowfive/trace"
)

func main() {
	// The sock-transport smoke spawns one OS process per world rank by
	// re-executing this binary; intercept those children before flags.
	rankmain.ChildFromEnv()

	var (
		exp          = flag.String("exp", "all", "experiment: table1|fig5|fig6|fig7|fig8|fig9|fig11|overlap|all")
		scales       = flag.String("scales", "", "comma-separated total process counts (default 4,16,64,256)")
		factor       = flag.Int64("factor", 0, "divide the paper's per-producer element counts (10^6) by this (default 10)")
		large        = flag.Int64("large-factor", 0, "scale factor for the Fig. 11 large-data runs (default 1 = the paper-size data)")
		trials       = flag.Int("trials", 0, "trials averaged per point (default 3, as in the paper)")
		alpha        = flag.Duration("net-alpha", -1, "interconnect per-message latency (default 2ms, the scaled-Aries regime)")
		beta         = flag.Float64("net-beta", 0, "interconnect bandwidth, bytes/s (default 50e6, the scaled-Aries regime)")
		quick        = flag.Bool("quick", false, "tiny configuration for a fast smoke run")
		format       = flag.String("format", "table", "output format: table|csv")
		verbose      = flag.Bool("v", true, "print per-trial progress")
		traceOut     = flag.String("trace", "", "write a Chrome trace_event JSON of one profiled exchange to this file (implies -profile)")
		profile      = flag.Bool("profile", false, "run one instrumented exchange and print its per-task per-phase summary instead of the figure suite")
		faults       = flag.Bool("faults", false, "run the fault-injection sweep: exchanges under seeded chaos plans, checked bit-for-bit against a fault-free baseline")
		storm        = flag.Bool("storm", false, "run the query-storm overload sweep: a greedy tenant saturates admission while the favored tenant's p99 stays bounded and admitted data validates bit-for-bit")
		stormClients = flag.Int("storm-clients", 0, "greedy-tenant closed-loop client count for -storm (0 = default tuning)")
		stormZipf    = flag.Float64("storm-zipf", 0, "zipf skew of storm box popularity, must be > 1 (0 = default 1.2)")
		stormQueries = flag.Int("storm-queries", 0, "queries per favored client for -storm — the closed-loop stand-in for a storm duration (0 = default tuning)")
		stormSeed    = flag.Uint64("storm-seed", benchStormSeed, "seed for the storm's deterministic query sequences")
		seed         = flag.Int64("seed", 0, "seed for the fault-injection plans (0 defers to -fault-seed)")
		oldSeed      = flag.Int64("fault-seed", 1, "deprecated alias for -seed")
		jsonOut      = flag.Bool("json", false, "measure the allocation-sensitive benchmarks (Fig 5/7/11, redistribution) and write BENCH_<date>.json")
		compare      = flag.String("compare", "", "measure a fresh benchmark run and diff it against this committed BENCH_*.json baseline (warn-only; writes nothing)")
		iters        = flag.Int("bench-iters", 0, "fixed iteration count for -json/-compare measurements (0 = auto-scale until stable)")
		outFile      = flag.String("out", "", "output path for -json (default BENCH_<date>.json in the current directory)")
		validate     = flag.String("validate", "", "validate a BENCH_*.json file's metrics-plane latency fields and exit")
		httpAddr     = flag.String("http", "", "serve live metrics (/metrics, /metrics.json, /stats, /slow) on this address while the run executes (e.g. :8080 or 127.0.0.1:0)")
		statsOut     = flag.String("stats-out", "", "with -profile, also write the run artifact (stats + metrics snapshot + slow queries) as JSON to this file")
		transport    = flag.String("transport", harness.TransportChan, "message engine: chan (in-proc, cost-modeled — runs the figure suite) or sock (real sockets, one process per rank — runs the socket smoke sweep)")
	)
	flag.Parse()

	cfg := harness.DefaultConfig()
	if *quick {
		cfg = harness.QuickConfig()
	}
	if *scales != "" {
		cfg.Scales = nil
		for _, s := range strings.Split(*scales, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 4 {
				fmt.Fprintf(os.Stderr, "bad scale %q (need integers >= 4)\n", s)
				os.Exit(2)
			}
			cfg.Scales = append(cfg.Scales, v)
		}
	}
	if *factor > 0 {
		cfg.ScaleFactor = *factor
	}
	if *large > 0 {
		cfg.LargeFactor = *large
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *alpha >= 0 {
		cfg.NetAlpha = *alpha
	}
	if *beta > 0 {
		cfg.NetBeta = *beta
	}
	cfg.Verbose = *verbose
	cfg.Log = os.Stderr
	cfg.Transport = *transport

	if *validate != "" {
		if err := validateBenchJSON(*validate); err != nil {
			fmt.Fprintf(os.Stderr, "bench validate failed: %v\n", err)
			os.Exit(1)
		}
		return
	}

	switch *transport {
	case harness.TransportChan:
	case harness.TransportSock:
		if *jsonOut {
			// The sock flavor of -json: the chan report's distributed-VOL
			// cases re-measured over real rank processes.
			if err := runBenchJSONSock(cfg, *outFile); err != nil {
				fmt.Fprintf(os.Stderr, "sock bench json failed: %v\n", err)
				os.Exit(1)
			}
			return
		}
		if *faults {
			if err := runSockFaults(cfg); err != nil {
				fmt.Fprintf(os.Stderr, "sock fault sweep failed: %v\n", err)
				os.Exit(1)
			}
			return
		}
		if err := runSockSmoke(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "sock smoke failed: %v\n", err)
			os.Exit(1)
		}
		return
	default:
		fmt.Fprintf(os.Stderr, "unknown -transport %q (want chan or sock)\n", *transport)
		os.Exit(2)
	}

	if *httpAddr != "" {
		cfg.DebugAddr = *httpAddr
		addr, srv, err := cfg.EnableDebug()
		if err != nil {
			fmt.Fprintf(os.Stderr, "debug server failed: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "live metrics: http://%s/ (/metrics, /metrics.json, /stats, /slow)\n", addr)
	}

	if *profile || *traceOut != "" {
		if err := runProfile(cfg, *traceOut, *statsOut); err != nil {
			fmt.Fprintf(os.Stderr, "profile failed: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *compare != "" {
		if err := runBenchCompare(cfg, *compare, *iters); err != nil {
			fmt.Fprintf(os.Stderr, "bench compare failed: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *jsonOut {
		if err := runBenchJSON(cfg, *iters, *outFile); err != nil {
			fmt.Fprintf(os.Stderr, "bench json failed: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *faults {
		if *seed == 0 {
			*seed = *oldSeed
		}
		if err := runFaults(cfg, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "fault sweep failed: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *storm {
		st := workload.StormSpec{Seed: *stormSeed, ZipfS: *stormZipf}
		tune := harness.DefaultStormTuning()
		if *stormClients > 0 {
			tune.GreedyClients = *stormClients
		}
		if *stormQueries > 0 {
			tune.FavoredQueries = *stormQueries
		}
		if err := runStorm(cfg, st, tune); err != nil {
			fmt.Fprintf(os.Stderr, "storm sweep failed: %v\n", err)
			os.Exit(1)
		}
		return
	}

	type experiment struct {
		name string
		run  func() (harness.Figure, error)
	}
	experiments := []experiment{
		{"fig5", cfg.Fig5},
		{"fig6", cfg.Fig6},
		{"fig7", cfg.Fig7},
		{"fig8", cfg.Fig8},
		{"fig9", cfg.Fig9},
		{"fig11", cfg.Fig11},
		{"overlap", cfg.FigOverlap},
	}

	want := strings.ToLower(*exp)
	if want == "table1" || want == "all" {
		cfg.PrintTableI(os.Stdout)
		fmt.Println()
		if want == "table1" {
			return
		}
	}
	ran := false
	for _, e := range experiments {
		if want != "all" && want != e.name {
			continue
		}
		ran = true
		start := time.Now()
		fig, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.name, err)
			os.Exit(1)
		}
		if *format == "csv" {
			fmt.Printf("# %s: %s\n", fig.ID, fig.Title)
			if err := fig.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "csv: %v\n", err)
				os.Exit(1)
			}
		} else {
			fig.Print(os.Stdout)
		}
		fmt.Fprintf(os.Stderr, "%s completed in %v\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	if !ran && want != "all" && want != "table1" {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// runSockSmoke runs the real-socket transport sweep: each case spawns one
// OS process per world rank (re-executing this binary), runs the
// deterministic producer→consumer workload over TCP or Unix sockets, and
// checks the consumer data is bit-identical to the in-proc chan run — for
// the kill case, across a SIGKILLed and respawned rank process.
func runSockSmoke(cfg harness.Config) error {
	results, err := cfg.SockSmoke(nil)
	if err != nil {
		return err
	}
	fmt.Printf("%-22s %-6s %6s %9s %10s %9s\n", "case", "net", "procs", "restarts", "identical", "seconds")
	for _, r := range results {
		fmt.Printf("%-22s %-6s %6d %9d %10v %9.2f\n",
			r.Case, r.Network, r.Procs, r.Restarts, r.Identical, r.Seconds)
	}
	fmt.Println("all socket cases delivered bit-identical consumer data")
	return nil
}

// runSockFaults runs the wire-level fault matrix over real rank processes:
// hard resets mid-frame, seeded corruption, a throttled wire, a partition
// window, and a SIGKILL stacked on corruption — each case checked
// bit-for-bit against the fault-free in-proc reference, with the summed
// recovery counters printed as proof the faults landed.
func runSockFaults(cfg harness.Config) error {
	results, err := cfg.SockFaultSweep(nil)
	if err != nil {
		return err
	}
	fmt.Printf("%-24s %-6s %6s %9s %11s %8s %7s %10s %9s\n",
		"case", "net", "procs", "restarts", "reconnects", "redials", "resent", "identical", "seconds")
	for _, r := range results {
		fmt.Printf("%-24s %-6s %6d %9d %11d %8d %7d %10v %9.2f\n",
			r.Case, r.Network, r.Procs, r.Restarts, r.Reconnects, r.Redials, r.ResentFrames, r.Identical, r.Seconds)
	}
	fmt.Println("all wire-fault cases delivered bit-identical consumer data")
	return nil
}

// runFaults runs the producer–consumer exchange under each default chaos
// plan at the smallest configured scale, then the partition-and-straggler
// sweep (hedged queries vs link faults), then the supervised-recovery sweep
// (crash-then-restart, hang-then-timeout), and prints all three tables. A
// non-identical or failed case makes the run exit nonzero, naming the seed
// so the exact plan can be replayed with -seed.
func runFaults(cfg harness.Config, seed int64) error {
	// The chaos sweeps are where queries actually go slow, so make sure the
	// observability plane is live: a registry for the per-layer instruments
	// and a flight recorder retaining the slowest queries. On a failed sweep
	// the recorder's contents are dumped so the tail that broke the run is
	// visible without a re-run.
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.Flight == nil {
		cfg.Flight = metrics.NewFlightRecorder(256, harness.DefaultSlowQuery)
	}
	err := runFaultSweeps(cfg, seed)
	if err != nil && cfg.Flight.Total() > 0 {
		fmt.Fprintln(os.Stderr, "\nslow-query flight recorder at failure:")
		cfg.Flight.WriteText(os.Stderr)
	}
	return err
}

func runFaultSweeps(cfg harness.Config, seed int64) error {
	procs := 4
	if len(cfg.Scales) > 0 {
		procs = cfg.Scales[0]
	}
	spec := workload.PaperSpec(procs).Scaled(cfg.ScaleFactor)
	fmt.Fprintf(os.Stderr, "fault sweep: %d producers, %d consumers, seed %d\n",
		spec.Producers, spec.Consumers, seed)
	results, err := cfg.FaultSweep(spec, harness.DefaultFaultCases(seed))
	if err != nil {
		return fmt.Errorf("seed %d: %w", seed, err)
	}
	harness.PrintFaultTable(os.Stdout, results)
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("case %s (seed %d): %w", r.Name, seed, r.Err)
		}
		if !r.Identical {
			return fmt.Errorf("case %s (seed %d): consumer data differs from the fault-free baseline", r.Name, seed)
		}
	}

	fmt.Fprintf(os.Stderr, "partition sweep: link faults vs hedged queries, seed %d\n", seed)
	pres, err := cfg.PartitionSweep(spec, harness.DefaultPartitionCases(seed))
	if err != nil {
		return fmt.Errorf("seed %d: %w", seed, err)
	}
	fmt.Println()
	harness.PrintPartitionTable(os.Stdout, pres)
	for _, r := range pres {
		if r.Err != nil {
			return fmt.Errorf("partition case %s (seed %d): %w", r.Name, seed, r.Err)
		}
	}

	fmt.Fprintf(os.Stderr, "recovery sweep: supervised restart and hang detection, seed %d\n", seed)
	rres, err := cfg.RecoverySweep(harness.DefaultRecoveryCases(seed))
	if err != nil {
		return fmt.Errorf("seed %d: %w", seed, err)
	}
	fmt.Println()
	harness.PrintRecoveryTable(os.Stdout, rres)
	for _, r := range rres {
		if r.Err != nil {
			return fmt.Errorf("recovery case %s (seed %d): %w", r.Name, seed, r.Err)
		}
		if !r.Identical {
			return fmt.Errorf("recovery case %s (seed %d): consumer data differs from the fault-free baseline", r.Name, seed)
		}
	}
	fmt.Println("all fault, partition and recovery cases delivered bit-identical consumer data")
	return nil
}

// runStorm runs the query-storm overload sweep at the smallest configured
// scale: an unloaded baseline, then the storm itself — a greedy tenant
// saturating the producers' admission controllers while the favored tenant
// keeps its weighted fair share. The sweep's contract (sheds happened,
// breakers opened, favored p99 bounded, admitted data bit-identical, no
// leaked chunks) makes the run exit nonzero with the violated clauses named
// and the slow-query flight recorder dumped, replayable via -storm-seed.
func runStorm(cfg harness.Config, st workload.StormSpec, tune harness.StormTuning) error {
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.Flight == nil {
		cfg.Flight = metrics.NewFlightRecorder(256, harness.DefaultSlowQuery)
	}
	procs := 4
	if len(cfg.Scales) > 0 {
		procs = cfg.Scales[0]
	}
	spec := workload.PaperSpec(procs).Scaled(cfg.ScaleFactor)
	fmt.Fprintf(os.Stderr, "query storm: %d producers, %d consumers, %d greedy clients, seed %d\n",
		spec.Producers, spec.Consumers, tune.GreedyClients, st.Seed)
	dumpFlight := func() {
		if cfg.Flight.Total() > 0 {
			fmt.Fprintln(os.Stderr, "\nslow-query flight recorder at failure:")
			cfg.Flight.WriteText(os.Stderr)
		}
	}
	res, err := cfg.StormSweep(spec, st, tune)
	if err != nil {
		dumpFlight()
		return fmt.Errorf("seed %d: %w", st.Seed, err)
	}
	harness.PrintStormTable(os.Stdout, res)
	if reasons := res.FailureReasons(stormP99Factor); len(reasons) > 0 {
		dumpFlight()
		for _, r := range reasons {
			fmt.Fprintf(os.Stderr, "storm contract violated: %s\n", r)
		}
		return fmt.Errorf("seed %d: %d storm contract clause(s) violated", st.Seed, len(reasons))
	}
	fmt.Println("storm sweep passed: admitted data bit-identical, favored p99 bounded, greedy tenant shed and broken")
	return nil
}

// runProfile runs one fully instrumented exchange at the smallest configured
// scale, optionally writes the Chrome trace, and prints the per-task
// per-phase time/bytes summary plus the aggregated serve/query/OST counters.
// With statsOut it also writes the machine-readable run artifact (stats,
// metrics snapshot, slow queries) for lowfive-inspect -run.
func runProfile(cfg harness.Config, traceOut, statsOut string) error {
	procs := 4
	if len(cfg.Scales) > 0 {
		procs = cfg.Scales[0]
	}
	spec := workload.PaperSpec(procs).Scaled(cfg.ScaleFactor)
	fmt.Fprintf(os.Stderr, "profiling one exchange: %d producers, %d consumers\n",
		spec.Producers, spec.Consumers)

	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.Flight == nil {
		cfg.Flight = metrics.NewFlightRecorder(256, harness.DefaultSlowQuery)
	}

	tr := trace.New()
	stats, err := cfg.Profile(tr, spec)
	if err != nil {
		return err
	}

	if statsOut != "" {
		f, err := os.Create(statsOut)
		if err != nil {
			return err
		}
		art := cfg.NewRunArtifact(stats)
		if err := art.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (inspect with lowfive-inspect -run %s)\n", statsOut, statsOut)
	}

	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := tr.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (open with Perfetto or chrome://tracing)\n", traceOut)
	}

	tr.WriteSummaryTable(os.Stdout)

	fmt.Printf("\nproducer serve totals: %d metadata, %d box queries, %d data queries, %d bytes served in %d chunks, %d done, %d parked\n",
		stats.Serve.MetadataRequests, stats.Serve.BoxQueries, stats.Serve.DataQueries,
		stats.Serve.BytesServed, stats.Serve.ChunksServed, stats.Serve.DoneMessages, stats.Serve.ParkedRequests)
	fmt.Printf("consumer query totals: %d metadata, %d box queries, %d data queries, %d bytes fetched in %d chunks, %v blocked waiting\n",
		stats.Query.MetadataFetches, stats.Query.BoxQueries, stats.Query.DataQueries,
		stats.Query.BytesFetched, stats.Query.ChunksFetched, stats.Query.WaitTime.Round(time.Microsecond))
	fmt.Println("pfs per-OST load:")
	for i, o := range stats.OSTs {
		fmt.Printf("  OST %2d: %5d requests, %10d bytes, queue wait %8v, busy %8v\n",
			i, o.Requests, o.Bytes, o.QueueWait.Round(time.Microsecond), o.Busy.Round(time.Microsecond))
	}
	return nil
}
