package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"lowfive/internal/harness"
	"lowfive/internal/workload"
)

// The -json mode re-runs the allocation-sensitive figure benchmarks
// (Fig. 5, 7, 11 and the redistribution shapes) through testing.Benchmark
// and writes BENCH_<date>.json, so CI and developers can diff ns/op, B/op
// and allocs/op against the committed baseline without the go test
// machinery. The cost models are zeroed: the numbers measure the real
// protocol and copy work, exactly like the bench_test.go benchmarks these
// mirror.

type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     int64   `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	ExchangeSec float64 `json:"exchange_s"`
	Iterations  int     `json:"iterations"`
}

type benchReport struct {
	Date       string        `json:"date"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Note       string        `json:"note,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// runBenchJSON measures the benchmark set and writes BENCH_<date>.json to
// the current directory.
func runBenchJSON(cfg harness.Config) error {
	// Zero the modeled delays (the benchmark regime of bench_test.go).
	cfg.Trials = 1
	cfg.NetAlpha = 0
	cfg.NetBeta = 0
	cfg.FS.OSTLatency = 0
	cfg.FS.OSTBandwidth = 0
	cfg.FS.SharedLockLatency = 0
	if cfg.ChunkBytes == 0 {
		// Match bench_test.go: frames scaled to the 100x-scaled-down data.
		cfg.ChunkBytes = 64 << 10
	}

	spec := workload.PaperSpec(16).Scaled(100)
	large := workload.PaperSpec(16).Scaled(10)
	cases := []struct {
		name string
		spec workload.Spec
		fn   func(workload.Spec) (float64, error)
	}{
		{"Fig5FileVsMemory/FileMode", spec, cfg.TrialLowFiveFile},
		{"Fig5FileVsMemory/MemoryMode", spec, cfg.TrialLowFiveMemory},
		{"Fig7MemoryVsPureMPI/LowFiveMemoryMode", spec, cfg.TrialLowFiveMemory},
		{"Fig7MemoryVsPureMPI/PureMPI", spec, cfg.TrialPureMPI},
		{"Fig11LargeData/LowFiveMemoryMode", large, cfg.TrialLowFiveMemory},
		{"Fig11LargeData/DataSpaces", large, cfg.TrialDataSpaces},
		{"Fig11LargeData/PureMPI", large, cfg.TrialPureMPI},
		{"Redistribution/4procs", workload.PaperSpec(4).Scaled(100), cfg.TrialLowFiveMemory},
		{"Redistribution/16procs", workload.PaperSpec(16).Scaled(100), cfg.TrialLowFiveMemory},
		{"Redistribution/64procs", workload.PaperSpec(64).Scaled(100), cfg.TrialLowFiveMemory},
	}

	report := benchReport{
		Date:   time.Now().Format("2006-01-02"),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
	}
	for _, c := range cases {
		c := c
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			total := 0.0
			for i := 0; i < b.N; i++ {
				sec, err := c.fn(c.spec)
				if err != nil {
					benchErr = err
					b.Fatal(err)
				}
				total += sec
			}
			b.ReportMetric(total/float64(b.N), "exchange-s")
		})
		if benchErr != nil {
			return fmt.Errorf("%s: %w", c.name, benchErr)
		}
		res := benchResult{
			Name:        c.name,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			ExchangeSec: r.Extra["exchange-s"],
			Iterations:  r.N,
		}
		fmt.Fprintf(os.Stderr, "%-40s %12d ns/op %12d B/op %8d allocs/op %10.5f exchange-s\n",
			res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.ExchangeSec)
		report.Benchmarks = append(report.Benchmarks, res)
	}

	out := fmt.Sprintf("BENCH_%s.json", report.Date)
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", out)
	return nil
}
