package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"lowfive/internal/harness"
	"lowfive/internal/workload"
)

// The -json mode re-runs the allocation-sensitive figure benchmarks
// (Fig. 5, 7, 11 and the redistribution shapes) through testing.Benchmark
// and writes BENCH_<date>.json, so CI and developers can diff ns/op, B/op
// and allocs/op against the committed baseline without the go test
// machinery. The cost models are zeroed: the numbers measure the real
// protocol and copy work, exactly like the bench_test.go benchmarks these
// mirror.

type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     int64   `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	ExchangeSec float64 `json:"exchange_s"`
	Iterations  int     `json:"iterations"`
}

type benchReport struct {
	Date       string        `json:"date"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Note       string        `json:"note,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

type benchCase struct {
	name string
	spec workload.Spec
	fn   func(workload.Spec) (float64, error)
}

func benchCases(cfg harness.Config) []benchCase {
	spec := workload.PaperSpec(16).Scaled(100)
	large := workload.PaperSpec(16).Scaled(10)
	return []benchCase{
		{"Fig5FileVsMemory/FileMode", spec, cfg.TrialLowFiveFile},
		{"Fig5FileVsMemory/MemoryMode", spec, cfg.TrialLowFiveMemory},
		{"Fig7MemoryVsPureMPI/LowFiveMemoryMode", spec, cfg.TrialLowFiveMemory},
		{"Fig7MemoryVsPureMPI/PureMPI", spec, cfg.TrialPureMPI},
		{"Fig11LargeData/LowFiveMemoryMode", large, cfg.TrialLowFiveMemory},
		{"Fig11LargeData/DataSpaces", large, cfg.TrialDataSpaces},
		{"Fig11LargeData/PureMPI", large, cfg.TrialPureMPI},
		{"Redistribution/4procs", workload.PaperSpec(4).Scaled(100), cfg.TrialLowFiveMemory},
		{"Redistribution/16procs", workload.PaperSpec(16).Scaled(100), cfg.TrialLowFiveMemory},
		{"Redistribution/64procs", workload.PaperSpec(64).Scaled(100), cfg.TrialLowFiveMemory},
	}
}

// measureBenchmarks runs the benchmark set and returns the report. iters > 0
// runs each case a fixed number of times with ReadMemStats accounting (the
// cheap smoke regime); iters == 0 lets testing.Benchmark auto-scale until
// the numbers are stable.
func measureBenchmarks(cfg harness.Config, iters int) (benchReport, error) {
	// Zero the modeled delays (the benchmark regime of bench_test.go).
	cfg.Trials = 1
	cfg.NetAlpha = 0
	cfg.NetBeta = 0
	cfg.FS.OSTLatency = 0
	cfg.FS.OSTBandwidth = 0
	cfg.FS.SharedLockLatency = 0
	if cfg.ChunkBytes == 0 {
		// Match bench_test.go: frames scaled to the 100x-scaled-down data.
		cfg.ChunkBytes = 64 << 10
	}

	report := benchReport{
		Date:   time.Now().Format("2006-01-02"),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
	}
	for _, c := range benchCases(cfg) {
		c := c
		var res benchResult
		if iters > 0 {
			var err error
			res, err = measureFixed(c, iters)
			if err != nil {
				return report, fmt.Errorf("%s: %w", c.name, err)
			}
		} else {
			var benchErr error
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				total := 0.0
				for i := 0; i < b.N; i++ {
					sec, err := c.fn(c.spec)
					if err != nil {
						benchErr = err
						b.Fatal(err)
					}
					total += sec
				}
				b.ReportMetric(total/float64(b.N), "exchange-s")
			})
			if benchErr != nil {
				return report, fmt.Errorf("%s: %w", c.name, benchErr)
			}
			res = benchResult{
				Name:        c.name,
				NsPerOp:     r.NsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
				ExchangeSec: r.Extra["exchange-s"],
				Iterations:  r.N,
			}
		}
		fmt.Fprintf(os.Stderr, "%-40s %12d ns/op %12d B/op %8d allocs/op %10.5f exchange-s\n",
			res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.ExchangeSec)
		report.Benchmarks = append(report.Benchmarks, res)
	}
	return report, nil
}

// measureFixed runs one case a fixed number of iterations, deriving the
// allocation numbers from runtime.MemStats deltas. Cruder than
// testing.Benchmark (concurrent GC noise is not filtered), which is fine
// for the warn-only smoke comparison it exists for.
func measureFixed(c benchCase, iters int) (benchResult, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	total := 0.0
	for i := 0; i < iters; i++ {
		sec, err := c.fn(c.spec)
		if err != nil {
			return benchResult{}, err
		}
		total += sec
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return benchResult{
		Name:        c.name,
		NsPerOp:     elapsed.Nanoseconds() / int64(iters),
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(iters),
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(iters),
		ExchangeSec: total / float64(iters),
		Iterations:  iters,
	}, nil
}

// runBenchJSON measures the benchmark set and writes BENCH_<date>.json to
// the current directory.
func runBenchJSON(cfg harness.Config, iters int) error {
	report, err := measureBenchmarks(cfg, iters)
	if err != nil {
		return err
	}

	out := fmt.Sprintf("BENCH_%s.json", report.Date)
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", out)
	return nil
}

// Regression thresholds of the warn-only comparison: smoke runs are noisy
// (single iteration, shared CI machines), so only large movements are worth
// flagging. Allocation counts are the steadiest of the three metrics.
const (
	warnNsRatio     = 1.5
	warnBytesRatio  = 1.3
	warnAllocsRatio = 1.2
)

// runBenchCompare measures a fresh run and diffs it against a committed
// BENCH_*.json baseline. It is warn-only: regressions are printed, nothing
// is written, and the exit status stays zero unless the measurement itself
// (or reading the baseline) fails.
func runBenchCompare(cfg harness.Config, baselineFile string, iters int) error {
	raw, err := os.ReadFile(baselineFile)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var baseline benchReport
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselineFile, err)
	}
	base := map[string]benchResult{}
	for _, b := range baseline.Benchmarks {
		base[b.Name] = b
	}

	fresh, err := measureBenchmarks(cfg, iters)
	if err != nil {
		return err
	}

	ratio := func(now, then int64) float64 {
		if then <= 0 {
			return 1
		}
		return float64(now) / float64(then)
	}
	fmt.Printf("Benchmark comparison vs %s (%s, warn-only)\n", baselineFile, baseline.Date)
	fmt.Printf("%-40s %10s %10s %10s\n", "benchmark", "ns/op", "B/op", "allocs/op")
	warned := 0
	for _, f := range fresh.Benchmarks {
		b, ok := base[f.Name]
		if !ok {
			fmt.Printf("%-40s %33s\n", f.Name, "(not in baseline)")
			continue
		}
		rn, rb, ra := ratio(f.NsPerOp, b.NsPerOp), ratio(f.BytesPerOp, b.BytesPerOp), ratio(f.AllocsPerOp, b.AllocsPerOp)
		mark := ""
		if rn > warnNsRatio || rb > warnBytesRatio || ra > warnAllocsRatio {
			mark = "  <-- WARN: regression vs baseline"
			warned++
		}
		fmt.Printf("%-40s %9.2fx %9.2fx %9.2fx%s\n", f.Name, rn, rb, ra, mark)
	}
	for _, b := range baseline.Benchmarks {
		found := false
		for _, f := range fresh.Benchmarks {
			if f.Name == b.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("%-40s %33s\n", b.Name, "(baseline case no longer measured)")
		}
	}
	if warned > 0 {
		fmt.Printf("%d benchmark(s) regressed past the warn thresholds (ns>%.1fx, B>%.1fx, allocs>%.1fx)\n",
			warned, warnNsRatio, warnBytesRatio, warnAllocsRatio)
	} else {
		fmt.Println("all benchmarks within the warn thresholds of the baseline")
	}
	return nil
}
