package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"lowfive/internal/harness"
	"lowfive/internal/workload"
	"lowfive/metrics"
)

// The -json mode re-runs the allocation-sensitive figure benchmarks
// (Fig. 5, 7, 11 and the redistribution shapes) through testing.Benchmark
// and writes BENCH_<date>.json, so CI and developers can diff ns/op, B/op
// and allocs/op against the committed baseline without the go test
// machinery. The cost models are zeroed: the numbers measure the real
// protocol and copy work, exactly like the bench_test.go benchmarks these
// mirror.

type benchResult struct {
	Name string `json:"name"`
	// Transport names the message engine the case ran over: "chan" for the
	// in-proc cost-modeled engine (every figure benchmark), "sock" for the
	// multi-process socket engine. Enforced non-empty by -validate.
	Transport   string  `json:"transport"`
	NsPerOp     int64   `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	ExchangeSec float64 `json:"exchange_s"`
	Iterations  int     `json:"iterations"`
	// QPS and the query latency quantiles come from the metrics plane: each
	// case runs against a fresh registry, and the consumer-side
	// core.query.latency_us histogram yields queries/second over the case's
	// accumulated wall time plus its p50/p99 in microseconds. Zero for
	// transports with no distributed-VOL query path (file mode, pure MPI,
	// DataSpaces).
	QPS        float64 `json:"qps"`
	QueryP50Us int64   `json:"query_p50_us"`
	QueryP99Us int64   `json:"query_p99_us"`
	// SockSec is the wall time of the same exchange over the real-socket
	// engine: one OS process per rank, Unix sockets, spawn and world
	// formation included. Present on every distributed-VOL case so the
	// two engines stay comparable side by side; absent for workloads with
	// no sock analogue (file mode, pure MPI, DataSpaces).
	SockSec float64 `json:"sock_s,omitempty"`
}

// recoveryBench is one staged-log recovery case of the report: the fault
// scenario, the wall time restarted ranks spent in log replay, and whether
// the consumers still saw bit-identical data.
type recoveryBench struct {
	Name      string  `json:"name"`
	ReplayMs  float64 `json:"replay_ms"`
	Restarts  int     `json:"restarts"`
	Fallbacks int     `json:"fallbacks"`
	Identical bool    `json:"identical"`
}

// stormBench is one tenant's view of the query-storm sweep: closed-loop
// throughput, admitted-query tail latency, and the shed fraction that
// admission control converted into typed refusals. The favored row carries
// the unloaded-baseline p99 the storm p99 is bounded against; the greedy row
// carries the breaker-open count proving client-side fast-fail engaged.
type stormBench struct {
	Name          string  `json:"name"`
	Tenant        string  `json:"tenant"`
	QPS           float64 `json:"qps"`
	QueryP99Us    int64   `json:"query_p99_us"`
	UnloadedP99Us int64   `json:"unloaded_p99_us,omitempty"`
	ShedRate      float64 `json:"shed_rate"`
	Issued        int     `json:"issued"`
	Admitted      int     `json:"admitted"`
	Shed          int     `json:"shed"`
	BreakerOpens  int64   `json:"breaker_opens,omitempty"`
	Identical     bool    `json:"identical"`
}

type benchReport struct {
	Date       string          `json:"date"`
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	Note       string          `json:"note,omitempty"`
	Benchmarks []benchResult   `json:"benchmarks"`
	Recoveries []recoveryBench `json:"recoveries,omitempty"`
	Storms     []stormBench    `json:"storms,omitempty"`
}

type benchCase struct {
	name string
	spec workload.Spec
	// fn is a Config method expression, so each case can run against its own
	// config copy (carrying a fresh metrics registry).
	fn func(harness.Config, workload.Spec) (float64, error)
	// sock marks the cases with a real-socket analogue: the distributed-VOL
	// memory-mode exchange, re-run as one OS process per rank to fill the
	// report's sock_s column.
	sock bool
}

func benchCases() []benchCase {
	spec := workload.PaperSpec(16).Scaled(100)
	large := workload.PaperSpec(16).Scaled(10)
	return []benchCase{
		{"Fig5FileVsMemory/FileMode", spec, harness.Config.TrialLowFiveFile, false},
		{"Fig5FileVsMemory/MemoryMode", spec, harness.Config.TrialLowFiveMemory, true},
		{"Fig7MemoryVsPureMPI/LowFiveMemoryMode", spec, harness.Config.TrialLowFiveMemory, true},
		{"Fig7MemoryVsPureMPI/PureMPI", spec, harness.Config.TrialPureMPI, false},
		{"Fig11LargeData/LowFiveMemoryMode", large, harness.Config.TrialLowFiveMemory, true},
		{"Fig11LargeData/DataSpaces", large, harness.Config.TrialDataSpaces, false},
		{"Fig11LargeData/PureMPI", large, harness.Config.TrialPureMPI, false},
		{"Redistribution/4procs", workload.PaperSpec(4).Scaled(100), harness.Config.TrialLowFiveMemory, true},
		{"Redistribution/16procs", workload.PaperSpec(16).Scaled(100), harness.Config.TrialLowFiveMemory, true},
		{"Redistribution/64procs", workload.PaperSpec(64).Scaled(100), harness.Config.TrialLowFiveMemory, true},
	}
}

// measureBenchmarks runs the benchmark set and returns the report. iters > 0
// runs each case a fixed number of times with ReadMemStats accounting (the
// cheap smoke regime); iters == 0 lets testing.Benchmark auto-scale until
// the numbers are stable.
func measureBenchmarks(cfg harness.Config, iters int) (benchReport, error) {
	// Zero the modeled delays (the benchmark regime of bench_test.go).
	cfg.Trials = 1
	cfg.NetAlpha = 0
	cfg.NetBeta = 0
	cfg.FS.OSTLatency = 0
	cfg.FS.OSTBandwidth = 0
	cfg.FS.SharedLockLatency = 0
	if cfg.ChunkBytes == 0 {
		// Match bench_test.go: frames scaled to the 100x-scaled-down data.
		cfg.ChunkBytes = 64 << 10
	}

	report := benchReport{
		Date:   time.Now().Format("2006-01-02"),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
	}
	for _, c := range benchCases() {
		c := c
		// Each case measures against its own registry, so the query latency
		// histogram covers exactly this case's invocations (across every
		// round testing.Benchmark runs).
		caseCfg := cfg
		caseCfg.Metrics = metrics.NewRegistry()
		var wall time.Duration
		run := func(spec workload.Spec) (float64, error) {
			t0 := time.Now()
			sec, err := c.fn(caseCfg, spec)
			wall += time.Since(t0)
			return sec, err
		}
		var res benchResult
		if iters > 0 {
			var err error
			res, err = measureFixed(c, run, iters)
			if err != nil {
				return report, fmt.Errorf("%s: %w", c.name, err)
			}
		} else {
			var benchErr error
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				total := 0.0
				for i := 0; i < b.N; i++ {
					sec, err := run(c.spec)
					if err != nil {
						benchErr = err
						b.Fatal(err)
					}
					total += sec
				}
				b.ReportMetric(total/float64(b.N), "exchange-s")
			})
			if benchErr != nil {
				return report, fmt.Errorf("%s: %w", c.name, benchErr)
			}
			res = benchResult{
				Name:        c.name,
				NsPerOp:     r.NsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
				ExchangeSec: r.Extra["exchange-s"],
				Iterations:  r.N,
			}
		}
		res.Transport = harness.TransportChan
		res.QPS, res.QueryP50Us, res.QueryP99Us = queryLatency(caseCfg.Metrics, wall)
		if c.sock {
			sockSec, err := cfg.SockVOLWall(c.spec, 1)
			if err != nil {
				return report, fmt.Errorf("%s (sock): %w", c.name, err)
			}
			res.SockSec = sockSec
		}
		fmt.Fprintf(os.Stderr, "%-40s %12d ns/op %12d B/op %8d allocs/op %10.5f exchange-s %8.1f qps %7dus p50 %7dus p99 %8.3f sock-s\n",
			res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.ExchangeSec,
			res.QPS, res.QueryP50Us, res.QueryP99Us, res.SockSec)
		report.Benchmarks = append(report.Benchmarks, res)
	}
	recs, err := measureRecoveries(cfg)
	if err != nil {
		return report, err
	}
	report.Recoveries = recs
	storms, err := measureStorms(cfg)
	if err != nil {
		return report, err
	}
	report.Storms = storms
	return report, nil
}

// benchStormSeed fixes the storm's deterministic query sequences, so the
// committed baseline and every CI re-measurement run the same storm.
const benchStormSeed = 42

// stormP99Factor bounds the favored tenant's storm-phase p99 as a multiple
// of its unloaded baseline p99 — the report-level fairness contract.
const stormP99Factor = 5

// measureStorms runs the query-storm sweep once and distills it into the
// report's per-tenant storm rows. The storm runs its own quick-profile
// config: unlike the allocation benchmarks above, it needs the modeled
// network delays ON — overload only exists when serves take time — and a
// small chunk size so the pool budget is a live constraint.
func measureStorms(cfg harness.Config) ([]stormBench, error) {
	sc := harness.QuickConfig()
	sc.ChunkBytes = 4 << 10
	sc.Metrics = metrics.NewRegistry()
	sc.Flight = metrics.NewFlightRecorder(512, harness.DefaultSlowQuery)
	sc.Verbose = cfg.Verbose
	sc.Log = cfg.Log
	spec := workload.Spec{Producers: 4, Consumers: 2, GridPointsPerProducer: 1000, ParticlesPerProducer: 100}
	res, err := sc.StormSweep(spec, workload.StormSpec{Seed: benchStormSeed}, harness.DefaultStormTuning())
	if err != nil {
		return nil, fmt.Errorf("storm sweep: %w", err)
	}
	if reasons := res.FailureReasons(stormP99Factor); len(reasons) > 0 {
		return nil, fmt.Errorf("storm sweep violated its contract: %s", strings.Join(reasons, "; "))
	}
	rows := stormRows(res)
	for _, s := range rows {
		fmt.Fprintf(os.Stderr, "%-40s %8.1f qps %7dus p99 %8.3f shed_rate %4d issued %4d admitted %4d shed identical=%v\n",
			s.Name, s.QPS, s.QueryP99Us, s.ShedRate, s.Issued, s.Admitted, s.Shed, s.Identical)
	}
	return rows, nil
}

// stormRows flattens one storm result into the report's per-tenant rows.
func stormRows(res harness.StormResult) []stormBench {
	tenantRate := func(shed, issued int) float64 {
		if issued == 0 {
			return 0
		}
		return float64(shed) / float64(issued)
	}
	tenantQPS := func(issued int) float64 {
		if res.StormSeconds <= 0 {
			return 0
		}
		return float64(issued) / res.StormSeconds
	}
	return []stormBench{
		{
			Name: "QueryStorm/favored", Tenant: "favored",
			QPS:           tenantQPS(res.FavoredIssued),
			QueryP99Us:    res.FavoredP99.Microseconds(),
			UnloadedP99Us: res.UnloadedP99.Microseconds(),
			ShedRate:      tenantRate(res.FavoredShed, res.FavoredIssued),
			Issued:        res.FavoredIssued, Admitted: res.FavoredAdmitted, Shed: res.FavoredShed,
			Identical: res.Identical,
		},
		{
			Name: "QueryStorm/greedy", Tenant: "greedy",
			QPS:        tenantQPS(res.GreedyIssued),
			QueryP99Us: res.GreedyP99.Microseconds(),
			ShedRate:   tenantRate(res.GreedyShed, res.GreedyIssued),
			Issued:     res.GreedyIssued, Admitted: res.GreedyAdmitted, Shed: res.GreedyShed,
			BreakerOpens: res.Query.BreakerOpens,
			Identical:    res.Identical,
		},
	}
}

// measureRecoveries runs the staged-log fault sweep once and distills each
// case into the report's recovery entries: replay wall time, restart count,
// PFS fallbacks, and the bit-identity verdict.
func measureRecoveries(cfg harness.Config) ([]recoveryBench, error) {
	results, err := cfg.StagingSweep(harness.DefaultStagingCases())
	if err != nil {
		return nil, fmt.Errorf("staging sweep: %w", err)
	}
	out := make([]recoveryBench, 0, len(results))
	for _, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("staging case %s: %w", r.Name, r.Err)
		}
		out = append(out, recoveryBench{
			Name:      r.Name,
			ReplayMs:  r.ReplayMs,
			Restarts:  r.Stats.RestartCount,
			Fallbacks: r.Stats.StageFallbacks,
			Identical: r.Identical,
		})
		fmt.Fprintf(os.Stderr, "%-40s %12.4f replay_ms %3d restarts %3d fallbacks identical=%v\n",
			"Recovery/"+r.Name, r.ReplayMs, r.Stats.RestartCount, r.Stats.StageFallbacks, r.Identical)
	}
	return out, nil
}

// queryLatency distills a case's registry into the report's latency fields:
// queries/second over the case's total wall time, and the p50/p99 of the
// consumer-side query latency histogram. All zero for cases whose transport
// never touched the distributed VOL.
func queryLatency(reg *metrics.Registry, wall time.Duration) (qps float64, p50, p99 int64) {
	s := reg.Histogram("core.query.latency_us").Snapshot()
	if s.Count == 0 {
		return 0, 0, 0
	}
	if wall > 0 {
		qps = float64(s.Count) / wall.Seconds()
	}
	return qps, int64(s.Quantile(0.50)), int64(s.Quantile(0.99))
}

// measureFixed runs one case a fixed number of iterations, deriving the
// allocation numbers from runtime.MemStats deltas. Cruder than
// testing.Benchmark (concurrent GC noise is not filtered), which is fine
// for the warn-only smoke comparison it exists for.
func measureFixed(c benchCase, run func(workload.Spec) (float64, error), iters int) (benchResult, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	total := 0.0
	for i := 0; i < iters; i++ {
		sec, err := run(c.spec)
		if err != nil {
			return benchResult{}, err
		}
		total += sec
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return benchResult{
		Name:        c.name,
		NsPerOp:     elapsed.Nanoseconds() / int64(iters),
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(iters),
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(iters),
		ExchangeSec: total / float64(iters),
		Iterations:  iters,
	}, nil
}

// runBenchJSON measures the benchmark set and writes BENCH_<date>.json to
// the current directory (or to out when non-empty).
func runBenchJSON(cfg harness.Config, iters int, out string) error {
	report, err := measureBenchmarks(cfg, iters)
	if err != nil {
		return err
	}
	return writeBenchReport(report, out)
}

// runBenchJSONSock writes a sock-engine-only report: the same case names
// as the chan report's distributed-VOL rows, each wall time measured over
// real rank processes. No allocation or query-latency fields — those
// belong to the in-proc engine the testing harness can observe directly.
func runBenchJSONSock(cfg harness.Config, out string) error {
	report := benchReport{
		Date:   time.Now().Format("2006-01-02"),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		Note:   "sock-engine wall times: one OS process per rank over Unix sockets",
	}
	for _, c := range benchCases() {
		if !c.sock {
			continue
		}
		sec, err := cfg.SockVOLWall(c.spec, 1)
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		fmt.Fprintf(os.Stderr, "%-40s %8.3f sock-s\n", c.name, sec)
		report.Benchmarks = append(report.Benchmarks, benchResult{
			Name: c.name, Transport: harness.TransportSock,
			ExchangeSec: sec, SockSec: sec, Iterations: 1,
		})
	}
	return writeBenchReport(report, out)
}

// writeBenchReport writes one report as indented JSON, defaulting the path
// to BENCH_<date>.json in the current directory.
func writeBenchReport(report benchReport, out string) error {
	if out == "" {
		out = fmt.Sprintf("BENCH_%s.json", report.Date)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", out)
	return nil
}

// validateBenchJSON checks a BENCH_*.json file carries the metrics-plane
// latency fields: every case whose transport runs distributed-VOL queries
// (memory mode and the redistribution shapes) must report nonzero qps and
// query p50/p99. CI runs this against a fresh smoke measurement so a wiring
// regression (a histogram silently not recording) fails the build instead
// of shipping an all-zero baseline.
func validateBenchJSON(file string) error {
	raw, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	var report benchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		return fmt.Errorf("parsing %s: %w", file, err)
	}
	if len(report.Benchmarks) == 0 {
		return fmt.Errorf("%s: no benchmarks", file)
	}
	checked, hasChan := 0, false
	for _, b := range report.Benchmarks {
		if b.Transport == "" {
			return fmt.Errorf("%s: %s: transport field missing — every case must name its engine (chan|sock)", file, b.Name)
		}
		if b.Transport == harness.TransportChan {
			hasChan = true
		}
		if !strings.Contains(b.Name, "MemoryMode") && !strings.Contains(b.Name, "Redistribution") {
			continue
		}
		checked++
		// Every distributed-VOL row must carry the sock-engine wall time,
		// whichever engine produced the row: a chan report measures the
		// sock analogue alongside, a sock report is the analogue.
		if b.SockSec <= 0 {
			return fmt.Errorf("%s: %s: sock_s missing or zero — the real-socket wall time was not measured", file, b.Name)
		}
		if b.Transport != harness.TransportChan {
			continue // the query-latency plane exists only in-proc
		}
		if b.QPS <= 0 || b.QueryP50Us <= 0 || b.QueryP99Us <= 0 {
			return fmt.Errorf("%s: %s: query latency fields missing or zero (qps=%g p50=%dus p99=%dus)",
				file, b.Name, b.QPS, b.QueryP50Us, b.QueryP99Us)
		}
		if b.QueryP99Us < b.QueryP50Us {
			return fmt.Errorf("%s: %s: p99 (%dus) below p50 (%dus)", file, b.Name, b.QueryP99Us, b.QueryP50Us)
		}
	}
	if checked == 0 {
		return fmt.Errorf("%s: no distributed-VOL cases to validate", file)
	}
	if !hasChan {
		// A sock-only report carries no staged-log recovery sweep; the
		// wall-time and transport checks above are its whole contract.
		fmt.Printf("%s: %d sock-engine distributed-VOL cases carry nonzero sock_s\n", file, checked)
		return nil
	}
	if len(report.Recoveries) == 0 {
		return fmt.Errorf("%s: no recovery cases — the staged-log sweep did not run", file)
	}
	restarted := 0
	for _, r := range report.Recoveries {
		if !r.Identical {
			return fmt.Errorf("%s: recovery case %s: consumer data not bit-identical", file, r.Name)
		}
		if r.ReplayMs < 0 {
			return fmt.Errorf("%s: recovery case %s: negative replay_ms %g", file, r.Name, r.ReplayMs)
		}
		if r.Restarts > 0 {
			restarted++
			if r.ReplayMs <= 0 {
				return fmt.Errorf("%s: recovery case %s: %d restarts but replay_ms is zero — replay time not measured",
					file, r.Name, r.Restarts)
			}
		}
	}
	if restarted == 0 {
		return fmt.Errorf("%s: no recovery case forced a restart — replay_ms was never exercised", file)
	}
	if err := validateStormRows(file, report.Storms); err != nil {
		return err
	}
	fmt.Printf("%s: %d distributed-VOL cases carry nonzero query latency fields; %d recovery cases carry replay_ms (%d with restarts); %d storm rows carry qps/query_p99_us/shed_rate\n",
		file, checked, len(report.Recoveries), restarted, len(report.Storms))
	return nil
}

// validateStormRows enforces the overload-protection rows of a chan report:
// the query-storm sweep must have run, both tenants must carry live
// throughput and tail-latency numbers, the storm must actually have shed
// (a shed_rate of zero means the sweep silently stopped saturating), the
// greedy tenant's breaker must have opened, and every admitted query must
// have validated bit-identical.
func validateStormRows(file string, storms []stormBench) error {
	if len(storms) == 0 {
		return fmt.Errorf("%s: no storm rows — the query-storm sweep did not run", file)
	}
	byTenant := map[string]stormBench{}
	for _, s := range storms {
		if s.QPS <= 0 || s.QueryP99Us <= 0 {
			return fmt.Errorf("%s: storm row %s: qps/query_p99_us missing or zero (qps=%g p99=%dus)",
				file, s.Name, s.QPS, s.QueryP99Us)
		}
		if !s.Identical {
			return fmt.Errorf("%s: storm row %s: admitted query data not bit-identical", file, s.Name)
		}
		byTenant[s.Tenant] = s
	}
	fav, ok := byTenant["favored"]
	if !ok {
		return fmt.Errorf("%s: storm rows missing the favored tenant", file)
	}
	if fav.UnloadedP99Us <= 0 {
		return fmt.Errorf("%s: storm row %s: unloaded baseline p99 missing", file, fav.Name)
	}
	if lim := stormP99Factor * fav.UnloadedP99Us; fav.QueryP99Us > lim {
		return fmt.Errorf("%s: storm row %s: favored p99 %dus exceeds %dx unloaded p99 %dus",
			file, fav.Name, fav.QueryP99Us, stormP99Factor, fav.UnloadedP99Us)
	}
	greedy, ok := byTenant["greedy"]
	if !ok {
		return fmt.Errorf("%s: storm rows missing the greedy tenant", file)
	}
	if greedy.ShedRate <= 0 || greedy.Shed == 0 {
		return fmt.Errorf("%s: storm row %s: shed_rate is zero — the storm never saturated admission", file, greedy.Name)
	}
	if greedy.BreakerOpens == 0 {
		return fmt.Errorf("%s: storm row %s: no breaker ever opened on the greedy side", file, greedy.Name)
	}
	return nil
}

// Regression thresholds of the warn-only comparison: smoke runs are noisy
// (single iteration, shared CI machines), so only large movements are worth
// flagging. Allocation counts are the steadiest of the three metrics.
const (
	warnNsRatio     = 1.5
	warnBytesRatio  = 1.3
	warnAllocsRatio = 1.2
)

// runBenchCompare measures a fresh run and diffs it against a committed
// BENCH_*.json baseline. It is warn-only: regressions are printed, nothing
// is written, and the exit status stays zero unless the measurement itself
// (or reading the baseline) fails.
func runBenchCompare(cfg harness.Config, baselineFile string, iters int) error {
	raw, err := os.ReadFile(baselineFile)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var baseline benchReport
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselineFile, err)
	}
	base := map[string]benchResult{}
	for _, b := range baseline.Benchmarks {
		base[b.Name] = b
	}

	fresh, err := measureBenchmarks(cfg, iters)
	if err != nil {
		return err
	}

	ratio := func(now, then int64) float64 {
		if then <= 0 {
			return 1
		}
		return float64(now) / float64(then)
	}
	fmt.Printf("Benchmark comparison vs %s (%s, warn-only)\n", baselineFile, baseline.Date)
	fmt.Printf("%-40s %10s %10s %10s\n", "benchmark", "ns/op", "B/op", "allocs/op")
	warned := 0
	for _, f := range fresh.Benchmarks {
		b, ok := base[f.Name]
		if !ok {
			fmt.Printf("%-40s %33s\n", f.Name, "(not in baseline)")
			continue
		}
		rn, rb, ra := ratio(f.NsPerOp, b.NsPerOp), ratio(f.BytesPerOp, b.BytesPerOp), ratio(f.AllocsPerOp, b.AllocsPerOp)
		mark := ""
		if rn > warnNsRatio || rb > warnBytesRatio || ra > warnAllocsRatio {
			mark = "  <-- WARN: regression vs baseline"
			warned++
		}
		fmt.Printf("%-40s %9.2fx %9.2fx %9.2fx%s\n", f.Name, rn, rb, ra, mark)
	}
	for _, b := range baseline.Benchmarks {
		found := false
		for _, f := range fresh.Benchmarks {
			if f.Name == b.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("%-40s %33s\n", b.Name, "(baseline case no longer measured)")
		}
	}
	if warned > 0 {
		fmt.Printf("%d benchmark(s) regressed past the warn thresholds (ns>%.1fx, B>%.1fx, allocs>%.1fx)\n",
			warned, warnNsRatio, warnBytesRatio, warnAllocsRatio)
	} else {
		fmt.Println("all benchmarks within the warn thresholds of the baseline")
	}
	return nil
}
