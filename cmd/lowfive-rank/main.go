// lowfive-rank is one rank process of a sock-transport world. A launcher
// (or a shell script) starts a coordinator and then one lowfive-rank per
// world rank; each process rendezvouses at the coordinator, runs its share
// of the deterministic producer→consumer workload, and consumer ranks
// print their data digest so the launcher can compare runs bit-for-bit.
//
//	lowfive-rank -coordinate -network unix -size 4        # run a coordinator
//	lowfive-rank -coord ADDR -rank 0 -size 4 ...          # run a rank
//
// A respawned rank is relaunched with -inc bumped; its peers treat it as
// a restart of the same world rank (mailbox purge, fresh failure state),
// and the rank re-publishes everything, which consumers deduplicate.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"lowfive/internal/rankmain"
	"lowfive/internal/transport"
)

func main() {
	rankmain.ChildFromEnv() // re-exec entry for harness-spawned children

	var (
		coordinate = flag.Bool("coordinate", false, "run the rendezvous coordinator instead of a rank")
		network    = flag.String("network", "tcp", "transport network: tcp or unix")
		coord      = flag.String("coord", "", "coordinator address to rendezvous at (rank mode)")
		listen     = flag.String("listen", "", "coordinator listen address (coordinator mode; default 127.0.0.1:0 or a temp unix path)")
		rank       = flag.Int("rank", -1, "this process's world rank")
		size       = flag.Int("size", 0, "world size (ranks)")
		inc        = flag.Uint("inc", 0, "incarnation: 0 first launch, bumped per respawn")

		producers  = flag.Int("producers", 0, "producer ranks (default 3/4 of size)")
		epochs     = flag.Int("epochs", 4, "epochs each producer publishes")
		sliceBytes = flag.Int("slice-bytes", 4096, "payload bytes per (producer, consumer, epoch) piece")
		seed       = flag.Int64("seed", 1, "payload seed")
		paceMs     = flag.Int("pace-ms", 0, "per-epoch producer pause in milliseconds")

		workloadF  = flag.String("workload", "digest", "workload: digest (raw tagged slices) or vol (distributed-VOL exchange)")
		gridPoints = flag.Int64("grid-points", 1024, "vol workload: grid points per producer")
		particles  = flag.Int64("particles", 256, "vol workload: particles per producer")
		fastRecov  = flag.Bool("fast-recovery", false, "tighten sock recovery timings for fault testing")
	)
	flag.Parse()

	if *size <= 0 {
		fatalf("-size must be positive")
	}
	if *coordinate {
		runCoordinator(*network, *listen, *size)
		return
	}
	if *coord == "" || *rank < 0 {
		fatalf("rank mode needs -coord and -rank (or -coordinate)")
	}
	p := *producers
	if p <= 0 {
		p = (*size * 3) / 4
		if p == 0 {
			p = 1
		}
	}
	if p >= *size {
		fatalf("-producers %d leaves no consumers in a world of %d", p, *size)
	}
	spec := rankmain.Spec{
		Producers: p, Consumers: *size - p,
		Epochs: *epochs, SliceBytes: *sliceBytes, Seed: *seed, PaceMs: *paceMs,
		Workload: *workloadF, GridPoints: *gridPoints, Particles: *particles,
		FastRecovery: *fastRecov,
	}
	if spec.Workload == "digest" {
		spec.Workload = ""
	}
	digest, st, err := rankmain.RunSockRank(spec, *network, *coord, *rank, uint32(*inc))
	if err != nil {
		fatalf("rank %d: %v", *rank, err)
	}
	fmt.Println(rankmain.FormatSockStats(*rank, st))
	if spec.IsConsumer(*rank) {
		fmt.Println(rankmain.FormatDigest(*rank, digest))
	}
}

// runCoordinator serves the rendezvous registry until interrupted,
// printing the bound address first so launchers can scrape it.
func runCoordinator(network, listen string, size int) {
	if listen == "" {
		if network == "unix" {
			listen = fmt.Sprintf("%s/lowfive-coord-%d.sock", os.TempDir(), os.Getpid())
		} else {
			listen = "127.0.0.1:0"
		}
	}
	c, err := transport.NewCoordinator(network, listen, size)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("LOWFIVE_COORD %s\n", c.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	c.Close()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lowfive-rank: "+format+"\n", args...)
	os.Exit(1)
}
