// Command nyx-reeber regenerates Table II: the cosmology use case coupling
// the Nyx proxy simulation with the Reeber proxy halo finder in three
// scenarios — baseline HDF5 files, AMReX-style plotfiles, and LowFive in
// situ — and prints write/read times and the speed-up columns.
//
// Usage:
//
//	nyx-reeber                          # default: 32^3..128^3, 16+4 procs
//	nyx-reeber -sides 32,64,128 -nyx 64 -reeber 16
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"lowfive/internal/harness"
)

func main() {
	var (
		sides  = flag.String("sides", "", "comma-separated grid sides N for N^3 grids (default 32,64,128)")
		nyxN   = flag.Int("nyx", 0, "Nyx (simulation) processes (default 16; paper used 4096)")
		reeb   = flag.Int("reeber", 0, "Reeber (analysis) processes (default 4; paper used 1024)")
		steps  = flag.Int("steps", 0, "snapshots to write/analyze (default 2, as in the paper)")
		thresh = flag.Float64("threshold", 0, "halo density threshold (default 10)")
		group  = flag.Int("plot-group", 0, "Nyx ranks per plotfile (default 4)")
		format = flag.String("format", "table", "output format: table|csv")
	)
	flag.Parse()

	cfg := harness.DefaultConfig()
	cfg.Verbose = true
	cfg.Log = os.Stderr
	u := harness.DefaultUseCaseConfig()
	if *sides != "" {
		u.GridSides = nil
		for _, s := range strings.Split(*sides, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil || v < 8 {
				fmt.Fprintf(os.Stderr, "bad grid side %q\n", s)
				os.Exit(2)
			}
			u.GridSides = append(u.GridSides, v)
		}
	}
	if *nyxN > 0 {
		u.NyxProcs = *nyxN
	}
	if *reeb > 0 {
		u.ReeberProcs = *reeb
	}
	if *steps > 0 {
		u.Steps = *steps
	}
	if *thresh > 0 {
		u.Threshold = *thresh
	}
	if *group > 0 {
		u.PlotfileGroup = *group
	}

	rows, err := cfg.TableII(u)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nyx-reeber failed: %v\n", err)
		os.Exit(1)
	}
	if *format == "csv" {
		if err := harness.WriteTableIICSV(os.Stdout, rows); err != nil {
			fmt.Fprintf(os.Stderr, "csv: %v\n", err)
			os.Exit(1)
		}
		return
	}
	harness.PrintTableII(os.Stdout, rows)
}
