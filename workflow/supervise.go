// Supervised workflows: RunSupervised runs the same declarative task graph
// as Run, but under a failure Policy. The mpi layer supplies the mechanism
// (heartbeat detection, task teardown, communicator reincarnation); this
// layer supplies the recovery semantics: epoch-aware entry points that
// resume a restarted task from its last completed epoch, automatic
// checkpointing of published files through the base connector (passthru),
// and Rejoin/Reindex of files a previous incarnation had already served.
//
// Epoch contract for restartable tasks:
//
//   - The task publishes (or consumes) one file set per epoch, starting at
//     ctx.Epoch, and calls ctx.EpochDone(e) after the epoch's files are
//     fully closed on this rank.
//   - A restarted attempt receives ctx.Epoch = the first epoch not
//     completed by every rank; files of completed epochs are rebuilt from
//     the checkpoint container and re-served, while the interrupted epoch
//     is re-produced from scratch (file creation truncates its partial
//     container).
//   - Restartable tasks must not use World-spanning collectives (see
//     mpi.RunWorkflowSupervised); cross-task synchronization goes through
//     file opens and closes.
package workflow

import (
	"encoding/json"
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
	"time"

	"lowfive"
	"lowfive/h5"
	"lowfive/mpi"
)

// Mode is a Policy's reaction to a task failure.
type Mode uint8

const (
	// FailFast aborts the workflow on the first failure; the run returns
	// the typed *mpi.TaskFailure naming the task, rank and epoch.
	FailFast Mode = iota
	// Degrade leaves failed ranks dead and relies on the fault-tolerant
	// query paths (replica failover, file fallback) of the surviving ranks.
	Degrade
	// Restart tears down and relaunches a failed task with fresh
	// communicators, resuming from its last completed epoch.
	Restart
)

// Policy configures how a supervised run treats task failures.
type Policy struct {
	// Mode selects the reaction; the remaining knobs apply to Restart.
	Mode Mode
	// MaxRestarts caps restarts per task before the workflow fails anyway.
	// 0 defaults to 3.
	MaxRestarts int
	// Backoff is the delay before the first relaunch, doubling with every
	// further restart of the same task. 0 relaunches immediately.
	Backoff time.Duration
	// Heartbeat is the hang-detection deadline: a rank that is neither
	// blocked in a receive nor making message-passing progress for this
	// long is failed like a crash. 0 disables hang detection.
	Heartbeat time.Duration
	// EpochDeadline fails a rank whose last ctx.EpochDone (or launch) lies
	// further back than this — an application-level progress deadline on
	// top of the transport heartbeat. 0 disables it. Only meaningful for
	// tasks bound with BindEpoch.
	EpochDeadline time.Duration
}

// String returns the mode's JSON name.
func (m Mode) String() string {
	switch m {
	case FailFast:
		return "failfast"
	case Degrade:
		return "degrade"
	case Restart:
		return "restart"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// MarshalJSON writes the mode as its name.
func (m Mode) MarshalJSON() ([]byte, error) { return json.Marshal(m.String()) }

// UnmarshalJSON reads a mode name ("failfast", "degrade", "restart").
func (m *Mode) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("workflow: policy mode: %w", err)
	}
	switch strings.ToLower(s) {
	case "failfast", "fail-fast":
		*m = FailFast
	case "degrade":
		*m = Degrade
	case "restart":
		*m = Restart
	default:
		return fmt.Errorf("workflow: unknown policy mode %q", s)
	}
	return nil
}

// policyJSON is the wire form of Policy: mode by name, durations as Go
// duration strings ("100ms", "2s").
type policyJSON struct {
	Mode          Mode   `json:"mode"`
	MaxRestarts   int    `json:"max_restarts,omitempty"`
	Backoff       string `json:"backoff,omitempty"`
	Heartbeat     string `json:"heartbeat,omitempty"`
	EpochDeadline string `json:"epoch_deadline,omitempty"`
}

// MarshalJSON writes the policy with durations as strings.
func (p Policy) MarshalJSON() ([]byte, error) {
	j := policyJSON{Mode: p.Mode, MaxRestarts: p.MaxRestarts}
	if p.Backoff > 0 {
		j.Backoff = p.Backoff.String()
	}
	if p.Heartbeat > 0 {
		j.Heartbeat = p.Heartbeat.String()
	}
	if p.EpochDeadline > 0 {
		j.EpochDeadline = p.EpochDeadline.String()
	}
	return json.Marshal(j)
}

// UnmarshalJSON reads the policy, parsing duration strings.
func (p *Policy) UnmarshalJSON(b []byte) error {
	var j policyJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	*p = Policy{Mode: j.Mode, MaxRestarts: j.MaxRestarts}
	for _, f := range []struct {
		name string
		src  string
		dst  *time.Duration
	}{
		{"backoff", j.Backoff, &p.Backoff},
		{"heartbeat", j.Heartbeat, &p.Heartbeat},
		{"epoch_deadline", j.EpochDeadline, &p.EpochDeadline},
	} {
		if f.src == "" {
			continue
		}
		d, err := time.ParseDuration(f.src)
		if err != nil {
			return fmt.Errorf("workflow: policy %s: %w", f.name, err)
		}
		*f.dst = d
	}
	return nil
}

// TaskCtx is the per-rank recovery context an epoch-aware entry point
// receives.
type TaskCtx struct {
	// Epoch is the first epoch this attempt must produce or consume
	// (0 on a fresh launch).
	Epoch int64
	// Attempt counts restarts of this task (0 on a fresh launch).
	Attempt int

	r        *runner
	task     string
	taskRank int
	world    int
	p        *mpi.Proc
}

// EpochDone records that this rank fully completed epoch e (its files are
// closed), advancing the restart resume point and the epoch-deadline clock.
func (c *TaskCtx) EpochDone(e int64) {
	c.p.SetEpoch(e)
	c.r.epochDone(c.task, c.taskRank, c.world, e)
}

// EpochFn is an epoch-aware task entry point (see the package comment for
// the restart contract).
type EpochFn func(p *mpi.Proc, vol *lowfive.DistMetadataVOL, fapl *h5.FileAccessProps, ctx *TaskCtx)

// RunStats is what a supervised run observed and recovered.
type RunStats struct {
	// RestartCount is the total number of task restarts.
	RestartCount int
	// Restarts counts restarts per task.
	Restarts map[string]int
	// Failures are the failure events in detection order.
	Failures []mpi.TaskFailure
	// HungDetected counts ranks failed by heartbeat or epoch deadline.
	HungDetected int
	// RecoveredEpochs is the total number of completed epochs restarted
	// tasks resumed past (recovered from checkpoint instead of recomputed).
	RecoveredEpochs int
	// Reindexed counts files rebuilt and reindexed (Rejoin) on restart.
	Reindexed int
	// RejoinedBytes is the data volume re-read from checkpoint containers.
	RejoinedBytes int64
	// ReplayedFiles counts per-rank file recoveries done by staging-log
	// replay (staging mode's replacement for Rejoin + re-serve).
	ReplayedFiles int
	// ReplayedRecords is the total log records scanned across replays —
	// proportional to the last committed spans, not to every epoch served.
	ReplayedRecords int
	// ReplayedBytes is the framed log volume scanned across replays.
	ReplayedBytes int64
	// StageFallbacks counts replays that found their span truncated and
	// degraded to the PFS container file.
	StageFallbacks int
	// ReplayTime is the total wall time restarted ranks spent in replay
	// (including PFS fallbacks), at full clock resolution — the store's
	// replay histogram rounds to microseconds, too coarse for tiny spans.
	ReplayTime time.Duration
}

// Consumer-side RPC defaults applied in Restart mode (a task's entry point
// may override them on the vol before opening files). The total retry
// budget must comfortably cover teardown + backoff + rejoin of a restarted
// producer.
const (
	restartCallTimeout = 250 * time.Millisecond
	restartCallRetries = 12
	restartCallBackoff = time.Millisecond
)

// ackKey identifies one consumer-side done acknowledgment: file name and
// the producer rank that acked, per task pair.
type ackKey struct {
	from, to, file string
	prodRank       int
}

// runner is the process-global recovery ledger shared by every rank of a
// supervised run (the supervisor's analogue of a resource manager's state
// store).
type runner struct {
	mu       sync.Mutex
	served   map[string]map[string]int64 // task -> file -> epoch it was first served in
	acks     map[ackKey]int              // consumer dones acked per producer rank
	epochs   map[string][]int64          // task -> per-rank last completed epoch (-1 = none)
	progress map[int]int64               // world rank -> unixnano of last app progress

	recoveredEpochs int
	reindexed       int
	rejoinedBytes   int64
	replayedFiles   int
	replayedRecords int
	replayedBytes   int64
	stageFallbacks  int
	replayTime      time.Duration
}

func newRunner(g Graph) *runner {
	r := &runner{
		served:   map[string]map[string]int64{},
		acks:     map[ackKey]int{},
		epochs:   map[string][]int64{},
		progress: map[int]int64{},
	}
	for _, t := range g.Tasks {
		e := make([]int64, t.Procs)
		for i := range e {
			e[i] = -1
		}
		r.epochs[t.Name] = e
	}
	return r
}

func (r *runner) epochDone(task string, taskRank, worldRank int, e int64) {
	r.mu.Lock()
	if e > r.epochs[task][taskRank] {
		r.epochs[task][taskRank] = e
	}
	r.progress[worldRank] = time.Now().UnixNano()
	r.mu.Unlock()
}

func (r *runner) touch(worldRank int) {
	r.mu.Lock()
	r.progress[worldRank] = time.Now().UnixNano()
	r.mu.Unlock()
}

func (r *runner) stalled(worldRank int, deadline time.Duration) bool {
	r.mu.Lock()
	last, ok := r.progress[worldRank]
	r.mu.Unlock()
	return ok && time.Now().UnixNano()-last > int64(deadline)
}

// recordServe notes a file served by a task, tagged with the epoch it was
// produced in (last completed + 1). The first epoch wins: a re-serve after
// restart must not lift the file past a later crash's resume point, or it
// would never be rejoined again.
func (r *runner) recordServe(task string, taskRank int, file string) {
	r.mu.Lock()
	epoch := r.epochs[task][taskRank] + 1
	m := r.served[task]
	if m == nil {
		m = map[string]int64{}
		r.served[task] = m
	}
	if old, ok := m[file]; !ok || epoch < old {
		m[file] = epoch
	}
	r.mu.Unlock()
}

func (r *runner) recordAck(from, to, file string, prodRank int) {
	r.mu.Lock()
	r.acks[ackKey{from: from, to: to, file: file, prodRank: prodRank}]++
	r.mu.Unlock()
}

func (r *runner) ackCount(from, to, file string, prodRank int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.acks[ackKey{from: from, to: to, file: file, prodRank: prodRank}]
}

// resumeEpoch is the first epoch not completed by every rank of the task.
func (r *runner) resumeEpoch(task string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	min := int64(-1)
	for i, e := range r.epochs[task] {
		if i == 0 || e < min {
			min = e
		}
	}
	return min + 1
}

// servedFiles returns the task's served files, sorted; withEpochBelow
// limits to files produced in epochs before the bound (the rejoin set —
// the interrupted epoch itself is re-produced, not rejoined).
func (r *runner) servedFiles(task string, withEpochBelow int64) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for f, e := range r.served[task] {
		if e < withEpochBelow {
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return out
}

func (r *runner) addRecovery(epochs int, rs lowfive.RejoinStats, files int) {
	r.mu.Lock()
	r.recoveredEpochs += epochs
	r.reindexed += files
	r.rejoinedBytes += rs.Bytes
	r.mu.Unlock()
}

func (r *runner) addReplay(rs lowfive.ReplayStats, d time.Duration) {
	r.mu.Lock()
	r.replayedFiles++
	r.replayedRecords += rs.Records
	r.replayedBytes += rs.Bytes
	if rs.PFSFallback {
		r.stageFallbacks++
	}
	r.replayTime += d
	r.mu.Unlock()
}

// RunSupervised validates the graph and runs it like Run, but under pol:
// failures (crashes, heartbeat-expired hangs, epoch-deadline stalls) are
// detected and handled per the policy instead of aborting the world. In
// Restart mode every producing edge's files are automatically passed
// through to the base connector (base is required — it is the checkpoint
// store), and a restarted task resumes from its last completed epoch.
func RunSupervised(g Graph, base func() h5.Connector, pol Policy, opts ...mpi.Option) (*RunStats, error) {
	stats := &RunStats{Restarts: map[string]int{}}
	if err := g.Validate(); err != nil {
		return stats, err
	}
	for _, t := range g.Tasks {
		if t.Fn == nil && t.EpochFn == nil {
			return stats, fmt.Errorf("workflow: task %q has no entry point (use Bind or BindEpoch)", t.Name)
		}
	}
	if pol.Mode == Restart && base == nil {
		return stats, fmt.Errorf("workflow: Restart policy requires a base connector (the checkpoint store)")
	}
	run := newRunner(g)

	specs := make([]mpi.TaskSpec, len(g.Tasks))
	for i, t := range g.Tasks {
		t := t
		outs := g.Producers(t.Name)
		ins := g.Consumers(t.Name)
		specs[i] = mpi.TaskSpec{
			Name:  t.Name,
			Procs: t.Procs,
			Main: func(p *mpi.Proc) {
				var b h5.Connector
				if base != nil {
					b = base()
				}
				vol := lowfive.NewDistMetadataVOL(p.Task, b)
				if g.Stage != nil {
					vol.Stage = g.Stage
					if len(ins) > 0 {
						vol.StageSubscriber = fmt.Sprintf("%s/%d", t.Name, p.Task.Rank())
					}
				}
				icTo := map[string]*mpi.Intercomm{}
				for _, e := range outs {
					ic := p.Intercomm(e.To)
					icTo[e.To] = ic
					vol.SetIntercommRole(e.Pattern, lowfive.RoleProduce, ic)
					if pol.Mode == Restart {
						// Published files double as checkpoints: the base
						// connector is the durable store a restarted
						// incarnation rejoins from.
						vol.SetPassthru(e.Pattern, true)
					}
				}
				icFrom := map[*mpi.Intercomm]string{}
				for _, e := range ins {
					ic := p.Intercomm(e.From)
					icFrom[ic] = e.From
					vol.SetIntercommRole(e.Pattern, lowfive.RoleConsume, ic)
				}
				taskRank := p.Task.Rank()
				world := p.World.Rank()
				if pol.Mode == Restart {
					vol.PersistOwnership = true
					vol.WaitForRestart = true
					vol.CallTimeout = restartCallTimeout
					vol.CallRetries = restartCallRetries
					vol.CallBackoff = restartCallBackoff
					vol.OnServe = func(name string) { run.recordServe(t.Name, taskRank, name) }
					vol.OnDoneAcked = func(ic *mpi.Intercomm, name string, prodRank int) {
						run.recordAck(icFrom[ic], t.Name, name, prodRank)
					}
				}
				run.touch(world)
				ctx := &TaskCtx{
					Attempt: p.Attempt,
					r:       run, task: t.Name, taskRank: taskRank, world: world, p: p,
				}
				var handles []*lowfive.ServeHandle
				if p.Attempt > 0 && pol.Mode == Restart && g.Stage != nil {
					ctx.Epoch = run.resumeEpoch(t.Name)
					p.SetEpoch(ctx.Epoch)
					// Staging mode: recovery is log replay. There are no
					// serve sessions to credit dones on and nothing to
					// re-serve — completed epochs live in the log, and the
					// replay rebuilds this rank's tree from its shard's
					// last committed span (PFS container only if the span
					// was GC-truncated). The interrupted epoch itself is
					// re-produced by the entry point, superseding any torn
					// commit in the log.
					for _, fname := range run.servedFiles(t.Name, ctx.Epoch) {
						t0 := time.Now()
						rs, err := vol.StageReplay(fname)
						if err != nil {
							panic(fmt.Errorf("workflow: task %q attempt %d: replay %q: %w",
								t.Name, p.Attempt, fname, err))
						}
						run.addReplay(rs, time.Since(t0))
					}
					if taskRank == 0 {
						run.addRecovery(int(ctx.Epoch), lowfive.RejoinStats{}, 0)
					}
				} else if p.Attempt > 0 && pol.Mode == Restart {
					ctx.Epoch = run.resumeEpoch(t.Name)
					p.SetEpoch(ctx.Epoch)
					// Credit dones the previous incarnation already collected:
					// consumers that fully acked a file will never resend.
					for _, fname := range run.servedFiles(t.Name, int64(1)<<62) {
						for _, e := range outs {
							if ok, _ := path.Match(e.Pattern, fname); ok {
								vol.CreditDone(icTo[e.To], fname, run.ackCount(t.Name, e.To, fname, taskRank))
							}
						}
					}
					// Rebuild and re-serve completed epochs' files from the
					// checkpoint containers; the interrupted epoch is
					// re-produced by the entry point below.
					rejoin := run.servedFiles(t.Name, ctx.Epoch)
					var rsum lowfive.RejoinStats
					for _, fname := range rejoin {
						rs, err := vol.Rejoin(fname)
						if err != nil {
							panic(fmt.Errorf("workflow: task %q attempt %d: rejoin %q: %w",
								t.Name, p.Attempt, fname, err))
						}
						rsum.Bytes += rs.Bytes
						h, err := vol.ServeAsync(fname)
						if err != nil {
							panic(fmt.Errorf("workflow: task %q attempt %d: re-serve %q: %w",
								t.Name, p.Attempt, fname, err))
						}
						handles = append(handles, h)
					}
					if taskRank == 0 {
						run.addRecovery(int(ctx.Epoch), rsum, len(rejoin))
					}
				}
				fapl := h5.NewFileAccessProps(vol)
				if t.EpochFn != nil {
					t.EpochFn(p, vol, fapl, ctx)
				} else {
					t.Fn(p, vol, fapl)
				}
				for _, h := range handles {
					if err := h.Wait(); err != nil {
						// A consumer that died mid-read is its own supervised
						// failure; only non-failure serve errors are fatal here.
						var rf *mpi.RankFailedError
						if !errors.As(err, &rf) {
							panic(err)
						}
					}
				}
			},
		}
	}

	maxRestarts := pol.MaxRestarts
	if maxRestarts <= 0 {
		maxRestarts = 3
	}
	sup := mpi.Supervisor{
		Heartbeat: pol.Heartbeat,
		OnFailure: func(f mpi.TaskFailure) mpi.Decision {
			switch pol.Mode {
			case Degrade:
				return mpi.DegradeTask
			case Restart:
				if f.Attempt >= maxRestarts {
					return mpi.FailWorkflow
				}
				return mpi.RestartTask
			default:
				return mpi.FailWorkflow
			}
		},
		Backoff: func(task string, attempt int) time.Duration {
			if pol.Backoff <= 0 {
				return 0
			}
			return pol.Backoff << (attempt - 1)
		},
	}
	if pol.EpochDeadline > 0 {
		sup.StallCheck = func(worldRank int) bool {
			return run.stalled(worldRank, pol.EpochDeadline)
		}
	}

	ws, err := mpi.RunWorkflowSupervised(specs, sup, opts...)
	stats.RestartCount = ws.RestartCount()
	for k, v := range ws.Restarts {
		stats.Restarts[k] = v
	}
	stats.Failures = ws.Failures
	stats.HungDetected = ws.HungDetected
	run.mu.Lock()
	stats.RecoveredEpochs = run.recoveredEpochs
	stats.Reindexed = run.reindexed
	stats.RejoinedBytes = run.rejoinedBytes
	stats.ReplayedFiles = run.replayedFiles
	stats.ReplayedRecords = run.replayedRecords
	stats.ReplayedBytes = run.replayedBytes
	stats.StageFallbacks = run.stageFallbacks
	stats.ReplayTime = run.replayTime
	run.mu.Unlock()
	return stats, err
}
