package workflow

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"lowfive"
	"lowfive/h5"
	"lowfive/internal/rpc"
	"lowfive/mpi"
)

func TestValidateDuplicateEdge(t *testing.T) {
	g := Graph{
		Tasks: []Task{{Name: "a", Procs: 1}, {Name: "b", Procs: 1}},
		Edges: []Edge{
			{From: "a", To: "b", Pattern: "*.h5"},
			{From: "a", To: "b", Pattern: "*.h5"},
		},
	}
	if err := g.Validate(); err == nil {
		t.Error("duplicate edge should be rejected")
	}
	// Same tasks with a different pattern is a distinct route, not a dup.
	g.Edges[1].Pattern = "ck-*"
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestParseJSONPolicy(t *testing.T) {
	g, err := ParseJSON([]byte(`{
	  "tasks": [{"name": "sim", "procs": 2}, {"name": "ana", "procs": 1}],
	  "edges": [{"from": "sim", "to": "ana", "pattern": "step*.h5"}],
	  "policy": {"mode": "restart", "max_restarts": 2, "backoff": "50ms",
	             "heartbeat": "2s", "epoch_deadline": "10s"}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	want := Policy{Mode: Restart, MaxRestarts: 2, Backoff: 50 * time.Millisecond,
		Heartbeat: 2 * time.Second, EpochDeadline: 10 * time.Second}
	if g.Policy == nil || *g.Policy != want {
		t.Fatalf("parsed policy %+v, want %+v", g.Policy, want)
	}
	// Round trip: the wire form re-parses to the same policy.
	b, err := json.Marshal(g.Policy)
	if err != nil {
		t.Fatal(err)
	}
	var back Policy
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("re-parsing %s: %v", b, err)
	}
	if back != want {
		t.Fatalf("round trip %+v, want %+v", back, want)
	}
	var p Policy
	if err := json.Unmarshal([]byte(`{"mode": "retry-forever"}`), &p); err == nil {
		t.Error("unknown mode should be rejected")
	}
	if err := json.Unmarshal([]byte(`{"mode": "restart", "backoff": "soon"}`), &p); err == nil {
		t.Error("malformed duration should be rejected")
	}
}

// epochGraph is a 2-producer 2-consumer coupling exchanging one 6x4 uint64
// dataset per epoch; element values encode (epoch, global index) so any
// reader can verify bit-exactness.
func epochGraph(t *testing.T, epochs int, got map[string][]uint64, mu *sync.Mutex) Graph {
	t.Helper()
	dims := []int64{6, 4}
	g := Graph{
		Tasks: []Task{{Name: "sim", Procs: 2}, {Name: "ana", Procs: 2}},
		Edges: []Edge{{From: "sim", To: "ana", Pattern: "step*.h5"}},
	}
	g.BindEpoch("sim", func(p *mpi.Proc, vol *lowfive.DistMetadataVOL, fapl *h5.FileAccessProps, ctx *TaskCtx) {
		r := int64(p.Task.Rank())
		for e := ctx.Epoch; e < int64(epochs); e++ {
			f, err := h5.CreateFile(fmt.Sprintf("step%d.h5", e), fapl)
			if err != nil {
				t.Error(err)
				return
			}
			ds, _ := f.CreateDataset("v", h5.U64, h5.NewSimple(dims...))
			sel := h5.NewSimple(dims...)
			sel.SelectHyperslab(h5.SelectSet, []int64{r * 3, 0}, []int64{3, dims[1]})
			vals := make([]uint64, 3*dims[1])
			for i := range vals {
				vals[i] = uint64(e)*1000 + uint64(r*3*dims[1]) + uint64(i)
			}
			ds.Write(nil, sel, h5.Bytes(vals))
			ds.Close()
			if err := f.Close(); err != nil { // serves the consumers
				var rf *mpi.RankFailedError
				if errors.As(err, &rf) {
					return // task torn down around a crashed peer
				}
				t.Error(err)
				return
			}
			ctx.EpochDone(e)
		}
	})
	// A failed producer rank surfaces as a RankFailedError somewhere in the
	// consumer's error chain; under FailFast that is the expected way the
	// run dies, so it is not a test failure.
	tolerable := func(err error) bool {
		var rf *mpi.RankFailedError
		return errors.As(err, &rf)
	}
	g.BindEpoch("ana", func(p *mpi.Proc, vol *lowfive.DistMetadataVOL, fapl *h5.FileAccessProps, ctx *TaskCtx) {
		r := int64(p.Task.Rank())
		for e := ctx.Epoch; e < int64(epochs); e++ {
			f, err := h5.OpenFile(fmt.Sprintf("step%d.h5", e), fapl)
			if err != nil {
				if !tolerable(err) {
					t.Error(err)
				}
				return
			}
			ds, err := f.OpenDataset("v")
			if err != nil {
				t.Error(err)
				return
			}
			sel := h5.NewSimple(dims...)
			sel.SelectHyperslab(h5.SelectSet, []int64{0, r * 2}, []int64{dims[0], 2})
			out := make([]uint64, dims[0]*2)
			if err := ds.Read(nil, sel, h5.Bytes(out)); err != nil {
				if !tolerable(err) {
					t.Error(err)
				}
				return
			}
			ds.Close()
			if err := f.Close(); err != nil {
				if !tolerable(err) {
					t.Error(err)
				}
				return
			}
			mu.Lock()
			got[fmt.Sprintf("e%d-r%d", e, r)] = out
			mu.Unlock()
			ctx.EpochDone(e)
		}
	})
	return g
}

// checkEpochData verifies every epoch's column read against the encoded
// (epoch, index) values — the bit-identical acceptance check.
func checkEpochData(t *testing.T, epochs int, got map[string][]uint64) {
	t.Helper()
	for e := 0; e < epochs; e++ {
		for r := int64(0); r < 2; r++ {
			out := got[fmt.Sprintf("e%d-r%d", e, r)]
			if len(out) != 12 {
				t.Errorf("epoch %d rank %d: got %d values, want 12", e, r, len(out))
				continue
			}
			k := 0
			for i := int64(0); i < 6; i++ {
				for j := int64(0); j < 2; j++ {
					want := uint64(e)*1000 + uint64(i*4+r*2+j)
					if out[k] != want {
						t.Errorf("epoch %d rank %d: element %d = %d, want %d", e, r, k, out[k], want)
						i = 6
						break
					}
					k++
				}
			}
		}
	}
}

func TestRunSupervisedRestartProducer(t *testing.T) {
	const epochs = 3
	fs := lowfive.NewZeroCostFS()
	got := map[string][]uint64{}
	var mu sync.Mutex
	g := epochGraph(t, epochs, got, &mu)
	// Crash producer world rank 0 at its 11th RPC response send — past the
	// first epoch's serve traffic, so completed epochs recover via Rejoin.
	// Count must bound the rule: fired counts persist across restarts, and
	// an unbounded rule would crash every incarnation.
	plan := mpi.FaultPlan{Seed: 1, Rules: []mpi.FaultRule{
		{Action: mpi.FaultCrash, Rank: 0, Tag: rpc.TagResponse, After: 10, Count: 1},
	}}
	stats, err := RunSupervised(g,
		func() h5.Connector { return lowfive.NewBaseVOL(fs) },
		Policy{Mode: Restart, Backoff: time.Millisecond},
		mpi.WithFaultPlan(plan), mpi.WithWatchdog(30*time.Second))
	if err != nil {
		t.Fatalf("supervised run: %v", err)
	}
	if stats.RestartCount != 1 || stats.Restarts["sim"] != 1 {
		t.Fatalf("RestartCount=%d Restarts=%v, want one sim restart", stats.RestartCount, stats.Restarts)
	}
	if len(stats.Failures) == 0 || stats.Failures[0].Task != "sim" {
		t.Fatalf("failure events %+v, want sim first", stats.Failures)
	}
	checkEpochData(t, epochs, got)
	t.Logf("recovered epochs=%d reindexed=%d rejoined bytes=%d",
		stats.RecoveredEpochs, stats.Reindexed, stats.RejoinedBytes)
}

func TestRunSupervisedFailFastTypedFailure(t *testing.T) {
	fs := lowfive.NewZeroCostFS()
	got := map[string][]uint64{}
	var mu sync.Mutex
	g := epochGraph(t, 2, got, &mu)
	plan := mpi.FaultPlan{Seed: 1, Rules: []mpi.FaultRule{
		{Action: mpi.FaultCrash, Rank: 0, Tag: rpc.TagResponse, After: 2},
	}}
	_, err := RunSupervised(g,
		func() h5.Connector { return lowfive.NewBaseVOL(fs) },
		Policy{Mode: FailFast},
		mpi.WithFaultPlan(plan), mpi.WithWatchdog(30*time.Second))
	var f *mpi.TaskFailure
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want *mpi.TaskFailure", err)
	}
	if f.Task != "sim" || f.Rank != 0 {
		t.Fatalf("TaskFailure %+v, want task sim rank 0", f)
	}
}

func TestRunSupervisedRequiresBaseForRestart(t *testing.T) {
	g := Graph{Tasks: []Task{{Name: "a", Procs: 1}}}
	g.Bind("a", func(p *mpi.Proc, vol *lowfive.DistMetadataVOL, fapl *h5.FileAccessProps) {})
	if _, err := RunSupervised(g, nil, Policy{Mode: Restart}); err == nil {
		t.Error("Restart mode without a base connector should fail")
	}
}
