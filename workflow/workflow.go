// Package workflow is the higher-level workflow layer the paper's future
// work announces ("we are also actively building a higher-level workflow
// system that uses LowFive as its transport layer"): a declarative task
// graph — tasks with process counts, edges labeled with file patterns —
// that the runtime launches MPMD-style, wiring a distributed LowFive VOL
// per rank so that every edge's files flow in situ from producers to
// consumers. Task code receives a ready-configured VOL and just performs
// ordinary h5 I/O.
//
// Graphs can be built in Go or loaded from JSON:
//
//	{
//	  "tasks": [
//	    {"name": "sim",  "procs": 4},
//	    {"name": "ana",  "procs": 2}
//	  ],
//	  "edges": [
//	    {"from": "sim", "to": "ana", "pattern": "step*.h5"}
//	  ]
//	}
package workflow

import (
	"encoding/json"
	"fmt"

	"lowfive"
	"lowfive/h5"
	"lowfive/mpi"
)

// Task is one parallel program of the graph. Fn is the per-rank entry
// point; it gets the process handle, a LowFive VOL already wired to every
// edge touching this task, and the matching file-access property list.
type Task struct {
	Name  string                                                                    `json:"name"`
	Procs int                                                                       `json:"procs"`
	Fn    func(p *mpi.Proc, vol *lowfive.DistMetadataVOL, fapl *h5.FileAccessProps) `json:"-"`
	// EpochFn is the epoch-aware entry point used by RunSupervised; bind it
	// with BindEpoch. A task may have either Fn or EpochFn (EpochFn wins
	// under RunSupervised; Run ignores it).
	EpochFn EpochFn `json:"-"`
}

// Edge routes files matching Pattern from task From to task To, in situ.
type Edge struct {
	From    string `json:"from"`
	To      string `json:"to"`
	Pattern string `json:"pattern"`
}

// Graph is a complete workflow description. Policy (optional, JSON-loadable)
// is the supervision policy a caller passes to RunSupervised; plain Run
// ignores it.
type Graph struct {
	Tasks  []Task  `json:"tasks"`
	Edges  []Edge  `json:"edges"`
	Policy *Policy `json:"policy,omitempty"`
	// Stage, when set, switches every task's VOL into staging mode: file
	// closes publish epochs into this shared chunk log, consumer opens and
	// reads resolve against it, and restarted ranks recover by log replay
	// instead of Rejoin + Reindex. The store is shared process-wide the way
	// the supervision ledger is (the analogue of a staging service all
	// tasks connect to). Cannot travel in JSON.
	Stage *lowfive.StageStore `json:"-"`
}

// ParseJSON loads a graph structure (tasks and edges) from JSON. Entry
// points cannot travel in JSON; attach them afterwards with Bind.
func ParseJSON(data []byte) (Graph, error) {
	var g Graph
	if err := json.Unmarshal(data, &g); err != nil {
		return Graph{}, fmt.Errorf("workflow: parsing graph: %w", err)
	}
	if err := g.Validate(); err != nil {
		return Graph{}, err
	}
	return g, nil
}

// Bind attaches the entry point for the named task.
func (g *Graph) Bind(name string, fn func(p *mpi.Proc, vol *lowfive.DistMetadataVOL, fapl *h5.FileAccessProps)) error {
	for i := range g.Tasks {
		if g.Tasks[i].Name == name {
			g.Tasks[i].Fn = fn
			return nil
		}
	}
	return fmt.Errorf("workflow: no task %q in the graph", name)
}

// BindEpoch attaches the epoch-aware entry point for the named task (used
// by RunSupervised; see EpochFn for the restart contract).
func (g *Graph) BindEpoch(name string, fn EpochFn) error {
	for i := range g.Tasks {
		if g.Tasks[i].Name == name {
			g.Tasks[i].EpochFn = fn
			return nil
		}
	}
	return fmt.Errorf("workflow: no task %q in the graph", name)
}

// Validate checks structural consistency: unique task names, positive
// process counts, and edges referencing existing, distinct tasks with no
// duplicate (from, to, pattern) routes.
func (g Graph) Validate() error {
	if len(g.Tasks) == 0 {
		return fmt.Errorf("workflow: graph has no tasks")
	}
	names := map[string]bool{}
	for _, t := range g.Tasks {
		if t.Name == "" {
			return fmt.Errorf("workflow: task with empty name")
		}
		if names[t.Name] {
			return fmt.Errorf("workflow: duplicate task %q", t.Name)
		}
		names[t.Name] = true
		if t.Procs <= 0 {
			return fmt.Errorf("workflow: task %q has %d procs", t.Name, t.Procs)
		}
	}
	seen := map[Edge]bool{}
	for _, e := range g.Edges {
		if !names[e.From] {
			return fmt.Errorf("workflow: edge from unknown task %q", e.From)
		}
		if !names[e.To] {
			return fmt.Errorf("workflow: edge to unknown task %q", e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("workflow: edge %q -> %q connects a task to itself", e.From, e.To)
		}
		if e.Pattern == "" {
			return fmt.Errorf("workflow: edge %q -> %q has an empty file pattern", e.From, e.To)
		}
		if seen[e] {
			return fmt.Errorf("workflow: duplicate edge %q -> %q with pattern %q", e.From, e.To, e.Pattern)
		}
		seen[e] = true
	}
	return nil
}

// Producers returns the edges leaving the named task.
func (g Graph) Producers(name string) []Edge {
	var out []Edge
	for _, e := range g.Edges {
		if e.From == name {
			out = append(out, e)
		}
	}
	return out
}

// Consumers returns the edges arriving at the named task.
func (g Graph) Consumers(name string) []Edge {
	var out []Edge
	for _, e := range g.Edges {
		if e.To == name {
			out = append(out, e)
		}
	}
	return out
}

// Run validates the graph, launches every task MPMD-style, and wires a
// DistMetadataVOL per rank: for every outgoing edge the VOL serves the
// pattern to the consumer task; for every incoming edge it opens the
// pattern from the producer task. base (optional) handles files matching
// no edge, e.g. checkpoints to storage.
func Run(g Graph, base func() h5.Connector, opts ...mpi.Option) error {
	if err := g.Validate(); err != nil {
		return err
	}
	for _, t := range g.Tasks {
		if t.Fn == nil {
			return fmt.Errorf("workflow: task %q has no entry point (use Bind)", t.Name)
		}
	}
	specs := make([]mpi.TaskSpec, len(g.Tasks))
	for i, t := range g.Tasks {
		t := t
		specs[i] = mpi.TaskSpec{
			Name:  t.Name,
			Procs: t.Procs,
			Main: func(p *mpi.Proc) {
				var b h5.Connector
				if base != nil {
					b = base()
				}
				vol := lowfive.NewDistMetadataVOL(p.Task, b)
				if g.Stage != nil {
					vol.Stage = g.Stage
					if len(g.Consumers(t.Name)) > 0 {
						vol.StageSubscriber = fmt.Sprintf("%s/%d", t.Name, p.Task.Rank())
					}
				}
				for _, e := range g.Producers(t.Name) {
					vol.SetIntercommRole(e.Pattern, lowfive.RoleProduce, p.Intercomm(e.To))
				}
				for _, e := range g.Consumers(t.Name) {
					vol.SetIntercommRole(e.Pattern, lowfive.RoleConsume, p.Intercomm(e.From))
				}
				t.Fn(p, vol, h5.NewFileAccessProps(vol))
			},
		}
	}
	return mpi.RunWorkflow(specs, opts...)
}
