package workflow

import (
	"fmt"
	"testing"

	"lowfive"
	"lowfive/h5"
	"lowfive/mpi"
)

func TestValidate(t *testing.T) {
	ok := Graph{
		Tasks: []Task{{Name: "a", Procs: 1}, {Name: "b", Procs: 2}},
		Edges: []Edge{{From: "a", To: "b", Pattern: "*.h5"}},
	}
	if err := ok.Validate(); err != nil {
		t.Error(err)
	}
	bad := []Graph{
		{},
		{Tasks: []Task{{Name: "", Procs: 1}}},
		{Tasks: []Task{{Name: "a", Procs: 1}, {Name: "a", Procs: 1}}},
		{Tasks: []Task{{Name: "a", Procs: 0}}},
		{Tasks: []Task{{Name: "a", Procs: 1}}, Edges: []Edge{{From: "x", To: "a", Pattern: "p"}}},
		{Tasks: []Task{{Name: "a", Procs: 1}}, Edges: []Edge{{From: "a", To: "x", Pattern: "p"}}},
		{Tasks: []Task{{Name: "a", Procs: 1}, {Name: "b", Procs: 1}}, Edges: []Edge{{From: "a", To: "b", Pattern: ""}}},
		{Tasks: []Task{{Name: "a", Procs: 1}}, Edges: []Edge{{From: "a", To: "a", Pattern: "p"}}},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("graph %d should be invalid", i)
		}
	}
}

func TestParseJSON(t *testing.T) {
	g, err := ParseJSON([]byte(`{
		"tasks": [{"name": "sim", "procs": 3}, {"name": "ana", "procs": 2}],
		"edges": [{"from": "sim", "to": "ana", "pattern": "step*.h5"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Tasks) != 2 || g.Tasks[0].Procs != 3 {
		t.Errorf("graph %+v", g)
	}
	if len(g.Producers("sim")) != 1 || len(g.Consumers("ana")) != 1 {
		t.Error("edge queries wrong")
	}
	if _, err := ParseJSON([]byte(`{"tasks": []}`)); err == nil {
		t.Error("empty graph should fail")
	}
	if _, err := ParseJSON([]byte(`not json`)); err == nil {
		t.Error("bad json should fail")
	}
	if err := g.Bind("nope", nil); err == nil {
		t.Error("binding an unknown task should fail")
	}
}

func TestRunRequiresEntryPoints(t *testing.T) {
	g, _ := ParseJSON([]byte(`{
		"tasks": [{"name": "sim", "procs": 1}, {"name": "ana", "procs": 1}],
		"edges": [{"from": "sim", "to": "ana", "pattern": "*"}]
	}`))
	if err := Run(g, nil); err == nil {
		t.Error("running without entry points should fail")
	}
}

func TestRunSimpleCoupling(t *testing.T) {
	g, err := ParseJSON([]byte(`{
		"tasks": [{"name": "sim", "procs": 3}, {"name": "ana", "procs": 2}],
		"edges": [{"from": "sim", "to": "ana", "pattern": "step*.h5"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	g.Bind("sim", func(p *mpi.Proc, vol *lowfive.DistMetadataVOL, fapl *h5.FileAccessProps) {
		f, err := h5.CreateFile("step0.h5", fapl)
		if err != nil {
			t.Error(err)
			return
		}
		ds, _ := f.CreateDataset("v", h5.I64, h5.NewSimple(6))
		r := int64(p.Task.Rank())
		sel := h5.NewSimple(6)
		sel.SelectHyperslab(h5.SelectSet, []int64{r * 2}, []int64{2})
		ds.Write(nil, sel, h5.Bytes([]int64{r * 2, r*2 + 1}))
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	g.Bind("ana", func(p *mpi.Proc, vol *lowfive.DistMetadataVOL, fapl *h5.FileAccessProps) {
		f, err := h5.OpenFile("step0.h5", fapl)
		if err != nil {
			t.Error(err)
			return
		}
		ds, _ := f.OpenDataset("v")
		out := make([]int64, 6)
		if err := ds.Read(nil, nil, h5.Bytes(out)); err != nil {
			t.Error(err)
		}
		for i, v := range out {
			if v != int64(i) {
				t.Errorf("out[%d]=%d", i, v)
				break
			}
		}
		f.Close()
	})
	if err := Run(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunThreeStagePipelineSamePattern(t *testing.T) {
	// A -> B -> C with ONE file pattern: B consumes from A and produces for
	// C under the same pattern — the case the role-aware routing exists for.
	g := Graph{
		Tasks: []Task{{Name: "a", Procs: 2}, {Name: "b", Procs: 3}, {Name: "c", Procs: 1}},
		Edges: []Edge{
			{From: "a", To: "b", Pattern: "data-*"},
			{From: "b", To: "c", Pattern: "data-*"},
		},
	}
	const n = 12
	g.Bind("a", func(p *mpi.Proc, vol *lowfive.DistMetadataVOL, fapl *h5.FileAccessProps) {
		f, err := h5.CreateFile("data-a", fapl)
		if err != nil {
			t.Error(err)
			return
		}
		ds, _ := f.CreateDataset("v", h5.I64, h5.NewSimple(n))
		r := int64(p.Task.Rank())
		lo, hi := r*n/2, (r+1)*n/2
		sel := h5.NewSimple(n)
		sel.SelectHyperslab(h5.SelectSet, []int64{lo}, []int64{hi - lo})
		vals := make([]int64, hi-lo)
		for i := range vals {
			vals[i] = lo + int64(i)
		}
		ds.Write(nil, sel, h5.Bytes(vals))
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	g.Bind("b", func(p *mpi.Proc, vol *lowfive.DistMetadataVOL, fapl *h5.FileAccessProps) {
		// Consume from A...
		in, err := h5.OpenFile("data-a", fapl)
		if err != nil {
			t.Error(err)
			return
		}
		ds, _ := in.OpenDataset("v")
		r := int64(p.Task.Rank())
		lo, hi := r*n/3, (r+1)*n/3
		sel := h5.NewSimple(n)
		sel.SelectHyperslab(h5.SelectSet, []int64{lo}, []int64{hi - lo})
		vals := make([]int64, hi-lo)
		if err := ds.Read(nil, sel, h5.Bytes(vals)); err != nil {
			t.Error(err)
		}
		in.Close()
		// ... transform, and produce for C under the same pattern.
		for i := range vals {
			vals[i] *= 10
		}
		out, err := h5.CreateFile("data-b", fapl)
		if err != nil {
			t.Error(err)
			return
		}
		ods, _ := out.CreateDataset("v", h5.I64, h5.NewSimple(n))
		ods.Write(nil, sel, h5.Bytes(vals))
		if err := out.Close(); err != nil {
			t.Error(err)
		}
	})
	g.Bind("c", func(p *mpi.Proc, vol *lowfive.DistMetadataVOL, fapl *h5.FileAccessProps) {
		f, err := h5.OpenFile("data-b", fapl)
		if err != nil {
			t.Error(err)
			return
		}
		ds, _ := f.OpenDataset("v")
		out := make([]int64, n)
		if err := ds.Read(nil, nil, h5.Bytes(out)); err != nil {
			t.Error(err)
		}
		for i, v := range out {
			if v != int64(i)*10 {
				t.Errorf("out[%d]=%d", i, v)
				break
			}
		}
		f.Close()
	})
	if err := Run(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunFanOutGraph(t *testing.T) {
	g := Graph{
		Tasks: []Task{{Name: "src", Procs: 2}, {Name: "s1", Procs: 1}, {Name: "s2", Procs: 2}},
		Edges: []Edge{
			{From: "src", To: "s1", Pattern: "out"},
			{From: "src", To: "s2", Pattern: "out"},
		},
	}
	produce := func(p *mpi.Proc, vol *lowfive.DistMetadataVOL, fapl *h5.FileAccessProps) {
		f, _ := h5.CreateFile("out", fapl)
		ds, _ := f.CreateDataset("v", h5.U8, h5.NewSimple(4))
		if p.Task.Rank() == 0 {
			ds.Write(nil, nil, []byte{1, 2, 3, 4})
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	}
	consume := func(p *mpi.Proc, vol *lowfive.DistMetadataVOL, fapl *h5.FileAccessProps) {
		f, err := h5.OpenFile("out", fapl)
		if err != nil {
			t.Error(err)
			return
		}
		ds, _ := f.OpenDataset("v")
		buf := make([]byte, 4)
		if err := ds.Read(nil, nil, buf); err != nil {
			t.Error(err)
		}
		if buf[3] != 4 {
			t.Errorf("%s got %v", p.TaskName, buf)
		}
		f.Close()
	}
	g.Bind("src", produce)
	g.Bind("s1", consume)
	g.Bind("s2", consume)
	if err := Run(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithBaseConnector(t *testing.T) {
	fs := lowfive.NewZeroCostFS()
	g := Graph{Tasks: []Task{{Name: "solo", Procs: 2}}}
	g.Bind("solo", func(p *mpi.Proc, vol *lowfive.DistMetadataVOL, fapl *h5.FileAccessProps) {
		vol.SetPassthru("*", true)
		f, err := h5.CreateFile(fmt.Sprintf("ck-%d", p.Task.Rank()), fapl)
		if err != nil {
			t.Error(err)
			return
		}
		ds, _ := f.CreateDataset("d", h5.U8, h5.NewSimple(1))
		ds.Write(nil, nil, []byte{9})
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	if err := Run(g, func() h5.Connector { return lowfive.NewBaseVOL(fs) }); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("ck-0") || !fs.Exists("ck-1") {
		t.Error("checkpoints missing from the base file system")
	}
}
