// Package lowfive is a Go implementation of LowFive, the in situ data
// transport layer for high-performance workflows described in Peterka et
// al., "LowFive: In Situ Data Transport for High-Performance Workflows"
// (IPDPS 2023).
//
// LowFive is a VOL (Virtual Object Layer) plugin under the HDF5-like data
// model of package lowfive/h5: applications keep writing and reading
// "files" of groups, datasets and attributes, and the plugin decides —
// per file-name pattern — whether the data goes to a container file on a
// (simulated) parallel file system, stays in an in-memory metadata
// hierarchy, is served in situ over MPI to the processes of another task,
// or any combination.
//
// The three VOL classes of the paper map to:
//
//   - Base VOL:        NewBaseVOL (native container-file I/O)
//   - Metadata VOL:    NewMetadataVOL (in-memory hierarchy + passthru)
//   - Dist. metadata:  NewDistMetadataVOL (index–serve–query over MPI)
//
// A minimal producer/consumer workflow:
//
//	mpi.RunWorkflow([]mpi.TaskSpec{
//	    {Name: "producer", Procs: 3, Main: func(p *mpi.Proc) {
//	        vol := lowfive.NewDistMetadataVOL(p.Task, nil)
//	        vol.SetIntercomm("*.h5", p.Intercomm("consumer"))
//	        fapl := h5.NewFileAccessProps(vol)
//	        f, _ := h5.CreateFile("step1.h5", fapl)
//	        // ... create groups/datasets, write local selections ...
//	        f.Close() // publishes the data and serves the consumer
//	    }},
//	    {Name: "consumer", Procs: 2, Main: func(p *mpi.Proc) {
//	        vol := lowfive.NewDistMetadataVOL(p.Task, nil)
//	        vol.SetIntercomm("*.h5", p.Intercomm("producer"))
//	        fapl := h5.NewFileAccessProps(vol)
//	        f, _ := h5.OpenFile("step1.h5", fapl)
//	        // ... open datasets, read any selections: data is
//	        //     redistributed from 3 producers to 2 consumers ...
//	        f.Close() // signals done
//	    }},
//	})
package lowfive

import (
	"lowfive/h5"
	"lowfive/internal/buf"
	"lowfive/internal/core"
	"lowfive/internal/native"
	"lowfive/internal/pfs"
	"lowfive/internal/stage"
	"lowfive/mpi"
	"lowfive/trace"
)

// MetadataVOL is the in-memory metadata hierarchy VOL (paper §III-A-b).
type MetadataVOL = core.MetadataVOL

// DistMetadataVOL is the distributed metadata VOL (paper §III-A-c).
type DistMetadataVOL = core.DistMetadataVOL

// ServeStats counts a producer rank's serve-side activity (requests
// answered, bytes served) for communication profiling.
type ServeStats = core.ServeStats

// QueryStats counts a consumer rank's query-side activity (requests issued,
// bytes fetched, time blocked waiting) — the mirror of ServeStats.
type QueryStats = core.QueryStats

// ServeHandle tracks an asynchronous serve session started with
// DistMetadataVOL.ServeAsync (set ServeOnClose to false first); Wait blocks
// until every consumer rank has signaled done.
type ServeHandle = core.ServeHandle

// Ownership selects deep copies or shallow (zero-copy) references for
// dataset writes recorded in the metadata hierarchy.
type Ownership = core.Ownership

// Ownership modes.
const (
	OwnDeep    = core.OwnDeep
	OwnShallow = core.OwnShallow
)

// Role restricts a data-intercommunicator registration to producing or
// consuming (for pipeline tasks that do both with one file pattern).
type Role = core.Role

// Intercommunicator roles.
const (
	RoleBoth    = core.RoleBoth
	RoleProduce = core.RoleProduce
	RoleConsume = core.RoleConsume
)

// Tracer records spans, counters and instants from every instrumented
// layer (mpi, vol, core, pfs) into per-rank tracks; export with WriteChrome
// (Perfetto-loadable) or WriteSummaryTable (per-task per-phase breakdown).
// Attach one to a workflow with mpi.WithTracer.
type Tracer = trace.Tracer

// Track is one rank's (or OST's) append-only event buffer. A nil Track is
// a valid no-op recorder, so tracing costs nothing when disabled.
type Track = trace.Track

// NewTracer creates an empty tracer whose time origin is now.
func NewTracer() *Tracer { return trace.New() }

// NewTracingVOL wraps any connector so every VOL operation (dataset reads
// and writes, attribute I/O, file and group lifecycle) is recorded on the
// given track with datatypes, selections and byte counts.
func NewTracingVOL(base h5.Connector, track *Track) *h5.TracingVOL {
	return h5.NewTracingVOL(base, track)
}

// OSTStat is the cumulative load of one simulated object storage target.
type OSTStat = pfs.OSTStat

// FS is a simulated striped parallel file system shared by the ranks of a
// workflow (the stand-in for Lustre).
type FS = pfs.FS

// FSOptions configure the simulated parallel file system.
type FSOptions = pfs.Options

// NewFS creates a simulated parallel file system.
func NewFS(opts FSOptions) *FS { return pfs.New(opts) }

// NewZeroCostFS creates a simulated file system without timing costs.
func NewZeroCostFS() *FS { return pfs.NewZeroCost() }

// DefaultFSOptions resembles a mid-size Lustre scratch allocation, scaled
// for laptop-speed runs.
func DefaultFSOptions() FSOptions { return pfs.DefaultOptions() }

// NewBaseVOL returns the Base VOL: native container-file I/O on a simulated
// parallel file system (the "pure HDF5" path of the paper's experiments).
func NewBaseVOL(fs *FS) h5.Connector { return native.New(native.PFSBackend(fs)) }

// NewOSBaseVOL returns a Base VOL storing container files as real files in
// a local directory (no simulated striping costs).
func NewOSBaseVOL(dir string) h5.Connector { return native.New(native.OSBackend(dir)) }

// NewMetadataVOL builds the metadata VOL over an optional base connector.
// With base nil, all files matching the (default "*") memory patterns live
// purely in memory.
func NewMetadataVOL(base h5.Connector) *MetadataVOL { return core.NewMetadataVOL(base) }

// NewDistMetadataVOL builds the distributed metadata VOL for one rank of a
// task. local is the task's communicator; base (optional) handles files
// that pass through to storage.
func NewDistMetadataVOL(local *mpi.Comm, base h5.Connector) *DistMetadataVOL {
	return core.NewDistMetadataVOL(local, base)
}

// --- streaming data plane ---

// ChunkPool is a bounded pool of fixed-size reference-counted chunks — the
// buffer plane of the streaming data path. Assign one to a
// DistMetadataVOL's ChunkPool field to give its streamed responses a
// private bound, and read its HighWater/Outstanding/Overflow counters to
// observe peak transport buffering.
type ChunkPool = buf.Pool

// NewChunkPool builds a pool of size-byte chunks with at most limit
// outstanding (limit <= 0 means unbounded).
func NewChunkPool(size, limit int) *ChunkPool { return buf.NewPool(size, limit) }

// DefaultChunkBytes is the default frame size of streamed data responses;
// override per VOL with DistMetadataVOL.ChunkBytes.
const DefaultChunkBytes = buf.DefaultChunkBytes

// --- fault injection and fault tolerance ---

// FaultPlan is a seeded, deterministic set of fault-injection rules attached
// to a workflow with mpi.WithFaultPlan: messages on matching user tags are
// delayed, dropped, duplicated or corrupted, and a rule can crash a rank
// outright. Use it to exercise the fault-tolerant transport (RPC retries,
// index replication, file fallback) under test.
type FaultPlan = mpi.FaultPlan

// FaultRule arms one fault of a FaultPlan.
type FaultRule = mpi.FaultRule

// FaultAction is the kind of perturbation a FaultRule injects.
type FaultAction = mpi.FaultAction

// Fault actions.
const (
	FaultDelay     = mpi.FaultDelay
	FaultDrop      = mpi.FaultDrop
	FaultDuplicate = mpi.FaultDuplicate
	FaultCorrupt   = mpi.FaultCorrupt
	FaultCrash     = mpi.FaultCrash
	FaultHang      = mpi.FaultHang
	FaultPartition = mpi.FaultPartition
	FaultThrottle  = mpi.FaultThrottle
)

// AnyRank matches every world rank in a FaultRule.
const AnyRank = mpi.AnyRank

// DstRank encodes world rank r as a FaultRule.Dst value, scoping the rule
// to one link direction (the zero Dst matches traffic to every rank).
func DstRank(r int) int { return mpi.DstRank(r) }

// RankFailedError is the typed failure a rank blocked on a crashed peer
// receives. The RPC layer converts it into an error value; raw mpi users
// recover it from the blocking call.
type RankFailedError = mpi.RankFailedError

// --- supervised workflows ---

// TaskFailure is the typed event a supervised run emits when a task rank
// crashes or its heartbeat expires; FailFast policies return it as the
// run's error.
type TaskFailure = mpi.TaskFailure

// Decision is a supervisor policy's answer to a TaskFailure.
type Decision = mpi.Decision

// Supervisor decisions.
const (
	FailWorkflow = mpi.FailWorkflow
	DegradeTask  = mpi.DegradeTask
	RestartTask  = mpi.RestartTask
)

// Supervisor configures the failure monitor of mpi.RunWorkflowSupervised
// (heartbeat deadline, failure policy, restart backoff). The workflow
// package's RunSupervised builds one from a declarative Policy.
type Supervisor = mpi.Supervisor

// WorkflowStats is what a supervised run observed (restarts per task,
// failure events, hang detections).
type WorkflowStats = mpi.WorkflowStats

// RejoinStats reports what a restarted producer rank rebuilt from its
// checkpoint container via DistMetadataVOL.Rejoin.
type RejoinStats = core.RejoinStats

// StageStore is the append-only, epoch-versioned replicated chunk log of
// staging mode: assign one to DistMetadataVOL.Stage (or workflow.Graph.Stage)
// and producers publish each file close as a committed epoch, consumers read
// epochs from the log, and restarted ranks recover by log replay instead of
// Rejoin + Reindex.
type StageStore = stage.Store

// StageOptions configures a StageStore (replication factor, metrics
// registry, GC behavior).
type StageOptions = stage.Options

// NewStageStore creates a staging store.
func NewStageStore(opts StageOptions) *StageStore { return stage.NewStore(opts) }

// ReplayStats reports what a restarted rank rebuilt by staging-log replay
// via DistMetadataVOL.StageReplay, including whether it degraded to the
// PFS container fallback.
type ReplayStats = core.ReplayStats
