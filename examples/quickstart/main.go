// Quickstart: the smallest complete LowFive workflow — a 3-process
// producer task writes a 2-d dataset through the distributed metadata VOL,
// a 2-process consumer task reads it back with a different decomposition,
// and the data is redistributed in situ over (simulated) MPI. Neither side
// does anything transport-specific beyond configuring the VOL in the
// file-access property list: the h5 calls are plain HDF5-style I/O.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lowfive"
	"lowfive/h5"
	"lowfive/mpi"
)

const (
	rows, cols = 6, 8
)

func producer(p *mpi.Proc) {
	vol := lowfive.NewDistMetadataVOL(p.Task, nil)
	vol.SetIntercomm("*.h5", p.Intercomm("consumer"))
	fapl := h5.NewFileAccessProps(vol)

	f, err := h5.CreateFile("step1.h5", fapl)
	check(err)
	g, err := f.CreateGroup("group1")
	check(err)
	ds, err := g.CreateDataset("grid", h5.U64, h5.NewSimple(rows, cols))
	check(err)

	// Each producer rank writes a band of rows; values encode position.
	n, r := int64(p.Task.Size()), int64(p.Task.Rank())
	r0, r1 := r*rows/n, (r+1)*rows/n
	sel := h5.NewSimple(rows, cols)
	check(sel.SelectHyperslab(h5.SelectSet, []int64{r0, 0}, []int64{r1 - r0, cols}))
	vals := make([]uint64, (r1-r0)*cols)
	for i := range vals {
		vals[i] = uint64(r0*cols + int64(i))
	}
	check(ds.Write(nil, sel, h5.Bytes(vals)))
	fmt.Printf("producer %d wrote rows %d..%d\n", r, r0, r1-1)

	check(ds.Close())
	check(g.Close())
	check(f.Close()) // publishes the file: index + serve until consumers are done
}

func consumer(p *mpi.Proc) {
	vol := lowfive.NewDistMetadataVOL(p.Task, nil)
	vol.SetIntercomm("*.h5", p.Intercomm("producer"))
	fapl := h5.NewFileAccessProps(vol)

	f, err := h5.OpenFile("step1.h5", fapl) // fetches metadata from the producers
	check(err)
	ds, err := f.OpenDataset("group1/grid")
	check(err)

	// Each consumer rank reads a band of columns — a different decomposition
	// than the producer wrote; LowFive redistributes n-to-m.
	m, r := int64(p.Task.Size()), int64(p.Task.Rank())
	c0, c1 := r*cols/m, (r+1)*cols/m
	sel := h5.NewSimple(rows, cols)
	check(sel.SelectHyperslab(h5.SelectSet, []int64{0, c0}, []int64{rows, c1 - c0}))
	vals := make([]uint64, sel.NumSelected())
	check(ds.Read(nil, sel, h5.Bytes(vals)))

	for i, v := range vals {
		row := int64(i) / (c1 - c0)
		col := c0 + int64(i)%(c1-c0)
		if v != uint64(row*cols+col) {
			log.Fatalf("consumer %d: (%d,%d) = %d, want %d", r, row, col, v, row*cols+col)
		}
	}
	fmt.Printf("consumer %d validated columns %d..%d\n", r, c0, c1-1)

	check(ds.Close())
	check(f.Close()) // signals done to the producers
}

func main() {
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "producer", Procs: 3, Main: producer},
		{Name: "consumer", Procs: 2, Main: consumer},
	})
	check(err)
	fmt.Println("quickstart: OK")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
