// Fan-in / fan-out: the workflow task graph features of §I — more than one
// task producing and more than one task consuming.
//
//	simulationA (3 procs) --- fields.h5 ---+--> vizualization (2 procs)
//	                                       +--> statistics   (1 proc)
//	simulationB (2 procs) --- events.h5 ------> statistics
//
// simulationA fans its file out to two different consumer tasks (each gets
// the full n-to-m redistribution independently); statistics fans in data
// from both producers. Every edge is an ordinary HDF5-style open/read.
//
// Run with: go run ./examples/fanin-fanout
package main

import (
	"fmt"
	"log"

	"lowfive"
	"lowfive/h5"
	"lowfive/mpi"
)

const (
	fieldSide = 12
	numEvents = 64
)

func simulationA(p *mpi.Proc) {
	vol := lowfive.NewDistMetadataVOL(p.Task, nil)
	// One file pattern, two consumer intercomms: producers serve both.
	vol.SetIntercomm("fields.h5", p.Intercomm("viz"), p.Intercomm("stats"))
	fapl := h5.NewFileAccessProps(vol)

	f, err := h5.CreateFile("fields.h5", fapl)
	check(err)
	ds, err := f.CreateDataset("temperature", h5.F64, h5.NewSimple(fieldSide, fieldSide))
	check(err)
	n, r := int64(p.Task.Size()), int64(p.Task.Rank())
	r0, r1 := r*fieldSide/n, (r+1)*fieldSide/n
	sel := h5.NewSimple(fieldSide, fieldSide)
	check(sel.SelectHyperslab(h5.SelectSet, []int64{r0, 0}, []int64{r1 - r0, fieldSide}))
	vals := make([]float64, (r1-r0)*fieldSide)
	for i := range vals {
		vals[i] = float64(r0*fieldSide + int64(i))
	}
	check(ds.Write(nil, sel, h5.Bytes(vals)))
	check(ds.Close())
	check(f.Close()) // serves BOTH viz and stats until each is done
	if r == 0 {
		fmt.Println("simulationA: fields.h5 served to viz and stats")
	}
}

func simulationB(p *mpi.Proc) {
	vol := lowfive.NewDistMetadataVOL(p.Task, nil)
	vol.SetIntercomm("events.h5", p.Intercomm("stats"))
	fapl := h5.NewFileAccessProps(vol)

	f, err := h5.CreateFile("events.h5", fapl)
	check(err)
	ds, err := f.CreateDataset("energies", h5.F32, h5.NewSimple(numEvents))
	check(err)
	n, r := int64(p.Task.Size()), int64(p.Task.Rank())
	lo, hi := r*numEvents/n, (r+1)*numEvents/n
	sel := h5.NewSimple(numEvents)
	check(sel.SelectHyperslab(h5.SelectSet, []int64{lo}, []int64{hi - lo}))
	vals := make([]float32, hi-lo)
	for i := range vals {
		vals[i] = float32(lo + int64(i))
	}
	check(ds.Write(nil, sel, h5.Bytes(vals)))
	check(ds.Close())
	check(f.Close())
	if r == 0 {
		fmt.Println("simulationB: events.h5 served to stats")
	}
}

func viz(p *mpi.Proc) {
	vol := lowfive.NewDistMetadataVOL(p.Task, nil)
	vol.SetIntercomm("fields.h5", p.Intercomm("simA"))
	fapl := h5.NewFileAccessProps(vol)

	f, err := h5.OpenFile("fields.h5", fapl)
	check(err)
	ds, err := f.OpenDataset("temperature")
	check(err)
	// Column bands — a different decomposition than simulationA wrote.
	m, r := int64(p.Task.Size()), int64(p.Task.Rank())
	c0, c1 := r*fieldSide/m, (r+1)*fieldSide/m
	sel := h5.NewSimple(fieldSide, fieldSide)
	check(sel.SelectHyperslab(h5.SelectSet, []int64{0, c0}, []int64{fieldSide, c1 - c0}))
	vals := make([]float64, sel.NumSelected())
	check(ds.Read(nil, sel, h5.Bytes(vals)))
	for i, v := range vals {
		row := int64(i) / (c1 - c0)
		col := c0 + int64(i)%(c1-c0)
		if v != float64(row*fieldSide+col) {
			log.Fatalf("viz %d: (%d,%d)=%v", r, row, col, v)
		}
	}
	check(ds.Close())
	check(f.Close())
	fmt.Printf("viz %d: rendered columns %d..%d\n", r, c0, c1-1)
}

func stats(p *mpi.Proc) {
	vol := lowfive.NewDistMetadataVOL(p.Task, nil)
	vol.SetIntercomm("fields.h5", p.Intercomm("simA"))
	vol.SetIntercomm("events.h5", p.Intercomm("simB"))
	fapl := h5.NewFileAccessProps(vol)

	// Fan-in edge 1: the whole temperature field.
	ff, err := h5.OpenFile("fields.h5", fapl)
	check(err)
	fds, err := ff.OpenDataset("temperature")
	check(err)
	field := make([]float64, fieldSide*fieldSide)
	check(fds.Read(nil, nil, h5.Bytes(field)))
	sum := 0.0
	for _, v := range field {
		sum += v
	}
	check(fds.Close())
	check(ff.Close())

	// Fan-in edge 2: all event energies.
	ef, err := h5.OpenFile("events.h5", fapl)
	check(err)
	eds, err := ef.OpenDataset("energies")
	check(err)
	energies := make([]float32, numEvents)
	check(eds.Read(nil, nil, h5.Bytes(energies)))
	esum := float32(0)
	for _, v := range energies {
		esum += v
	}
	check(eds.Close())
	check(ef.Close())

	wantField := float64(fieldSide*fieldSide-1) * float64(fieldSide*fieldSide) / 2
	wantE := float32(numEvents-1) * numEvents / 2
	if sum != wantField || esum != wantE {
		log.Fatalf("stats: field sum %v (want %v), energy sum %v (want %v)", sum, wantField, esum, wantE)
	}
	fmt.Printf("stats: mean temperature %.2f, mean energy %.2f\n",
		sum/float64(len(field)), esum/float32(numEvents))
}

func main() {
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "simA", Procs: 3, Main: simulationA},
		{Name: "simB", Procs: 2, Main: simulationB},
		{Name: "viz", Procs: 2, Main: viz},
		{Name: "stats", Procs: 1, Main: stats},
	})
	check(err)
	fmt.Println("fanin-fanout: OK")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
