// Async pipeline: the paper's future-work overlap (§V-C) in action — the
// producer serves snapshot k in the background (ServeAsync) while already
// computing and writing snapshot k+1, instead of blocking in the file close
// until the consumer is done. The snapshot also demonstrates extendable
// datasets (H5Dset_extent): an event log grows inside each step before the
// file is published.
//
// Run with: go run ./examples/async-pipeline
package main

import (
	"fmt"
	"log"
	"time"

	"lowfive"
	"lowfive/h5"
	"lowfive/mpi"
)

const (
	steps    = 4
	gridSide = 8
)

func producer(p *mpi.Proc) {
	vol := lowfive.NewDistMetadataVOL(p.Task, nil)
	vol.SetIntercomm("snap*", p.Intercomm("analysis"))
	vol.ServeOnClose = false // we manage serving ourselves
	fapl := h5.NewFileAccessProps(vol)

	n, r := int64(p.Task.Size()), int64(p.Task.Rank())
	var pending []*lowfive.ServeHandle
	start := time.Now()
	for step := 0; step < steps; step++ {
		name := fmt.Sprintf("snap%d", step)
		f, err := h5.CreateFile(name, fapl)
		check(err)

		// The field of this step, row-decomposed.
		ds, err := f.CreateDataset("field", h5.F64, h5.NewSimple(gridSide, gridSide))
		check(err)
		r0, r1 := r*gridSide/n, (r+1)*gridSide/n
		sel := h5.NewSimple(gridSide, gridSide)
		check(sel.SelectHyperslab(h5.SelectSet, []int64{r0, 0}, []int64{r1 - r0, gridSide}))
		vals := make([]float64, (r1-r0)*gridSide)
		for i := range vals {
			vals[i] = float64(step*1000) + float64(r0*gridSide+int64(i))
		}
		check(ds.Write(nil, sel, h5.Bytes(vals)))
		check(ds.Close())

		// An event log that grows during the step (rank 0 appends twice).
		if r == 0 {
			space, err := h5.NewSimpleMax([]int64{2}, []int64{h5.Unlimited})
			check(err)
			logDS, err := f.CreateDataset("events", h5.I64, space)
			check(err)
			check(logDS.Write(nil, nil, h5.Bytes([]int64{int64(step), int64(step) + 10})))
			check(logDS.Extend(4)) // two more events happened
			tail := h5.NewSimple(4)
			check(tail.SelectHyperslab(h5.SelectSet, []int64{2}, []int64{2}))
			check(logDS.Write(nil, tail, h5.Bytes([]int64{int64(step) + 20, int64(step) + 30})))
			check(logDS.Close())
		} else {
			// Dataset creation is collective in this workflow: the other
			// ranks create it too but write nothing.
			space, err := h5.NewSimpleMax([]int64{2}, []int64{h5.Unlimited})
			check(err)
			logDS, err := f.CreateDataset("events", h5.I64, space)
			check(err)
			check(logDS.Extend(4))
			check(logDS.Close())
		}

		check(f.Close()) // does NOT serve (ServeOnClose = false)
		h, err := vol.ServeAsync(name)
		check(err)
		pending = append(pending, h)
		fmt.Printf("producer %d: step %d published asynchronously, computing step %d...\n",
			r, step, step+1)
		// ... the next step's compute overlaps the previous step's serving.
	}
	for _, h := range pending {
		check(h.Wait())
	}
	if r == 0 {
		fmt.Printf("producer: %d overlapped steps in %v\n", steps, time.Since(start).Round(time.Millisecond))
	}
}

func analysis(p *mpi.Proc) {
	vol := lowfive.NewDistMetadataVOL(p.Task, nil)
	vol.SetIntercomm("snap*", p.Intercomm("producer"))
	fapl := h5.NewFileAccessProps(vol)

	m, r := int64(p.Task.Size()), int64(p.Task.Rank())
	for step := 0; step < steps; step++ {
		f, err := h5.OpenFile(fmt.Sprintf("snap%d", step), fapl)
		check(err)
		ds, err := f.OpenDataset("field")
		check(err)
		c0, c1 := r*gridSide/m, (r+1)*gridSide/m
		sel := h5.NewSimple(gridSide, gridSide)
		check(sel.SelectHyperslab(h5.SelectSet, []int64{0, c0}, []int64{gridSide, c1 - c0}))
		vals := make([]float64, sel.NumSelected())
		check(ds.Read(nil, sel, h5.Bytes(vals)))
		for i, v := range vals {
			row := int64(i) / (c1 - c0)
			col := c0 + int64(i)%(c1-c0)
			if want := float64(step*1000) + float64(row*gridSide+col); v != want {
				log.Fatalf("analysis %d step %d: (%d,%d)=%v want %v", r, step, row, col, v, want)
			}
		}
		check(ds.Close())

		// The event log arrived with its extended extent.
		events, err := f.OpenDataset("events")
		check(err)
		if dims := events.Dataspace().Dims(); dims[0] != 4 {
			log.Fatalf("analysis %d: events extent %v, want 4", r, dims)
		}
		ev := make([]int64, 4)
		check(events.Read(nil, nil, h5.Bytes(ev)))
		want := []int64{int64(step), int64(step) + 10, int64(step) + 20, int64(step) + 30}
		for i := range want {
			if ev[i] != want[i] {
				log.Fatalf("analysis %d step %d: events %v want %v", r, step, ev, want)
			}
		}
		check(events.Close())
		check(f.Close())
		fmt.Printf("analysis %d: step %d validated (field + %d events)\n", r, step, len(ev))
	}
}

func main() {
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "producer", Procs: 2, Main: producer},
		{Name: "analysis", Procs: 2, Main: analysis},
	})
	check(err)
	fmt.Println("async-pipeline: OK")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
