// AMR workflow: the paper's science use case as a runnable example — the
// Nyx proxy cosmology simulation coupled in situ to the Reeber proxy halo
// finder, with zero changes to either code. The simulation writes two
// snapshots of its baryon density field through the h5 API; the halo finder
// opens each "file", reads its own (different) decomposition, and reports
// the halos it finds. Everything travels over the distributed metadata VOL.
//
// Run with: go run ./examples/amr-workflow [-side 32] [-steps 2]
package main

import (
	"flag"
	"fmt"
	"log"

	"lowfive"
	"lowfive/h5"
	"lowfive/internal/nyx"
	"lowfive/internal/reeber"
	"lowfive/mpi"
)

var (
	side  = flag.Int64("side", 32, "grid side N for the N^3 density field")
	steps = flag.Int("steps", 2, "number of snapshots")
)

const (
	simProcs  = 8
	haloProcs = 2
	threshold = 10.0
)

func simulation(p *mpi.Proc) {
	vol := lowfive.NewDistMetadataVOL(p.Task, nil)
	vol.SetIntercomm("plt*", p.Intercomm("halofinder"))
	fapl := h5.NewFileAccessProps(vol)

	params := nyx.DefaultParams(*side)
	params.Repack = true     // AMReX-style repack: zero-copy is off, as in §IV-C
	params.FullOutput = true // write all variables; Reeber reads only the density
	sim, err := nyx.New(params, p.Task)
	check(err)
	for s := 0; s < *steps; s++ {
		if s > 0 {
			sim.Step()
		}
		// A little physics between outputs: explicit diffusion using
		// ghost-cell exchange with the neighboring ranks.
		check(sim.Diffuse(0.05))
		name := fmt.Sprintf("plt%05d", s)
		check(sim.WriteSnapshot(name, fapl))
		vol.RemoveFile(name) // delivered in situ; free the snapshot
		if p.Task.Rank() == 0 {
			fmt.Printf("nyx: snapshot %s published (%d^3 grid, %d halos seeded)\n",
				name, *side, params.NumHalos)
		}
	}
	if p.Task.Rank() == 0 {
		st := vol.Stats()
		fmt.Printf("nyx rank 0 served %d data queries, %d bytes — only the density was pulled;\n"+
			"  velocity, dark matter and the refined level were never transported\n",
			st.DataQueries, st.BytesServed)
	}
}

func halofinder(p *mpi.Proc) {
	vol := lowfive.NewDistMetadataVOL(p.Task, nil)
	vol.SetIntercomm("plt*", p.Intercomm("simulation"))
	fapl := h5.NewFileAccessProps(vol)

	want := nyx.DefaultParams(*side).NumHalos
	for s := 0; s < *steps; s++ {
		name := fmt.Sprintf("plt%05d", s)
		f, err := h5.OpenFile(name, fapl)
		check(err)
		res, err := reeber.ReadAndFind(p.Task, f, nyx.DatasetPath, threshold)
		check(err)
		check(f.Close())
		if p.Task.Rank() == 0 {
			fmt.Printf("reeber: %s -> %d halos, total mass %.1f, largest %.1f (%d cells)\n",
				name, res.NumHalos, res.TotalMass, res.MaxMass, res.Cells)
			if res.NumHalos != want {
				log.Fatalf("expected %d halos, found %d", want, res.NumHalos)
			}
		}
	}
}

func main() {
	flag.Parse()
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "simulation", Procs: simProcs, Main: simulation},
		{Name: "halofinder", Procs: haloProcs, Main: halofinder},
	})
	check(err)
	fmt.Println("amr-workflow: OK")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
