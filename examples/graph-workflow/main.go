// Graph workflow: the declarative layer the paper's future work announces —
// a JSON task graph (the shape of the authors' follow-up system, Wilkins)
// launched MPMD-style with LowFive wired along every edge. A three-stage
// pipeline sim -> filter -> plot flows one file pattern in situ through an
// intermediate task that both consumes and produces it.
//
// Run with: go run ./examples/graph-workflow
package main

import (
	"fmt"
	"log"

	"lowfive"
	"lowfive/h5"
	"lowfive/mpi"
	"lowfive/workflow"
)

const graphJSON = `{
  "tasks": [
    {"name": "sim",    "procs": 4},
    {"name": "filter", "procs": 2},
    {"name": "plot",   "procs": 1}
  ],
  "edges": [
    {"from": "sim",    "to": "filter", "pattern": "field-*"},
    {"from": "filter", "to": "plot",   "pattern": "field-*"}
  ]
}`

const n = 16

func main() {
	g, err := workflow.ParseJSON([]byte(graphJSON))
	check(err)

	check(g.Bind("sim", func(p *mpi.Proc, vol *lowfive.DistMetadataVOL, fapl *h5.FileAccessProps) {
		f, err := h5.CreateFile("field-raw", fapl)
		check(err)
		ds, err := f.CreateDataset("u", h5.F64, h5.NewSimple(n))
		check(err)
		r := int64(p.Task.Rank())
		lo, hi := r*n/4, (r+1)*n/4
		sel := h5.NewSimple(n)
		check(sel.SelectHyperslab(h5.SelectSet, []int64{lo}, []int64{hi - lo}))
		vals := make([]float64, hi-lo)
		for i := range vals {
			vals[i] = float64(lo + int64(i))
		}
		check(ds.Write(nil, sel, h5.Bytes(vals)))
		check(f.Close())
	}))

	check(g.Bind("filter", func(p *mpi.Proc, vol *lowfive.DistMetadataVOL, fapl *h5.FileAccessProps) {
		in, err := h5.OpenFile("field-raw", fapl)
		check(err)
		ds, err := in.OpenDataset("u")
		check(err)
		r := int64(p.Task.Rank())
		lo, hi := r*n/2, (r+1)*n/2
		sel := h5.NewSimple(n)
		check(sel.SelectHyperslab(h5.SelectSet, []int64{lo}, []int64{hi - lo}))
		vals := make([]float64, hi-lo)
		check(ds.Read(nil, sel, h5.Bytes(vals)))
		check(in.Close())

		for i := range vals {
			vals[i] = vals[i] * vals[i] // the "filter": square the field
		}
		out, err := h5.CreateFile("field-sq", fapl)
		check(err)
		ods, err := out.CreateDataset("u", h5.F64, h5.NewSimple(n))
		check(err)
		check(ods.Write(nil, sel, h5.Bytes(vals)))
		check(out.Close())
		fmt.Printf("filter %d: squared elements %d..%d\n", r, lo, hi-1)
	}))

	check(g.Bind("plot", func(p *mpi.Proc, vol *lowfive.DistMetadataVOL, fapl *h5.FileAccessProps) {
		f, err := h5.OpenFile("field-sq", fapl)
		check(err)
		ds, err := f.OpenDataset("u")
		check(err)
		vals := make([]float64, n)
		check(ds.Read(nil, nil, h5.Bytes(vals)))
		check(f.Close())
		for i, v := range vals {
			if v != float64(i*i) {
				log.Fatalf("plot: u[%d]=%v want %d", i, v, i*i)
			}
		}
		fmt.Println("plot: received the squared field, rendering ▂▃▅▆█ ...")
	}))

	check(workflow.Run(g, nil))
	fmt.Println("graph-workflow: OK")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
