// Producer-consumer: a time-stepped simulation/analysis coupling showing
// the three transport modes side by side with zero changes to the
// producer/consumer logic — only the VOL configuration differs:
//
//   - memory:   in situ exchange over (simulated) MPI (the LowFive default)
//   - file:     container files on a simulated parallel file system
//   - both:     in situ exchange AND a checkpoint file per step
//
// The producer writes a grid and a particle list per step (the paper's
// synthetic workload shape), with zero-copy enabled for the particle
// dataset; the consumer reads both with its own decomposition, and in
// "both" mode the checkpoint files are verified on "disk" afterwards.
//
// Run with: go run ./examples/producer-consumer [-mode memory|file|both]
package main

import (
	"flag"
	"fmt"
	"log"

	"lowfive"
	"lowfive/h5"
	"lowfive/mpi"
)

const (
	producers = 4
	consumers = 2
	steps     = 3
	gridSide  = 16
	particles = 300
)

var mode = flag.String("mode", "both", "transport: memory|file|both")

// buildVOL wires the per-rank VOL for the chosen mode; this function is the
// ONLY place the transport appears.
func buildVOL(p *mpi.Proc, fs *lowfive.FS, peer string) *h5.FileAccessProps {
	var base h5.Connector
	if *mode != "memory" {
		base = lowfive.NewBaseVOL(fs)
	}
	vol := lowfive.NewDistMetadataVOL(p.Task, base)
	switch *mode {
	case "memory":
		vol.SetIntercomm("step*.h5", p.Intercomm(peer))
	case "file":
		vol.SetMemory("*", false)
		vol.SetPassthru("*", true)
	case "both":
		vol.SetPassthru("*", true) // checkpoint AND serve in situ
		vol.SetIntercomm("step*.h5", p.Intercomm(peer))
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
	vol.SetZeroCopy("*", "/particles")
	return h5.NewFileAccessProps(vol)
}

func producer(p *mpi.Proc, fs *lowfive.FS) {
	fapl := buildVOL(p, fs, "consumer")
	n, r := int64(p.Task.Size()), int64(p.Task.Rank())
	for step := 0; step < steps; step++ {
		f, err := h5.CreateFile(fmt.Sprintf("step%d.h5", step), fapl)
		check(err)

		// Grid: each rank a band of rows, values = global index + step.
		gds, err := f.CreateDataset("grid", h5.U64, h5.NewSimple(gridSide, gridSide))
		check(err)
		r0, r1 := r*gridSide/n, (r+1)*gridSide/n
		gsel := h5.NewSimple(gridSide, gridSide)
		check(gsel.SelectHyperslab(h5.SelectSet, []int64{r0, 0}, []int64{r1 - r0, gridSide}))
		gvals := make([]uint64, (r1-r0)*gridSide)
		for i := range gvals {
			gvals[i] = uint64(int(r0)*gridSide+i) + uint64(step)<<32
		}
		check(gds.Write(nil, gsel, h5.Bytes(gvals)))
		check(gds.WriteAttribute("step", h5.I64, h5.Bytes([]int64{int64(step)})))
		check(gds.Close())

		// Particles: contiguous ranges of [N,3] float32, zero-copy (the
		// buffer must stay untouched until the file is closed).
		pds, err := f.CreateDataset("particles", h5.F32, h5.NewSimple(particles, 3))
		check(err)
		lo, hi := r*particles/n, (r+1)*particles/n
		psel := h5.NewSimple(particles, 3)
		check(psel.SelectHyperslab(h5.SelectSet, []int64{lo, 0}, []int64{hi - lo, 3}))
		pvals := make([]float32, (hi-lo)*3)
		for i := range pvals {
			pvals[i] = float32(lo*3+int64(i)) + float32(step)
		}
		check(pds.Write(nil, psel, h5.Bytes(pvals)))
		check(pds.Close())

		check(f.Close())
		if r == 0 {
			fmt.Printf("producer: step %d published (%s mode)\n", step, *mode)
		}
	}
}

func consumer(p *mpi.Proc, fs *lowfive.FS) {
	fapl := buildVOL(p, fs, "producer")
	m, r := int64(p.Task.Size()), int64(p.Task.Rank())
	for step := 0; step < steps; step++ {
		if *mode == "file" {
			// File mode has no producer/consumer synchronization: wait for
			// the writers before opening (a workflow system would sequence
			// the tasks; here the world barrier plays that role).
			p.World.Barrier()
		}
		f, err := h5.OpenFile(fmt.Sprintf("step%d.h5", step), fapl)
		check(err)

		gds, err := f.OpenDataset("grid")
		check(err)
		_, stepAttr, err := gds.ReadAttribute("step")
		check(err)
		if got := h5.View[int64](stepAttr)[0]; got != int64(step) {
			log.Fatalf("consumer %d: step attribute %d, want %d", r, got, step)
		}
		// Column-wise read.
		c0, c1 := r*gridSide/m, (r+1)*gridSide/m
		gsel := h5.NewSimple(gridSide, gridSide)
		check(gsel.SelectHyperslab(h5.SelectSet, []int64{0, c0}, []int64{gridSide, c1 - c0}))
		gvals := make([]uint64, gsel.NumSelected())
		check(gds.Read(nil, gsel, h5.Bytes(gvals)))
		for i, v := range gvals {
			row := int64(i) / (c1 - c0)
			col := c0 + int64(i)%(c1-c0)
			want := uint64(row*gridSide+col) + uint64(step)<<32
			if v != want {
				log.Fatalf("consumer %d step %d: grid (%d,%d) = %d, want %d", r, step, row, col, v, want)
			}
		}
		check(gds.Close())

		pds, err := f.OpenDataset("particles")
		check(err)
		lo, hi := r*particles/m, (r+1)*particles/m
		psel := h5.NewSimple(particles, 3)
		check(psel.SelectHyperslab(h5.SelectSet, []int64{lo, 0}, []int64{hi - lo, 3}))
		pvals := make([]float32, psel.NumSelected())
		check(pds.Read(nil, psel, h5.Bytes(pvals)))
		for i, v := range pvals {
			if want := float32(lo*3+int64(i)) + float32(step); v != want {
				log.Fatalf("consumer %d step %d: particle %d = %v, want %v", r, step, i, v, want)
			}
		}
		check(pds.Close())
		check(f.Close())
		fmt.Printf("consumer %d: step %d validated\n", r, step)
	}
}

func main() {
	flag.Parse()
	fs := lowfive.NewZeroCostFS()
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "producer", Procs: producers, Main: func(p *mpi.Proc) {
			producer(p, fs)
			if *mode == "file" {
				for i := 0; i < steps; i++ {
					p.World.Barrier()
				}
			}
		}},
		{Name: "consumer", Procs: consumers, Main: func(p *mpi.Proc) { consumer(p, fs) }},
	})
	check(err)
	if *mode != "memory" {
		// The checkpoints really are on the (simulated) file system.
		for step := 0; step < steps; step++ {
			name := fmt.Sprintf("step%d.h5", step)
			if !fs.Exists(name) {
				log.Fatalf("checkpoint %s missing from the file system", name)
			}
		}
		w, rd := fs.Stats()
		fmt.Printf("file system: %d bytes written, %d bytes read\n", w, rd)
	}
	fmt.Println("producer-consumer: OK")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
