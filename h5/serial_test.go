package h5

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncoderDecoderPrimitives(t *testing.T) {
	var e Encoder
	e.PutU8(7)
	e.PutI64(-42)
	e.PutString("hello")
	e.PutBytes([]byte{1, 2, 3})
	d := &Decoder{Buf: e.Buf}
	if d.U8() != 7 || d.I64() != -42 || d.String() != "hello" {
		t.Error("primitive roundtrip failed")
	}
	if b := d.Bytes(); len(b) != 3 || b[2] != 3 {
		t.Errorf("bytes %v", b)
	}
	if d.Err != nil {
		t.Error(d.Err)
	}
	// Reading past the end sets Err and returns zero values.
	if d.I64() != 0 || d.Err == nil {
		t.Error("over-read should set Err")
	}
}

func TestDecoderRandomBytesNeverPanic(t *testing.T) {
	// Property: feeding arbitrary bytes to the decoders returns an error or
	// a structurally valid value, never panics.
	f := func(seed int64, n uint16) bool {
		r := rand.New(rand.NewSource(seed))
		buf := make([]byte, int(n)%512)
		r.Read(buf)
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("UnmarshalDatatype panicked on %d bytes: %v", len(buf), rec)
				}
			}()
			dt, err := UnmarshalDatatype(buf)
			if err == nil && dt == nil {
				t.Fatal("nil datatype without error")
			}
		}()
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("UnmarshalDataspace panicked on %d bytes: %v", len(buf), rec)
				}
			}()
			sp, err := UnmarshalDataspace(buf)
			if err == nil && sp == nil {
				t.Fatal("nil dataspace without error")
			}
		}()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDataspaceDecodeRejectsBadRank(t *testing.T) {
	var e Encoder
	e.PutI64(100) // rank 100 > 64 limit
	if _, err := UnmarshalDataspace(e.Buf); err == nil {
		t.Error("excessive rank should fail")
	}
	var e2 Encoder
	e2.PutI64(0)
	if _, err := UnmarshalDataspace(e2.Buf); err == nil {
		t.Error("zero rank should fail")
	}
}
