package h5

import (
	"fmt"
	"math"
)

// Datatype conversion between numeric types, the H5T soft-conversion path:
// HDF5 converts between the file datatype and the (different) memory
// datatype during H5Dread/H5Dwrite. Supported: any integer width/signedness
// and float32/float64, in any combination, with clamping on narrowing
// (HDF5's default hard conversion also clamps out-of-range values).

// Convertible reports whether Convert supports the pair: any combination
// of fixed-width integers and floats, or compound-to-compound where every
// destination field exists in the source (by name) with convertible types —
// the H5T subset-of-fields read that lets a consumer extract, say, just the
// coordinates from a particle record.
func Convertible(dst, src *Datatype) bool {
	if dst.Class == ClassCompound && src.Class == ClassCompound {
		for _, df := range dst.Fields {
			sf, ok := src.FieldByName(df.Name)
			if !ok || !Convertible(df.Type, sf.Type) {
				return false
			}
		}
		return true
	}
	ok := func(t *Datatype) bool {
		switch t.Class {
		case ClassInteger:
			return t.Size == 1 || t.Size == 2 || t.Size == 4 || t.Size == 8
		case ClassFloat:
			return t.Size == 4 || t.Size == 8
		}
		return false
	}
	return ok(dst) && ok(src)
}

// loadElem reads element i of buf as a canonical pair (int64, float64, isFloat).
func loadElem(buf []byte, i int, t *Datatype) (iv int64, fv float64, isFloat bool) {
	off := i * t.Size
	switch t.Class {
	case ClassFloat:
		if t.Size == 4 {
			return 0, float64(View[float32](buf[off : off+4])[0]), true
		}
		return 0, View[float64](buf[off : off+8])[0], true
	default: // integer
		switch t.Size {
		case 1:
			if t.Signed {
				return int64(int8(buf[off])), 0, false
			}
			return int64(buf[off]), 0, false
		case 2:
			if t.Signed {
				return int64(View[int16](buf[off : off+2])[0]), 0, false
			}
			return int64(View[uint16](buf[off : off+2])[0]), 0, false
		case 4:
			if t.Signed {
				return int64(View[int32](buf[off : off+4])[0]), 0, false
			}
			return int64(View[uint32](buf[off : off+4])[0]), 0, false
		default:
			if t.Signed {
				return View[int64](buf[off : off+8])[0], 0, false
			}
			// uint64 values above MaxInt64 clamp through the canonical
			// int64 only when converting to signed/narrower targets; keep
			// the bit pattern and let storeElem decide via unsigned path.
			return int64(View[uint64](buf[off : off+8])[0]), 0, false
		}
	}
}

func clampInt(v int64, size int, signed bool) int64 {
	if signed {
		lo := int64(-1) << (size*8 - 1)
		hi := -lo - 1
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	if v < 0 {
		return 0
	}
	if size < 8 {
		hi := int64(1)<<(size*8) - 1
		if v > hi {
			return hi
		}
	}
	return v
}

// storeElem writes the canonical value into element i of buf.
func storeElem(buf []byte, i int, t *Datatype, iv int64, fv float64, isFloat bool) {
	off := i * t.Size
	switch t.Class {
	case ClassFloat:
		f := fv
		if !isFloat {
			f = float64(iv)
		}
		if t.Size == 4 {
			View[float32](buf[off : off+4])[0] = float32(f)
		} else {
			View[float64](buf[off : off+8])[0] = f
		}
	default:
		v := iv
		if isFloat {
			// Truncate toward zero, clamping NaN to 0 and infinities to the
			// integer range bounds (HDF5 hard-conversion behaviour).
			switch {
			case math.IsNaN(fv):
				v = 0
			case fv >= math.MaxInt64:
				v = math.MaxInt64
			case fv <= math.MinInt64:
				v = math.MinInt64
			default:
				v = int64(fv)
			}
		}
		v = clampInt(v, t.Size, t.Signed)
		switch t.Size {
		case 1:
			buf[off] = byte(v)
		case 2:
			View[uint16](buf[off : off+2])[0] = uint16(v)
		case 4:
			View[uint32](buf[off : off+4])[0] = uint32(v)
		default:
			View[uint64](buf[off : off+8])[0] = uint64(v)
		}
	}
}

// Convert converts n = len(src)/srcType.Size elements from srcType to
// dstType, writing into dst (which must hold n dstType elements).
func Convert(dst []byte, dstType *Datatype, src []byte, srcType *Datatype) error {
	if !Convertible(dstType, srcType) {
		return fmt.Errorf("h5: no conversion from %s to %s", srcType, dstType)
	}
	if len(src)%srcType.Size != 0 {
		return fmt.Errorf("h5: source length %d not a multiple of %s size", len(src), srcType)
	}
	n := len(src) / srcType.Size
	if len(dst) < n*dstType.Size {
		return fmt.Errorf("h5: destination holds %d elements, need %d", len(dst)/dstType.Size, n)
	}
	if dstType.Equal(srcType) {
		copy(dst, src)
		return nil
	}
	if dstType.Class == ClassCompound {
		// Field-by-field: each destination field pulls the same-named source
		// field, converting scalars as needed.
		for _, df := range dstType.Fields {
			sf, _ := srcType.FieldByName(df.Name)
			for i := 0; i < n; i++ {
				so := i*srcType.Size + sf.Offset
				do := i*dstType.Size + df.Offset
				if df.Type.Equal(sf.Type) {
					copy(dst[do:do+df.Type.Size], src[so:so+sf.Type.Size])
					continue
				}
				iv, fv, isF := loadElem(src[so:so+sf.Type.Size], 0, sf.Type)
				storeElem(dst[do:do+df.Type.Size], 0, df.Type, iv, fv, isF)
			}
		}
		return nil
	}
	for i := 0; i < n; i++ {
		iv, fv, isF := loadElem(src, i, srcType)
		storeElem(dst, i, dstType, iv, fv, isF)
	}
	return nil
}

// ReadAs reads the fileSpace-selected elements and converts them to memType
// into data (packed in selection order; memType must be convertible from
// the dataset's type). This is HDF5's read-with-memory-type.
func (d *Dataset) ReadAs(memType *Datatype, fileSpace *Dataspace, data []byte) error {
	fileType := d.h.Datatype()
	if memType.Equal(fileType) {
		return d.Read(nil, fileSpace, data)
	}
	if !Convertible(memType, fileType) {
		return fmt.Errorf("h5: cannot read %s dataset as %s", fileType, memType)
	}
	n := d.h.Dataspace().NumPoints()
	if fileSpace != nil {
		n = fileSpace.NumSelected()
	}
	raw := make([]byte, n*int64(fileType.Size))
	if err := d.Read(nil, fileSpace, raw); err != nil {
		return err
	}
	return Convert(data, memType, raw, fileType)
}

// WriteAs converts data (packed elements of memType, selection order) to
// the dataset's type and writes the fileSpace selection.
func (d *Dataset) WriteAs(memType *Datatype, fileSpace *Dataspace, data []byte) error {
	fileType := d.h.Datatype()
	if memType.Equal(fileType) {
		return d.Write(nil, fileSpace, data)
	}
	if !Convertible(fileType, memType) {
		return fmt.Errorf("h5: cannot write %s data to %s dataset", memType, fileType)
	}
	n := len(data) / memType.Size
	raw := make([]byte, n*fileType.Size)
	if err := Convert(raw, fileType, data, memType); err != nil {
		return err
	}
	return d.Write(nil, fileSpace, raw)
}
