package h5_test

import (
	"testing"

	"lowfive/h5"
	"lowfive/internal/core"
	"lowfive/internal/native"
	"lowfive/internal/pfs"
)

func TestNewSimpleMaxValidation(t *testing.T) {
	if _, err := h5.NewSimpleMax([]int64{4}, []int64{4, 4}); err == nil {
		t.Error("rank mismatch should fail")
	}
	if _, err := h5.NewSimpleMax([]int64{4}, []int64{2}); err == nil {
		t.Error("max below current should fail")
	}
	sp, err := h5.NewSimpleMax([]int64{4}, []int64{h5.Unlimited})
	if err != nil {
		t.Fatal(err)
	}
	if !sp.Extendable() {
		t.Error("unlimited dataspace should be extendable")
	}
	if h5.NewSimple(4).Extendable() {
		t.Error("fixed dataspace should not be extendable")
	}
	md := sp.MaxDims()
	if md[0] != h5.Unlimited {
		t.Errorf("max dims %v", md)
	}
	if fixed := h5.NewSimple(3).MaxDims(); fixed[0] != 3 {
		t.Errorf("fixed max dims %v", fixed)
	}
}

func TestDataspaceSetExtent(t *testing.T) {
	sp, _ := h5.NewSimpleMax([]int64{2, 4}, []int64{8, 4})
	if err := sp.SetExtent([]int64{6, 4}); err != nil {
		t.Fatal(err)
	}
	if d := sp.Dims(); d[0] != 6 {
		t.Errorf("dims %v", d)
	}
	if err := sp.SetExtent([]int64{9, 4}); err == nil {
		t.Error("exceeding max should fail")
	}
	if err := sp.SetExtent([]int64{6}); err == nil {
		t.Error("rank mismatch should fail")
	}
	if err := sp.SetExtent([]int64{0, 4}); err == nil {
		t.Error("non-positive extent should fail")
	}
	// Fixed dataspaces cannot grow (but can "set" to the same extent).
	fixed := h5.NewSimple(4)
	if err := fixed.SetExtent([]int64{4}); err != nil {
		t.Error(err)
	}
	if err := fixed.SetExtent([]int64{5}); err == nil {
		t.Error("growing a fixed dataspace should fail")
	}
	// Shrinking is allowed (H5Dset_extent semantics).
	if err := sp.SetExtent([]int64{2, 4}); err != nil {
		t.Error(err)
	}
}

func TestExtendThroughMetadataVOL(t *testing.T) {
	fapl := h5.NewFileAccessProps(core.NewMetadataVOL(nil))
	f, _ := h5.CreateFile("ext.h5", fapl)
	sp, _ := h5.NewSimpleMax([]int64{4}, []int64{h5.Unlimited})
	ds, err := f.CreateDataset("log", h5.I64, sp)
	if err != nil {
		t.Fatal(err)
	}
	ds.Write(nil, nil, h5.Bytes([]int64{1, 2, 3, 4}))
	if err := ds.Extend(8); err != nil {
		t.Fatal(err)
	}
	if d := ds.Dataspace().Dims(); d[0] != 8 {
		t.Fatalf("dims after extend %v", d)
	}
	sel := h5.NewSimple(8)
	sel.SelectHyperslab(h5.SelectSet, []int64{4}, []int64{4})
	ds.Write(nil, sel, h5.Bytes([]int64{5, 6, 7, 8}))
	out := make([]int64, 8)
	if err := ds.Read(nil, nil, h5.Bytes(out)); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != int64(i)+1 {
			t.Errorf("out[%d]=%d", i, v)
		}
	}
}

func TestExtendThroughNativeVOL(t *testing.T) {
	conn := native.New(native.PFSBackend(pfs.NewZeroCost()))
	fapl := h5.NewFileAccessProps(conn)
	f, _ := h5.CreateFile("extn.h5", fapl)
	// Native requires bounded max dims.
	unb, _ := h5.NewSimpleMax([]int64{2}, []int64{h5.Unlimited})
	if _, err := f.CreateDataset("bad", h5.U8, unb); err == nil {
		t.Error("unlimited dims should be rejected by the contiguous layout")
	}
	sp, _ := h5.NewSimpleMax([]int64{2, 3}, []int64{4, 3})
	ds, err := f.CreateDataset("grow", h5.U8, sp)
	if err != nil {
		t.Fatal(err)
	}
	ds.Write(nil, nil, []byte{1, 2, 3, 4, 5, 6})
	if err := ds.Extend(4, 3); err != nil {
		t.Fatal(err)
	}
	sel := h5.NewSimple(4, 3)
	sel.SelectHyperslab(h5.SelectSet, []int64{2, 0}, []int64{2, 3})
	ds.Write(nil, sel, []byte{7, 8, 9, 10, 11, 12})
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Everything written before and after the extension reads back.
	f2, _ := h5.OpenFile("extn.h5", fapl)
	ds2, _ := f2.OpenDataset("grow")
	if d := ds2.Dataspace().Dims(); d[0] != 4 {
		t.Fatalf("persisted dims %v", d)
	}
	out := make([]byte, 12)
	if err := ds2.Read(nil, nil, out); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != byte(i)+1 {
			t.Errorf("out[%d]=%d", i, v)
		}
	}
}

func TestMaxDimsSerialRoundTrip(t *testing.T) {
	sp, _ := h5.NewSimpleMax([]int64{2, 3}, []int64{h5.Unlimited, 6})
	got, err := h5.UnmarshalDataspace(h5.MarshalDataspace(sp))
	if err != nil {
		t.Fatal(err)
	}
	md := got.MaxDims()
	if md[0] != h5.Unlimited || md[1] != 6 {
		t.Errorf("max dims %v", md)
	}
}
