package h5

import (
	"encoding/binary"
	"fmt"

	"lowfive/internal/grid"
)

// Binary serialization of datatypes and dataspaces, used by both the native
// container file format and the in situ transport. Little-endian throughout.

// Encoder appends primitive values to a buffer.
type Encoder struct{ Buf []byte }

// PutU8 appends one byte.
func (e *Encoder) PutU8(v uint8) { e.Buf = append(e.Buf, v) }

// PutI64 appends a little-endian int64.
func (e *Encoder) PutI64(v int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	e.Buf = append(e.Buf, b[:]...)
}

// PutString appends a length-prefixed string.
func (e *Encoder) PutString(s string) {
	e.PutI64(int64(len(s)))
	e.Buf = append(e.Buf, s...)
}

// PutBytes appends length-prefixed raw bytes.
func (e *Encoder) PutBytes(b []byte) {
	e.PutI64(int64(len(b)))
	e.Buf = append(e.Buf, b...)
}

// Decoder consumes primitive values from a buffer.
type Decoder struct {
	Buf []byte
	Pos int
	Err error
}

func (d *Decoder) fail(what string) {
	if d.Err == nil {
		d.Err = fmt.Errorf("h5: truncated encoding reading %s at offset %d", what, d.Pos)
	}
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	if d.Err != nil || d.Pos+1 > len(d.Buf) {
		d.fail("u8")
		return 0
	}
	v := d.Buf[d.Pos]
	d.Pos++
	return v
}

// I64 reads a little-endian int64.
func (d *Decoder) I64() int64 {
	if d.Err != nil || d.Pos+8 > len(d.Buf) {
		d.fail("i64")
		return 0
	}
	v := int64(binary.LittleEndian.Uint64(d.Buf[d.Pos:]))
	d.Pos += 8
	return v
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.I64()
	if d.Err != nil || n < 0 || d.Pos+int(n) > len(d.Buf) {
		d.fail("string")
		return ""
	}
	s := string(d.Buf[d.Pos : d.Pos+int(n)])
	d.Pos += int(n)
	return s
}

// Bytes reads length-prefixed raw bytes (aliasing the underlying buffer).
func (d *Decoder) Bytes() []byte {
	n := d.I64()
	if d.Err != nil || n < 0 || d.Pos+int(n) > len(d.Buf) {
		d.fail("bytes")
		return nil
	}
	b := d.Buf[d.Pos : d.Pos+int(n) : d.Pos+int(n)]
	d.Pos += int(n)
	return b
}

// EncodeDatatype appends t's encoding to the encoder.
func EncodeDatatype(e *Encoder, t *Datatype) {
	e.PutU8(uint8(t.Class))
	e.PutI64(int64(t.Size))
	if t.Signed {
		e.PutU8(1)
	} else {
		e.PutU8(0)
	}
	e.PutI64(int64(len(t.Fields)))
	for _, f := range t.Fields {
		e.PutString(f.Name)
		e.PutI64(int64(f.Offset))
		EncodeDatatype(e, f.Type)
	}
	if t.Elem != nil {
		e.PutU8(1)
		EncodeDatatype(e, t.Elem)
		e.PutI64(int64(len(t.Dims)))
		for _, d := range t.Dims {
			e.PutI64(d)
		}
	} else {
		e.PutU8(0)
	}
}

// remaining returns the undecoded byte count, the bound for any claimed
// element count: a corrupt count larger than the bytes that could encode it
// must be rejected before allocating, not after.
func (d *Decoder) remaining() int64 {
	if d.Err != nil || d.Pos > len(d.Buf) {
		return 0
	}
	return int64(len(d.Buf) - d.Pos)
}

// DecodeDatatype reads a datatype encoding.
func DecodeDatatype(d *Decoder) *Datatype {
	t := &Datatype{Class: Class(d.U8()), Size: int(d.I64()), Signed: d.U8() == 1}
	nf := d.I64()
	// Every field costs at least 8 bytes (its name length prefix), so a
	// count beyond remaining/8 cannot be honest.
	if d.Err != nil || nf < 0 || nf > d.remaining()/8 {
		if nf != 0 {
			d.fail("datatype fields")
		}
		return t
	}
	for i := int64(0); i < nf && d.Err == nil; i++ {
		f := Field{Name: d.String(), Offset: int(d.I64())}
		f.Type = DecodeDatatype(d)
		t.Fields = append(t.Fields, f)
	}
	if d.U8() == 1 {
		t.Elem = DecodeDatatype(d)
		nd := d.I64()
		if d.Err != nil || nd < 0 || nd > 64 {
			d.fail("datatype dims")
			return t
		}
		for i := int64(0); i < nd; i++ {
			t.Dims = append(t.Dims, d.I64())
		}
	}
	return t
}

// EncodeDataspace appends s's encoding (extent, max extent and selection).
func EncodeDataspace(e *Encoder, s *Dataspace) {
	e.PutI64(int64(len(s.dims)))
	for _, d := range s.dims {
		e.PutI64(d)
	}
	if s.maxDims == nil {
		e.PutU8(0)
	} else {
		e.PutU8(1)
		for _, d := range s.maxDims {
			e.PutI64(d)
		}
	}
	e.PutU8(uint8(s.kind))
	e.PutI64(int64(len(s.boxes)))
	for _, b := range s.boxes {
		for d := range b.Min {
			e.PutI64(b.Min[d])
			e.PutI64(b.Max[d])
		}
	}
	e.PutI64(int64(len(s.points)))
	for _, p := range s.points {
		for _, c := range p {
			e.PutI64(c)
		}
	}
}

// DecodeDataspace reads a dataspace encoding.
func DecodeDataspace(d *Decoder) *Dataspace {
	nd := d.I64()
	if d.Err != nil || nd <= 0 || nd > 64 {
		d.fail("dataspace rank")
		return &Dataspace{dims: []int64{1}, kind: selNone}
	}
	s := &Dataspace{dims: make([]int64, nd)}
	for i := range s.dims {
		s.dims[i] = d.I64()
	}
	if d.U8() == 1 {
		s.maxDims = make([]int64, nd)
		for i := range s.maxDims {
			s.maxDims[i] = d.I64()
		}
	}
	s.kind = selKind(d.U8())
	nb := d.I64()
	// Each box encodes 16*nd bytes; a larger count than the buffer can hold
	// is corruption, rejected before any allocation.
	if d.Err != nil || nb < 0 || nb > d.remaining()/(16*nd) {
		if nb != 0 {
			d.fail("dataspace boxes")
		}
		return s
	}
	for i := int64(0); i < nb && d.Err == nil; i++ {
		b := grid.Box{Min: make([]int64, nd), Max: make([]int64, nd)}
		for k := int64(0); k < nd; k++ {
			b.Min[k] = d.I64()
			b.Max[k] = d.I64()
		}
		s.boxes = append(s.boxes, b)
	}
	np := d.I64()
	if d.Err != nil || np < 0 || np > d.remaining()/(8*nd) {
		if np != 0 {
			d.fail("dataspace points")
		}
		return s
	}
	for i := int64(0); i < np && d.Err == nil; i++ {
		p := make([]int64, nd)
		for k := range p {
			p[k] = d.I64()
		}
		s.points = append(s.points, p)
	}
	return s
}

// MarshalDatatype encodes a datatype to a fresh buffer.
func MarshalDatatype(t *Datatype) []byte {
	var e Encoder
	EncodeDatatype(&e, t)
	return e.Buf
}

// UnmarshalDatatype decodes a datatype.
func UnmarshalDatatype(b []byte) (*Datatype, error) {
	d := &Decoder{Buf: b}
	t := DecodeDatatype(d)
	return t, d.Err
}

// MarshalDataspace encodes a dataspace to a fresh buffer.
func MarshalDataspace(s *Dataspace) []byte {
	var e Encoder
	EncodeDataspace(&e, s)
	return e.Buf
}

// UnmarshalDataspace decodes a dataspace.
func UnmarshalDataspace(b []byte) (*Dataspace, error) {
	d := &Decoder{Buf: b}
	s := DecodeDataspace(d)
	return s, d.Err
}
