package h5

import (
	"testing"

	"lowfive/internal/grid"
)

// collect drains the iterator, asserting each emitted box respects the
// budget (except unsplittable single elements) and stays inside sel's
// selection; it returns the boxes.
func collect(t *testing.T, space *Dataspace, elemSize int64, maxBytes int) []grid.Box {
	t.Helper()
	it := NewChunkIter(space, elemSize, maxBytes)
	var out []grid.Box
	maxPoints := int64(maxBytes) / elemSize
	if maxPoints < 1 {
		maxPoints = 1
	}
	for {
		b, ok := it.Next()
		if !ok {
			break
		}
		if b.IsEmpty() {
			t.Fatalf("iterator emitted empty box %v", b)
		}
		if n := b.NumPoints(); n > maxPoints && n > 1 {
			t.Fatalf("box %v has %d points, budget %d", b, n, maxPoints)
		}
		out = append(out, b)
	}
	return out
}

// coverage checks the emitted boxes tile the selection exactly: disjoint,
// and their point count sums to NumSelected.
func coverage(t *testing.T, space *Dataspace, boxes []grid.Box) {
	t.Helper()
	var total int64
	for i, b := range boxes {
		total += b.NumPoints()
		for j := i + 1; j < len(boxes); j++ {
			if b.Intersects(boxes[j]) {
				t.Fatalf("boxes %v and %v overlap", b, boxes[j])
			}
		}
	}
	if total != space.NumSelected() {
		t.Fatalf("boxes cover %d points, selection has %d", total, space.NumSelected())
	}
}

func TestChunkIterEmptySelection(t *testing.T) {
	s := NewSimple(10, 10)
	s.SelectNone()
	if _, ok := NewChunkIter(s, 8, 1024).Next(); ok {
		t.Fatalf("empty selection emitted a box")
	}
}

func TestChunkIterSelectionSmallerThanChunk(t *testing.T) {
	s := NewSimple(100)
	if err := s.SelectBox(SelectSet, grid.NewBox([]int64{10}, []int64{5})); err != nil {
		t.Fatal(err)
	}
	boxes := collect(t, s, 8, 1<<20)
	if len(boxes) != 1 {
		t.Fatalf("small selection split into %d boxes, want 1", len(boxes))
	}
	coverage(t, s, boxes)
}

func TestChunkIterSplitsLargeBox(t *testing.T) {
	s := NewSimple(64, 64)
	// Whole extent, 4096 elements of 8 bytes = 32 KiB, budget 4 KiB.
	boxes := collect(t, s, 8, 4096)
	if len(boxes) < 8 {
		t.Fatalf("expected >= 8 chunks, got %d", len(boxes))
	}
	coverage(t, s, boxes)
}

func TestChunkIterStridedCrossingChunkBoundaries(t *testing.T) {
	s := NewSimple(32, 32)
	// Non-contiguous stride-3 hyperslab: 2x2 blocks every 3 elements.
	if err := s.SelectHyperslabStride(SelectSet,
		[]int64{1, 1}, []int64{3, 3}, []int64{8, 8}, []int64{2, 2}); err != nil {
		t.Fatal(err)
	}
	// Budget of 3 points forces splits inside the 4-point blocks, so chunk
	// boundaries land mid-block and between non-contiguous blocks.
	boxes := collect(t, s, 1, 3)
	if len(boxes) <= 64 {
		t.Fatalf("expected splits beyond the 64 blocks, got %d boxes", len(boxes))
	}
	coverage(t, s, boxes)
}

func TestChunkIterDegenerateOneByteBudget(t *testing.T) {
	s := NewSimple(4, 4)
	// elemSize 8 > budget 1: every box is an unsplittable single element.
	boxes := collect(t, s, 8, 1)
	if len(boxes) != 16 {
		t.Fatalf("one-byte budget emitted %d boxes, want 16 single elements", len(boxes))
	}
	for _, b := range boxes {
		if b.NumPoints() != 1 {
			t.Fatalf("degenerate budget emitted multi-point box %v", b)
		}
	}
	coverage(t, s, boxes)
}

func TestChunkIterPointSelection(t *testing.T) {
	s := NewSimple(10, 10)
	if err := s.SelectPoints(SelectSet, [][]int64{{0, 0}, {3, 7}, {9, 9}}); err != nil {
		t.Fatal(err)
	}
	boxes := collect(t, s, 4, 1024)
	coverage(t, s, boxes)
}
