package h5_test

import (
	"fmt"

	"lowfive/h5"
	"lowfive/internal/core"
)

// ExampleDataspace_SelectHyperslab shows the hyperslab algebra: selections
// combine with OR and deduplicate overlaps.
func ExampleDataspace_SelectHyperslab() {
	s := h5.NewSimple(8, 8)
	s.SelectHyperslab(h5.SelectSet, []int64{0, 0}, []int64{4, 4})
	s.SelectHyperslab(h5.SelectOr, []int64{2, 2}, []int64{4, 4})
	fmt.Println(s.NumSelected(), "elements selected")
	fmt.Println("bounds:", s.Bounds())
	// Output:
	// 28 elements selected
	// bounds: [0..5 0..5]
}

// ExampleConvert converts between numeric datatypes with clamping, the
// H5T soft-conversion behaviour.
func ExampleConvert() {
	src := []int32{-1000, 5, 300}
	dst := make([]byte, 3)
	_ = h5.Convert(dst, h5.I8, h5.Bytes(src), h5.I32)
	fmt.Println(h5.View[int8](dst))
	// Output:
	// [-128 5 127]
}

// ExampleCreateFile is the minimal single-process h5 round trip through the
// in-memory metadata VOL.
func ExampleCreateFile() {
	fapl := h5.NewFileAccessProps(core.NewMetadataVOL(nil))
	f, _ := h5.CreateFile("demo.h5", fapl)
	ds, _ := f.CreateDataset("values", h5.F64, h5.NewSimple(3))
	_ = ds.Write(nil, nil, h5.Bytes([]float64{1, 2, 3}))
	_ = f.Close()

	f2, _ := h5.OpenFile("demo.h5", fapl)
	ds2, _ := f2.OpenDataset("values")
	out := make([]float64, 3)
	_ = ds2.Read(nil, nil, h5.Bytes(out))
	fmt.Println(out)
	// Output:
	// [1 2 3]
}

// ExampleDataset_Extend grows an unlimited dataset, H5Dset_extent style.
func ExampleDataset_Extend() {
	fapl := h5.NewFileAccessProps(core.NewMetadataVOL(nil))
	f, _ := h5.CreateFile("log.h5", fapl)
	space, _ := h5.NewSimpleMax([]int64{2}, []int64{h5.Unlimited})
	ds, _ := f.CreateDataset("events", h5.I64, space)
	_ = ds.Write(nil, nil, h5.Bytes([]int64{1, 2}))
	_ = ds.Extend(4)
	tail := h5.NewSimple(4)
	_ = tail.SelectHyperslab(h5.SelectSet, []int64{2}, []int64{2})
	_ = ds.Write(nil, tail, h5.Bytes([]int64{3, 4}))
	out := make([]int64, 4)
	_ = ds.Read(nil, nil, h5.Bytes(out))
	fmt.Println(out)
	// Output:
	// [1 2 3 4]
}
