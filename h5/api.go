package h5

import (
	"fmt"
	"strings"
)

// Object is the user-facing wrapper shared by files and groups: it resolves
// slash-separated paths and delegates single-segment operations to the VOL
// handle underneath.
type Object struct {
	h    ObjectHandle
	path string
}

// File is an open file. It doubles as the root group.
type File struct {
	Object
	name string
}

// Group is an open group.
type Group struct {
	Object
}

// Dataset is an open dataset.
type Dataset struct {
	h    DatasetHandle
	path string
}

// CreateFile creates (truncating) a file through the connector in fapl.
func CreateFile(name string, fapl *FileAccessProps) (*File, error) {
	if fapl == nil || fapl.VOL == nil {
		return nil, fmt.Errorf("h5: CreateFile %q: no VOL connector in file access properties", name)
	}
	h, err := fapl.VOL.FileCreate(name, fapl)
	if err != nil {
		return nil, err
	}
	return &File{Object: Object{h: h, path: name}, name: name}, nil
}

// OpenFile opens an existing file through the connector in fapl.
func OpenFile(name string, fapl *FileAccessProps) (*File, error) {
	if fapl == nil || fapl.VOL == nil {
		return nil, fmt.Errorf("h5: OpenFile %q: no VOL connector in file access properties", name)
	}
	h, err := fapl.VOL.FileOpen(name, fapl)
	if err != nil {
		return nil, err
	}
	return &File{Object: Object{h: h, path: name}, name: name}, nil
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Close closes the file. In LowFive's distributed mode this is the
// synchronization point between producer and consumer.
func (f *File) Close() error { return f.h.Close() }

// Close closes the group handle.
func (g *Group) Close() error { return g.h.Close() }

// Path returns the full path of this object within its file.
func (o *Object) Path() string { return o.path }

// Handle exposes the underlying VOL handle (for transport-layer callers).
func (o *Object) Handle() ObjectHandle { return o.h }

func splitPath(path string) ([]string, error) {
	path = strings.Trim(path, "/")
	if path == "" {
		return nil, fmt.Errorf("h5: empty object path")
	}
	segs := strings.Split(path, "/")
	for _, s := range segs {
		if s == "" || s == "." || s == ".." {
			return nil, fmt.Errorf("h5: invalid path %q", path)
		}
	}
	return segs, nil
}

// walk opens intermediate groups down to the parent of the last segment.
// The returned cleanup closes the intermediates (not o.h itself).
func (o *Object) walk(path string) (parent ObjectHandle, last string, cleanup func(), err error) {
	segs, err := splitPath(path)
	if err != nil {
		return nil, "", nil, err
	}
	var opened []ObjectHandle
	cleanup = func() {
		for i := len(opened) - 1; i >= 0; i-- {
			opened[i].Close()
		}
	}
	cur := o.h
	for _, seg := range segs[:len(segs)-1] {
		next, err := cur.GroupOpen(seg)
		if err != nil {
			cleanup()
			return nil, "", nil, fmt.Errorf("h5: opening group %q under %q: %w", seg, o.path, err)
		}
		opened = append(opened, next)
		cur = next
	}
	return cur, segs[len(segs)-1], cleanup, nil
}

// CreateGroup creates a group at the (possibly nested) path; intermediate
// groups must already exist.
func (o *Object) CreateGroup(path string) (*Group, error) {
	parent, last, cleanup, err := o.walk(path)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	h, err := parent.GroupCreate(last)
	if err != nil {
		return nil, err
	}
	return &Group{Object{h: h, path: o.path + "/" + strings.Trim(path, "/")}}, nil
}

// OpenGroup opens a group at the (possibly nested) path.
func (o *Object) OpenGroup(path string) (*Group, error) {
	parent, last, cleanup, err := o.walk(path)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	h, err := parent.GroupOpen(last)
	if err != nil {
		return nil, err
	}
	return &Group{Object{h: h, path: o.path + "/" + strings.Trim(path, "/")}}, nil
}

// CreateDataset creates a dataset of the given type and shape at the path.
func (o *Object) CreateDataset(path string, dt *Datatype, space *Dataspace) (*Dataset, error) {
	if dt == nil || space == nil {
		return nil, fmt.Errorf("h5: CreateDataset %q: nil datatype or dataspace", path)
	}
	parent, last, cleanup, err := o.walk(path)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	h, err := parent.DatasetCreate(last, dt, space.Clone().SelectAll())
	if err != nil {
		return nil, err
	}
	return &Dataset{h: h, path: o.path + "/" + strings.Trim(path, "/")}, nil
}

// OpenDataset opens the dataset at the path.
func (o *Object) OpenDataset(path string) (*Dataset, error) {
	parent, last, cleanup, err := o.walk(path)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	h, err := parent.DatasetOpen(last)
	if err != nil {
		return nil, err
	}
	return &Dataset{h: h, path: o.path + "/" + strings.Trim(path, "/")}, nil
}

// Children lists this object's direct children.
func (o *Object) Children() ([]ObjectInfo, error) { return o.h.Children() }

// Delete unlinks the object at the (possibly nested) path and everything
// under it.
func (o *Object) Delete(path string) error {
	parent, last, cleanup, err := o.walk(path)
	if err != nil {
		return err
	}
	defer cleanup()
	return parent.Delete(last)
}

// WriteAttribute attaches (or replaces) an attribute with n = len(data)/dt.Size
// elements in a 1-d dataspace.
func (o *Object) WriteAttribute(name string, dt *Datatype, data []byte) error {
	if len(data)%dt.Size != 0 {
		return fmt.Errorf("h5: attribute %q data length %d not a multiple of element size %d",
			name, len(data), dt.Size)
	}
	n := int64(len(data)) / int64(dt.Size)
	if n == 0 {
		return fmt.Errorf("h5: attribute %q has no data", name)
	}
	// Caller keeps ownership of data (see Connector); a connector that
	// retains the bytes copies them, so no defensive copy is needed here.
	return o.h.AttributeWrite(name, dt, NewSimple(n), data)
}

// ReadAttribute returns an attribute's type and raw data.
func (o *Object) ReadAttribute(name string) (*Datatype, []byte, error) {
	dt, _, data, err := o.h.AttributeRead(name)
	return dt, data, err
}

// AttributeNames lists the attributes on this object.
func (o *Object) AttributeNames() ([]string, error) { return o.h.AttributeNames() }

// Path returns the dataset's full path within its file.
func (d *Dataset) Path() string { return d.path }

// Handle exposes the underlying VOL handle.
func (d *Dataset) Handle() DatasetHandle { return d.h }

// Datatype returns the element type.
func (d *Dataset) Datatype() *Datatype { return d.h.Datatype() }

// Dataspace returns the dataset extent with everything selected.
func (d *Dataset) Dataspace() *Dataspace { return d.h.Dataspace() }

// Close releases the dataset.
func (d *Dataset) Close() error { return d.h.Close() }

// Extend changes the dataset's current extent (growing or shrinking) within
// the maximum dims of the dataspace it was created with.
func (d *Dataset) Extend(dims ...int64) error { return d.h.SetExtent(dims) }

// validateTransfer checks the mem/file space pairing shared by Read/Write.
func (d *Dataset) validateTransfer(memSpace, fileSpace *Dataspace, data []byte) error {
	es := int64(d.h.Datatype().Size)
	n := d.h.Dataspace().NumPoints()
	if fileSpace != nil {
		fdims := fileSpace.Dims()
		ddims := d.h.Dataspace().Dims()
		if len(fdims) != len(ddims) {
			return fmt.Errorf("h5: file space rank %d != dataset rank %d", len(fdims), len(ddims))
		}
		for i := range fdims {
			if fdims[i] != ddims[i] {
				return fmt.Errorf("h5: file space dims %v != dataset dims %v", fdims, ddims)
			}
		}
		n = fileSpace.NumSelected()
	}
	if memSpace != nil {
		if memSpace.NumSelected() != n {
			return fmt.Errorf("h5: memory selection has %d elements, file selection %d",
				memSpace.NumSelected(), n)
		}
		if need := memSpace.NumPoints() * es; int64(len(data)) < need {
			return fmt.Errorf("h5: buffer %d bytes, memory extent needs %d", len(data), need)
		}
	} else if need := n * es; int64(len(data)) < need {
		return fmt.Errorf("h5: buffer %d bytes, selection needs %d", len(data), need)
	}
	return nil
}

// Write transfers the memSpace-selected elements of data into the
// fileSpace-selected elements of the dataset. A nil fileSpace means the
// whole dataset; a nil memSpace means data is packed in selection order.
func (d *Dataset) Write(memSpace, fileSpace *Dataspace, data []byte) error {
	if err := d.validateTransfer(memSpace, fileSpace, data); err != nil {
		return err
	}
	return d.h.Write(memSpace, fileSpace, data)
}

// Read transfers the fileSpace-selected elements of the dataset into the
// memSpace-selected elements of data. Nil spaces as in Write.
func (d *Dataset) Read(memSpace, fileSpace *Dataspace, data []byte) error {
	if err := d.validateTransfer(memSpace, fileSpace, data); err != nil {
		return err
	}
	return d.h.Read(memSpace, fileSpace, data)
}

// WriteAttribute attaches an attribute to the dataset.
func (d *Dataset) WriteAttribute(name string, dt *Datatype, data []byte) error {
	if len(data)%dt.Size != 0 || len(data) == 0 {
		return fmt.Errorf("h5: attribute %q data length %d invalid for element size %d",
			name, len(data), dt.Size)
	}
	n := int64(len(data)) / int64(dt.Size)
	// Caller keeps ownership of data (see Connector); retaining connectors
	// copy, so no defensive copy here.
	return d.h.AttributeWrite(name, dt, NewSimple(n), data)
}

// ReadAttribute returns an attribute's type and raw data.
func (d *Dataset) ReadAttribute(name string) (*Datatype, []byte, error) {
	dt, _, data, err := d.h.AttributeRead(name)
	return dt, data, err
}

// AttributeNames lists the attributes on this dataset.
func (d *Dataset) AttributeNames() ([]string, error) { return d.h.AttributeNames() }
