package h5

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lowfive/internal/grid"
)

func TestNewSimple(t *testing.T) {
	s := NewSimple(3, 4, 5)
	if s.Rank() != 3 || s.NumPoints() != 60 {
		t.Errorf("rank=%d points=%d", s.Rank(), s.NumPoints())
	}
	if !s.IsAll() || s.NumSelected() != 60 {
		t.Errorf("fresh dataspace should select all (%d)", s.NumSelected())
	}
}

func TestScalar(t *testing.T) {
	s := Scalar()
	if s.NumPoints() != 1 || s.NumSelected() != 1 {
		t.Error("scalar should hold one element")
	}
}

func TestSelectNoneAndAll(t *testing.T) {
	s := NewSimple(10)
	s.SelectNone()
	if s.NumSelected() != 0 || len(s.SelectionBoxes()) != 0 {
		t.Error("none should be empty")
	}
	s.SelectAll()
	if s.NumSelected() != 10 {
		t.Error("all should select everything")
	}
}

func TestSelectHyperslabBasic(t *testing.T) {
	s := NewSimple(8, 8)
	if err := s.SelectHyperslab(SelectSet, []int64{2, 3}, []int64{4, 2}); err != nil {
		t.Fatal(err)
	}
	if s.NumSelected() != 8 {
		t.Errorf("selected %d", s.NumSelected())
	}
	bb := s.Bounds()
	want := grid.NewBox([]int64{2, 3}, []int64{4, 2})
	if !bb.Equal(want) {
		t.Errorf("bounds %v want %v", bb, want)
	}
}

func TestSelectHyperslabOutOfBounds(t *testing.T) {
	s := NewSimple(8, 8)
	if err := s.SelectHyperslab(SelectSet, []int64{6, 0}, []int64{4, 1}); err == nil {
		t.Error("overflowing hyperslab should fail")
	}
	if err := s.SelectHyperslab(SelectSet, []int64{0}, []int64{1}); err == nil {
		t.Error("rank mismatch should fail")
	}
}

func TestSelectHyperslabOrDisjointUnion(t *testing.T) {
	s := NewSimple(10)
	if err := s.SelectHyperslab(SelectSet, []int64{0}, []int64{3}); err != nil {
		t.Fatal(err)
	}
	if err := s.SelectHyperslab(SelectOr, []int64{5}, []int64{2}); err != nil {
		t.Fatal(err)
	}
	if s.NumSelected() != 5 {
		t.Errorf("selected %d want 5", s.NumSelected())
	}
}

func TestSelectHyperslabOrOverlapDedup(t *testing.T) {
	s := NewSimple(10)
	s.SelectHyperslab(SelectSet, []int64{0}, []int64{6})
	s.SelectHyperslab(SelectOr, []int64{4}, []int64{4})
	if s.NumSelected() != 8 {
		t.Errorf("selected %d want 8 (overlap deduplicated)", s.NumSelected())
	}
}

func TestSelectHyperslabStrideBlocks(t *testing.T) {
	s := NewSimple(10)
	// 3 blocks of 2 elements with stride 4: {0,1, 4,5, 8,9}.
	if err := s.SelectHyperslabStride(SelectSet, []int64{0}, []int64{4}, []int64{3}, []int64{2}); err != nil {
		t.Fatal(err)
	}
	if s.NumSelected() != 6 {
		t.Errorf("selected %d", s.NumSelected())
	}
	runs := s.runs()
	want := [][2]int64{{0, 2}, {4, 2}, {8, 2}}
	if len(runs) != len(want) {
		t.Fatalf("runs %v", runs)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Errorf("run %d: %v want %v", i, runs[i], want[i])
		}
	}
}

func TestSelectHyperslabStrideValidation(t *testing.T) {
	s := NewSimple(10)
	// stride < block is invalid.
	if err := s.SelectHyperslabStride(SelectSet, []int64{0}, []int64{1}, []int64{3}, []int64{2}); err == nil {
		t.Error("stride < block should fail")
	}
	// last element out of range: start 0, stride 4, count 3, block 3 -> last=10.
	if err := s.SelectHyperslabStride(SelectSet, []int64{0}, []int64{4}, []int64{3}, []int64{3}); err == nil {
		t.Error("overflow should fail")
	}
}

func TestSelectPoints(t *testing.T) {
	s := NewSimple(4, 4)
	if err := s.SelectPoints(SelectSet, [][]int64{{0, 0}, {3, 3}, {1, 2}}); err != nil {
		t.Fatal(err)
	}
	if s.NumSelected() != 3 {
		t.Errorf("selected %d", s.NumSelected())
	}
	runs := s.runs()
	want := [][2]int64{{0, 1}, {15, 1}, {6, 1}} // insertion order preserved
	for i := range want {
		if runs[i] != want[i] {
			t.Errorf("run %d: %v want %v", i, runs[i], want[i])
		}
	}
	if err := s.SelectPoints(SelectOr, [][]int64{{9, 0}}); err == nil {
		t.Error("out-of-range point should fail")
	}
}

func TestSelectBox(t *testing.T) {
	s := NewSimple(6, 6)
	if err := s.SelectBox(SelectSet, grid.NewBox([]int64{1, 1}, []int64{2, 2})); err != nil {
		t.Fatal(err)
	}
	if s.NumSelected() != 4 {
		t.Errorf("selected %d", s.NumSelected())
	}
	if err := s.SelectBox(SelectSet, grid.NewBox([]int64{5, 5}, []int64{2, 2})); err == nil {
		t.Error("box exceeding extent should fail")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := NewSimple(10)
	s.SelectHyperslab(SelectSet, []int64{0}, []int64{5})
	c := s.Clone()
	c.SelectHyperslab(SelectSet, []int64{0}, []int64{1})
	if s.NumSelected() != 5 || c.NumSelected() != 1 {
		t.Errorf("clone not independent: %d/%d", s.NumSelected(), c.NumSelected())
	}
}

func TestDataspaceSerialRoundTrip(t *testing.T) {
	spaces := []*Dataspace{
		NewSimple(5),
		NewSimple(3, 4, 5),
		NewSimple(10).SelectNone(),
	}
	h := NewSimple(8, 8)
	h.SelectHyperslab(SelectSet, []int64{1, 1}, []int64{3, 3})
	h.SelectHyperslab(SelectOr, []int64{5, 5}, []int64{2, 2})
	spaces = append(spaces, h)
	p := NewSimple(4, 4)
	p.SelectPoints(SelectSet, [][]int64{{1, 1}, {2, 3}})
	spaces = append(spaces, p)
	for _, s := range spaces {
		got, err := UnmarshalDataspace(MarshalDataspace(s))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if got.String() != s.String() || got.NumSelected() != s.NumSelected() {
			t.Errorf("roundtrip %v -> %v", s, got)
		}
		gr, sr := got.runs(), s.runs()
		if len(gr) != len(sr) {
			t.Fatalf("runs differ: %v vs %v", gr, sr)
		}
		for i := range gr {
			if gr[i] != sr[i] {
				t.Errorf("run %d differs: %v vs %v", i, gr[i], sr[i])
			}
		}
	}
}

func TestHyperslabUnionProperty(t *testing.T) {
	// Property: OR-ing random boxes yields a selection whose size equals the
	// size of the union set computed by brute force.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dims := []int64{1 + r.Int63n(12), 1 + r.Int63n(12)}
		s := NewSimple(dims...)
		s.SelectNone()
		set := map[[2]int64]bool{}
		for k := 0; k < 1+r.Intn(5); k++ {
			start := []int64{r.Int63n(dims[0]), r.Int63n(dims[1])}
			count := []int64{1 + r.Int63n(dims[0]-start[0]), 1 + r.Int63n(dims[1]-start[1])}
			if err := s.SelectHyperslab(SelectOr, start, count); err != nil {
				return false
			}
			for i := start[0]; i < start[0]+count[0]; i++ {
				for j := start[1]; j < start[1]+count[1]; j++ {
					set[[2]int64{i, j}] = true
				}
			}
		}
		return s.NumSelected() == int64(len(set))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
