package h5

import (
	"time"

	"lowfive/trace"
)

// TracingVOL is a passthru VOL connector in the mold of the paper's
// passthru connector design: it wraps any other connector, forwards every
// operation unchanged, and records each file/group/dataset/attribute
// operation as a span on a per-rank trace track — datatype, selection
// shape and byte counts included for data transfers. Wrap the transport
// VOL of a rank with NewTracingVOL to see where its I/O time goes:
//
//	vol := lowfive.NewDistMetadataVOL(p.Task, base)
//	fapl := h5.NewFileAccessProps(h5.NewTracingVOL(vol, p.Task.Track()))
//
// A nil track makes the wrapper a pure passthru with no recording.
type TracingVOL struct {
	base  Connector
	track *trace.Track
}

// NewTracingVOL wraps a connector so all its operations are recorded on the
// given track.
func NewTracingVOL(base Connector, track *trace.Track) *TracingVOL {
	return &TracingVOL{base: base, track: track}
}

// ConnectorName implements Connector.
func (v *TracingVOL) ConnectorName() string { return "tracing+" + v.base.ConnectorName() }

// span commits one VOL-layer span. All recording funnels through here so
// the category stays uniform.
func (v *TracingVOL) span(t0 time.Time, name string, args ...trace.Arg) {
	v.track.End(t0, "vol", name, args...)
}

// FileCreate implements Connector.
func (v *TracingVOL) FileCreate(name string, fapl *FileAccessProps) (FileHandle, error) {
	t0 := v.track.Begin()
	fh, err := v.base.FileCreate(name, fapl)
	v.span(t0, "file.create", trace.Str("file", name))
	if err != nil {
		return nil, err
	}
	return &tracingObject{vol: v, file: name, base: fh}, nil
}

// FileOpen implements Connector.
func (v *TracingVOL) FileOpen(name string, fapl *FileAccessProps) (FileHandle, error) {
	t0 := v.track.Begin()
	fh, err := v.base.FileOpen(name, fapl)
	v.span(t0, "file.open", trace.Str("file", name))
	if err != nil {
		return nil, err
	}
	return &tracingObject{vol: v, file: name, base: fh, isFile: true}, nil
}

// tracingObject wraps a file or group handle. The embedded base does the
// work; the wrapper times it.
type tracingObject struct {
	vol    *TracingVOL
	file   string
	base   ObjectHandle
	isFile bool
}

func (o *tracingObject) wrap(h ObjectHandle) ObjectHandle {
	return &tracingObject{vol: o.vol, file: o.file, base: h}
}

func (o *tracingObject) GroupCreate(name string) (ObjectHandle, error) {
	t0 := o.vol.track.Begin()
	h, err := o.base.GroupCreate(name)
	o.vol.span(t0, "group.create", trace.Str("name", name))
	if err != nil {
		return nil, err
	}
	return o.wrap(h), nil
}

func (o *tracingObject) GroupOpen(name string) (ObjectHandle, error) {
	t0 := o.vol.track.Begin()
	h, err := o.base.GroupOpen(name)
	o.vol.span(t0, "group.open", trace.Str("name", name))
	if err != nil {
		return nil, err
	}
	return o.wrap(h), nil
}

func (o *tracingObject) DatasetCreate(name string, dt *Datatype, space *Dataspace) (DatasetHandle, error) {
	t0 := o.vol.track.Begin()
	h, err := o.base.DatasetCreate(name, dt, space)
	o.vol.span(t0, "dataset.create", trace.Str("name", name), trace.Str("type", dt.String()))
	if err != nil {
		return nil, err
	}
	return &tracingDataset{vol: o.vol, name: name, base: h}, nil
}

func (o *tracingObject) DatasetOpen(name string) (DatasetHandle, error) {
	t0 := o.vol.track.Begin()
	h, err := o.base.DatasetOpen(name)
	o.vol.span(t0, "dataset.open", trace.Str("name", name))
	if err != nil {
		return nil, err
	}
	return &tracingDataset{vol: o.vol, name: name, base: h}, nil
}

func (o *tracingObject) Children() ([]ObjectInfo, error) { return o.base.Children() }

func (o *tracingObject) Delete(name string) error {
	t0 := o.vol.track.Begin()
	err := o.base.Delete(name)
	o.vol.span(t0, "delete", trace.Str("name", name))
	return err
}

func (o *tracingObject) AttributeWrite(name string, dt *Datatype, space *Dataspace, data []byte) error {
	t0 := o.vol.track.Begin()
	err := o.base.AttributeWrite(name, dt, space, data)
	o.vol.span(t0, "attr.write", trace.Str("name", name), trace.I64("bytes", int64(len(data))))
	return err
}

func (o *tracingObject) AttributeRead(name string) (*Datatype, *Dataspace, []byte, error) {
	t0 := o.vol.track.Begin()
	dt, sp, data, err := o.base.AttributeRead(name)
	o.vol.span(t0, "attr.read", trace.Str("name", name), trace.I64("bytes", int64(len(data))))
	return dt, sp, data, err
}

func (o *tracingObject) AttributeNames() ([]string, error) { return o.base.AttributeNames() }

// Close records file closes (the transport synchronization point — on a
// producer this span covers index+serve) but passes group closes straight
// through, which keeps hierarchy-walk noise out of the trace.
func (o *tracingObject) Close() error {
	if !o.isFile {
		return o.base.Close()
	}
	t0 := o.vol.track.Begin()
	err := o.base.Close()
	o.vol.span(t0, "file.close", trace.Str("file", o.file))
	return err
}

// tracingDataset wraps a dataset handle, recording reads and writes with
// datatype, selection shape and transferred byte counts.
type tracingDataset struct {
	vol  *TracingVOL
	name string
	base DatasetHandle
}

func (d *tracingDataset) Datatype() *Datatype   { return d.base.Datatype() }
func (d *tracingDataset) Dataspace() *Dataspace { return d.base.Dataspace() }

// transferArgs describes one read/write: element type, selection shape and
// payload bytes. A nil fileSpace means the whole dataset.
func (d *tracingDataset) transferArgs(fileSpace *Dataspace) []trace.Arg {
	dt := d.base.Datatype()
	sel := fileSpace
	if sel == nil {
		sel = d.base.Dataspace()
	}
	return []trace.Arg{
		trace.Str("dataset", d.name),
		trace.Str("type", dt.String()),
		trace.Str("selection", sel.String()),
		trace.I64("bytes", sel.NumSelected()*int64(dt.Size)),
	}
}

func (d *tracingDataset) Write(memSpace, fileSpace *Dataspace, data []byte) error {
	if d.vol.track == nil {
		return d.base.Write(memSpace, fileSpace, data)
	}
	t0 := d.vol.track.Begin()
	err := d.base.Write(memSpace, fileSpace, data)
	d.vol.span(t0, "dataset.write", d.transferArgs(fileSpace)...)
	return err
}

func (d *tracingDataset) Read(memSpace, fileSpace *Dataspace, data []byte) error {
	if d.vol.track == nil {
		return d.base.Read(memSpace, fileSpace, data)
	}
	t0 := d.vol.track.Begin()
	err := d.base.Read(memSpace, fileSpace, data)
	d.vol.span(t0, "dataset.read", d.transferArgs(fileSpace)...)
	return err
}

func (d *tracingDataset) SetExtent(dims []int64) error {
	t0 := d.vol.track.Begin()
	err := d.base.SetExtent(dims)
	d.vol.span(t0, "dataset.extend", trace.Str("dataset", d.name))
	return err
}

func (d *tracingDataset) AttributeWrite(name string, dt *Datatype, space *Dataspace, data []byte) error {
	t0 := d.vol.track.Begin()
	err := d.base.AttributeWrite(name, dt, space, data)
	d.vol.span(t0, "attr.write", trace.Str("name", name), trace.I64("bytes", int64(len(data))))
	return err
}

func (d *tracingDataset) AttributeRead(name string) (*Datatype, *Dataspace, []byte, error) {
	t0 := d.vol.track.Begin()
	dt, sp, data, err := d.base.AttributeRead(name)
	d.vol.span(t0, "attr.read", trace.Str("name", name), trace.I64("bytes", int64(len(data))))
	return dt, sp, data, err
}

func (d *tracingDataset) AttributeNames() ([]string, error) { return d.base.AttributeNames() }

func (d *tracingDataset) Close() error { return d.base.Close() }
