package h5_test

import (
	"strings"
	"testing"

	"lowfive/h5"
	"lowfive/internal/core"
)

func memFapl() *h5.FileAccessProps {
	return h5.NewFileAccessProps(core.NewMetadataVOL(nil))
}

func TestCreateFileRequiresVOL(t *testing.T) {
	if _, err := h5.CreateFile("x.h5", nil); err == nil {
		t.Error("nil fapl should fail")
	}
	if _, err := h5.CreateFile("x.h5", &h5.FileAccessProps{}); err == nil {
		t.Error("fapl without VOL should fail")
	}
	if _, err := h5.OpenFile("x.h5", nil); err == nil {
		t.Error("open with nil fapl should fail")
	}
}

func TestPathValidation(t *testing.T) {
	f, err := h5.CreateFile("p.h5", memFapl())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "/", "a//b", "a/./b", "../x"} {
		if _, err := f.CreateGroup(bad); err == nil {
			t.Errorf("CreateGroup(%q) should fail", bad)
		}
	}
	// Leading/trailing slashes are tolerated.
	if _, err := f.CreateGroup("/g/"); err != nil {
		t.Errorf("CreateGroup with surrounding slashes: %v", err)
	}
	if _, err := f.OpenGroup("g"); err != nil {
		t.Errorf("open after slashed create: %v", err)
	}
}

func TestCreateDatasetValidation(t *testing.T) {
	f, _ := h5.CreateFile("d.h5", memFapl())
	if _, err := f.CreateDataset("d", nil, h5.NewSimple(4)); err == nil {
		t.Error("nil datatype should fail")
	}
	if _, err := f.CreateDataset("d", h5.U8, nil); err == nil {
		t.Error("nil dataspace should fail")
	}
}

func TestTransferValidation(t *testing.T) {
	f, _ := h5.CreateFile("t.h5", memFapl())
	ds, _ := f.CreateDataset("d", h5.U32, h5.NewSimple(4, 4))

	// Short buffer.
	if err := ds.Write(nil, nil, make([]byte, 10)); err == nil {
		t.Error("short buffer should fail")
	}
	// File space rank mismatch.
	bad := h5.NewSimple(16)
	if err := ds.Write(nil, bad, make([]byte, 64)); err == nil {
		t.Error("file-space rank mismatch should fail")
	}
	// File space dims mismatch.
	bad2 := h5.NewSimple(4, 5)
	if err := ds.Write(nil, bad2, make([]byte, 80)); err == nil {
		t.Error("file-space dims mismatch should fail")
	}
	// Mem/file selection size mismatch.
	mem := h5.NewSimple(8)
	mem.SelectHyperslab(h5.SelectSet, []int64{0}, []int64{3})
	fsel := h5.NewSimple(4, 4)
	fsel.SelectHyperslab(h5.SelectSet, []int64{0, 0}, []int64{2, 2})
	if err := ds.Write(mem, fsel, make([]byte, 32)); err == nil {
		t.Error("selection count mismatch should fail")
	}
	// Same checks on the read path.
	if err := ds.Read(nil, nil, make([]byte, 10)); err == nil {
		t.Error("short read buffer should fail")
	}
	if err := ds.Read(mem, fsel, make([]byte, 32)); err == nil {
		t.Error("read selection mismatch should fail")
	}
}

func TestCompoundDatasetEndToEnd(t *testing.T) {
	// A particle record: 3 float32 coordinates + uint64 id, written and
	// read back through the VOL as raw compound elements.
	particle, err := h5.NewCompound(24,
		h5.Field{Name: "x", Offset: 0, Type: h5.F32},
		h5.Field{Name: "y", Offset: 4, Type: h5.F32},
		h5.Field{Name: "z", Offset: 8, Type: h5.F32},
		h5.Field{Name: "id", Offset: 16, Type: h5.U64},
	)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := h5.CreateFile("c.h5", memFapl())
	ds, err := f.CreateDataset("particles", particle, h5.NewSimple(10))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10*24)
	for i := 0; i < 10; i++ {
		rec := buf[i*24:]
		copy(rec[0:], h5.Bytes([]float32{float32(i), float32(i) + 0.25, float32(i) + 0.5}))
		copy(rec[16:], h5.Bytes([]uint64{uint64(1000 + i)}))
	}
	if err := ds.Write(nil, nil, buf); err != nil {
		t.Fatal(err)
	}
	// Read a sub-range.
	sel := h5.NewSimple(10)
	sel.SelectHyperslab(h5.SelectSet, []int64{3}, []int64{4})
	out := make([]byte, 4*24)
	if err := ds.Read(nil, sel, out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		rec := out[i*24:]
		x := h5.View[float32](rec[0:4])[0]
		id := h5.View[uint64](rec[16:24])[0]
		if x != float32(3+i) || id != uint64(1003+i) {
			t.Errorf("record %d: x=%v id=%d", i, x, id)
		}
	}
	if !ds.Datatype().Equal(particle) {
		t.Error("datatype lost through the VOL")
	}
}

func TestObjectPathsAndHandles(t *testing.T) {
	f, _ := h5.CreateFile("paths.h5", memFapl())
	g, _ := f.CreateGroup("a")
	sub, _ := g.CreateGroup("b")
	ds, _ := sub.CreateDataset("d", h5.U8, h5.NewSimple(1))
	if !strings.HasSuffix(ds.Path(), "a/b/d") {
		t.Errorf("dataset path %q", ds.Path())
	}
	if !strings.HasSuffix(sub.Path(), "a/b") {
		t.Errorf("group path %q", sub.Path())
	}
	if f.Name() != "paths.h5" {
		t.Errorf("file name %q", f.Name())
	}
	if ds.Handle() == nil || g.Handle() == nil {
		t.Error("handles must be exposed")
	}
	// Deep open through the root.
	if _, err := f.OpenDataset("a/b/d"); err != nil {
		t.Error(err)
	}
	// Walking through a missing intermediate fails cleanly.
	if _, err := f.OpenDataset("a/missing/d"); err == nil {
		t.Error("missing intermediate should fail")
	}
}

func TestAttributeValidation(t *testing.T) {
	f, _ := h5.CreateFile("av.h5", memFapl())
	g, _ := f.CreateGroup("g")
	if err := g.WriteAttribute("bad", h5.U64, make([]byte, 7)); err == nil {
		t.Error("misaligned attribute data should fail")
	}
	if err := g.WriteAttribute("empty", h5.U64, nil); err == nil {
		t.Error("empty attribute should fail")
	}
	ds, _ := g.CreateDataset("d", h5.U8, h5.NewSimple(1))
	if err := ds.WriteAttribute("bad", h5.U64, make([]byte, 7)); err == nil {
		t.Error("misaligned dataset attribute should fail")
	}
	// Attribute data is copied: mutating the source must not change it.
	src := []int64{7}
	if err := g.WriteAttribute("v", h5.I64, h5.Bytes(src)); err != nil {
		t.Fatal(err)
	}
	src[0] = 99
	_, data, err := g.ReadAttribute("v")
	if err != nil || h5.View[int64](data)[0] != 7 {
		t.Errorf("attribute should be snapshotted: %v %v", data, err)
	}
	names, _ := f.AttributeNames()
	if len(names) != 0 {
		t.Errorf("root attributes %v", names)
	}
}
