package h5_test

import (
	"bytes"
	"testing"

	"lowfive/h5"
	"lowfive/internal/core"
	"lowfive/trace"
)

// writeReadThrough exercises a full write-then-read cycle through the given
// connector and returns the bytes read back.
func writeReadThrough(t *testing.T, conn h5.Connector) []byte {
	t.Helper()
	fapl := h5.NewFileAccessProps(conn)
	f, err := h5.CreateFile("t.h5", fapl)
	if err != nil {
		t.Fatal(err)
	}
	g, err := f.CreateGroup("sim")
	if err != nil {
		t.Fatal(err)
	}
	space := h5.NewSimple(4, 4)
	ds, err := g.CreateDataset("grid", h5.F32, space)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float32, 16)
	for i := range vals {
		vals[i] = float32(i)
	}
	if err := ds.Write(nil, nil, h5.Bytes(vals)); err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteAttribute("units", h5.U8, []byte("m/s")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	f, err = h5.OpenFile("t.h5", fapl)
	if err != nil {
		t.Fatal(err)
	}
	ds, err = f.OpenDataset("sim/grid")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16*4)
	if err := ds.Read(nil, nil, buf); err != nil {
		t.Fatal(err)
	}
	if _, attr, err := ds.ReadAttribute("units"); err != nil || string(attr) != "m/s" {
		t.Fatalf("attribute read: %q, %v", attr, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestTracingVOLPassthru verifies the wrapper is a faithful passthru: the
// same operations through a traced and an untraced metadata VOL produce
// identical data, and the traced one records the expected spans.
func TestTracingVOLPassthru(t *testing.T) {
	plain := writeReadThrough(t, core.NewMetadataVOL(nil))

	tr := trace.New()
	k := tr.NewTrack("app", 1, "rank 0", 0)
	traced := writeReadThrough(t, h5.NewTracingVOL(core.NewMetadataVOL(nil), k))

	if !bytes.Equal(plain, traced) {
		t.Error("traced connector returned different data than untraced")
	}

	counts := map[string]int{}
	var wrote, read int64
	for _, ev := range k.Events() {
		if ev.Cat != "vol" {
			t.Errorf("unexpected category %q", ev.Cat)
		}
		counts[ev.Name]++
		for _, a := range ev.Args {
			if a.Key == "bytes" && ev.Name == "dataset.write" {
				wrote += a.Int
			}
			if a.Key == "bytes" && ev.Name == "dataset.read" {
				read += a.Int
			}
		}
	}
	for name, want := range map[string]int{
		"file.create": 1, "file.open": 1, "file.close": 1,
		"group.create": 1, "dataset.create": 1, "dataset.open": 1,
		"dataset.write": 1, "dataset.read": 1,
		"attr.write": 1, "attr.read": 1,
	} {
		if counts[name] != want {
			t.Errorf("span %q recorded %d times, want %d (all: %v)", name, counts[name], want, counts)
		}
	}
	if wrote != 64 || read != 64 {
		t.Errorf("byte accounting: wrote %d read %d, want 64 each", wrote, read)
	}
}

// TestTracingVOLNilTrack verifies a nil track degrades to a pure passthru.
func TestTracingVOLNilTrack(t *testing.T) {
	plain := writeReadThrough(t, core.NewMetadataVOL(nil))
	silent := writeReadThrough(t, h5.NewTracingVOL(core.NewMetadataVOL(nil), nil))
	if !bytes.Equal(plain, silent) {
		t.Error("nil-track wrapper changed behavior")
	}
}
