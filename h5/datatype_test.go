package h5

import "testing"

func TestPredefinedSizes(t *testing.T) {
	cases := []struct {
		dt   *Datatype
		size int
		sign bool
	}{
		{I8, 1, true}, {I16, 2, true}, {I32, 4, true}, {I64, 8, true},
		{U8, 1, false}, {U16, 2, false}, {U32, 4, false}, {U64, 8, false},
		{F32, 4, false}, {F64, 8, false},
	}
	for _, c := range cases {
		if c.dt.Size != c.size || c.dt.Signed != c.sign {
			t.Errorf("%v: size=%d signed=%v", c.dt, c.dt.Size, c.dt.Signed)
		}
	}
}

func TestCompound(t *testing.T) {
	// A particle: 3 float32 coordinates plus a uint64 id.
	dt, err := NewCompound(24,
		Field{Name: "x", Offset: 0, Type: F32},
		Field{Name: "y", Offset: 4, Type: F32},
		Field{Name: "z", Offset: 8, Type: F32},
		Field{Name: "id", Offset: 16, Type: U64},
	)
	if err != nil {
		t.Fatal(err)
	}
	if dt.Size != 24 || dt.Class != ClassCompound {
		t.Errorf("size=%d class=%v", dt.Size, dt.Class)
	}
	f, ok := dt.FieldByName("z")
	if !ok || f.Offset != 8 || !f.Type.Equal(F32) {
		t.Errorf("field z: %+v ok=%v", f, ok)
	}
	if _, ok := dt.FieldByName("w"); ok {
		t.Error("field w should not exist")
	}
}

func TestCompoundValidation(t *testing.T) {
	if _, err := NewCompound(4, Field{Name: "big", Offset: 0, Type: U64}); err == nil {
		t.Error("field exceeding size should fail")
	}
	if _, err := NewCompound(16,
		Field{Name: "a", Offset: 0, Type: U32},
		Field{Name: "a", Offset: 4, Type: U32}); err == nil {
		t.Error("duplicate field should fail")
	}
	if _, err := NewCompound(8, Field{Name: "", Offset: 0, Type: U32}); err == nil {
		t.Error("empty field name should fail")
	}
	if _, err := NewCompound(0); err == nil {
		t.Error("zero size should fail")
	}
}

func TestArrayType(t *testing.T) {
	dt, err := NewArray(F32, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dt.Size != 12 {
		t.Errorf("size=%d", dt.Size)
	}
	if _, err := NewArray(F32, 0); err == nil {
		t.Error("zero dim should fail")
	}
	if _, err := NewArray(nil, 3); err == nil {
		t.Error("nil elem should fail")
	}
}

func TestDatatypeEqual(t *testing.T) {
	p1, _ := NewCompound(12, Field{Name: "x", Offset: 0, Type: F32}, Field{Name: "y", Offset: 4, Type: F64})
	p2, _ := NewCompound(12, Field{Name: "x", Offset: 0, Type: F32}, Field{Name: "y", Offset: 4, Type: F64})
	p3, _ := NewCompound(12, Field{Name: "x", Offset: 0, Type: F32}, Field{Name: "y", Offset: 4, Type: F32})
	if !p1.Equal(p2) {
		t.Error("identical compounds should be equal")
	}
	if p1.Equal(p3) {
		t.Error("different field types should differ")
	}
	if U64.Equal(I64) {
		t.Error("signedness should matter")
	}
	if U64.Equal(U32) {
		t.Error("size should matter")
	}
	a1, _ := NewArray(F32, 3)
	a2, _ := NewArray(F32, 4)
	if a1.Equal(a2) {
		t.Error("array dims should matter")
	}
}

func TestDatatypeString(t *testing.T) {
	if U64.String() != "uint64" || I32.String() != "int32" || F32.String() != "float32" {
		t.Errorf("%v %v %v", U64, I32, F32)
	}
	if NewString(16).String() != "string[16]" {
		t.Errorf("%v", NewString(16))
	}
}

func TestDatatypeSerialRoundTrip(t *testing.T) {
	arr, _ := NewArray(F32, 3)
	comp, _ := NewCompound(20,
		Field{Name: "pos", Offset: 0, Type: arr},
		Field{Name: "id", Offset: 12, Type: U64},
	)
	for _, dt := range []*Datatype{U8, I64, F64, NewString(7), NewOpaque(13), arr, comp} {
		got, err := UnmarshalDatatype(MarshalDatatype(dt))
		if err != nil {
			t.Fatalf("%v: %v", dt, err)
		}
		if !got.Equal(dt) {
			t.Errorf("roundtrip %v -> %v", dt, got)
		}
	}
}

func TestDatatypeDecodeTruncated(t *testing.T) {
	b := MarshalDatatype(U64)
	for n := 0; n < len(b); n++ {
		if _, err := UnmarshalDatatype(b[:n]); err == nil {
			t.Errorf("truncation at %d bytes should fail", n)
		}
	}
}
