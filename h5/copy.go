package h5

import "fmt"

// runCursor walks a selection's runs, allowing chunked co-iteration of two
// selections with different run structure.
type runCursor struct {
	runs [][2]int64
	i    int
	pos  int64 // progress within runs[i]
}

func (c *runCursor) next(maxLen int64) (offset, n int64, ok bool) {
	for c.i < len(c.runs) && c.runs[c.i][1] == 0 {
		c.i++
	}
	if c.i >= len(c.runs) {
		return 0, 0, false
	}
	r := c.runs[c.i]
	offset = r[0] + c.pos
	n = r[1] - c.pos
	if n > maxLen {
		n = maxLen
	}
	c.pos += n
	if c.pos == r[1] {
		c.i++
		c.pos = 0
	}
	return offset, n, true
}

// CopySelected copies the elements selected in srcSpace (read from src,
// which holds the full extent of srcSpace row-major) to the elements
// selected in dstSpace (written into dst, holding the full extent of
// dstSpace row-major). The two selections must contain the same number of
// elements; they are paired in selection order. This is the engine behind
// HDF5's mem-space/file-space transfers.
func CopySelected(dst []byte, dstSpace *Dataspace, src []byte, srcSpace *Dataspace, elemSize int) error {
	sn, dn := srcSpace.NumSelected(), dstSpace.NumSelected()
	if sn != dn {
		return fmt.Errorf("h5: selection size mismatch: src %d vs dst %d elements", sn, dn)
	}
	if need := srcSpace.NumPoints() * int64(elemSize); int64(len(src)) < need {
		return fmt.Errorf("h5: source buffer %d bytes, extent needs %d", len(src), need)
	}
	if need := dstSpace.NumPoints() * int64(elemSize); int64(len(dst)) < need {
		return fmt.Errorf("h5: destination buffer %d bytes, extent needs %d", len(dst), need)
	}
	es := int64(elemSize)
	sc := &runCursor{runs: srcSpace.runs()}
	dc := &runCursor{runs: dstSpace.runs()}
	for {
		so, n, ok := sc.next(1 << 62)
		if !ok {
			return nil
		}
		for n > 0 {
			do, m, ok := dc.next(n)
			if !ok {
				return fmt.Errorf("h5: destination selection exhausted early")
			}
			copy(dst[do*es:(do+m)*es], src[so*es:(so+m)*es])
			so += m
			n -= m
		}
	}
}

// GatherSelected appends the selected elements of space, read from buf
// (full extent, row-major), to out in selection order and returns the
// extended slice.
func GatherSelected(out []byte, buf []byte, space *Dataspace, elemSize int) []byte {
	es := int64(elemSize)
	for _, r := range space.runs() {
		out = append(out, buf[r[0]*es:(r[0]+r[1])*es]...)
	}
	return out
}

// ScatterSelected writes packed (selection-order) data into the selected
// elements of space within buf (full extent, row-major). It returns the
// number of bytes consumed from data.
func ScatterSelected(buf []byte, space *Dataspace, data []byte, elemSize int) int64 {
	es := int64(elemSize)
	pos := int64(0)
	for _, r := range space.runs() {
		n := r[1] * es
		copy(buf[r[0]*es:r[0]*es+n], data[pos:pos+n])
		pos += n
	}
	return pos
}
