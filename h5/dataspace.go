package h5

import (
	"fmt"
	"sort"

	"lowfive/internal/grid"
)

// SelectOp says how a new selection combines with the current one.
type SelectOp uint8

const (
	// SelectSet replaces the current selection.
	SelectSet SelectOp = iota
	// SelectOr adds to the current selection (union).
	SelectOr
)

type selKind uint8

const (
	selAll selKind = iota
	selNone
	selHyper
	selPoints
)

// Unlimited marks a dimension as extendable without bound in a dataspace's
// maximum dims (H5S_UNLIMITED).
const Unlimited int64 = -1

// Dataspace is an N-dimensional extent plus a selection within it,
// mirroring HDF5 dataspaces. The zero value is not usable; construct with
// NewSimple or Scalar. A fresh dataspace has everything selected.
type Dataspace struct {
	dims    []int64
	maxDims []int64 // nil when fixed at dims; Unlimited per-dim otherwise
	kind    selKind
	boxes   []grid.Box // disjoint, sorted by Min, for selHyper
	points  [][]int64  // for selPoints, in insertion order
}

// NewSimple creates a dataspace with the given extent and all elements
// selected. Every dimension must be positive.
func NewSimple(dims ...int64) *Dataspace {
	if len(dims) == 0 {
		panic("h5: NewSimple requires at least one dimension")
	}
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("h5: dataspace dimension must be positive, got %v", dims))
		}
	}
	return &Dataspace{dims: append([]int64(nil), dims...), kind: selAll}
}

// NewSimpleMax creates a dataspace whose extent can later be changed up to
// maxDims (use Unlimited for no bound in a dimension). maxDims must have
// the same rank as dims and each bound must be Unlimited or >= the
// corresponding dim.
func NewSimpleMax(dims, maxDims []int64) (*Dataspace, error) {
	if len(maxDims) != len(dims) {
		return nil, fmt.Errorf("h5: maxDims rank %d != dims rank %d", len(maxDims), len(dims))
	}
	s := NewSimple(dims...)
	for i, m := range maxDims {
		if m != Unlimited && m < dims[i] {
			return nil, fmt.Errorf("h5: maxDims[%d]=%d below dims[%d]=%d", i, m, i, dims[i])
		}
	}
	s.maxDims = append([]int64(nil), maxDims...)
	return s, nil
}

// MaxDims returns the maximum extent (equal to Dims for fixed dataspaces).
func (s *Dataspace) MaxDims() []int64 {
	if s.maxDims == nil {
		return s.Dims()
	}
	return append([]int64(nil), s.maxDims...)
}

// Extendable reports whether any dimension may grow beyond the current
// extent.
func (s *Dataspace) Extendable() bool {
	for i, m := range s.maxDims {
		if m == Unlimited || m > s.dims[i] {
			return true
		}
	}
	return false
}

// SetExtent changes the current extent within the maximum dims. Selections
// are reset to all (as H5Dset_extent leaves no meaningful selection).
func (s *Dataspace) SetExtent(dims []int64) error {
	if len(dims) != len(s.dims) {
		return fmt.Errorf("h5: SetExtent rank %d != %d", len(dims), len(s.dims))
	}
	for i, d := range dims {
		if d <= 0 {
			return fmt.Errorf("h5: SetExtent dimension %d must be positive, got %d", i, d)
		}
		m := int64(0)
		if s.maxDims == nil {
			m = s.dims[i]
		} else {
			m = s.maxDims[i]
		}
		if m != Unlimited && d > m {
			return fmt.Errorf("h5: SetExtent dimension %d = %d exceeds maximum %d", i, d, m)
		}
	}
	s.dims = append(s.dims[:0], dims...)
	s.SelectAll()
	return nil
}

// Scalar creates a dataspace holding exactly one element.
func Scalar() *Dataspace { return NewSimple(1) }

// Dims returns a copy of the extent.
func (s *Dataspace) Dims() []int64 { return append([]int64(nil), s.dims...) }

// Rank returns the number of dimensions.
func (s *Dataspace) Rank() int { return len(s.dims) }

// NumPoints returns the total number of elements in the extent.
func (s *Dataspace) NumPoints() int64 {
	n := int64(1)
	for _, d := range s.dims {
		n *= d
	}
	return n
}

// Clone deep-copies the dataspace including its selection.
func (s *Dataspace) Clone() *Dataspace {
	c := &Dataspace{dims: append([]int64(nil), s.dims...), kind: s.kind}
	if s.maxDims != nil {
		c.maxDims = append([]int64(nil), s.maxDims...)
	}
	for _, b := range s.boxes {
		c.boxes = append(c.boxes, b.Clone())
	}
	for _, p := range s.points {
		c.points = append(c.points, append([]int64(nil), p...))
	}
	return c
}

// SelectAll selects every element.
func (s *Dataspace) SelectAll() *Dataspace {
	s.kind, s.boxes, s.points = selAll, nil, nil
	return s
}

// SelectNone selects nothing.
func (s *Dataspace) SelectNone() *Dataspace {
	s.kind, s.boxes, s.points = selNone, nil, nil
	return s
}

// SelectHyperslab selects the block starting at start with the given counts
// (stride and block default to 1, the common case). op SelectSet replaces
// the selection; SelectOr unions with it.
func (s *Dataspace) SelectHyperslab(op SelectOp, start, count []int64) error {
	return s.SelectHyperslabStride(op, start, nil, count, nil)
}

// SelectHyperslabStride is the general HDF5 hyperslab: count blocks of the
// given block shape spaced stride apart along each dimension. nil stride
// means block-adjacent steps; nil block means 1-element blocks.
func (s *Dataspace) SelectHyperslabStride(op SelectOp, start, stride, count, block []int64) error {
	d := len(s.dims)
	if len(start) != d || len(count) != d {
		return fmt.Errorf("h5: hyperslab start/count rank %d/%d does not match dataspace rank %d",
			len(start), len(count), d)
	}
	if stride != nil && len(stride) != d || block != nil && len(block) != d {
		return fmt.Errorf("h5: hyperslab stride/block rank mismatch")
	}
	blk := block
	if blk == nil {
		blk = make([]int64, d)
		for i := range blk {
			blk[i] = 1
		}
	}
	str := stride
	if str == nil {
		str = blk // adjacent blocks
	}
	for i := 0; i < d; i++ {
		if count[i] < 0 || start[i] < 0 || blk[i] <= 0 || str[i] < blk[i] {
			return fmt.Errorf("h5: invalid hyperslab parameters in dimension %d", i)
		}
		if count[i] > 0 {
			last := start[i] + (count[i]-1)*str[i] + blk[i] - 1
			if last >= s.dims[i] {
				return fmt.Errorf("h5: hyperslab exceeds extent in dimension %d: last index %d >= %d",
					i, last, s.dims[i])
			}
		}
	}
	// Enumerate the block grid. Fast path: one block per dimension step when
	// stride == block (adjacent) collapses into a single box per dimension.
	var newBoxes []grid.Box
	adjacent := true
	for i := 0; i < d; i++ {
		if str[i] != blk[i] && count[i] > 1 {
			adjacent = false
			break
		}
	}
	if adjacent {
		cnt := make([]int64, d)
		for i := range cnt {
			cnt[i] = count[i] * blk[i]
		}
		b := grid.NewBox(start, cnt)
		if !b.IsEmpty() {
			newBoxes = append(newBoxes, b)
		}
	} else {
		idx := make([]int64, d)
		for {
			st := make([]int64, d)
			for i := range st {
				st[i] = start[i] + idx[i]*str[i]
			}
			b := grid.NewBox(st, blk)
			if !b.IsEmpty() {
				newBoxes = append(newBoxes, b)
			}
			k := d - 1
			for k >= 0 {
				idx[k]++
				if idx[k] < count[k] {
					break
				}
				idx[k] = 0
				k--
			}
			if k < 0 {
				break
			}
		}
	}
	return s.selectBoxes(op, newBoxes)
}

// SelectBox selects an inclusive-bounds box directly.
func (s *Dataspace) SelectBox(op SelectOp, b grid.Box) error {
	if b.Dim() != len(s.dims) {
		return fmt.Errorf("h5: box rank %d does not match dataspace rank %d", b.Dim(), len(s.dims))
	}
	whole := grid.WholeExtent(s.dims)
	if !b.IsEmpty() && !whole.Intersect(b).Equal(b) {
		return fmt.Errorf("h5: box %v exceeds extent %v", b, s.dims)
	}
	if b.IsEmpty() {
		return s.selectBoxes(op, nil)
	}
	return s.selectBoxes(op, []grid.Box{b})
}

func (s *Dataspace) selectBoxes(op SelectOp, newBoxes []grid.Box) error {
	if op == SelectSet {
		s.kind = selHyper
		s.boxes = nil
		s.points = nil
	} else if op != SelectOr {
		return fmt.Errorf("h5: unknown selection op %d", op)
	}
	switch s.kind {
	case selAll:
		if op == SelectOr {
			return nil // union with everything is everything
		}
	case selPoints:
		return fmt.Errorf("h5: cannot OR hyperslabs into a point selection")
	case selNone:
		s.kind = selHyper
	}
	// Keep boxes disjoint: subtract existing coverage from each new box.
	for _, nb := range newBoxes {
		pending := []grid.Box{nb}
		for _, ex := range s.boxes {
			var next []grid.Box
			for _, p := range pending {
				next = append(next, grid.Subtract(p, ex)...)
			}
			pending = next
			if len(pending) == 0 {
				break
			}
		}
		s.boxes = append(s.boxes, pending...)
	}
	sortBoxes(s.boxes)
	return nil
}

// SelectPoints selects individual elements by coordinate, in order.
func (s *Dataspace) SelectPoints(op SelectOp, pts [][]int64) error {
	if op == SelectSet {
		s.kind, s.boxes, s.points = selPoints, nil, nil
	} else if s.kind != selPoints {
		return fmt.Errorf("h5: cannot OR points into a non-point selection")
	}
	whole := grid.WholeExtent(s.dims)
	for _, p := range pts {
		if len(p) != len(s.dims) || !whole.Contains(p) {
			return fmt.Errorf("h5: point %v outside extent %v", p, s.dims)
		}
		s.points = append(s.points, append([]int64(nil), p...))
	}
	return nil
}

func sortBoxes(boxes []grid.Box) {
	sort.Slice(boxes, func(i, j int) bool {
		a, b := boxes[i].Min, boxes[j].Min
		for d := range a {
			if a[d] != b[d] {
				return a[d] < b[d]
			}
		}
		return false
	})
}

// NumSelected returns the number of selected elements.
func (s *Dataspace) NumSelected() int64 {
	switch s.kind {
	case selAll:
		return s.NumPoints()
	case selNone:
		return 0
	case selPoints:
		return int64(len(s.points))
	default:
		n := int64(0)
		for _, b := range s.boxes {
			n += b.NumPoints()
		}
		return n
	}
}

// SelectionBoxes returns the selection as disjoint boxes in selection order.
// Point selections are returned as single-element boxes.
func (s *Dataspace) SelectionBoxes() []grid.Box {
	switch s.kind {
	case selAll:
		return []grid.Box{grid.WholeExtent(s.dims)}
	case selNone:
		return nil
	case selPoints:
		out := make([]grid.Box, len(s.points))
		one := make([]int64, len(s.dims))
		for i := range one {
			one[i] = 1
		}
		for i, p := range s.points {
			out[i] = grid.NewBox(p, one)
		}
		return out
	default:
		out := make([]grid.Box, len(s.boxes))
		for i, b := range s.boxes {
			out[i] = b.Clone()
		}
		return out
	}
}

// Bounds returns the bounding box of the selection (empty if none selected).
func (s *Dataspace) Bounds() grid.Box { return grid.BoundingBox(s.SelectionBoxes()) }

// IsAll reports whether the entire extent is selected via SelectAll.
func (s *Dataspace) IsAll() bool { return s.kind == selAll }

// runs returns the selection as (linear offset, length) runs in selection
// order within the extent.
func (s *Dataspace) runs() [][2]int64 {
	var out [][2]int64
	for _, b := range s.SelectionBoxes() {
		b.Runs(s.dims, func(off, n int64) { out = append(out, [2]int64{off, n}) })
	}
	return out
}

// String renders the dataspace extent and selection summary.
func (s *Dataspace) String() string {
	switch s.kind {
	case selAll:
		return fmt.Sprintf("dataspace%v(all)", s.dims)
	case selNone:
		return fmt.Sprintf("dataspace%v(none)", s.dims)
	case selPoints:
		return fmt.Sprintf("dataspace%v(%d points)", s.dims, len(s.points))
	default:
		return fmt.Sprintf("dataspace%v(%d boxes, %d elems)", s.dims, len(s.boxes), s.NumSelected())
	}
}
