// Package h5 implements an HDF5-like hierarchical data model and I/O API
// with a Virtual Object Layer (VOL): files, groups, datasets and attributes;
// rich datatypes (fixed-width integers and floats, strings, compounds,
// arrays); and N-dimensional dataspaces with hyperslab and point selections.
//
// Every API call is dispatched through a VOL Connector chosen per file via
// FileAccessProps, exactly like HDF5 1.12's VOL plugin mechanism. This is
// the property LowFive exploits: application code written against this
// package is oblivious to whether a "file" is stored in a container file on
// a (simulated) parallel file system, kept as an in-memory metadata
// hierarchy, or served over MPI to the processes of another task. Swapping
// the connector in the file-access property list — or setting none and using
// a default — changes the transport with zero changes to user code.
//
// Differences from real HDF5, chosen deliberately for a clean Go library:
// buffers are byte slices with typed views provided by generics helpers;
// errors are returned, not stacked; and the selection iteration order for
// multi-block hyperslab selections is "blocks in lexicographic order of
// their start coordinate, row-major within each block", which coincides
// with HDF5's order for the single-block selections used throughout the
// paper's workloads.
package h5
