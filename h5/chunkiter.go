package h5

import "lowfive/internal/grid"

// ChunkIter walks a dataspace selection as a sequence of disjoint sub-boxes
// whose payloads each fit within a byte budget. It is the unit of streaming:
// instead of gathering a whole selection into one flat buffer, the data
// plane gathers one sub-box at a time into a pooled chunk and ships it.
//
// Boxes are visited in selection order and each box is split recursively
// (halving the outermost splittable dimension) until it fits, so the union
// of the emitted boxes is exactly the selection. A box that cannot shrink
// further — a single element larger than the budget — is emitted anyway:
// the budget is a target, and degenerate budgets (down to one byte) still
// make progress one element at a time.
type ChunkIter struct {
	elemSize  int64
	maxPoints int64
	pending   []grid.Box // stack; next box to emit is at the end
}

// NewChunkIter returns an iterator over space's selection emitting sub-boxes
// of at most maxBytes bytes each (at elemSize bytes per element).
func NewChunkIter(space *Dataspace, elemSize int64, maxBytes int) *ChunkIter {
	return NewChunkIterBoxes(space.SelectionBoxes(), elemSize, maxBytes)
}

// NewChunkIterBoxes is NewChunkIter over an explicit box list (already in
// selection order), for callers that iterate per-region rather than over a
// whole dataspace.
func NewChunkIterBoxes(boxes []grid.Box, elemSize int64, maxBytes int) *ChunkIter {
	if elemSize < 1 {
		elemSize = 1
	}
	maxPoints := int64(maxBytes) / elemSize
	if maxPoints < 1 {
		maxPoints = 1
	}
	// Stack order: reverse so pop-from-end yields selection order.
	pending := make([]grid.Box, 0, len(boxes))
	for i := len(boxes) - 1; i >= 0; i-- {
		if !boxes[i].IsEmpty() {
			pending = append(pending, boxes[i])
		}
	}
	return &ChunkIter{elemSize: elemSize, maxPoints: maxPoints, pending: pending}
}

// Next returns the next sub-box of the selection, or false when exhausted.
func (it *ChunkIter) Next() (grid.Box, bool) {
	for len(it.pending) > 0 {
		b := it.pending[len(it.pending)-1]
		it.pending = it.pending[:len(it.pending)-1]
		if b.NumPoints() <= it.maxPoints {
			return b, true
		}
		lo, hi, ok := splitBox(b)
		if !ok {
			// Single element over budget: emit it whole.
			return b, true
		}
		// Push hi first so lo pops (and streams) first.
		it.pending = append(it.pending, hi, lo)
	}
	return grid.Box{}, false
}

// splitBox halves b along its outermost dimension with extent > 1. It
// reports false when every dimension is a single element.
func splitBox(b grid.Box) (lo, hi grid.Box, ok bool) {
	for d := 0; d < b.Dim(); d++ {
		if b.Max[d] > b.Min[d] {
			mid := b.Min[d] + (b.Max[d]-b.Min[d])/2
			lo, hi = b.Clone(), b.Clone()
			lo.Max[d] = mid
			hi.Min[d] = mid + 1
			return lo, hi, true
		}
	}
	return b, b, false
}
