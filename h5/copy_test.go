package h5

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBytesViewRoundTrip(t *testing.T) {
	u := []uint64{1, 2, 3, 1 << 40}
	b := Bytes(u)
	if len(b) != 32 {
		t.Fatalf("len=%d", len(b))
	}
	v := View[uint64](b)
	for i := range u {
		if v[i] != u[i] {
			t.Errorf("v[%d]=%d", i, v[i])
		}
	}
	// The view aliases: mutating b changes u.
	v[0] = 99
	if u[0] != 99 {
		t.Error("view should alias the original slice")
	}
	f := []float32{1.5, -2.25}
	if got := View[float32](Bytes(f)); got[1] != -2.25 {
		t.Errorf("float roundtrip got %v", got)
	}
}

func TestViewBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on misaligned length")
		}
	}()
	View[uint64](make([]byte, 7))
}

func TestGatherScatterSelected(t *testing.T) {
	s := NewSimple(4, 4)
	s.SelectHyperslab(SelectSet, []int64{1, 1}, []int64{2, 2})
	buf := make([]byte, 16)
	for i := range buf {
		buf[i] = byte(i)
	}
	packed := GatherSelected(nil, buf, s, 1)
	if !bytes.Equal(packed, []byte{5, 6, 9, 10}) {
		t.Errorf("gathered %v", packed)
	}
	out := make([]byte, 16)
	n := ScatterSelected(out, s, packed, 1)
	if n != 4 {
		t.Errorf("consumed %d", n)
	}
	for _, i := range []int{5, 6, 9, 10} {
		if out[i] != byte(i) {
			t.Errorf("out[%d]=%d", i, out[i])
		}
	}
}

func TestCopySelectedReshape(t *testing.T) {
	// Copy a 2x3 block out of an 8x8 source into a 3x2 block of a 6x6
	// destination: different run structures must pair correctly.
	src := NewSimple(8, 8)
	src.SelectHyperslab(SelectSet, []int64{1, 2}, []int64{2, 3})
	dst := NewSimple(6, 6)
	dst.SelectHyperslab(SelectSet, []int64{0, 0}, []int64{3, 2})
	sbuf := make([]byte, 64)
	for i := range sbuf {
		sbuf[i] = byte(i)
	}
	dbuf := make([]byte, 36)
	if err := CopySelected(dbuf, dst, sbuf, src, 1); err != nil {
		t.Fatal(err)
	}
	// Source selection order: 10,11,12, 18,19,20. Destination slots: 0,1, 6,7, 12,13.
	want := map[int]byte{0: 10, 1: 11, 6: 12, 7: 18, 12: 19, 13: 20}
	for slot, v := range want {
		if dbuf[slot] != v {
			t.Errorf("dbuf[%d]=%d want %d", slot, dbuf[slot], v)
		}
	}
}

func TestCopySelectedSizeMismatch(t *testing.T) {
	a := NewSimple(4)
	b := NewSimple(4)
	b.SelectHyperslab(SelectSet, []int64{0}, []int64{2})
	if err := CopySelected(make([]byte, 4), a, make([]byte, 4), b, 1); err == nil {
		t.Error("selection size mismatch should fail")
	}
}

func TestCopySelectedShortBuffers(t *testing.T) {
	a := NewSimple(8)
	if err := CopySelected(make([]byte, 8), a, make([]byte, 4), a, 1); err == nil {
		t.Error("short source should fail")
	}
	if err := CopySelected(make([]byte, 4), a, make([]byte, 8), a, 1); err == nil {
		t.Error("short destination should fail")
	}
}

func TestCopySelectedPropertyRoundTrip(t *testing.T) {
	// Property: gather(src selection) then scatter via an equal-size 1-d
	// destination and back reproduces the selected bytes.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dims := []int64{1 + r.Int63n(10), 1 + r.Int63n(10)}
		s := NewSimple(dims...)
		start := []int64{r.Int63n(dims[0]), r.Int63n(dims[1])}
		count := []int64{1 + r.Int63n(dims[0]-start[0]), 1 + r.Int63n(dims[1]-start[1])}
		if err := s.SelectHyperslab(SelectSet, start, count); err != nil {
			return false
		}
		elem := 1 + r.Intn(4)
		src := make([]byte, s.NumPoints()*int64(elem))
		r.Read(src)
		n := s.NumSelected()
		flat := NewSimple(n)
		mid := make([]byte, n*int64(elem))
		if err := CopySelected(mid, flat, src, s, elem); err != nil {
			return false
		}
		back := make([]byte, len(src))
		if err := CopySelected(back, s, mid, flat, elem); err != nil {
			return false
		}
		want := GatherSelected(nil, src, s, elem)
		got := GatherSelected(nil, back, s, elem)
		return bytes.Equal(want, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
