package h5

// The Virtual Object Layer. Every h5 API call on files, groups, datasets
// and attributes is routed through a Connector chosen per file in the
// FileAccessProps, mirroring HDF5 1.12's VOL plugin architecture that
// LowFive is built on. Connectors receive single-segment names; path
// splitting on '/' happens in the API layer.
//
// Buffer ownership at the VOL boundary: the CALLER keeps ownership of every
// []byte it passes down (Write, AttributeWrite). The API layer never makes
// defensive copies; a connector that retains the bytes beyond the call —
// storing an attribute in a tree, keeping a deep-copy triple — must copy at
// its own retention point, and a connector that merely forwards or consumes
// them (passthrough, serialization) must not. The one deliberate exception
// is zero-copy dataset writes (MetadataVOL.SetZeroCopy), where the caller
// explicitly extends its buffer's lifetime until the file's close serves
// consumers. This is what lets the streaming data plane move dataset bytes
// end to end with a single gather per hop instead of one copy per layer.

// ObjectKind distinguishes the node types of the hierarchy.
type ObjectKind uint8

const (
	// KindGroup is an interior node.
	KindGroup ObjectKind = iota
	// KindDataset is a typed, shaped leaf holding data.
	KindDataset
)

// String names the kind.
func (k ObjectKind) String() string {
	if k == KindDataset {
		return "dataset"
	}
	return "group"
}

// ObjectInfo describes one child of a group for listing.
type ObjectInfo struct {
	Name string
	Kind ObjectKind
}

// Connector is a VOL plugin: it resolves file create/open operations to
// handle implementations that carry out all subsequent operations.
type Connector interface {
	// ConnectorName identifies the plugin (for diagnostics).
	ConnectorName() string
	// FileCreate creates (truncating if present) a file.
	FileCreate(name string, fapl *FileAccessProps) (FileHandle, error)
	// FileOpen opens an existing file.
	FileOpen(name string, fapl *FileAccessProps) (FileHandle, error)
}

// AttrOps are the attribute operations shared by all object handles.
type AttrOps interface {
	// AttributeWrite creates or replaces an attribute.
	AttributeWrite(name string, dt *Datatype, space *Dataspace, data []byte) error
	// AttributeRead returns an attribute's type, shape and raw data.
	AttributeRead(name string) (*Datatype, *Dataspace, []byte, error)
	// AttributeNames lists attributes in creation order.
	AttributeNames() ([]string, error)
}

// ObjectHandle is a VOL handle to a group (or the file root group).
type ObjectHandle interface {
	AttrOps
	// GroupCreate creates a direct child group.
	GroupCreate(name string) (ObjectHandle, error)
	// GroupOpen opens a direct child group.
	GroupOpen(name string) (ObjectHandle, error)
	// DatasetCreate creates a direct child dataset.
	DatasetCreate(name string, dt *Datatype, space *Dataspace) (DatasetHandle, error)
	// DatasetOpen opens a direct child dataset.
	DatasetOpen(name string) (DatasetHandle, error)
	// Children lists direct children in creation order.
	Children() ([]ObjectInfo, error)
	// Delete unlinks a direct child (group or dataset) and everything under
	// it (H5Ldelete).
	Delete(name string) error
	// Close releases the handle.
	Close() error
}

// FileHandle is a VOL handle to a file; it doubles as the root group.
// Closing the file handle is the transport synchronization point: in
// LowFive's distributed VOL, a producer's close publishes the data and
// serves consumers, and a consumer's close signals it is done.
type FileHandle interface {
	ObjectHandle
}

// DatasetHandle is a VOL handle to a dataset.
type DatasetHandle interface {
	AttrOps
	// Datatype returns the element type.
	Datatype() *Datatype
	// Dataspace returns the dataset's extent (with everything selected).
	Dataspace() *Dataspace
	// Write transfers the elements selected in memSpace out of data into
	// the elements selected in fileSpace. A nil fileSpace means the whole
	// dataset; a nil memSpace means data is packed in selection order.
	Write(memSpace, fileSpace *Dataspace, data []byte) error
	// Read transfers the elements selected in fileSpace into the elements
	// selected in memSpace of data. Nil spaces as in Write.
	Read(memSpace, fileSpace *Dataspace, data []byte) error
	// SetExtent changes the dataset's current extent within the maximum
	// dims it was created with (H5Dset_extent).
	SetExtent(dims []int64) error
	// Close releases the handle.
	Close() error
}

// FileAccessProps selects how a file is accessed — most importantly, which
// VOL connector handles it (H5Pset_vol's analogue).
type FileAccessProps struct {
	// VOL is the connector that will handle this file. Required.
	VOL Connector
}

// NewFileAccessProps builds file-access properties for the given connector.
func NewFileAccessProps(vol Connector) *FileAccessProps { return &FileAccessProps{VOL: vol} }
