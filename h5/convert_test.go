package h5_test

import (
	"math"
	"testing"
	"testing/quick"

	"lowfive/h5"
	"lowfive/internal/core"
)

func convert(t *testing.T, dst *h5.Datatype, src *h5.Datatype, srcBytes []byte) []byte {
	t.Helper()
	n := len(srcBytes) / src.Size
	out := make([]byte, n*dst.Size)
	if err := h5.Convert(out, dst, srcBytes, src); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestConvertWidening(t *testing.T) {
	out := convert(t, h5.I64, h5.I16, h5.Bytes([]int16{-3, 0, 1000}))
	got := h5.View[int64](out)
	want := []int64{-3, 0, 1000}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got[%d]=%d", i, got[i])
		}
	}
	fout := convert(t, h5.F64, h5.F32, h5.Bytes([]float32{1.5, -2.25}))
	if f := h5.View[float64](fout); f[0] != 1.5 || f[1] != -2.25 {
		t.Errorf("floats %v", f)
	}
}

func TestConvertNarrowingClamps(t *testing.T) {
	out := convert(t, h5.I8, h5.I32, h5.Bytes([]int32{-1000, -5, 5, 1000}))
	got := h5.View[int8](out)
	want := []int8{-128, -5, 5, 127}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got[%d]=%d want %d", i, got[i], want[i])
		}
	}
	// Signed negative to unsigned clamps at zero.
	uout := convert(t, h5.U16, h5.I32, h5.Bytes([]int32{-7, 70000, 12}))
	ug := h5.View[uint16](uout)
	if ug[0] != 0 || ug[1] != 65535 || ug[2] != 12 {
		t.Errorf("unsigned clamp %v", ug)
	}
}

func TestConvertIntFloat(t *testing.T) {
	out := convert(t, h5.F32, h5.U32, h5.Bytes([]uint32{0, 7, 1 << 20}))
	f := h5.View[float32](out)
	if f[0] != 0 || f[1] != 7 || f[2] != float32(1<<20) {
		t.Errorf("int->float %v", f)
	}
	back := convert(t, h5.I32, h5.F64, h5.Bytes([]float64{2.9, -2.9, math.NaN(), math.Inf(1)}))
	g := h5.View[int32](back)
	if g[0] != 2 || g[1] != -2 {
		t.Errorf("truncation %v", g)
	}
	if g[2] != 0 {
		t.Errorf("NaN should convert to 0, got %d", g[2])
	}
	if g[3] != math.MaxInt32 {
		t.Errorf("+Inf should clamp, got %d", g[3])
	}
}

func TestConvertValidation(t *testing.T) {
	if err := h5.Convert(make([]byte, 8), h5.NewString(4), make([]byte, 8), h5.U64); err == nil {
		t.Error("string conversion should be unsupported")
	}
	if err := h5.Convert(make([]byte, 8), h5.I64, make([]byte, 7), h5.U32); err == nil {
		t.Error("misaligned source should fail")
	}
	if err := h5.Convert(make([]byte, 4), h5.I64, make([]byte, 8), h5.U32); err == nil {
		t.Error("short destination should fail")
	}
	if !h5.Convertible(h5.I8, h5.F64) || h5.Convertible(h5.I8, h5.NewOpaque(3)) {
		t.Error("Convertible wrong")
	}
}

func TestConvertRoundTripProperty(t *testing.T) {
	// Widening then narrowing back is the identity for in-range values.
	f := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		wide := make([]byte, len(vals)*8)
		if err := h5.Convert(wide, h5.I64, h5.Bytes(vals), h5.I16); err != nil {
			return false
		}
		back := make([]byte, len(vals)*2)
		if err := h5.Convert(back, h5.I16, wide, h5.I64); err != nil {
			return false
		}
		got := h5.View[int16](back)
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReadAsWriteAsThroughVOL(t *testing.T) {
	fapl := h5.NewFileAccessProps(core.NewMetadataVOL(nil))
	f, _ := h5.CreateFile("conv.h5", fapl)
	ds, _ := f.CreateDataset("d", h5.U32, h5.NewSimple(4))
	// Write float64 values into the uint32 dataset.
	if err := ds.WriteAs(h5.F64, nil, h5.Bytes([]float64{1.7, 2, 3.2, 4})); err != nil {
		t.Fatal(err)
	}
	// Read back natively: truncated to integers.
	nat := make([]uint32, 4)
	ds.Read(nil, nil, h5.Bytes(nat))
	if nat[0] != 1 || nat[2] != 3 {
		t.Errorf("native %v", nat)
	}
	// Read as int64.
	wide := make([]int64, 4)
	if err := ds.ReadAs(h5.I64, nil, h5.Bytes(wide)); err != nil {
		t.Fatal(err)
	}
	if wide[3] != 4 {
		t.Errorf("wide %v", wide)
	}
	// Sub-selection read with conversion.
	sel := h5.NewSimple(4)
	sel.SelectHyperslab(h5.SelectSet, []int64{1}, []int64{2})
	part := make([]float32, 2)
	if err := ds.ReadAs(h5.F32, sel, h5.Bytes(part)); err != nil {
		t.Fatal(err)
	}
	if part[0] != 2 || part[1] != 3 {
		t.Errorf("part %v", part)
	}
	// Unsupported conversions error cleanly.
	if err := ds.ReadAs(h5.NewString(4), nil, make([]byte, 16)); err == nil {
		t.Error("string read should fail")
	}
	if err := ds.WriteAs(h5.NewOpaque(2), nil, make([]byte, 8)); err == nil {
		t.Error("opaque write should fail")
	}
	// Same-type fast paths.
	same := make([]uint32, 4)
	if err := ds.ReadAs(h5.U32, nil, h5.Bytes(same)); err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteAs(h5.U32, nil, h5.Bytes(same)); err != nil {
		t.Fatal(err)
	}
}

func TestConvertCompoundFieldSubset(t *testing.T) {
	// A particle record on "disk"...
	full, err := h5.NewCompound(24,
		h5.Field{Name: "x", Offset: 0, Type: h5.F32},
		h5.Field{Name: "y", Offset: 4, Type: h5.F32},
		h5.Field{Name: "z", Offset: 8, Type: h5.F32},
		h5.Field{Name: "id", Offset: 16, Type: h5.U64},
	)
	if err != nil {
		t.Fatal(err)
	}
	// ...and a memory record wanting only id (widened) and x (as float64).
	sub, err := h5.NewCompound(16,
		h5.Field{Name: "id", Offset: 0, Type: h5.U32},
		h5.Field{Name: "x", Offset: 8, Type: h5.F64},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !h5.Convertible(sub, full) {
		t.Fatal("subset extraction should be convertible")
	}
	src := make([]byte, 2*24)
	for i := 0; i < 2; i++ {
		rec := src[i*24:]
		copy(rec[0:], h5.Bytes([]float32{float32(i) + 0.5, 0, 0}))
		copy(rec[16:], h5.Bytes([]uint64{uint64(100 + i)}))
	}
	dst := make([]byte, 2*16)
	if err := h5.Convert(dst, sub, src, full); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		rec := dst[i*16:]
		if id := h5.View[uint32](rec[0:4])[0]; id != uint32(100+i) {
			t.Errorf("record %d id=%d", i, id)
		}
		if x := h5.View[float64](rec[8:16])[0]; x != float64(i)+0.5 {
			t.Errorf("record %d x=%v", i, x)
		}
	}
	// Destination fields missing from the source are not convertible.
	bad, _ := h5.NewCompound(8, h5.Field{Name: "vx", Offset: 0, Type: h5.F64})
	if h5.Convertible(bad, full) {
		t.Error("missing field should not be convertible")
	}
}

func TestReadAsCompoundSubsetThroughVOL(t *testing.T) {
	full, _ := h5.NewCompound(12,
		h5.Field{Name: "a", Offset: 0, Type: h5.U32},
		h5.Field{Name: "b", Offset: 4, Type: h5.F64},
	)
	fapl := h5.NewFileAccessProps(core.NewMetadataVOL(nil))
	f, _ := h5.CreateFile("sub.h5", fapl)
	ds, _ := f.CreateDataset("recs", full, h5.NewSimple(3))
	src := make([]byte, 3*12)
	for i := 0; i < 3; i++ {
		copy(src[i*12:], h5.Bytes([]uint32{uint32(i)}))
		copy(src[i*12+4:], h5.Bytes([]float64{float64(i) * 1.5}))
	}
	ds.Write(nil, nil, src)
	bOnly, _ := h5.NewCompound(8, h5.Field{Name: "b", Offset: 0, Type: h5.F64})
	out := make([]byte, 3*8)
	if err := ds.ReadAs(bOnly, nil, out); err != nil {
		t.Fatal(err)
	}
	bs := h5.View[float64](out)
	for i := range bs {
		if bs[i] != float64(i)*1.5 {
			t.Errorf("b[%d]=%v", i, bs[i])
		}
	}
}
