package h5

import (
	"fmt"
	"strings"
)

// Class identifies the family of a Datatype, mirroring H5T classes.
type Class uint8

const (
	// ClassInteger is a fixed-width integer type.
	ClassInteger Class = iota
	// ClassFloat is an IEEE-754 floating-point type.
	ClassFloat
	// ClassString is a fixed-length byte string.
	ClassString
	// ClassCompound is a struct of named, typed fields at fixed offsets.
	ClassCompound
	// ClassArray is a fixed-shape array of an element type.
	ClassArray
	// ClassOpaque is an uninterpreted fixed-size blob.
	ClassOpaque
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassInteger:
		return "integer"
	case ClassFloat:
		return "float"
	case ClassString:
		return "string"
	case ClassCompound:
		return "compound"
	case ClassArray:
		return "array"
	case ClassOpaque:
		return "opaque"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Field is one member of a compound datatype.
type Field struct {
	Name   string
	Offset int
	Type   *Datatype
}

// Datatype describes the in-memory representation of one dataset element,
// mirroring the HDF5 datatype model. Datatypes are immutable once built;
// treat the exported fields as read-only.
type Datatype struct {
	Class  Class
	Size   int  // total bytes per element
	Signed bool // integers only

	Fields []Field // compound only

	Elem *Datatype // array only
	Dims []int64   // array only
}

// Predefined datatypes, matching HDF5's native types.
var (
	I8  = &Datatype{Class: ClassInteger, Size: 1, Signed: true}
	I16 = &Datatype{Class: ClassInteger, Size: 2, Signed: true}
	I32 = &Datatype{Class: ClassInteger, Size: 4, Signed: true}
	I64 = &Datatype{Class: ClassInteger, Size: 8, Signed: true}
	U8  = &Datatype{Class: ClassInteger, Size: 1}
	U16 = &Datatype{Class: ClassInteger, Size: 2}
	U32 = &Datatype{Class: ClassInteger, Size: 4}
	U64 = &Datatype{Class: ClassInteger, Size: 8}
	F32 = &Datatype{Class: ClassFloat, Size: 4}
	F64 = &Datatype{Class: ClassFloat, Size: 8}
)

// NewString returns a fixed-length string type of n bytes.
func NewString(n int) *Datatype {
	if n <= 0 {
		panic("h5: string datatype must have positive size")
	}
	return &Datatype{Class: ClassString, Size: n}
}

// NewOpaque returns an uninterpreted fixed-size type of n bytes.
func NewOpaque(n int) *Datatype {
	if n <= 0 {
		panic("h5: opaque datatype must have positive size")
	}
	return &Datatype{Class: ClassOpaque, Size: n}
}

// NewCompound builds a compound type of the given total size. Field offsets
// must fit within the size and not overlap is not enforced (HDF5 allows
// padding and even overlap); offsets+field sizes must stay in bounds.
func NewCompound(size int, fields ...Field) (*Datatype, error) {
	if size <= 0 {
		return nil, fmt.Errorf("h5: compound size must be positive, got %d", size)
	}
	seen := map[string]bool{}
	for _, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("h5: compound field with empty name")
		}
		if seen[f.Name] {
			return nil, fmt.Errorf("h5: duplicate compound field %q", f.Name)
		}
		seen[f.Name] = true
		if f.Type == nil {
			return nil, fmt.Errorf("h5: compound field %q has nil type", f.Name)
		}
		if f.Offset < 0 || f.Offset+f.Type.Size > size {
			return nil, fmt.Errorf("h5: compound field %q at [%d,%d) exceeds size %d",
				f.Name, f.Offset, f.Offset+f.Type.Size, size)
		}
	}
	return &Datatype{Class: ClassCompound, Size: size, Fields: append([]Field(nil), fields...)}, nil
}

// NewArray builds a fixed-shape array type.
func NewArray(elem *Datatype, dims ...int64) (*Datatype, error) {
	if elem == nil {
		return nil, fmt.Errorf("h5: array element type is nil")
	}
	n := int64(1)
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("h5: array dimension %d must be positive", d)
		}
		n *= d
	}
	return &Datatype{Class: ClassArray, Size: int(n) * elem.Size, Elem: elem, Dims: append([]int64(nil), dims...)}, nil
}

// FieldByName returns the compound field with the given name.
func (t *Datatype) FieldByName(name string) (Field, bool) {
	for _, f := range t.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// Equal reports structural equality of two datatypes.
func (t *Datatype) Equal(o *Datatype) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil {
		return false
	}
	if t.Class != o.Class || t.Size != o.Size || t.Signed != o.Signed {
		return false
	}
	if len(t.Fields) != len(o.Fields) {
		return false
	}
	for i := range t.Fields {
		a, b := t.Fields[i], o.Fields[i]
		if a.Name != b.Name || a.Offset != b.Offset || !a.Type.Equal(b.Type) {
			return false
		}
	}
	if (t.Elem == nil) != (o.Elem == nil) {
		return false
	}
	if t.Elem != nil && !t.Elem.Equal(o.Elem) {
		return false
	}
	if len(t.Dims) != len(o.Dims) {
		return false
	}
	for i := range t.Dims {
		if t.Dims[i] != o.Dims[i] {
			return false
		}
	}
	return true
}

// String renders a compact human-readable description.
func (t *Datatype) String() string {
	switch t.Class {
	case ClassInteger:
		s := "uint"
		if t.Signed {
			s = "int"
		}
		return fmt.Sprintf("%s%d", s, t.Size*8)
	case ClassFloat:
		return fmt.Sprintf("float%d", t.Size*8)
	case ClassString:
		return fmt.Sprintf("string[%d]", t.Size)
	case ClassOpaque:
		return fmt.Sprintf("opaque[%d]", t.Size)
	case ClassArray:
		return fmt.Sprintf("%v array of %s", t.Dims, t.Elem)
	case ClassCompound:
		var b strings.Builder
		b.WriteString("compound{")
		for i, f := range t.Fields {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s:%s@%d", f.Name, f.Type, f.Offset)
		}
		fmt.Fprintf(&b, "}[%d]", t.Size)
		return b.String()
	default:
		return fmt.Sprintf("datatype(class=%d,size=%d)", t.Class, t.Size)
	}
}
