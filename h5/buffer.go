package h5

import "unsafe"

// Typed views over byte buffers. Dataset I/O in this package moves []byte;
// these helpers reinterpret numeric slices without copying, in the machine's
// native byte order (as HDF5 native types do).

// Bytes returns the raw bytes backing a numeric slice without copying.
// The view aliases s: writes through either are visible in both.
func Bytes[T any](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*int(unsafe.Sizeof(s[0])))
}

// View reinterprets a byte slice as a numeric slice without copying.
// len(b) must be a multiple of the element size.
func View[T any](b []byte) []T {
	if len(b) == 0 {
		return nil
	}
	var zero T
	es := int(unsafe.Sizeof(zero))
	if len(b)%es != 0 {
		panic("h5: buffer length not a multiple of the element size")
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), len(b)/es)
}

// Alloc returns a zeroed buffer holding n elements of the given datatype.
func Alloc(t *Datatype, n int64) []byte { return make([]byte, n*int64(t.Size)) }
