// Benchmarks regenerating every table and figure of the paper's evaluation
// (§IV) as testing.B benchmarks, plus ablations for the design choices
// DESIGN.md calls out. Each figure benchmark runs the corresponding
// transports at a fixed weak-scaling point and reports the modeled
// completion time as the "exchange-s" metric (the number the paper plots);
// ns/op additionally includes setup/teardown. The full parameter sweeps
// with the calibrated cost models are produced by cmd/lowfive-bench and
// cmd/nyx-reeber.
package lowfive_test

import (
	"testing"

	"lowfive"
	"lowfive/h5"
	"lowfive/internal/core"
	"lowfive/internal/grid"
	"lowfive/internal/harness"
	"lowfive/internal/workload"
	"lowfive/mpi"
)

// benchConfig is the benchmark regime: no modeled network/storage delays,
// so the numbers measure the real protocol and copy work.
func benchConfig() harness.Config {
	c := harness.QuickConfig()
	c.Trials = 1
	c.NetAlpha = 0
	c.NetBeta = 0
	c.FS.OSTLatency = 0
	c.FS.OSTBandwidth = 0
	c.FS.SharedLockLatency = 0
	// The benchmark workloads are the paper's scaled down 100x, so scale
	// the stream frame size to match; the full-size default (1 MiB) would
	// dwarf the per-producer responses here.
	c.ChunkBytes = 64 << 10
	return c
}

// benchSpec is the fixed weak-scaling point used by the figure benchmarks:
// 16 total processes (12 producers + 4 consumers), 10^4 elements/producer.
func benchSpec() workload.Spec {
	return workload.PaperSpec(16).Scaled(100)
}

func runTrial(b *testing.B, fn func(workload.Spec) (float64, error)) {
	b.Helper()
	spec := benchSpec()
	total := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sec, err := fn(spec)
		if err != nil {
			b.Fatal(err)
		}
		total += sec
	}
	b.ReportMetric(total/float64(b.N), "exchange-s")
}

// BenchmarkTable1Sizing exercises the Table I sizing computation for every
// row of the paper's table.
func BenchmarkTable1Sizing(b *testing.B) {
	scales := []int{4, 16, 64, 256, 1024, 4096, 16384}
	var sink int64
	for i := 0; i < b.N; i++ {
		for _, s := range scales {
			spec := workload.PaperSpec(s)
			sink += spec.TotalBytes() + spec.TotalGridPoints() + spec.TotalParticles()
		}
	}
	_ = sink
}

// BenchmarkFig5FileVsMemory compares LowFive's two transport modes.
func BenchmarkFig5FileVsMemory(b *testing.B) {
	c := benchConfig()
	b.Run("FileMode", func(b *testing.B) { runTrial(b, c.TrialLowFiveFile) })
	b.Run("MemoryMode", func(b *testing.B) { runTrial(b, c.TrialLowFiveMemory) })
}

// BenchmarkFig6FileModeVsHDF5 measures the overhead of the LowFive layer
// over direct container-file I/O.
func BenchmarkFig6FileModeVsHDF5(b *testing.B) {
	c := benchConfig()
	b.Run("LowFiveFileMode", func(b *testing.B) { runTrial(b, c.TrialLowFiveFile) })
	b.Run("PureHDF5", func(b *testing.B) { runTrial(b, c.TrialPureHDF5) })
}

// BenchmarkFig7MemoryVsPureMPI compares LowFive in situ with the
// hand-written element-at-a-time MPI redistribution.
func BenchmarkFig7MemoryVsPureMPI(b *testing.B) {
	c := benchConfig()
	b.Run("LowFiveMemoryMode", func(b *testing.B) { runTrial(b, c.TrialLowFiveMemory) })
	b.Run("PureMPI", func(b *testing.B) { runTrial(b, c.TrialPureMPI) })
}

// BenchmarkFig8MemoryVsDataSpaces compares LowFive with the staging service.
func BenchmarkFig8MemoryVsDataSpaces(b *testing.B) {
	c := benchConfig()
	b.Run("LowFiveMemoryMode", func(b *testing.B) { runTrial(b, c.TrialLowFiveMemory) })
	b.Run("DataSpaces", func(b *testing.B) { runTrial(b, c.TrialDataSpaces) })
}

// BenchmarkFig9MemoryVsBredala compares LowFive with Bredala's two
// redistribution policies.
func BenchmarkFig9MemoryVsBredala(b *testing.B) {
	c := benchConfig()
	b.Run("LowFiveMemoryMode", func(b *testing.B) { runTrial(b, c.TrialLowFiveMemory) })
	b.Run("Bredala", func(b *testing.B) {
		spec := benchSpec()
		var g, p float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			gs, ps, err := c.TrialBredala(spec)
			if err != nil {
				b.Fatal(err)
			}
			g += gs
			p += ps
		}
		b.ReportMetric(g/float64(b.N), "grid-s")
		b.ReportMetric(p/float64(b.N), "particles-s")
	})
}

// BenchmarkFig11LargeData repeats the three fastest transports with 10x
// larger per-producer data.
func BenchmarkFig11LargeData(b *testing.B) {
	c := benchConfig()
	large := workload.PaperSpec(16).Scaled(10)
	run := func(fn func(workload.Spec) (float64, error)) func(*testing.B) {
		return func(b *testing.B) {
			total := 0.0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sec, err := fn(large)
				if err != nil {
					b.Fatal(err)
				}
				total += sec
			}
			b.ReportMetric(total/float64(b.N), "exchange-s")
		}
	}
	b.Run("LowFiveMemoryMode", run(c.TrialLowFiveMemory))
	b.Run("DataSpaces", run(c.TrialDataSpaces))
	b.Run("PureMPI", run(c.TrialPureMPI))
}

// BenchmarkTable2NyxReeber runs the three scenarios of the science use case
// at a small grid and reports the paper's write/read metrics.
func BenchmarkTable2NyxReeber(b *testing.B) {
	c := benchConfig()
	u := harness.UseCaseConfig{
		GridSides:     []int64{24},
		NyxProcs:      8,
		ReeberProcs:   2,
		Steps:         2,
		Threshold:     10,
		PlotfileGroup: 4,
	}
	var lfW, lfR, h5W, h5R, plW float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := c.TableII(u)
		if err != nil {
			b.Fatal(err)
		}
		r := rows[0]
		lfW += r.LFWrite
		lfR += r.LFRead
		h5W += r.H5Write
		h5R += r.H5Read
		plW += r.PlotWrite
	}
	n := float64(b.N)
	b.ReportMetric(lfW/n, "lowfive-write-s")
	b.ReportMetric(lfR/n, "lowfive-read-s")
	b.ReportMetric(h5W/n, "hdf5-write-s")
	b.ReportMetric(h5R/n, "hdf5-read-s")
	b.ReportMetric(plW/n, "plotfiles-write-s")
}

// --- ablations ---

// BenchmarkAblationSerialization isolates the Figure 7 explanation: the
// cost of serializing the intersection of two boxes run-coalesced (what
// LowFive does) versus element at a time (what the hand-written code does).
func BenchmarkAblationSerialization(b *testing.B) {
	dims := []int64{64, 64, 64}
	src := grid.Box{Min: []int64{0, 0, 0}, Max: []int64{31, 63, 63}}    // row slab
	inter := grid.Box{Min: []int64{0, 0, 16}, Max: []int64{31, 63, 47}} // column overlap
	data := make([]byte, src.NumPoints()*8)
	b.Run("RunCoalesced", func(b *testing.B) {
		b.SetBytes(inter.NumPoints() * 8)
		for i := 0; i < b.N; i++ {
			out := grid.GatherRegion(make([]byte, 0, inter.NumPoints()*8), data, src, inter, 8)
			_ = out
		}
	})
	b.Run("ElementAtATime", func(b *testing.B) {
		b.SetBytes(inter.NumPoints() * 8)
		for i := 0; i < b.N; i++ {
			out := make([]byte, 0, inter.NumPoints()*8)
			// The hand-written code's inner loop: one coordinate conversion
			// and an 8-byte append per point.
			pt := append([]int64(nil), inter.Min...)
			for {
				off := grid.LocalIndex(src, pt) * 8
				out = append(out, data[off:off+8]...)
				k := 2
				for k >= 0 {
					pt[k]++
					if pt[k] <= inter.Max[k] {
						break
					}
					pt[k] = inter.Min[k]
					k--
				}
				if k < 0 {
					break
				}
			}
		}
	})
	_ = dims
}

// BenchmarkAblationDeepVsShallow isolates the write-side cost of the
// ownership modes: deep copies pay at write time, shallow writes are
// constant time until (and unless) the data is consumed.
func BenchmarkAblationDeepVsShallow(b *testing.B) {
	space := h5.NewSimple(256, 256)
	sel := space.Clone()
	if err := sel.SelectHyperslab(h5.SelectSet, []int64{0, 0}, []int64{256, 256}); err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 256*256*8)
	b.Run("Deep", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			n := core.NewDatasetNode("d", h5.U64, space.Clone())
			n.Ownership = core.OwnDeep
			if err := n.RecordWrite(nil, sel, data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Shallow", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			n := core.NewDatasetNode("d", h5.U64, space.Clone())
			n.Ownership = core.OwnShallow
			if err := n.RecordWrite(nil, sel, data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationAlltoall measures the index exchange's collective: the
// Bruck all-to-all that replaces a flat n^2 message pattern.
func BenchmarkAblationAlltoall(b *testing.B) {
	for _, n := range []int{8, 32} {
		b.Run(b.Name()[len("BenchmarkAblationAlltoall"):]+sizeName(n), func(b *testing.B) {
			payload := make([]byte, 64)
			for i := 0; i < b.N; i++ {
				err := mpi.Run(n, func(c *mpi.Comm) {
					data := make([][]byte, n)
					for j := range data {
						data[j] = payload
					}
					if _, err := c.Alltoall(data); err != nil {
						b.Error(err)
					}
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(n int) string {
	if n == 8 {
		return "n=8"
	}
	return "n=32"
}

// BenchmarkAblationServeOverlap compares serve-on-close (the LowFive
// default) against the paper's future-work knob of explicit serving — the
// synchronization the paper identifies as LowFive's cost vs DataSpaces.
func BenchmarkAblationServeOverlap(b *testing.B) {
	spec := workload.Spec{Producers: 3, Consumers: 1, GridPointsPerProducer: 1000, ParticlesPerProducer: 1000}
	run := func(serveOnClose bool) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				err := mpi.RunWorkflow([]mpi.TaskSpec{
					{Name: "producer", Procs: spec.Producers, Main: func(p *mpi.Proc) {
						gv, pv := workload.GenerateProducer(spec, p.Task.Rank())
						vol := lowfive.NewDistMetadataVOL(p.Task, nil)
						vol.SetIntercomm("*", p.Intercomm("consumer"))
						vol.ServeOnClose = serveOnClose
						fapl := h5.NewFileAccessProps(vol)
						f, err := h5.CreateFile("s.h5", fapl)
						if err != nil {
							b.Error(err)
							return
						}
						if err := workload.WriteSynthetic(f, spec, p.Task.Rank(), gv, pv); err != nil {
							b.Error(err)
						}
						if err := f.Close(); err != nil {
							b.Error(err)
						}
						if !serveOnClose {
							// Producer does some post-close work here —
							// overlap that serve-on-close cannot have —
							// then serves explicitly.
							if err := vol.Serve("s.h5"); err != nil {
								b.Error(err)
							}
						}
					}},
					{Name: "consumer", Procs: spec.Consumers, Main: func(p *mpi.Proc) {
						vol := lowfive.NewDistMetadataVOL(p.Task, nil)
						vol.SetIntercomm("*", p.Intercomm("producer"))
						fapl := h5.NewFileAccessProps(vol)
						f, err := h5.OpenFile("s.h5", fapl)
						if err != nil {
							b.Error(err)
							return
						}
						if err := workload.ReadAndValidate(f, spec, p.Task.Rank()); err != nil {
							b.Error(err)
						}
						if err := f.Close(); err != nil {
							b.Error(err)
						}
					}},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("ServeOnClose", run(true))
	b.Run("ExplicitServe", run(false))
}

// BenchmarkRedistribution measures one end-to-end n-to-m redistribution at
// several shapes (no cost models: pure protocol + copy work).
func BenchmarkRedistribution(b *testing.B) {
	c := benchConfig()
	shapes := []struct {
		name  string
		procs int
	}{
		{"4procs", 4}, {"16procs", 16}, {"64procs", 64},
	}
	for _, s := range shapes {
		b.Run(s.name, func(b *testing.B) {
			spec := workload.PaperSpec(s.procs).Scaled(100)
			total := 0.0
			for i := 0; i < b.N; i++ {
				sec, err := c.TrialLowFiveMemory(spec)
				if err != nil {
					b.Fatal(err)
				}
				total += sec
			}
			b.ReportMetric(total/float64(b.N), "exchange-s")
		})
	}
}
