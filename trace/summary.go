package trace

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// SummaryRow aggregates all spans of one (task, phase) pair across the
// task's ranks: how often the phase ran, how much wall time its spans cover
// (summed over ranks, like the paper's per-phase stacked bars), how many
// payload bytes its events carried (the sum of their "bytes" arguments),
// and the p50/p99 of the individual span durations — the totals say where
// the time went, the quantiles say whether it went evenly or into a tail.
type SummaryRow struct {
	Process string // task name
	Phase   string // "cat/name" of the spans aggregated into this row
	Count   int64
	Total   time.Duration
	Bytes   int64
	P50     time.Duration
	P99     time.Duration
}

// durQuantile returns the q-quantile (0..1) of sorted span durations by the
// nearest-rank method.
func durQuantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)-1) + 0.5)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Summary aggregates the recording into per-task per-phase rows, sorted by
// task and then by descending total time — the shape of the paper's
// Table II time/volume breakdown.
func (t *Tracer) Summary() []SummaryRow {
	type key struct{ proc, phase string }
	acc := map[key]*SummaryRow{}
	durs := map[key][]time.Duration{}
	for _, k := range t.Tracks() {
		for _, ev := range k.Events() {
			if ev.Kind != KindSpan {
				continue
			}
			ky := key{k.process, ev.Cat + "/" + ev.Name}
			row, ok := acc[ky]
			if !ok {
				row = &SummaryRow{Process: ky.proc, Phase: ky.phase}
				acc[ky] = row
			}
			row.Count++
			row.Total += ev.Dur
			durs[ky] = append(durs[ky], ev.Dur)
			for _, a := range ev.Args {
				if a.Key == "bytes" && !a.IsStr {
					row.Bytes += a.Int
				}
			}
		}
	}
	rows := make([]SummaryRow, 0, len(acc))
	for ky, r := range acc {
		ds := durs[ky]
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		r.P50 = durQuantile(ds, 0.50)
		r.P99 = durQuantile(ds, 0.99)
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Process != rows[j].Process {
			return rows[i].Process < rows[j].Process
		}
		if rows[i].Total != rows[j].Total {
			return rows[i].Total > rows[j].Total
		}
		return rows[i].Phase < rows[j].Phase
	})
	return rows
}

// formatBytes renders a byte count with a binary-prefix unit.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// WriteSummary renders the rows as an aligned text table.
func WriteSummary(w io.Writer, rows []SummaryRow) {
	fmt.Fprintf(w, "%-12s %-24s %10s %14s %12s %12s %14s\n",
		"task", "phase", "count", "time", "p50", "p99", "bytes")
	prev := ""
	for _, r := range rows {
		name := r.Process
		if name == prev {
			name = ""
		} else {
			prev = name
		}
		fmt.Fprintf(w, "%-12s %-24s %10d %14s %12s %12s %14s\n",
			name, r.Phase, r.Count,
			r.Total.Round(time.Microsecond).String(),
			r.P50.Round(time.Microsecond).String(),
			r.P99.Round(time.Microsecond).String(),
			formatBytes(r.Bytes))
	}
}

// WriteSummaryTable is shorthand for WriteSummary(w, t.Summary()).
func (t *Tracer) WriteSummaryTable(w io.Writer) {
	WriteSummary(w, t.Summary())
}
