package trace

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// SummaryRow aggregates all spans of one (task, phase) pair across the
// task's ranks: how often the phase ran, how much wall time its spans cover
// (summed over ranks, like the paper's per-phase stacked bars), and how many
// payload bytes its events carried (the sum of their "bytes" arguments).
type SummaryRow struct {
	Process string // task name
	Phase   string // "cat/name" of the spans aggregated into this row
	Count   int64
	Total   time.Duration
	Bytes   int64
}

// Summary aggregates the recording into per-task per-phase rows, sorted by
// task and then by descending total time — the shape of the paper's
// Table II time/volume breakdown.
func (t *Tracer) Summary() []SummaryRow {
	type key struct{ proc, phase string }
	acc := map[key]*SummaryRow{}
	for _, k := range t.Tracks() {
		for _, ev := range k.Events() {
			if ev.Kind != KindSpan {
				continue
			}
			ky := key{k.process, ev.Cat + "/" + ev.Name}
			row, ok := acc[ky]
			if !ok {
				row = &SummaryRow{Process: ky.proc, Phase: ky.phase}
				acc[ky] = row
			}
			row.Count++
			row.Total += ev.Dur
			for _, a := range ev.Args {
				if a.Key == "bytes" && !a.IsStr {
					row.Bytes += a.Int
				}
			}
		}
	}
	rows := make([]SummaryRow, 0, len(acc))
	for _, r := range acc {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Process != rows[j].Process {
			return rows[i].Process < rows[j].Process
		}
		if rows[i].Total != rows[j].Total {
			return rows[i].Total > rows[j].Total
		}
		return rows[i].Phase < rows[j].Phase
	})
	return rows
}

// formatBytes renders a byte count with a binary-prefix unit.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// WriteSummary renders the rows as an aligned text table.
func WriteSummary(w io.Writer, rows []SummaryRow) {
	fmt.Fprintf(w, "%-12s %-24s %10s %14s %14s\n", "task", "phase", "count", "time", "bytes")
	prev := ""
	for _, r := range rows {
		name := r.Process
		if name == prev {
			name = ""
		} else {
			prev = name
		}
		fmt.Fprintf(w, "%-12s %-24s %10d %14s %14s\n",
			name, r.Phase, r.Count,
			r.Total.Round(time.Microsecond).String(), formatBytes(r.Bytes))
	}
}

// WriteSummaryTable is shorthand for WriteSummary(w, t.Summary()).
func (t *Tracer) WriteSummaryTable(w io.Writer) {
	WriteSummary(w, t.Summary())
}
