// Package trace is the workflow-wide observability layer: a low-overhead
// per-rank event recorder with export to Chrome trace_event JSON (loadable
// in Perfetto or chrome://tracing) and an aggregated per-task per-phase
// summary table reproducing the paper's time/volume breakdowns (§IV,
// Table II).
//
// The model mirrors the workflow structure: a Tracer owns the run; each
// rank (goroutine) of each task records into its own Track, so recording
// never contends across ranks. In the Chrome export, tasks appear as
// processes and ranks as threads. A nil *Track (or nil *Tracer) is a valid
// no-op recorder, so instrumented code costs almost nothing when tracing is
// disabled — call sites guard argument construction behind a nil check.
//
// Spans are recorded at their end: the caller captures a start time with
// Track.Begin (zero cost on a nil track) and commits the event with
// Track.End, so an abandoned span never leaves a half-open event.
package trace

import (
	"sync"
	"time"
)

// Tracer owns one run's recording: the time origin and the set of tracks.
type Tracer struct {
	start time.Time

	mu     sync.Mutex
	tracks []*Track
}

// New creates a tracer whose time origin is now.
func New() *Tracer {
	return &Tracer{start: time.Now()}
}

// NewTrack registers a recording track. process/pid identify the task
// ("process" in Chrome terms) and thread/tid the rank within it. Safe for
// concurrent use.
func (t *Tracer) NewTrack(process string, pid int, thread string, tid int) *Track {
	k := &Track{tracer: t, process: process, pid: pid, thread: thread, tid: tid}
	t.mu.Lock()
	t.tracks = append(t.tracks, k)
	t.mu.Unlock()
	return k
}

// Tracks returns a snapshot of the registered tracks.
func (t *Tracer) Tracks() []*Track {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Track(nil), t.tracks...)
}

// Start returns the tracer's time origin.
func (t *Tracer) Start() time.Time { return t.start }

// Arg is one key/value annotation on an event. Values are either strings
// or int64s — the two shapes the exporters know how to render.
type Arg struct {
	Key   string
	Str   string
	Int   int64
	IsStr bool
}

// I64 builds an integer argument.
func I64(key string, v int64) Arg { return Arg{Key: key, Int: v} }

// Str builds a string argument.
func Str(key, v string) Arg { return Arg{Key: key, Str: v, IsStr: true} }

// Event kinds, matching the Chrome trace_event phases they export as.
const (
	KindSpan    byte = 'X' // complete span: Start + Dur
	KindInstant byte = 'i' // point event
	KindCounter byte = 'C' // sampled counter value
)

// Event is one recorded item. Times are offsets from the tracer origin.
type Event struct {
	Cat   string
	Name  string
	Start time.Duration
	Dur   time.Duration
	Kind  byte
	Value int64 // counter value for KindCounter
	Args  []Arg
}

// Track is one rank's append-only event buffer. All methods are safe on a
// nil receiver (no-ops), and a track's internal lock is only ever contended
// by helper goroutines of the same rank (e.g. an async serve loop) — never
// across ranks, which each own a separate track.
type Track struct {
	tracer  *Tracer
	process string
	thread  string
	pid     int
	tid     int

	mu     sync.Mutex
	events []Event
}

// Process returns the task ("process") name the track belongs to.
func (k *Track) Process() string {
	if k == nil {
		return ""
	}
	return k.process
}

// Thread returns the rank ("thread") name of the track.
func (k *Track) Thread() string {
	if k == nil {
		return ""
	}
	return k.thread
}

// Begin captures a span start. On a nil track it returns the zero Time
// without reading the clock.
func (k *Track) Begin() time.Time {
	if k == nil {
		return time.Time{}
	}
	return time.Now()
}

// End records a span that began at start (from Begin) under the given
// category and name. No-op on a nil track. Callers that build args should
// guard the call behind a nil check to avoid constructing them needlessly.
func (k *Track) End(start time.Time, cat, name string, args ...Arg) {
	if k == nil {
		return
	}
	now := time.Now()
	k.append(Event{
		Cat:   cat,
		Name:  name,
		Start: start.Sub(k.tracer.start),
		Dur:   now.Sub(start),
		Kind:  KindSpan,
		Args:  args,
	})
}

// Span records a complete span with explicit endpoints, for callers that
// measured the interval themselves.
func (k *Track) Span(cat, name string, start, end time.Time, args ...Arg) {
	if k == nil {
		return
	}
	k.append(Event{
		Cat:   cat,
		Name:  name,
		Start: start.Sub(k.tracer.start),
		Dur:   end.Sub(start),
		Kind:  KindSpan,
		Args:  args,
	})
}

// Instant records a point event.
func (k *Track) Instant(cat, name string, args ...Arg) {
	if k == nil {
		return
	}
	k.append(Event{
		Cat:   cat,
		Name:  name,
		Start: time.Since(k.tracer.start),
		Kind:  KindInstant,
		Args:  args,
	})
}

// Counter records a sampled counter value (rendered as a counter chart in
// Perfetto).
func (k *Track) Counter(cat, name string, value int64) {
	if k == nil {
		return
	}
	k.append(Event{
		Cat:   cat,
		Name:  name,
		Start: time.Since(k.tracer.start),
		Kind:  KindCounter,
		Value: value,
	})
}

func (k *Track) append(ev Event) {
	k.mu.Lock()
	k.events = append(k.events, ev)
	k.mu.Unlock()
}

// Events returns a snapshot of the recorded events.
func (k *Track) Events() []Event {
	if k == nil {
		return nil
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	return append([]Event(nil), k.events...)
}
