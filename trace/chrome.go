package trace

import (
	"encoding/json"
	"io"
	"sort"
)

// Chrome trace_event export. The produced JSON loads in Perfetto
// (ui.perfetto.dev) and chrome://tracing: each task is a process, each rank
// a thread, spans are "X" complete events with microsecond timestamps.

type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func argsMap(args []Arg) map[string]any {
	if len(args) == 0 {
		return nil
	}
	m := make(map[string]any, len(args))
	for _, a := range args {
		if a.IsStr {
			m[a.Key] = a.Str
		} else {
			m[a.Key] = a.Int
		}
	}
	return m
}

// WriteChrome writes the whole recording as Chrome trace_event JSON. It is
// safe to call while tracks are still recording (each track is snapshotted
// under its lock), but a stable file is only guaranteed once the workflow
// has completed.
func (t *Tracer) WriteChrome(w io.Writer) error {
	tracks := t.Tracks()
	// Stable output: order tracks by (pid, tid).
	sort.SliceStable(tracks, func(i, j int) bool {
		if tracks[i].pid != tracks[j].pid {
			return tracks[i].pid < tracks[j].pid
		}
		return tracks[i].tid < tracks[j].tid
	})
	var out chromeTrace
	out.DisplayTimeUnit = "ms"
	seenProc := map[int]bool{}
	for _, k := range tracks {
		if !seenProc[k.pid] {
			seenProc[k.pid] = true
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "process_name", Phase: "M", PID: k.pid, TID: 0,
				Args: map[string]any{"name": k.process},
			})
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Phase: "M", PID: k.pid, TID: k.tid,
			Args: map[string]any{"name": k.thread},
		})
		for _, ev := range k.Events() {
			ce := chromeEvent{
				Name:  ev.Name,
				Cat:   ev.Cat,
				Phase: string(ev.Kind),
				TS:    float64(ev.Start.Nanoseconds()) / 1e3,
				PID:   k.pid,
				TID:   k.tid,
				Args:  argsMap(ev.Args),
			}
			switch ev.Kind {
			case KindSpan:
				dur := float64(ev.Dur.Nanoseconds()) / 1e3
				ce.Dur = &dur
			case KindInstant:
				ce.Scope = "t" // thread-scoped instant
			case KindCounter:
				ce.Args = map[string]any{ev.Name: ev.Value}
			}
			out.TraceEvents = append(out.TraceEvents, ce)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}
