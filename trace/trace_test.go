package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTrackIsNoOp(t *testing.T) {
	var k *Track
	// Every method must be callable on a nil track without panicking, and
	// Begin must not read the clock.
	if t0 := k.Begin(); !t0.IsZero() {
		t.Errorf("nil Begin returned non-zero time %v", t0)
	}
	k.End(time.Now(), "cat", "name", I64("bytes", 1))
	k.Span("cat", "name", time.Now(), time.Now())
	k.Instant("cat", "name")
	k.Counter("cat", "name", 7)
	if evs := k.Events(); evs != nil {
		t.Errorf("nil Events returned %v", evs)
	}
	if k.Process() != "" || k.Thread() != "" {
		t.Error("nil track has non-empty labels")
	}
}

func TestSpanRecording(t *testing.T) {
	tr := New()
	k := tr.NewTrack("producer", 1, "rank 0", 0)
	t0 := k.Begin()
	time.Sleep(time.Millisecond)
	k.End(t0, "mpi", "send", I64("bytes", 128), Str("why", "test"))
	k.Counter("mpi", "inflight", 3)
	k.Instant("mpi", "wake")

	evs := k.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	sp := evs[0]
	if sp.Kind != KindSpan || sp.Cat != "mpi" || sp.Name != "send" {
		t.Errorf("span event mismatch: %+v", sp)
	}
	if sp.Dur <= 0 {
		t.Errorf("span duration %v not positive", sp.Dur)
	}
	if len(sp.Args) != 2 || sp.Args[0].Int != 128 || sp.Args[1].Str != "test" {
		t.Errorf("span args mismatch: %+v", sp.Args)
	}
	if evs[1].Kind != KindCounter || evs[1].Value != 3 {
		t.Errorf("counter event mismatch: %+v", evs[1])
	}
	if evs[2].Kind != KindInstant {
		t.Errorf("instant event mismatch: %+v", evs[2])
	}
}

func TestChromeJSONWellFormed(t *testing.T) {
	tr := New()
	for pid := 1; pid <= 2; pid++ {
		for tid := 0; tid < 2; tid++ {
			k := tr.NewTrack(fmt.Sprintf("task%d", pid), pid, fmt.Sprintf("rank %d", tid), tid)
			t0 := k.Begin()
			k.End(t0, "mpi", "send", I64("bytes", 64))
			k.Counter("mpi", "queued", int64(tid))
			k.Instant("core", "mark")
		}
	}

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	var meta, spans, counters, instants int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
			if e.Name != "process_name" && e.Name != "thread_name" {
				t.Errorf("unexpected metadata event %q", e.Name)
			}
		case "X":
			spans++
			if e.Dur < 0 || e.Ts < 0 {
				t.Errorf("span with negative ts/dur: %+v", e)
			}
			if e.Args["bytes"] != float64(64) {
				t.Errorf("span args lost: %+v", e.Args)
			}
		case "C":
			counters++
			if _, ok := e.Args["queued"]; !ok {
				t.Errorf("counter args lost: %+v", e.Args)
			}
		case "i":
			instants++
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	// 2 process_name + 4 thread_name metadata records, then 4 of each kind.
	if meta != 6 || spans != 4 || counters != 4 || instants != 4 {
		t.Errorf("event counts meta=%d spans=%d counters=%d instants=%d", meta, spans, counters, instants)
	}
}

func TestSummaryAggregates(t *testing.T) {
	tr := New()
	base := time.Now()
	for tid := 0; tid < 3; tid++ {
		k := tr.NewTrack("producer", 1, fmt.Sprintf("rank %d", tid), tid)
		k.Span("mpi", "send", base, base.Add(10*time.Millisecond), I64("bytes", 100))
		k.Span("core", "index", base, base.Add(5*time.Millisecond))
	}
	c := tr.NewTrack("consumer", 2, "rank 0", 10)
	c.Span("mpi", "recv", base, base.Add(20*time.Millisecond), I64("bytes", 300))

	rows := tr.Summary()
	byKey := map[string]SummaryRow{}
	for _, r := range rows {
		byKey[r.Process+"|"+r.Phase] = r
	}
	send := byKey["producer|mpi/send"]
	if send.Count != 3 || send.Total != 30*time.Millisecond || send.Bytes != 300 {
		t.Errorf("producer mpi/send row wrong: %+v", send)
	}
	idx := byKey["producer|core/index"]
	if idx.Count != 3 || idx.Total != 15*time.Millisecond || idx.Bytes != 0 {
		t.Errorf("producer core/index row wrong: %+v", idx)
	}
	recv := byKey["consumer|mpi/recv"]
	if recv.Count != 1 || recv.Bytes != 300 {
		t.Errorf("consumer mpi/recv row wrong: %+v", recv)
	}

	var buf bytes.Buffer
	WriteSummary(&buf, rows)
	out := buf.String()
	for _, want := range []string{"producer", "consumer", "mpi/send", "core/index"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary table missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	// One track per "rank", hammered concurrently — including helper
	// goroutines sharing a rank's track, as async serve loops do. Run under
	// -race this verifies the locking discipline.
	tr := New()
	const ranks, perRank, events = 8, 2, 200
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		k := tr.NewTrack("world", 0, fmt.Sprintf("rank %d", r), r)
		for g := 0; g < perRank; g++ {
			wg.Add(1)
			go func(k *Track) {
				defer wg.Done()
				for i := 0; i < events; i++ {
					t0 := k.Begin()
					k.End(t0, "mpi", "op", I64("bytes", int64(i)))
				}
			}(k)
		}
	}
	wg.Wait()
	total := 0
	for _, k := range tr.Tracks() {
		total += len(k.Events())
	}
	if total != ranks*perRank*events {
		t.Errorf("recorded %d events, want %d", total, ranks*perRank*events)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryQuantiles(t *testing.T) {
	tr := New()
	base := time.Now()
	k := tr.NewTrack("producer", 1, "rank 0", 0)
	// 100 spans of 1..100 ms. Nearest-rank over the sorted durations puts
	// p50 at index 50 (51 ms) and p99 at index 98 (99 ms), independent of
	// the recording order — so record them shuffled.
	order := make([]int, 100)
	for i := range order {
		order[i] = (i*37)%100 + 1 // a permutation of 1..100
	}
	for _, i := range order {
		k.Span("core", "serve", base, base.Add(time.Duration(i)*time.Millisecond))
	}
	c := tr.NewTrack("consumer", 2, "rank 0", 1)
	c.Span("core", "query", base, base.Add(7*time.Millisecond))

	rows := tr.Summary()
	byKey := map[string]SummaryRow{}
	for _, r := range rows {
		byKey[r.Process+"|"+r.Phase] = r
	}
	serve := byKey["producer|core/serve"]
	if serve.Count != 100 {
		t.Fatalf("core/serve count %d, want 100", serve.Count)
	}
	if serve.P50 != 51*time.Millisecond {
		t.Errorf("core/serve p50 = %v, want 51ms", serve.P50)
	}
	if serve.P99 != 99*time.Millisecond {
		t.Errorf("core/serve p99 = %v, want 99ms", serve.P99)
	}
	// A single span is its own median and tail.
	q := byKey["consumer|core/query"]
	if q.P50 != 7*time.Millisecond || q.P99 != 7*time.Millisecond {
		t.Errorf("core/query quantiles p50=%v p99=%v, want 7ms each", q.P50, q.P99)
	}

	var buf bytes.Buffer
	WriteSummary(&buf, rows)
	out := buf.String()
	for _, want := range []string{"p50", "p99", "51ms", "99ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary table missing %q:\n%s", want, out)
		}
	}
}
