// Package metrics is the always-on telemetry layer: typed Counter, Gauge
// and Histogram instruments held in a named Registry, recorded with atomic
// operations (no allocation, no locks on the hot path) so instrumented code
// can stay enabled during benchmarks and production sweeps.
//
// Instruments are named "layer.subsystem.name" (e.g. "rpc.client.call_us.
// data", "mpi.msg.bytes"); latency instruments record microseconds and
// carry a "_us" suffix. Every accessor is safe on a nil *Registry and every
// instrument method is safe on a nil receiver, so call sites thread one
// optional registry through without guards: when metrics are disabled the
// whole plane collapses to nil checks.
//
// Two consumption paths exist: Registry.Snapshot (JSON-marshalable, also
// rendered as Prometheus text by WritePrometheus) and the live DebugServer
// serving /metrics, /metrics.json, /stats and /slow over HTTP while a
// workflow runs. The FlightRecorder complements the aggregates with a
// bounded ring of structured records for individual slow queries.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value. All methods are safe on a
// nil receiver (no-ops), so disabled-metrics call sites need no guards.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. All methods are safe on a nil
// receiver.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a named set of instruments. Lookups are get-or-create and
// safe for concurrent use; the registry lock guards only the name tables,
// never a recording. A nil *Registry is valid: every accessor returns a nil
// instrument, which records as a no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() int64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		funcs:    map[string]func() int64{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// GaugeFunc registers a gauge sampled by calling fn at snapshot time, for
// values some other subsystem already tracks (pool high-water marks, queue
// depths). Re-registering a name replaces the previous function, so
// repeated wiring of the same component is idempotent.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// Snapshot is one instrument's state at snapshot time. Counter and gauge
// kinds carry Value; histograms carry Count/Sum/Mean and the interpolated
// quantiles.
type Snapshot struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"` // "counter", "gauge" or "histogram"
	Value int64   `json:"value,omitempty"`
	Count uint64  `json:"count,omitempty"`
	Sum   int64   `json:"sum,omitempty"`
	Mean  float64 `json:"mean,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P95   float64 `json:"p95,omitempty"`
	P99   float64 `json:"p99,omitempty"`
}

// Snapshot returns every instrument's state, sorted by name.
func (r *Registry) Snapshot() []Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	type namedHist struct {
		name string
		h    *Histogram
	}
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make([]namedHist, 0, len(r.hists))
	for k, v := range r.hists {
		hists = append(hists, namedHist{k, v})
	}
	funcs := make(map[string]func() int64, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	r.mu.Unlock()

	out := make([]Snapshot, 0, len(counters)+len(gauges)+len(hists)+len(funcs))
	for name, c := range counters {
		out = append(out, Snapshot{Name: name, Kind: "counter", Value: c.Value()})
	}
	for name, g := range gauges {
		out = append(out, Snapshot{Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, fn := range funcs {
		out = append(out, Snapshot{Name: name, Kind: "gauge", Value: fn()})
	}
	for _, nh := range hists {
		s := nh.h.Snapshot()
		out = append(out, Snapshot{
			Name: nh.name, Kind: "histogram",
			Count: s.Count, Sum: s.Sum, Mean: s.Mean(),
			P50: s.Quantile(0.50), P95: s.Quantile(0.95), P99: s.Quantile(0.99),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// promName maps an instrument name to the Prometheus charset: dots and any
// other non-alphanumeric runes become underscores.
func promName(name string) string {
	b := []byte(name)
	for i, c := range b {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			b[i] = '_'
		}
	}
	return string(b)
}

// WritePrometheus renders every instrument in the Prometheus text
// exposition format. Histograms are exported as summaries: quantile-labeled
// samples plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) {
	for _, s := range r.Snapshot() {
		name := promName(s.Name)
		switch s.Kind {
		case "counter":
			fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Value)
		case "gauge":
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, s.Value)
		case "histogram":
			fmt.Fprintf(w, "# TYPE %s summary\n", name)
			fmt.Fprintf(w, "%s{quantile=\"0.5\"} %g\n", name, s.P50)
			fmt.Fprintf(w, "%s{quantile=\"0.95\"} %g\n", name, s.P95)
			fmt.Fprintf(w, "%s{quantile=\"0.99\"} %g\n", name, s.P99)
			fmt.Fprintf(w, "%s_sum %d\n", name, s.Sum)
			fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
		}
	}
}

// WriteJSON renders the snapshot as an indented JSON array.
func (r *Registry) WriteJSON(w io.Writer) error {
	snaps := r.Snapshot()
	if snaps == nil {
		snaps = []Snapshot{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snaps)
}

// WriteTable renders the snapshot as an aligned text table, the shape
// lowfive-inspect prints for run artifacts.
func WriteTable(w io.Writer, snaps []Snapshot) {
	fmt.Fprintf(w, "%-36s %-10s %12s %12s %12s %12s %12s\n",
		"instrument", "kind", "value/count", "sum", "p50", "p95", "p99")
	for _, s := range snaps {
		switch s.Kind {
		case "histogram":
			fmt.Fprintf(w, "%-36s %-10s %12d %12d %12.0f %12.0f %12.0f\n",
				s.Name, s.Kind, s.Count, s.Sum, s.P50, s.P95, s.P99)
		default:
			fmt.Fprintf(w, "%-36s %-10s %12d %12s %12s %12s %12s\n",
				s.Name, s.Kind, s.Value, "-", "-", "-", "-")
		}
	}
}
