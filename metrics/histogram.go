package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
	"unsafe"
)

// Histogram buckets and striping. Bucket i counts values v with
// bits.Len64(v) == i, i.e. bucket 0 holds v <= 0 and bucket i (i >= 1)
// holds the range [2^(i-1), 2^i). 64 buckets cover all of int64, which for
// microsecond latencies spans sub-microsecond to ~292 millennia — log2
// resolution (worst-case 2x error) is the standard trade for a fixed-size,
// lock-free layout (HdrHistogram and Prometheus make the same one).
const (
	histBuckets = 64
	histStripes = 8 // must be a power of two
)

// histShard is one stripe of a histogram. The trailing pad keeps one
// shard's hot tail (sum) and the next shard's first buckets off a shared
// cache line.
type histShard struct {
	counts [histBuckets]atomic.Uint64
	sum    atomic.Int64
	_      [56]byte
}

// Histogram is a log2-bucketed distribution with per-goroutine striped
// recording: Record is two atomic adds on a stripe chosen from the calling
// goroutine's stack address, so concurrent ranks rarely contend and never
// allocate. All methods are safe on a nil receiver.
type Histogram struct {
	shards [histStripes]histShard
}

// stripe picks a shard for the calling goroutine. Goroutine stacks are
// distinct allocations, so the address of a local variable is a free
// per-goroutine discriminator — no runtime calls, no allocation.
func stripe() int {
	var b byte
	return int(uintptr(unsafe.Pointer(&b))>>10) & (histStripes - 1)
}

// bucketOf maps a value to its bucket index. Negative values clamp to
// bucket 0 rather than aliasing the top bucket.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// bucketBounds returns the inclusive value range bucket i covers.
func bucketBounds(i int) (lo, hi int64) {
	switch {
	case i == 0:
		return 0, 0
	case i >= histBuckets-1:
		return 1 << (histBuckets - 2), math.MaxInt64
	default:
		return 1 << (i - 1), 1<<i - 1
	}
}

// Record adds one observation. It is allocation-free and safe for
// concurrent use from any number of goroutines.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	s := &h.shards[stripe()]
	s.counts[bucketOf(v)].Add(1)
	if v > 0 {
		s.sum.Add(v)
	}
}

// Observe records an elapsed duration in microseconds — the unit every
// "_us" latency instrument uses.
func (h *Histogram) Observe(d time.Duration) { h.Record(d.Microseconds()) }

// ObserveSince records the microseconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start)) }

// HistogramSnapshot is a merged, point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   uint64
	Sum     int64
	Buckets [histBuckets]uint64
}

// Snapshot merges the stripes into one distribution. Concurrent recordings
// may land in either the snapshot or the live histogram; each observation
// is counted exactly once over consecutive snapshots of a quiesced
// histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	for i := range h.shards {
		sh := &h.shards[i]
		for b := range sh.counts {
			n := sh.counts[b].Load()
			s.Buckets[b] += n
			s.Count += n
		}
		s.Sum += sh.sum.Load()
	}
	return s
}

// Mean returns the average observation, or 0 for an empty histogram.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by locating the bucket
// holding the target rank and interpolating linearly inside it. The
// estimate is exact at bucket boundaries and within a factor of two
// everywhere else.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count-1) // 0-based fractional rank
	var cum uint64
	for b := 0; b < histBuckets; b++ {
		n := s.Buckets[b]
		if n == 0 {
			continue
		}
		if rank < float64(cum+n) {
			lo, hi := bucketBounds(b)
			if n == 1 || lo == hi {
				return float64(lo)
			}
			frac := (rank - float64(cum)) / float64(n-1)
			return float64(lo) + frac*float64(hi-lo)
		}
		cum += n
	}
	lo, _ := bucketBounds(histBuckets - 1)
	return float64(lo)
}
