package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrent races get-or-create registration against parallel
// recording on shared instruments; run under -race it proves the registry
// lock and the atomic instruments compose safely.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Shared names exercise get-or-create races; per-goroutine
				// names exercise concurrent map growth.
				r.Counter("shared.counter").Inc()
				r.Histogram("shared.hist").Record(int64(i + 1))
				r.Gauge("shared.gauge").Set(int64(i))
				r.Counter(fmt.Sprintf("own.counter.%d", g)).Inc()
				if i == 0 {
					r.GaugeFunc(fmt.Sprintf("own.func.%d", g), func() int64 { return int64(g) })
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared.counter").Value(); got != goroutines*perG {
		t.Fatalf("shared.counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Histogram("shared.hist").Snapshot().Count; got != goroutines*perG {
		t.Fatalf("shared.hist count = %d, want %d", got, goroutines*perG)
	}
	if got := r.Counter("own.counter.3").Value(); got != perG {
		t.Fatalf("own.counter.3 = %d, want %d", got, perG)
	}
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	r.Counter("a").Add(1)
	r.Gauge("b").Set(2)
	r.Histogram("c").Record(3)
	r.GaugeFunc("d", func() int64 { return 4 })
	if snaps := r.Snapshot(); snaps != nil {
		t.Fatalf("nil registry snapshot = %v, want nil", snaps)
	}
}

func TestSnapshotAndPrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("rpc.client.hedge_wins").Add(3)
	r.Gauge("buf.pool.outstanding").Set(7)
	r.GaugeFunc("buf.pool.highwater", func() int64 { return 11 })
	h := r.Histogram("core.query.latency_us")
	for i := int64(1); i <= 100; i++ {
		h.Record(i * 10)
	}

	snaps := r.Snapshot()
	byName := map[string]Snapshot{}
	for _, s := range snaps {
		byName[s.Name] = s
	}
	if s := byName["rpc.client.hedge_wins"]; s.Kind != "counter" || s.Value != 3 {
		t.Fatalf("counter snapshot wrong: %+v", s)
	}
	if s := byName["buf.pool.highwater"]; s.Kind != "gauge" || s.Value != 11 {
		t.Fatalf("gauge-func snapshot wrong: %+v", s)
	}
	hs := byName["core.query.latency_us"]
	if hs.Kind != "histogram" || hs.Count != 100 || hs.Sum != 50500 {
		t.Fatalf("histogram snapshot wrong: %+v", hs)
	}
	if !(hs.P50 <= hs.P95 && hs.P95 <= hs.P99) {
		t.Fatalf("quantiles not monotonic: %+v", hs)
	}
	// Sorted by name.
	for i := 1; i < len(snaps); i++ {
		if snaps[i-1].Name > snaps[i].Name {
			t.Fatalf("snapshot not sorted: %q before %q", snaps[i-1].Name, snaps[i].Name)
		}
	}

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	text := buf.String()
	for _, want := range []string{
		"# TYPE rpc_client_hedge_wins counter\nrpc_client_hedge_wins 3\n",
		"# TYPE buf_pool_outstanding gauge\nbuf_pool_outstanding 7\n",
		"# TYPE core_query_latency_us summary\n",
		`core_query_latency_us{quantile="0.5"}`,
		"core_query_latency_us_sum 50500\n",
		"core_query_latency_us_count 100\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus text missing %q:\n%s", want, text)
		}
	}

	buf.Reset()
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []Snapshot
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	if len(decoded) != len(snaps) {
		t.Fatalf("JSON has %d instruments, want %d", len(decoded), len(snaps))
	}
}

func TestFlightRecorder(t *testing.T) {
	f := NewFlightRecorder(4, 10*time.Millisecond)
	if f.Slow(5 * time.Millisecond) {
		t.Fatal("5ms should not be slow at a 10ms threshold")
	}
	if !f.Slow(10 * time.Millisecond) {
		t.Fatal("10ms should be slow at a 10ms threshold")
	}
	for i := 0; i < 6; i++ {
		f.Record(SlowQuery{
			Dataset:  fmt.Sprintf("d%d", i),
			Duration: time.Duration(i+10) * time.Millisecond,
			Phases:   []Phase{{Name: "boxes", Duration: time.Millisecond}},
		})
	}
	recs := f.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("ring kept %d records, want 4", len(recs))
	}
	if recs[0].Dataset != "d2" || recs[3].Dataset != "d5" {
		t.Fatalf("ring order wrong: first=%s last=%s", recs[0].Dataset, recs[3].Dataset)
	}
	if f.Total() != 6 {
		t.Fatalf("Total = %d, want 6", f.Total())
	}
	var buf bytes.Buffer
	f.WriteText(&buf)
	if !strings.Contains(buf.String(), "boxes=") {
		t.Fatalf("text dump missing phase breakdown:\n%s", buf.String())
	}

	var nilF *FlightRecorder
	nilF.Record(SlowQuery{})
	if nilF.Slow(time.Hour) || nilF.Snapshot() != nil || nilF.Total() != 0 {
		t.Fatal("nil flight recorder not inert")
	}
}

func TestDebugServer(t *testing.T) {
	r := NewRegistry()
	r.Counter("mpi.sends").Add(42)
	r.Histogram("core.query.latency_us").Record(1500)
	f := NewFlightRecorder(8, time.Millisecond)
	f.Record(SlowQuery{Dataset: "grid", Duration: 2 * time.Millisecond})

	srv := NewDebugServer(r, f)
	srv.SetStatus("exchange", func() any { return map[string]int{"queries": 9} })
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}

	if body := get("/metrics"); !strings.Contains(body, "mpi_sends 42") ||
		!strings.Contains(body, "core_query_latency_us_count 1") {
		t.Fatalf("/metrics missing instruments:\n%s", body)
	}
	var snaps []Snapshot
	if err := json.Unmarshal([]byte(get("/metrics.json")), &snaps); err != nil {
		t.Fatalf("/metrics.json does not parse: %v", err)
	}
	var stats map[string]any
	if err := json.Unmarshal([]byte(get("/stats")), &stats); err != nil {
		t.Fatalf("/stats does not parse: %v", err)
	}
	if _, ok := stats["exchange"]; !ok {
		t.Fatalf("/stats missing registered status: %v", stats)
	}
	var slow []SlowQuery
	if err := json.Unmarshal([]byte(get("/slow")), &slow); err != nil {
		t.Fatalf("/slow does not parse: %v", err)
	}
	if len(slow) != 1 || slow[0].Dataset != "grid" {
		t.Fatalf("/slow wrong records: %+v", slow)
	}
}
