package metrics

import (
	"math"
	"testing"
	"time"
)

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{1023, 10}, {1024, 11},
		{math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every bucket's bounds must tile the non-negative int64 range: the
	// low bound of bucket i+1 follows the high bound of bucket i.
	for i := 0; i < histBuckets-1; i++ {
		_, hi := bucketBounds(i)
		lo, _ := bucketBounds(i + 1)
		if lo != hi+1 {
			t.Fatalf("bucket %d..%d bounds do not tile: hi=%d next lo=%d", i, i+1, hi, lo)
		}
		if bucketOf(hi) != i || bucketOf(lo) != i+1 {
			t.Fatalf("bounds of bucket %d disagree with bucketOf", i)
		}
	}
	if _, hi := bucketBounds(histBuckets - 1); hi != math.MaxInt64 {
		t.Fatalf("top bucket hi = %d, want MaxInt64", hi)
	}
}

func TestHistogramCountSum(t *testing.T) {
	h := &Histogram{}
	var sum int64
	for v := int64(1); v <= 1000; v++ {
		h.Record(v)
		sum += v
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("Count = %d, want 1000", s.Count)
	}
	if s.Sum != sum {
		t.Fatalf("Sum = %d, want %d", s.Sum, sum)
	}
	if got, want := s.Mean(), float64(sum)/1000; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Mean = %g, want %g", got, want)
	}
}

func TestQuantileAccuracy(t *testing.T) {
	h := &Histogram{}
	for v := int64(1); v <= 1000; v++ {
		h.Record(v)
	}
	s := h.Snapshot()
	// Log buckets guarantee estimates within a factor of two of the true
	// quantile; interpolation usually does much better. Assert the 2x
	// envelope plus monotonicity.
	for _, c := range []struct {
		q    float64
		true float64
	}{{0.50, 500}, {0.95, 950}, {0.99, 990}} {
		got := s.Quantile(c.q)
		if got < c.true/2 || got > c.true*2 {
			t.Errorf("Quantile(%g) = %g, want within 2x of %g", c.q, got, c.true)
		}
	}
	p50, p95, p99 := s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("quantiles not monotonic: p50=%g p95=%g p99=%g", p50, p95, p99)
	}
	if min, max := s.Quantile(0), s.Quantile(1); min > max {
		t.Fatalf("Quantile(0)=%g > Quantile(1)=%g", min, max)
	}
}

func TestQuantileExactAtSingleValue(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 100; i++ {
		h.Record(64) // exactly one bucket boundary value
	}
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := s.Quantile(q)
		lo, hi := bucketBounds(bucketOf(64))
		if got < float64(lo) || got > float64(hi) {
			t.Fatalf("Quantile(%g) = %g outside bucket [%d,%d]", q, got, lo, hi)
		}
	}
}

func TestHistogramNilAndEmpty(t *testing.T) {
	var h *Histogram
	h.Record(5) // must not panic
	h.Observe(time.Millisecond)
	s := h.Snapshot()
	if s.Count != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatalf("nil histogram snapshot not empty: %+v", s)
	}
}

func TestHistogramAllocFree(t *testing.T) {
	h := &Histogram{}
	allocs := testing.AllocsPerRun(1000, func() { h.Record(1234) })
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f times per call, want 0", allocs)
	}
}
