package metrics

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Phase is one timed stage of a slow query's per-phase breakdown (e.g. the
// box-intersection round versus the data stream drain).
type Phase struct {
	Name     string        `json:"name"`
	Duration time.Duration `json:"duration_ns"`
}

// SlowQuery is one structured flight-recorder entry: everything an
// operator needs to see why a particular consumer query crossed the
// threshold, without replaying the run under a tracer.
type SlowQuery struct {
	Time      time.Time     `json:"time"`
	Epoch     int64         `json:"epoch,omitempty"`
	File      string        `json:"file,omitempty"`
	Dataset   string        `json:"dataset,omitempty"`
	Box       string        `json:"box,omitempty"`
	Producers []int         `json:"producers,omitempty"`
	Attempts  int64         `json:"attempts,omitempty"`
	Hedged    bool          `json:"hedged,omitempty"`
	Bytes     int64         `json:"bytes,omitempty"`
	Chunks    int64         `json:"chunks,omitempty"`
	Duration  time.Duration `json:"duration_ns"`
	// Reason classifies why the query was recorded: empty or "slow" for a
	// threshold crossing, "retries-exhausted" when the retry budget ran
	// dry, "file-fallback"/"stage-truncated"/"stage-wait-exhausted" when
	// the query degraded to the container file, "shed" when a saturated
	// producer refused it under admission control, "breaker-open" when the
	// consumer's circuit breaker fast-failed it, and "shed-<reason>" on the
	// producer side for each refused request — recorded regardless of
	// duration, so a sweep failure shows the failing query even when the
	// failure itself was fast.
	Reason string  `json:"reason,omitempty"`
	Phases []Phase `json:"phases,omitempty"`
}

// FlightRecorder keeps the most recent slow queries in a bounded ring.
// Recording takes a short mutex — fine for a path that by definition just
// spent tens of milliseconds elsewhere. All methods are safe on a nil
// receiver, so instrumented code threads an optional recorder unguarded.
type FlightRecorder struct {
	threshold time.Duration

	mu    sync.Mutex
	ring  []SlowQuery
	next  int
	n     int
	total uint64
}

// NewFlightRecorder creates a recorder keeping the last capacity records of
// queries at least threshold slow. capacity <= 0 defaults to 256.
func NewFlightRecorder(capacity int, threshold time.Duration) *FlightRecorder {
	if capacity <= 0 {
		capacity = 256
	}
	return &FlightRecorder{threshold: threshold, ring: make([]SlowQuery, capacity)}
}

// Threshold returns the slow-query threshold (0 on a nil recorder).
func (f *FlightRecorder) Threshold() time.Duration {
	if f == nil {
		return 0
	}
	return f.threshold
}

// Slow reports whether a duration crosses the threshold. It is the guard
// call sites use before building a record, and is false on a nil recorder
// so disabled paths skip the record construction entirely.
func (f *FlightRecorder) Slow(d time.Duration) bool {
	return f != nil && d >= f.threshold
}

// Record stores one entry, evicting the oldest when the ring is full.
func (f *FlightRecorder) Record(q SlowQuery) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.ring[f.next] = q
	f.next = (f.next + 1) % len(f.ring)
	if f.n < len(f.ring) {
		f.n++
	}
	f.total++
	f.mu.Unlock()
}

// Total returns how many slow queries were ever recorded, including entries
// the ring has since evicted.
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Snapshot returns the retained records, oldest first.
func (f *FlightRecorder) Snapshot() []SlowQuery {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]SlowQuery, 0, f.n)
	start := f.next - f.n
	if start < 0 {
		start += len(f.ring)
	}
	for i := 0; i < f.n; i++ {
		out = append(out, f.ring[(start+i)%len(f.ring)])
	}
	return out
}

// WriteText dumps the retained records as a readable table, one line per
// query with its per-phase breakdown — the on-failure dump format.
func (f *FlightRecorder) WriteText(w io.Writer) {
	recs := f.Snapshot()
	if len(recs) == 0 {
		fmt.Fprintf(w, "flight recorder: no queries over %s recorded\n", f.Threshold())
		return
	}
	fmt.Fprintf(w, "flight recorder: %d slow queries retained (threshold %s, %d total)\n",
		len(recs), f.Threshold(), f.Total())
	for _, q := range recs {
		fmt.Fprintf(w, "  %s %s/%s box=%s producers=%v dur=%s bytes=%d chunks=%d attempts=%d hedged=%v",
			q.Time.Format("15:04:05.000"), q.File, q.Dataset, q.Box, q.Producers,
			q.Duration.Round(time.Microsecond), q.Bytes, q.Chunks, q.Attempts, q.Hedged)
		if q.Epoch != 0 {
			fmt.Fprintf(w, " epoch=%d", q.Epoch)
		}
		if q.Reason != "" {
			fmt.Fprintf(w, " reason=%s", q.Reason)
		}
		for _, p := range q.Phases {
			fmt.Fprintf(w, " %s=%s", p.Name, p.Duration.Round(time.Microsecond))
		}
		fmt.Fprintln(w)
	}
}
