package metrics

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
)

// DebugServer serves live introspection over HTTP while a workflow runs:
//
//	/metrics       Prometheus text exposition of the registry
//	/metrics.json  the same snapshot as JSON
//	/stats         registered status callbacks (e.g. the harness's live
//	               ServeStats/QueryStats) plus flight-recorder totals
//	/slow          the flight recorder's retained slow queries as JSON
//
// Start accepts ":0" and returns the bound address, so tests and benches
// can run without a fixed port.
type DebugServer struct {
	reg    *Registry
	flight *FlightRecorder

	mu       sync.Mutex
	statuses map[string]func() any

	srv *http.Server
	ln  net.Listener
}

// NewDebugServer wraps a registry and an optional flight recorder.
func NewDebugServer(reg *Registry, flight *FlightRecorder) *DebugServer {
	return &DebugServer{reg: reg, flight: flight, statuses: map[string]func() any{}}
}

// SetStatus registers a named callback whose result is embedded in /stats
// responses. Re-registering a name replaces the callback.
func (s *DebugServer) SetStatus(name string, fn func() any) {
	s.mu.Lock()
	s.statuses[name] = fn
	s.mu.Unlock()
}

// Handler returns the debug mux, for embedding in an existing server.
func (s *DebugServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "lowfive metrics debug server")
		fmt.Fprintln(w, "  /metrics       Prometheus text format")
		fmt.Fprintln(w, "  /metrics.json  snapshot as JSON")
		fmt.Fprintln(w, "  /stats         live workflow stats")
		fmt.Fprintln(w, "  /slow          slow-query flight records")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s.reg.WriteJSON(w)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		out := make(map[string]any, len(s.statuses)+1)
		fns := make(map[string]func() any, len(s.statuses))
		for k, fn := range s.statuses {
			fns[k] = fn
		}
		s.mu.Unlock()
		for k, fn := range fns {
			out[k] = fn()
		}
		out["slow_queries_total"] = s.flight.Total()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		recs := s.flight.Snapshot()
		if recs == nil {
			recs = []SlowQuery{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(recs)
	})
	return mux
}

// Start listens on addr (":0" for an ephemeral port) and serves in the
// background. It returns the bound address.
func (s *DebugServer) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	go s.srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops the server started by Start. Safe to call when never started.
func (s *DebugServer) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}
