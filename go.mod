module lowfive

go 1.22
