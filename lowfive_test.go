package lowfive_test

import (
	"fmt"
	"testing"

	"lowfive"
	"lowfive/h5"
	"lowfive/mpi"
)

// TestPublicFacadeMemoryWorkflow exercises the library exactly as the
// README shows it: only public packages, a producer/consumer pair, in situ.
func TestPublicFacadeMemoryWorkflow(t *testing.T) {
	const rows, cols = 8, 6
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "producer", Procs: 2, Main: func(p *mpi.Proc) {
			vol := lowfive.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*.h5", p.Intercomm("consumer"))
			fapl := h5.NewFileAccessProps(vol)
			f, err := h5.CreateFile("pub.h5", fapl)
			if err != nil {
				t.Error(err)
				return
			}
			ds, err := f.CreateDataset("grid", h5.U64, h5.NewSimple(rows, cols))
			if err != nil {
				t.Error(err)
				return
			}
			n, r := int64(p.Task.Size()), int64(p.Task.Rank())
			r0, r1 := r*rows/n, (r+1)*rows/n
			sel := h5.NewSimple(rows, cols)
			sel.SelectHyperslab(h5.SelectSet, []int64{r0, 0}, []int64{r1 - r0, cols})
			vals := make([]uint64, (r1-r0)*cols)
			for i := range vals {
				vals[i] = uint64(r0*cols + int64(i))
			}
			if err := ds.Write(nil, sel, h5.Bytes(vals)); err != nil {
				t.Error(err)
			}
			if err := f.Close(); err != nil {
				t.Error(err)
			}
		}},
		{Name: "consumer", Procs: 3, Main: func(p *mpi.Proc) {
			vol := lowfive.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*.h5", p.Intercomm("producer"))
			fapl := h5.NewFileAccessProps(vol)
			f, err := h5.OpenFile("pub.h5", fapl)
			if err != nil {
				t.Error(err)
				return
			}
			ds, err := f.OpenDataset("grid")
			if err != nil {
				t.Error(err)
				f.Close()
				return
			}
			m, r := int64(p.Task.Size()), int64(p.Task.Rank())
			c0, c1 := r*cols/m, (r+1)*cols/m
			if c1 > c0 {
				sel := h5.NewSimple(rows, cols)
				sel.SelectHyperslab(h5.SelectSet, []int64{0, c0}, []int64{rows, c1 - c0})
				vals := make([]uint64, sel.NumSelected())
				if err := ds.Read(nil, sel, h5.Bytes(vals)); err != nil {
					t.Error(err)
				}
				for i, v := range vals {
					row := int64(i) / (c1 - c0)
					col := c0 + int64(i)%(c1-c0)
					if v != uint64(row*cols+col) {
						t.Errorf("(%d,%d)=%d", row, col, v)
						break
					}
				}
			}
			if err := f.Close(); err != nil {
				t.Error(err)
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPublicFacadeFileMode writes through the metadata VOL with passthru to
// the simulated parallel file system and reads back via the base VOL.
func TestPublicFacadeFileMode(t *testing.T) {
	fs := lowfive.NewZeroCostFS()
	err := mpi.Run(2, func(c *mpi.Comm) {
		vol := lowfive.NewMetadataVOL(lowfive.NewBaseVOL(fs))
		vol.SetPassthru("*", true)
		fapl := h5.NewFileAccessProps(vol)
		f, err := h5.CreateFile("ckpt.h5", fapl)
		if err != nil {
			t.Error(err)
			return
		}
		ds, err := f.CreateDataset("x", h5.F64, h5.NewSimple(4))
		if err != nil {
			t.Error(err)
			return
		}
		sel := h5.NewSimple(4)
		sel.SelectHyperslab(h5.SelectSet, []int64{int64(c.Rank()) * 2}, []int64{2})
		vals := []float64{float64(c.Rank()*2) + 0.5, float64(c.Rank()*2) + 1.5}
		if err := ds.Write(nil, sel, h5.Bytes(vals)); err != nil {
			t.Error(err)
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
		c.Barrier()
		// Read the whole dataset straight from "disk".
		bf, err := h5.OpenFile("ckpt.h5", h5.NewFileAccessProps(lowfive.NewBaseVOL(fs)))
		if err != nil {
			t.Error(err)
			return
		}
		bds, err := bf.OpenDataset("x")
		if err != nil {
			t.Error(err)
			return
		}
		out := make([]float64, 4)
		if err := bds.Read(nil, nil, h5.Bytes(out)); err != nil {
			t.Error(err)
		}
		for i, v := range out {
			if v != float64(i)+0.5 {
				t.Errorf("out[%d]=%v", i, v)
			}
		}
		if err := bf.Close(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestOwnershipConstants confirms the re-exported ownership values match.
func TestOwnershipConstants(t *testing.T) {
	if lowfive.OwnDeep == lowfive.OwnShallow {
		t.Fatal("ownership constants must differ")
	}
	var o lowfive.Ownership = lowfive.OwnDeep
	_ = o
}

// TestFacadeConstructors sanity-checks every public constructor.
func TestFacadeConstructors(t *testing.T) {
	fs := lowfive.NewFS(lowfive.DefaultFSOptions())
	if fs == nil {
		t.Fatal("NewFS returned nil")
	}
	if lowfive.NewBaseVOL(fs).ConnectorName() == "" {
		t.Error("base VOL must have a name")
	}
	if lowfive.NewOSBaseVOL(t.TempDir()).ConnectorName() == "" {
		t.Error("OS base VOL must have a name")
	}
	if lowfive.NewMetadataVOL(nil).ConnectorName() == "" {
		t.Error("metadata VOL must have a name")
	}
	err := mpi.Run(1, func(c *mpi.Comm) {
		v := lowfive.NewDistMetadataVOL(c, nil)
		if v.ConnectorName() == "" {
			t.Error("dist VOL must have a name")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMultiStepPipelinedWorkflow runs several timesteps through one
// long-lived VOL per task, the pattern a real coupled code uses.
func TestMultiStepPipelinedWorkflow(t *testing.T) {
	const steps = 3
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "sim", Procs: 3, Main: func(p *mpi.Proc) {
			vol := lowfive.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("ana"))
			fapl := h5.NewFileAccessProps(vol)
			for s := 0; s < steps; s++ {
				name := fmt.Sprintf("t%d.h5", s)
				f, err := h5.CreateFile(name, fapl)
				if err != nil {
					t.Error(err)
					return
				}
				ds, _ := f.CreateDataset("v", h5.I64, h5.NewSimple(9))
				r := int64(p.Task.Rank())
				sel := h5.NewSimple(9)
				sel.SelectHyperslab(h5.SelectSet, []int64{r * 3}, []int64{3})
				vals := []int64{r*3 + int64(s)*100, r*3 + 1 + int64(s)*100, r*3 + 2 + int64(s)*100}
				ds.Write(nil, sel, h5.Bytes(vals))
				if err := f.Close(); err != nil {
					t.Error(err)
				}
				vol.RemoveFile(name)
			}
		}},
		{Name: "ana", Procs: 2, Main: func(p *mpi.Proc) {
			vol := lowfive.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("sim"))
			fapl := h5.NewFileAccessProps(vol)
			for s := 0; s < steps; s++ {
				f, err := h5.OpenFile(fmt.Sprintf("t%d.h5", s), fapl)
				if err != nil {
					t.Error(err)
					return
				}
				ds, _ := f.OpenDataset("v")
				out := make([]int64, 9)
				if err := ds.Read(nil, nil, h5.Bytes(out)); err != nil {
					t.Error(err)
				}
				for i, v := range out {
					if v != int64(i)+int64(s)*100 {
						t.Errorf("step %d: out[%d]=%d", s, i, v)
						break
					}
				}
				if err := f.Close(); err != nil {
					t.Error(err)
				}
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}
