package mpi

import (
	"fmt"
	"time"

	"lowfive/internal/transport"
	"lowfive/metrics"
)

// Wire-fault vocabulary re-exported so launchers and harnesses can build
// plans without importing internal/transport.
type (
	// WirePlan is a seeded set of wire-level fault rules applied below
	// the frame codec of a sock world (transport.WirePlan).
	WirePlan = transport.WirePlan
	// WireRule is one wire fault rule.
	WireRule = transport.WireRule
	// WireActionKind selects what a wire rule does to a write.
	WireActionKind = transport.WireAction
	// SockRecoveryEvent is one observation from the sock engine's
	// reconnect/resend machinery.
	SockRecoveryEvent = transport.RecoveryEvent
	// JoinTimeoutError reports a sock world that did not form in time.
	JoinTimeoutError = transport.JoinTimeoutError
	// SockStats is the sock engine's traffic/recovery counter snapshot.
	SockStats = transport.SockStats
)

// Wire actions, mirroring the mpi fault-plan vocabulary one layer down.
const (
	WireDelay     = transport.WireDelay
	WireDrop      = transport.WireDrop
	WireCorrupt   = transport.WireCorrupt
	WireReset     = transport.WireReset
	WirePartition = transport.WirePartition
	WireThrottle  = transport.WireThrottle
	WireAnyRank   = transport.WireAnyRank
)

// WireDst encodes a destination rank for WireRule.Dst (0 means any peer).
func WireDst(rank int) int { return transport.WireDst(rank) }

// SockTuning overrides the sock engine's recovery timings; zero fields
// keep the transport defaults. Tests and fault sweeps tighten these so
// tear/redial/resend cycles converge in milliseconds.
type SockTuning struct {
	JoinTimeout       time.Duration
	WriteTimeout      time.Duration
	HandshakeTimeout  time.Duration
	ReconnectTimeout  time.Duration
	RetransmitTimeout time.Duration
	HeartbeatInterval time.Duration
	AckInterval       time.Duration
	DrainTimeout      time.Duration
}

// SockWorldConfig configures one process's membership in a sock-transport
// world: every rank is a separate OS process, frames travel CRC-framed
// over TCP or Unix sockets, and ranks find each other through a
// rendezvous coordinator (transport.Coordinator).
type SockWorldConfig struct {
	// Network is "tcp" or "unix".
	Network string
	// Coord is the coordinator address all ranks rendezvous at.
	Coord string
	// Rank is this process's world rank; Size is the world size.
	Rank, Size int
	// Inc is this rank's incarnation: 0 on first launch, bumped by the
	// supervisor for each respawn so peers distinguish the restart from
	// the process it replaced.
	Inc uint32
	// Wire, if set, injects seeded wire-level faults into this process's
	// outgoing connections (transport.WirePlan semantics).
	Wire *WirePlan
	// Tuning overrides recovery timings; the zero value keeps defaults.
	Tuning SockTuning
	// Flight, if set, records recovery events (reconnects, resends, peers
	// declared unreachable) alongside the slow queries the consumer's
	// flight recorder already holds — one place to look after a bad run.
	Flight *metrics.FlightRecorder
}

// NewSockWorld joins (or forms) a multi-process world. It blocks until
// all Size rank processes have reached the coordinator, then returns a
// World on which only cfg.Rank is local — run it with RunLocal, and Close
// it when done.
//
// Differences from an in-proc world, all consequences of process
// isolation:
//
//   - The deadlock watchdog defaults to off: it can only see this
//     process's rank, and one blocked rank is not a deadlock. WithWatchdog
//     re-enables it explicitly.
//   - A peer process dying surfaces exactly like an injected crash:
//     receivers blocked on it get RankFailedError, and a respawned peer
//     (higher incarnation) is revived through the same reviveRank path the
//     in-proc supervisor uses.
//   - A fault plan only perturbs traffic this rank sends or receives;
//     rules scoped to other ranks fire in their processes.
func NewSockWorld(cfg SockWorldConfig, opts ...Option) (*World, error) {
	if cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, fmt.Errorf("mpi: sock rank %d out of range for world size %d", cfg.Rank, cfg.Size)
	}
	w := newWorldCore(cfg.Size, 0, opts)
	w.localRank = cfg.Rank
	w.incs[cfg.Rank].Store(cfg.Inc)
	sock, err := transport.DialSock(transport.SockConfig{
		Network: cfg.Network,
		Coord:   cfg.Coord,
		Rank:    cfg.Rank,
		Size:    cfg.Size,
		Inc:     cfg.Inc,
		Deliver: w.enqueueInbound,
		// A dead peer flows into the same failure machinery an injected
		// FaultCrash uses: markFailed wakes every blocked receiver, which
		// then observes RankFailedError.
		OnPeerDeath: func(rank int) { w.markFailed(rank) },
		// A respawned peer is revived like a supervised in-proc restart:
		// incarnation bump, mailbox purge, fresh failure channel.
		OnPeerRejoin:      func(rank int) { w.reviveRank(rank) },
		OnRecovery:        w.sockRecoveryHook(cfg.Flight),
		WirePlan:          cfg.Wire,
		JoinTimeout:       cfg.Tuning.JoinTimeout,
		WriteTimeout:      cfg.Tuning.WriteTimeout,
		HandshakeTimeout:  cfg.Tuning.HandshakeTimeout,
		ReconnectTimeout:  cfg.Tuning.ReconnectTimeout,
		RetransmitTimeout: cfg.Tuning.RetransmitTimeout,
		HeartbeatInterval: cfg.Tuning.HeartbeatInterval,
		AckInterval:       cfg.Tuning.AckInterval,
		DrainTimeout:      cfg.Tuning.DrainTimeout,
	})
	if err != nil {
		return nil, err
	}
	w.xport = sock
	return w, nil
}

// sockRecoveryHook turns transport recovery events into metrics counters
// (when the world carries a registry) and flight-recorder entries (when
// the launcher passes one), so a run that survived wire faults shows its
// scars: how often connections tore, how many frames were resent, which
// peers went unreachable.
func (w *World) sockRecoveryHook(flight *metrics.FlightRecorder) func(transport.RecoveryEvent) {
	if w.metrics == nil && flight == nil {
		return nil
	}
	var tears, redials, reconnects, resent, unreachable *metrics.Counter
	if w.metrics != nil {
		tears = w.metrics.Counter("sock.tears")
		redials = w.metrics.Counter("sock.redials")
		reconnects = w.metrics.Counter("sock.reconnects")
		resent = w.metrics.Counter("sock.resent.frames")
		unreachable = w.metrics.Counter("sock.peer.unreachable")
	}
	return func(ev transport.RecoveryEvent) {
		if w.metrics != nil {
			switch ev.Kind {
			case "tear":
				tears.Inc()
			case "redial":
				redials.Inc()
			case "reconnect":
				reconnects.Inc()
			case "resend":
				resent.Add(int64(ev.Frames))
			case "peer-unreachable":
				unreachable.Inc()
			}
		}
		// Tears and redials are high-frequency noise under a fault plan;
		// the recorder keeps the episodes that matter for postmortems.
		if ev.Kind == "reconnect" || ev.Kind == "resend" || ev.Kind == "peer-unreachable" {
			flight.Record(metrics.SlowQuery{
				Time:      time.Now(),
				Producers: []int{ev.Peer},
				Chunks:    int64(ev.Frames),
				Reason:    "sock-" + ev.Kind,
			})
		}
	}
}

// RunWorkflowLocal executes this process's slice of a multi-task workflow
// on a sock world: the same contiguous rank layout and intercomm wiring
// RunWorkflow uses in-proc, but with exactly one rank local and every
// other rank a peer process. Each rank process of the world calls this
// with identical specs.
func (w *World) RunWorkflowLocal(specs []TaskSpec) error {
	if w.localRank < 0 {
		return fmt.Errorf("mpi: RunWorkflowLocal requires a sock world (use RunWorkflow)")
	}
	ranges, total, err := layoutWorkflow(specs)
	if err != nil {
		return err
	}
	if total != w.size {
		return fmt.Errorf("mpi: workflow wants %d procs, world has %d", total, w.size)
	}
	wr := w.localRank
	ti := 0
	for wr >= ranges[ti][0]+len(ranges[ti]) {
		ti++
	}
	taskRank := wr - ranges[ti][0]
	inc := w.incs[wr].Load()
	return w.RunLocal(func(*Comm) {
		// The incarnation doubles as the attempt counter: a respawned
		// process reruns its task main with Attempt = Inc, same as a
		// supervised in-proc restart.
		specs[ti].Main(buildProc(w, specs, ranges, ti, taskRank, inc, int(inc)))
	})
}

// LocalRank returns this process's world rank in a sock world, or -1 when
// every rank is local (in-proc world).
func (w *World) LocalRank() int { return w.localRank }

// SockStats returns the sock engine's data-plane counters, or false for
// an in-proc world.
func (w *World) SockStats() (transport.SockStats, bool) {
	if s, ok := w.xport.(*transport.Sock); ok {
		return s.Stats(), true
	}
	return transport.SockStats{}, false
}

// RunLocal executes main as this process's rank of a sock world and
// returns how it ended: nil on completion, *RankFailedError if the rank
// died (injected crash or a supervisor teardown), *AbortedError if this
// process's world aborted, or the panic error if main itself panicked.
// Unlike Run it does not abort the world on an application panic's
// behalf-of-other-ranks — there are no other local ranks.
func (w *World) RunLocal(main func(c *Comm)) (err error) {
	if w.localRank < 0 {
		return fmt.Errorf("mpi: RunLocal requires a sock world (use Run)")
	}
	if w.tracks != nil && w.tracks[w.localRank] == nil {
		w.tracks[w.localRank] = w.tracer.NewTrack("world", 0, fmt.Sprintf("rank %d", w.localRank), w.localRank)
	}
	c := &Comm{
		world: w,
		id:    worldCommID,
		ranks: w.worldRanks(),
		rank:  w.localRank,
		inc:   w.incs[w.localRank].Load(),
	}
	stopWatch := make(chan struct{})
	defer close(stopWatch)
	if w.watchdog > 0 {
		go w.watch(stopWatch)
	}
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		switch p := rec.(type) {
		case rankCrashPanic:
			err = &RankFailedError{Rank: p.rank}
		case *RankFailedError:
			err = p
		case *AbortedError:
			err = p
		case error:
			err = p
		default:
			err = fmt.Errorf("rank %d panicked: %v", w.localRank, rec)
		}
	}()
	main(c)
	return nil
}

// Close shuts down the world's transport engine (sockets, listener,
// coordinator registration for the sock engine; a no-op for the in-proc
// engine). Safe to call more than once.
func (w *World) Close() error {
	if w.xport == nil {
		return nil
	}
	return w.xport.Close()
}
