package mpi

import (
	"fmt"

	"lowfive/internal/transport"
)

// SockWorldConfig configures one process's membership in a sock-transport
// world: every rank is a separate OS process, frames travel CRC-framed
// over TCP or Unix sockets, and ranks find each other through a
// rendezvous coordinator (transport.Coordinator).
type SockWorldConfig struct {
	// Network is "tcp" or "unix".
	Network string
	// Coord is the coordinator address all ranks rendezvous at.
	Coord string
	// Rank is this process's world rank; Size is the world size.
	Rank, Size int
	// Inc is this rank's incarnation: 0 on first launch, bumped by the
	// supervisor for each respawn so peers distinguish the restart from
	// the process it replaced.
	Inc uint32
}

// NewSockWorld joins (or forms) a multi-process world. It blocks until
// all Size rank processes have reached the coordinator, then returns a
// World on which only cfg.Rank is local — run it with RunLocal, and Close
// it when done.
//
// Differences from an in-proc world, all consequences of process
// isolation:
//
//   - The deadlock watchdog defaults to off: it can only see this
//     process's rank, and one blocked rank is not a deadlock. WithWatchdog
//     re-enables it explicitly.
//   - A peer process dying surfaces exactly like an injected crash:
//     receivers blocked on it get RankFailedError, and a respawned peer
//     (higher incarnation) is revived through the same reviveRank path the
//     in-proc supervisor uses.
//   - A fault plan only perturbs traffic this rank sends or receives;
//     rules scoped to other ranks fire in their processes.
func NewSockWorld(cfg SockWorldConfig, opts ...Option) (*World, error) {
	if cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, fmt.Errorf("mpi: sock rank %d out of range for world size %d", cfg.Rank, cfg.Size)
	}
	w := newWorldCore(cfg.Size, 0, opts)
	w.localRank = cfg.Rank
	w.incs[cfg.Rank].Store(cfg.Inc)
	sock, err := transport.DialSock(transport.SockConfig{
		Network: cfg.Network,
		Coord:   cfg.Coord,
		Rank:    cfg.Rank,
		Size:    cfg.Size,
		Inc:     cfg.Inc,
		Deliver: w.enqueueInbound,
		// A dead peer flows into the same failure machinery an injected
		// FaultCrash uses: markFailed wakes every blocked receiver, which
		// then observes RankFailedError.
		OnPeerDeath: func(rank int) { w.markFailed(rank) },
		// A respawned peer is revived like a supervised in-proc restart:
		// incarnation bump, mailbox purge, fresh failure channel.
		OnPeerRejoin: func(rank int) { w.reviveRank(rank) },
	})
	if err != nil {
		return nil, err
	}
	w.xport = sock
	return w, nil
}

// LocalRank returns this process's world rank in a sock world, or -1 when
// every rank is local (in-proc world).
func (w *World) LocalRank() int { return w.localRank }

// SockStats returns the sock engine's data-plane counters, or false for
// an in-proc world.
func (w *World) SockStats() (transport.SockStats, bool) {
	if s, ok := w.xport.(*transport.Sock); ok {
		return s.Stats(), true
	}
	return transport.SockStats{}, false
}

// RunLocal executes main as this process's rank of a sock world and
// returns how it ended: nil on completion, *RankFailedError if the rank
// died (injected crash or a supervisor teardown), *AbortedError if this
// process's world aborted, or the panic error if main itself panicked.
// Unlike Run it does not abort the world on an application panic's
// behalf-of-other-ranks — there are no other local ranks.
func (w *World) RunLocal(main func(c *Comm)) (err error) {
	if w.localRank < 0 {
		return fmt.Errorf("mpi: RunLocal requires a sock world (use Run)")
	}
	if w.tracks != nil && w.tracks[w.localRank] == nil {
		w.tracks[w.localRank] = w.tracer.NewTrack("world", 0, fmt.Sprintf("rank %d", w.localRank), w.localRank)
	}
	c := &Comm{
		world: w,
		id:    worldCommID,
		ranks: w.worldRanks(),
		rank:  w.localRank,
		inc:   w.incs[w.localRank].Load(),
	}
	stopWatch := make(chan struct{})
	defer close(stopWatch)
	if w.watchdog > 0 {
		go w.watch(stopWatch)
	}
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		switch p := rec.(type) {
		case rankCrashPanic:
			err = &RankFailedError{Rank: p.rank}
		case *RankFailedError:
			err = p
		case *AbortedError:
			err = p
		case error:
			err = p
		default:
			err = fmt.Errorf("rank %d panicked: %v", w.localRank, rec)
		}
	}()
	main(c)
	return nil
}

// Close shuts down the world's transport engine (sockets, listener,
// coordinator registration for the sock engine; a no-op for the in-proc
// engine). Safe to call more than once.
func (w *World) Close() error {
	if w.xport == nil {
		return nil
	}
	return w.xport.Close()
}
