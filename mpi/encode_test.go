package mpi

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestEncodeHelpers(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 1 << 40, -(1 << 40)} {
		if got := DecodeInt64(EncodeInt64(v)); got != v {
			t.Fatalf("int64 %d round-tripped to %d", v, got)
		}
	}
	for _, v := range []float64{0, 1.5, -2.25, 1e300} {
		if got := DecodeFloat64(EncodeFloat64(v)); got != v {
			t.Fatalf("float64 %g round-tripped to %g", v, got)
		}
	}
}

// seedWireFrames returns honest wire frames covering the tag and payload
// shapes the runtime produces: user tags, negative internal collective
// tags, empty payloads, and a concatenated stream.
func seedWireFrames() [][]byte {
	var frames [][]byte
	var stream []byte
	for _, fr := range []*Frame{
		{CommID: 1, Src: 0, WorldSrc: 0, Tag: 0, Data: []byte("payload")},
		{CommID: 1, Src: 3, WorldSrc: 7, Tag: -2 - 5*1024 - 3*64 - 1, Data: nil},
		{CommID: 0xfeedface, Src: 15, WorldSrc: 15, Tag: 1 << 30, Data: make([]byte, 300)},
	} {
		b := AppendFrame(nil, fr)
		frames = append(frames, b)
		stream = append(stream, b...)
	}
	return append(frames, stream)
}

func TestFrameRoundTripMPI(t *testing.T) {
	want := Frame{CommID: 42, Src: 2, WorldSrc: 9, Tag: -66, Data: []byte("abc")}
	enc := AppendFrame(nil, &want)
	got, n, err := DecodeFrame(enc)
	if err != nil || n != len(enc) {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	if got.CommID != want.CommID || got.Src != want.Src || got.WorldSrc != want.WorldSrc ||
		got.Tag != want.Tag || !bytes.Equal(got.Data, want.Data) {
		t.Fatalf("got %+v want %+v", got, want)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &want); err != nil {
		t.Fatal(err)
	}
	got2, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Tag != want.Tag || !bytes.Equal(got2.Data, want.Data) {
		t.Fatalf("stream round trip drifted: %+v", got2)
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("want clean EOF at stream end, got %v", err)
	}
}

// FuzzDecodeFrame asserts the sock transport's wire decoder is total: any
// input — torn streams, flipped bits, hostile length prefixes — either
// decodes to a frame that re-encodes identically or returns one of the
// typed errors. It must never panic and never allocate proportional to a
// corrupt length claim.
func FuzzDecodeFrame(f *testing.F) {
	for _, frame := range seedWireFrames() {
		f.Add(frame)
		for _, cut := range []int{0, 1, FrameHeaderLen - 1, FrameHeaderLen, len(frame) - 1} {
			if cut >= 0 && cut < len(frame) {
				f.Add(append([]byte(nil), frame[:cut]...))
			}
		}
		for _, pos := range []int{0, 4, 12, 20, 28, len(frame) - 1} {
			if pos >= 0 && pos < len(frame) {
				mut := append([]byte(nil), frame...)
				mut[pos] ^= 0xff
				f.Add(mut)
			}
		}
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		fr, n, err := DecodeFrame(in)
		if err != nil {
			if !errors.Is(err, ErrTruncatedFrame) && !errors.Is(err, ErrBadCRC) && !errors.Is(err, ErrFrameTooBig) {
				t.Fatalf("untyped decode error: %v", err)
			}
			// The streaming decoder must reject the same input with a typed
			// error too (or report a clean EOF on empty input).
			if _, serr := ReadFrame(bytes.NewReader(in)); serr == nil {
				t.Fatalf("DecodeFrame rejected (%v) but ReadFrame accepted", err)
			}
			return
		}
		if n < FrameHeaderLen || n > len(in) {
			t.Fatalf("consumed %d of %d", n, len(in))
		}
		if len(fr.Data) != n-FrameHeaderLen {
			t.Fatalf("payload %d bytes for %d consumed", len(fr.Data), n)
		}
		// A decoded frame must re-encode to the exact bytes it came from.
		if again := AppendFrame(nil, &fr); !bytes.Equal(again, in[:n]) {
			t.Fatal("re-encode drifted from wire bytes")
		}
		// And the streaming decoder must agree with the in-place one.
		sfr, serr := ReadFrame(bytes.NewReader(in[:n]))
		if serr != nil {
			t.Fatalf("ReadFrame rejected what DecodeFrame accepted: %v", serr)
		}
		if sfr.CommID != fr.CommID || sfr.Src != fr.Src || sfr.WorldSrc != fr.WorldSrc ||
			sfr.Tag != fr.Tag || !bytes.Equal(sfr.Data, fr.Data) {
			t.Fatal("stream and slice decoders disagree")
		}
	})
}
