package mpi

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

var collectiveSizes = []int{1, 2, 3, 4, 5, 7, 8, 16, 33}

func TestBarrier(t *testing.T) {
	for _, n := range collectiveSizes {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			var entered atomic.Int64
			err := Run(n, func(c *Comm) {
				if c.Rank() == 0 {
					time.Sleep(10 * time.Millisecond) // straggler
				}
				entered.Add(1)
				c.Barrier()
				if got := entered.Load(); got != int64(n) {
					t.Errorf("rank %d passed barrier with only %d/%d entered", c.Rank(), got, n)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBackToBackBarriers(t *testing.T) {
	err := Run(8, func(c *Comm) {
		for i := 0; i < 50; i++ {
			c.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	for _, n := range collectiveSizes {
		for root := 0; root < n; root += max(1, n-1) {
			t.Run(fmt.Sprintf("n=%d/root=%d", n, root), func(t *testing.T) {
				err := Run(n, func(c *Comm) {
					var data []byte
					if c.Rank() == root {
						data = []byte("payload")
					}
					out := c.Bcast(root, data)
					if string(out) != "payload" {
						t.Errorf("rank %d got %q", c.Rank(), out)
					}
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestGather(t *testing.T) {
	for _, n := range collectiveSizes {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			root := n / 2
			err := Run(n, func(c *Comm) {
				// Variable-length payloads (gatherv semantics).
				mine := bytes.Repeat([]byte{byte(c.Rank())}, c.Rank()+1)
				out := c.Gather(root, mine)
				if c.Rank() != root {
					if out != nil {
						t.Errorf("non-root got non-nil")
					}
					return
				}
				for r, b := range out {
					want := bytes.Repeat([]byte{byte(r)}, r+1)
					if !bytes.Equal(b, want) {
						t.Errorf("slot %d: got %v want %v", r, b, want)
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAllgather(t *testing.T) {
	for _, n := range collectiveSizes {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			err := Run(n, func(c *Comm) {
				out := c.Allgather([]byte{byte(c.Rank()), byte(c.Rank() * 2)})
				if len(out) != n {
					t.Fatalf("got %d entries", len(out))
				}
				for r, b := range out {
					if len(b) != 2 || b[0] != byte(r) || b[1] != byte(r*2) {
						t.Errorf("slot %d: got %v", r, b)
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestReduceSum(t *testing.T) {
	for _, n := range collectiveSizes {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			root := n - 1
			err := Run(n, func(c *Comm) {
				out := c.Reduce(root, EncodeInt64(int64(c.Rank()+1)), SumInt64)
				if c.Rank() == root {
					want := int64(n * (n + 1) / 2)
					if got := DecodeInt64(out); got != want {
						t.Errorf("sum=%d want %d", got, want)
					}
				} else if out != nil {
					t.Error("non-root got non-nil")
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAllreduceMax(t *testing.T) {
	for _, n := range collectiveSizes {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			err := Run(n, func(c *Comm) {
				v := float64((c.Rank() * 7) % n)
				out := c.Allreduce(EncodeFloat64(v), MaxFloat64)
				// Max over all ranks of (r*7)%n.
				want := 0.0
				for r := 0; r < n; r++ {
					if f := float64((r * 7) % n); f > want {
						want = f
					}
				}
				if got := DecodeFloat64(out); got != want {
					t.Errorf("rank %d: max=%v want %v", c.Rank(), got, want)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAlltoall(t *testing.T) {
	for _, n := range collectiveSizes {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			err := Run(n, func(c *Comm) {
				data := make([][]byte, n)
				for dest := range data {
					data[dest] = []byte{byte(c.Rank()), byte(dest)}
				}
				out, aerr := c.Alltoall(data)
				if aerr != nil {
					t.Errorf("rank %d: %v", c.Rank(), aerr)
					return
				}
				for src, b := range out {
					if b[0] != byte(src) || b[1] != byte(c.Rank()) {
						t.Errorf("from %d: got %v", src, b)
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestScan(t *testing.T) {
	err := Run(8, func(c *Comm) {
		out := c.Scan(EncodeInt64(int64(c.Rank()+1)), SumInt64)
		want := int64((c.Rank() + 1) * (c.Rank() + 2) / 2)
		if got := DecodeInt64(out); got != want {
			t.Errorf("rank %d: scan=%d want %d", c.Rank(), got, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectivesOnSplitComm(t *testing.T) {
	err := Run(9, func(c *Comm) {
		sub := c.Split(c.Rank()%3, 0)
		sum := sub.Allreduce(EncodeInt64(int64(c.Rank())), SumInt64)
		// Members of color k are world ranks k, k+3, k+6.
		want := int64(3*(c.Rank()%3) + 9)
		if got := DecodeInt64(sum); got != want {
			t.Errorf("rank %d: got %d want %d", c.Rank(), got, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMixedCollectiveSequence(t *testing.T) {
	// Interleave several collective kinds; the sequence-derived tags must
	// keep them from cross-matching.
	err := Run(5, func(c *Comm) {
		for i := 0; i < 10; i++ {
			c.Barrier()
			b := c.Bcast(i%5, EncodeInt64(int64(i)))
			if DecodeInt64(b) != int64(i) {
				t.Errorf("iter %d: bcast %d", i, DecodeInt64(b))
			}
			s := c.Allreduce(EncodeInt64(1), SumInt64)
			if DecodeInt64(s) != 5 {
				t.Errorf("iter %d: sum %d", i, DecodeInt64(s))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvRing(t *testing.T) {
	err := Run(5, func(c *Comm) {
		right := (c.Rank() + 1) % c.Size()
		left := (c.Rank() - 1 + c.Size()) % c.Size()
		data, st := c.Sendrecv(right, 3, []byte{byte(c.Rank())}, left, 3)
		if st.Source != left || data[0] != byte(left) {
			t.Errorf("rank %d: got %v from %d", c.Rank(), data, st.Source)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatter(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		err := Run(n, func(c *Comm) {
			root := n / 2
			var data [][]byte
			if c.Rank() == root {
				for r := 0; r < n; r++ {
					data = append(data, bytes.Repeat([]byte{byte(r)}, r+1))
				}
			}
			piece := c.Scatter(root, data)
			want := bytes.Repeat([]byte{byte(c.Rank())}, c.Rank()+1)
			if !bytes.Equal(piece, want) {
				t.Errorf("rank %d: got %v want %v", c.Rank(), piece, want)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestExclusiveScan(t *testing.T) {
	err := Run(6, func(c *Comm) {
		out := c.ExclusiveScan(EncodeInt64(int64(c.Rank()+1)), SumInt64)
		if c.Rank() == 0 {
			if out != nil {
				t.Errorf("rank 0 should get nil, got %v", out)
			}
			return
		}
		want := int64(c.Rank() * (c.Rank() + 1) / 2)
		if got := DecodeInt64(out); got != want {
			t.Errorf("rank %d: %d want %d", c.Rank(), got, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterThenGatherInverse(t *testing.T) {
	err := Run(4, func(c *Comm) {
		var data [][]byte
		if c.Rank() == 0 {
			data = [][]byte{{10}, {11}, {12}, {13}}
		}
		piece := c.Scatter(0, data)
		back := c.Gather(0, piece)
		if c.Rank() == 0 {
			for r, b := range back {
				if len(b) != 1 || b[0] != byte(10+r) {
					t.Errorf("slot %d: %v", r, b)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
