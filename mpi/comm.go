package mpi

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"lowfive/trace"
)

const worldCommID uint64 = 1

// Comm is an intracommunicator: an ordered group of ranks that can exchange
// point-to-point messages and run collectives. Like an MPI handle, a Comm
// value is local to one rank; every rank of the group holds its own handle.
type Comm struct {
	world *World
	id    uint64
	ranks []int // world ranks of the members, shared (read-only) by all handles
	rank  int   // this handle's rank within the group

	collSeq uint64 // per-handle collective sequence; identical across ranks by the usual MPI ordering requirement
	inc     uint32 // incarnation of the owning rank this handle belongs to (supervised worlds)
}

// Rank returns the calling rank within this communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in this communicator.
func (c *Comm) Size() int { return len(c.ranks) }

// World returns the underlying world.
func (c *Comm) World() *World { return c.world }

// WorldRank returns the world rank of a communicator-local rank.
func (c *Comm) WorldRank(rank int) int { return c.ranks[rank] }

func (c *Comm) checkRank(rank int) {
	if rank < 0 || rank >= len(c.ranks) {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", rank, len(c.ranks)))
	}
}

// Track returns the calling rank's recording track, or nil when the world
// has no tracer attached. Layers built on top of mpi (the VOL stack) pull
// their per-rank track from here, so one WithTracer option instruments the
// whole workflow.
func (c *Comm) Track() *trace.Track {
	if c.world.tracer == nil {
		return nil
	}
	return c.world.tracks[c.ranks[c.rank]]
}

// Send delivers data to dest with the given tag. It is buffered and does not
// wait for a matching receive. Ownership of data passes to the runtime: the
// caller must not modify the slice after sending.
//
// With a tracer attached, the span covers the cost-model charge time the
// sender pays before the message becomes visible.
func (c *Comm) Send(dest, tag int, data []byte) {
	c.checkRank(dest)
	tr := c.Track()
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	w := c.world
	w.opGate(c.ranks[c.rank], c.inc)
	w.recordSend(c.ranks[c.rank], c.ranks[dest], len(data))
	m := &message{CommID: c.id, Src: c.rank, WorldSrc: c.ranks[c.rank], Tag: tag, Data: data}
	if w.fault != nil {
		self := c.ranks[c.rank]
		if w.failed[self].Load() {
			panic(rankCrashPanic{rank: self})
		}
		w.faultSend(self, c.ranks[dest], m, tr)
	} else {
		w.deliver(c.ranks[dest], m)
	}
	if tr != nil {
		tr.Span("mpi", "send", t0, time.Now(),
			trace.I64("dst", int64(dest)), trace.I64("tag", int64(tag)),
			trace.I64("bytes", int64(len(data))))
	}
}

// Request represents an in-flight nonblocking operation.
type Request struct {
	done chan struct{}
	err  error // written once before done closes
}

// Wait blocks until the operation completes and returns how it ended: nil
// for a delivered send, or the typed failure (*RankFailedError for an
// injected crash of the sending rank, *AbortedError for a world abort)
// that interrupted it. Callers that do not care may ignore the result —
// the sending rank's own goroutine still observes its failure at its next
// operation either way.
func (r *Request) Wait() error {
	<-r.done
	return r.err
}

// WaitAll waits for every request in the slice and returns the first
// non-nil completion error, if any.
func WaitAll(reqs []*Request) error {
	var first error
	for _, r := range reqs {
		if err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Isend starts a nonblocking send and returns a request. The payload must
// not be modified until the request completes.
func (c *Comm) Isend(dest, tag int, data []byte) *Request {
	c.checkRank(dest)
	req := &Request{done: make(chan struct{})}
	if c.world.cost == nil {
		// Without a cost model the send is immediate; avoid a goroutine.
		c.Send(dest, tag, data)
		close(req.done)
		return req
	}
	go func() {
		defer close(req.done)
		// The helper goroutine acts on behalf of the sending rank; if an
		// injected crash or a world abort fires inside Send, it must not
		// crash the process — but it must not vanish either. The halt
		// panic becomes the request's typed completion error, surfaced on
		// Wait; anything else is a real bug and repanics.
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			switch p := rec.(type) {
			case rankCrashPanic:
				req.err = &RankFailedError{Rank: p.rank}
			case *RankFailedError:
				req.err = p
			case *AbortedError:
				req.err = p
			default:
				panic(rec)
			}
		}()
		c.Send(dest, tag, data)
	}()
	return req
}

// Recv blocks until a message matching (src, tag) arrives and returns its
// payload. src may be AnySource and tag may be AnyTag.
//
// With a tracer attached, the span covers the time blocked waiting for the
// matching message.
func (c *Comm) Recv(src, tag int) ([]byte, Status) {
	if src != AnySource {
		c.checkRank(src)
	}
	tr := c.Track()
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	self := c.ranks[c.rank]
	c.world.opGate(self, c.inc)
	if c.world.fault != nil {
		c.world.injectRecv(self, tag, tr)
	}
	m := c.world.boxes[self].take(c.world, self, c.id, src, tag, c.worldSrc(src), c.inc, true)
	if tr != nil {
		tr.Span("mpi", "recv", t0, time.Now(),
			trace.I64("src", int64(m.Src)), trace.I64("tag", int64(m.Tag)),
			trace.I64("bytes", int64(len(m.Data))))
	}
	return m.Data, Status{Source: m.Src, Tag: m.Tag, Bytes: len(m.Data)}
}

// Probe blocks until a message matching (src, tag) is available, without
// receiving it.
func (c *Comm) Probe(src, tag int) Status {
	if src != AnySource {
		c.checkRank(src)
	}
	self := c.ranks[c.rank]
	c.world.opGate(self, c.inc)
	m := c.world.boxes[self].take(c.world, self, c.id, src, tag, c.worldSrc(src), c.inc, false)
	return Status{Source: m.Src, Tag: m.Tag, Bytes: len(m.Data)}
}

// Iprobe reports whether a message matching (src, tag) is available.
func (c *Comm) Iprobe(src, tag int) (Status, bool) {
	if src != AnySource {
		c.checkRank(src)
	}
	self := c.ranks[c.rank]
	c.world.opGate(self, c.inc)
	m := c.world.boxes[self].tryTake(c.world, self, c.id, src, tag, c.worldSrc(src), c.inc, false)
	if m == nil {
		return Status{}, false
	}
	return Status{Source: m.Src, Tag: m.Tag, Bytes: len(m.Data)}, true
}

// worldSrc maps a communicator-local source rank to its world rank, or -1
// for AnySource (no single peer to watch for failure).
func (c *Comm) worldSrc(src int) int {
	if src == AnySource {
		return -1
	}
	return c.ranks[src]
}

// deriveID computes a child communicator id that every member arrives at
// independently but identically: a hash of the parent id, the parent's
// collective sequence number, and a discriminator (e.g. split color).
func deriveID(parent uint64, seq uint64, kind string, discriminator int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], parent)
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], seq)
	h.Write(buf[:])
	h.Write([]byte(kind))
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(discriminator)))
	h.Write(buf[:])
	id := h.Sum64()
	if id <= worldCommID {
		id = worldCommID + 1
	}
	return id
}

// Dup returns a communicator with the same group but a distinct message
// context, so traffic on the duplicate never matches traffic on the parent.
func (c *Comm) Dup() *Comm {
	c.collSeq++
	seq := c.collSeq
	// Dup is collective; synchronize like a barrier so no rank races ahead
	// and sends on the duplicate before everyone has derived it.
	c.barrier(seq)
	return &Comm{world: c.world, id: deriveID(c.id, seq, "dup", 0), ranks: c.ranks, rank: c.rank, inc: c.inc}
}

// Split partitions the communicator by color. Ranks passing the same color
// end up in the same new communicator, ordered by key and then by parent
// rank. A negative color returns nil (MPI_UNDEFINED).
func (c *Comm) Split(color, key int) *Comm {
	c.collSeq++
	seq := c.collSeq
	// Exchange (color, key) among all ranks.
	mine := make([]byte, 16)
	binary.LittleEndian.PutUint64(mine[0:], uint64(int64(color)))
	binary.LittleEndian.PutUint64(mine[8:], uint64(int64(key)))
	all := c.allgatherInternal(seq, mine)
	type member struct{ color, key, rank int }
	var members []member
	for r, b := range all {
		col := int(int64(binary.LittleEndian.Uint64(b[0:])))
		k := int(int64(binary.LittleEndian.Uint64(b[8:])))
		members = append(members, member{col, k, r})
	}
	if color < 0 {
		return nil
	}
	var group []member
	for _, m := range members {
		if m.color == color {
			group = append(group, m)
		}
	}
	sort.Slice(group, func(i, j int) bool {
		if group[i].key != group[j].key {
			return group[i].key < group[j].key
		}
		return group[i].rank < group[j].rank
	})
	ranks := make([]int, len(group))
	myRank := -1
	for i, m := range group {
		ranks[i] = c.ranks[m.rank]
		if m.rank == c.rank {
			myRank = i
		}
	}
	return &Comm{world: c.world, id: deriveID(c.id, seq, "split", color), ranks: ranks, rank: myRank, inc: c.inc}
}
