package mpi

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestFaultDecideDeterministic(t *testing.T) {
	plan := FaultPlan{Seed: 42, Rules: []FaultRule{
		{Action: FaultDrop, Rank: AnyRank, Tag: AnyTag, Prob: 0.5},
	}}
	record := func() []bool {
		fs := newFaultState(plan, 4)
		var out []bool
		for op := 0; op < 200; op++ {
			_, _, fired := fs.decide(op%4, op%3, op%7, false)
			out = append(out, fired)
		}
		return out
	}
	a, b := record(), record()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical replays", i)
		}
	}
	if fired := 0; true {
		for _, f := range a {
			if f {
				fired++
			}
		}
		if fired == 0 || fired == len(a) {
			t.Errorf("Prob=0.5 rule fired %d/%d times", fired, len(a))
		}
	}
}

func TestFaultRuleGating(t *testing.T) {
	fs := newFaultState(FaultPlan{Rules: []FaultRule{
		{Action: FaultDrop, Rank: 1, Tag: 9, After: 2, Count: 3},
	}}, 2)
	// Wrong rank, wrong tag, recv-side, and internal tags never match.
	for i, args := range []struct {
		rank, tag int
		recv      bool
	}{{0, 9, false}, {1, 8, false}, {1, 9, true}, {1, -5, false}} {
		if _, _, fired := fs.decide(args.rank, 0, args.tag, args.recv); fired {
			t.Errorf("case %d: rule fired on non-matching op", i)
		}
	}
	// Matching ops: 2 pass (After), 3 fire (Count), then the rule is spent.
	var got []bool
	for i := 0; i < 8; i++ {
		_, _, fired := fs.decide(1, 0, 9, false)
		got = append(got, fired)
	}
	want := []bool{false, false, true, true, true, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op sequence %v, want %v", got, want)
		}
	}
}

func TestFaultDropThenRedelivery(t *testing.T) {
	// The first tag-5 message is dropped; the receiver sees only the second.
	plan := FaultPlan{Rules: []FaultRule{{Action: FaultDrop, Rank: 0, Tag: 5, Count: 1}}}
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 5, []byte("lost"))
			c.Send(1, 5, []byte("kept"))
		} else {
			data, _ := c.Recv(0, 5)
			if string(data) != "kept" {
				t.Errorf("got %q, want the redelivered payload", data)
			}
		}
	}, WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
}

func TestFaultDuplicateDeliversTwice(t *testing.T) {
	plan := FaultPlan{Rules: []FaultRule{{Action: FaultDuplicate, Rank: 0, Tag: 3, Count: 1}}}
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 3, []byte("once"))
		} else {
			first, _ := c.Recv(0, 3)
			second, _ := c.Recv(0, 3)
			if string(first) != "once" || string(second) != "once" {
				t.Errorf("got %q and %q", first, second)
			}
		}
	}, WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
}

func TestFaultCorruptCopiesPayload(t *testing.T) {
	plan := FaultPlan{Seed: 7, Rules: []FaultRule{{Action: FaultCorrupt, Rank: 0, Tag: 2, Count: 1}}}
	original := bytes.Repeat([]byte{0xaa}, 64)
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 2, original)
		} else {
			data, _ := c.Recv(0, 2)
			if bytes.Equal(data, bytes.Repeat([]byte{0xaa}, 64)) {
				t.Error("payload arrived unflipped")
			}
		}
	}, WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	// The sender's buffer must be untouched: corruption copies.
	if !bytes.Equal(original, bytes.Repeat([]byte{0xaa}, 64)) {
		t.Error("sender buffer was modified in place")
	}
}

func TestFaultDelayDoesNotStallSender(t *testing.T) {
	// Regression: FaultDelay models link latency, not head-of-line blocking.
	// A delayed message to one peer must neither stall the sender nor stall
	// delivery to a different peer; the delayed message itself still arrives
	// late.
	const d = 250 * time.Millisecond
	plan := FaultPlan{Rules: []FaultRule{
		{Action: FaultDelay, Rank: 0, Dst: DstRank(1), Tag: 1, Delay: d},
	}}
	err := Run(3, func(c *Comm) {
		switch c.Rank() {
		case 0:
			start := time.Now()
			c.Send(1, 1, []byte("slow"))
			c.Send(2, 1, []byte("fast"))
			if took := time.Since(start); took >= d {
				t.Errorf("sends took %v, want well under the %v delay", took, d)
			}
		case 1:
			start := time.Now()
			data, _ := c.Recv(0, 1)
			if string(data) != "slow" {
				t.Errorf("rank 1 got %q", data)
			}
			if took := time.Since(start); took < d/2 {
				t.Errorf("delayed message arrived after %v, want about %v", took, d)
			}
		case 2:
			start := time.Now()
			data, _ := c.Recv(0, 1)
			if string(data) != "fast" {
				t.Errorf("rank 2 got %q", data)
			}
			if took := time.Since(start); took >= d {
				t.Errorf("undelayed peer waited %v — the delayed link blocked it", took)
			}
		}
	}, WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
}

func TestFaultPartitionDropsThenHeals(t *testing.T) {
	// A partition opens at the first armed match, swallows matching traffic
	// for its Duration, then heals: later sends pass through untouched.
	const d = 120 * time.Millisecond
	plan := FaultPlan{Rules: []FaultRule{
		{Action: FaultPartition, Rank: 0, Tag: 1, Duration: d},
	}}
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []byte("severed")) // opens the partition, dropped
			time.Sleep(d + 50*time.Millisecond)
			c.Send(1, 1, []byte("healed"))
		} else {
			data, _ := c.Recv(0, 1)
			if string(data) != "healed" {
				t.Errorf("got %q, want only the post-heal payload", data)
			}
		}
	}, WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
}

func TestFaultPartitionAsymmetric(t *testing.T) {
	// Partitioning the 0→1 link must leave the reverse 1→0 link — and the
	// internal collective traffic a barrier rides on — fully working.
	plan := FaultPlan{Rules: []FaultRule{
		{Action: FaultPartition, Rank: 0, Dst: DstRank(1), Tag: AnyTag, Duration: time.Hour},
	}}
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 5, []byte("into the void"))
			c.Barrier()
			data, _ := c.Recv(1, 6)
			if string(data) != "reverse" {
				t.Errorf("reverse link delivered %q", data)
			}
		} else {
			c.Barrier() // after this, rank 0's send has been swallowed
			if _, ok := c.Iprobe(0, 5); ok {
				t.Error("partitioned link delivered a message")
			}
			c.Send(0, 6, []byte("reverse"))
		}
	}, WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
}

func TestFaultRuleDstScoping(t *testing.T) {
	// A Dst-scoped rule fires only on traffic to that rank: the same tag to
	// any other destination must pass untouched.
	plan := FaultPlan{Rules: []FaultRule{
		{Action: FaultDrop, Rank: 0, Dst: DstRank(1), Tag: AnyTag},
	}}
	err := Run(3, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, 5, []byte("dropped"))
			c.Send(2, 5, []byte("kept"))
			c.Barrier()
		case 1:
			c.Barrier()
			if _, ok := c.Iprobe(0, 5); ok {
				t.Error("Dst-scoped drop let traffic to rank 1 through")
			}
		case 2:
			data, _ := c.Recv(0, 5)
			if string(data) != "kept" {
				t.Errorf("rank 2 got %q", data)
			}
			c.Barrier()
		}
	}, WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
}

func TestFaultThrottleProportionalFIFO(t *testing.T) {
	// A throttled link delivers big messages proportionally late, in FIFO
	// order, without stalling the sender.
	const bw = 100e3 // bytes/s: a 10 KiB message is ~100ms of link time
	plan := FaultPlan{Rules: []FaultRule{
		{Action: FaultThrottle, Rank: 0, Tag: 1, Bandwidth: bw},
	}}
	big := bytes.Repeat([]byte{1}, 10<<10)
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			start := time.Now()
			c.Send(1, 1, big)
			c.Send(1, 1, []byte("second"))
			if took := time.Since(start); took >= 50*time.Millisecond {
				t.Errorf("throttled sends stalled the sender for %v", took)
			}
		} else {
			start := time.Now()
			first, _ := c.Recv(0, 1)
			if len(first) != len(big) {
				t.Errorf("throttled link reordered: got %d bytes first", len(first))
			}
			if took := time.Since(start); took < 50*time.Millisecond {
				t.Errorf("10 KiB at 100 KB/s arrived in %v, want ~100ms", took)
			}
			second, _ := c.Recv(0, 1)
			if string(second) != "second" {
				t.Errorf("second message was %q", second)
			}
		}
	}, WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
}

func TestFaultCrashPropagatesToBlockedPeer(t *testing.T) {
	// Rank 1 dies at its first tag-7 send; rank 0, blocked receiving from
	// it, gets a RankFailedError instead of deadlocking. The world itself
	// completes without error.
	plan := FaultPlan{Rules: []FaultRule{{Action: FaultCrash, Rank: 1, Tag: 7}}}
	w := NewWorld(2, WithFaultPlan(plan), WithWatchdog(10*time.Second))
	err := w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			c.Send(0, 7, []byte("never arrives"))
			t.Error("rank 1 survived its own crash")
			return
		}
		defer func() {
			rec := recover()
			rf, ok := rec.(*RankFailedError)
			if !ok {
				t.Errorf("recovered %v, want *RankFailedError", rec)
				return
			}
			if rf.Rank != 1 {
				t.Errorf("failed rank = %d, want 1", rf.Rank)
			}
		}()
		c.Recv(1, 7)
		t.Error("Recv returned from a crashed peer")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !w.RankFailed(1) || w.RankFailed(0) {
		t.Errorf("failed flags: rank0=%v rank1=%v", w.RankFailed(0), w.RankFailed(1))
	}
	if got := w.FailedRanks(); len(got) != 1 || got[0] != 1 {
		t.Errorf("FailedRanks() = %v, want [1]", got)
	}
}

func TestFaultCrashReleasesFailedChan(t *testing.T) {
	plan := FaultPlan{Rules: []FaultRule{{Action: FaultCrash, Rank: 0, Tag: 4, OnRecv: true}}}
	w := NewWorld(2, WithFaultPlan(plan))
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Recv(1, 4) // crashes before blocking
			t.Error("rank 0 survived its own crash")
			return
		}
		select {
		case <-w.FailedChan(0):
		case <-time.After(5 * time.Second):
			t.Error("FailedChan(0) never closed")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSkipsCrashedRank(t *testing.T) {
	// After rank 2 crashes, the survivors' barrier must still complete.
	plan := FaultPlan{Rules: []FaultRule{{Action: FaultCrash, Rank: 2, Tag: 6}}}
	w := NewWorld(3, WithFaultPlan(plan), WithWatchdog(10*time.Second))
	err := w.Run(func(c *Comm) {
		if c.Rank() == 2 {
			c.Send(0, 6, nil)
			return
		}
		if c.Rank() == 0 {
			func() {
				defer func() {
					if _, ok := recover().(*RankFailedError); !ok {
						t.Error("rank 0 did not observe the crash")
					}
				}()
				c.Recv(2, 6)
			}()
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockErrorNamesBlockedPeer(t *testing.T) {
	// Both ranks block on receives nobody will satisfy; the watchdog report
	// must say who each rank was waiting for, and on what tag.
	err := Run(2, func(c *Comm) {
		peer := 1 - c.Rank()
		defer func() { recover() }() // aborted by the watchdog
		c.Recv(peer, 40+c.Rank())
	}, WithWatchdog(150*time.Millisecond))
	if err == nil {
		t.Fatal("deadlocked world returned nil error")
	}
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("error %v does not unwrap to *DeadlockError", err)
	}
	if dl.Blocked != 2 || len(dl.Ranks) != 2 {
		t.Fatalf("Blocked=%d Ranks=%d, want 2/2", dl.Blocked, len(dl.Ranks))
	}
	for _, p := range dl.Ranks {
		if !p.Blocked {
			t.Errorf("rank %d not reported blocked", p.Rank)
			continue
		}
		wantSrc, wantTag := 1-p.Rank, 40+p.Rank
		if p.WaitSrc != wantSrc || p.WaitTag != wantTag {
			t.Errorf("rank %d waiting on src=%d tag=%d, want src=%d tag=%d",
				p.Rank, p.WaitSrc, p.WaitTag, wantSrc, wantTag)
		}
		if p.BlockedFor <= 0 {
			t.Errorf("rank %d BlockedFor = %v", p.Rank, p.BlockedFor)
		}
	}
}

func TestCleanPathDeliversByReference(t *testing.T) {
	// With a fault plan attached but no matching rule, the receiver must see
	// the sender's backing array — the clean path makes zero copies.
	plan := FaultPlan{Rules: []FaultRule{{Action: FaultDrop, Rank: 0, Tag: 99, Count: 1}}}
	sent := []byte("shared-backing")
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 5, sent)
		} else {
			data, _ := c.Recv(0, 5)
			if &data[0] != &sent[0] {
				t.Errorf("clean path copied the payload")
			}
		}
	}, WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
}

func TestCleanPathNoCopy(t *testing.T) {
	// A firing duplicate rule must alias the first delivery and copy only
	// the second (the no-rule clean path is covered by
	// TestCleanPathDeliversByReference).
	plan := FaultPlan{Rules: []FaultRule{{Action: FaultDuplicate, Rank: 0, Tag: 7, Count: 1}}}
	sent := []byte("zero-copy")
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, sent)
		} else {
			first, _ := c.Recv(0, 7)
			second, _ := c.Recv(0, 7)
			if &first[0] != &sent[0] {
				t.Errorf("duplicate rule copied the first delivery")
			}
			if &second[0] == &sent[0] {
				t.Errorf("duplicate rule aliased the second delivery")
			}
		}
	}, WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
}
