package mpi

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// TaskSpec describes one task (one parallel "executable") of an MPMD
// workflow launch: a name, a number of processes, and the per-process
// entry point.
type TaskSpec struct {
	Name  string
	Procs int
	Main  func(p *Proc)
}

// Proc is the per-process view handed to a task's Main: the world
// communicator, the task's own communicator, and intercommunicators to
// every other task in the launch.
type Proc struct {
	// World spans all processes of all tasks.
	World *Comm
	// Task spans the processes of this task only.
	Task *Comm
	// TaskName is the name from the TaskSpec.
	TaskName string
	// TaskIndex is the position of this task in the launch.
	TaskIndex int
	// Attempt is how many times this task has been restarted by a
	// supervisor before this launch (0 on the first attempt; always 0
	// under plain RunWorkflow).
	Attempt int

	inter map[string]*Intercomm
}

// SetEpoch publishes this process's current application epoch to the world,
// where a supervisor (and a restarted incarnation of the task) can read it.
func (p *Proc) SetEpoch(epoch int64) {
	if p.World != nil {
		p.World.world.SetEpoch(p.World.ranks[p.World.rank], epoch)
	}
}

// Epoch returns the epoch last published with SetEpoch (0 initially). It
// survives a supervisor restart of the task, so a relaunched Main can read
// where its previous incarnation got to.
func (p *Proc) Epoch() int64 {
	if p.World == nil {
		return 0
	}
	return p.World.world.Epoch(p.World.ranks[p.World.rank])
}

// Intercomm returns the intercommunicator connecting this task to the named
// other task. It panics if no such task exists in the launch.
func (p *Proc) Intercomm(other string) *Intercomm {
	ic, ok := p.inter[other]
	if !ok {
		panic(fmt.Sprintf("mpi: no task %q in this workflow launch", other))
	}
	return ic
}

// TaskNames lists the other tasks this process holds intercommunicators to.
func (p *Proc) TaskNames() []string {
	names := make([]string, 0, len(p.inter))
	for n := range p.inter {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func intercommID(a, b string) uint64 {
	if a > b {
		a, b = b, a
	}
	h := fnv.New64a()
	h.Write([]byte("intercomm:"))
	h.Write([]byte(a))
	h.Write([]byte{0})
	h.Write([]byte(b))
	id := h.Sum64()
	// Reserve two consecutive ids per pair (direction split) clear of the
	// world id.
	if id <= worldCommID+1 {
		id += 2
	}
	return id &^ 1
}

// layoutWorkflow validates the specs and computes the contiguous world-rank
// range of each task, in spec order. Shared by RunWorkflow and the
// supervised runner.
func layoutWorkflow(specs []TaskSpec) (ranges [][]int, total int, err error) {
	seen := map[string]bool{}
	for _, s := range specs {
		if s.Procs <= 0 {
			return nil, 0, fmt.Errorf("mpi: task %q has non-positive proc count %d", s.Name, s.Procs)
		}
		if seen[s.Name] {
			return nil, 0, fmt.Errorf("mpi: duplicate task name %q", s.Name)
		}
		seen[s.Name] = true
		total += s.Procs
	}
	if total == 0 {
		return nil, 0, fmt.Errorf("mpi: empty workflow")
	}
	ranges = make([][]int, len(specs))
	start := 0
	for i, s := range specs {
		r := make([]int, s.Procs)
		for j := range r {
			r[j] = start + j
		}
		ranges[i] = r
		start += s.Procs
	}
	return ranges, total, nil
}

// labelTracks labels each rank's track with its task, with a tracer
// attached: tasks become Chrome-trace "processes" and task-local ranks
// their "threads".
func labelTracks(w *World, specs []TaskSpec, ranges [][]int) {
	tr := w.Tracer()
	if tr == nil {
		return
	}
	for ti, s := range specs {
		for j, wr := range ranges[ti] {
			w.SetTrack(wr, tr.NewTrack(s.Name, ti+1, fmt.Sprintf("rank %d", j), wr))
		}
	}
}

// buildProc constructs the per-process view of one task rank: the task
// communicator and intercommunicators to every other task. inc is the
// rank's current incarnation (0 in unsupervised worlds).
func buildProc(w *World, specs []TaskSpec, ranges [][]int, ti, taskRank int, inc uint32, attempt int) *Proc {
	spec := specs[ti]
	wr := ranges[ti][taskRank]
	world := &Comm{world: w, id: worldCommID, ranks: w.worldRanks(), rank: wr, inc: inc}
	task := &Comm{world: w, id: deriveID(worldCommID, 0, "task", ti), ranks: ranges[ti], rank: taskRank, inc: inc}
	inter := make(map[string]*Intercomm, len(specs)-1)
	for oi, os := range specs {
		if oi == ti {
			continue
		}
		id := intercommID(spec.Name, os.Name)
		sideA := spec.Name < os.Name
		ic := NewIntercomm(w, id, ranges[ti], ranges[oi], taskRank, sideA)
		ic.inc = inc
		inter[os.Name] = ic
	}
	return &Proc{World: world, Task: task, TaskName: spec.Name, TaskIndex: ti, Attempt: attempt, inter: inter}
}

// RunWorkflow launches all tasks inside one world, with contiguous world
// rank ranges per task in spec order, and waits for completion. Task names
// must be unique. This mirrors an mpiexec MPMD launch of coupled
// executables, which is how the paper runs producer and consumer tasks.
func RunWorkflow(specs []TaskSpec, opts ...Option) error {
	ranges, total, err := layoutWorkflow(specs)
	if err != nil {
		return err
	}
	w := NewWorld(total, opts...)
	labelTracks(w, specs, ranges)
	return w.Run(func(world *Comm) {
		wr := world.Rank()
		// Which task does this world rank belong to?
		ti := 0
		for wr >= ranges[ti][0]+len(ranges[ti]) {
			ti++
		}
		spec := specs[ti]
		taskRank := wr - ranges[ti][0]
		task := &Comm{world: w, id: deriveID(worldCommID, 0, "task", ti), ranks: ranges[ti], rank: taskRank}
		inter := make(map[string]*Intercomm, len(specs)-1)
		for oi, os := range specs {
			if oi == ti {
				continue
			}
			id := intercommID(spec.Name, os.Name)
			sideA := spec.Name < os.Name
			inter[os.Name] = NewIntercomm(w, id, ranges[ti], ranges[oi], taskRank, sideA)
		}
		spec.Main(&Proc{World: world, Task: task, TaskName: spec.Name, TaskIndex: ti, inter: inter})
	})
}
