package mpi

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// TaskSpec describes one task (one parallel "executable") of an MPMD
// workflow launch: a name, a number of processes, and the per-process
// entry point.
type TaskSpec struct {
	Name  string
	Procs int
	Main  func(p *Proc)
}

// Proc is the per-process view handed to a task's Main: the world
// communicator, the task's own communicator, and intercommunicators to
// every other task in the launch.
type Proc struct {
	// World spans all processes of all tasks.
	World *Comm
	// Task spans the processes of this task only.
	Task *Comm
	// TaskName is the name from the TaskSpec.
	TaskName string
	// TaskIndex is the position of this task in the launch.
	TaskIndex int

	inter map[string]*Intercomm
}

// Intercomm returns the intercommunicator connecting this task to the named
// other task. It panics if no such task exists in the launch.
func (p *Proc) Intercomm(other string) *Intercomm {
	ic, ok := p.inter[other]
	if !ok {
		panic(fmt.Sprintf("mpi: no task %q in this workflow launch", other))
	}
	return ic
}

// TaskNames lists the other tasks this process holds intercommunicators to.
func (p *Proc) TaskNames() []string {
	names := make([]string, 0, len(p.inter))
	for n := range p.inter {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func intercommID(a, b string) uint64 {
	if a > b {
		a, b = b, a
	}
	h := fnv.New64a()
	h.Write([]byte("intercomm:"))
	h.Write([]byte(a))
	h.Write([]byte{0})
	h.Write([]byte(b))
	id := h.Sum64()
	// Reserve two consecutive ids per pair (direction split) clear of the
	// world id.
	if id <= worldCommID+1 {
		id += 2
	}
	return id &^ 1
}

// RunWorkflow launches all tasks inside one world, with contiguous world
// rank ranges per task in spec order, and waits for completion. Task names
// must be unique. This mirrors an mpiexec MPMD launch of coupled
// executables, which is how the paper runs producer and consumer tasks.
func RunWorkflow(specs []TaskSpec, opts ...Option) error {
	total := 0
	seen := map[string]bool{}
	for _, s := range specs {
		if s.Procs <= 0 {
			return fmt.Errorf("mpi: task %q has non-positive proc count %d", s.Name, s.Procs)
		}
		if seen[s.Name] {
			return fmt.Errorf("mpi: duplicate task name %q", s.Name)
		}
		seen[s.Name] = true
		total += s.Procs
	}
	if total == 0 {
		return fmt.Errorf("mpi: empty workflow")
	}
	w := NewWorld(total, opts...)

	// Precompute task world-rank ranges.
	ranges := make([][]int, len(specs))
	start := 0
	for i, s := range specs {
		r := make([]int, s.Procs)
		for j := range r {
			r[j] = start + j
		}
		ranges[i] = r
		start += s.Procs
	}

	// With a tracer attached, label each rank's track with its task: tasks
	// become Chrome-trace "processes" and task-local ranks their "threads".
	if tr := w.Tracer(); tr != nil {
		for ti, s := range specs {
			for j, wr := range ranges[ti] {
				w.SetTrack(wr, tr.NewTrack(s.Name, ti+1, fmt.Sprintf("rank %d", j), wr))
			}
		}
	}

	return w.Run(func(world *Comm) {
		wr := world.Rank()
		// Which task does this world rank belong to?
		ti := 0
		for wr >= ranges[ti][0]+len(ranges[ti]) {
			ti++
		}
		spec := specs[ti]
		taskRank := wr - ranges[ti][0]
		task := &Comm{world: w, id: deriveID(worldCommID, 0, "task", ti), ranks: ranges[ti], rank: taskRank}
		inter := make(map[string]*Intercomm, len(specs)-1)
		for oi, os := range specs {
			if oi == ti {
				continue
			}
			id := intercommID(spec.Name, os.Name)
			sideA := spec.Name < os.Name
			inter[os.Name] = NewIntercomm(w, id, ranges[ti], ranges[oi], taskRank, sideA)
		}
		spec.Main(&Proc{World: world, Task: task, TaskName: spec.Name, TaskIndex: ti, inter: inter})
	})
}
