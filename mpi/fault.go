package mpi

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"lowfive/internal/buf"
	"lowfive/internal/spin"
	"lowfive/trace"
)

// Fault injection ("chaos") layer. A FaultPlan attached to a World with
// WithFaultPlan perturbs tagged user messages — delaying, dropping,
// duplicating or corrupting them — and can crash a rank outright at its
// Nth matching send or receive. Rules may also be scoped to a single
// src→dst link (FaultRule.Dst) and model degraded links rather than lost
// messages: FaultPartition severs a link for a duration and then heals it,
// FaultThrottle caps its bandwidth. Injection is seeded and deterministic
// per rank: the same plan over the same message sequence makes the same
// decisions, so a failing chaos run can be replayed. (Link actions deliver
// asynchronously, so their arrival interleaving is scheduler-dependent;
// the layers above tolerate reordering.)
//
// Only user traffic (non-negative tags) is ever perturbed. Internal
// collective messages use reserved negative tags and are exempt, because
// the collectives have no retry protocol — chaos there would turn every
// run into a deadlock instead of exercising the recovery paths layered
// above point-to-point messaging (RPC retries, replica re-routing, file
// fallback).

// FaultAction is the kind of perturbation a FaultRule injects.
type FaultAction uint8

const (
	// FaultDelay delivers the message Rule.Delay late. The sender is not
	// stalled — delay models link latency, not head-of-line blocking — so a
	// delayed message to one peer never holds up traffic to another, and
	// two messages given the same delay may arrive reordered.
	FaultDelay FaultAction = iota
	// FaultDrop discards the message; the receiver never sees it.
	FaultDrop
	// FaultDuplicate delivers the message twice.
	FaultDuplicate
	// FaultCorrupt flips bytes in a copy of the payload before delivery
	// (the original buffer is never modified — it may be shared zero-copy).
	FaultCorrupt
	// FaultCrash kills the rank at the matching operation: the rank is
	// marked failed, peers blocked on it get a RankFailedError, and the
	// rank's goroutine terminates.
	FaultCrash
	// FaultHang parks the rank at the matching operation without marking it
	// failed: peers see a live-but-silent rank, the scenario heartbeat
	// detection exists for. The rank wakes (and dies) only when the
	// supervisor declares it failed or the world aborts.
	FaultHang
	// FaultPartition silently drops all matching traffic for Rule.Duration,
	// measured from the rule's first armed match, then heals: later matches
	// pass untouched. Scoped with Dst it severs one src→dst link; an
	// asymmetric partition is one direction only (the reverse link needs its
	// own rule). Count and Prob are ignored — a partition is a condition of
	// the link, not a per-message coin flip.
	FaultPartition
	// FaultThrottle caps a link at Rule.Bandwidth bytes per second: each
	// matching message is delivered when the link has transmitted it, so big
	// frames on a slow link take proportionally long. Deliveries on one
	// throttled link are serialized FIFO (no overtaking); the sender is
	// never stalled.
	FaultThrottle
)

// String names the action (for trace instants and error messages).
func (a FaultAction) String() string {
	switch a {
	case FaultDelay:
		return "delay"
	case FaultDrop:
		return "drop"
	case FaultDuplicate:
		return "duplicate"
	case FaultCorrupt:
		return "corrupt"
	case FaultCrash:
		return "crash"
	case FaultHang:
		return "hang"
	case FaultPartition:
		return "partition"
	case FaultThrottle:
		return "throttle"
	default:
		return fmt.Sprintf("action(%d)", uint8(a))
	}
}

// AnyRank matches every world rank in a FaultRule.
const AnyRank = -1

// DstRank encodes a world rank for FaultRule.Dst, which keeps its zero
// value meaning "any destination" (so pre-link plans are unchanged) while
// still letting a rule scope to destination rank 0.
func DstRank(r int) int { return r + 1 }

// FaultRule arms one fault. A rule matches an operation when the acting
// rank, the message tag and the operation kind all match; the rule then
// counts matching operations, lets After of them pass untouched, and fires
// on subsequent ones (each with probability Prob, at most Count times).
type FaultRule struct {
	// Action is the perturbation to inject.
	Action FaultAction
	// Rank is the world rank whose operations the rule applies to
	// (AnyRank for all). For message faults this is the sender.
	Rank int
	// Dst scopes a message fault to one destination world rank, making the
	// rule a link fault (Rank→Dst). Zero matches every destination; use
	// DstRank to name a specific one. Receive-side rules (OnRecv) have no
	// destination and never match a Dst-scoped rule.
	Dst int
	// Tag matches the message tag: a specific user tag, or AnyTag for
	// every user tag. Internal (negative) tags never match.
	Tag int
	// OnRecv makes the rule count and fire on receive operations instead
	// of sends. Only meaningful for FaultCrash (message perturbations are
	// injected sender-side).
	OnRecv bool
	// After is the number of matching operations that pass untouched
	// before the rule arms ("crash at the Nth send" = After: N-1).
	After int
	// Count caps how many times the rule fires; 0 means unlimited.
	// Bounding Count makes a lossy plan deterministically survivable:
	// a retry budget larger than Count cannot be exhausted.
	Count int
	// Prob is the probability an armed rule fires on a matching
	// operation; outside (0,1) the rule always fires.
	Prob float64
	// Delay is the injected latency for FaultDelay.
	Delay time.Duration
	// Duration is how long a FaultPartition stays severed, measured from
	// the rule's first armed match; afterwards the link heals. Zero never
	// heals.
	Duration time.Duration
	// Bandwidth is the FaultThrottle link capacity in bytes per second.
	Bandwidth float64
}

// FaultPlan is a seeded set of fault rules for one run.
type FaultPlan struct {
	// Seed derives the per-rank random streams for probabilistic rules.
	Seed int64
	// Rules are evaluated in order; the first rule that fires on an
	// operation decides its fate.
	Rules []FaultRule
}

// WithFaultPlan attaches a fault-injection plan to the world.
func WithFaultPlan(plan FaultPlan) Option {
	return func(w *World) { w.faultPlan = &plan }
}

// RankFailedError is the typed failure delivered to a rank blocked on (or
// probing for) a message from a crashed peer, instead of letting the whole
// world sit in a deadlock until the watchdog fires. It propagates by panic
// through the blocking operation, exactly like AbortedError; fault-tolerant
// layers (the RPC client) recover it and surface it as an error value.
type RankFailedError struct {
	// Rank is the world rank that failed.
	Rank int
}

func (e *RankFailedError) Error() string {
	return fmt.Sprintf("mpi: rank %d failed", e.Rank)
}

// rankCrashPanic terminates the goroutine of a rank that an injected
// FaultCrash killed. World.Run recognizes it and does not abort the world.
type rankCrashPanic struct{ rank int }

// IsHaltPanic reports whether a recovered panic value is one of the
// shutdown panics a helper goroutine performing MPI operations on behalf
// of a rank (a serve loop, an Isend) should swallow: an injected rank
// crash, a failed peer, or a world abort. Application code does not
// normally need this; layers that spawn such helpers do.
func IsHaltPanic(r any) bool {
	switch r.(type) {
	case rankCrashPanic, *RankFailedError, *AbortedError:
		return true
	}
	return false
}

// faultState is the runtime of an attached plan: per-rank op counters and
// random streams, per-rule firing counts. One mutex guards it all — chaos
// runs are about semantics, not peak message rate.
type faultState struct {
	plan FaultPlan

	mu        sync.Mutex
	rngs      []*rand.Rand // per world rank
	matched   [][]uint64   // [rule][rank]: matching ops seen
	fired     []int        // [rule]: total firings
	partStart []time.Time  // [rule]: when a FaultPartition began (zero: not yet)
	links     map[linkKey]*linkState
}

// linkKey identifies one throttled src→dst link under one rule.
type linkKey struct{ rule, src, dst int }

// linkState serializes the asynchronous deliveries of one throttled link:
// freeAt is when the link finishes transmitting everything queued so far,
// and last is closed when the most recently queued message has been
// delivered, so the next delivery can preserve FIFO order.
type linkState struct {
	freeAt time.Time
	last   chan struct{}
}

func newFaultState(plan FaultPlan, size int) *faultState {
	fs := &faultState{
		plan:      plan,
		rngs:      make([]*rand.Rand, size),
		matched:   make([][]uint64, len(plan.Rules)),
		fired:     make([]int, len(plan.Rules)),
		partStart: make([]time.Time, len(plan.Rules)),
	}
	for r := range fs.rngs {
		mix := int64(uint64(0x9e3779b97f4a7c15) * uint64(r+1))
		fs.rngs[r] = rand.New(rand.NewSource(plan.Seed ^ mix))
	}
	for i := range fs.matched {
		fs.matched[i] = make([]uint64, size)
	}
	return fs
}

// decide evaluates the plan for one operation and returns the rule that
// fires (and its index, for per-rule link state), if any. dst is the
// destination world rank for send operations and -1 for receives, where
// Dst-scoped rules never match.
func (fs *faultState) decide(rank, dst, tag int, recv bool) (FaultRule, int, bool) {
	if tag < 0 {
		return FaultRule{}, -1, false // internal collective traffic is exempt
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for i, rule := range fs.plan.Rules {
		if rule.OnRecv != recv {
			continue
		}
		if rule.Rank != AnyRank && rule.Rank != rank {
			continue
		}
		if rule.Dst != 0 && rule.Dst != DstRank(dst) {
			continue
		}
		if rule.Tag != AnyTag && rule.Tag != tag {
			continue
		}
		fs.matched[i][rank]++
		if fs.matched[i][rank] <= uint64(rule.After) {
			continue
		}
		if rule.Action == FaultPartition {
			// A partition is a time window on the link, not a counted
			// per-message fault: it opens at the first armed match and
			// closes (heals) Duration later. Count and Prob do not apply.
			if fs.partStart[i].IsZero() {
				fs.partStart[i] = time.Now()
			}
			if rule.Duration > 0 && time.Since(fs.partStart[i]) >= rule.Duration {
				continue // healed
			}
			fs.fired[i]++
			return rule, i, true
		}
		if rule.Count > 0 && fs.fired[i] >= rule.Count {
			continue
		}
		if rule.Prob > 0 && rule.Prob < 1 && fs.rngs[rank].Float64() >= rule.Prob {
			continue
		}
		fs.fired[i]++
		return rule, i, true
	}
	return FaultRule{}, -1, false
}

// throttleSlot books one message onto a throttled link and returns its
// delivery schedule: at is when the link finishes transmitting it, after is
// the previous delivery's completion (nil for the first message, closed
// channels preserve FIFO), and done must be closed once this delivery lands.
func (fs *faultState) throttleSlot(rule, src, dst, bytes int, bw float64) (at time.Time, after <-chan struct{}, done chan struct{}) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.links == nil {
		fs.links = map[linkKey]*linkState{}
	}
	k := linkKey{rule: rule, src: src, dst: dst}
	ls := fs.links[k]
	if ls == nil {
		ls = &linkState{}
		fs.links[k] = ls
	}
	start := time.Now()
	if ls.freeAt.After(start) {
		start = ls.freeAt
	}
	if bw <= 0 {
		bw = 1
	}
	at = start.Add(time.Duration(float64(bytes) / bw * float64(time.Second)))
	ls.freeAt = at
	after = ls.last
	done = make(chan struct{})
	ls.last = done
	return at, after, done
}

// corrupt returns a copy of data with up to four bytes flipped at seeded
// positions. A zero-length payload is returned unchanged (nothing to flip).
func (fs *faultState) corrupt(rank int, data []byte) []byte {
	if len(data) == 0 {
		return data
	}
	out := append([]byte(nil), data...)
	fs.mu.Lock()
	rng := fs.rngs[rank]
	n := 1 + rng.Intn(4)
	for i := 0; i < n; i++ {
		out[rng.Intn(len(out))] ^= 0xff
	}
	fs.mu.Unlock()
	return out
}

// faultSend runs the plan against an outgoing message on the sender's
// world rank and disposes of it: delivered now (possibly corrupted or
// twice), delivered later on another goroutine (delay, throttle), or never
// (drop, partition — the payload is released back to its pool). The clean
// path (no rule fires — the overwhelmingly common case) delivers data by
// reference with no copy. A firing crash rule does not return: the rank
// dies by panic.
func (w *World) faultSend(worldSrc, worldDst int, m *message, tr *trace.Track) {
	rule, idx, fire := w.fault.decide(worldSrc, worldDst, m.Tag, false)
	if !fire {
		w.deliver(worldDst, m)
		return
	}
	w.noteFault()
	if tr != nil {
		tr.Instant("fault", "fault."+rule.Action.String(),
			trace.I64("tag", int64(m.Tag)), trace.I64("dst", int64(worldDst)),
			trace.I64("bytes", int64(len(m.Data))))
	}
	switch rule.Action {
	case FaultDelay:
		w.deliverAsync(worldDst, m, time.Now().Add(rule.Delay), nil, nil)
	case FaultThrottle:
		at, after, done := w.fault.throttleSlot(idx, worldSrc, worldDst, len(m.Data), rule.Bandwidth)
		w.deliverAsync(worldDst, m, at, after, done)
	case FaultDrop, FaultPartition:
		buf.Release(m.Data)
	case FaultDuplicate:
		// The second delivery gets its own copy: the two receives are
		// released independently, so they must not share a pooled chunk.
		dup := append([]byte(nil), m.Data...)
		w.deliver(worldDst, m)
		w.deliver(worldDst, &message{CommID: m.CommID, Src: m.Src, WorldSrc: m.WorldSrc, Tag: m.Tag, Data: dup})
	case FaultCorrupt:
		out := w.fault.corrupt(worldSrc, m.Data)
		buf.Release(m.Data)
		m.Data = out
		w.deliver(worldDst, m)
	case FaultCrash:
		// The rank dies mid-send and never delivers: the payload's pooled
		// chunk must return to its pool, exactly as deliver() releases a
		// message addressed to a dead rank.
		buf.Release(m.Data)
		w.crash(worldSrc)
	case FaultHang:
		// A hung rank never resumes the send either (it leaves only by
		// dying), so its undelivered payload is released the same way.
		buf.Release(m.Data)
		w.hang(worldSrc)
	default:
		w.deliver(worldDst, m)
	}
}

// deliverAsync delivers m to worldDst at the given time on its own
// goroutine, modeling in-flight bytes on a slow link: the sender has
// already returned. after (if non-nil) is awaited first so a throttled
// link's deliveries cannot overtake each other; done (if non-nil) is closed
// once this delivery lands, even if the world aborted meanwhile (in which
// case the payload returns to its pool).
func (w *World) deliverAsync(worldDst int, m *message, at time.Time, after <-chan struct{}, done chan struct{}) {
	go func() {
		if done != nil {
			defer close(done)
		}
		defer func() {
			if r := recover(); r != nil {
				if !IsHaltPanic(r) {
					panic(r)
				}
				buf.Release(m.Data) // aborted world: nobody will receive it
			}
		}()
		if after != nil {
			<-after
		}
		if d := time.Until(at); d > 0 {
			spin.Wait(d)
		}
		w.deliver(worldDst, m)
	}()
}

// injectRecv runs the plan against a receive operation (crash rules only —
// message perturbations are sender-side).
func (w *World) injectRecv(worldRank, tag int, tr *trace.Track) {
	rule, _, fire := w.fault.decide(worldRank, -1, tag, true)
	if !fire {
		return
	}
	w.noteFault()
	if tr != nil {
		tr.Instant("fault", "fault."+rule.Action.String(), trace.I64("tag", int64(tag)))
	}
	switch rule.Action {
	case FaultCrash:
		w.crash(worldRank)
	case FaultHang:
		w.hang(worldRank)
	}
}

// hang parks the calling rank's goroutine until something declares it dead:
// the supervisor's heartbeat marking the rank failed, or a world abort. The
// mailbox's waiting flag stays false, so the rank looks live-but-silent —
// deadlock detection cannot see it, only the heartbeat deadline can. The
// blocked counter is still incremented so the unsupervised watchdog covers
// a hang in worlds without a supervisor.
func (w *World) hang(worldRank int) {
	w.blocked.Add(1)
	defer w.blocked.Add(-1)
	w.failMu.Lock()
	ch := w.failedCh[worldRank]
	w.failMu.Unlock()
	select {
	case <-ch:
		panic(rankCrashPanic{rank: worldRank})
	case <-w.abortCh:
		panic(&AbortedError{Err: w.abortReason()})
	}
}

// crash marks the rank failed, wakes every blocked receiver so peers
// waiting on it observe the failure, and kills the calling goroutine.
func (w *World) crash(worldRank int) {
	w.markFailed(worldRank)
	panic(rankCrashPanic{rank: worldRank})
}

// markFailed records a rank failure and wakes all mailboxes so blocked
// operations re-check their peer. Under supervision it also pushes the rank
// onto the failure event stream the supervisor consumes; failMu serializes
// it against reviveRank so a failure and a revival cannot interleave on the
// same failedCh slot.
func (w *World) markFailed(worldRank int) {
	w.failMu.Lock()
	if w.failed[worldRank].Swap(true) {
		w.failMu.Unlock()
		return
	}
	w.crashed.Add(1)
	ch := w.failedCh[worldRank]
	events := w.failEvents
	w.failMu.Unlock()
	close(ch)
	if events != nil {
		select {
		case events <- worldRank:
		default:
			// The supervisor's buffer is full (it is draining); never block
			// a crashing rank's goroutine on event delivery.
			go func() { events <- worldRank }()
		}
	}
	for _, b := range w.boxes {
		b.wakeAll()
	}
}

// RankFailed reports whether a world rank has been crashed by fault
// injection.
func (w *World) RankFailed(worldRank int) bool {
	return w.failed[worldRank].Load()
}

// FailedRanks lists the world ranks that have crashed, in rank order.
func (w *World) FailedRanks() []int {
	var out []int
	for r := range w.failed {
		if w.failed[r].Load() {
			out = append(out, r)
		}
	}
	return out
}

// FailedChan returns a channel closed when the given world rank fails;
// layers parking a rank's main goroutine on an in-process condition (e.g.
// a serve session) select on it so an injected crash releases them. Read
// under failMu because reviveRank replaces the channel on restart.
func (w *World) FailedChan(worldRank int) <-chan struct{} {
	w.failMu.Lock()
	defer w.failMu.Unlock()
	return w.failedCh[worldRank]
}
