package mpi

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"lowfive/internal/buf"
	"lowfive/internal/spin"
	"lowfive/trace"
)

// Fault injection ("chaos") layer. A FaultPlan attached to a World with
// WithFaultPlan perturbs tagged user messages — delaying, dropping,
// duplicating or corrupting them — and can crash a rank outright at its
// Nth matching send or receive. Injection is seeded and deterministic per
// rank: the same plan over the same message sequence makes the same
// decisions, so a failing chaos run can be replayed.
//
// Only user traffic (non-negative tags) is ever perturbed. Internal
// collective messages use reserved negative tags and are exempt, because
// the collectives have no retry protocol — chaos there would turn every
// run into a deadlock instead of exercising the recovery paths layered
// above point-to-point messaging (RPC retries, replica re-routing, file
// fallback).

// FaultAction is the kind of perturbation a FaultRule injects.
type FaultAction uint8

const (
	// FaultDelay stalls the sender for Rule.Delay before delivery.
	FaultDelay FaultAction = iota
	// FaultDrop discards the message; the receiver never sees it.
	FaultDrop
	// FaultDuplicate delivers the message twice.
	FaultDuplicate
	// FaultCorrupt flips bytes in a copy of the payload before delivery
	// (the original buffer is never modified — it may be shared zero-copy).
	FaultCorrupt
	// FaultCrash kills the rank at the matching operation: the rank is
	// marked failed, peers blocked on it get a RankFailedError, and the
	// rank's goroutine terminates.
	FaultCrash
	// FaultHang parks the rank at the matching operation without marking it
	// failed: peers see a live-but-silent rank, the scenario heartbeat
	// detection exists for. The rank wakes (and dies) only when the
	// supervisor declares it failed or the world aborts.
	FaultHang
)

// String names the action (for trace instants and error messages).
func (a FaultAction) String() string {
	switch a {
	case FaultDelay:
		return "delay"
	case FaultDrop:
		return "drop"
	case FaultDuplicate:
		return "duplicate"
	case FaultCorrupt:
		return "corrupt"
	case FaultCrash:
		return "crash"
	case FaultHang:
		return "hang"
	default:
		return fmt.Sprintf("action(%d)", uint8(a))
	}
}

// AnyRank matches every world rank in a FaultRule.
const AnyRank = -1

// FaultRule arms one fault. A rule matches an operation when the acting
// rank, the message tag and the operation kind all match; the rule then
// counts matching operations, lets After of them pass untouched, and fires
// on subsequent ones (each with probability Prob, at most Count times).
type FaultRule struct {
	// Action is the perturbation to inject.
	Action FaultAction
	// Rank is the world rank whose operations the rule applies to
	// (AnyRank for all). For message faults this is the sender.
	Rank int
	// Tag matches the message tag: a specific user tag, or AnyTag for
	// every user tag. Internal (negative) tags never match.
	Tag int
	// OnRecv makes the rule count and fire on receive operations instead
	// of sends. Only meaningful for FaultCrash (message perturbations are
	// injected sender-side).
	OnRecv bool
	// After is the number of matching operations that pass untouched
	// before the rule arms ("crash at the Nth send" = After: N-1).
	After int
	// Count caps how many times the rule fires; 0 means unlimited.
	// Bounding Count makes a lossy plan deterministically survivable:
	// a retry budget larger than Count cannot be exhausted.
	Count int
	// Prob is the probability an armed rule fires on a matching
	// operation; outside (0,1) the rule always fires.
	Prob float64
	// Delay is the injected latency for FaultDelay.
	Delay time.Duration
}

// FaultPlan is a seeded set of fault rules for one run.
type FaultPlan struct {
	// Seed derives the per-rank random streams for probabilistic rules.
	Seed int64
	// Rules are evaluated in order; the first rule that fires on an
	// operation decides its fate.
	Rules []FaultRule
}

// WithFaultPlan attaches a fault-injection plan to the world.
func WithFaultPlan(plan FaultPlan) Option {
	return func(w *World) { w.faultPlan = &plan }
}

// RankFailedError is the typed failure delivered to a rank blocked on (or
// probing for) a message from a crashed peer, instead of letting the whole
// world sit in a deadlock until the watchdog fires. It propagates by panic
// through the blocking operation, exactly like AbortedError; fault-tolerant
// layers (the RPC client) recover it and surface it as an error value.
type RankFailedError struct {
	// Rank is the world rank that failed.
	Rank int
}

func (e *RankFailedError) Error() string {
	return fmt.Sprintf("mpi: rank %d failed", e.Rank)
}

// rankCrashPanic terminates the goroutine of a rank that an injected
// FaultCrash killed. World.Run recognizes it and does not abort the world.
type rankCrashPanic struct{ rank int }

// IsHaltPanic reports whether a recovered panic value is one of the
// shutdown panics a helper goroutine performing MPI operations on behalf
// of a rank (a serve loop, an Isend) should swallow: an injected rank
// crash, a failed peer, or a world abort. Application code does not
// normally need this; layers that spawn such helpers do.
func IsHaltPanic(r any) bool {
	switch r.(type) {
	case rankCrashPanic, *RankFailedError, *AbortedError:
		return true
	}
	return false
}

// faultState is the runtime of an attached plan: per-rank op counters and
// random streams, per-rule firing counts. One mutex guards it all — chaos
// runs are about semantics, not peak message rate.
type faultState struct {
	plan FaultPlan

	mu      sync.Mutex
	rngs    []*rand.Rand // per world rank
	matched [][]uint64   // [rule][rank]: matching ops seen
	fired   []int        // [rule]: total firings
}

func newFaultState(plan FaultPlan, size int) *faultState {
	fs := &faultState{
		plan:    plan,
		rngs:    make([]*rand.Rand, size),
		matched: make([][]uint64, len(plan.Rules)),
		fired:   make([]int, len(plan.Rules)),
	}
	for r := range fs.rngs {
		mix := int64(uint64(0x9e3779b97f4a7c15) * uint64(r+1))
		fs.rngs[r] = rand.New(rand.NewSource(plan.Seed ^ mix))
	}
	for i := range fs.matched {
		fs.matched[i] = make([]uint64, size)
	}
	return fs
}

// decide evaluates the plan for one operation and returns the rule that
// fires, if any.
func (fs *faultState) decide(rank, tag int, recv bool) (FaultRule, bool) {
	if tag < 0 {
		return FaultRule{}, false // internal collective traffic is exempt
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for i, rule := range fs.plan.Rules {
		if rule.OnRecv != recv {
			continue
		}
		if rule.Rank != AnyRank && rule.Rank != rank {
			continue
		}
		if rule.Tag != AnyTag && rule.Tag != tag {
			continue
		}
		fs.matched[i][rank]++
		if fs.matched[i][rank] <= uint64(rule.After) {
			continue
		}
		if rule.Count > 0 && fs.fired[i] >= rule.Count {
			continue
		}
		if rule.Prob > 0 && rule.Prob < 1 && fs.rngs[rank].Float64() >= rule.Prob {
			continue
		}
		fs.fired[i]++
		return rule, true
	}
	return FaultRule{}, false
}

// corrupt returns a copy of data with up to four bytes flipped at seeded
// positions. A zero-length payload is returned unchanged (nothing to flip).
func (fs *faultState) corrupt(rank int, data []byte) []byte {
	if len(data) == 0 {
		return data
	}
	out := append([]byte(nil), data...)
	fs.mu.Lock()
	rng := fs.rngs[rank]
	n := 1 + rng.Intn(4)
	for i := 0; i < n; i++ {
		out[rng.Intn(len(out))] ^= 0xff
	}
	fs.mu.Unlock()
	return out
}

// injectSend runs the plan against an outgoing message on the sender's
// world rank. It returns the payload to deliver and, for a duplicate rule,
// an independent second payload; deliver=false drops the message. The
// clean path (no rule fires — the overwhelmingly common case) passes data
// through by reference with no copy; a copy is made only when a rule
// actually mutates (corrupt) or re-delivers (duplicate) the message, and a
// payload the plan swallows or replaces is released back to its buffer
// pool. A firing crash rule does not return: the rank dies by panic.
func (w *World) injectSend(worldSrc, tag int, data []byte, tr *trace.Track) (payload, dupPayload []byte, deliver bool) {
	rule, fire := w.fault.decide(worldSrc, tag, false)
	if !fire {
		return data, nil, true
	}
	if tr != nil {
		tr.Instant("fault", "fault."+rule.Action.String(),
			trace.I64("tag", int64(tag)), trace.I64("bytes", int64(len(data))))
	}
	switch rule.Action {
	case FaultDelay:
		spin.Wait(rule.Delay)
		return data, nil, true
	case FaultDrop:
		buf.Release(data)
		return nil, nil, false
	case FaultDuplicate:
		// The second delivery gets its own copy: the two receives are
		// released independently, so they must not share a pooled chunk.
		return data, append([]byte(nil), data...), true
	case FaultCorrupt:
		out := w.fault.corrupt(worldSrc, data)
		buf.Release(data)
		return out, nil, true
	case FaultCrash:
		// The rank dies mid-send and never delivers: the payload's pooled
		// chunk must return to its pool, exactly as deliver() releases a
		// message addressed to a dead rank.
		buf.Release(data)
		w.crash(worldSrc)
	case FaultHang:
		// A hung rank never resumes the send either (it leaves only by
		// dying), so its undelivered payload is released the same way.
		buf.Release(data)
		w.hang(worldSrc)
	}
	return data, nil, true
}

// injectRecv runs the plan against a receive operation (crash rules only —
// message perturbations are sender-side).
func (w *World) injectRecv(worldRank, tag int, tr *trace.Track) {
	rule, fire := w.fault.decide(worldRank, tag, true)
	if !fire {
		return
	}
	if tr != nil {
		tr.Instant("fault", "fault."+rule.Action.String(), trace.I64("tag", int64(tag)))
	}
	switch rule.Action {
	case FaultCrash:
		w.crash(worldRank)
	case FaultHang:
		w.hang(worldRank)
	}
}

// hang parks the calling rank's goroutine until something declares it dead:
// the supervisor's heartbeat marking the rank failed, or a world abort. The
// mailbox's waiting flag stays false, so the rank looks live-but-silent —
// deadlock detection cannot see it, only the heartbeat deadline can. The
// blocked counter is still incremented so the unsupervised watchdog covers
// a hang in worlds without a supervisor.
func (w *World) hang(worldRank int) {
	w.blocked.Add(1)
	defer w.blocked.Add(-1)
	w.failMu.Lock()
	ch := w.failedCh[worldRank]
	w.failMu.Unlock()
	select {
	case <-ch:
		panic(rankCrashPanic{rank: worldRank})
	case <-w.abortCh:
		panic(&AbortedError{Err: w.abortReason()})
	}
}

// crash marks the rank failed, wakes every blocked receiver so peers
// waiting on it observe the failure, and kills the calling goroutine.
func (w *World) crash(worldRank int) {
	w.markFailed(worldRank)
	panic(rankCrashPanic{rank: worldRank})
}

// markFailed records a rank failure and wakes all mailboxes so blocked
// operations re-check their peer. Under supervision it also pushes the rank
// onto the failure event stream the supervisor consumes; failMu serializes
// it against reviveRank so a failure and a revival cannot interleave on the
// same failedCh slot.
func (w *World) markFailed(worldRank int) {
	w.failMu.Lock()
	if w.failed[worldRank].Swap(true) {
		w.failMu.Unlock()
		return
	}
	w.crashed.Add(1)
	ch := w.failedCh[worldRank]
	events := w.failEvents
	w.failMu.Unlock()
	close(ch)
	if events != nil {
		select {
		case events <- worldRank:
		default:
			// The supervisor's buffer is full (it is draining); never block
			// a crashing rank's goroutine on event delivery.
			go func() { events <- worldRank }()
		}
	}
	for _, b := range w.boxes {
		b.wakeAll()
	}
}

// RankFailed reports whether a world rank has been crashed by fault
// injection.
func (w *World) RankFailed(worldRank int) bool {
	return w.failed[worldRank].Load()
}

// FailedRanks lists the world ranks that have crashed, in rank order.
func (w *World) FailedRanks() []int {
	var out []int
	for r := range w.failed {
		if w.failed[r].Load() {
			out = append(out, r)
		}
	}
	return out
}

// FailedChan returns a channel closed when the given world rank fails;
// layers parking a rank's main goroutine on an in-process condition (e.g.
// a serve session) select on it so an injected crash releases them. Read
// under failMu because reviveRank replaces the channel on restart.
func (w *World) FailedChan(worldRank int) <-chan struct{} {
	w.failMu.Lock()
	defer w.failMu.Unlock()
	return w.failedCh[worldRank]
}
