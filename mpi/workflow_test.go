package mpi

import (
	"testing"
)

func TestRunWorkflowBasics(t *testing.T) {
	err := RunWorkflow([]TaskSpec{
		{Name: "producer", Procs: 3, Main: func(p *Proc) {
			if p.World.Size() != 5 {
				t.Errorf("world size %d", p.World.Size())
			}
			if p.Task.Size() != 3 {
				t.Errorf("producer task size %d", p.Task.Size())
			}
			if p.TaskName != "producer" || p.TaskIndex != 0 {
				t.Errorf("bad identity %q %d", p.TaskName, p.TaskIndex)
			}
			if p.World.Rank() != p.Task.Rank() {
				t.Errorf("producer world rank %d != task rank %d", p.World.Rank(), p.Task.Rank())
			}
		}},
		{Name: "consumer", Procs: 2, Main: func(p *Proc) {
			if p.Task.Size() != 2 {
				t.Errorf("consumer task size %d", p.Task.Size())
			}
			if p.World.Rank() != p.Task.Rank()+3 {
				t.Errorf("consumer world rank %d task rank %d", p.World.Rank(), p.Task.Rank())
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorkflowIntercomm(t *testing.T) {
	err := RunWorkflow([]TaskSpec{
		{Name: "prod", Procs: 3, Main: func(p *Proc) {
			ic := p.Intercomm("cons")
			if ic.RemoteSize() != 2 || ic.LocalSize() != 3 {
				t.Errorf("sizes local=%d remote=%d", ic.LocalSize(), ic.RemoteSize())
			}
			// Each producer sends to consumer rank (mine % 2).
			ic.Send(ic.LocalRank()%2, 5, []byte{byte(ic.LocalRank())})
			// And receives an ack addressed back to it.
			data, st := ic.Recv(AnySource, 6)
			if data[0] != byte(ic.LocalRank()) {
				t.Errorf("producer %d got ack %d from %d", ic.LocalRank(), data[0], st.Source)
			}
		}},
		{Name: "cons", Procs: 2, Main: func(p *Proc) {
			ic := p.Intercomm("prod")
			// Consumer rank 0 hears from producers 0 and 2; rank 1 from producer 1.
			n := 2 - ic.LocalRank()
			for i := 0; i < n; i++ {
				data, st := ic.Recv(AnySource, 5)
				if int(data[0]) != st.Source {
					t.Errorf("payload %d != source %d", data[0], st.Source)
				}
				ic.Send(st.Source, 6, data)
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntercommBidirectionalNoCrossMatch(t *testing.T) {
	// Rank 0 on both sides sends with the same tag simultaneously; each side
	// must receive the other's message, not its own.
	err := RunWorkflow([]TaskSpec{
		{Name: "a", Procs: 1, Main: func(p *Proc) {
			ic := p.Intercomm("b")
			ic.Send(0, 1, []byte("from-a"))
			data, _ := ic.Recv(0, 1)
			if string(data) != "from-b" {
				t.Errorf("a got %q", data)
			}
		}},
		{Name: "b", Procs: 1, Main: func(p *Proc) {
			ic := p.Intercomm("a")
			ic.Send(0, 1, []byte("from-b"))
			data, _ := ic.Recv(0, 1)
			if string(data) != "from-a" {
				t.Errorf("b got %q", data)
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestThreeTaskFanInFanOut(t *testing.T) {
	// Two producers fan in to one consumer; the consumer fans results back out.
	err := RunWorkflow([]TaskSpec{
		{Name: "p1", Procs: 2, Main: func(p *Proc) {
			ic := p.Intercomm("sink")
			ic.Send(0, 1, []byte{1})
			if _, ok := p.inter["p2"]; !ok {
				t.Error("p1 should also have an intercomm to p2")
			}
		}},
		{Name: "p2", Procs: 2, Main: func(p *Proc) {
			p.Intercomm("sink").Send(0, 1, []byte{2})
		}},
		{Name: "sink", Procs: 1, Main: func(p *Proc) {
			sum := 0
			for i := 0; i < 2; i++ {
				d, _ := p.Intercomm("p1").Recv(AnySource, 1)
				sum += int(d[0])
			}
			for i := 0; i < 2; i++ {
				d, _ := p.Intercomm("p2").Recv(AnySource, 1)
				sum += int(d[0])
			}
			if sum != 6 {
				t.Errorf("sum=%d", sum)
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorkflowValidation(t *testing.T) {
	if err := RunWorkflow(nil); err == nil {
		t.Error("empty workflow should fail")
	}
	if err := RunWorkflow([]TaskSpec{{Name: "x", Procs: 0, Main: func(*Proc) {}}}); err == nil {
		t.Error("zero procs should fail")
	}
	if err := RunWorkflow([]TaskSpec{
		{Name: "x", Procs: 1, Main: func(*Proc) {}},
		{Name: "x", Procs: 1, Main: func(*Proc) {}},
	}); err == nil {
		t.Error("duplicate names should fail")
	}
}

func TestProcTaskNames(t *testing.T) {
	err := RunWorkflow([]TaskSpec{
		{Name: "b", Procs: 1, Main: func(p *Proc) {
			names := p.TaskNames()
			if len(names) != 2 || names[0] != "a" || names[1] != "c" {
				t.Errorf("names=%v", names)
			}
		}},
		{Name: "a", Procs: 1, Main: func(*Proc) {}},
		{Name: "c", Procs: 1, Main: func(*Proc) {}},
	})
	if err != nil {
		t.Fatal(err)
	}
}
