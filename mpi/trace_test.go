package mpi

import (
	"errors"
	"strings"
	"testing"
	"time"

	"lowfive/trace"
)

// TestDeadlockErrorReportsProgress checks the watchdog's error carries a
// per-rank progress snapshot: who is blocked, on what, and for how long.
func TestDeadlockErrorReportsProgress(t *testing.T) {
	err := Run(3, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []byte("x")) // rank 1 makes progress first...
		}
		if c.Rank() == 1 {
			c.Recv(0, 7)
		}
		c.Recv(AnySource, 99) // ...then everyone blocks forever
	}, WithWatchdog(100*time.Millisecond))
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	if dl.Blocked != 3 || len(dl.Ranks) != 3 {
		t.Fatalf("Blocked=%d len(Ranks)=%d, want 3 and 3", dl.Blocked, len(dl.Ranks))
	}
	for _, p := range dl.Ranks {
		if !p.Blocked {
			t.Errorf("rank %d not marked blocked: %+v", p.Rank, p)
		}
		if p.BlockedFor <= 0 {
			t.Errorf("rank %d BlockedFor=%v, want > 0", p.Rank, p.BlockedFor)
		}
		if p.WaitTag != 99 {
			t.Errorf("rank %d waiting on tag %d, want 99", p.Rank, p.WaitTag)
		}
	}
	if dl.Ranks[1].Received != 1 {
		t.Errorf("rank 1 Received=%d, want 1", dl.Ranks[1].Received)
	}
	// The rendered message should carry the per-rank detail.
	msg := err.Error()
	for _, want := range []string{"deadlock detected", "rank 0", "tag=99"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error message missing %q:\n%s", want, msg)
		}
	}
}

// TestTracerRecordsPointToPointAndCollectives runs a tiny world with a
// tracer attached and checks sends, receives and a collective all land on
// the right ranks' tracks with byte counts.
func TestTracerRecordsPointToPointAndCollectives(t *testing.T) {
	tr := trace.New()
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 3, make([]byte, 512))
		} else {
			c.Recv(0, 3)
		}
		c.Barrier()
	}, WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	tracks := tr.Tracks()
	if len(tracks) != 2 {
		t.Fatalf("got %d tracks, want 2", len(tracks))
	}
	// Collectives are built from point-to-point messages, which record
	// their own spans too — so assert presence, not exact counts.
	perRank := make([]map[string]int, 2)
	saw512 := false
	for i, k := range tracks {
		perRank[i] = map[string]int{}
		for _, ev := range k.Events() {
			if ev.Cat != "mpi" {
				t.Errorf("unexpected category %q", ev.Cat)
			}
			perRank[i][ev.Name]++
			if ev.Name == "send" && i == 0 {
				for _, a := range ev.Args {
					if a.Key == "bytes" && a.Int == 512 {
						saw512 = true
					}
				}
			}
		}
	}
	if perRank[0]["send"] == 0 || perRank[1]["recv"] == 0 {
		t.Errorf("point-to-point spans missing: %v", perRank)
	}
	if perRank[0]["barrier"] != 1 || perRank[1]["barrier"] != 1 {
		t.Errorf("barrier spans missing: %v", perRank)
	}
	if !saw512 {
		t.Errorf("no send span with 512 bytes on rank 0: %v", perRank)
	}
}

// TestTracerOffCostsNothing just exercises the nil-tracer path: with no
// tracer attached every Track() accessor must return nil and traffic must
// still flow.
func TestTracerOffCostsNothing(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Track() != nil {
			t.Error("Track() non-nil without a tracer")
		}
		if c.Rank() == 0 {
			c.Send(1, 0, []byte("hi"))
		} else {
			c.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
