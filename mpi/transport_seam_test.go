package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"lowfive/internal/transport"
)

// The transport-seam suite runs the same rank program against every
// transport backend through a table of constructors, proving the
// collectives (and the point-to-point core beneath them) do not care
// which engine carries their frames. The chan backend is one in-proc
// world; the sock backend brings up a coordinator plus one sock world
// per rank over Unix sockets — each world an isolated endpoint exactly
// as a separate rank process would hold, exercising the full wire path
// (framing, CRC, connection reuse, coordinator rendezvous).

// transportBackend builds a world of the given size and runs main once
// per rank, returning the first error.
type transportBackend struct {
	name string
	run  func(t *testing.T, size int, main func(c *Comm)) error
}

func transportBackends() []transportBackend {
	return []transportBackend{
		{name: "chan", run: runChanBackend},
		{name: "sock", run: runSockBackend},
	}
}

func runChanBackend(t *testing.T, size int, main func(c *Comm)) error {
	t.Helper()
	return NewWorld(size).Run(main)
}

// runSockBackend forms a real sock world: one coordinator, size
// endpoints, every frame over a Unix socket. DialSock blocks on the
// world barrier, so all endpoints must dial concurrently.
func runSockBackend(t *testing.T, size int, main func(c *Comm)) error {
	t.Helper()
	coordPath := t.TempDir() + "/coord.sock"
	coord, err := transport.NewCoordinator("unix", coordPath, size)
	if err != nil {
		return err
	}
	defer coord.Close()

	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			w, err := NewSockWorld(SockWorldConfig{
				Network: "unix", Coord: coord.Addr(), Rank: r, Size: size,
			})
			if err != nil {
				errs[r] = fmt.Errorf("rank %d: dial: %w", r, err)
				return
			}
			defer w.Close()
			if err := w.RunLocal(main); err != nil {
				errs[r] = fmt.Errorf("rank %d: %w", r, err)
			}
		}(r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

func TestSeamCollectives(t *testing.T) {
	const size = 4
	for _, be := range transportBackends() {
		t.Run(be.name, func(t *testing.T) {
			err := be.run(t, size, func(c *Comm) {
				// Bcast: root's payload lands everywhere.
				got := c.Bcast(0, []byte("from-root"))
				if string(got) != "from-root" {
					panic(fmt.Sprintf("rank %d: bcast got %q", c.Rank(), got))
				}
				c.Barrier()
				// Allreduce over ranks: sum of 0..size-1.
				sum := DecodeInt64(c.Allreduce(EncodeInt64(int64(c.Rank())), SumInt64))
				if sum != size*(size-1)/2 {
					panic(fmt.Sprintf("rank %d: allreduce sum %d", c.Rank(), sum))
				}
				// Gather at the last rank.
				all := c.Gather(size-1, []byte{byte(c.Rank())})
				if c.Rank() == size-1 {
					for r, b := range all {
						if len(b) != 1 || b[0] != byte(r) {
							panic(fmt.Sprintf("gather slot %d holds %v", r, b))
						}
					}
				}
				// Alltoall: rank r sends byte r*16+d to destination d.
				mine := make([][]byte, size)
				for d := range mine {
					mine[d] = []byte{byte(c.Rank()*16 + d)}
				}
				recv, err := c.Alltoall(mine)
				if err != nil {
					panic(fmt.Sprintf("rank %d: alltoall: %v", c.Rank(), err))
				}
				for s, b := range recv {
					if len(b) != 1 || b[0] != byte(s*16+c.Rank()) {
						panic(fmt.Sprintf("rank %d: alltoall slot %d holds %v", c.Rank(), s, b))
					}
				}
				// Scatter the reverse of Gather.
				var parts [][]byte
				if c.Rank() == 0 {
					parts = make([][]byte, size)
					for r := range parts {
						parts[r] = []byte{byte(100 + r)}
					}
				}
				part := c.Scatter(0, parts)
				if len(part) != 1 || part[0] != byte(100+c.Rank()) {
					panic(fmt.Sprintf("rank %d: scatter got %v", c.Rank(), part))
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSeamPointToPoint(t *testing.T) {
	const size = 3
	for _, be := range transportBackends() {
		t.Run(be.name, func(t *testing.T) {
			err := be.run(t, size, func(c *Comm) {
				// Ring: send to the right, receive from the left, with a
				// payload naming the link; then an AnySource sweep at rank 0.
				right := (c.Rank() + 1) % size
				left := (c.Rank() + size - 1) % size
				c.Send(right, 7, []byte(fmt.Sprintf("link %d->%d", c.Rank(), right)))
				data, st := c.Recv(left, 7)
				want := fmt.Sprintf("link %d->%d", left, c.Rank())
				if string(data) != want || st.Source != left {
					panic(fmt.Sprintf("rank %d: got %q from %d", c.Rank(), data, st.Source))
				}
				c.Barrier()
				if c.Rank() == 0 {
					seen := map[int]bool{}
					for i := 1; i < size; i++ {
						data, st := c.Recv(AnySource, 9)
						if !bytes.Equal(data, []byte{byte(st.Source)}) {
							panic(fmt.Sprintf("anysource payload %v from %d", data, st.Source))
						}
						seen[st.Source] = true
					}
					if len(seen) != size-1 {
						panic(fmt.Sprintf("anysource saw %v", seen))
					}
				} else {
					c.Send(0, 9, []byte{byte(c.Rank())})
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSeamSplitAndDup(t *testing.T) {
	const size = 4
	for _, be := range transportBackends() {
		t.Run(be.name, func(t *testing.T) {
			err := be.run(t, size, func(c *Comm) {
				// Split into even/odd halves; each half runs its own
				// collective without cross-talk.
				half := c.Split(c.Rank()%2, c.Rank())
				sum := DecodeInt64(half.Allreduce(EncodeInt64(int64(c.Rank())), SumInt64))
				want := int64(0 + 2)
				if c.Rank()%2 == 1 {
					want = 1 + 3
				}
				if sum != want {
					panic(fmt.Sprintf("rank %d: split sum %d want %d", c.Rank(), sum, want))
				}
				// Dup: traffic on the duplicate never matches the parent.
				dup := c.Dup()
				if c.Rank() == 0 {
					dup.Send(1, 5, []byte("on-dup"))
					c.Send(1, 5, []byte("on-parent"))
				}
				if c.Rank() == 1 {
					fromParent, _ := c.Recv(0, 5)
					fromDup, _ := dup.Recv(0, 5)
					if string(fromParent) != "on-parent" || string(fromDup) != "on-dup" {
						panic(fmt.Sprintf("context crossover: parent=%q dup=%q", fromParent, fromDup))
					}
				}
				c.Barrier()
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSeamSockPeerDeath kills one endpoint of a live sock world and
// asserts the peer blocked on it gets the typed RankFailedError — the
// same failure surface an injected in-proc crash produces.
func TestSeamSockPeerDeath(t *testing.T) {
	const size = 2
	coordPath := t.TempDir() + "/coord.sock"
	coord, err := transport.NewCoordinator("unix", coordPath, size)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	worlds := make([]*World, size)
	var wg sync.WaitGroup
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			worlds[r], errs[r] = NewSockWorld(SockWorldConfig{
				Network: "unix", Coord: coord.Addr(), Rank: r, Size: size,
			})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	defer worlds[0].Close()

	// Rank 1 vanishes (process death = endpoint close). Rank 0, blocked in
	// Recv on it, must fail typed instead of hanging.
	done := make(chan error, 1)
	go func() {
		done <- worlds[0].RunLocal(func(c *Comm) {
			c.Recv(1, 3)
		})
	}()
	worlds[1].Close()
	err = <-done
	var rf *RankFailedError
	if !errors.As(err, &rf) || rf.Rank != 1 {
		t.Fatalf("got %v, want *RankFailedError{Rank:1}", err)
	}
	if !worlds[0].RankFailed(1) {
		t.Fatal("world 0 does not record rank 1 as failed")
	}
}
