package mpi

import (
	"time"

	"lowfive/trace"
)

// Intercomm connects two disjoint groups of ranks — in workflow terms, two
// tasks, e.g. a producer and a consumer. Point-to-point operations address
// ranks of the *remote* group, exactly like MPI intercommunicators.
type Intercomm struct {
	world  *World
	id     uint64
	local  []int // world ranks of the local group
	remote []int // world ranks of the remote group
	rank   int   // calling rank within the local group
	sideA  bool  // true on the group that was listed first at creation
	inc    uint32
}

// NewIntercomm builds one side's handle of an intercommunicator. localRanks
// and remoteRanks are world ranks; rank is the caller's index in localRanks.
// sideA must be true on exactly one of the two groups (both sides must agree,
// e.g. by ordering the groups deterministically); it disambiguates message
// direction. The id must be identical on both sides and unique per pair.
func NewIntercomm(w *World, id uint64, localRanks, remoteRanks []int, rank int, sideA bool) *Intercomm {
	return &Intercomm{world: w, id: id, local: localRanks, remote: remoteRanks, rank: rank, sideA: sideA}
}

// LocalRank returns the calling rank within the local group.
func (ic *Intercomm) LocalRank() int { return ic.rank }

// LocalSize returns the size of the local group.
func (ic *Intercomm) LocalSize() int { return len(ic.local) }

// RemoteSize returns the size of the remote group.
func (ic *Intercomm) RemoteSize() int { return len(ic.remote) }

// sendID/recvID split the context by direction so that simultaneous traffic
// A→B and B→A with equal (src, tag) never cross-matches.
func (ic *Intercomm) sendID() uint64 {
	if ic.sideA {
		return ic.id
	}
	return ic.id + 1
}

func (ic *Intercomm) recvID() uint64 {
	if ic.sideA {
		return ic.id + 1
	}
	return ic.id
}

// Track returns the calling rank's recording track, or nil when the world
// has no tracer attached.
func (ic *Intercomm) Track() *trace.Track {
	if ic.world.tracer == nil {
		return nil
	}
	return ic.world.tracks[ic.local[ic.rank]]
}

// Send delivers data to rank dest of the remote group. With a tracer
// attached, the span covers the cost-model charge time.
func (ic *Intercomm) Send(dest, tag int, data []byte) {
	tr := ic.Track()
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	w := ic.world
	w.opGate(ic.local[ic.rank], ic.inc)
	w.recordSend(ic.local[ic.rank], ic.remote[dest], len(data))
	m := &message{CommID: ic.sendID(), Src: ic.rank, WorldSrc: ic.local[ic.rank], Tag: tag, Data: data}
	if w.fault != nil {
		self := ic.local[ic.rank]
		if w.failed[self].Load() {
			panic(rankCrashPanic{rank: self})
		}
		w.faultSend(self, ic.remote[dest], m, tr)
	} else {
		w.deliver(ic.remote[dest], m)
	}
	if tr != nil {
		tr.Span("mpi", "ic.send", t0, time.Now(),
			trace.I64("dst", int64(dest)), trace.I64("tag", int64(tag)),
			trace.I64("bytes", int64(len(data))))
	}
}

// Recv blocks until a message from remote rank src (or AnySource) with the
// given tag (or AnyTag) arrives. With a tracer attached, the span covers
// the time blocked waiting.
func (ic *Intercomm) Recv(src, tag int) ([]byte, Status) {
	tr := ic.Track()
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	self := ic.local[ic.rank]
	ic.world.opGate(self, ic.inc)
	if ic.world.fault != nil {
		ic.world.injectRecv(self, tag, tr)
	}
	m := ic.world.boxes[self].take(ic.world, self, ic.recvID(), src, tag, ic.worldSrc(src), ic.inc, true)
	if tr != nil {
		tr.Span("mpi", "ic.recv", t0, time.Now(),
			trace.I64("src", int64(m.Src)), trace.I64("tag", int64(m.Tag)),
			trace.I64("bytes", int64(len(m.Data))))
	}
	return m.Data, Status{Source: m.Src, Tag: m.Tag, Bytes: len(m.Data)}
}

// TryRecv receives a matching message from the remote group if one is
// already queued, without blocking. The RPC client's timeout path polls
// with it so a lost reply surfaces as a timeout instead of a hang.
func (ic *Intercomm) TryRecv(src, tag int) ([]byte, Status, bool) {
	self := ic.local[ic.rank]
	ic.world.opGate(self, ic.inc)
	m := ic.world.boxes[self].tryTake(ic.world, self, ic.recvID(), src, tag, ic.worldSrc(src), ic.inc, true)
	if m == nil {
		return nil, Status{}, false
	}
	return m.Data, Status{Source: m.Src, Tag: m.Tag, Bytes: len(m.Data)}, true
}

// Probe blocks until a matching message from the remote group is available,
// without receiving it.
func (ic *Intercomm) Probe(src, tag int) Status {
	self := ic.local[ic.rank]
	ic.world.opGate(self, ic.inc)
	m := ic.world.boxes[self].take(ic.world, self, ic.recvID(), src, tag, ic.worldSrc(src), ic.inc, false)
	return Status{Source: m.Src, Tag: m.Tag, Bytes: len(m.Data)}
}

// Iprobe reports whether a matching message from the remote group is
// available.
func (ic *Intercomm) Iprobe(src, tag int) (Status, bool) {
	self := ic.local[ic.rank]
	ic.world.opGate(self, ic.inc)
	m := ic.world.boxes[self].tryTake(ic.world, self, ic.recvID(), src, tag, ic.worldSrc(src), ic.inc, false)
	if m == nil {
		return Status{}, false
	}
	return Status{Source: m.Src, Tag: m.Tag, Bytes: len(m.Data)}, true
}

// worldSrc maps a remote-group source rank to its world rank, or -1 for
// AnySource.
func (ic *Intercomm) worldSrc(src int) int {
	if src == AnySource {
		return -1
	}
	return ic.remote[src]
}
