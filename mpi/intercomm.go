package mpi

// Intercomm connects two disjoint groups of ranks — in workflow terms, two
// tasks, e.g. a producer and a consumer. Point-to-point operations address
// ranks of the *remote* group, exactly like MPI intercommunicators.
type Intercomm struct {
	world  *World
	id     uint64
	local  []int // world ranks of the local group
	remote []int // world ranks of the remote group
	rank   int   // calling rank within the local group
	sideA  bool  // true on the group that was listed first at creation
}

// NewIntercomm builds one side's handle of an intercommunicator. localRanks
// and remoteRanks are world ranks; rank is the caller's index in localRanks.
// sideA must be true on exactly one of the two groups (both sides must agree,
// e.g. by ordering the groups deterministically); it disambiguates message
// direction. The id must be identical on both sides and unique per pair.
func NewIntercomm(w *World, id uint64, localRanks, remoteRanks []int, rank int, sideA bool) *Intercomm {
	return &Intercomm{world: w, id: id, local: localRanks, remote: remoteRanks, rank: rank, sideA: sideA}
}

// LocalRank returns the calling rank within the local group.
func (ic *Intercomm) LocalRank() int { return ic.rank }

// LocalSize returns the size of the local group.
func (ic *Intercomm) LocalSize() int { return len(ic.local) }

// RemoteSize returns the size of the remote group.
func (ic *Intercomm) RemoteSize() int { return len(ic.remote) }

// sendID/recvID split the context by direction so that simultaneous traffic
// A→B and B→A with equal (src, tag) never cross-matches.
func (ic *Intercomm) sendID() uint64 {
	if ic.sideA {
		return ic.id
	}
	return ic.id + 1
}

func (ic *Intercomm) recvID() uint64 {
	if ic.sideA {
		return ic.id + 1
	}
	return ic.id
}

// Send delivers data to rank dest of the remote group.
func (ic *Intercomm) Send(dest, tag int, data []byte) {
	ic.world.deliver(ic.remote[dest], &message{commID: ic.sendID(), src: ic.rank, tag: tag, data: data})
}

// Recv blocks until a message from remote rank src (or AnySource) with the
// given tag (or AnyTag) arrives.
func (ic *Intercomm) Recv(src, tag int) ([]byte, Status) {
	m := ic.world.boxes[ic.local[ic.rank]].take(ic.world, ic.recvID(), src, tag, true)
	return m.data, Status{Source: m.src, Tag: m.tag, Bytes: len(m.data)}
}

// Probe blocks until a matching message from the remote group is available,
// without receiving it.
func (ic *Intercomm) Probe(src, tag int) Status {
	m := ic.world.boxes[ic.local[ic.rank]].take(ic.world, ic.recvID(), src, tag, false)
	return Status{Source: m.src, Tag: m.tag, Bytes: len(m.data)}
}

// Iprobe reports whether a matching message from the remote group is
// available.
func (ic *Intercomm) Iprobe(src, tag int) (Status, bool) {
	m := ic.world.boxes[ic.local[ic.rank]].tryTake(ic.world, ic.recvID(), src, tag, false)
	if m == nil {
		return Status{}, false
	}
	return Status{Source: m.src, Tag: m.tag, Bytes: len(m.data)}, true
}
