package mpi

import (
	"fmt"
	"sync"
	"time"

	"lowfive/trace"
)

// Workflow supervision: RunWorkflowSupervised launches the same MPMD task
// graph as RunWorkflow, but failures stop being terminal. A per-world
// monitor turns injected crashes (rankCrashPanic) and heartbeat-expired
// hangs into typed TaskFailure events, asks the Supervisor's policy what to
// do, and can tear down and relaunch a single task's ranks with fresh
// communicator incarnations while the rest of the world keeps running.
//
// The mpi layer provides mechanism only: detection, teardown, revival,
// incarnation fencing. Policy (how many restarts, backoff schedules, what
// state a restarted task resumes from) belongs to the workflow layer built
// on top.
//
// Contract for supervised tasks: a task that may be restarted must not
// participate in World-spanning collectives (its peers would deadlock at
// the barrier with a dead member); cross-task synchronization goes through
// the serve/done protocol of the VOL layers, whose RPC clients poll through
// a restart window.

// TaskFailure is the typed failure event the supervisor emits when a task
// rank crashes or its heartbeat expires. It implements error, so FailFast
// policies surface it directly from the run.
type TaskFailure struct {
	// Task is the name of the failed task.
	Task string
	// Rank is the task-local rank that failed; WorldRank its world rank.
	Rank, WorldRank int
	// Epoch is the application epoch the rank last published with
	// Proc.SetEpoch before failing (0 if it never did).
	Epoch int64
	// Attempt is how many restarts the task had already had when this
	// failure happened.
	Attempt int
	// Hung marks a heartbeat-deadline detection (a silent rank) rather
	// than a crash.
	Hung bool
}

func (f *TaskFailure) Error() string {
	kind := "crashed"
	if f.Hung {
		kind = "hung (heartbeat expired)"
	}
	return fmt.Sprintf("mpi: task %q rank %d (world rank %d) %s at epoch %d, attempt %d",
		f.Task, f.Rank, f.WorldRank, kind, f.Epoch, f.Attempt)
}

// Decision is a supervisor policy's answer to a TaskFailure.
type Decision uint8

const (
	// FailWorkflow aborts the whole world; the run returns the TaskFailure.
	FailWorkflow Decision = iota
	// DegradeTask leaves the failed rank dead and lets the rest of the
	// workflow continue on the fault-tolerant paths (replica failover, file
	// fallback). Further failures of the same task are recorded but no
	// longer consulted.
	DegradeTask
	// RestartTask tears down every rank of the failed task and relaunches
	// the task with fresh communicator incarnations.
	RestartTask
)

// Supervisor configures the failure monitor of a supervised workflow run.
// All callbacks are invoked from the single supervisor goroutine, never
// concurrently.
type Supervisor struct {
	// Heartbeat is the deadline after which a rank that is neither blocked
	// in a receive nor making message-passing progress is declared hung and
	// treated as failed. Zero disables hang detection (crashes are still
	// detected). It must exceed the longest pure-compute gap between a
	// task's MPI operations.
	Heartbeat time.Duration
	// HeartbeatPoll is how often beats are checked; defaults to
	// Heartbeat/4.
	HeartbeatPoll time.Duration
	// OnFailure decides what to do about a failure. Nil means FailWorkflow.
	OnFailure func(f TaskFailure) Decision
	// Backoff returns how long to wait before relaunching a task after its
	// attempt-th restart was decided (attempt counts from 1). Nil means no
	// delay.
	Backoff func(task string, attempt int) time.Duration
	// OnRestart is called right before a task's ranks are relaunched.
	OnRestart func(task string, attempt int)
	// StallCheck, when set, is an additional per-rank hang predicate
	// consulted on every heartbeat poll (e.g. an application-level
	// per-epoch deadline). Returning true fails the rank like an expired
	// heartbeat.
	StallCheck func(worldRank int) bool
}

// WorkflowStats is what a supervised run observed.
type WorkflowStats struct {
	// Restarts counts restarts per task name.
	Restarts map[string]int
	// Failures are the failure events policy was consulted about, in
	// detection order (teardown casualties are not separate events).
	Failures []TaskFailure
	// HungDetected counts ranks failed by heartbeat deadline or StallCheck.
	HungDetected int
}

// RestartCount is the total number of task restarts across the run.
func (s *WorkflowStats) RestartCount() int {
	n := 0
	for _, c := range s.Restarts {
		n += c
	}
	return n
}

// task lifecycle states of the supervisor loop
const (
	tsRunning     = iota // ranks live, failures consulted
	tsTearingDown        // restart decided; waiting for all ranks to die
	tsWaitBackoff        // all ranks dead; relaunch timer pending
	tsDegraded           // failures no longer consulted; survivors run on
	tsDone               // all ranks exited (possibly degraded)
	tsFailed             // terminal after an abort
)

type taskState struct {
	state    int
	gen      int // launch generation; exits carry it so stale ones are ignored
	live     int // launched goroutines not yet exited
	decided  bool
	restarts int
}

type rankExit struct {
	ti, taskRank int
	gen          int
	crashed      bool
	err          error
}

// RunWorkflowSupervised launches the tasks like RunWorkflow, supervised by
// sup. It returns the stats the monitor gathered and the first terminal
// error (a *TaskFailure under a FailFast policy), or nil if the workflow
// completed.
func RunWorkflowSupervised(specs []TaskSpec, sup Supervisor, opts ...Option) (*WorkflowStats, error) {
	stats := &WorkflowStats{Restarts: map[string]int{}}
	ranges, total, err := layoutWorkflow(specs)
	if err != nil {
		return stats, err
	}
	w := NewWorld(total, opts...)
	w.enableSupervision()
	labelTracks(w, specs, ranges)
	if w.tracks != nil {
		for r := range w.tracks {
			if w.tracks[r] == nil {
				w.tracks[r] = w.tracer.NewTrack("world", 0, fmt.Sprintf("rank %d", r), r)
			}
		}
	}

	stopWatch := make(chan struct{})
	if w.watchdog > 0 {
		go w.watch(stopWatch)
	}
	defer close(stopWatch)

	tasks := make([]*taskState, len(specs))
	taskOf := make([]int, total) // world rank -> task index
	for ti, rs := range ranges {
		tasks[ti] = &taskState{}
		for _, wr := range rs {
			taskOf[wr] = ti
		}
	}
	running := make([]bool, total)  // launched and not yet exited
	hungRanks := make(map[int]bool) // failed by heartbeat, for event labeling

	exits := make(chan rankExit, total+16)
	relaunch := make(chan int, len(specs))
	var wg sync.WaitGroup
	liveTotal := 0
	pendingTimers := 0
	aborting := false
	var finalErr error

	launch := func(ti, taskRank int) {
		ts := tasks[ti]
		wr := ranges[ti][taskRank]
		inc := w.incs[wr].Load()
		p := buildProc(w, specs, ranges, ti, taskRank, inc, ts.restarts)
		gen := ts.gen
		running[wr] = true
		ts.live++
		liveTotal++
		wg.Add(1)
		go func() {
			e := rankExit{ti: ti, taskRank: taskRank, gen: gen}
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					switch rec.(type) {
					case rankCrashPanic:
						e.crashed = true
					case *RankFailedError:
						// The rank died blocked on a crashed peer it had no
						// recovery for; under supervision that is a cascading
						// task failure for policy, not a world abort.
						e.crashed = true
					case *AbortedError:
						// World going down; nothing to report per rank.
					default:
						err, ok := rec.(error)
						if !ok {
							err = fmt.Errorf("rank %d panicked: %v", wr, rec)
						}
						e.err = err
						w.Abort(fmt.Errorf("rank %d: %v", wr, rec))
					}
				} else if w.RankFailed(wr) {
					// Fn returned normally but the rank was marked failed in
					// a helper goroutine mid-run: treat as a crash so the
					// supervisor still consults policy.
					e.crashed = true
				}
				exits <- e
			}()
			specs[ti].Main(p)
		}()
	}

	detect := func(wr int, hung bool, attempt int) *TaskFailure {
		ti := taskOf[wr]
		f := &TaskFailure{
			Task:      specs[ti].Name,
			Rank:      wr - ranges[ti][0],
			WorldRank: wr,
			Epoch:     w.Epoch(wr),
			Attempt:   attempt,
			Hung:      hung,
		}
		if tr := w.tracks; tr != nil && tr[wr] != nil {
			kind := "crash"
			if hung {
				kind = "hang"
			}
			tr[wr].Instant("supervisor", "supervisor.detect",
				trace.Str("task", f.Task), trace.I64("rank", int64(f.Rank)),
				trace.I64("epoch", f.Epoch), trace.Str("kind", kind))
		}
		return f
	}

	handleFail := func(wr int) {
		if aborting {
			return
		}
		ti := taskOf[wr]
		ts := tasks[ti]
		if ts.state != tsRunning && ts.state != tsDegraded {
			return // teardown casualty or stale event
		}
		if ts.decided {
			return
		}
		f := detect(wr, hungRanks[wr], ts.restarts)
		stats.Failures = append(stats.Failures, *f)
		if ts.state == tsDegraded {
			return // recorded, but policy no longer consulted
		}
		decision := FailWorkflow
		if sup.OnFailure != nil {
			decision = sup.OnFailure(*f)
		}
		switch decision {
		case DegradeTask:
			ts.state = tsDegraded
		case RestartTask:
			ts.decided = true
			ts.state = tsTearingDown
			// Mark every rank of the task — including ones that already
			// exited — so revival purges all mailboxes and bumps every
			// incarnation: queued pre-crash messages must never alias into
			// the relaunched generation's identically-derived comm IDs.
			for _, r := range ranges[ti] {
				w.markFailed(r)
			}
		default: // FailWorkflow
			aborting = true
			finalErr = f
			w.Abort(f)
		}
	}

	scheduleRelaunch := func(ti int) {
		ts := tasks[ti]
		ts.state = tsWaitBackoff
		attempt := ts.restarts + 1
		var d time.Duration
		if sup.Backoff != nil {
			d = sup.Backoff(specs[ti].Name, attempt)
		}
		pendingTimers++
		if d <= 0 {
			relaunch <- ti
			return
		}
		time.AfterFunc(d, func() { relaunch <- ti })
	}

	doRelaunch := func(ti int) {
		ts := tasks[ti]
		if aborting {
			ts.state = tsFailed
			return
		}
		ts.restarts++
		stats.Restarts[specs[ti].Name]++
		for _, wr := range ranges[ti] {
			w.reviveRank(wr)
			delete(hungRanks, wr)
		}
		ts.gen++
		ts.state = tsRunning
		ts.decided = false
		if sup.OnRestart != nil {
			sup.OnRestart(specs[ti].Name, ts.restarts)
		}
		wr0 := ranges[ti][0]
		if tr := w.tracks; tr != nil && tr[wr0] != nil {
			tr[wr0].Instant("supervisor", "supervisor.restart",
				trace.Str("task", specs[ti].Name), trace.I64("attempt", int64(ts.restarts)))
		}
		for j := range ranges[ti] {
			launch(ti, j)
		}
	}

	handleExit := func(e rankExit) {
		ts := tasks[e.ti]
		if e.gen != ts.gen {
			return // a previous generation's goroutine (already accounted)
		}
		wr := ranges[e.ti][e.taskRank]
		running[wr] = false
		ts.live--
		liveTotal--
		if e.err != nil && finalErr == nil {
			aborting = true
			finalErr = e.err
		}
		if e.crashed {
			handleFail(wr)
		}
		if ts.live > 0 {
			return
		}
		switch ts.state {
		case tsTearingDown:
			scheduleRelaunch(e.ti)
		case tsRunning, tsDegraded:
			ts.state = tsDone
		}
	}

	checkBeats := func() {
		if sup.Heartbeat <= 0 && sup.StallCheck == nil {
			return
		}
		now := time.Now().UnixNano()
		for wr := 0; wr < total; wr++ {
			ts := tasks[taskOf[wr]]
			if ts.state != tsRunning || !running[wr] || w.RankFailed(wr) {
				continue
			}
			stale := sup.Heartbeat > 0 && now-w.lastBeat(wr) > int64(sup.Heartbeat)
			if stale {
				// A rank legitimately blocked in a receive is not hung: it
				// wakes on delivery, peer failure, or abort. Hang detection
				// is for silent ranks the mailbox cannot see.
				if p := w.RankProgress(wr); p.Blocked {
					continue
				}
			}
			if !stale && (sup.StallCheck == nil || !sup.StallCheck(wr)) {
				continue
			}
			hungRanks[wr] = true
			stats.HungDetected++
			w.markFailed(wr)
		}
	}

	for ti := range specs {
		for j := range ranges[ti] {
			launch(ti, j)
		}
	}

	poll := sup.HeartbeatPoll
	if poll <= 0 {
		if sup.Heartbeat > 0 {
			poll = sup.Heartbeat / 4
		} else {
			poll = 50 * time.Millisecond
		}
	}
	beatTick := time.NewTicker(poll)
	defer beatTick.Stop()

	for liveTotal > 0 || pendingTimers > 0 {
		select {
		case e := <-exits:
			handleExit(e)
		case wr := <-w.failEvents:
			// Fence stale events: markFailed queues the rank before the
			// supervisor decides anything, and the select may service the
			// relaunch channel first. Only this goroutine revives ranks, so
			// an event for a rank that is no longer failed must predate its
			// revival — acting on it would double-count one incident as a
			// fresh failure of the relaunched generation.
			if w.RankFailed(wr) {
				handleFail(wr)
			}
		case ti := <-relaunch:
			pendingTimers--
			doRelaunch(ti)
		case <-beatTick.C:
			checkBeats()
		}
	}
	wg.Wait()
	if finalErr == nil && w.aborted.Load() {
		finalErr = &AbortedError{Err: w.abortReason()}
	}
	return stats, finalErr
}
