// Package mpi provides an MPI-style message-passing runtime in which every
// rank is a goroutine inside a single process.
//
// The package reproduces the MPI semantics that in situ transport layers are
// built on: tagged point-to-point messages with source/tag wildcards,
// nonblocking sends, probing, binomial-tree collectives, communicator
// splitting, and intercommunicators between task groups. An MPMD launcher
// (RunWorkflow) starts several named tasks — separate "executables" in the
// paper's terminology — inside one world and wires intercommunicators
// between them, mirroring how a workflow system launches coupled jobs.
//
// A configurable latency/bandwidth cost model (WithCostModel) charges each
// message an injection delay of alpha + bytes/beta, which is how the
// benchmark harness recreates an HPC interconnect regime on a laptop.
//
// Semantics notes, chosen to match the way MPI is used by LowFive:
//
//   - Send is buffered: it never blocks waiting for a matching receive. The
//     payload slice is handed off to the runtime; the caller must not modify
//     it afterwards (this is what makes zero-copy serves meaningful).
//   - Message order is preserved pairwise per (communicator, source, tag),
//     as MPI guarantees.
//   - Collectives must be called in the same order by all ranks of a
//     communicator, as in MPI. User tags must be non-negative; negative tags
//     are reserved for internal collective traffic.
package mpi

// AnySource matches messages from any source rank in Recv and Probe.
const AnySource = -1

// AnyTag matches messages with any non-negative (user) tag in Recv and Probe.
const AnyTag = -1

// Status describes a matched message.
type Status struct {
	// Source is the rank the message was sent from, local to the
	// communicator it was sent on.
	Source int
	// Tag is the tag the message was sent with.
	Tag int
	// Bytes is the payload length.
	Bytes int
}
