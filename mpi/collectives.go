package mpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"lowfive/trace"
)

// beginColl/endColl bracket a collective with a span on the calling rank's
// track. With tracing disabled both are no-ops (tr is nil and the clock is
// never read). The point-to-point sends and receives a collective is built
// from record their own nested spans.
func (c *Comm) beginColl() (tr *trace.Track, t0 time.Time) {
	tr = c.Track()
	if tr != nil {
		t0 = time.Now()
	}
	return
}

func endColl(tr *trace.Track, t0 time.Time, name string, bytes int64) {
	if tr != nil {
		tr.Span("mpi", name, t0, time.Now(), trace.I64("bytes", bytes))
	}
}

var errTruncated = errors.New("truncated block stream")

// Internal collective messages use negative tags derived from the per-comm
// collective sequence number, so back-to-back collectives never cross-match
// and never match user wildcards (user tags are non-negative; AnyTag is -1).

const (
	opBarrier = iota
	opBcast
	opGather
	opAllgather
	opReduce
	opAlltoall
	opScan
	opScatter
)

func intTag(seq uint64, op, round int) int {
	return -2 - int(seq*1024+uint64(op)*64+uint64(round))
}

// Barrier blocks until every rank of the communicator has entered it.
func (c *Comm) Barrier() {
	tr, t0 := c.beginColl()
	defer func() { endColl(tr, t0, "barrier", 0) }()
	c.collSeq++
	c.barrier(c.collSeq)
}

// barrier implements a dissemination barrier: log2(n) rounds of
// point-to-point notifications. A crashed peer is skipped — the surviving
// ranks still synchronize among themselves instead of hanging on a
// notification that will never come.
func (c *Comm) barrier(seq uint64) {
	n := c.Size()
	for k, round := 1, 0; k < n; k, round = k<<1, round+1 {
		dest := (c.rank + k) % n
		src := (c.rank - k%n + n) % n
		c.Send(dest, intTag(seq, opBarrier, round), nil)
		c.recvOrFailed(src, intTag(seq, opBarrier, round))
	}
}

// recvOrFailed receives like Recv but reports ok=false when the peer has
// crashed, instead of propagating the RankFailedError panic. Collectives
// that only synchronize use it to degrade gracefully.
func (c *Comm) recvOrFailed(src, tag int) (data []byte, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, failed := r.(*RankFailedError); failed {
				data, ok = nil, false
				return
			}
			panic(r)
		}
	}()
	data, _ = c.Recv(src, tag)
	return data, true
}

// Bcast broadcasts data from root to all ranks along a binomial tree and
// returns each rank's copy (the root returns its argument unchanged).
func (c *Comm) Bcast(root int, data []byte) []byte {
	tr, t0 := c.beginColl()
	defer func() { endColl(tr, t0, "bcast", int64(len(data))) }()
	c.checkRank(root)
	c.collSeq++
	seq := c.collSeq
	n := c.Size()
	// Rotate so the root is virtual rank 0.
	vrank := (c.rank - root + n) % n
	if vrank != 0 {
		// Receive from parent: clear the lowest set bit of vrank.
		parent := (vrank&(vrank-1) + root) % n
		data, _ = c.Recv(parent, intTag(seq, opBcast, 0))
	}
	// Send to children: set bits above the lowest set bit (or all bits for root).
	low := vrank & (-vrank)
	if vrank == 0 {
		low = n // no bits set; children are all powers of two below n
		for k := 1; k < n; k <<= 1 {
			c.Send((k+root)%n, intTag(seq, opBcast, 0), data)
		}
		return data
	}
	for k := 1; k < low; k <<= 1 {
		child := vrank + k
		if child < n {
			c.Send((child+root)%n, intTag(seq, opBcast, 0), data)
		}
	}
	return data
}

// Gather collects every rank's payload at root. On root the result has one
// entry per rank, in rank order; elsewhere it is nil. Payloads may have
// different lengths (gatherv semantics come for free with byte slices).
func (c *Comm) Gather(root int, data []byte) [][]byte {
	tr, t0 := c.beginColl()
	defer func() { endColl(tr, t0, "gather", int64(len(data))) }()
	c.checkRank(root)
	c.collSeq++
	return c.gatherInternal(c.collSeq, root, data)
}

func (c *Comm) gatherInternal(seq uint64, root int, data []byte) [][]byte {
	if c.rank != root {
		c.Send(root, intTag(seq, opGather, 0), data)
		return nil
	}
	out := make([][]byte, c.Size())
	out[root] = data
	for i := 0; i < c.Size()-1; i++ {
		m, st := c.Recv(AnySource, intTag(seq, opGather, 0))
		out[st.Source] = m
	}
	return out
}

// Allgather collects every rank's payload on every rank, in rank order.
func (c *Comm) Allgather(data []byte) [][]byte {
	tr, t0 := c.beginColl()
	defer func() { endColl(tr, t0, "allgather", int64(len(data))) }()
	c.collSeq++
	return c.allgatherInternal(c.collSeq, data)
}

// allgatherInternal uses a ring: n-1 steps, each forwarding the piece
// received in the previous step.
func (c *Comm) allgatherInternal(seq uint64, data []byte) [][]byte {
	n := c.Size()
	out := make([][]byte, n)
	out[c.rank] = data
	if n == 1 {
		return out
	}
	right := (c.rank + 1) % n
	left := (c.rank - 1 + n) % n
	piece := data
	owner := c.rank
	for step := 0; step < n-1; step++ {
		c.Send(right, intTag(seq, opAllgather, step), piece)
		piece, _ = c.Recv(left, intTag(seq, opAllgather, step))
		owner = (owner - 1 + n) % n
		out[owner] = piece
	}
	return out
}

// ReduceOp combines two equally-shaped payloads into one.
type ReduceOp func(a, b []byte) []byte

// Reduce combines every rank's payload at root along a binomial tree.
// The op must be associative and is applied as op(lowerRankValue, higherRankValue).
// Non-root ranks return nil.
func (c *Comm) Reduce(root int, data []byte, op ReduceOp) []byte {
	tr, t0 := c.beginColl()
	defer func() { endColl(tr, t0, "reduce", int64(len(data))) }()
	c.checkRank(root)
	c.collSeq++
	seq := c.collSeq
	n := c.Size()
	vrank := (c.rank - root + n) % n
	acc := data
	for k := 1; k < n; k <<= 1 {
		if vrank&k != 0 {
			parent := ((vrank - k) + root) % n
			c.Send(parent, intTag(seq, opReduce, 0), acc)
			if c.rank == root {
				return nil
			}
			return nil
		}
		if vrank+k < n {
			child, _ := c.Recv((vrank+k+root)%n, intTag(seq, opReduce, 0))
			acc = op(acc, child)
		}
	}
	return acc
}

// MaxInt64 is a ReduceOp over a single little-endian int64.
func MaxInt64(a, b []byte) []byte {
	if DecodeInt64(b) > DecodeInt64(a) {
		return b
	}
	return a
}

// SumInt64 is a ReduceOp over a single little-endian int64.
func SumInt64(a, b []byte) []byte { return EncodeInt64(DecodeInt64(a) + DecodeInt64(b)) }

// MaxFloat64 is a ReduceOp over a single little-endian float64.
func MaxFloat64(a, b []byte) []byte {
	if DecodeFloat64(b) > DecodeFloat64(a) {
		return b
	}
	return a
}

// SumFloat64 is a ReduceOp over a single little-endian float64.
func SumFloat64(a, b []byte) []byte { return EncodeFloat64(DecodeFloat64(a) + DecodeFloat64(b)) }

// Allreduce combines every rank's payload and distributes the result to all.
func (c *Comm) Allreduce(data []byte, op ReduceOp) []byte {
	res := c.Reduce(0, data, op)
	return c.Bcast(0, res)
}

// Alltoall sends data[i] to rank i and returns the payloads received from
// each rank, in rank order. len(data) must equal Size(). It uses the Bruck
// algorithm: ceil(log2 n) rounds of combined messages instead of n-1
// point-to-point sends, which keeps latency-bound all-to-alls (like
// LowFive's index exchange) logarithmic in the task size. A payload that
// fails to unpack (corrupt wire bytes) is returned as an error rather than
// taking down the whole world.
func (c *Comm) Alltoall(data [][]byte) ([][]byte, error) {
	tr, t0 := c.beginColl()
	defer func() { endColl(tr, t0, "alltoall", alltoallBytes(data)) }()
	n := c.Size()
	if len(data) != n {
		panic("mpi: Alltoall payload count must equal communicator size")
	}
	c.collSeq++
	seq := c.collSeq
	r := c.rank
	if n == 1 {
		return [][]byte{data[0]}, nil
	}
	// Phase 1: local rotation — temp[i] starts as the block destined to
	// rank (r+i) mod n.
	temp := make([][]byte, n)
	for i := 0; i < n; i++ {
		temp[i] = data[(r+i)%n]
	}
	// Phase 2: log2(n) combined exchanges.
	for pof2, round := 1, 0; pof2 < n; pof2, round = pof2<<1, round+1 {
		dest := (r + pof2) % n
		src := (r - pof2 + n) % n
		buf := packBlocks(temp, pof2)
		c.Send(dest, intTag(seq, opAlltoall, round), buf)
		in, _ := c.Recv(src, intTag(seq, opAlltoall, round))
		if err := unpackBlocks(temp, pof2, in); err != nil {
			return nil, fmt.Errorf("mpi: corrupt Alltoall message from rank %d: %w", src, err)
		}
	}
	// Phase 3: inverse rotation.
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		out[(r-i+n)%n] = temp[i]
	}
	return out, nil
}

// packBlocks concatenates (length-prefixed) the blocks whose index has the
// given bit set.
func packBlocks(blocks [][]byte, bit int) []byte {
	size := 0
	for i := range blocks {
		if i&bit != 0 {
			size += 8 + len(blocks[i])
		}
	}
	buf := make([]byte, 0, size)
	var hdr [8]byte
	for i := range blocks {
		if i&bit != 0 {
			binary.LittleEndian.PutUint64(hdr[:], uint64(len(blocks[i])))
			buf = append(buf, hdr[:]...)
			buf = append(buf, blocks[i]...)
		}
	}
	return buf
}

// unpackBlocks replaces the blocks whose index has the given bit set with
// the length-prefixed payloads in buf.
func unpackBlocks(blocks [][]byte, bit int, buf []byte) error {
	pos := 0
	for i := range blocks {
		if i&bit == 0 {
			continue
		}
		if pos+8 > len(buf) {
			return errTruncated
		}
		n := int(binary.LittleEndian.Uint64(buf[pos:]))
		pos += 8
		if n < 0 || pos+n > len(buf) {
			return errTruncated
		}
		blocks[i] = buf[pos : pos+n : pos+n]
		pos += n
	}
	return nil
}

// Scan computes an inclusive prefix combination: rank r returns
// op(data_0, ..., data_r). Linear chain implementation.
func (c *Comm) Scan(data []byte, op ReduceOp) []byte {
	tr, t0 := c.beginColl()
	defer func() { endColl(tr, t0, "scan", int64(len(data))) }()
	c.collSeq++
	seq := c.collSeq
	acc := data
	if c.rank > 0 {
		prev, _ := c.Recv(c.rank-1, intTag(seq, opScan, 0))
		acc = op(prev, acc)
	}
	if c.rank+1 < c.Size() {
		c.Send(c.rank+1, intTag(seq, opScan, 0), acc)
	}
	return acc
}

// Sendrecv sends to dest and receives from src in one operation, safe
// against the head-to-head exchange deadlock of paired blocking calls
// (our sends are buffered, so this is a simple sequence, but the API
// mirrors MPI_Sendrecv for ported code).
func (c *Comm) Sendrecv(dest, sendTag int, sendData []byte, src, recvTag int) ([]byte, Status) {
	c.Send(dest, sendTag, sendData)
	return c.Recv(src, recvTag)
}

// Scatter distributes data[i] from root to rank i and returns each rank's
// piece (scatterv semantics: pieces may differ in length). On non-root
// ranks data is ignored.
func (c *Comm) Scatter(root int, data [][]byte) []byte {
	tr, t0 := c.beginColl()
	defer func() { endColl(tr, t0, "scatter", alltoallBytes(data)) }()
	c.checkRank(root)
	c.collSeq++
	seq := c.collSeq
	if c.rank == root {
		if len(data) != c.Size() {
			panic("mpi: Scatter payload count must equal communicator size")
		}
		for r := 0; r < c.Size(); r++ {
			if r != root {
				c.Send(r, intTag(seq, opScatter, 0), data[r])
			}
		}
		return data[root]
	}
	out, _ := c.Recv(root, intTag(seq, opScatter, 0))
	return out
}

// ExclusiveScan computes an exclusive prefix combination: rank 0 returns
// nil; rank r > 0 returns op(data_0, ..., data_{r-1}).
func (c *Comm) ExclusiveScan(data []byte, op ReduceOp) []byte {
	tr, t0 := c.beginColl()
	defer func() { endColl(tr, t0, "exscan", int64(len(data))) }()
	c.collSeq++
	seq := c.collSeq
	var prefix []byte
	if c.rank > 0 {
		prefix, _ = c.Recv(c.rank-1, intTag(seq, opScan, 1))
	}
	if c.rank+1 < c.Size() {
		next := data
		if prefix != nil {
			next = op(prefix, data)
		}
		c.Send(c.rank+1, intTag(seq, opScan, 1), next)
	}
	return prefix
}

// alltoallBytes totals the payload bytes of a per-rank payload list.
func alltoallBytes(data [][]byte) int64 {
	var n int64
	for _, d := range data {
		n += int64(len(d))
	}
	return n
}
