package mpi

import (
	"time"

	"lowfive/internal/spin"
)

// CostModel charges each message a postal-model injection cost of
// Alpha + bytes/Beta wall-clock time, recreating the latency/bandwidth
// regime of an HPC interconnect. The cost is paid by the sending goroutine
// before the message becomes visible to the receiver, so trees and
// pipelines exhibit realistic scaling behaviour.
type CostModel struct {
	// Alpha is the per-message latency.
	Alpha time.Duration
	// Beta is the per-link bandwidth in bytes per second.
	Beta float64
}

func (c *CostModel) charge(bytes int) {
	d := c.Alpha
	if c.Beta > 0 {
		d += time.Duration(float64(bytes) / c.Beta * float64(time.Second))
	}
	spin.Wait(d)
}
