package mpi

import (
	"errors"
	"testing"
	"time"
)

// pingSpecs is a single two-rank task: rank 0 sends one tagged message,
// rank 1 receives it. With a crash rule on the tag, the first attempt dies
// and a restarted attempt completes.
func pingSpecs(t *testing.T, completed *int32) []TaskSpec {
	t.Helper()
	return []TaskSpec{{
		Name:  "worker",
		Procs: 2,
		Main: func(p *Proc) {
			if p.Task.Rank() == 0 {
				p.Task.Send(1, 5, []byte("payload"))
			} else {
				data, _ := p.Task.Recv(0, 5)
				if string(data) != "payload" {
					t.Errorf("got %q", data)
				}
				*completed++
			}
		},
	}}
}

func TestSupervisedRestartAfterCrash(t *testing.T) {
	var completed int32
	plan := FaultPlan{Seed: 1, Rules: []FaultRule{
		{Action: FaultCrash, Rank: 0, Tag: 5, Count: 1},
	}}
	stats, err := RunWorkflowSupervised(pingSpecs(t, &completed),
		Supervisor{
			OnFailure: func(f TaskFailure) Decision { return RestartTask },
		},
		WithFaultPlan(plan))
	if err != nil {
		t.Fatalf("supervised run: %v", err)
	}
	if stats.Restarts["worker"] != 1 {
		t.Fatalf("Restarts[worker] = %d, want 1", stats.Restarts["worker"])
	}
	if completed != 1 {
		t.Fatalf("consumer completed %d times, want 1", completed)
	}
	if len(stats.Failures) == 0 {
		t.Fatal("no failure events recorded")
	}
	f := stats.Failures[0]
	if f.Task != "worker" || f.Hung {
		t.Fatalf("unexpected failure event %+v", f)
	}
}

func TestSupervisedFailFastTypedError(t *testing.T) {
	specs := []TaskSpec{{
		Name:  "sim",
		Procs: 2,
		Main: func(p *Proc) {
			if p.Task.Rank() == 0 {
				p.SetEpoch(3)
				p.Task.Send(1, 5, []byte("x"))
			} else {
				p.Task.Recv(0, 5)
			}
		},
	}}
	plan := FaultPlan{Seed: 1, Rules: []FaultRule{
		{Action: FaultCrash, Rank: 0, Tag: 5, Count: 1},
	}}
	_, err := RunWorkflowSupervised(specs, Supervisor{}, WithFaultPlan(plan))
	var f *TaskFailure
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want *TaskFailure", err)
	}
	if f.Task != "sim" || f.Rank != 0 || f.Epoch != 3 {
		t.Fatalf("TaskFailure = %+v, want task sim rank 0 epoch 3", f)
	}
}

func TestSupervisedHangDetectedByHeartbeat(t *testing.T) {
	var completed int32
	plan := FaultPlan{Seed: 1, Rules: []FaultRule{
		{Action: FaultHang, Rank: 0, Tag: 5, Count: 1},
	}}
	stats, err := RunWorkflowSupervised(pingSpecs(t, &completed),
		Supervisor{
			Heartbeat: 120 * time.Millisecond,
			OnFailure: func(f TaskFailure) Decision { return RestartTask },
		},
		WithFaultPlan(plan))
	if err != nil {
		t.Fatalf("supervised run: %v", err)
	}
	if stats.HungDetected == 0 {
		t.Fatal("heartbeat never fired")
	}
	if stats.Restarts["worker"] != 1 {
		t.Fatalf("Restarts[worker] = %d, want 1", stats.Restarts["worker"])
	}
	if completed != 1 {
		t.Fatalf("consumer completed %d times, want 1", completed)
	}
	hung := false
	for _, f := range stats.Failures {
		if f.Hung {
			hung = true
		}
	}
	if !hung {
		t.Fatalf("no hung failure event in %+v", stats.Failures)
	}
}

func TestSupervisedDegrade(t *testing.T) {
	var completed int32
	plan := FaultPlan{Seed: 1, Rules: []FaultRule{
		{Action: FaultCrash, Rank: 0, Tag: 5, Count: 1},
	}}
	stats, err := RunWorkflowSupervised(pingSpecs(t, &completed),
		Supervisor{
			OnFailure: func(f TaskFailure) Decision { return DegradeTask },
		},
		WithFaultPlan(plan))
	if err != nil {
		t.Fatalf("supervised run: %v", err)
	}
	if got := stats.RestartCount(); got != 0 {
		t.Fatalf("RestartCount = %d, want 0 in degraded mode", got)
	}
	if len(stats.Failures) == 0 {
		t.Fatal("no failure events recorded")
	}
	if completed != 0 {
		t.Fatalf("consumer completed %d times, want 0 (producer died, no restart)", completed)
	}
}

func TestSupervisedBackoffAndAttempts(t *testing.T) {
	// Crash the sender's first two attempts; third succeeds. Policy restarts
	// with a recorded backoff schedule.
	var completed int32
	var backoffs []int
	plan := FaultPlan{Seed: 1, Rules: []FaultRule{
		{Action: FaultCrash, Rank: 0, Tag: 5, Count: 2},
	}}
	stats, err := RunWorkflowSupervised(pingSpecs(t, &completed),
		Supervisor{
			OnFailure: func(f TaskFailure) Decision { return RestartTask },
			Backoff: func(task string, attempt int) time.Duration {
				backoffs = append(backoffs, attempt)
				return time.Duration(attempt) * time.Millisecond
			},
		},
		WithFaultPlan(plan))
	if err != nil {
		t.Fatalf("supervised run: %v", err)
	}
	if stats.Restarts["worker"] != 2 {
		t.Fatalf("Restarts[worker] = %d, want 2", stats.Restarts["worker"])
	}
	if len(backoffs) != 2 || backoffs[0] != 1 || backoffs[1] != 2 {
		t.Fatalf("backoff attempts = %v, want [1 2]", backoffs)
	}
	if completed != 1 {
		t.Fatalf("consumer completed %d times, want 1", completed)
	}
}
