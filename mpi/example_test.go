package mpi_test

import (
	"fmt"

	"lowfive/mpi"
)

// ExampleRunWorkflow launches two tasks MPMD-style and passes a message
// across their intercommunicator.
func ExampleRunWorkflow() {
	_ = mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "producer", Procs: 1, Main: func(p *mpi.Proc) {
			p.Intercomm("consumer").Send(0, 0, []byte("hello"))
		}},
		{Name: "consumer", Procs: 1, Main: func(p *mpi.Proc) {
			msg, st := p.Intercomm("producer").Recv(mpi.AnySource, mpi.AnyTag)
			fmt.Printf("consumer got %q from producer rank %d\n", msg, st.Source)
		}},
	})
	// Output:
	// consumer got "hello" from producer rank 0
}

// ExampleComm_Allreduce sums a value across four goroutine ranks.
func ExampleComm_Allreduce() {
	_ = mpi.Run(4, func(c *mpi.Comm) {
		sum := c.Allreduce(mpi.EncodeInt64(int64(c.Rank())), mpi.SumInt64)
		if c.Rank() == 0 {
			fmt.Println("sum of ranks:", mpi.DecodeInt64(sum))
		}
	})
	// Output:
	// sum of ranks: 6
}
