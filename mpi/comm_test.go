package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestSendRecvPair(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []byte("hello"))
		} else {
			data, st := c.Recv(0, 7)
			if string(data) != "hello" {
				t.Errorf("got %q", data)
			}
			if st.Source != 0 || st.Tag != 7 || st.Bytes != 5 {
				t.Errorf("bad status %+v", st)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvWildcards(t *testing.T) {
	err := Run(4, func(c *Comm) {
		if c.Rank() == 0 {
			seen := map[int]bool{}
			for i := 0; i < 3; i++ {
				data, st := c.Recv(AnySource, AnyTag)
				if string(data) != fmt.Sprintf("from %d", st.Source) {
					t.Errorf("mismatched payload %q from %d", data, st.Source)
				}
				if st.Tag != 100+st.Source {
					t.Errorf("tag %d from %d", st.Tag, st.Source)
				}
				seen[st.Source] = true
			}
			if len(seen) != 3 {
				t.Errorf("expected 3 distinct sources, got %v", seen)
			}
		} else {
			c.Send(0, 100+c.Rank(), []byte(fmt.Sprintf("from %d", c.Rank())))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessageOrderPreserved(t *testing.T) {
	const n = 100
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(1, 3, []byte{byte(i)})
			}
		} else {
			for i := 0; i < n; i++ {
				data, _ := c.Recv(0, 3)
				if data[0] != byte(i) {
					t.Fatalf("out of order: got %d want %d", data[0], i)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagSelectivity(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []byte("one"))
			c.Send(1, 2, []byte("two"))
		} else {
			// Receive tag 2 first even though tag 1 arrived first.
			data, _ := c.Recv(0, 2)
			if string(data) != "two" {
				t.Errorf("tag 2: got %q", data)
			}
			data, _ = c.Recv(0, 1)
			if string(data) != "one" {
				t.Errorf("tag 1: got %q", data)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProbeAndIprobe(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 9, []byte("abc"))
		} else {
			st := c.Probe(AnySource, AnyTag)
			if st.Source != 0 || st.Tag != 9 || st.Bytes != 3 {
				t.Errorf("probe status %+v", st)
			}
			if _, ok := c.Iprobe(0, 9); !ok {
				t.Error("iprobe should see the message")
			}
			if _, ok := c.Iprobe(0, 10); ok {
				t.Error("iprobe tag 10 should see nothing")
			}
			data, _ := c.Recv(0, 9)
			if string(data) != "abc" {
				t.Errorf("got %q", data)
			}
			if _, ok := c.Iprobe(0, 9); ok {
				t.Error("message should be consumed")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendWait(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			var reqs []*Request
			for i := 0; i < 10; i++ {
				reqs = append(reqs, c.Isend(1, i, []byte{byte(i)}))
			}
			WaitAll(reqs)
		} else {
			for i := 0; i < 10; i++ {
				data, _ := c.Recv(0, i)
				if data[0] != byte(i) {
					t.Errorf("tag %d: got %d", i, data[0])
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfSend(t *testing.T) {
	err := Run(1, func(c *Comm) {
		c.Send(0, 5, []byte("self"))
		data, _ := c.Recv(0, 5)
		if string(data) != "self" {
			t.Errorf("got %q", data)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPanicAbortsWorld(t *testing.T) {
	err := Run(3, func(c *Comm) {
		if c.Rank() == 0 {
			panic("boom")
		}
		// Other ranks block forever; the abort must wake them.
		c.Recv(0, 1)
	})
	if err == nil {
		t.Fatal("expected an error from the panicking rank")
	}
}

func TestWatchdogDetectsDeadlock(t *testing.T) {
	err := Run(2, func(c *Comm) {
		c.Recv((c.Rank()+1)%2, 1) // both ranks wait, nobody sends
	}, WithWatchdog(100*time.Millisecond))
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestCostModelDelaysDelivery(t *testing.T) {
	start := time.Now()
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 5; i++ {
				c.Send(1, 0, make([]byte, 1000))
			}
		} else {
			for i := 0; i < 5; i++ {
				c.Recv(0, 0)
			}
		}
	}, WithCostModel(5*time.Millisecond, 1e9))
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("cost model not applied: whole run took %v", d)
	}
}

func TestSplit(t *testing.T) {
	err := Run(6, func(c *Comm) {
		color := c.Rank() % 2
		sub := c.Split(color, -c.Rank()) // reverse order via key
		if sub.Size() != 3 {
			t.Errorf("split size %d", sub.Size())
		}
		// Keys are negated ranks, so the highest parent rank gets sub rank 0.
		wantRank := map[int]int{0: 2, 2: 1, 4: 0, 1: 2, 3: 1, 5: 0}[c.Rank()]
		if sub.Rank() != wantRank {
			t.Errorf("world rank %d: split rank %d want %d", c.Rank(), sub.Rank(), wantRank)
		}
		// Messages on sub do not leak between colors: everyone sends to sub
		// rank 0 on its own color.
		if sub.Rank() != 0 {
			c.Barrier() // line up with color peers... (no-op correctness aid)
			sub.Send(0, 1, []byte{byte(color)})
		} else {
			c.Barrier()
			for i := 0; i < 2; i++ {
				data, _ := sub.Recv(AnySource, 1)
				if int(data[0]) != color {
					t.Errorf("color %d received message for color %d", color, data[0])
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitUndefined(t *testing.T) {
	err := Run(4, func(c *Comm) {
		color := -1
		if c.Rank() < 2 {
			color = 0
		}
		sub := c.Split(color, 0)
		if c.Rank() < 2 {
			if sub == nil || sub.Size() != 2 {
				t.Errorf("rank %d should be in a comm of 2", c.Rank())
			}
		} else if sub != nil {
			t.Errorf("rank %d should get nil comm", c.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDupIsolatesTraffic(t *testing.T) {
	err := Run(2, func(c *Comm) {
		d := c.Dup()
		if c.Rank() == 0 {
			c.Send(1, 1, []byte("parent"))
			d.Send(1, 1, []byte("dup"))
		} else {
			// Receive from dup first; must not match the parent's message.
			data, _ := d.Recv(0, 1)
			if string(data) != "dup" {
				t.Errorf("dup got %q", data)
			}
			data, _ = c.Recv(0, 1)
			if string(data) != "parent" {
				t.Errorf("parent got %q", data)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorldRankMapping(t *testing.T) {
	err := Run(4, func(c *Comm) {
		sub := c.Split(c.Rank()/2, 0)
		want := (c.Rank()/2)*2 + sub.Rank()
		if got := sub.WorldRank(sub.Rank()); got != want {
			t.Errorf("WorldRank=%d want %d", got, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBytesHandoffNoCopy(t *testing.T) {
	// The runtime does not copy payloads; the same backing array arrives.
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			buf := []byte{1, 2, 3}
			c.Send(1, 0, buf)
		} else {
			data, _ := c.Recv(0, 0)
			if !bytes.Equal(data, []byte{1, 2, 3}) {
				t.Errorf("got %v", data)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendOverlapsWithCostModel(t *testing.T) {
	// With a cost model, k pipelined Isends should take much less wall time
	// than k sequential Sends (each costing alpha).
	const k = 8
	alpha := 20 * time.Millisecond
	var pipelined time.Duration
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			start := time.Now()
			var reqs []*Request
			for i := 0; i < k; i++ {
				reqs = append(reqs, c.Isend(1, i, []byte{1}))
			}
			WaitAll(reqs)
			pipelined = time.Since(start)
		} else {
			for i := 0; i < k; i++ {
				c.Recv(0, i)
			}
		}
	}, WithCostModel(alpha, 0))
	if err != nil {
		t.Fatal(err)
	}
	if pipelined > time.Duration(k)*alpha*3/4 {
		t.Errorf("pipelined Isends took %v; sequential would be %v", pipelined, time.Duration(k)*alpha)
	}
}

func TestCostModelBandwidthTerm(t *testing.T) {
	// 1 MB at 10 MB/s should cost ~100ms.
	start := time.Now()
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]byte, 1<<20))
		} else {
			c.Recv(0, 0)
		}
	}, WithCostModel(0, 10e6))
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 80*time.Millisecond {
		t.Errorf("bandwidth term not applied: %v", d)
	}
}

func TestIntercommProbe(t *testing.T) {
	err := RunWorkflow([]TaskSpec{
		{Name: "a", Procs: 1, Main: func(p *Proc) {
			ic := p.Intercomm("b")
			ic.Send(0, 5, []byte("xy"))
		}},
		{Name: "b", Procs: 1, Main: func(p *Proc) {
			ic := p.Intercomm("a")
			st := ic.Probe(AnySource, AnyTag)
			if st.Source != 0 || st.Tag != 5 || st.Bytes != 2 {
				t.Errorf("probe %+v", st)
			}
			if _, ok := ic.Iprobe(0, 5); !ok {
				t.Error("iprobe should see it")
			}
			ic.Recv(0, 5)
			if _, ok := ic.Iprobe(0, 5); ok {
				t.Error("consumed message still visible")
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRankBoundsChecks(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() != 0 {
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("out-of-range dest should panic")
			}
		}()
		c.Send(5, 0, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceOpsHelpers(t *testing.T) {
	if DecodeInt64(MaxInt64(EncodeInt64(3), EncodeInt64(9))) != 9 {
		t.Error("MaxInt64")
	}
	if DecodeInt64(MaxInt64(EncodeInt64(9), EncodeInt64(3))) != 9 {
		t.Error("MaxInt64 reversed")
	}
	if DecodeFloat64(SumFloat64(EncodeFloat64(1.5), EncodeFloat64(2.25))) != 3.75 {
		t.Error("SumFloat64")
	}
	if DecodeFloat64(MaxFloat64(EncodeFloat64(-1), EncodeFloat64(-2))) != -1 {
		t.Error("MaxFloat64")
	}
}

// TestIsendCrashSurfacesTypedError pins the satellite fix for the old
// blanket recover in Isend's helper goroutine: an injected crash firing
// inside an async send must surface on Request.Wait as the typed
// *RankFailedError, not be silently swallowed.
func TestIsendCrashSurfacesTypedError(t *testing.T) {
	plan := FaultPlan{Seed: 1, Rules: []FaultRule{
		// Rank 0 crashes at its 3rd matching send.
		{Action: FaultCrash, Rank: 0, Tag: AnyTag, After: 2},
	}}
	var waitErr error
	var okBefore int
	err := NewWorld(2,
		WithCostModel(50*time.Microsecond, 1e9),
		WithFaultPlan(plan),
		WithWatchdog(5*time.Second),
	).Run(func(c *Comm) {
		if c.Rank() == 0 {
			var reqs []*Request
			for i := 0; i < 5; i++ {
				reqs = append(reqs, c.Isend(1, i, []byte{byte(i)}))
			}
			for _, r := range reqs {
				if e := r.Wait(); e != nil {
					waitErr = e
				} else {
					okBefore++
				}
			}
		} else {
			for i := 0; ; i++ {
				func() {
					defer func() {
						if r := recover(); r != nil {
							if _, isFailed := r.(*RankFailedError); !isFailed {
								panic(r)
							}
							// Sender crashed; stop receiving.
							i = 1 << 30
						}
					}()
					c.Recv(0, AnyTag)
				}()
				if i >= 1<<30 {
					return
				}
			}
		}
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	var rf *RankFailedError
	if !errors.As(waitErr, &rf) || rf.Rank != 0 {
		t.Fatalf("Wait returned %v; want *RankFailedError{Rank:0}", waitErr)
	}
	if okBefore == 0 {
		t.Fatal("no send completed before the injected crash")
	}
}
