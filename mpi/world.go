package mpi

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lowfive/internal/buf"
	"lowfive/internal/transport"
	"lowfive/metrics"
	"lowfive/trace"
)

// World is a set of ranks that can exchange messages. It plays the role of
// MPI_COMM_WORLD's underlying machine: it owns the mailboxes, the cost
// model, and abort/deadlock handling. Frames move through a pluggable
// transport engine: the in-proc chan engine (every rank a goroutine of
// this process — NewWorld) or the sock engine (every rank its own OS
// process — NewSockWorld).
type World struct {
	size  int
	boxes []*mailbox
	cost  *CostModel

	// xport ships outgoing frames; inbound frames land in enqueue. With the
	// chan engine the two are the same synchronous call chain.
	xport transport.Transport
	// localRank is this process's world rank under the sock engine, or -1
	// when every rank is local (chan engine).
	localRank int

	aborted  atomic.Bool
	abortErr atomic.Pointer[abortError]
	abortCh  chan struct{}

	// progress counters for the deadlock watchdog
	delivered atomic.Uint64
	blocked   atomic.Int64

	watchdog time.Duration

	// fault injection (nil when no plan is attached); failed/failedCh track
	// crashed ranks so peers blocked on them fail fast instead of hanging.
	faultPlan *FaultPlan
	fault     *faultState
	failed    []atomic.Bool
	failedCh  []chan struct{}
	crashed   atomic.Int64

	// supervision state (active only under RunWorkflowSupervised): per-rank
	// heartbeats, incarnation counters for restart, application epoch
	// markers, and the failure event stream the supervisor consumes. failMu
	// serializes crash/revive transitions so a rank is never observed
	// half-revived.
	supervised bool
	beats      []atomic.Int64  // UnixNano of each rank's last operation
	incs       []atomic.Uint32 // incarnation per rank; bumped by reviveRank
	epochs     []atomic.Int64  // application epoch marker per rank
	failMu     sync.Mutex
	failEvents chan int

	// tracer, when set, records every message-passing operation onto
	// per-world-rank tracks (one append-only buffer per rank, so recording
	// never contends across ranks). Nil tracks make recording a no-op.
	tracer *trace.Tracer
	tracks []*trace.Track

	// metrics, when set (WithMetrics), records transport-level instruments:
	// send/byte counters, a message-size histogram, fault injections fired,
	// and a dense per-link byte matrix (indexed src*size+dst — a matrix
	// rather than size² named instruments, so the hot path stays one atomic
	// add). Nil instrument handles make recording a no-op.
	metrics    *metrics.Registry
	linkBytes  []atomic.Int64
	mSends     *metrics.Counter
	mBytes     *metrics.Counter
	mMsgSize   *metrics.Histogram
	mFaults    *metrics.Counter
	mRecvs     *metrics.Counter
	mRecvBytes *metrics.Counter

	ranksOnce sync.Once
	allRanks  []int
}

type abortError struct{ err error }

// AbortedError is returned by Run when a rank panics or the world is
// aborted; the remaining ranks are woken with this error.
type AbortedError struct{ Err error }

func (e *AbortedError) Error() string { return fmt.Sprintf("mpi: world aborted: %v", e.Err) }
func (e *AbortedError) Unwrap() error { return e.Err }

// RankProgress is one rank's progress snapshot, included in DeadlockError
// so watchdog reports say what each rank was doing instead of just "all N
// ranks blocked".
type RankProgress struct {
	// Rank is the world rank.
	Rank int
	// Blocked reports whether the rank is currently inside a blocking
	// Recv/Probe.
	Blocked bool
	// BlockedFor is how long the current blocking receive has waited.
	BlockedFor time.Duration
	// WaitSrc and WaitTag are the match criteria of the blocking receive
	// (AnySource/AnyTag for wildcards); meaningless unless Blocked.
	WaitSrc, WaitTag int
	// Received counts messages this rank has successfully matched so far.
	Received uint64
	// BlockedTotal is the cumulative time this rank has spent blocked in
	// receives — the per-rank blocked-in-recv counter.
	BlockedTotal time.Duration
	// Failed reports whether the rank itself has crashed (fault injection
	// or a supervisor teardown).
	Failed bool
	// WaitWorldSrc is the world rank of the peer the blocking receive waits
	// on, or -1 for AnySource; meaningless unless Blocked.
	WaitWorldSrc int
	// WaitSrcFailed reports whether that peer has crashed — the receive can
	// only ever end in RankFailedError, which distinguishes a failure in
	// flight from a genuine deadlock among live ranks.
	WaitSrcFailed bool
}

// String renders one progress line.
func (p RankProgress) String() string {
	if p.Failed {
		return fmt.Sprintf("rank %d: crashed (%d msgs received)", p.Rank, p.Received)
	}
	if !p.Blocked {
		return fmt.Sprintf("rank %d: running (%d msgs received, blocked %s total)",
			p.Rank, p.Received, p.BlockedTotal.Round(time.Millisecond))
	}
	src := "any"
	if p.WaitSrc != AnySource {
		src = fmt.Sprintf("%d", p.WaitSrc)
	}
	tag := "any"
	if p.WaitTag != AnyTag {
		tag = fmt.Sprintf("%d", p.WaitTag)
	}
	peer := ""
	if p.WaitWorldSrc >= 0 {
		if p.WaitSrcFailed {
			peer = " [peer crashed]"
		} else {
			peer = " [peer live]"
		}
	}
	return fmt.Sprintf("rank %d: blocked %s in Recv(src=%s, tag=%s)%s (%d msgs received)",
		p.Rank, p.BlockedFor.Round(time.Millisecond), src, tag, peer, p.Received)
}

// DeadlockError is reported by the watchdog when every rank has been blocked
// in a receive with no message delivered for the watchdog interval. Ranks
// holds each rank's progress snapshot at detection time.
type DeadlockError struct {
	Blocked int
	Ranks   []RankProgress
}

func (e *DeadlockError) Error() string {
	var b strings.Builder
	crashed, waitingOnDead := 0, 0
	for _, p := range e.Ranks {
		if p.Failed {
			crashed++
		} else if p.Blocked && p.WaitSrcFailed {
			waitingOnDead++
		}
	}
	fmt.Fprintf(&b, "mpi: deadlock detected: all %d ranks blocked in Recv/Probe", e.Blocked)
	if crashed > 0 || waitingOnDead > 0 {
		fmt.Fprintf(&b, " (%d ranks crashed, %d live ranks waiting on a crashed peer)",
			crashed, waitingOnDead)
	}
	const maxLines = 8
	for i, p := range e.Ranks {
		if i == maxLines {
			fmt.Fprintf(&b, "\n  ... and %d more ranks", len(e.Ranks)-maxLines)
			break
		}
		fmt.Fprintf(&b, "\n  %s", p.String())
	}
	return b.String()
}

// Option configures a World.
type Option func(*World)

// WithCostModel attaches a network cost model: each message charges its
// sender alpha + bytes/beta of wall-clock time before delivery.
func WithCostModel(alpha time.Duration, betaBytesPerSec float64) Option {
	return func(w *World) {
		w.cost = &CostModel{Alpha: alpha, Beta: betaBytesPerSec}
	}
}

// WithWatchdog sets how long the deadlock watchdog waits with zero progress
// and all ranks blocked before aborting the world. Zero disables it.
func WithWatchdog(d time.Duration) Option {
	return func(w *World) { w.watchdog = d }
}

// WithTracer attaches an event recorder: every Send/Recv/collective is
// recorded as a span (with src/dst/tag/bytes arguments) on the calling
// rank's track. RunWorkflow names the tracks after the workflow's tasks;
// a bare World labels them "world"/"rank N".
func WithTracer(t *trace.Tracer) Option {
	return func(w *World) { w.tracer = t }
}

// WithMetrics attaches a metrics registry: every Send records into
// "mpi.sends", "mpi.send.bytes" and the "mpi.msg.bytes" size histogram,
// fault injections count into "mpi.faults.injected", and per-link byte
// totals accumulate for World.LinkBytes.
func WithMetrics(r *metrics.Registry) Option {
	return func(w *World) { w.metrics = r }
}

// NewWorld creates an in-proc world with the given number of ranks: every
// rank is a goroutine of this process and frames move over the chan
// transport engine.
func NewWorld(size int, opts ...Option) *World {
	w := newWorldCore(size, 30*time.Second, opts)
	// The chan engine reproduces the original in-proc delivery exactly:
	// the α–β cost charge on the sending goroutine, then a synchronous
	// enqueue at the destination mailbox.
	var cost func(bytes int)
	if w.cost != nil {
		cost = func(bytes int) { w.cost.charge(bytes) }
	}
	w.xport = transport.NewChan(w.enqueue, cost)
	return w
}

// newWorldCore builds the engine-independent part of a World.
func newWorldCore(size int, watchdog time.Duration, opts []Option) *World {
	if size <= 0 {
		panic("mpi: world size must be positive")
	}
	w := &World{size: size, watchdog: watchdog, localRank: -1, abortCh: make(chan struct{})}
	for _, o := range opts {
		o(w)
	}
	w.boxes = make([]*mailbox, size)
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	w.failed = make([]atomic.Bool, size)
	w.failedCh = make([]chan struct{}, size)
	for i := range w.failedCh {
		w.failedCh[i] = make(chan struct{})
	}
	w.beats = make([]atomic.Int64, size)
	w.incs = make([]atomic.Uint32, size)
	w.epochs = make([]atomic.Int64, size)
	if w.faultPlan != nil {
		w.fault = newFaultState(*w.faultPlan, size)
	}
	if w.tracer != nil {
		w.tracks = make([]*trace.Track, size)
	}
	if w.metrics != nil {
		w.linkBytes = make([]atomic.Int64, size*size)
		w.mSends = w.metrics.Counter("mpi.sends")
		w.mBytes = w.metrics.Counter("mpi.send.bytes")
		w.mMsgSize = w.metrics.Histogram("mpi.msg.bytes")
		w.mFaults = w.metrics.Counter("mpi.faults.injected")
		w.mRecvs = w.metrics.Counter("mpi.recvs")
		w.mRecvBytes = w.metrics.Counter("mpi.recv.bytes")
	}
	return w
}

// recordSend accounts one message on the metrics plane: aggregate counters,
// the size histogram, and the src→dst link-byte cell. No-op without
// WithMetrics.
func (w *World) recordSend(worldSrc, worldDst, bytes int) {
	if w.metrics == nil {
		return
	}
	w.linkBytes[worldSrc*w.size+worldDst].Add(int64(bytes))
	w.mSends.Inc()
	w.mBytes.Add(int64(bytes))
	w.mMsgSize.Record(int64(bytes))
}

// noteFault counts one fired fault-injection action. No-op without
// WithMetrics.
func (w *World) noteFault() { w.mFaults.Inc() }

// LinkBytes returns the per-link byte totals as a [src][dst] matrix, or nil
// when the world has no metrics attached.
func (w *World) LinkBytes() [][]int64 {
	if w.linkBytes == nil {
		return nil
	}
	out := make([][]int64, w.size)
	for s := 0; s < w.size; s++ {
		row := make([]int64, w.size)
		for d := 0; d < w.size; d++ {
			row[d] = w.linkBytes[s*w.size+d].Load()
		}
		out[s] = row
	}
	return out
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Tracer returns the attached tracer, or nil when tracing is disabled.
func (w *World) Tracer() *trace.Tracer { return w.tracer }

// SetTrack overrides the recording track of a world rank; RunWorkflow uses
// this to label tracks with task names ("processes") and task-local ranks
// ("threads"). It must be called before Run starts.
func (w *World) SetTrack(worldRank int, k *trace.Track) {
	if w.tracks != nil {
		w.tracks[worldRank] = k
	}
}

// track returns the recording track of a world rank (nil when disabled).
func (w *World) track(worldRank int) *trace.Track {
	if w.tracks == nil {
		return nil
	}
	return w.tracks[worldRank]
}

// Abort wakes every blocked rank with an error. It is called automatically
// when a rank panics so the remaining ranks do not deadlock.
func (w *World) Abort(err error) {
	w.abortErr.CompareAndSwap(nil, &abortError{err})
	if !w.aborted.Swap(true) {
		close(w.abortCh)
	}
	for _, b := range w.boxes {
		b.wakeAll()
	}
}

// enableSupervision turns on per-rank heartbeats, incarnation checking and
// the failure event stream. It must be called before Run.
func (w *World) enableSupervision() {
	w.supervised = true
	w.failEvents = make(chan int, 4*w.size)
	now := time.Now().UnixNano()
	for i := range w.beats {
		w.beats[i].Store(now)
	}
}

// opGate guards every communicator operation under supervision: an
// operation through a handle of a previous incarnation (a stale helper
// goroutine that outlived a restart) dies like the crashed rank it belonged
// to, and a live operation refreshes the rank's heartbeat.
func (w *World) opGate(self int, inc uint32) {
	if !w.supervised {
		return
	}
	if w.incs[self].Load() != inc {
		panic(rankCrashPanic{rank: self})
	}
	w.beats[self].Store(time.Now().UnixNano())
}

// lastBeat returns the UnixNano timestamp of the rank's last operation.
func (w *World) lastBeat(worldRank int) int64 { return w.beats[worldRank].Load() }

// reviveRank clears a crashed rank's failure state so a supervisor can
// relaunch it. The incarnation counter is bumped before the failed flag is
// cleared, so a stale goroutine of the previous incarnation that wakes
// after the revive still dies (at its next opGate or mailbox check) instead
// of impersonating the new incarnation. Every message queued at the dead
// rank is discarded — cross-incarnation traffic must never alias — and
// pooled payloads return to their pool. Returns the new incarnation.
func (w *World) reviveRank(worldRank int) uint32 {
	w.failMu.Lock()
	defer w.failMu.Unlock()
	if !w.failed[worldRank].Load() {
		return w.incs[worldRank].Load()
	}
	inc := w.incs[worldRank].Add(1)
	b := w.boxes[worldRank]
	b.mu.Lock()
	for _, m := range b.msgs {
		buf.Release(m.Data)
	}
	b.msgs = nil
	b.cond.Broadcast()
	b.mu.Unlock()
	w.failedCh[worldRank] = make(chan struct{})
	w.failed[worldRank].Store(false)
	w.crashed.Add(-1)
	w.beats[worldRank].Store(time.Now().UnixNano())
	return inc
}

// SetEpoch publishes a rank's application epoch marker; TaskFailure events
// report it so a supervisor knows where a failed task was up to.
func (w *World) SetEpoch(worldRank int, epoch int64) { w.epochs[worldRank].Store(epoch) }

// Epoch returns a rank's last published application epoch marker.
func (w *World) Epoch(worldRank int) int64 { return w.epochs[worldRank].Load() }

func (w *World) abortReason() error {
	if p := w.abortErr.Load(); p != nil {
		return p.err
	}
	return fmt.Errorf("unknown reason")
}

// Run starts size goroutines, each executing main with that rank's
// world communicator, and waits for all of them. If any rank panics, the
// world is aborted and the first panic is returned as an error.
func (w *World) Run(main func(c *Comm)) error {
	if w.tracks != nil {
		for r := range w.tracks {
			if w.tracks[r] == nil {
				w.tracks[r] = w.tracer.NewTrack("world", 0, fmt.Sprintf("rank %d", r), r)
			}
		}
	}
	comms := w.commWorld()
	var wg sync.WaitGroup
	errCh := make(chan error, w.size)
	stopWatch := make(chan struct{})
	if w.watchdog > 0 {
		go w.watch(stopWatch)
	}
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(c *Comm) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					if _, isCrash := rec.(rankCrashPanic); isCrash {
						// An injected crash kills this rank only; the rest
						// of the world keeps running (peers blocked on the
						// dead rank get a RankFailedError instead).
						return
					}
					err, ok := rec.(error)
					if !ok {
						err = fmt.Errorf("rank %d panicked: %v", c.Rank(), rec)
					}
					if _, isAbort := err.(*AbortedError); !isAbort {
						w.Abort(fmt.Errorf("rank %d: %v", c.Rank(), rec))
						errCh <- err
					}
				}
			}()
			main(c)
		}(comms[r])
	}
	wg.Wait()
	close(stopWatch)
	select {
	case err := <-errCh:
		return err
	default:
	}
	if w.aborted.Load() {
		return &AbortedError{Err: w.abortReason()}
	}
	return nil
}

// Run is shorthand for NewWorld(size, opts...).Run(main).
func Run(size int, main func(c *Comm), opts ...Option) error {
	return NewWorld(size, opts...).Run(main)
}

// commWorld builds the per-rank world communicator handles.
func (w *World) commWorld() []*Comm {
	ranks := w.worldRanks()
	comms := make([]*Comm, w.size)
	for r := 0; r < w.size; r++ {
		comms[r] = &Comm{world: w, id: worldCommID, ranks: ranks, rank: r}
	}
	return comms
}

// worldRanks returns the identity rank list [0..size). Cached so every
// world-communicator handle shares one slice.
func (w *World) worldRanks() []int {
	w.ranksOnce.Do(func() {
		w.allRanks = make([]int, w.size)
		for i := range w.allRanks {
			w.allRanks[i] = i
		}
	})
	return w.allRanks
}

func (w *World) watch(stop <-chan struct{}) {
	tick := time.NewTicker(w.watchdog)
	defer tick.Stop()
	var lastDelivered uint64
	stuckSince := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			d := w.delivered.Load()
			// Crashed ranks never block again; a world is stuck when every
			// surviving rank is blocked with no progress.
			if d != lastDelivered || w.blocked.Load() < int64(w.size)-w.crashed.Load() {
				lastDelivered = d
				stuckSince = time.Now()
				continue
			}
			if time.Since(stuckSince) >= w.watchdog {
				w.Abort(&DeadlockError{
					Blocked: int(w.blocked.Load()),
					Ranks:   w.rankProgress(),
				})
				return
			}
		}
	}
}

// message is a single in-flight message: exactly a transport frame. The
// alias keeps the chan engine zero-copy and allocation-identical to the
// pre-seam runtime — the value a sender constructs is the value the
// receiver's mailbox stores, whichever engine carried it.
type message = transport.Frame

// mailbox holds undelivered messages for one world rank, plus the rank's
// receive-progress bookkeeping for the deadlock watchdog (all guarded by
// mu, which the blocking receive path already holds).
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	msgs []*message

	waiting          bool
	waitSince        time.Time
	waitSrc, waitTag int
	waitWorldSrc     int
	received         uint64
	blockedTotal     time.Duration
}

// progress snapshots the receive-progress bookkeeping.
func (b *mailbox) progress(rank int) RankProgress {
	b.mu.Lock()
	defer b.mu.Unlock()
	p := RankProgress{
		Rank:         rank,
		Blocked:      b.waiting,
		WaitSrc:      b.waitSrc,
		WaitTag:      b.waitTag,
		WaitWorldSrc: b.waitWorldSrc,
		Received:     b.received,
		BlockedTotal: b.blockedTotal,
	}
	if b.waiting {
		p.BlockedFor = time.Since(b.waitSince)
	}
	return p
}

// annotate fills a progress snapshot's failure fields from world state.
func (w *World) annotate(p *RankProgress) {
	p.Failed = w.failed[p.Rank].Load()
	if p.Blocked && p.WaitWorldSrc >= 0 {
		p.WaitSrcFailed = w.failed[p.WaitWorldSrc].Load()
	}
}

// rankProgress snapshots every rank's receive progress (for DeadlockError).
func (w *World) rankProgress() []RankProgress {
	out := make([]RankProgress, w.size)
	for r, b := range w.boxes {
		out[r] = b.progress(r)
		w.annotate(&out[r])
	}
	return out
}

// RankProgress returns one rank's current receive-progress snapshot; tools
// can poll it while a workflow runs.
func (w *World) RankProgress(worldRank int) RankProgress {
	p := w.boxes[worldRank].progress(worldRank)
	w.annotate(&p)
	return p
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) wakeAll() {
	b.mu.Lock()
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *mailbox) put(m *message) {
	b.mu.Lock()
	b.msgs = append(b.msgs, m)
	// Broadcast, not Signal: a rank may have several goroutines (e.g. serve
	// loops for different intercommunicators) blocked on this mailbox with
	// different match criteria, and Signal could wake one that does not
	// match this message, losing the wakeup for the one that does.
	b.cond.Broadcast()
	b.mu.Unlock()
}

func matches(m *message, commID uint64, src, tag int) bool {
	if m.CommID != commID {
		return false
	}
	if src != AnySource && m.Src != src {
		return false
	}
	if tag != AnyTag && m.Tag != tag {
		return false
	}
	return true
}

// take removes and returns the first message matching (commID, src, tag),
// blocking until one arrives. remove=false peeks without removing (Probe).
// self is the receiving world rank; worldSrc is the world rank the local
// src maps to (or -1 for AnySource) so a receive blocked on a crashed peer
// fails with RankFailedError instead of hanging. inc is the incarnation of
// the communicator handle performing the receive: after a supervisor
// restart, a stale waiter from the previous incarnation re-checks it on
// every wakeup and dies instead of stealing the new incarnation's messages.
func (b *mailbox) take(w *World, self int, commID uint64, src, tag, worldSrc int, inc uint32, remove bool) *message {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if w.aborted.Load() {
			panic(&AbortedError{Err: w.abortReason()})
		}
		if w.failed[self].Load() {
			// This rank was crashed by fault injection (in a helper
			// goroutine); any further operation on it dies too.
			panic(rankCrashPanic{rank: self})
		}
		if w.supervised && w.incs[self].Load() != inc {
			panic(rankCrashPanic{rank: self})
		}
		for i, m := range b.msgs {
			if matches(m, commID, src, tag) {
				if remove {
					b.msgs = append(b.msgs[:i], b.msgs[i+1:]...)
				}
				b.received++
				return m
			}
		}
		if worldSrc >= 0 && w.failed[worldSrc].Load() {
			panic(&RankFailedError{Rank: worldSrc})
		}
		if !b.waiting {
			b.waiting = true
			b.waitSince = time.Now()
		}
		b.waitSrc, b.waitTag = src, tag
		b.waitWorldSrc = worldSrc
		w.blocked.Add(1)
		b.cond.Wait()
		w.blocked.Add(-1)
		if b.waiting {
			b.waiting = false
			b.blockedTotal += time.Since(b.waitSince)
		}
	}
}

// tryTake is the nonblocking variant (Iprobe). Like take, it raises
// RankFailedError when the probed peer has crashed and nothing from it is
// queued, so polling loops learn of the failure instead of spinning.
func (b *mailbox) tryTake(w *World, self int, commID uint64, src, tag, worldSrc int, inc uint32, remove bool) *message {
	b.mu.Lock()
	defer b.mu.Unlock()
	if w.aborted.Load() {
		panic(&AbortedError{Err: w.abortReason()})
	}
	if w.failed[self].Load() {
		panic(rankCrashPanic{rank: self})
	}
	if w.supervised && w.incs[self].Load() != inc {
		panic(rankCrashPanic{rank: self})
	}
	for i, m := range b.msgs {
		if matches(m, commID, src, tag) {
			if remove {
				b.msgs = append(b.msgs[:i], b.msgs[i+1:]...)
			}
			return m
		}
	}
	if worldSrc >= 0 && w.failed[worldSrc].Load() {
		panic(&RankFailedError{Rank: worldSrc})
	}
	return nil
}

// deliver hands the message to the transport engine for the destination
// world rank. Messages to a crashed rank are dropped — the dead rank will
// never receive them, and queuing would leak. A send the engine reports
// as failed (sock engine: connection broke mid-world) marks the peer
// failed and drops the frame the same way, so transport-level peer death
// flows into the existing RankFailedError machinery.
func (w *World) deliver(worldDest int, m *message) {
	if w.aborted.Load() {
		panic(&AbortedError{Err: w.abortReason()})
	}
	if w.failed[worldDest].Load() {
		// The dead rank will never release a pooled payload; do it here so
		// its chunk returns to the pool instead of leaking.
		buf.Release(m.Data)
		return
	}
	if err := w.xport.Send(worldDest, m); err != nil {
		w.markFailed(worldDest)
		buf.Release(m.Data)
	}
}

// enqueue is the inbound half of delivery: the frame lands in the
// destination rank's mailbox. The chan engine calls it synchronously from
// the sender's goroutine; the sock engine calls it from the reader
// goroutine of the connection the frame arrived on.
func (w *World) enqueue(worldDest int, m *message) {
	w.boxes[worldDest].put(m)
	w.delivered.Add(1)
}

// enqueueInbound is the sock engine's delivery callback: enqueue plus
// receive-side accounting (the sending process recorded its half of the
// traffic in its own registry; this is the only place the receiving
// process sees the frame).
func (w *World) enqueueInbound(worldDest int, m *message) {
	if w.metrics != nil {
		w.mRecvs.Inc()
		w.mRecvBytes.Add(int64(len(m.Data)))
		if m.WorldSrc != worldDest {
			w.linkBytes[m.WorldSrc*w.size+worldDest].Add(int64(len(m.Data)))
		}
	}
	w.enqueue(worldDest, m)
}
