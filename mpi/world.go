package mpi

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lowfive/internal/buf"
	"lowfive/trace"
)

// World is a set of ranks (goroutines) that can exchange messages. It plays
// the role of MPI_COMM_WORLD's underlying machine: it owns the mailboxes,
// the cost model, and abort/deadlock handling.
type World struct {
	size  int
	boxes []*mailbox
	cost  *CostModel

	aborted  atomic.Bool
	abortErr atomic.Pointer[abortError]

	// progress counters for the deadlock watchdog
	delivered atomic.Uint64
	blocked   atomic.Int64

	watchdog time.Duration

	// fault injection (nil when no plan is attached); failed/failedCh track
	// crashed ranks so peers blocked on them fail fast instead of hanging.
	faultPlan *FaultPlan
	fault     *faultState
	failed    []atomic.Bool
	failedCh  []chan struct{}
	crashed   atomic.Int64

	// tracer, when set, records every message-passing operation onto
	// per-world-rank tracks (one append-only buffer per rank, so recording
	// never contends across ranks). Nil tracks make recording a no-op.
	tracer *trace.Tracer
	tracks []*trace.Track
}

type abortError struct{ err error }

// AbortedError is returned by Run when a rank panics or the world is
// aborted; the remaining ranks are woken with this error.
type AbortedError struct{ Err error }

func (e *AbortedError) Error() string { return fmt.Sprintf("mpi: world aborted: %v", e.Err) }
func (e *AbortedError) Unwrap() error { return e.Err }

// RankProgress is one rank's progress snapshot, included in DeadlockError
// so watchdog reports say what each rank was doing instead of just "all N
// ranks blocked".
type RankProgress struct {
	// Rank is the world rank.
	Rank int
	// Blocked reports whether the rank is currently inside a blocking
	// Recv/Probe.
	Blocked bool
	// BlockedFor is how long the current blocking receive has waited.
	BlockedFor time.Duration
	// WaitSrc and WaitTag are the match criteria of the blocking receive
	// (AnySource/AnyTag for wildcards); meaningless unless Blocked.
	WaitSrc, WaitTag int
	// Received counts messages this rank has successfully matched so far.
	Received uint64
	// BlockedTotal is the cumulative time this rank has spent blocked in
	// receives — the per-rank blocked-in-recv counter.
	BlockedTotal time.Duration
}

// String renders one progress line.
func (p RankProgress) String() string {
	if !p.Blocked {
		return fmt.Sprintf("rank %d: running (%d msgs received, blocked %s total)",
			p.Rank, p.Received, p.BlockedTotal.Round(time.Millisecond))
	}
	src := "any"
	if p.WaitSrc != AnySource {
		src = fmt.Sprintf("%d", p.WaitSrc)
	}
	tag := "any"
	if p.WaitTag != AnyTag {
		tag = fmt.Sprintf("%d", p.WaitTag)
	}
	return fmt.Sprintf("rank %d: blocked %s in Recv(src=%s, tag=%s) (%d msgs received)",
		p.Rank, p.BlockedFor.Round(time.Millisecond), src, tag, p.Received)
}

// DeadlockError is reported by the watchdog when every rank has been blocked
// in a receive with no message delivered for the watchdog interval. Ranks
// holds each rank's progress snapshot at detection time.
type DeadlockError struct {
	Blocked int
	Ranks   []RankProgress
}

func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mpi: deadlock detected: all %d ranks blocked in Recv/Probe", e.Blocked)
	const maxLines = 8
	for i, p := range e.Ranks {
		if i == maxLines {
			fmt.Fprintf(&b, "\n  ... and %d more ranks", len(e.Ranks)-maxLines)
			break
		}
		fmt.Fprintf(&b, "\n  %s", p.String())
	}
	return b.String()
}

// Option configures a World.
type Option func(*World)

// WithCostModel attaches a network cost model: each message charges its
// sender alpha + bytes/beta of wall-clock time before delivery.
func WithCostModel(alpha time.Duration, betaBytesPerSec float64) Option {
	return func(w *World) {
		w.cost = &CostModel{Alpha: alpha, Beta: betaBytesPerSec}
	}
}

// WithWatchdog sets how long the deadlock watchdog waits with zero progress
// and all ranks blocked before aborting the world. Zero disables it.
func WithWatchdog(d time.Duration) Option {
	return func(w *World) { w.watchdog = d }
}

// WithTracer attaches an event recorder: every Send/Recv/collective is
// recorded as a span (with src/dst/tag/bytes arguments) on the calling
// rank's track. RunWorkflow names the tracks after the workflow's tasks;
// a bare World labels them "world"/"rank N".
func WithTracer(t *trace.Tracer) Option {
	return func(w *World) { w.tracer = t }
}

// NewWorld creates a world with the given number of ranks.
func NewWorld(size int, opts ...Option) *World {
	if size <= 0 {
		panic("mpi: world size must be positive")
	}
	w := &World{size: size, watchdog: 30 * time.Second}
	for _, o := range opts {
		o(w)
	}
	w.boxes = make([]*mailbox, size)
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	w.failed = make([]atomic.Bool, size)
	w.failedCh = make([]chan struct{}, size)
	for i := range w.failedCh {
		w.failedCh[i] = make(chan struct{})
	}
	if w.faultPlan != nil {
		w.fault = newFaultState(*w.faultPlan, size)
	}
	if w.tracer != nil {
		w.tracks = make([]*trace.Track, size)
	}
	return w
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Tracer returns the attached tracer, or nil when tracing is disabled.
func (w *World) Tracer() *trace.Tracer { return w.tracer }

// SetTrack overrides the recording track of a world rank; RunWorkflow uses
// this to label tracks with task names ("processes") and task-local ranks
// ("threads"). It must be called before Run starts.
func (w *World) SetTrack(worldRank int, k *trace.Track) {
	if w.tracks != nil {
		w.tracks[worldRank] = k
	}
}

// track returns the recording track of a world rank (nil when disabled).
func (w *World) track(worldRank int) *trace.Track {
	if w.tracks == nil {
		return nil
	}
	return w.tracks[worldRank]
}

// Abort wakes every blocked rank with an error. It is called automatically
// when a rank panics so the remaining ranks do not deadlock.
func (w *World) Abort(err error) {
	w.abortErr.CompareAndSwap(nil, &abortError{err})
	w.aborted.Store(true)
	for _, b := range w.boxes {
		b.wakeAll()
	}
}

func (w *World) abortReason() error {
	if p := w.abortErr.Load(); p != nil {
		return p.err
	}
	return fmt.Errorf("unknown reason")
}

// Run starts size goroutines, each executing main with that rank's
// world communicator, and waits for all of them. If any rank panics, the
// world is aborted and the first panic is returned as an error.
func (w *World) Run(main func(c *Comm)) error {
	if w.tracks != nil {
		for r := range w.tracks {
			if w.tracks[r] == nil {
				w.tracks[r] = w.tracer.NewTrack("world", 0, fmt.Sprintf("rank %d", r), r)
			}
		}
	}
	comms := w.commWorld()
	var wg sync.WaitGroup
	errCh := make(chan error, w.size)
	stopWatch := make(chan struct{})
	if w.watchdog > 0 {
		go w.watch(stopWatch)
	}
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(c *Comm) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					if _, isCrash := rec.(rankCrashPanic); isCrash {
						// An injected crash kills this rank only; the rest
						// of the world keeps running (peers blocked on the
						// dead rank get a RankFailedError instead).
						return
					}
					err, ok := rec.(error)
					if !ok {
						err = fmt.Errorf("rank %d panicked: %v", c.Rank(), rec)
					}
					if _, isAbort := err.(*AbortedError); !isAbort {
						w.Abort(fmt.Errorf("rank %d: %v", c.Rank(), rec))
						errCh <- err
					}
				}
			}()
			main(c)
		}(comms[r])
	}
	wg.Wait()
	close(stopWatch)
	select {
	case err := <-errCh:
		return err
	default:
	}
	if w.aborted.Load() {
		return &AbortedError{Err: w.abortReason()}
	}
	return nil
}

// Run is shorthand for NewWorld(size, opts...).Run(main).
func Run(size int, main func(c *Comm), opts ...Option) error {
	return NewWorld(size, opts...).Run(main)
}

// commWorld builds the per-rank world communicator handles.
func (w *World) commWorld() []*Comm {
	ranks := make([]int, w.size)
	for i := range ranks {
		ranks[i] = i
	}
	comms := make([]*Comm, w.size)
	for r := 0; r < w.size; r++ {
		comms[r] = &Comm{world: w, id: worldCommID, ranks: ranks, rank: r}
	}
	return comms
}

func (w *World) watch(stop <-chan struct{}) {
	tick := time.NewTicker(w.watchdog)
	defer tick.Stop()
	var lastDelivered uint64
	stuckSince := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			d := w.delivered.Load()
			// Crashed ranks never block again; a world is stuck when every
			// surviving rank is blocked with no progress.
			if d != lastDelivered || w.blocked.Load() < int64(w.size)-w.crashed.Load() {
				lastDelivered = d
				stuckSince = time.Now()
				continue
			}
			if time.Since(stuckSince) >= w.watchdog {
				w.Abort(&DeadlockError{
					Blocked: int(w.blocked.Load()),
					Ranks:   w.rankProgress(),
				})
				return
			}
		}
	}
}

// message is a single in-flight message.
type message struct {
	commID uint64
	src    int // sender rank, local to the communicator/group
	tag    int
	data   []byte
}

// mailbox holds undelivered messages for one world rank, plus the rank's
// receive-progress bookkeeping for the deadlock watchdog (all guarded by
// mu, which the blocking receive path already holds).
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	msgs []*message

	waiting          bool
	waitSince        time.Time
	waitSrc, waitTag int
	received         uint64
	blockedTotal     time.Duration
}

// progress snapshots the receive-progress bookkeeping.
func (b *mailbox) progress(rank int) RankProgress {
	b.mu.Lock()
	defer b.mu.Unlock()
	p := RankProgress{
		Rank:         rank,
		Blocked:      b.waiting,
		WaitSrc:      b.waitSrc,
		WaitTag:      b.waitTag,
		Received:     b.received,
		BlockedTotal: b.blockedTotal,
	}
	if b.waiting {
		p.BlockedFor = time.Since(b.waitSince)
	}
	return p
}

// rankProgress snapshots every rank's receive progress (for DeadlockError).
func (w *World) rankProgress() []RankProgress {
	out := make([]RankProgress, w.size)
	for r, b := range w.boxes {
		out[r] = b.progress(r)
	}
	return out
}

// RankProgress returns one rank's current receive-progress snapshot; tools
// can poll it while a workflow runs.
func (w *World) RankProgress(worldRank int) RankProgress {
	return w.boxes[worldRank].progress(worldRank)
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) wakeAll() {
	b.mu.Lock()
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *mailbox) put(m *message) {
	b.mu.Lock()
	b.msgs = append(b.msgs, m)
	// Broadcast, not Signal: a rank may have several goroutines (e.g. serve
	// loops for different intercommunicators) blocked on this mailbox with
	// different match criteria, and Signal could wake one that does not
	// match this message, losing the wakeup for the one that does.
	b.cond.Broadcast()
	b.mu.Unlock()
}

func matches(m *message, commID uint64, src, tag int) bool {
	if m.commID != commID {
		return false
	}
	if src != AnySource && m.src != src {
		return false
	}
	if tag != AnyTag && m.tag != tag {
		return false
	}
	return true
}

// take removes and returns the first message matching (commID, src, tag),
// blocking until one arrives. remove=false peeks without removing (Probe).
// self is the receiving world rank; worldSrc is the world rank the local
// src maps to (or -1 for AnySource) so a receive blocked on a crashed peer
// fails with RankFailedError instead of hanging.
func (b *mailbox) take(w *World, self int, commID uint64, src, tag, worldSrc int, remove bool) *message {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if w.aborted.Load() {
			panic(&AbortedError{Err: w.abortReason()})
		}
		if w.failed[self].Load() {
			// This rank was crashed by fault injection (in a helper
			// goroutine); any further operation on it dies too.
			panic(rankCrashPanic{rank: self})
		}
		for i, m := range b.msgs {
			if matches(m, commID, src, tag) {
				if remove {
					b.msgs = append(b.msgs[:i], b.msgs[i+1:]...)
				}
				b.received++
				return m
			}
		}
		if worldSrc >= 0 && w.failed[worldSrc].Load() {
			panic(&RankFailedError{Rank: worldSrc})
		}
		if !b.waiting {
			b.waiting = true
			b.waitSince = time.Now()
		}
		b.waitSrc, b.waitTag = src, tag
		w.blocked.Add(1)
		b.cond.Wait()
		w.blocked.Add(-1)
		if b.waiting {
			b.waiting = false
			b.blockedTotal += time.Since(b.waitSince)
		}
	}
}

// tryTake is the nonblocking variant (Iprobe). Like take, it raises
// RankFailedError when the probed peer has crashed and nothing from it is
// queued, so polling loops learn of the failure instead of spinning.
func (b *mailbox) tryTake(w *World, self int, commID uint64, src, tag, worldSrc int, remove bool) *message {
	b.mu.Lock()
	defer b.mu.Unlock()
	if w.aborted.Load() {
		panic(&AbortedError{Err: w.abortReason()})
	}
	if w.failed[self].Load() {
		panic(rankCrashPanic{rank: self})
	}
	for i, m := range b.msgs {
		if matches(m, commID, src, tag) {
			if remove {
				b.msgs = append(b.msgs[:i], b.msgs[i+1:]...)
			}
			return m
		}
	}
	if worldSrc >= 0 && w.failed[worldSrc].Load() {
		panic(&RankFailedError{Rank: worldSrc})
	}
	return nil
}

// deliver charges the cost model and enqueues the message at the
// destination world rank. Messages to a crashed rank are dropped — the
// dead rank will never receive them, and queuing would leak.
func (w *World) deliver(worldDest int, m *message) {
	if w.aborted.Load() {
		panic(&AbortedError{Err: w.abortReason()})
	}
	if w.failed[worldDest].Load() {
		// The dead rank will never release a pooled payload; do it here so
		// its chunk returns to the pool instead of leaking.
		buf.Release(m.data)
		return
	}
	if w.cost != nil {
		w.cost.charge(len(m.data))
	}
	w.boxes[worldDest].put(m)
	w.delivered.Add(1)
}
