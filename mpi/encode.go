package mpi

import (
	"encoding/binary"
	"io"
	"math"

	"lowfive/internal/transport"
)

// Small fixed-width encoding helpers used by collectives and by the
// transport layers built on top of this package, plus the message-frame
// wire codec of the sock transport re-exported at the mpi level. All
// values are little-endian.

// Frame is one transport-level message — the mailbox record of the chan
// engine and the wire unit of the sock engine. Aliased from
// internal/transport so tools above mpi can encode and decode frames
// without importing an internal package.
type Frame = transport.Frame

// FrameHeaderLen is the fixed number of bytes before a frame's payload on
// the wire.
const FrameHeaderLen = transport.FrameHeaderLen

// MaxFrameBytes caps a single frame's payload on the wire.
const MaxFrameBytes = transport.MaxFrameBytes

// Typed frame-decode errors: malformed input is reported, never panicked.
var (
	// ErrTruncatedFrame marks input shorter than its framing promises.
	ErrTruncatedFrame = transport.ErrTruncatedFrame
	// ErrBadCRC marks a frame whose checksum does not match its bytes.
	ErrBadCRC = transport.ErrBadCRC
	// ErrFrameTooBig marks a length prefix beyond MaxFrameBytes.
	ErrFrameTooBig = transport.ErrFrameTooBig
)

// AppendFrame appends the wire encoding of f to dst and returns the
// extended slice.
func AppendFrame(dst []byte, f *Frame) []byte { return transport.AppendFrame(dst, f) }

// DecodeFrame parses one frame from the front of b, returning the frame
// and the number of bytes consumed. The returned payload aliases b.
func DecodeFrame(b []byte) (Frame, int, error) { return transport.DecodeFrame(b) }

// WriteFrame writes f's wire encoding to w in a single Write call.
func WriteFrame(w io.Writer, f *Frame) error { return transport.WriteFrame(w, f) }

// ReadFrame reads one frame from r; io.EOF at a frame boundary is clean,
// a stream dying mid-frame wraps ErrTruncatedFrame.
func ReadFrame(r io.Reader) (Frame, error) { return transport.ReadFrame(r) }

// EncodeInt64 encodes v as 8 little-endian bytes.
func EncodeInt64(v int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(v))
	return b
}

// DecodeInt64 decodes 8 little-endian bytes.
func DecodeInt64(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }

// EncodeFloat64 encodes v as 8 little-endian bytes.
func EncodeFloat64(v float64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, math.Float64bits(v))
	return b
}

// DecodeFloat64 decodes 8 little-endian bytes.
func DecodeFloat64(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}
