package mpi

import (
	"encoding/binary"
	"math"
)

// Small fixed-width encoding helpers used by collectives and by the
// transport layers built on top of this package. All values are
// little-endian.

// EncodeInt64 encodes v as 8 little-endian bytes.
func EncodeInt64(v int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(v))
	return b
}

// DecodeInt64 decodes 8 little-endian bytes.
func DecodeInt64(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }

// EncodeFloat64 encodes v as 8 little-endian bytes.
func EncodeFloat64(v float64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, math.Float64bits(v))
	return b
}

// DecodeFloat64 decodes 8 little-endian bytes.
func DecodeFloat64(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}
