package nyx

import (
	"testing"

	"lowfive/h5"
	"lowfive/internal/core"
	"lowfive/internal/grid"
	"lowfive/mpi"
)

func TestHalosDeterministicAndSeparated(t *testing.T) {
	p := DefaultParams(64)
	a := p.Halos()
	b := p.Halos()
	if len(a) != p.NumHalos {
		t.Fatalf("halos=%d want %d", len(a), p.NumHalos)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("halo population must be deterministic")
		}
	}
	// Pairwise separation of at least 4 sigma so components never merge.
	for i := range a {
		for j := i + 1; j < len(a); j++ {
			d2 := 0.0
			for k := 0; k < 3; k++ {
				dx := a[i].Pos[k] - a[j].Pos[k]
				d2 += dx * dx
			}
			minSep := 4 * (a[i].Sigma + a[j].Sigma)
			if d2 < minSep*minSep {
				t.Errorf("halos %d and %d too close: d2=%.1f", i, j, d2)
			}
		}
	}
	// Different seeds give different populations.
	p2 := p
	p2.Seed = 7
	c := p2.Halos()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestSimFieldsPartitionAndPeak(t *testing.T) {
	p := DefaultParams(32)
	err := mpi.Run(4, func(c *mpi.Comm) {
		s, err := New(p, c)
		if err != nil {
			t.Error(err)
			return
		}
		field := s.Field()
		if int64(len(field)) != s.Box().NumPoints() {
			t.Errorf("field len %d box %d", len(field), s.Box().NumPoints())
		}
		// Background is 1.0; some cells must be well above it overall.
		maxLocal := float32(0)
		for _, v := range field {
			if v < 1.0 {
				t.Errorf("density %v below background", v)
				break
			}
			if v > maxLocal {
				maxLocal = v
			}
		}
		b := c.Allreduce(mpi.EncodeFloat64(float64(maxLocal)), mpi.MaxFloat64)
		if mpi.DecodeFloat64(b) < 20 {
			t.Errorf("global max density %v too low — halos missing", mpi.DecodeFloat64(b))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStepChangesField(t *testing.T) {
	p := DefaultParams(24)
	err := mpi.Run(1, func(c *mpi.Comm) {
		s, _ := New(p, c)
		before := append([]float32(nil), s.Field()...)
		s.Step()
		if s.StepIndex() != 1 {
			t.Errorf("step=%d", s.StepIndex())
		}
		changed := false
		for i, v := range s.Field() {
			if v != before[i] {
				changed = true
				break
			}
		}
		if !changed {
			t.Error("halo drift should change the field")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWriteSnapshotThroughMetadataVOL(t *testing.T) {
	p := DefaultParams(16)
	err := mpi.Run(2, func(c *mpi.Comm) {
		s, _ := New(p, c)
		vol := core.NewMetadataVOL(nil)
		fapl := h5.NewFileAccessProps(vol)
		if err := s.WriteSnapshot("snap.h5", fapl); err != nil {
			t.Error(err)
			return
		}
		// The local tree must contain the dataset with the right extent.
		f, err := h5.OpenFile("snap.h5", fapl)
		if err != nil {
			t.Error(err)
			return
		}
		ds, err := f.OpenDataset(DatasetPath)
		if err != nil {
			t.Error(err)
			return
		}
		dims := ds.Dataspace().Dims()
		if dims[0] != 16 || dims[1] != 16 || dims[2] != 16 {
			t.Errorf("dims %v", dims)
		}
		dt, data, err := ds.ReadAttribute("step")
		if err != nil || !dt.Equal(h5.I64) || h5.View[int64](data)[0] != 0 {
			t.Errorf("step attribute: %v %v %v", dt, data, err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRepackKeepsValues(t *testing.T) {
	p := DefaultParams(16)
	p.Repack = true
	err := mpi.Run(1, func(c *mpi.Comm) {
		s, _ := New(p, c)
		vol := core.NewMetadataVOL(nil)
		fapl := h5.NewFileAccessProps(vol)
		if err := s.WriteSnapshot("r.h5", fapl); err != nil {
			t.Error(err)
			return
		}
		f, _ := h5.OpenFile("r.h5", fapl)
		ds, _ := f.OpenDataset(DatasetPath)
		out := make([]float32, 16*16*16)
		if err := ds.Read(nil, nil, h5.Bytes(out)); err != nil {
			t.Error(err)
			return
		}
		for i, v := range s.Field() {
			if out[i] != v {
				t.Errorf("cell %d: %v != %v", i, out[i], v)
				break
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	err := mpi.Run(1, func(c *mpi.Comm) {
		if _, err := New(Params{GridSide: 2}, c); err == nil {
			t.Error("tiny grid should fail")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotWritesAllVariables(t *testing.T) {
	p := DefaultParams(16)
	p.FullOutput = true
	err := mpi.Run(2, func(c *mpi.Comm) {
		vol := core.NewMetadataVOL(nil)
		fapl := h5.NewFileAccessProps(vol)
		if err := (func() error {
			s, err := New(p, c)
			if err != nil {
				return err
			}
			return s.WriteSnapshot("multi.h5", fapl)
		})(); err != nil {
			t.Error(err)
			return
		}
		f, _ := h5.OpenFile("multi.h5", fapl)
		for _, path := range []string{DatasetPath, VxPath, DarkMatterPath, Level1Path} {
			ds, err := f.OpenDataset(path)
			if err != nil {
				t.Errorf("%s: %v", path, err)
				continue
			}
			if !ds.Datatype().Equal(h5.F32) {
				t.Errorf("%s: type %v", path, ds.Datatype())
			}
		}
		// The refined level is 2x resolution.
		l1, _ := f.OpenDataset(Level1Path)
		dims := l1.Dataspace().Dims()
		if dims[0] != 32 {
			t.Errorf("level1 dims %v", dims)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRefinedLevelProlongation(t *testing.T) {
	p := DefaultParams(16)
	err := mpi.Run(1, func(c *mpi.Comm) {
		s, _ := New(p, c)
		dims, box, data := s.RefinedLevel()
		if dims[0] != 32 || box.NumPoints() != 8*int64(len(s.Field())) {
			t.Fatalf("dims=%v box=%v", dims, box)
		}
		// Each fine cell equals its coarse parent.
		coarse := s.Field()
		if data[0] != coarse[0] || data[1] != coarse[0] {
			t.Errorf("prolongation broken: %v vs %v", data[:2], coarse[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDiffuseDecompositionIndependent(t *testing.T) {
	// Two diffusion steps on 1, 4 and 6 ranks must give identical global
	// fields — the halo exchange is doing its job.
	p := DefaultParams(16)
	gather := func(nRanks int) []float32 {
		global := make([]float32, 16*16*16)
		err := mpi.Run(nRanks, func(c *mpi.Comm) {
			s, err := New(p, c)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 2; i++ {
				if err := s.Diffuse(0.1); err != nil {
					t.Error(err)
					return
				}
			}
			// Assemble on rank 0 via gather of (box, data).
			enc := h5.Bytes(s.Field())
			parts := c.Gather(0, enc)
			if c.Rank() == 0 {
				dc := gridDecomp(s.Dims(), c.Size())
				for r, part := range parts {
					i := 0
					vals := h5.View[float32](part)
					dc[r].Runs(s.Dims(), func(off, n int64) {
						for k := int64(0); k < n; k++ {
							global[off+k] = vals[i]
							i++
						}
					})
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return global
	}
	ref := gather(1)
	for _, n := range []int{4, 6} {
		got := gather(n)
		for i := range ref {
			if diff := got[i] - ref[i]; diff > 1e-4 || diff < -1e-4 {
				t.Fatalf("n=%d: cell %d differs: %v vs %v", n, i, got[i], ref[i])
			}
		}
	}
}

func TestDiffuseConservesMassApproximately(t *testing.T) {
	p := DefaultParams(16)
	err := mpi.Run(2, func(c *mpi.Comm) {
		s, _ := New(p, c)
		sumBefore := 0.0
		for _, v := range s.Field() {
			sumBefore += float64(v)
		}
		tot := mpi.DecodeFloat64(c.Allreduce(mpi.EncodeFloat64(sumBefore), mpi.SumFloat64))
		if err := s.Diffuse(0.15); err != nil {
			t.Error(err)
			return
		}
		sumAfter := 0.0
		for _, v := range s.Field() {
			sumAfter += float64(v)
		}
		tot2 := mpi.DecodeFloat64(c.Allreduce(mpi.EncodeFloat64(sumAfter), mpi.SumFloat64))
		// Clamped boundaries leak a little mass; it must stay small.
		if rel := (tot - tot2) / tot; rel > 0.05 || rel < -0.05 {
			t.Errorf("mass changed by %.2f%%", rel*100)
		}
		// And the peak must have decayed.
		maxB, maxA := float32(0), float32(0)
		for _, v := range s.Field() {
			if v > maxA {
				maxA = v
			}
		}
		s2, _ := New(p, c)
		for _, v := range s2.Field() {
			if v > maxB {
				maxB = v
			}
		}
		gB := mpi.DecodeFloat64(c.Allreduce(mpi.EncodeFloat64(float64(maxB)), mpi.MaxFloat64))
		gA := mpi.DecodeFloat64(c.Allreduce(mpi.EncodeFloat64(float64(maxA)), mpi.MaxFloat64))
		if gA >= gB {
			t.Errorf("diffusion should lower the peak: %v -> %v", gB, gA)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// gridDecomp mirrors the simulation's internal decomposition for tests.
func gridDecomp(dims []int64, n int) []grid.Box {
	dc := grid.CommonDecomposition(dims, n)
	out := make([]grid.Box, n)
	for i := range out {
		out[i] = dc.Block(i)
	}
	return out
}
