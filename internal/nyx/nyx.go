// Package nyx is a proxy for the Nyx cosmological simulation used in the
// paper's science use case (§IV-C): a massively parallel code computing a
// 3-d baryon density field on a block-decomposed grid, writing snapshots
// through the h5 API at certain time steps so a halo finder can analyze
// them. The density field is a smooth background plus a deterministic set
// of Gaussian halos whose positions drift over time, so the downstream
// halo count is known and identical across transports — which is how the
// Table II reproduction validates that every transport moved the data
// correctly.
//
// Like the real Nyx, the writer can optionally "repack" the data into a
// fresh buffer before writing (AMReX does this to get a layout more
// amenable to disk I/O). The paper calls out that this repacking defeats
// LowFive's zero-copy path and forces deep copies; the flag exists here to
// reproduce exactly that behaviour.
package nyx

import (
	"fmt"
	"math"

	"lowfive/h5"
	"lowfive/internal/grid"
	"lowfive/internal/halo"
	"lowfive/mpi"
)

// Params configure the proxy simulation.
type Params struct {
	// GridSide is N for the global N^3 density grid.
	GridSide int64
	// NumHalos is the number of Gaussian halos seeded in the box.
	NumHalos int
	// Seed makes the halo population deterministic.
	Seed int64
	// Repack copies the local field into a fresh buffer before every write,
	// imitating the AMReX HDF5 writer.
	Repack bool
	// FullOutput writes all variables (velocity, dark matter, the refined
	// level) in every snapshot, like Nyx's full dumps. Off, only the baryon
	// density is written — the Table II configuration, where all three
	// storage scenarios write the same bytes.
	FullOutput bool
}

// DefaultParams returns a small but structured universe. The halo count
// scales down on small grids so halos stay separated enough to remain
// distinct superlevel-set components (at least ~8 cells apart).
func DefaultParams(side int64) Params {
	k := side / 8
	if k < 1 {
		k = 1
	}
	n := k * k * k
	if n > 24 {
		n = 24
	}
	return Params{GridSide: side, NumHalos: int(n), Seed: 42}
}

// Halo is one Gaussian overdensity.
type Halo struct {
	Pos   [3]float64
	Vel   [3]float64
	Amp   float64
	Sigma float64
}

// Halos returns the deterministic halo population for the parameters.
// Halos are placed on a jittered coarse lattice so they never overlap,
// keeping the halo count well-defined for the finder.
func (p Params) Halos() []Halo {
	// Cells of a k^3 lattice, k chosen so k^3 >= NumHalos.
	k := int64(1)
	for k*k*k < int64(p.NumHalos) {
		k++
	}
	cell := float64(p.GridSide) / float64(k)
	rng := splitmix(uint64(p.Seed))
	halos := make([]Halo, 0, p.NumHalos)
	for i := int64(0); i < k*k*k && len(halos) < p.NumHalos; i++ {
		c := grid.Coords([]int64{k, k, k}, i)
		var h Halo
		for d := 0; d < 3; d++ {
			jitter := (rng.next() - 0.5) * cell * 0.25
			h.Pos[d] = (float64(c[d])+0.5)*cell + jitter
			h.Vel[d] = (rng.next() - 0.5) * cell * 0.05
		}
		h.Amp = 40 + 20*rng.next()
		h.Sigma = cell / 10
		if h.Sigma < 1 {
			h.Sigma = 1
		}
		halos = append(halos, h)
	}
	return halos
}

// Sim is one rank's portion of the simulation.
type Sim struct {
	Params
	task  *mpi.Comm
	box   grid.Box
	dims  []int64
	halos []Halo
	step  int
	field []float32
}

// New decomposes the grid over the task and initializes step 0.
func New(p Params, task *mpi.Comm) (*Sim, error) {
	if p.GridSide < 4 {
		return nil, fmt.Errorf("nyx: grid side %d too small", p.GridSide)
	}
	dims := []int64{p.GridSide, p.GridSide, p.GridSide}
	dc := grid.CommonDecomposition(dims, task.Size())
	s := &Sim{
		Params: p,
		task:   task,
		box:    dc.Block(task.Rank()),
		dims:   dims,
		halos:  p.Halos(),
	}
	s.compute()
	return s, nil
}

// Box returns this rank's block.
func (s *Sim) Box() grid.Box { return s.box }

// Dims returns the global extent.
func (s *Sim) Dims() []int64 { return append([]int64(nil), s.dims...) }

// Step advances the halo positions and recomputes the local field.
func (s *Sim) Step() {
	s.step++
	s.compute()
}

// Diffuse applies one explicit 7-point diffusion step with coefficient
// kappa (stable for kappa <= 1/6), using ghost-cell exchange with the
// neighboring ranks — the communication pattern every stencil-based PDE
// solver performs. Boundary cells use clamped (Neumann-like) neighbors.
func (s *Sim) Diffuse(kappa float64) error {
	if s.box.IsEmpty() {
		return nil
	}
	blocks := make([]grid.Box, s.task.Size())
	dc := grid.CommonDecomposition(s.dims, s.task.Size())
	for i := range blocks {
		blocks[i] = dc.Block(i)
	}
	ghost, g, err := halo.Exchange(s.task, s.dims, blocks, s.field, 1)
	if err != nil {
		return err
	}
	gc := ghost.Count()
	at := func(x, y, z int64) float64 {
		// Clamp to the ghosted box (domain boundaries).
		if x < ghost.Min[0] {
			x = ghost.Min[0]
		}
		if x > ghost.Max[0] {
			x = ghost.Max[0]
		}
		if y < ghost.Min[1] {
			y = ghost.Min[1]
		}
		if y > ghost.Max[1] {
			y = ghost.Max[1]
		}
		if z < ghost.Min[2] {
			z = ghost.Min[2]
		}
		if z > ghost.Max[2] {
			z = ghost.Max[2]
		}
		i := ((x-ghost.Min[0])*gc[1]+(y-ghost.Min[1]))*gc[2] + (z - ghost.Min[2])
		return float64(g[i])
	}
	out := make([]float32, len(s.field))
	i := 0
	for x := s.box.Min[0]; x <= s.box.Max[0]; x++ {
		for y := s.box.Min[1]; y <= s.box.Max[1]; y++ {
			for z := s.box.Min[2]; z <= s.box.Max[2]; z++ {
				c := at(x, y, z)
				lap := at(x-1, y, z) + at(x+1, y, z) +
					at(x, y-1, z) + at(x, y+1, z) +
					at(x, y, z-1) + at(x, y, z+1) - 6*c
				out[i] = float32(c + kappa*lap)
				i++
			}
		}
	}
	s.field = out
	return nil
}

// StepIndex returns the current step number.
func (s *Sim) StepIndex() int { return s.step }

// Field returns the local density field (row-major over Box).
func (s *Sim) Field() []float32 { return s.field }

// compute fills the local density: background 1.0 plus Gaussian halos at
// their drifted positions.
func (s *Sim) compute() {
	if s.box.IsEmpty() {
		s.field = nil
		return
	}
	field := make([]float32, s.box.NumPoints())
	t := float64(s.step)
	type blob struct {
		pos       [3]float64
		amp, inv2 float64
		cut       float64
	}
	blobs := make([]blob, len(s.halos))
	for i, h := range s.halos {
		var b blob
		for d := 0; d < 3; d++ {
			b.pos[d] = h.Pos[d] + t*h.Vel[d]
		}
		b.amp = h.Amp
		b.inv2 = 1 / (2 * h.Sigma * h.Sigma)
		b.cut = 5 * h.Sigma // beyond 5 sigma the blob contributes ~nothing
		blobs[i] = b
	}
	i := 0
	pt := append([]int64(nil), s.box.Min...)
	for {
		rho := 1.0
		for _, b := range blobs {
			dx := float64(pt[0]) - b.pos[0]
			dy := float64(pt[1]) - b.pos[1]
			dz := float64(pt[2]) - b.pos[2]
			if dx > b.cut || dx < -b.cut || dy > b.cut || dy < -b.cut || dz > b.cut || dz < -b.cut {
				continue
			}
			r2 := dx*dx + dy*dy + dz*dz
			rho += b.amp * math.Exp(-r2*b.inv2)
		}
		field[i] = float32(rho)
		i++
		k := 2
		for k >= 0 {
			pt[k]++
			if pt[k] <= s.box.Max[k] {
				break
			}
			pt[k] = s.box.Min[k]
			k--
		}
		if k < 0 {
			break
		}
	}
	s.field = field
}

// DatasetPath is where the snapshot writer puts the density field,
// mirroring Nyx's HDF5 layout.
const DatasetPath = "native_fields/baryon_density"

// Extra dataset paths written by every snapshot. Nyx writes a dozen
// variables; the halo finder consumes only the density — and with lazy
// (zero-copy-style) serving, the unread variables are never serialized or
// sent, the property the paper's introduction motivates AMR workflows with.
const (
	VxPath         = "native_fields/velocity_x"
	DarkMatterPath = "native_fields/dark_matter_density"
	Level1Path     = "refined/level1_density"
)

// velocityX derives a second field from the halo motion (cheap but
// deterministic: the x-velocity of the nearest halo, 0 in the background).
func (s *Sim) velocityX() []float32 {
	if s.box.IsEmpty() {
		return nil
	}
	field := make([]float32, s.box.NumPoints())
	t := float64(s.step)
	i := 0
	pt := append([]int64(nil), s.box.Min...)
	for {
		var best float64
		bestD := math.MaxFloat64
		for _, h := range s.halos {
			dx := float64(pt[0]) - (h.Pos[0] + t*h.Vel[0])
			dy := float64(pt[1]) - (h.Pos[1] + t*h.Vel[1])
			dz := float64(pt[2]) - (h.Pos[2] + t*h.Vel[2])
			d := dx*dx + dy*dy + dz*dz
			if d < bestD {
				bestD = d
				best = h.Vel[0]
			}
		}
		field[i] = float32(best)
		i++
		k := 2
		for k >= 0 {
			pt[k]++
			if pt[k] <= s.box.Max[k] {
				break
			}
			pt[k] = s.box.Min[k]
			k--
		}
		if k < 0 {
			return field
		}
	}
}

// WriteSnapshot writes the current simulation state to the named file
// through the h5 API — through whatever VOL the fapl carries, which is
// precisely the zero-code-change property the use case demonstrates. Like
// Nyx, it writes several variables (density, velocity, dark matter, a
// refined level); the analysis typically consumes only one. With Repack
// set, each field is first copied to a staging buffer, as the AMReX writer
// does.
func (s *Sim) WriteSnapshot(name string, fapl *h5.FileAccessProps) error {
	f, err := h5.CreateFile(name, fapl)
	if err != nil {
		return err
	}
	g, err := f.CreateGroup("native_fields")
	if err != nil {
		return err
	}
	writeField := func(parent *h5.Object, dsName string, data []float32, dims []int64, box grid.Box) error {
		ds, err := parent.CreateDataset(dsName, h5.F32, h5.NewSimple(dims...))
		if err != nil {
			return err
		}
		if err := ds.WriteAttribute("step", h5.I64, h5.Bytes([]int64{int64(s.step)})); err != nil {
			return err
		}
		if s.Repack && len(data) > 0 {
			repacked := make([]float32, len(data))
			copy(repacked, data)
			data = repacked
		}
		if !box.IsEmpty() {
			sel := h5.NewSimple(dims...)
			if err := sel.SelectBox(h5.SelectSet, box); err != nil {
				return err
			}
			if err := ds.Write(nil, sel, h5.Bytes(data)); err != nil {
				return err
			}
		}
		return ds.Close()
	}
	if err := writeField(&g.Object, "baryon_density", s.field, s.dims, s.box); err != nil {
		return err
	}
	if s.FullOutput {
		if err := writeField(&g.Object, "velocity_x", s.velocityX(), s.dims, s.box); err != nil {
			return err
		}
		// Dark matter tracks baryons in this proxy (scaled).
		dm := make([]float32, len(s.field))
		for i, v := range s.field {
			dm[i] = v * 5.4 // cosmic baryon-to-dark-matter ratio
		}
		if err := writeField(&g.Object, "dark_matter_density", dm, s.dims, s.box); err != nil {
			return err
		}
	}
	if err := g.Close(); err != nil {
		return err
	}
	if s.FullOutput {
		// A refinement level at 2x resolution over this rank's block — the
		// AMR hierarchy the introduction's motivating example reads one
		// level of.
		rg, err := f.CreateGroup("refined")
		if err != nil {
			return err
		}
		l1dims, l1box, l1 := s.RefinedLevel()
		if err := writeField(&rg.Object, "level1_density", l1, l1dims, l1box); err != nil {
			return err
		}
		if err := rg.Close(); err != nil {
			return err
		}
	}
	return f.Close()
}

// RefinedLevel returns a 2x-resolution version of this rank's block
// (piecewise-constant prolongation of the coarse field), the AMR level-1
// data of the snapshot.
func (s *Sim) RefinedLevel() (dims []int64, box grid.Box, data []float32) {
	dims = []int64{2 * s.dims[0], 2 * s.dims[1], 2 * s.dims[2]}
	if s.box.IsEmpty() {
		return dims, grid.Box{Min: []int64{0, 0, 0}, Max: []int64{-1, -1, -1}}, nil
	}
	box = grid.Box{
		Min: []int64{2 * s.box.Min[0], 2 * s.box.Min[1], 2 * s.box.Min[2]},
		Max: []int64{2*s.box.Max[0] + 1, 2*s.box.Max[1] + 1, 2*s.box.Max[2] + 1},
	}
	c := s.box.Count()
	data = make([]float32, box.NumPoints())
	fx, fy, fz := 2*c[0], 2*c[1], 2*c[2]
	for x := int64(0); x < fx; x++ {
		for y := int64(0); y < fy; y++ {
			for z := int64(0); z < fz; z++ {
				coarse := ((x/2)*c[1]+(y/2))*c[2] + z/2
				data[(x*fy+y)*fz+z] = s.field[coarse]
			}
		}
	}
	return dims, box, data
}

// splitmix is a tiny deterministic PRNG (SplitMix64), good enough for
// reproducible halo placement without pulling in math/rand state.
type splitmix uint64

func (s *splitmix) next() float64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}
