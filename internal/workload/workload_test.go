package workload

import (
	"testing"

	"lowfive/h5"
	"lowfive/internal/core"
	"lowfive/internal/grid"
)

func TestPaperSpecSplit(t *testing.T) {
	s := PaperSpec(16)
	if s.Producers != 12 || s.Consumers != 4 {
		t.Errorf("split %d/%d", s.Producers, s.Consumers)
	}
	if s.GridPointsPerProducer != 1e6 || s.ParticlesPerProducer != 1e6 {
		t.Errorf("per-proc sizes %d/%d", s.GridPointsPerProducer, s.ParticlesPerProducer)
	}
}

func TestTableISizes(t *testing.T) {
	// Reproduce Table I's total data sizes: at 16384 procs the paper lists
	// 1.2e10 grid points, 1.2e10 particles, 223.51 GiB.
	s := PaperSpec(16384)
	if s.Producers != 12288 {
		t.Fatalf("producers %d", s.Producers)
	}
	if got := s.TotalGridPoints(); got != 12288*1000*1000 {
		// The cube-root sizing gives exactly 10^6 per producer only when
		// 10^6 is a perfect cube (100^3): check it is.
		t.Errorf("grid points %d", got)
	}
	gib := float64(s.TotalBytes()) / (1 << 30)
	if gib < 220 || gib > 230 {
		t.Errorf("total size %.2f GiB, paper says 223.51", gib)
	}
	// And the 4-process row: 0.06 GiB.
	small := PaperSpec(4)
	gib = float64(small.TotalBytes()) / (1 << 30)
	if gib < 0.05 || gib > 0.07 {
		t.Errorf("4-proc size %.3f GiB, paper says 0.06", gib)
	}
}

func TestGridDimsPartition(t *testing.T) {
	s := Spec{Producers: 6, Consumers: 2, GridPointsPerProducer: 1000, ParticlesPerProducer: 10}
	dims := s.GridDims()
	total := dims[0] * dims[1] * dims[2]
	if total != 6*1000 {
		t.Errorf("dims %v = %d points, want 6000", dims, total)
	}
	// Producer blocks partition the grid.
	covered := int64(0)
	for r := 0; r < s.Producers; r++ {
		covered += s.ProducerGridBox(r).NumPoints()
	}
	if covered != total {
		t.Errorf("producer blocks cover %d of %d", covered, total)
	}
	covered = 0
	for r := 0; r < s.Consumers; r++ {
		covered += s.ConsumerGridBox(r).NumPoints()
	}
	if covered != total {
		t.Errorf("consumer blocks cover %d of %d", covered, total)
	}
}

func TestScaled(t *testing.T) {
	s := PaperSpec(4).Scaled(100)
	if s.GridPointsPerProducer != 1e4 || s.ParticlesPerProducer != 1e4 {
		t.Errorf("scaled sizes %d/%d", s.GridPointsPerProducer, s.ParticlesPerProducer)
	}
	if PaperSpec(4).Scaled(1<<40).GridPointsPerProducer < 1 {
		t.Error("scaling must not reach zero")
	}
}

func TestGridValuesValidate(t *testing.T) {
	dims := []int64{4, 5, 6}
	box := grid.NewBox([]int64{1, 2, 3}, []int64{2, 2, 2})
	vals := GridValues(dims, box)
	if err := ValidateGrid(dims, box, vals); err != nil {
		t.Fatal(err)
	}
	vals[3]++
	if err := ValidateGrid(dims, box, vals); err == nil {
		t.Error("corrupted value should fail validation")
	}
	if err := ValidateGrid(dims, box, vals[:2]); err == nil {
		t.Error("wrong length should fail validation")
	}
}

func TestParticleValuesValidate(t *testing.T) {
	vals := ParticleValues(10, 20)
	if len(vals) != 30 {
		t.Fatalf("len=%d", len(vals))
	}
	if err := ValidateParticles(10, vals); err != nil {
		t.Fatal(err)
	}
	vals[7] = -1
	if err := ValidateParticles(10, vals); err == nil {
		t.Error("corrupted particle should fail")
	}
}

func TestParticleRangePartition(t *testing.T) {
	total := int64(17)
	covered := int64(0)
	prev := int64(0)
	for r := 0; r < 5; r++ {
		lo, hi := ParticleRange(total, 5, r)
		if lo != prev {
			t.Errorf("rank %d: lo=%d want %d", r, lo, prev)
		}
		covered += hi - lo
		prev = hi
	}
	if covered != total || prev != total {
		t.Errorf("covered %d, end %d", covered, prev)
	}
}

func TestWriteReadLocalRoundTrip(t *testing.T) {
	// The full write/read path through the in-memory metadata VOL with a
	// single "rank" acting as both producer and consumer.
	s := Spec{Producers: 1, Consumers: 1, GridPointsPerProducer: 27, ParticlesPerProducer: 10}
	vol := core.NewMetadataVOL(nil)
	fapl := h5.NewFileAccessProps(vol)
	f, err := h5.CreateFile("w.h5", fapl)
	if err != nil {
		t.Fatal(err)
	}
	g, p := GenerateProducer(s, 0)
	if err := WriteSynthetic(f, s, 0, g, p); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	f2, err := h5.OpenFile("w.h5", fapl)
	if err != nil {
		t.Fatal(err)
	}
	if err := ReadAndValidate(f2, s, 0); err != nil {
		t.Fatal(err)
	}
}
