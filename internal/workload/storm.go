// Query-storm generation: seeded-deterministic sequences of small box
// queries with zipf popularity, the load profile of ROADMAP item 3's
// thousand-consumer storms (many tenants hammering a handful of hot regions
// of a live producer's grid). Determinism is the point — a storm sweep that
// sheds, trips breakers, and still validates bit-identical data must be
// replayable from its seed.
package workload

import (
	"hash/fnv"
	"math/rand"

	"lowfive/internal/grid"
)

// StormSpec sizes one query storm against the synthetic grid.
type StormSpec struct {
	// Seed makes the whole storm deterministic: the box population, every
	// client's query sequence, everything.
	Seed uint64
	// ZipfS is the zipf skew of box popularity (must be > 1; larger means
	// hotter hot-spots). Zero defaults to 1.2.
	ZipfS float64
	// Boxes is the size of the candidate box population the storm samples
	// from, ranked by popularity. Zero defaults to 64.
	Boxes int
	// BoxSide is the edge length of each query box, clamped to the grid
	// extent. Zero defaults to a quarter of the smallest dimension.
	BoxSide int64
	// QueriesPerClient is how many queries each closed-loop client issues.
	// Zero defaults to 32.
	QueriesPerClient int
}

func (st StormSpec) zipfS() float64 {
	if st.ZipfS <= 1 {
		return 1.2
	}
	return st.ZipfS
}

func (st StormSpec) boxes() int {
	if st.Boxes <= 0 {
		return 64
	}
	return st.Boxes
}

func (st StormSpec) queries() int {
	if st.QueriesPerClient <= 0 {
		return 32
	}
	return st.QueriesPerClient
}

func (st StormSpec) side(dims []int64) int64 {
	side := st.BoxSide
	if side <= 0 {
		min := dims[0]
		for _, d := range dims {
			if d < min {
				min = d
			}
		}
		side = min / 4
	}
	if side < 1 {
		side = 1
	}
	for _, d := range dims {
		if side > d {
			side = d
		}
	}
	return side
}

// Population returns the storm's candidate boxes over a grid of the given
// dims, in popularity-rank order (index 0 is the hottest). It depends only
// on (Seed, dims) so every client of every tenant samples the same ranked
// population — which is what makes the hot boxes genuinely shared.
func (st StormSpec) Population(dims []int64) []grid.Box {
	rng := rand.New(rand.NewSource(int64(st.Seed)))
	side := st.side(dims)
	out := make([]grid.Box, st.boxes())
	for i := range out {
		b := grid.Box{Min: make([]int64, len(dims)), Max: make([]int64, len(dims))}
		for d, ext := range dims {
			lo := int64(0)
			if ext > side {
				lo = rng.Int63n(ext - side + 1)
			}
			b.Min[d] = lo
			b.Max[d] = lo + side - 1
		}
		out[i] = b
	}
	return out
}

// clientSeed derives one client's RNG seed from the storm seed and the
// client's identity, so adding a tenant or a rank never perturbs another
// client's sequence.
func (st StormSpec) clientSeed(tenant string, client int) int64 {
	h := fnv.New64a()
	h.Write([]byte(tenant))
	h.Write([]byte{byte(client), byte(client >> 8), byte(client >> 16), byte(client >> 24)})
	return int64(st.Seed ^ h.Sum64())
}

// Queries returns the deterministic query sequence of one closed-loop
// client: QueriesPerClient boxes drawn zipf-distributed from the shared
// ranked population.
func (st StormSpec) Queries(dims []int64, tenant string, client int) []grid.Box {
	pop := st.Population(dims)
	rng := rand.New(rand.NewSource(st.clientSeed(tenant, client)))
	z := rand.NewZipf(rng, st.zipfS(), 1, uint64(len(pop)-1))
	out := make([]grid.Box, st.queries())
	for i := range out {
		out[i] = pop[z.Uint64()]
	}
	return out
}
