// Package workload generates and validates the synthetic benchmark data of
// the paper's §IV-B: a regular 3-d grid of 64-bit unsigned integer scalars
// and a list of particles, each a 3-d vector of 32-bit floats, with one
// block of each per producer process. "The values of the grid points and
// particles encode their global position ... so that the consumer can
// validate that data have been correctly redistributed."
package workload

import (
	"fmt"

	"lowfive/h5"
	"lowfive/internal/grid"
)

// Spec sizes one synthetic run (one producer task + one consumer task).
type Spec struct {
	// Producers and Consumers are the task sizes (the paper allocates 3/4
	// and 1/4 of the total processes).
	Producers, Consumers int
	// GridPointsPerProducer is 10^6 in the paper (8 B elements).
	GridPointsPerProducer int64
	// ParticlesPerProducer is 10^6 in the paper (12 B elements).
	ParticlesPerProducer int64
}

// PaperSpec returns the paper's sizing for a total process count: 3/4
// producers, 1/4 consumers, 10^6 grid points and particles per producer.
func PaperSpec(totalProcs int) Spec {
	return Spec{
		Producers:             totalProcs * 3 / 4,
		Consumers:             totalProcs - totalProcs*3/4,
		GridPointsPerProducer: 1e6,
		ParticlesPerProducer:  1e6,
	}
}

// Scaled returns the spec with per-producer sizes divided by factor,
// for laptop-scale reproduction runs.
func (s Spec) Scaled(factor int64) Spec {
	out := s
	out.GridPointsPerProducer = max64(1, s.GridPointsPerProducer/factor)
	out.ParticlesPerProducer = max64(1, s.ParticlesPerProducer/factor)
	return out
}

// GridDims returns the global 3-d grid extent: the producer count factored
// into three near-equal block counts, times a per-producer block side.
func (s Spec) GridDims() []int64 {
	side := cubeRoot(s.GridPointsPerProducer)
	f := grid.FactorBalanced(s.Producers, 3)
	return []int64{f[0] * side, f[1] * side, f[2] * side}
}

// TotalGridPoints is the number of points of the global grid.
func (s Spec) TotalGridPoints() int64 {
	d := s.GridDims()
	return d[0] * d[1] * d[2]
}

// TotalParticles is the global particle count.
func (s Spec) TotalParticles() int64 { return s.ParticlesPerProducer * int64(s.Producers) }

// TotalBytes is the total exchanged payload (8 B per grid point, 12 B per
// particle, as in Table I).
func (s Spec) TotalBytes() int64 { return s.TotalGridPoints()*8 + s.TotalParticles()*12 }

// GridDecomposition is the producer-side decomposition of the grid.
func (s Spec) GridDecomposition() grid.Decomposition {
	return grid.CommonDecomposition(s.GridDims(), s.Producers)
}

// ConsumerGridDecomposition is the consumer-side decomposition (different
// block grid because the consumer task has a different size).
func (s Spec) ConsumerGridDecomposition() grid.Decomposition {
	return grid.CommonDecomposition(s.GridDims(), s.Consumers)
}

// ProducerGridBox is the block of producer rank r.
func (s Spec) ProducerGridBox(r int) grid.Box { return s.GridDecomposition().Block(r) }

// ConsumerGridBox is the block consumer rank r reads.
func (s Spec) ConsumerGridBox(r int) grid.Box { return s.ConsumerGridDecomposition().Block(r) }

// ParticleRange returns the half-open global particle row range
// [lo, hi) owned by rank r of a task with n ranks.
func ParticleRange(total int64, n, r int) (lo, hi int64) {
	return int64(r) * total / int64(n), int64(r+1) * total / int64(n)
}

// GridValues fills a row-major buffer over box with each point's global
// linear index in dims.
func GridValues(dims []int64, box grid.Box) []uint64 {
	vals := make([]uint64, box.NumPoints())
	i := 0
	// Within a contiguous run, global linear indices are consecutive, so
	// fill run by run. (Runs iterates the box in row-major order, which is
	// exactly the buffer's layout.)
	box.Runs(dims, func(off, n int64) {
		for k := int64(0); k < n; k++ {
			vals[i] = uint64(off + k)
			i++
		}
	})
	return vals
}

// ValidateGrid checks a row-major buffer over box against GridValues.
func ValidateGrid(dims []int64, box grid.Box, vals []uint64) error {
	if int64(len(vals)) != box.NumPoints() {
		return fmt.Errorf("workload: grid buffer has %d values, box has %d points", len(vals), box.NumPoints())
	}
	i := 0
	var bad error
	box.Runs(dims, func(off, n int64) {
		if bad != nil {
			i += int(n)
			return
		}
		for k := int64(0); k < n; k++ {
			if want := uint64(off + k); vals[i] != want {
				bad = fmt.Errorf("workload: grid value at global index %d is %d, want %d", off+k, vals[i], want)
				return
			}
			i++
		}
	})
	return bad
}

// ParticleValues fills particles [lo, hi): particle i has coordinates
// (3i, 3i+1, 3i+2) encoding its global position in the list.
func ParticleValues(lo, hi int64) []float32 {
	vals := make([]float32, (hi-lo)*3)
	for i := range vals {
		vals[i] = float32(lo*3 + int64(i))
	}
	return vals
}

// ValidateParticles checks a particle buffer starting at global row lo.
func ValidateParticles(lo int64, vals []float32) error {
	if len(vals)%3 != 0 {
		return fmt.Errorf("workload: particle buffer length %d not a multiple of 3", len(vals))
	}
	for i := range vals {
		if want := float32(lo*3 + int64(i)); vals[i] != want {
			return fmt.Errorf("workload: particle component %d is %v, want %v", i, vals[i], want)
		}
	}
	return nil
}

// WriteSynthetic creates the paper's two datasets (/group1/grid uint64,
// /group2/particles float32 [N,3]) in an open file and writes producer rank
// r's blocks. The caller provides pre-generated buffers so that generation
// stays outside timed sections; pass the results of GenerateProducer.
func WriteSynthetic(f *h5.File, s Spec, r int, gridVals []uint64, partVals []float32) error {
	dims := s.GridDims()
	g1, err := f.CreateGroup("group1")
	if err != nil {
		return err
	}
	gds, err := g1.CreateDataset("grid", h5.U64, h5.NewSimple(dims...))
	if err != nil {
		return err
	}
	box := s.ProducerGridBox(r)
	if !box.IsEmpty() {
		sel := h5.NewSimple(dims...)
		if err := sel.SelectBox(h5.SelectSet, box); err != nil {
			return err
		}
		if err := gds.Write(nil, sel, h5.Bytes(gridVals)); err != nil {
			return err
		}
	}
	if err := gds.Close(); err != nil {
		return err
	}
	g2, err := f.CreateGroup("group2")
	if err != nil {
		return err
	}
	pds, err := g2.CreateDataset("particles", h5.F32, h5.NewSimple(s.TotalParticles(), 3))
	if err != nil {
		return err
	}
	lo, hi := ParticleRange(s.TotalParticles(), s.Producers, r)
	if hi > lo {
		sel := h5.NewSimple(s.TotalParticles(), 3)
		if err := sel.SelectHyperslab(h5.SelectSet, []int64{lo, 0}, []int64{hi - lo, 3}); err != nil {
			return err
		}
		if err := pds.Write(nil, sel, h5.Bytes(partVals)); err != nil {
			return err
		}
	}
	return pds.Close()
}

// GenerateProducer builds producer rank r's buffers.
func GenerateProducer(s Spec, r int) (gridVals []uint64, partVals []float32) {
	gridVals = GridValues(s.GridDims(), s.ProducerGridBox(r))
	lo, hi := ParticleRange(s.TotalParticles(), s.Producers, r)
	partVals = ParticleValues(lo, hi)
	return
}

// ReadConsumer opens both datasets from an open file and reads consumer
// rank r's blocks (no validation — transport timing should not include it).
func ReadConsumer(f *h5.File, s Spec, r int) (gridBuf []uint64, partBuf []float32, err error) {
	dims := s.GridDims()
	gds, err := f.OpenDataset("group1/grid")
	if err != nil {
		return nil, nil, err
	}
	box := s.ConsumerGridBox(r)
	if !box.IsEmpty() {
		sel := h5.NewSimple(dims...)
		if err := sel.SelectBox(h5.SelectSet, box); err != nil {
			return nil, nil, err
		}
		gridBuf = make([]uint64, sel.NumSelected())
		if err := gds.Read(nil, sel, h5.Bytes(gridBuf)); err != nil {
			return nil, nil, err
		}
	}
	if err := gds.Close(); err != nil {
		return nil, nil, err
	}
	pds, err := f.OpenDataset("group2/particles")
	if err != nil {
		return nil, nil, err
	}
	lo, hi := ParticleRange(s.TotalParticles(), s.Consumers, r)
	if hi > lo {
		sel := h5.NewSimple(s.TotalParticles(), 3)
		if err := sel.SelectHyperslab(h5.SelectSet, []int64{lo, 0}, []int64{hi - lo, 3}); err != nil {
			return nil, nil, err
		}
		partBuf = make([]float32, sel.NumSelected())
		if err := pds.Read(nil, sel, h5.Bytes(partBuf)); err != nil {
			return nil, nil, err
		}
	}
	if err := pds.Close(); err != nil {
		return nil, nil, err
	}
	return gridBuf, partBuf, nil
}

// ValidateConsumer checks buffers returned by ReadConsumer.
func ValidateConsumer(s Spec, r int, gridBuf []uint64, partBuf []float32) error {
	box := s.ConsumerGridBox(r)
	if !box.IsEmpty() {
		if err := ValidateGrid(s.GridDims(), box, gridBuf); err != nil {
			return err
		}
	}
	lo, hi := ParticleRange(s.TotalParticles(), s.Consumers, r)
	if hi > lo {
		if int64(len(partBuf)) != (hi-lo)*3 {
			return fmt.Errorf("workload: particle buffer has %d values, want %d", len(partBuf), (hi-lo)*3)
		}
		if err := ValidateParticles(lo, partBuf); err != nil {
			return err
		}
	}
	return nil
}

// ReadAndValidate combines ReadConsumer and ValidateConsumer.
func ReadAndValidate(f *h5.File, s Spec, r int) error {
	gridBuf, partBuf, err := ReadConsumer(f, s, r)
	if err != nil {
		return err
	}
	return ValidateConsumer(s, r, gridBuf, partBuf)
}

func cubeRoot(n int64) int64 {
	s := int64(1)
	for (s+1)*(s+1)*(s+1) <= n {
		s++
	}
	return s
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
