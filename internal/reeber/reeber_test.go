package reeber

import (
	"testing"

	"lowfive/internal/grid"
	"lowfive/internal/nyx"
	"lowfive/mpi"
)

// fieldWithBlobs builds a dims grid with value 10 inside given boxes and 0
// elsewhere, returning the portion for box (row-major).
func fieldWithBlobs(dims []int64, box grid.Box, blobs []grid.Box) []float32 {
	f := make([]float32, box.NumPoints())
	i := 0
	pt := append([]int64(nil), box.Min...)
	for {
		for _, b := range blobs {
			if b.Contains(pt) {
				f[i] = 10
				break
			}
		}
		i++
		k := 2
		for k >= 0 {
			pt[k]++
			if pt[k] <= box.Max[k] {
				break
			}
			pt[k] = box.Min[k]
			k--
		}
		if k < 0 {
			return f
		}
	}
}

func TestFindHalosSingleRank(t *testing.T) {
	dims := []int64{12, 12, 12}
	blobs := []grid.Box{
		grid.NewBox([]int64{1, 1, 1}, []int64{2, 2, 2}),
		grid.NewBox([]int64{8, 8, 8}, []int64{3, 1, 1}),
	}
	err := mpi.Run(1, func(c *mpi.Comm) {
		box := grid.WholeExtent(dims)
		density := fieldWithBlobs(dims, box, blobs)
		res, err := FindHalos(c, dims, box, density, 5)
		if err != nil {
			t.Error(err)
			return
		}
		if res.NumHalos != 2 {
			t.Errorf("halos=%d want 2", res.NumHalos)
		}
		if res.Cells != 8+3 {
			t.Errorf("cells=%d want 11", res.Cells)
		}
		if res.TotalMass != 110 {
			t.Errorf("mass=%v want 110", res.TotalMass)
		}
		if res.MaxMass != 80 {
			t.Errorf("max mass=%v want 80", res.MaxMass)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFindHalosComponentSpansRanks(t *testing.T) {
	// One blob crossing the block boundary must count as ONE halo.
	dims := []int64{8, 8, 8}
	blob := grid.NewBox([]int64{2, 3, 3}, []int64{4, 2, 2}) // spans x=2..5
	for _, nRanks := range []int{2, 4, 8} {
		err := mpi.Run(nRanks, func(c *mpi.Comm) {
			dc := grid.CommonDecomposition(dims, c.Size())
			box := dc.Block(c.Rank())
			density := fieldWithBlobs(dims, box, []grid.Box{blob})
			res, err := FindHalos(c, dims, box, density, 5)
			if err != nil {
				t.Error(err)
				return
			}
			if res.NumHalos != 1 {
				t.Errorf("nRanks=%d rank=%d: halos=%d want 1", nRanks, c.Rank(), res.NumHalos)
			}
			if res.Cells != blob.NumPoints() {
				t.Errorf("cells=%d want %d", res.Cells, blob.NumPoints())
			}
			if res.TotalMass != float64(blob.NumPoints())*10 {
				t.Errorf("mass=%v", res.TotalMass)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestFindHalosAllRanksAgree(t *testing.T) {
	dims := []int64{10, 10, 10}
	blobs := []grid.Box{
		grid.NewBox([]int64{0, 0, 0}, []int64{2, 2, 2}),
		grid.NewBox([]int64{4, 4, 4}, []int64{3, 3, 3}),
		grid.NewBox([]int64{8, 0, 8}, []int64{2, 2, 2}),
	}
	err := mpi.Run(5, func(c *mpi.Comm) {
		dc := grid.CommonDecomposition(dims, c.Size())
		box := dc.Block(c.Rank())
		density := fieldWithBlobs(dims, box, blobs)
		res, err := FindHalos(c, dims, box, density, 5)
		if err != nil {
			t.Error(err)
			return
		}
		if res.NumHalos != 3 {
			t.Errorf("rank %d: halos=%d want 3", c.Rank(), res.NumHalos)
		}
		// Cross-rank determinism: compare the full result via allgather.
		enc := mpi.EncodeFloat64(res.TotalMass)
		for i, b := range c.Allgather(enc) {
			if mpi.DecodeFloat64(b) != res.TotalMass {
				t.Errorf("rank %d and %d disagree on mass", c.Rank(), i)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFindHalosEmptyField(t *testing.T) {
	dims := []int64{6, 6, 6}
	err := mpi.Run(2, func(c *mpi.Comm) {
		dc := grid.CommonDecomposition(dims, c.Size())
		box := dc.Block(c.Rank())
		density := make([]float32, box.NumPoints()) // all zero
		res, err := FindHalos(c, dims, box, density, 5)
		if err != nil {
			t.Error(err)
			return
		}
		if res.NumHalos != 0 || res.Cells != 0 {
			t.Errorf("res=%+v", res)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFindHalosNonThreeD(t *testing.T) {
	err := mpi.Run(1, func(c *mpi.Comm) {
		if _, err := FindHalos(c, []int64{4, 4}, grid.WholeExtent([]int64{4, 4}), make([]float32, 16), 1); err == nil {
			t.Error("2-d field should be rejected")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFindHalosOnNyxField(t *testing.T) {
	// The number of components found on the Nyx proxy field must equal the
	// number of seeded halos, at every decomposition.
	p := nyx.DefaultParams(24)
	var want int
	for i, nRanks := range []int{1, 3, 8} {
		err := mpi.Run(nRanks, func(c *mpi.Comm) {
			s, err := nyx.New(p, c)
			if err != nil {
				t.Error(err)
				return
			}
			res, err := FindHalos(c, s.Dims(), s.Box(), s.Field(), 10)
			if err != nil {
				t.Error(err)
				return
			}
			if c.Rank() == 0 {
				if res.NumHalos != p.NumHalos {
					t.Errorf("nRanks=%d: halos=%d want %d", nRanks, res.NumHalos, p.NumHalos)
				}
				if i == 0 {
					want = res.NumHalos
				} else if res.NumHalos != want {
					t.Errorf("decomposition changed the halo count: %d vs %d", res.NumHalos, want)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}
