// Package reeber is a proxy for the Reeber halo finder used in the paper's
// science use case: a distributed topological analysis that identifies
// regions of high density ("halos") in a block-decomposed 3-d field. The
// real Reeber computes distributed merge trees; this implementation finds
// the same superlevel-set components at a fixed threshold — a distributed
// connected-component labeling with union–find locally and a boundary
// merge across ranks — which is the scientific quantity (halo count and
// masses) the use case validates.
package reeber

import (
	"fmt"
	"math"
	"sort"

	"lowfive/h5"
	"lowfive/internal/grid"
	"lowfive/mpi"
)

// Result summarizes the halos found at a threshold. All ranks return the
// identical result.
type Result struct {
	// NumHalos is the number of connected superlevel-set components.
	NumHalos int
	// TotalMass is the density sum over all halo cells.
	TotalMass float64
	// MaxMass is the largest single halo's mass.
	MaxMass float64
	// Cells is the number of cells above the threshold.
	Cells int64
}

// FindHalos labels the connected components of {density >= threshold} on a
// block-decomposed field. box is this rank's block (row-major layout of
// density) within dims; blocks of all ranks must partition the grid.
func FindHalos(task *mpi.Comm, dims []int64, box grid.Box, density []float32, threshold float64) (Result, error) {
	if len(dims) != 3 {
		return Result{}, fmt.Errorf("reeber: only 3-d fields supported, got %d dims", len(dims))
	}
	if !box.IsEmpty() && int64(len(density)) != box.NumPoints() {
		return Result{}, fmt.Errorf("reeber: density has %d cells, box has %d", len(density), box.NumPoints())
	}

	// --- local union-find over above-threshold cells ---
	var nx, ny, nz int64
	if !box.IsEmpty() {
		c := box.Count()
		nx, ny, nz = c[0], c[1], c[2]
	}
	n := nx * ny * nz
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -1 // below threshold
	}
	var find func(i int32) int32
	find = func(i int32) int32 {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra < rb {
				parent[rb] = ra
			} else {
				parent[ra] = rb
			}
		}
	}
	above := func(i int64) bool { return float64(density[i]) >= threshold }
	idx := func(x, y, z int64) int64 { return (x*ny+y)*nz + z }
	for x := int64(0); x < nx; x++ {
		for y := int64(0); y < ny; y++ {
			for z := int64(0); z < nz; z++ {
				i := idx(x, y, z)
				if !above(i) {
					continue
				}
				parent[i] = int32(i)
				// Union with the already-visited -x, -y, -z neighbors.
				if x > 0 && above(idx(x-1, y, z)) {
					union(int32(i), int32(idx(x-1, y, z)))
				}
				if y > 0 && above(idx(x, y-1, z)) {
					union(int32(i), int32(idx(x, y-1, z)))
				}
				if z > 0 && above(idx(x, y, z-1)) {
					union(int32(i), int32(idx(x, y, z-1)))
				}
			}
		}
	}

	// Local component stats keyed by local root.
	mass := map[int32]float64{}
	cells := map[int32]int64{}
	for i := int64(0); i < n; i++ {
		if parent[i] < 0 {
			continue
		}
		r := find(int32(i))
		mass[r] += float64(density[i])
		cells[r]++
	}

	// --- global merge: exchange boundary cells ---
	// A boundary cell is an above-threshold cell on a face of the block.
	// Global component ids are rank*2^40 + localRoot.
	rank := int64(task.Rank())
	gid := func(localRoot int32) int64 { return rank<<40 | int64(localRoot) }
	enc := &h5.Encoder{}
	if !box.IsEmpty() {
		for x := int64(0); x < nx; x++ {
			for y := int64(0); y < ny; y++ {
				for z := int64(0); z < nz; z++ {
					if x != 0 && x != nx-1 && y != 0 && y != ny-1 && z != 0 && z != nz-1 {
						// Interior z-range can be skipped wholesale.
						z = nz - 2
						continue
					}
					i := idx(x, y, z)
					if parent[i] < 0 {
						continue
					}
					gpt := []int64{box.Min[0] + x, box.Min[1] + y, box.Min[2] + z}
					enc.PutI64(grid.LinearIndex(dims, gpt))
					enc.PutI64(gid(find(int32(i))))
				}
			}
		}
	}
	all := task.Allgather(enc.Buf)

	// Build the global boundary map and union across faces.
	boundary := map[int64]int64{} // global linear index -> component gid
	for _, buf := range all {
		d := &h5.Decoder{Buf: buf}
		for d.Pos < len(d.Buf) {
			pt := d.I64()
			id := d.I64()
			boundary[pt] = id
		}
	}
	gparent := map[int64]int64{}
	var gfind func(x int64) int64
	gfind = func(x int64) int64 {
		p, ok := gparent[x]
		if !ok || p == x {
			gparent[x] = x
			return x
		}
		r := gfind(p)
		gparent[x] = r
		return r
	}
	gunion := func(a, b int64) {
		ra, rb := gfind(a), gfind(b)
		if ra != rb {
			if ra < rb {
				gparent[rb] = ra
			} else {
				gparent[ra] = rb
			}
		}
	}
	for pt, id := range boundary {
		c := grid.Coords(dims, pt)
		for d := 0; d < 3; d++ {
			for _, step := range []int64{-1, 1} {
				c[d] += step
				if c[d] >= 0 && c[d] < dims[d] {
					if nid, ok := boundary[grid.LinearIndex(dims, c)]; ok {
						gunion(id, nid)
					}
				}
				c[d] -= step
			}
		}
	}

	// --- aggregate component stats globally ---
	stat := &h5.Encoder{}
	for r, m := range mass {
		stat.PutI64(gid(r))
		stat.PutI64(int64(cells[r]))
		stat.PutI64(int64(floatBits(m)))
	}
	allStats := task.Allgather(stat.Buf)
	gm := map[int64]float64{}
	gc := map[int64]int64{}
	for _, buf := range allStats {
		d := &h5.Decoder{Buf: buf}
		for d.Pos < len(d.Buf) {
			id := d.I64()
			nc := d.I64()
			m := bitsFloat(uint64(d.I64()))
			root := gfind(id)
			gm[root] += m
			gc[root] += nc
		}
	}
	var res Result
	var roots []int64
	for r := range gm {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	for _, r := range roots {
		res.NumHalos++
		res.TotalMass += gm[r]
		res.Cells += gc[r]
		if gm[r] > res.MaxMass {
			res.MaxMass = gm[r]
		}
	}
	return res, nil
}

// ReadDensity reads this rank's block of the density dataset from an open
// file (through whatever transport the file handle uses). This is the
// I/O-only step, separated from the analysis so the use case can time
// transport and computation independently.
func ReadDensity(task *mpi.Comm, f *h5.File, dsetPath string) (dims []int64, box grid.Box, density []float32, err error) {
	ds, err := f.OpenDataset(dsetPath)
	if err != nil {
		return nil, grid.Box{}, nil, err
	}
	dims = ds.Dataspace().Dims()
	dc := grid.CommonDecomposition(dims, task.Size())
	box = dc.Block(task.Rank())
	if !box.IsEmpty() {
		sel := h5.NewSimple(dims...)
		if err := sel.SelectBox(h5.SelectSet, box); err != nil {
			return nil, grid.Box{}, nil, err
		}
		density = make([]float32, sel.NumSelected())
		if err := ds.Read(nil, sel, h5.Bytes(density)); err != nil {
			return nil, grid.Box{}, nil, err
		}
	}
	if err := ds.Close(); err != nil {
		return nil, grid.Box{}, nil, err
	}
	return dims, box, density, nil
}

// ReadAndFind combines ReadDensity and FindHalos.
func ReadAndFind(task *mpi.Comm, f *h5.File, dsetPath string, threshold float64) (Result, error) {
	dims, box, density, err := ReadDensity(task, f, dsetPath)
	if err != nil {
		return Result{}, err
	}
	return FindHalos(task, dims, box, density, threshold)
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }
