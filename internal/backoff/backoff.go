// Package backoff is the repo's one implementation of full-jitter
// exponential backoff, shared by the RPC layer's down-peer poll pacer and
// the sock transport's reconnect loop. Both face the same thundering-herd
// shape: many actors notice the same failure at the same instant, and a
// fixed retry interval keeps them synchronized forever after. Full jitter
// (each wait uniform in [base, cur], cur doubling to a ceiling) decorrelates
// them; see "Exponential Backoff And Jitter" (AWS Architecture Blog) for
// why full jitter beats equal or decorrelated jitter for contended retries.
package backoff

import (
	"sync/atomic"
	"time"
)

// seeds hands each Backoff a distinct xorshift seed. The golden-ratio
// increment keeps successive seeds well-separated in state space, so
// backoffs created in the same nanosecond still decorrelate.
var seeds atomic.Uint64

// Backoff draws jittered waits for one retry loop. The zero value is not
// usable; construct with New.
type Backoff struct {
	rng  uint64        // xorshift64 state, private per instance
	base time.Duration // floor of every wait, and the post-Reset ceiling
	cur  time.Duration // current ceiling, doubles per step
	max  time.Duration // hard ceiling
}

// New builds a backoff whose waits start uniform in [base, base] and grow
// to uniform in [base, max]. base and max are clamped to at least 1ms and
// base respectively. extra perturbs the seed so callers with a natural
// identity (a peer rank, a call id) decorrelate even against instances
// created in the same nanosecond on another machine.
func New(base, max time.Duration, extra uint64) *Backoff {
	if base <= 0 {
		base = time.Millisecond
	}
	if max < base {
		max = base
	}
	seed := seeds.Add(0x9e3779b97f4a7c15) ^ uint64(time.Now().UnixNano()) ^ extra
	if seed == 0 {
		seed = 1
	}
	return &Backoff{rng: seed, base: base, cur: base, max: max}
}

// Next draws the jittered wait for this step and advances the ceiling,
// clamping to the time remaining before deadline (a zero deadline means no
// clamp). A non-positive return means the deadline has passed.
func (b *Backoff) Next(deadline time.Time) time.Duration {
	x := b.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	b.rng = x
	span := uint64(b.cur-b.base) + 1
	d := b.base + time.Duration(x%span)
	if b.cur < b.max {
		b.cur *= 2
		if b.cur > b.max {
			b.cur = b.max
		}
	}
	if !deadline.IsZero() {
		if remain := time.Until(deadline); remain < d {
			d = remain
		}
	}
	return d
}

// Reset drops the ceiling back to the base interval — called whenever the
// peer is observed healthy, so a later failure starts a fresh ramp.
func (b *Backoff) Reset() { b.cur = b.base }

// Ceiling reports the current jitter ceiling, exposed so tests can verify
// ramp and saturation without sleeping through a schedule.
func (b *Backoff) Ceiling() time.Duration { return b.cur }

// Max reports the hard ceiling waits saturate at.
func (b *Backoff) Max() time.Duration { return b.max }
