package dataspaces

import (
	"testing"

	"lowfive/h5"
	"lowfive/internal/grid"
	"lowfive/mpi"
)

func TestPutLocalGetRoundTrip(t *testing.T) {
	dims := []int64{8, 8}
	nProd, nCons, nSrv := 3, 2, 1
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "prod", Procs: nProd, Main: func(p *mpi.Proc) {
			pr := NewProducer(p.Intercomm("srv"), p.Intercomm("cons"))
			r := int64(p.Task.Rank())
			n := int64(nProd)
			box := grid.Box{Min: []int64{r * dims[0] / n, 0}, Max: []int64{(r+1)*dims[0]/n - 1, dims[1] - 1}}
			vals := make([]uint64, box.NumPoints())
			i := 0
			for x := box.Min[0]; x <= box.Max[0]; x++ {
				for y := box.Min[1]; y <= box.Max[1]; y++ {
					vals[i] = uint64(x*dims[1] + y)
					i++
				}
			}
			if err := pr.PutLocal("grid", 0, box, h5.Bytes(vals), 8); err != nil {
				t.Error(err)
			}
			pr.Finalize()
		}},
		{Name: "cons", Procs: nCons, Main: func(p *mpi.Proc) {
			c := NewConsumer(p.Intercomm("srv"), p.Intercomm("prod"))
			r := int64(p.Task.Rank())
			m := int64(nCons)
			box := grid.Box{Min: []int64{0, r * dims[1] / m}, Max: []int64{dims[0] - 1, (r+1)*dims[1]/m - 1}}
			out, err := c.Get("grid", 0, box, 8)
			if err != nil {
				t.Error(err)
				c.Finalize()
				return
			}
			vals := h5.View[uint64](out)
			i := 0
			for x := box.Min[0]; x <= box.Max[0]; x++ {
				for y := box.Min[1]; y <= box.Max[1]; y++ {
					if vals[i] != uint64(x*dims[1]+y) {
						t.Errorf("rank %d: (%d,%d)=%d", r, x, y, vals[i])
						c.Finalize()
						return
					}
					i++
				}
			}
			c.Finalize()
		}},
		{Name: "srv", Procs: nSrv, Main: func(p *mpi.Proc) {
			RunServer(p.Task, p.Intercomm("prod"), p.Intercomm("cons"))
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMultipleVersions(t *testing.T) {
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "prod", Procs: 1, Main: func(p *mpi.Proc) {
			pr := NewProducer(p.Intercomm("srv"), p.Intercomm("cons"))
			box := grid.NewBox([]int64{0}, []int64{4})
			v0 := []uint64{1, 2, 3, 4}
			v1 := []uint64{5, 6, 7, 8}
			pr.PutLocal("x", 0, box, h5.Bytes(v0), 8)
			pr.PutLocal("x", 1, box, h5.Bytes(v1), 8)
			pr.Finalize()
		}},
		{Name: "cons", Procs: 1, Main: func(p *mpi.Proc) {
			c := NewConsumer(p.Intercomm("srv"), p.Intercomm("prod"))
			box := grid.NewBox([]int64{0}, []int64{4})
			for v := 0; v < 2; v++ {
				out, err := c.Get("x", v, box, 8)
				if err != nil {
					t.Error(err)
					break
				}
				vals := h5.View[uint64](out)
				if vals[0] != uint64(1+4*v) {
					t.Errorf("version %d: %v", v, vals)
				}
			}
			c.Finalize()
		}},
		{Name: "srv", Procs: 2, Main: func(p *mpi.Proc) {
			RunServer(p.Task, p.Intercomm("prod"), p.Intercomm("cons"))
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutLocalValidatesBuffer(t *testing.T) {
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "prod", Procs: 1, Main: func(p *mpi.Proc) {
			pr := NewProducer(p.Intercomm("srv"), p.Intercomm("cons"))
			if err := pr.PutLocal("bad", 0, grid.NewBox([]int64{0}, []int64{10}), make([]byte, 8), 8); err == nil {
				t.Error("short buffer should fail")
			}
			pr.Finalize()
		}},
		{Name: "cons", Procs: 1, Main: func(p *mpi.Proc) {
			c := NewConsumer(p.Intercomm("srv"), p.Intercomm("prod"))
			c.Finalize()
		}},
		{Name: "srv", Procs: 1, Main: func(p *mpi.Proc) {
			RunServer(p.Task, p.Intercomm("prod"), p.Intercomm("cons"))
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestServerSharding(t *testing.T) {
	for _, n := range []int{1, 2, 7} {
		seen := map[int]bool{}
		for v := 0; v < 50; v++ {
			s := serverFor("array", v, n)
			if s < 0 || s >= n {
				t.Fatalf("serverFor out of range: %d of %d", s, n)
			}
			seen[s] = true
		}
		if n > 1 && len(seen) < 2 {
			t.Errorf("sharding over %d servers hit only %d", n, len(seen))
		}
	}
}
