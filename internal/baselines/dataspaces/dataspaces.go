// Package dataspaces implements a staging-service data transport in the
// style of DataSpaces, the comparator of Figures 8 and 11: a set of
// dedicated server ranks maintains a distributed spatial index over
// n-dimensional array regions; producers register their local regions with
// dspaces_put_local (metadata only — the data stays in producer memory,
// pinned for one-sided access); consumers query the index and fetch data
// directly from the producers.
//
// The design differences the paper calls out are reproduced faithfully:
//
//   - extra resources: the servers are additional ranks beyond producer and
//     consumer;
//   - restricted data model: only n-dimensional arrays of fixed-size
//     elements, no hierarchy, types or attributes;
//   - no producer/consumer synchronization: PutLocal returns immediately
//     (registration is one message to one server), and gets are answered by
//     a responder goroutine standing in for the RDMA NIC — the producer's
//     compute thread never blocks for the consumer. This is why DataSpaces
//     beats LowFive by 20–50% in the paper's tests.
package dataspaces

import (
	"fmt"
	"sync"

	"lowfive/h5"
	"lowfive/internal/grid"
	"lowfive/mpi"
)

const (
	tagServer  = 21 // client -> server requests
	tagServerR = 22 // server -> client responses
	tagGet     = 23 // consumer -> producer direct fetch
	tagGetR    = 24 // producer -> consumer data
)

const (
	srvPut uint8 = iota + 1
	srvQuery
	srvShutdown
)

// versionKey identifies one (name, version) array generation.
type versionKey struct {
	name    string
	version int
}

type regionEntry struct {
	box  grid.Box
	rank int // producer rank (in the producer/server intercomm's remote group)
}

// Server is one rank of the staging service. Regions of an array are
// indexed at the server owning hash(name, version) — a simplification of
// DataSpaces' space-filling-curve sharding that preserves the single
// round-trip lookup. Queries whose box is not yet fully covered by indexed
// regions are parked and answered when the missing puts arrive, giving
// dspaces_get its blocking semantics without synchronizing producers.
type Server struct {
	task   *mpi.Comm
	index  map[versionKey][]regionEntry
	parked []parkedQuery
}

type parkedQuery struct {
	ic  *mpi.Intercomm
	src int
	key versionKey
	q   grid.Box
}

// RunServer serves put/query requests arriving from the given client tasks
// until it receives one shutdown message per client rank (producers and
// consumers each send one at Finalize).
func RunServer(task *mpi.Comm, clients ...*mpi.Intercomm) {
	s := &Server{task: task, index: map[versionKey][]regionEntry{}}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, ic := range clients {
		wg.Add(1)
		go func(ic *mpi.Intercomm) {
			defer wg.Done()
			shutdowns := 0
			for shutdowns < ic.RemoteSize() {
				req, st := ic.Recv(mpi.AnySource, tagServer)
				mu.Lock()
				shutdown := s.handle(ic, st.Source, req)
				mu.Unlock()
				if shutdown {
					shutdowns++
				}
			}
		}(ic)
	}
	wg.Wait()
}

// covered reports whether q is fully covered by the indexed regions of key.
func (s *Server) covered(key versionKey, q grid.Box) bool {
	remaining := []grid.Box{q}
	for _, ent := range s.index[key] {
		var next []grid.Box
		for _, r := range remaining {
			next = append(next, grid.Subtract(r, ent.box)...)
		}
		remaining = next
		if len(remaining) == 0 {
			return true
		}
	}
	return len(remaining) == 0
}

func (s *Server) queryResponse(key versionKey, q grid.Box) []byte {
	e := &h5.Encoder{}
	var hits []regionEntry
	for _, ent := range s.index[key] {
		if ent.box.Intersects(q) {
			hits = append(hits, ent)
		}
	}
	e.PutI64(int64(len(hits)))
	for _, h := range hits {
		e.PutI64(int64(h.rank))
		encodeBox(e, h.box)
	}
	return e.Buf
}

// handle processes one request; it must be called with the server lock held.
func (s *Server) handle(ic *mpi.Intercomm, src int, req []byte) (shutdown bool) {
	d := &h5.Decoder{Buf: req}
	switch d.U8() {
	case srvPut:
		key := versionKey{name: d.String(), version: int(d.I64())}
		rank := int(d.I64())
		box := decodeBox(d)
		s.index[key] = append(s.index[key], regionEntry{box: box, rank: rank})
		e := &h5.Encoder{}
		e.PutU8(1) // ack
		ic.Send(src, tagServerR, e.Buf)
		// Retry parked queries that the new region may complete.
		var still []parkedQuery
		for _, pq := range s.parked {
			if pq.key == key && s.covered(key, pq.q) {
				pq.ic.Send(pq.src, tagServerR, s.queryResponse(key, pq.q))
			} else {
				still = append(still, pq)
			}
		}
		s.parked = still
		return false
	case srvQuery:
		key := versionKey{name: d.String(), version: int(d.I64())}
		q := decodeBox(d)
		if !s.covered(key, q) {
			s.parked = append(s.parked, parkedQuery{ic: ic, src: src, key: key, q: q})
			return false
		}
		ic.Send(src, tagServerR, s.queryResponse(key, q))
		return false
	case srvShutdown:
		return true
	default:
		return false
	}
}

// serverFor shards (name, version) across server ranks.
func serverFor(name string, version, nservers int) int {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	h = (h ^ uint32(version)) * 16777619
	return int(h % uint32(nservers))
}

// Producer is the client-side handle of a producer rank.
type Producer struct {
	servers   *mpi.Intercomm
	consumers *mpi.Intercomm

	mu      sync.Mutex
	regions map[versionKey][]localRegion
	done    sync.WaitGroup
}

type localRegion struct {
	box  grid.Box
	data []byte
	elem int
}

// NewProducer builds a producer client and starts its responder goroutine —
// the stand-in for the RDMA NIC that lets consumers fetch registered
// regions without involving the producer's compute thread.
func NewProducer(servers, consumers *mpi.Intercomm) *Producer {
	p := &Producer{
		servers:   servers,
		consumers: consumers,
		regions:   map[versionKey][]localRegion{},
	}
	p.done.Add(1)
	go p.respond()
	return p
}

// PutLocal registers the local region of an array with the staging index.
// Only metadata travels; data stays in the caller's buffer, which must
// remain valid and unmodified until Finalize (dspaces_put_local semantics).
// The call does not wait for any consumer.
func (p *Producer) PutLocal(name string, version int, box grid.Box, data []byte, elemSize int) error {
	if int64(len(data)) < box.NumPoints()*int64(elemSize) {
		return fmt.Errorf("dataspaces: buffer %d bytes for region of %d elements", len(data), box.NumPoints())
	}
	key := versionKey{name, version}
	p.mu.Lock()
	p.regions[key] = append(p.regions[key], localRegion{box: box, data: data, elem: elemSize})
	p.mu.Unlock()
	e := &h5.Encoder{}
	e.PutU8(srvPut)
	e.PutString(name)
	e.PutI64(int64(version))
	e.PutI64(int64(p.servers.LocalRank()))
	encodeBox(e, box)
	srv := serverFor(name, version, p.servers.RemoteSize())
	p.servers.Send(srv, tagServer, e.Buf)
	p.servers.Recv(srv, tagServerR) // tiny ack; no consumer involvement
	return nil
}

// respond answers direct get requests from consumers (the "RDMA" path). It
// exits once every consumer rank has sent its stop marker (at Finalize).
func (p *Producer) respond() {
	defer p.done.Done()
	stops := 0
	for stops < p.consumers.RemoteSize() {
		req, st := p.consumers.Recv(mpi.AnySource, tagGet)
		d := &h5.Decoder{Buf: req}
		if d.U8() == 0 { // stop marker from a finalizing consumer
			stops++
			continue
		}
		key := versionKey{name: d.String(), version: int(d.I64())}
		q := decodeBox(d)
		e := &h5.Encoder{}
		p.mu.Lock()
		var pieces []localRegion
		for _, reg := range p.regions[key] {
			if reg.box.Intersects(q) {
				pieces = append(pieces, reg)
			}
		}
		e.PutI64(int64(len(pieces)))
		for _, reg := range pieces {
			inter := reg.box.Intersect(q)
			encodeBox(e, inter)
			e.PutI64(int64(reg.elem))
			// Gather straight into the message buffer (single copy).
			e.PutI64(inter.NumPoints() * int64(reg.elem))
			e.Buf = grid.GatherRegion(e.Buf, reg.data, reg.box, inter, reg.elem)
		}
		p.mu.Unlock()
		p.consumers.Send(st.Source, tagGetR, e.Buf)
	}
}

// Finalize tells every server this client is done and waits for the
// responder to drain (every consumer sends a stop marker from its own
// Finalize). Only after Finalize returns may registered buffers be reused.
func (p *Producer) Finalize() {
	for srv := 0; srv < p.servers.RemoteSize(); srv++ {
		e := &h5.Encoder{}
		e.PutU8(srvShutdown)
		p.servers.Send(srv, tagServer, e.Buf)
	}
	p.done.Wait()
}

// Consumer is the client-side handle of a consumer rank.
type Consumer struct {
	servers   *mpi.Intercomm
	producers *mpi.Intercomm
}

// NewConsumer builds a consumer client.
func NewConsumer(servers, producers *mpi.Intercomm) *Consumer {
	return &Consumer{servers: servers, producers: producers}
}

// Get fetches the q-shaped region of (name, version) into a row-major
// buffer over q: one index lookup at the owning server, then direct
// transfers from the producers holding intersecting regions.
func (c *Consumer) Get(name string, version int, q grid.Box, elemSize int) ([]byte, error) {
	e := &h5.Encoder{}
	e.PutU8(srvQuery)
	e.PutString(name)
	e.PutI64(int64(version))
	encodeBox(e, q)
	srv := serverFor(name, version, c.servers.RemoteSize())
	c.servers.Send(srv, tagServer, e.Buf)
	resp, _ := c.servers.Recv(srv, tagServerR)
	d := &h5.Decoder{Buf: resp}
	n := d.I64()
	if d.Err != nil || n < 0 {
		return nil, fmt.Errorf("dataspaces: corrupt query response")
	}
	ranks := map[int]bool{}
	var order []int
	for i := int64(0); i < n; i++ {
		r := int(d.I64())
		decodeBox(d)
		if !ranks[r] {
			ranks[r] = true
			order = append(order, r)
		}
	}
	out := make([]byte, q.NumPoints()*int64(elemSize))
	greq := &h5.Encoder{}
	greq.PutU8(1)
	greq.PutString(name)
	greq.PutI64(int64(version))
	encodeBox(greq, q)
	// All fetches are posted before any response is consumed — the
	// one-sided gets proceed concurrently, as RDMA reads would.
	for _, r := range order {
		c.producers.Send(r, tagGet, greq.Buf)
	}
	for _, r := range order {
		buf, _ := c.producers.Recv(r, tagGetR)
		pd := &h5.Decoder{Buf: buf}
		np := pd.I64()
		for i := int64(0); i < np; i++ {
			box := decodeBox(pd)
			elem := int(pd.I64())
			data := pd.Bytes()
			if pd.Err != nil {
				return nil, fmt.Errorf("dataspaces: corrupt get response: %v", pd.Err)
			}
			grid.CopyRegion(out, q, data, box, box.Intersect(q), elem)
		}
	}
	return out, nil
}

// Finalize tells every server this client is done and sends a stop marker
// to every producer's responder.
func (c *Consumer) Finalize() {
	for srv := 0; srv < c.servers.RemoteSize(); srv++ {
		e := &h5.Encoder{}
		e.PutU8(srvShutdown)
		c.servers.Send(srv, tagServer, e.Buf)
	}
	for r := 0; r < c.producers.RemoteSize(); r++ {
		c.producers.Send(r, tagGet, []byte{0})
	}
}

// encodeBox/decodeBox mirror the transport encodings in internal/core.
func encodeBox(e *h5.Encoder, b grid.Box) {
	e.PutI64(int64(b.Dim()))
	for d := range b.Min {
		e.PutI64(b.Min[d])
		e.PutI64(b.Max[d])
	}
}

func decodeBox(d *h5.Decoder) grid.Box {
	nd := d.I64()
	if d.Err != nil || nd < 0 || nd > 64 {
		return grid.Box{}
	}
	b := grid.Box{Min: make([]int64, nd), Max: make([]int64, nd)}
	for k := int64(0); k < nd; k++ {
		b.Min[k] = d.I64()
		b.Max[k] = d.I64()
	}
	return b
}
