// Package bredala implements the Bredala/Decaf-style semantic
// redistribution that Figure 9 compares against: data fields are appended
// to a container with annotations telling the redistribution component how
// to split and merge them, and two policies move containers from n producer
// ranks to m consumer ranks:
//
//   - RedistContiguous preserves global ordering of a linear list (used for
//     the particles dataset) — cheap, contiguous buffer slicing;
//   - RedistBBox redistributes coordinate-indexed grid data into consumer
//     bounding boxes (used for the grid dataset) — and, as Dreher et al.
//     report and the paper's Figure 9 reproduces, it spends most of its
//     time computing and communicating the indices of intersecting
//     bounding boxes and serializing items one at a time with their
//     coordinates.
package bredala

import (
	"fmt"

	"lowfive/h5"
	"lowfive/internal/grid"
	"lowfive/mpi"
)

// SplitPolicy annotates how a field is divided among consumers.
type SplitPolicy uint8

const (
	// SplitContiguous keeps a linear list's global order, cutting it into
	// near-equal contiguous chunks.
	SplitContiguous SplitPolicy = iota
	// SplitBBox routes coordinate-indexed items into consumer bounding
	// boxes.
	SplitBBox
)

// Field is one annotated member of a container.
type Field struct {
	Name     string
	Policy   SplitPolicy
	ElemSize int
	Data     []byte

	// Contiguous policy: the global offset of this rank's first item and
	// the global total, established by the application or via Negotiate.
	GlobalOffset int64
	GlobalCount  int64

	// BBox policy: the box this rank's data covers (row-major layout).
	Box grid.Box
	// Dims is the global extent the coordinates live in.
	Dims []int64
}

// Container is an ordered set of annotated fields, the unit Bredala moves.
type Container struct {
	Fields []*Field
}

// Append adds a field to the container.
func (c *Container) Append(f *Field) { c.Fields = append(c.Fields, f) }

// Field returns the named field.
func (c *Container) Field(name string) (*Field, bool) {
	for _, f := range c.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return nil, false
}

const (
	tagContig = 31
	tagBBoxIx = 32
	tagBBoxRq = 33
	tagBBoxDt = 34
)

// RedistributeContiguous moves a contiguous-policy field from the producer
// side to the consumer side. On producers, f supplies the local chunk and
// its global placement; consumers pass f nil and receive their chunk.
// Consumer j receives global items [j*N/m, (j+1)*N/m).
func RedistributeContiguous(ic *mpi.Intercomm, isProducer bool, f *Field, elemSize int) (*Field, error) {
	if isProducer {
		m := int64(ic.RemoteSize())
		N := f.GlobalCount
		lo := f.GlobalOffset
		hi := lo + int64(len(f.Data)/elemSize) // exclusive
		// Which consumers overlap my [lo, hi) range?
		for j := int64(0); j < m; j++ {
			c0 := j * N / m
			c1 := (j + 1) * N / m
			s := max64(lo, c0)
			e := min64(hi, c1)
			var chunk []byte
			if e > s {
				chunk = f.Data[(s-lo)*int64(elemSize) : (e-lo)*int64(elemSize)]
			}
			hdr := &h5.Encoder{}
			hdr.PutI64(s)
			hdr.PutBytes(chunk)
			ic.Send(int(j), tagContig, hdr.Buf)
		}
		return nil, nil
	}
	// Consumer: my global range, assembled from every producer's message.
	firstMsg, _ := ic.Recv(mpi.AnySource, tagContig)
	msgs := [][]byte{firstMsg}
	for i := 1; i < ic.RemoteSize(); i++ {
		b, _ := ic.Recv(mpi.AnySource, tagContig)
		msgs = append(msgs, b)
	}
	// Total N must be communicated by the application; we reconstruct the
	// local extent from the received chunks.
	var lo int64 = -1
	var hi int64
	type part struct {
		off  int64
		data []byte
	}
	var parts []part
	for _, m := range msgs {
		d := &h5.Decoder{Buf: m}
		off := d.I64()
		data := d.Bytes()
		if d.Err != nil {
			return nil, fmt.Errorf("bredala: corrupt contiguous message: %v", d.Err)
		}
		if len(data) == 0 {
			continue
		}
		n := int64(len(data) / elemSize)
		if lo < 0 || off < lo {
			lo = off
		}
		if off+n > hi {
			hi = off + n
		}
		parts = append(parts, part{off, data})
	}
	if lo < 0 {
		return &Field{Policy: SplitContiguous, ElemSize: elemSize}, nil
	}
	out := make([]byte, (hi-lo)*int64(elemSize))
	for _, p := range parts {
		copy(out[(p.off-lo)*int64(elemSize):], p.data)
	}
	return &Field{Policy: SplitContiguous, ElemSize: elemSize, Data: out, GlobalOffset: lo, GlobalCount: hi - lo}, nil
}

// RedistributeBBox moves a bbox-policy field. Producers pass their field
// (local box + data) and the consumer boxes are established by an index
// negotiation: every producer sends its bounding box to every consumer,
// each consumer replies with the sub-boxes it needs, and producers then
// serialize the requested items one at a time together with their
// coordinates (Bredala keeps semantic items self-describing). Consumers
// place items by coordinate. This mirrors the expensive index phase Dreher
// et al. measured.
func RedistributeBBox(ic *mpi.Intercomm, isProducer bool, f *Field, myBox grid.Box, elemSize int, dims []int64) (*Field, error) {
	d := len(dims)
	if isProducer {
		// Phase 1: advertise my bounding box to every consumer.
		adv := &h5.Encoder{}
		encodeBox(adv, f.Box)
		for c := 0; c < ic.RemoteSize(); c++ {
			ic.Send(c, tagBBoxIx, adv.Buf)
		}
		// Phase 2: receive each consumer's requested sub-box.
		requests := make([]grid.Box, ic.RemoteSize())
		for i := 0; i < ic.RemoteSize(); i++ {
			b, st := ic.Recv(mpi.AnySource, tagBBoxRq)
			dec := &h5.Decoder{Buf: b}
			requests[st.Source] = decodeBox(dec)
		}
		// Phase 3: serialize item-by-item with coordinates.
		for c, rq := range requests {
			e := &h5.Encoder{}
			inter := f.Box.Intersect(rq)
			if !inter.IsEmpty() {
				forEachPoint(inter, func(pt []int64) {
					for _, x := range pt {
						e.PutI64(x)
					}
					off := grid.LocalIndex(f.Box, pt) * int64(elemSize)
					e.Buf = append(e.Buf, f.Data[off:off+int64(elemSize)]...)
				})
			}
			ic.Send(c, tagBBoxDt, e.Buf)
		}
		return nil, nil
	}
	// Consumer: receive all advertisements, request intersections, then
	// place arriving items by coordinate.
	advBoxes := make([]grid.Box, ic.RemoteSize())
	for i := 0; i < ic.RemoteSize(); i++ {
		b, st := ic.Recv(mpi.AnySource, tagBBoxIx)
		dec := &h5.Decoder{Buf: b}
		advBoxes[st.Source] = decodeBox(dec)
	}
	rq := &h5.Encoder{}
	encodeBox(rq, myBox)
	for p := 0; p < ic.RemoteSize(); p++ {
		ic.Send(p, tagBBoxRq, rq.Buf)
	}
	out := make([]byte, myBox.NumPoints()*int64(elemSize))
	itemBytes := d*8 + elemSize
	for p := 0; p < ic.RemoteSize(); p++ {
		b, _ := ic.Recv(mpi.AnySource, tagBBoxDt)
		if len(b)%itemBytes != 0 {
			return nil, fmt.Errorf("bredala: bbox data message of %d bytes not a multiple of item size %d", len(b), itemBytes)
		}
		pt := make([]int64, d)
		for pos := 0; pos < len(b); pos += itemBytes {
			dec := &h5.Decoder{Buf: b[pos : pos+itemBytes]}
			for k := 0; k < d; k++ {
				pt[k] = dec.I64()
			}
			off := grid.LocalIndex(myBox, pt) * int64(elemSize)
			copy(out[off:off+int64(elemSize)], b[pos+d*8:pos+itemBytes])
		}
	}
	return &Field{Policy: SplitBBox, ElemSize: elemSize, Data: out, Box: myBox, Dims: dims}, nil
}

func encodeBox(e *h5.Encoder, b grid.Box) {
	e.PutI64(int64(b.Dim()))
	for d := range b.Min {
		e.PutI64(b.Min[d])
		e.PutI64(b.Max[d])
	}
}

func decodeBox(d *h5.Decoder) grid.Box {
	nd := d.I64()
	if d.Err != nil || nd < 0 || nd > 64 {
		return grid.Box{}
	}
	b := grid.Box{Min: make([]int64, nd), Max: make([]int64, nd)}
	for k := int64(0); k < nd; k++ {
		b.Min[k] = d.I64()
		b.Max[k] = d.I64()
	}
	return b
}

func forEachPoint(b grid.Box, fn func(pt []int64)) {
	if b.IsEmpty() {
		return
	}
	pt := append([]int64(nil), b.Min...)
	d := b.Dim()
	for {
		fn(pt)
		k := d - 1
		for k >= 0 {
			pt[k]++
			if pt[k] <= b.Max[k] {
				break
			}
			pt[k] = b.Min[k]
			k--
		}
		if k < 0 {
			return
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
