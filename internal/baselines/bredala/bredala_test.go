package bredala

import (
	"testing"

	"lowfive/h5"
	"lowfive/internal/grid"
	"lowfive/mpi"
)

func TestContainerFields(t *testing.T) {
	c := &Container{}
	c.Append(&Field{Name: "grid", Policy: SplitBBox})
	c.Append(&Field{Name: "particles", Policy: SplitContiguous})
	if f, ok := c.Field("particles"); !ok || f.Policy != SplitContiguous {
		t.Error("field lookup failed")
	}
	if _, ok := c.Field("nope"); ok {
		t.Error("missing field should not be found")
	}
}

func TestRedistributeContiguous(t *testing.T) {
	// 3 producers with 4 items each -> 2 consumers with 6 each, order kept.
	const perProd, nProd, nCons = 4, 3, 2
	N := int64(perProd * nProd)
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "prod", Procs: nProd, Main: func(p *mpi.Proc) {
			r := int64(p.Task.Rank())
			vals := make([]uint64, perProd)
			for i := range vals {
				vals[i] = uint64(r*perProd + int64(i))
			}
			f := &Field{
				Name: "list", Policy: SplitContiguous, ElemSize: 8,
				Data: h5.Bytes(vals), GlobalOffset: r * perProd, GlobalCount: N,
			}
			if _, err := RedistributeContiguous(p.Intercomm("cons"), true, f, 8); err != nil {
				t.Error(err)
			}
		}},
		{Name: "cons", Procs: nCons, Main: func(p *mpi.Proc) {
			out, err := RedistributeContiguous(p.Intercomm("prod"), false, nil, 8)
			if err != nil {
				t.Error(err)
				return
			}
			r := int64(p.Task.Rank())
			wantLo := r * N / nCons
			wantN := (r+1)*N/nCons - wantLo
			if out.GlobalOffset != wantLo || out.GlobalCount != wantN {
				t.Errorf("rank %d: got [%d,+%d) want [%d,+%d)",
					r, out.GlobalOffset, out.GlobalCount, wantLo, wantN)
				return
			}
			vals := h5.View[uint64](out.Data)
			for i := range vals {
				if vals[i] != uint64(wantLo+int64(i)) {
					t.Errorf("rank %d: item %d = %d", r, i, vals[i])
					return
				}
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRedistributeBBox(t *testing.T) {
	dims := []int64{6, 6}
	nProd, nCons := 2, 3
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "prod", Procs: nProd, Main: func(p *mpi.Proc) {
			r := int64(p.Task.Rank())
			n := int64(nProd)
			box := grid.Box{Min: []int64{r * dims[0] / n, 0}, Max: []int64{(r+1)*dims[0]/n - 1, dims[1] - 1}}
			vals := make([]uint32, box.NumPoints())
			i := 0
			for x := box.Min[0]; x <= box.Max[0]; x++ {
				for y := box.Min[1]; y <= box.Max[1]; y++ {
					vals[i] = uint32(x*dims[1] + y)
					i++
				}
			}
			f := &Field{Name: "grid", Policy: SplitBBox, ElemSize: 4, Data: h5.Bytes(vals), Box: box, Dims: dims}
			if _, err := RedistributeBBox(p.Intercomm("cons"), true, f, grid.Box{}, 4, dims); err != nil {
				t.Error(err)
			}
		}},
		{Name: "cons", Procs: nCons, Main: func(p *mpi.Proc) {
			r := int64(p.Task.Rank())
			m := int64(nCons)
			box := grid.Box{Min: []int64{0, r * dims[1] / m}, Max: []int64{dims[0] - 1, (r+1)*dims[1]/m - 1}}
			out, err := RedistributeBBox(p.Intercomm("prod"), false, nil, box, 4, dims)
			if err != nil {
				t.Error(err)
				return
			}
			vals := h5.View[uint32](out.Data)
			i := 0
			for x := box.Min[0]; x <= box.Max[0]; x++ {
				for y := box.Min[1]; y <= box.Max[1]; y++ {
					if vals[i] != uint32(x*dims[1]+y) {
						t.Errorf("rank %d: (%d,%d)=%d", r, x, y, vals[i])
						return
					}
					i++
				}
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestContiguousUnevenSplit(t *testing.T) {
	// 7 items over 2 producers -> 3 consumers; boundaries must not lose or
	// duplicate items.
	N := int64(7)
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "prod", Procs: 2, Main: func(p *mpi.Proc) {
			r := int64(p.Task.Rank())
			lo := r * N / 2
			hi := (r + 1) * N / 2
			vals := make([]uint64, hi-lo)
			for i := range vals {
				vals[i] = uint64(lo + int64(i))
			}
			f := &Field{Policy: SplitContiguous, ElemSize: 8, Data: h5.Bytes(vals), GlobalOffset: lo, GlobalCount: N}
			RedistributeContiguous(p.Intercomm("cons"), true, f, 8)
		}},
		{Name: "cons", Procs: 3, Main: func(p *mpi.Proc) {
			out, err := RedistributeContiguous(p.Intercomm("prod"), false, nil, 8)
			if err != nil {
				t.Error(err)
				return
			}
			r := int64(p.Task.Rank())
			wantLo := r * N / 3
			wantN := (r+1)*N/3 - wantLo
			if out.GlobalCount != wantN {
				t.Errorf("rank %d: count %d want %d", r, out.GlobalCount, wantN)
			}
			vals := h5.View[uint64](out.Data)
			for i := range vals {
				if vals[i] != uint64(wantLo+int64(i)) {
					t.Errorf("rank %d: item %d=%d", r, i, vals[i])
				}
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}
