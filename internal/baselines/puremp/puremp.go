// Package puremp is the "Pure MPI" baseline of Figure 7: a hand-written
// redistribution between a producer and a consumer task that both know the
// global extent and each other's decompositions. As the paper describes
// (§IV-B-c), the hand-written code "simply iterates over all the data points
// in the intersection of bounding boxes and serializes them one point at a
// time" — no run coalescing — which is why LowFive's optimized
// serialization beats it at small scale.
package puremp

import (
	"lowfive/internal/grid"
	"lowfive/mpi"
)

const (
	tagData = 11
)

// ProducerSend sends this producer rank's piece of every consumer rank's
// box. localBox is the region this rank holds (data in row-major order over
// localBox); consumerBox gives the box each remote rank wants. Every
// element is serialized individually.
func ProducerSend(ic *mpi.Intercomm, localBox grid.Box, data []byte, elemSize int, consumerBox func(rank int) grid.Box) {
	for c := 0; c < ic.RemoteSize(); c++ {
		inter := localBox.Intersect(consumerBox(c))
		if inter.IsEmpty() {
			// Hand-written codes still send an empty message so the
			// consumer's receive count is deterministic.
			ic.Send(c, tagData, nil)
			continue
		}
		buf := make([]byte, 0, inter.NumPoints()*int64(elemSize))
		// Element-at-a-time serialization: one coordinate conversion and one
		// tiny copy per point.
		forEachPoint(inter, func(pt []int64) {
			off := grid.LocalIndex(localBox, pt) * int64(elemSize)
			buf = append(buf, data[off:off+int64(elemSize)]...)
		})
		ic.Send(c, tagData, buf)
	}
}

// ConsumerRecv receives this consumer rank's box from every producer rank
// whose box intersects it, deserializing element by element, and returns
// the assembled row-major buffer over myBox.
func ConsumerRecv(ic *mpi.Intercomm, myBox grid.Box, elemSize int, producerBox func(rank int) grid.Box) []byte {
	out := make([]byte, myBox.NumPoints()*int64(elemSize))
	// Receive exactly one message per producer, by source, so that two
	// back-to-back exchanges on the same intercommunicator (grid then
	// particles) cannot steal each other's messages.
	for src := 0; src < ic.RemoteSize(); src++ {
		buf, _ := ic.Recv(src, tagData)
		inter := producerBox(src).Intersect(myBox)
		if inter.IsEmpty() {
			continue
		}
		pos := 0
		forEachPoint(inter, func(pt []int64) {
			off := grid.LocalIndex(myBox, pt) * int64(elemSize)
			copy(out[off:off+int64(elemSize)], buf[pos:pos+elemSize])
			pos += elemSize
		})
	}
	return out
}

// forEachPoint visits every lattice point of a box in row-major order.
func forEachPoint(b grid.Box, fn func(pt []int64)) {
	if b.IsEmpty() {
		return
	}
	pt := append([]int64(nil), b.Min...)
	d := b.Dim()
	for {
		fn(pt)
		k := d - 1
		for k >= 0 {
			pt[k]++
			if pt[k] <= b.Max[k] {
				break
			}
			pt[k] = b.Min[k]
			k--
		}
		if k < 0 {
			return
		}
	}
}
