package puremp

import (
	"testing"

	"lowfive/h5"
	"lowfive/internal/grid"
	"lowfive/mpi"
)

// rowBox/colBox are the decompositions both sides of the hand-written code
// know at compile time.
func rowBox(dims []int64, n, rank int) grid.Box {
	r0 := int64(rank) * dims[0] / int64(n)
	r1 := int64(rank+1)*dims[0]/int64(n) - 1
	return grid.Box{Min: []int64{r0, 0}, Max: []int64{r1, dims[1] - 1}}
}

func colBox(dims []int64, m, rank int) grid.Box {
	c0 := int64(rank) * dims[1] / int64(m)
	c1 := int64(rank+1)*dims[1]/int64(m) - 1
	return grid.Box{Min: []int64{0, c0}, Max: []int64{dims[0] - 1, c1}}
}

func TestPureMPIRedistribution(t *testing.T) {
	dims := []int64{6, 8}
	nProd, nCons := 3, 2
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "prod", Procs: nProd, Main: func(p *mpi.Proc) {
			my := rowBox(dims, nProd, p.Task.Rank())
			vals := make([]uint64, my.NumPoints())
			i := 0
			for r := my.Min[0]; r <= my.Max[0]; r++ {
				for c := my.Min[1]; c <= my.Max[1]; c++ {
					vals[i] = uint64(r*dims[1] + c)
					i++
				}
			}
			ProducerSend(p.Intercomm("cons"), my, h5.Bytes(vals), 8, func(rank int) grid.Box {
				return colBox(dims, nCons, rank)
			})
		}},
		{Name: "cons", Procs: nCons, Main: func(p *mpi.Proc) {
			my := colBox(dims, nCons, p.Task.Rank())
			out := ConsumerRecv(p.Intercomm("prod"), my, 8, func(rank int) grid.Box {
				return rowBox(dims, nProd, rank)
			})
			vals := h5.View[uint64](out)
			i := 0
			for r := my.Min[0]; r <= my.Max[0]; r++ {
				for c := my.Min[1]; c <= my.Max[1]; c++ {
					if vals[i] != uint64(r*dims[1]+c) {
						t.Errorf("rank %d: (%d,%d)=%d want %d", p.Task.Rank(), r, c, vals[i], r*dims[1]+c)
						return
					}
					i++
				}
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPureMPINonIntersecting(t *testing.T) {
	// A producer whose box intersects no consumer still sends empty
	// messages so receive counts stay deterministic.
	dims := []int64{4, 4}
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "prod", Procs: 2, Main: func(p *mpi.Proc) {
			var my grid.Box
			if p.Task.Rank() == 0 {
				my = grid.WholeExtent(dims)
			} else {
				my = grid.Box{Min: []int64{2, 2}, Max: []int64{1, 1}} // empty
			}
			data := make([]byte, my.NumPoints())
			ProducerSend(p.Intercomm("cons"), my, data, 1, func(int) grid.Box {
				return grid.WholeExtent(dims)
			})
		}},
		{Name: "cons", Procs: 1, Main: func(p *mpi.Proc) {
			out := ConsumerRecv(p.Intercomm("prod"), grid.WholeExtent(dims), 1, func(rank int) grid.Box {
				if rank == 0 {
					return grid.WholeExtent(dims)
				}
				return grid.Box{Min: []int64{2, 2}, Max: []int64{1, 1}}
			})
			if int64(len(out)) != 16 {
				t.Errorf("len=%d", len(out))
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestForEachPointOrder(t *testing.T) {
	b := grid.NewBox([]int64{0, 0}, []int64{2, 2})
	var pts [][2]int64
	forEachPoint(b, func(pt []int64) { pts = append(pts, [2]int64{pt[0], pt[1]}) })
	want := [][2]int64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	if len(pts) != len(want) {
		t.Fatalf("pts=%v", pts)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("pts[%d]=%v want %v", i, pts[i], want[i])
		}
	}
}
