// Streaming call mode: a response too large (or too useful to pipeline) to
// travel as one sealed body is framed as a sequence of bounded chunks under
// the same seq+CRC envelope the scalar calls use. The server writes frame
// headers into pooled buffers in place (no re-buffering of the body), the
// client consumes frames in order and releases each one back to its pool,
// so peak transport memory is O(frames in flight) instead of O(response).
//
// A frame is a sealed envelope whose body begins with a frame index and a
// flags byte:
//
//	[seq 8][crc32 4][deadline 8][idx 4][flags 1][payload]
//
// The CRC covers deadline+idx+flags+payload, so the existing
// corrupt-discard logic applies unchanged (response frames carry a zero
// deadline — only requests are budget-checked). Recovery reuses the scalar retry contract: if a frame
// is lost or corrupted the client times out and resends the request (same
// seq); the server forgets a stream's seq as soon as its last frame is sent,
// so the retry re-dispatches the handler, which re-streams from frame 0 and
// the client discards every index it has already consumed.
package rpc

import (
	"encoding/binary"
	"hash/crc32"
	"time"

	"lowfive/internal/buf"
	"lowfive/internal/spin"
	"lowfive/mpi"
)

const (
	// FrameOverhead is the per-frame header: the seal envelope
	// (seq+CRC+deadline) plus the frame index and flags.
	FrameOverhead = headerLen + 5

	flagLast = 1 << 0
)

// Stream is the server-side sender of one streamed response. Handlers Grab
// contiguous regions, fill them in place, and Close; framing and flushing
// are automatic. Close sends the final frame (flagged last, possibly empty)
// and forgets the request's dedup entry so a client retry re-dispatches.
type Stream struct {
	srv    *Server
	src    int
	seq    uint64
	idx    uint32
	w      *buf.Writer
	frames int
	bytes  int64
}

// NewStream starts a streamed response to the (src, seq) request previously
// obtained from Recv. pool nil uses buf.Default.
func (s *Server) NewStream(src int, seq uint64, pool *buf.Pool) *Stream {
	st := &Stream{srv: s, src: src, seq: seq}
	st.w = buf.NewWriter(pool, FrameOverhead, func(frame []byte) { st.send(frame, false) })
	return st
}

// MaxSegment returns the largest Grab that still fits a pooled frame.
func (st *Stream) MaxSegment() int { return st.w.MaxGrab() }

// Grab returns an n-byte region of the current frame for the handler to
// fill in place; a full frame is sent before a fresh one is started.
func (st *Stream) Grab(n int) []byte { return st.w.Grab(n) }

// Close sends the pending data as the stream's last frame (an empty last
// frame if nothing is pending) and releases the request's dedup entry.
func (st *Stream) Close() {
	frame := st.w.Take()
	if frame == nil {
		frame = make([]byte, FrameOverhead)
	}
	st.send(frame, true)
	st.srv.Forget(st.src, st.seq)
}

// Frames returns how many frames were sent, Bytes the payload bytes.
func (st *Stream) Frames() int { return st.frames }

// Bytes returns the total payload bytes sent.
func (st *Stream) Bytes() int64 { return st.bytes }

// send seals one frame in place and hands it to the transport. Ownership of
// the frame transfers with the send: the receiver releases it.
func (st *Stream) send(frame []byte, last bool) {
	binary.LittleEndian.PutUint64(frame[0:], st.seq)
	binary.LittleEndian.PutUint64(frame[12:], 0) // pooled frame: clear the deadline field
	binary.LittleEndian.PutUint32(frame[headerLen:], st.idx)
	var flags byte
	if last {
		flags |= flagLast
	}
	frame[headerLen+4] = flags
	binary.LittleEndian.PutUint32(frame[8:], crc32.ChecksumIEEE(frame[12:]))
	st.srv.IC.Send(st.src, tagResponse, frame)
	st.idx++
	st.frames++
	st.bytes += int64(len(frame) - FrameOverhead)
}

// Forget drops the dedup entry for (src, seq) so a duplicate or retried
// request re-dispatches the handler instead of being swallowed. Streamed
// responses cannot be replayed from cache, so re-dispatch is their replay.
func (s *Server) Forget(src int, seq uint64) {
	s.mu.Lock()
	if m := s.seen[src]; m != nil {
		delete(m, seq)
	}
	s.mu.Unlock()
}

// StreamCall is the client side of one streamed response.
type StreamCall struct {
	c       *Client
	dest    int
	seq     uint64
	overall int64 // absolute end-to-end deadline from the client's Budget
	req     []byte
	next    uint32
	sent    time.Time // when StartStream posted the request, for the latency histogram
	err     error     // breaker fast-fail, surfaced by Drain before any receive
}

// StartStream sends req to dest and returns the handle to drain the framed
// response. The request body must stay valid until Drain returns (it is
// resent on retry). If dest's circuit breaker is open the request is not
// sent; Drain returns the *BreakerOpenError immediately.
func (c *Client) StartStream(dest int, req []byte) *StreamCall {
	if err := c.breakerAllow(dest, req); err != nil {
		return &StreamCall{c: c, dest: dest, req: req, sent: time.Now(), err: err}
	}
	seq := c.nextSeq()
	dl := c.deadline()
	sent := time.Now()
	c.IC.Send(dest, tagRequest, seal(seq, dl, req))
	return &StreamCall{c: c, dest: dest, seq: seq, overall: dl, req: req, sent: sent}
}

// Drain receives the stream's frames in order, invoking onFrame with each
// payload. The payload aliases a pooled buffer that is released when
// onFrame returns, so onFrame must consume (scatter/copy) it before
// returning. An onFrame error aborts the drain and is returned.
//
// Loss recovery mirrors Call: with a Timeout configured, a silent gap
// resends the request (same seq) and the server re-streams from frame 0;
// already-consumed indices are discarded. A crashed peer returns a
// *CallError wrapping mpi.RankFailedError.
func (sc *StreamCall) Drain(onFrame func(payload []byte) error) (err error) {
	if sc.err != nil {
		return sc.err // breaker fast-fail: the request was never sent
	}
	c := sc.c
	start := time.Now()
	attempts := 1
	// The stream's latency covers the whole call — StartStream's request
	// send to the last frame — labeled by the request's method (the
	// data-stream op), like any scalar call.
	c.instruments()
	defer func() { c.observe(sc.req, sc.sent, attempts) }()
	defer func() {
		if r := recover(); r != nil {
			if rf, ok := r.(*mpi.RankFailedError); ok {
				c.breakerOnFailure(sc.dest, sc.req)
				err = &CallError{Dest: sc.dest, Attempts: attempts, Elapsed: time.Since(start), Err: rf}
				return
			}
			panic(r)
		}
	}()
	var ss shedState
	if c.Timeout <= 0 {
		// Fail-stop mode: the transport delivers in order and never drops,
		// so block per frame until the last flag.
		for {
			msg, _ := c.IC.Recv(sc.dest, tagResponse)
			if ra, isShed := sc.shedCheck(msg); isShed {
				buf.Release(msg)
				retry, serr := c.handleShed(&ss, sc.dest, sc.seq, sc.overall, ra, sc.req)
				if !retry {
					return serr
				}
				continue
			}
			payload, last, ok := sc.accept(msg)
			if !ok {
				continue
			}
			ferr := onFrame(payload)
			buf.Release(msg)
			if ferr != nil {
				return ferr
			}
			if last {
				c.breakerOnSuccess(sc.dest, sc.req)
				return nil
			}
		}
	}
	backoff := c.Backoff
	var down *mpi.RankFailedError
	for attempt := 0; ; attempt++ {
		attempts = attempt + 1
		deadline := time.Now().Add(c.Timeout)
		if sc.overall != 0 {
			if od := time.Unix(0, sc.overall); od.Before(deadline) {
				deadline = od
			}
		}
		for time.Now().Before(deadline) {
			msg, got, pd := c.tryRecv(sc.dest)
			if pd != nil {
				down = pd
				spin.Wait(pollInterval)
				continue
			}
			if !got {
				spin.Wait(pollInterval)
				continue
			}
			if ra, isShed := sc.shedCheck(msg); isShed {
				buf.Release(msg)
				retry, serr := c.handleShed(&ss, sc.dest, sc.seq, sc.overall, ra, sc.req)
				if !retry {
					return serr
				}
				// The post-backoff resend re-streams from frame 0; the
				// cursor stays put so already-consumed indices are skipped,
				// exactly like loss recovery. A shed proves the server
				// alive, so restart the attempt clock.
				deadline = time.Now().Add(c.Timeout)
				if sc.overall != 0 {
					if od := time.Unix(0, sc.overall); od.Before(deadline) {
						deadline = od
					}
				}
				continue
			}
			payload, last, ok := sc.accept(msg)
			if !ok {
				continue
			}
			ferr := onFrame(payload)
			buf.Release(msg)
			if ferr != nil {
				return ferr
			}
			if last {
				c.breakerOnSuccess(sc.dest, sc.req)
				return nil
			}
			// Progress: each accepted frame refreshes the deadline and the
			// retry budget.
			deadline = time.Now().Add(c.Timeout)
			attempt = 0
			backoff = c.Backoff
		}
		spent := sc.overall != 0 && time.Now().UnixNano() >= sc.overall
		if attempt >= c.Retries || spent {
			c.timeouts.Add(1)
			c.mTimeouts.Inc()
			c.breakerOnFailure(sc.dest, sc.req)
			if down != nil {
				return &CallError{Dest: sc.dest, Attempts: attempts, Elapsed: time.Since(start), Err: down}
			}
			to := &TimeoutError{Dest: sc.dest, Timeout: c.Timeout, Attempts: attempts, Elapsed: time.Since(start)}
			return &CallError{Dest: sc.dest, Attempts: attempts, Elapsed: time.Since(start), Err: to}
		}
		if backoff > 0 {
			spin.Wait(backoff)
			backoff *= 2
		}
		if down != nil {
			// The peer crashed mid-stream (and may be relaunched by a
			// supervisor). Restart the accept cursor along with the
			// re-dispatch: a restarted producer may segment the re-streamed
			// response differently (its rejoined triples need not match the
			// originals), so discarding "already consumed" indices could
			// skip regions the new segmentation packs there. Re-consuming
			// is safe on this path — streamed frames are self-describing
			// box-addressed scatters, applied in stream order. Plain loss
			// recovery (no crash) keeps the cursor: the re-stream is
			// identical and consumed indices are skipped as before.
			sc.next = 0
			down = nil
		}
		c.noteRetry(sc.dest, attempt+1)
		c.IC.Send(sc.dest, tagRequest, seal(sc.seq, sc.overall, sc.req))
	}
}

// Discard drains the stream's remaining frames without consuming them,
// releasing each back to its pool — the cleanup path for a windowed query
// that is abandoning streams it already started after another producer
// failed. An overloaded reply ends the discard immediately (the server
// refused; nothing more is coming), as does a crashed peer. In timeout mode
// the discard gives up after one quiet Timeout; stragglers that arrive later
// are released by the stale-seq handling of subsequent calls.
func (sc *StreamCall) Discard() {
	if sc.err != nil {
		return // never sent
	}
	c := sc.c
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(*mpi.RankFailedError); ok {
				return
			}
			panic(r)
		}
	}()
	if c.Timeout <= 0 {
		for {
			msg, _ := c.IC.Recv(sc.dest, tagResponse)
			if _, isShed := sc.shedCheck(msg); isShed {
				buf.Release(msg)
				return
			}
			_, last, ok := sc.accept(msg)
			if !ok {
				continue
			}
			buf.Release(msg)
			if last {
				return
			}
		}
	}
	deadline := time.Now().Add(c.Timeout)
	for time.Now().Before(deadline) {
		msg, got, pd := c.tryRecv(sc.dest)
		if pd != nil {
			return
		}
		if !got {
			spin.Wait(pollInterval)
			continue
		}
		if _, isShed := sc.shedCheck(msg); isShed {
			buf.Release(msg)
			return
		}
		_, last, ok := sc.accept(msg)
		if !ok {
			continue
		}
		buf.Release(msg)
		if last {
			return
		}
		deadline = time.Now().Add(c.Timeout)
	}
}

// shedCheck recognizes an overloaded reply addressed to this stream: a
// sealed empty body (too short to be a frame — accept requires idx+flags)
// whose envelope deadline is negative, carrying -RetryAfter. The message is
// not released; the caller owns it either way.
func (sc *StreamCall) shedCheck(msg []byte) (retryAfter time.Duration, isShed bool) {
	rseq, rdl, body, ok := unseal(msg)
	if !ok || rseq != sc.seq || len(body) != 0 {
		return 0, false
	}
	return shedRetryAfter(rdl)
}

// accept validates one received message against the stream: envelope CRC,
// sequence number, and the exact next frame index. Anything else — corrupt,
// stale seq, an already-consumed index from a re-stream, or a gapped index
// after a loss — is discarded and released; retry recovers the gap.
func (sc *StreamCall) accept(msg []byte) (payload []byte, last bool, ok bool) {
	rseq, _, body, ok := unseal(msg)
	if !ok || rseq != sc.seq || len(body) < 5 {
		buf.Release(msg)
		return nil, false, false
	}
	idx := binary.LittleEndian.Uint32(body[0:4])
	if idx != sc.next {
		buf.Release(msg)
		return nil, false, false
	}
	sc.next++
	return body[5:], body[4]&flagLast != 0, true
}
