// Per-destination circuit breakers: after enough consecutive failures
// (sheds, timeouts, crashes) a client stops sending to that rank entirely —
// the typed fast-fail is cheaper for everyone than another request the
// overloaded peer must receive just to shed. After a cooldown, one probe is
// let through (half-open); its success closes the breaker, its failure
// reopens it for a fresh cooldown. Classic three-state breaker, keyed per
// (remote rank, method class): a shed is an overload signal about one kind
// of work, and a healthy scalar metadata response interleaved between two
// shed data streams must not reset the stream class's failure count — with
// a single per-rank breaker the alternating pattern of a saturated serve
// path would keep the count forever below threshold.
package rpc

import (
	"sync"
	"time"
)

type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// defaultBreakerCooldown is the open interval before a half-open probe when
// the client does not configure one.
const defaultBreakerCooldown = 25 * time.Millisecond

// breaker is the state machine for one destination rank. now is injectable
// so tests drive the clock deterministically.
type breaker struct {
	mu        sync.Mutex
	state     breakerState
	fails     int       // consecutive failures while closed
	until     time.Time // open: when the cooldown expires
	probing   bool      // half-open: a probe is in flight
	threshold int
	cooldown  time.Duration
	now       func() time.Time
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a call may proceed. When the breaker is open it
// returns false and the remaining cooldown; when the cooldown has elapsed
// the caller becomes the half-open probe (exactly one at a time — other
// callers keep fast-failing until the probe resolves).
func (b *breaker) allow() (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, 0
	case breakerOpen:
		if remain := b.until.Sub(b.now()); remain > 0 {
			return false, remain
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true, 0
	default: // half-open
		if b.probing {
			return false, b.cooldown
		}
		b.probing = true
		return true, 0
	}
}

// onSuccess records a successful response: it closes a half-open breaker
// and resets the consecutive-failure count.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
}

// onFailure records one failure (shed, timeout, or peer crash). It returns
// true when this failure transitioned the breaker to open — either the
// threshold'th consecutive failure while closed, or a failed half-open
// probe.
func (b *breaker) onFailure() (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.fails++
		if b.fails < b.threshold {
			return false
		}
	case breakerOpen:
		return false // already open; late failures of in-flight calls
	case breakerHalfOpen:
		// The probe failed: back to open for a fresh cooldown.
	}
	b.state = breakerOpen
	b.fails = 0
	b.probing = false
	b.until = b.now().Add(b.cooldown)
	return true
}

// breakerKey identifies one breaker: a destination rank and the method
// class of the guarded calls ("" when the client has no Method classifier —
// then one breaker guards all of a rank's traffic).
type breakerKey struct {
	dest   int
	method string
}

// method classifies a request for breaker keying and exemption checks.
func (c *Client) method(req []byte) string {
	if c.Method == nil {
		return ""
	}
	return c.Method(req)
}

// breakerFor returns the breaker guarding (dest, method), creating it on
// first use. Nil when the client has no BreakerThreshold configured.
func (c *Client) breakerFor(dest int, method string) *breaker {
	if c.BreakerThreshold <= 0 {
		return nil
	}
	c.bmu.Lock()
	defer c.bmu.Unlock()
	if c.brk == nil {
		c.brk = map[breakerKey]*breaker{}
	}
	k := breakerKey{dest, method}
	b, ok := c.brk[k]
	if !ok {
		b = newBreaker(c.BreakerThreshold, c.BreakerCooldown)
		c.brk[k] = b
	}
	return b
}

// breakerAllow gates one outgoing call on its breaker, returning the typed
// fast-fail when it is open. Done notifications are exempt — refusing to
// deliver a consumer's done would strand the producer's serve session long
// after the overload has passed.
func (c *Client) breakerAllow(dest int, req []byte) error {
	m := c.method(req)
	if m == "done" {
		return nil
	}
	b := c.breakerFor(dest, m)
	if b == nil {
		return nil
	}
	if ok, ra := b.allow(); !ok {
		return &BreakerOpenError{Dest: dest, RetryAfter: ra}
	}
	return nil
}

// breakerOnFailure feeds one failure into the call's breaker and counts the
// open transition on the stats and metrics planes.
func (c *Client) breakerOnFailure(dest int, req []byte) (opened bool) {
	b := c.breakerFor(dest, c.method(req))
	if b == nil {
		return false
	}
	if b.onFailure() {
		c.breakerOpens.Add(1)
		c.mBreakerOpen.Inc()
		return true
	}
	return false
}

// breakerOnSuccess feeds one success into the call's breaker.
func (c *Client) breakerOnSuccess(dest int, req []byte) {
	if b := c.breakerFor(dest, c.method(req)); b != nil {
		b.onSuccess()
	}
}
