package rpc

import (
	"errors"
	"testing"
	"time"

	"lowfive/mpi"
)

// TestBreakerStateMachine drives one breaker through
// closed -> open -> half-open -> open -> half-open -> closed with an
// injected clock, asserting the single-probe rule in half-open.
func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(3, 100*time.Millisecond)
	b.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if b.onFailure() {
			t.Fatalf("failure %d opened the breaker before threshold", i+1)
		}
		if ok, _ := b.allow(); !ok {
			t.Fatalf("breaker not closed after %d failures", i+1)
		}
	}
	if !b.onFailure() {
		t.Fatal("threshold'th failure did not open the breaker")
	}
	ok, ra := b.allow()
	if ok {
		t.Fatal("open breaker allowed a call")
	}
	if ra <= 0 || ra > 100*time.Millisecond {
		t.Fatalf("retryAfter = %v, want (0, 100ms]", ra)
	}

	// Cooldown elapses: exactly one probe is let through.
	now = now.Add(101 * time.Millisecond)
	if ok, _ := b.allow(); !ok {
		t.Fatal("half-open breaker refused the probe")
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("half-open breaker allowed a second concurrent probe")
	}

	// Probe fails: back to open for a fresh cooldown.
	if !b.onFailure() {
		t.Fatal("failed probe did not reopen the breaker")
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("reopened breaker allowed a call within the new cooldown")
	}

	// Second probe succeeds: closed, and the failure count is reset (it
	// takes a full threshold of fresh failures to open again).
	now = now.Add(101 * time.Millisecond)
	if ok, _ := b.allow(); !ok {
		t.Fatal("half-open breaker refused the second probe")
	}
	b.onSuccess()
	for i := 0; i < 2; i++ {
		if ok, _ := b.allow(); !ok {
			t.Fatal("closed breaker refused a call")
		}
		if b.onFailure() {
			t.Fatalf("failure %d after close opened the breaker early", i+1)
		}
	}
	if !b.onFailure() {
		t.Fatal("threshold'th failure after close did not reopen")
	}
}

// TestBreakerPerMethodKeying asserts breakers are independent per
// (dest, method class): opening the stream class of one rank must not gate
// its metadata class, another rank, or done notifications.
func TestBreakerPerMethodKeying(t *testing.T) {
	c := &Client{
		BreakerThreshold: 2,
		Method:           func(req []byte) string { return string(req) },
	}
	data, meta, done := []byte("datastream"), []byte("dataset"), []byte("done")

	c.breakerOnFailure(1, data)
	if opened := c.breakerOnFailure(1, data); !opened {
		t.Fatal("second consecutive data failure did not open the breaker")
	}
	var boe *BreakerOpenError
	if err := c.breakerAllow(1, data); !errors.As(err, &boe) {
		t.Fatalf("data call to rank 1 = %v, want *BreakerOpenError", err)
	}
	if boe.Dest != 1 {
		t.Fatalf("BreakerOpenError.Dest = %d, want 1", boe.Dest)
	}
	if err := c.breakerAllow(1, meta); err != nil {
		t.Fatalf("metadata call gated by the stream breaker: %v", err)
	}
	if err := c.breakerAllow(2, data); err != nil {
		t.Fatalf("data call to another rank gated: %v", err)
	}
	// Done notifications are exempt even when everything else is failing.
	c.breakerOnFailure(1, done)
	c.breakerOnFailure(1, done)
	if err := c.breakerAllow(1, done); err != nil {
		t.Fatalf("done notification gated by breaker: %v", err)
	}
	// A success in the data class alone closes the data breaker.
	c.brk[breakerKey{1, "datastream"}].state = breakerHalfOpen
	c.breakerOnSuccess(1, data)
	if err := c.breakerAllow(1, data); err != nil {
		t.Fatalf("data call refused after successful probe: %v", err)
	}
	if got := c.Stats().BreakerOpens; got < 1 {
		t.Fatalf("BreakerOpens = %d, want >= 1", got)
	}
}

// TestShedRoundTrip covers the wire protocol: a server sheds a request
// twice with RespondOverloaded, the client backs off by the carried
// RetryAfter and resends the same sequence number, and the third attempt is
// served normally.
func TestShedRoundTrip(t *testing.T) {
	const retryAfter = 2 * time.Millisecond
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "client", Procs: 1, Main: func(p *mpi.Proc) {
			c := &Client{IC: p.Intercomm("server"), ShedRetries: 3}
			start := time.Now()
			resp, err := c.Call(0, []byte("q"))
			if err != nil {
				t.Errorf("call after sheds: %v", err)
				return
			}
			if string(resp) != "served" {
				t.Errorf("resp = %q", resp)
			}
			if elapsed := time.Since(start); elapsed < 2*retryAfter {
				t.Errorf("call returned in %v, backoff should enforce >= %v", elapsed, 2*retryAfter)
			}
			if st := c.Stats(); st.Sheds != 2 {
				t.Errorf("Sheds = %d, want 2", st.Sheds)
			}
		}},
		{Name: "server", Procs: 1, Main: func(p *mpi.Proc) {
			s := &Server{IC: p.Intercomm("client")}
			for i := 0; i < 2; i++ {
				src, seq, _ := s.Recv()
				s.RespondOverloaded(src, seq, retryAfter)
			}
			src, seq, _ := s.Recv()
			s.Respond(src, seq, []byte("served"))
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShedExhaustionTyped: a server that sheds past the client's retry
// budget yields a typed *OverloadedError carrying the RetryAfter hint.
func TestShedExhaustionTyped(t *testing.T) {
	const retryAfter = 2 * time.Millisecond
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "client", Procs: 1, Main: func(p *mpi.Proc) {
			c := &Client{IC: p.Intercomm("server"), ShedRetries: 1}
			_, err := c.Call(0, []byte("q"))
			var ov *OverloadedError
			if !errors.As(err, &ov) {
				t.Errorf("call = %v, want *OverloadedError", err)
				return
			}
			if ov.RetryAfter != retryAfter {
				t.Errorf("RetryAfter = %v, want %v", ov.RetryAfter, retryAfter)
			}
			if ov.Sheds != 2 {
				t.Errorf("Sheds = %d, want 2", ov.Sheds)
			}
		}},
		{Name: "server", Procs: 1, Main: func(p *mpi.Proc) {
			s := &Server{IC: p.Intercomm("client")}
			for i := 0; i < 2; i++ {
				src, seq, _ := s.Recv()
				s.RespondOverloaded(src, seq, retryAfter)
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBreakerOpensOnConsecutiveSheds: consecutive sheds open the client's
// breaker mid-call, and the next call to the same rank fast-fails without
// sending anything.
func TestBreakerOpensOnConsecutiveSheds(t *testing.T) {
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "client", Procs: 1, Main: func(p *mpi.Proc) {
			c := &Client{
				IC: p.Intercomm("server"), ShedRetries: 10,
				BreakerThreshold: 2, BreakerCooldown: time.Minute,
			}
			_, err := c.Call(0, []byte("q"))
			var ov *OverloadedError
			if !errors.As(err, &ov) {
				t.Errorf("first call = %v, want *OverloadedError (breaker opened mid-call)", err)
				return
			}
			if st := c.Stats(); st.BreakerOpens != 1 {
				t.Errorf("BreakerOpens = %d, want 1", st.BreakerOpens)
			}
			// Second call fast-fails without reaching the server (the server
			// main has exited; a real send would wedge or crash).
			var boe *BreakerOpenError
			if _, err := c.Call(0, []byte("q2")); !errors.As(err, &boe) {
				t.Errorf("second call = %v, want *BreakerOpenError", err)
			}
		}},
		{Name: "server", Procs: 1, Main: func(p *mpi.Proc) {
			s := &Server{IC: p.Intercomm("client")}
			for i := 0; i < 2; i++ {
				src, seq, _ := s.Recv()
				s.RespondOverloaded(src, seq, time.Millisecond)
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}
