// Overload protection, client side of the wire contract: a saturated server
// sheds a request with a typed overloaded reply instead of queueing it
// unboundedly, and the client honors the carried RetryAfter with full-jitter
// backoff before resending — so a storm of consumers backs off instead of
// amplifying itself with blind retries.
//
// The shed reply reuses the response envelope: responses normally carry a
// zero deadline field (only requests are budget-checked), so a *negative*
// deadline is free wire space. RespondOverloaded seals an empty body whose
// deadline field holds -RetryAfter nanoseconds; the CRC covers it like any
// envelope, and every receive path (Call, CallAll, CallHedged, stream Drain)
// recognizes it by sign. No new message format, no collision with any legal
// response body.
package rpc

import (
	"fmt"
	"time"

	"lowfive/internal/backoff"
	"lowfive/internal/spin"
	"lowfive/trace"
)

// OverloadedError reports that the server shed the call under admission
// control: it refused to queue the request and told the caller when to come
// back.
type OverloadedError struct {
	// Dest is the remote rank that shed the call.
	Dest int
	// RetryAfter is the server's load-shedding hint: how long the caller
	// should back off before resending.
	RetryAfter time.Duration
	// Sheds is how many overloaded replies this call absorbed (including
	// the final one) before giving up.
	Sheds int
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("rpc: rank %d overloaded, shed %d time(s) (retry after %v)",
		e.Dest, e.Sheds, e.RetryAfter)
}

// BreakerOpenError is the typed fast-fail of an open circuit breaker: the
// destination rank shed or timed out enough consecutive calls that this
// client stops sending to it entirely until the cooldown elapses.
type BreakerOpenError struct {
	// Dest is the remote rank the breaker guards.
	Dest int
	// RetryAfter is the remaining cooldown before a half-open probe is
	// allowed.
	RetryAfter time.Duration
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("rpc: circuit breaker open for rank %d (retry after %v)",
		e.Dest, e.RetryAfter.Round(time.Microsecond))
}

// minRetryAfter floors the advertised backoff so a shed reply can never
// instruct an immediate (hot-loop) resend.
const minRetryAfter = time.Millisecond

// RespondOverloaded sheds the (src, seq) request previously obtained from
// Recv: the client gets an empty-body reply whose envelope deadline is
// -retryAfter nanoseconds. The reply is not cached and the dedup entry is
// dropped, so a post-backoff resend of the same sequence number re-enters
// the server's dispatch (and admission) path instead of replaying the shed.
func (s *Server) RespondOverloaded(src int, seq uint64, retryAfter time.Duration) {
	if retryAfter < minRetryAfter {
		retryAfter = minRetryAfter
	}
	s.Forget(src, seq)
	s.IC.Send(src, tagResponse, seal(seq, -int64(retryAfter), nil))
}

// shedRetryAfter decodes the overload marker from a response envelope's
// deadline field: negative means shed, carrying -RetryAfter nanoseconds.
func shedRetryAfter(deadline int64) (time.Duration, bool) {
	if deadline >= 0 {
		return 0, false
	}
	return time.Duration(-deadline), true
}

// shedState tracks one call's absorbed sheds and its jittered backoff ramp.
// It is created lazily on the first shed so unshed calls pay nothing.
type shedState struct {
	sheds int
	bo    *backoff.Backoff
}

// wait sleeps out one shed: at least the server's RetryAfter, jittered
// upward by the full-jitter ramp so simultaneously-shed clients decorrelate.
func (ss *shedState) wait(retryAfter time.Duration, extra uint64) {
	if ss.bo == nil {
		ss.bo = backoff.New(retryAfter, 8*retryAfter, extra)
	}
	d := ss.bo.Next(time.Time{})
	if d < retryAfter {
		d = retryAfter
	}
	spin.Wait(d)
}

// handleShed processes one overloaded reply inside a receive loop: count it,
// feed the breaker, and either back off and resend (returning retry=true) or
// give up with the typed error. overall is the call's absolute end-to-end
// deadline (0 for none) — a call whose budget cannot absorb the backoff
// fails immediately rather than sleeping past its own deadline.
func (c *Client) handleShed(ss *shedState, dest int, seq uint64, overall int64, retryAfter time.Duration, req []byte) (retry bool, err error) {
	ss.sheds++
	c.noteShed(dest)
	opened := c.breakerOnFailure(dest, req)
	budgetSpent := overall != 0 && time.Now().Add(retryAfter).UnixNano() >= overall
	if ss.sheds > c.ShedRetries || opened || budgetSpent {
		return false, &OverloadedError{Dest: dest, RetryAfter: retryAfter, Sheds: ss.sheds}
	}
	ss.wait(retryAfter, seq)
	c.IC.Send(dest, tagRequest, seal(seq, overall, req))
	return true, nil
}

// noteShed counts one overloaded reply on the stats and metrics planes.
func (c *Client) noteShed(dest int) {
	c.sheds.Add(1)
	c.mSheds.Inc()
	if c.Track != nil {
		c.Track.Instant("rpc", "rpc.shed", trace.I64("dst", int64(dest)))
	}
}
