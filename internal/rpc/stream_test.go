package rpc

import (
	"bytes"
	"testing"
	"time"

	"lowfive/internal/buf"
	"lowfive/mpi"
)

// streamServer answers n requests, streaming back `reps` repetitions of a
// deterministic payload pattern in grabs of grabSize bytes.
func streamServer(p *mpi.Proc, pool *buf.Pool, n, reps, grabSize int) {
	s := &Server{IC: p.Intercomm("client")}
	for i := 0; i < n; i++ {
		src, seq, _ := s.Recv()
		st := s.NewStream(src, seq, pool)
		for r := 0; r < reps; r++ {
			region := st.Grab(grabSize)
			for j := range region {
				region[j] = byte(r + j)
			}
		}
		st.Close()
	}
}

func wantStream(reps, grabSize int) []byte {
	var w bytes.Buffer
	for r := 0; r < reps; r++ {
		for j := 0; j < grabSize; j++ {
			w.WriteByte(byte(r + j))
		}
	}
	return w.Bytes()
}

func TestStreamRoundTrip(t *testing.T) {
	// 64 KiB of payload through 4 KiB chunks: many frames, no rebuffering.
	pool := buf.NewPool(4096, 8)
	const reps, grab = 64, 1024
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "client", Procs: 1, Main: func(p *mpi.Proc) {
			c := &Client{IC: p.Intercomm("server")}
			var got bytes.Buffer
			sc := c.StartStream(0, []byte("data"))
			if err := sc.Drain(func(payload []byte) error {
				got.Write(payload) // must copy out before release
				return nil
			}); err != nil {
				t.Errorf("drain: %v", err)
			}
			if !bytes.Equal(got.Bytes(), wantStream(reps, grab)) {
				t.Errorf("stream payload mismatch: got %d bytes", got.Len())
			}
		}},
		{Name: "server", Procs: 1, Main: func(p *mpi.Proc) {
			streamServer(p, pool, 1, reps, grab)
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if pool.Outstanding() != 0 {
		t.Fatalf("pool leaked %d chunks", pool.Outstanding())
	}
	if pool.HighWater() > 8 {
		t.Fatalf("high water %d exceeded limit", pool.HighWater())
	}
}

func TestStreamEmpty(t *testing.T) {
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "client", Procs: 1, Main: func(p *mpi.Proc) {
			c := &Client{IC: p.Intercomm("server")}
			sc := c.StartStream(0, []byte("nothing"))
			frames := 0
			if err := sc.Drain(func(payload []byte) error {
				if len(payload) != 0 {
					t.Errorf("empty stream carried %d bytes", len(payload))
				}
				frames++
				return nil
			}); err != nil {
				t.Errorf("drain: %v", err)
			}
			if frames != 1 {
				t.Errorf("empty stream sent %d frames, want the bare last frame", frames)
			}
		}},
		{Name: "server", Procs: 1, Main: func(p *mpi.Proc) {
			s := &Server{IC: p.Intercomm("client")}
			src, seq, _ := s.Recv()
			s.NewStream(src, seq, nil).Close()
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStreamOversizeGrab(t *testing.T) {
	// A grab larger than the chunk must still travel (as a plain frame).
	pool := buf.NewPool(512, 4)
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "client", Procs: 1, Main: func(p *mpi.Proc) {
			c := &Client{IC: p.Intercomm("server")}
			var got bytes.Buffer
			sc := c.StartStream(0, []byte("big"))
			if err := sc.Drain(func(payload []byte) error {
				got.Write(payload)
				return nil
			}); err != nil {
				t.Errorf("drain: %v", err)
			}
			if got.Len() != 2048 {
				t.Errorf("got %d bytes, want 2048", got.Len())
			}
		}},
		{Name: "server", Procs: 1, Main: func(p *mpi.Proc) {
			s := &Server{IC: p.Intercomm("client")}
			src, seq, _ := s.Recv()
			st := s.NewStream(src, seq, pool)
			region := st.Grab(2048)
			for j := range region {
				region[j] = byte(j)
			}
			st.Close()
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if pool.Outstanding() != 0 {
		t.Fatalf("pool leaked %d chunks", pool.Outstanding())
	}
}

// streamFaultTrial runs one streamed exchange under a fault plan with a
// timeout-mode client and returns the drained bytes.
func streamFaultTrial(t *testing.T, plan mpi.FaultPlan, serveReqs int) []byte {
	t.Helper()
	// Limit 32 > the frames of one full re-stream, so frames queued to a
	// client that already finished never stall the server at the pool bound.
	pool := buf.NewPool(1024, 32)
	const reps, grab = 16, 512
	var got bytes.Buffer
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "client", Procs: 1, Main: func(p *mpi.Proc) {
			c := &Client{
				IC:      p.Intercomm("server"),
				Timeout: 50 * time.Millisecond,
				Retries: 8,
				Backoff: time.Millisecond,
			}
			sc := c.StartStream(0, []byte("data"))
			if err := sc.Drain(func(payload []byte) error {
				got.Write(payload)
				return nil
			}); err != nil {
				t.Errorf("drain under faults: %v", err)
			}
		}},
		{Name: "server", Procs: 1, Main: func(p *mpi.Proc) {
			streamServer(p, pool, serveReqs, reps, grab)
		}},
	}, mpi.WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	return got.Bytes()
}

func TestStreamRecoversDroppedFrame(t *testing.T) {
	// Drop two mid-stream response frames; the retry re-streams and the
	// client still assembles bit-identical data. The server must be ready to
	// serve the re-dispatched request (2 requests max).
	plan := mpi.FaultPlan{Seed: 3, Rules: []mpi.FaultRule{
		{Action: mpi.FaultDrop, Rank: mpi.AnyRank, Tag: TagResponse, After: 3, Count: 2},
	}}
	got := streamFaultTrial(t, plan, 2)
	if !bytes.Equal(got, wantStream(16, 512)) {
		t.Fatalf("dropped-frame recovery produced %d bytes, want bit-identical stream", len(got))
	}
}

func TestStreamRecoversCorruptFrame(t *testing.T) {
	plan := mpi.FaultPlan{Seed: 5, Rules: []mpi.FaultRule{
		{Action: mpi.FaultCorrupt, Rank: mpi.AnyRank, Tag: TagResponse, After: 4, Count: 2},
	}}
	got := streamFaultTrial(t, plan, 2)
	if !bytes.Equal(got, wantStream(16, 512)) {
		t.Fatalf("corrupt-frame recovery produced %d bytes, want bit-identical stream", len(got))
	}
}

func TestStreamRecoversDuplicatedRequest(t *testing.T) {
	// A duplicated request re-dispatches after the stream's Forget; the
	// client consumes the first stream and discards the spurious re-stream.
	plan := mpi.FaultPlan{Seed: 9, Rules: []mpi.FaultRule{
		{Action: mpi.FaultDuplicate, Rank: mpi.AnyRank, Tag: TagRequest, Count: 1},
	}}
	got := streamFaultTrial(t, plan, 2)
	if !bytes.Equal(got, wantStream(16, 512)) {
		t.Fatalf("duplicate-request case produced %d bytes", len(got))
	}
}
