package rpc

import (
	"errors"
	"testing"
	"time"

	"lowfive/mpi"
)

func TestServerRejectsExpiredBudget(t *testing.T) {
	// A request whose end-to-end budget is already spent on arrival must be
	// rejected without dispatching the handler: nobody awaits the answer.
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "client", Procs: 1, Main: func(p *mpi.Proc) {
			c := &Client{IC: p.Intercomm("server"), Timeout: 50 * time.Millisecond, Budget: time.Nanosecond}
			if _, err := c.Call(0, []byte("dead")); err == nil {
				t.Error("call with a spent budget succeeded")
			}
			// A later call with no budget must still be served: the expired
			// request was dropped, not registered.
			c.Budget = 0
			resp, err := c.Call(0, []byte("live"))
			if err != nil {
				t.Errorf("post-expiry call: %v", err)
			}
			if string(resp) != "ok" {
				t.Errorf("got %q", resp)
			}
		}},
		{Name: "server", Procs: 1, Main: func(p *mpi.Proc) {
			dispatched := 0
			s := &Server{IC: p.Intercomm("client"), Handler: func(src int, req []byte) ([]byte, bool) {
				dispatched++
				if string(req) != "live" {
					t.Errorf("handler dispatched for %q", req)
				}
				return []byte("ok"), true
			}}
			s.ServeOne()
			if dispatched != 1 {
				t.Errorf("handler dispatched %d times, want 1", dispatched)
			}
			if s.Expired() != 1 {
				t.Errorf("Expired() = %d, want 1", s.Expired())
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBudgetCapsRetrySchedule(t *testing.T) {
	// With a Budget much shorter than Timeout×(Retries+1), a silent peer
	// fails the call at the budget, not the full retry schedule.
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "client", Procs: 1, Main: func(p *mpi.Proc) {
			ic := p.Intercomm("server")
			c := &Client{IC: ic, Timeout: 80 * time.Millisecond, Retries: 10, Budget: 150 * time.Millisecond}
			start := time.Now()
			_, err := c.Call(0, []byte("void"))
			took := time.Since(start)
			if err == nil {
				t.Error("call to a silent peer succeeded")
			}
			var ce *CallError
			if !errors.As(err, &ce) {
				t.Errorf("error %v is not a *CallError", err)
			} else if ce.Attempts < 1 || ce.Elapsed < 100*time.Millisecond {
				t.Errorf("CallError attempts=%d elapsed=%v", ce.Attempts, ce.Elapsed)
			}
			if took >= 500*time.Millisecond {
				t.Errorf("budgeted call ran %v — the flat retry schedule was used", took)
			}
			ic.Send(0, 99, nil) // release the parked server
		}},
		{Name: "server", Procs: 1, Main: func(p *mpi.Proc) {
			p.Intercomm("client").Recv(0, 99) // never answer the RPC
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCallErrorCarriesAttemptsAndElapsed(t *testing.T) {
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "client", Procs: 1, Main: func(p *mpi.Proc) {
			ic := p.Intercomm("server")
			c := &Client{IC: ic, Timeout: 20 * time.Millisecond, Retries: 2}
			_, err := c.Call(0, []byte("void"))
			var te *TimeoutError
			if !errors.As(err, &te) {
				t.Fatalf("error %v does not unwrap to *TimeoutError", err)
			}
			if te.Attempts != 3 {
				t.Errorf("attempts = %d, want 3 (1 send + 2 retries)", te.Attempts)
			}
			if te.Elapsed < 40*time.Millisecond {
				t.Errorf("elapsed = %v, want at least two timeouts' worth", te.Elapsed)
			}
			if c.Stats().Retries != 2 {
				t.Errorf("client retries = %d, want 2", c.Stats().Retries)
			}
			ic.Send(0, 99, nil)
		}},
		{Name: "server", Procs: 1, Main: func(p *mpi.Proc) {
			p.Intercomm("client").Recv(0, 99)
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCallHedgedWinsOnSlowPrimary(t *testing.T) {
	// Server rank 0 never answers; the hedge to rank 1 must win well before
	// the primary's timeout would expire.
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "client", Procs: 1, Main: func(p *mpi.Proc) {
			ic := p.Intercomm("server")
			c := &Client{IC: ic, Timeout: 400 * time.Millisecond, Retries: 2, HedgeDelay: 10 * time.Millisecond}
			start := time.Now()
			resp, winner, err := c.CallHedged(0, 1, []byte("q"))
			took := time.Since(start)
			if err != nil {
				t.Errorf("hedged call: %v", err)
			}
			if winner != 1 || string(resp) != "from-1" {
				t.Errorf("winner=%d resp=%q, want the hedge", winner, resp)
			}
			if took >= c.Timeout {
				t.Errorf("hedged call took %v — no better than the timeout path", took)
			}
			st := c.Stats()
			if st.HedgedCalls != 1 || st.HedgeWins != 1 {
				t.Errorf("stats = %+v, want one hedged call and one win", st)
			}
			ic.Send(0, 99, nil) // release the parked primary
		}},
		{Name: "server", Procs: 2, Main: func(p *mpi.Proc) {
			ic := p.Intercomm("client")
			if p.Task.Rank() == 0 {
				ic.Recv(0, 99) // park: the primary stays silent
				return
			}
			s := &Server{IC: ic, Handler: func(src int, req []byte) ([]byte, bool) {
				return []byte("from-1"), true
			}}
			s.ServeOne()
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCallHedgedFastPrimarySkipsHedge(t *testing.T) {
	// When the primary answers inside the hedge delay, no hedge is sent.
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "client", Procs: 1, Main: func(p *mpi.Proc) {
			c := &Client{IC: p.Intercomm("server"), Timeout: 400 * time.Millisecond, Retries: 2,
				HedgeDelay: 300 * time.Millisecond}
			resp, winner, err := c.CallHedged(0, 1, []byte("q"))
			if err != nil {
				t.Errorf("hedged call: %v", err)
			}
			if winner != 0 || string(resp) != "from-0" {
				t.Errorf("winner=%d resp=%q, want the primary", winner, resp)
			}
			if st := c.Stats(); st.HedgedCalls != 0 || st.HedgeWins != 0 {
				t.Errorf("stats = %+v, want no hedge traffic", st)
			}
		}},
		{Name: "server", Procs: 2, Main: func(p *mpi.Proc) {
			ic := p.Intercomm("client")
			if p.Task.Rank() != 0 {
				return // rank 1 must never be needed
			}
			s := &Server{IC: ic, Handler: func(src int, req []byte) ([]byte, bool) {
				return []byte("from-0"), true
			}}
			s.ServeOne()
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDedupWindowAncientDuplicateSwallowed(t *testing.T) {
	// A duplicate older than the dedup window has had its state pruned: it
	// can only be a replay of a long-answered request, so it must be
	// swallowed — neither re-dispatched as fresh nor answered from a stale
	// cache.
	s := &Server{}
	if _, dup := s.register(0, 1); dup {
		t.Fatal("first sighting of seq 1 flagged as duplicate")
	}
	s.mu.Lock()
	s.seen[0][1].answered = true
	s.seen[0][1].resp = []byte("ancient")
	s.mu.Unlock()
	for seq := uint64(2); seq <= dedupWindow+10; seq++ {
		if _, dup := s.register(0, seq); dup {
			t.Fatalf("fresh seq %d flagged as duplicate", seq)
		}
	}
	cached, dup := s.register(0, 1)
	if !dup {
		t.Fatal("ancient duplicate treated as fresh — it would re-dispatch the handler")
	}
	if cached != nil {
		t.Fatalf("ancient duplicate replayed a pruned response %q", cached.resp)
	}
	// A duplicate still inside the window replays its cached response.
	s.mu.Lock()
	s.seen[0][200].answered = true
	s.seen[0][200].resp = []byte("recent")
	s.mu.Unlock()
	cached, dup = s.register(0, 200)
	if !dup || cached == nil || string(cached.resp) != "recent" {
		t.Fatalf("in-window duplicate: dup=%v cached=%v", dup, cached)
	}
}

func TestDedupWindowInterleavedSources(t *testing.T) {
	// Sequence numbers are per source: the same seq from two sources are two
	// distinct requests, and each duplicate replays its own response.
	s := &Server{}
	if _, dup := s.register(0, 5); dup {
		t.Fatal("src 0 seq 5 flagged as duplicate")
	}
	if _, dup := s.register(1, 5); dup {
		t.Fatal("src 1 seq 5 flagged as duplicate — cross-source collision")
	}
	s.mu.Lock()
	s.seen[0][5].answered = true
	s.seen[0][5].resp = []byte("for-src-0")
	s.seen[1][5].answered = true
	s.seen[1][5].resp = []byte("for-src-1")
	s.mu.Unlock()
	if cached, dup := s.register(0, 5); !dup || cached == nil || string(cached.resp) != "for-src-0" {
		t.Errorf("src 0 duplicate replayed %v", cached)
	}
	if cached, dup := s.register(1, 5); !dup || cached == nil || string(cached.resp) != "for-src-1" {
		t.Errorf("src 1 duplicate replayed %v", cached)
	}
}
