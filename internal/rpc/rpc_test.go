package rpc

import (
	"testing"

	"lowfive/mpi"
)

func TestCallRoundTrip(t *testing.T) {
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "client", Procs: 2, Main: func(p *mpi.Proc) {
			c := &Client{IC: p.Intercomm("server")}
			resp, err := c.Call(0, []byte("ping"))
			if err != nil {
				t.Errorf("call: %v", err)
			}
			if string(resp) != "pong:ping" {
				t.Errorf("got %q", resp)
			}
		}},
		{Name: "server", Procs: 1, Main: func(p *mpi.Proc) {
			s := &Server{IC: p.Intercomm("client"), Handler: func(src int, req []byte) ([]byte, bool) {
				return append([]byte("pong:"), req...), true
			}}
			s.ServeOne()
			s.ServeOne()
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNotifyIsOneWay(t *testing.T) {
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "client", Procs: 1, Main: func(p *mpi.Proc) {
			c := &Client{IC: p.Intercomm("server")}
			c.Notify(0, []byte("done"))
			// A call after the notify still works (ordering preserved).
			resp, err := c.Call(0, []byte("x"))
			if err != nil {
				t.Errorf("call: %v", err)
			}
			if string(resp) != "ack" {
				t.Errorf("got %q", resp)
			}
		}},
		{Name: "server", Procs: 1, Main: func(p *mpi.Proc) {
			notifies := 0
			s := &Server{IC: p.Intercomm("client"), Handler: func(src int, req []byte) ([]byte, bool) {
				if string(req) == "done" {
					notifies++
					return nil, false
				}
				return []byte("ack"), true
			}}
			s.ServeOne()
			s.ServeOne()
			if notifies != 1 {
				t.Errorf("notifies=%d", notifies)
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCallAllPipelines(t *testing.T) {
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "client", Procs: 1, Main: func(p *mpi.Proc) {
			c := &Client{IC: p.Intercomm("server")}
			resps, err := c.CallAll([]int{2, 0, 1}, []byte("q"))
			if err != nil {
				t.Errorf("callall: %v", err)
			}
			// Responses come back in dests order, each identifying its server.
			want := []byte{2, 0, 1}
			for i, r := range resps {
				if len(r) != 1 || r[0] != want[i] {
					t.Errorf("resp %d = %v want %d", i, r, want[i])
				}
			}
		}},
		{Name: "server", Procs: 3, Main: func(p *mpi.Proc) {
			s := &Server{IC: p.Intercomm("client"), Handler: func(src int, req []byte) ([]byte, bool) {
				return []byte{byte(p.Task.Rank())}, true
			}}
			s.ServeOne()
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvRespondDeferred(t *testing.T) {
	// A server can hold a request and answer it later (the parking pattern
	// the distributed VOL uses across serve sessions).
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "client", Procs: 2, Main: func(p *mpi.Proc) {
			c := &Client{IC: p.Intercomm("server")}
			resp, err := c.Call(0, []byte{byte(p.Task.Rank())})
			if err != nil {
				t.Errorf("call: %v", err)
			}
			if resp[0] != byte(p.Task.Rank()) {
				t.Errorf("rank %d got %v", p.Task.Rank(), resp)
			}
		}},
		{Name: "server", Procs: 1, Main: func(p *mpi.Proc) {
			s := &Server{IC: p.Intercomm("client")}
			src1, seq1, req1 := s.Recv()
			src2, seq2, req2 := s.Recv()
			// Respond in reverse arrival order.
			s.Respond(src2, seq2, req2)
			s.Respond(src1, seq1, req1)
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPending(t *testing.T) {
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "client", Procs: 1, Main: func(p *mpi.Proc) {
			c := &Client{IC: p.Intercomm("server")}
			ic := p.Intercomm("server")
			c.Notify(0, []byte("go"))
			// Wait for the server's signal that it observed Pending.
			ic.Recv(0, 99)
		}},
		{Name: "server", Procs: 1, Main: func(p *mpi.Proc) {
			ic := p.Intercomm("client")
			s := &Server{IC: ic, Handler: func(int, []byte) ([]byte, bool) { return nil, false }}
			for !s.Pending() {
			}
			s.ServeOne()
			if s.Pending() {
				t.Error("queue should be drained")
			}
			ic.Send(0, 99, nil)
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}
