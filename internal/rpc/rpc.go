// Package rpc provides the minimal remote-procedure-call abstraction over
// MPI intercommunicators that the paper's index, serve and query functions
// are written in (§III-B): a client sends a tagged request to a rank of the
// remote group and blocks for the reply; a server receives requests from any
// remote rank, dispatches them to a handler, and sends the reply back.
//
// Requests and responses travel in a small envelope — a per-client sequence
// number, a CRC, and the call's end-to-end deadline — that makes the
// exchange safe under an unreliable transport: a duplicated request is
// answered once (the server replays the cached response instead of
// re-dispatching), a corrupted payload is discarded as if lost, and a
// retried call reuses its sequence number so the server recognizes it. With
// a Timeout configured, Call bounds each attempt and retries with
// exponential backoff; a Budget bounds the whole call end to end, and the
// deadline travels in the envelope so a server receiving a request whose
// budget is already spent rejects it without dispatching work no one
// awaits. CallHedged races the primary against a replica after a hedge
// delay, the tail-latency defense of Dean & Barroso's "The Tail at Scale".
// A crashed peer surfaces as a typed error instead of a hang.
package rpc

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"lowfive/internal/buf"
	"lowfive/internal/spin"
	"lowfive/metrics"
	"lowfive/mpi"
	"lowfive/trace"
)

// TagRequest and TagResponse are the message tags RPC traffic travels on,
// exported so fault plans (mpi.FaultRule.Tag) can target request or response
// messages specifically.
const (
	TagRequest  = 71
	TagResponse = 72

	tagRequest  = TagRequest
	tagResponse = TagResponse

	headerLen = 20 // seq (8) + crc32 (4) + deadline (8)

	// dedupWindow bounds the server's per-source response cache: entries
	// more than this many sequence numbers behind the newest are pruned.
	// Duplicates are reorderings of recent traffic, never arbitrarily old.
	dedupWindow = 256

	// pollInterval paces the timeout-mode receive poll.
	pollInterval = 200 * time.Microsecond
)

// seal wraps a body in the wire envelope: sequence number, CRC, and the
// call's absolute end-to-end deadline (UnixNano; 0 means unbounded). The
// CRC covers the deadline too, so a corrupted deadline is discarded as
// lost rather than silently extending or expiring a request. Deadlines are
// absolute because all ranks share one process clock; a multi-node port
// would carry the remaining budget instead.
func seal(seq uint64, deadline int64, body []byte) []byte {
	buf := make([]byte, headerLen+len(body))
	binary.LittleEndian.PutUint64(buf[0:], seq)
	binary.LittleEndian.PutUint64(buf[12:], uint64(deadline))
	copy(buf[headerLen:], body)
	binary.LittleEndian.PutUint32(buf[8:], crc32.ChecksumIEEE(buf[12:]))
	return buf
}

// unseal unwraps an envelope, verifying the CRC. ok=false means the message
// is truncated or corrupt and must be treated as lost.
func unseal(msg []byte) (seq uint64, deadline int64, body []byte, ok bool) {
	if len(msg) < headerLen {
		return 0, 0, nil, false
	}
	seq = binary.LittleEndian.Uint64(msg[0:])
	if crc32.ChecksumIEEE(msg[12:]) != binary.LittleEndian.Uint32(msg[8:]) {
		return 0, 0, nil, false
	}
	deadline = int64(binary.LittleEndian.Uint64(msg[12:]))
	return seq, deadline, msg[headerLen:], true
}

// TimeoutError reports that a call's attempts all expired without a reply.
// Attempts and Elapsed make a chaos-run timeout diagnosable without
// replaying it: they say whether the budget died retrying a silent peer or
// never got a second attempt.
type TimeoutError struct {
	// Dest is the remote rank that did not answer.
	Dest int
	// Timeout is the per-attempt deadline that expired.
	Timeout time.Duration
	// Attempts is how many attempts (including the first send) were made.
	Attempts int
	// Elapsed is the total wall time from the first send to giving up.
	Elapsed time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("rpc: call to rank %d timed out after %d attempts over %v (per-attempt timeout %v)",
		e.Dest, e.Attempts, e.Elapsed.Round(time.Microsecond), e.Timeout)
}

// CallError wraps a failure of one call with the rank it addressed, so
// callers fanning out to many ranks know which peer to fail over from.
type CallError struct {
	// Dest is the remote rank the failed call addressed.
	Dest int
	// Attempts is how many attempts were made before the call failed.
	Attempts int
	// Elapsed is the total wall time the call spent before failing.
	Elapsed time.Duration
	// Err is the underlying failure (a *TimeoutError or *mpi.RankFailedError).
	Err error
}

func (e *CallError) Error() string {
	return fmt.Sprintf("rpc: call to rank %d failed after %d attempts over %v: %v",
		e.Dest, e.Attempts, e.Elapsed.Round(time.Microsecond), e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *CallError) Unwrap() error { return e.Err }

// Client issues blocking calls to ranks of the remote group. The zero value
// (plus IC) behaves like the original fail-stop client: calls block forever
// and a crashed peer is the only possible error. Setting Timeout turns on
// bounded attempts with retries.
type Client struct {
	IC *mpi.Intercomm

	// Timeout bounds each call attempt; zero or negative blocks forever.
	Timeout time.Duration
	// Retries is how many times a timed-out attempt is resent.
	Retries int
	// Backoff is the wait after the first timed-out attempt; it doubles per
	// retry. Zero means retry immediately.
	Backoff time.Duration
	// RetryFailed keeps polling when the addressed peer has crashed instead
	// of failing the call immediately: under a supervised workflow the peer
	// may be torn down and relaunched, and a retried request (sends to a
	// dead rank are silently dropped) reaches the fresh incarnation. The
	// call still fails once the retry budget is spent with the peer down,
	// with a *CallError wrapping mpi.RankFailedError — so the budget bounds
	// how long a restart may take. Requires a Timeout; the fail-stop path
	// ignores it.
	RetryFailed bool
	// Budget bounds each call end to end: however many attempts the retry
	// schedule would still allow, the call fails once the budget is spent.
	// The deadline travels in the request envelope so the server can reject
	// a request whose caller has already given up. Zero means unbounded
	// (per-attempt timeouts only). Requires a Timeout.
	Budget time.Duration
	// HedgeDelay is how long CallHedged waits for the primary before also
	// sending the request to the hedge rank. Zero defaults to a quarter of
	// Timeout.
	HedgeDelay time.Duration
	// Track, when set, records rpc.retry and rpc.hedge trace instants so a
	// chaos run shows where a client burned its budget.
	Track *trace.Track
	// Metrics, when set, records this client's side of the metrics plane:
	// a per-method call-latency histogram ("rpc.client.call_us.<method>",
	// microseconds, covering the whole call including retries and hedges),
	// an attempts histogram, and retry/timeout/hedge counters. Method
	// classifies a request body to its method name for the latency
	// histogram; nil labels every call "call".
	Metrics *metrics.Registry
	Method  func(req []byte) string

	// ShedRetries is how many overloaded (load-shed) replies a call absorbs
	// — backing off by at least the server's RetryAfter each time — before
	// giving up with a *OverloadedError. Zero fails on the first shed.
	ShedRetries int
	// BreakerThreshold arms a circuit breaker per (destination rank, method
	// class): after this many consecutive failures (sheds, timeouts, peer
	// crashes) of one method against one rank, calls of that method to it
	// fast-fail with *BreakerOpenError until BreakerCooldown elapses and a
	// half-open probe succeeds. Keying by method keeps healthy scalar
	// metadata responses from resetting a saturated stream path's failure
	// count. Zero disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is the open interval before a half-open probe is
	// allowed. Zero defaults to 25ms.
	BreakerCooldown time.Duration

	mu  sync.Mutex
	seq uint64

	retries      atomic.Int64
	timeouts     atomic.Int64
	hedged       atomic.Int64
	hedgeWins    atomic.Int64
	sheds        atomic.Int64
	breakerOpens atomic.Int64

	bmu sync.Mutex
	brk map[breakerKey]*breaker

	// Instrument handles, resolved once so recording never touches the
	// registry lock; per-method histograms are cached under histMu.
	instOnce     sync.Once
	mAttempts    *metrics.Histogram
	mRetries     *metrics.Counter
	mTimeouts    *metrics.Counter
	mHedged      *metrics.Counter
	mHedgeWin    *metrics.Counter
	mSheds       *metrics.Counter
	mBreakerOpen *metrics.Counter
	histMu       sync.Mutex
	mCalls       map[string]*metrics.Histogram
}

// instruments lazily resolves the client's fixed instrument handles. With
// no registry attached the handles stay nil, and every record on them is a
// nil-safe no-op.
func (c *Client) instruments() {
	c.instOnce.Do(func() {
		if c.Metrics == nil {
			return
		}
		c.mAttempts = c.Metrics.Histogram("rpc.client.attempts")
		c.mRetries = c.Metrics.Counter("rpc.client.retries")
		c.mTimeouts = c.Metrics.Counter("rpc.client.timeouts")
		c.mHedged = c.Metrics.Counter("rpc.client.hedged")
		c.mHedgeWin = c.Metrics.Counter("rpc.client.hedge_wins")
		c.mSheds = c.Metrics.Counter("rpc.client.sheds")
		c.mBreakerOpen = c.Metrics.Counter("rpc.client.breaker_opens")
		c.mCalls = map[string]*metrics.Histogram{}
	})
}

// callHist returns the latency histogram for the method of req, caching
// handles so steady-state calls cost one small map lookup and no
// allocation.
func (c *Client) callHist(req []byte) *metrics.Histogram {
	method := "call"
	if c.Method != nil {
		method = c.Method(req)
	}
	c.histMu.Lock()
	h, ok := c.mCalls[method]
	if !ok {
		h = c.Metrics.Histogram("rpc.client.call_us." + method)
		c.mCalls[method] = h
	}
	c.histMu.Unlock()
	return h
}

// observe records one completed call — success or failure — into the
// per-method latency histogram and the attempts histogram.
func (c *Client) observe(req []byte, start time.Time, attempts int) {
	if c.Metrics == nil {
		return
	}
	c.callHist(req).ObserveSince(start)
	c.mAttempts.Record(int64(attempts))
}

// ClientStats is a snapshot of a client's retry and hedging counters.
type ClientStats struct {
	// Retries counts resent attempts (beyond each call's first send).
	Retries int64
	// Timeouts counts calls that failed with their budget spent.
	Timeouts int64
	// HedgedCalls counts hedged calls whose hedge was actually sent.
	HedgedCalls int64
	// HedgeWins counts hedged calls the hedge rank answered first.
	HedgeWins int64
	// Sheds counts overloaded (load-shed) replies absorbed by this client.
	Sheds int64
	// BreakerOpens counts circuit-breaker transitions to open.
	BreakerOpens int64
}

// Stats snapshots the client's counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Retries:      c.retries.Load(),
		Timeouts:     c.timeouts.Load(),
		HedgedCalls:  c.hedged.Load(),
		HedgeWins:    c.hedgeWins.Load(),
		Sheds:        c.sheds.Load(),
		BreakerOpens: c.breakerOpens.Load(),
	}
}

// deadline computes the absolute end-to-end deadline for a call starting
// now, or 0 when the client has no Budget.
func (c *Client) deadline() int64 {
	if c.Budget <= 0 {
		return 0
	}
	return time.Now().Add(c.Budget).UnixNano()
}

// noteRetry counts one resend, for the stats, the metrics and the trace.
func (c *Client) noteRetry(dest, attempt int) {
	c.retries.Add(1)
	c.mRetries.Inc()
	if c.Track != nil {
		c.Track.Instant("rpc", "rpc.retry",
			trace.I64("dst", int64(dest)), trace.I64("attempt", int64(attempt)))
	}
}

func (c *Client) nextSeq() uint64 {
	c.mu.Lock()
	c.seq++
	s := c.seq
	c.mu.Unlock()
	return s
}

// Call sends req to remote rank dest and blocks for its response. A crashed
// peer returns a *CallError wrapping mpi.RankFailedError; with a Timeout
// configured, lost or corrupted messages return a *CallError wrapping
// TimeoutError once the retry budget is spent.
func (c *Client) Call(dest int, req []byte) ([]byte, error) {
	if err := c.breakerAllow(dest, req); err != nil {
		return nil, err
	}
	seq := c.nextSeq()
	dl := c.deadline()
	c.IC.Send(dest, tagRequest, seal(seq, dl, req))
	return c.await(dest, seq, dl, req)
}

// CallAll pipelines the same request to several remote ranks: all sends are
// posted before any response is awaited (the nonblocking-send pattern of
// the paper's query step), and the responses are returned in dests order.
// The first failed call aborts with its *CallError (identifying the rank,
// for failover); responses already received stay in their slots, the failed
// and later slots are nil.
func (c *Client) CallAll(dests []int, req []byte) ([][]byte, error) {
	for _, d := range dests {
		if err := c.breakerAllow(d, req); err != nil {
			return make([][]byte, len(dests)), err
		}
	}
	seqs := make([]uint64, len(dests))
	dl := c.deadline() // posted together, so the calls share one deadline
	for i, d := range dests {
		seqs[i] = c.nextSeq()
		c.IC.Send(d, tagRequest, seal(seqs[i], dl, req))
	}
	out := make([][]byte, len(dests))
	for i, d := range dests {
		resp, err := c.await(d, seqs[i], dl, req)
		if err != nil {
			return out, err
		}
		out[i] = resp
	}
	return out, nil
}

// Notify sends req to remote rank dest without expecting a response. It is
// fire-and-forget: with no reply there is nothing to time out on, so callers
// that must know the notification arrived should use Call against a server
// that acknowledges.
func (c *Client) Notify(dest int, req []byte) {
	// No deadline: a notification with no reply has no caller to give up,
	// so the server must never reject it as expired.
	c.IC.Send(dest, tagRequest, seal(c.nextSeq(), 0, req))
}

// await blocks for the response carrying seq from dest, resending the
// request on timeout (same sequence number — the server deduplicates).
// Responses with other sequence numbers are stale replies to abandoned
// attempts and are discarded. overall (the envelope deadline, 0 for none)
// caps the whole call: no attempt outlives it, and once it passes the call
// fails even with retries left.
func (c *Client) await(dest int, seq uint64, overall int64, req []byte) (resp []byte, err error) {
	start := time.Now()
	attempts := 1
	c.instruments()
	defer func() { c.observe(req, start, attempts) }()
	defer func() {
		if r := recover(); r != nil {
			if rf, ok := r.(*mpi.RankFailedError); ok {
				c.breakerOnFailure(dest, req)
				resp, err = nil, &CallError{Dest: dest, Attempts: attempts, Elapsed: time.Since(start), Err: rf}
				return
			}
			panic(r)
		}
	}()
	var ss shedState
	if c.Timeout <= 0 {
		// Fail-stop mode: block until the response (or a peer crash) arrives.
		for {
			msg, _ := c.IC.Recv(dest, tagResponse)
			rseq, rdl, body, ok := unseal(msg)
			if ok && rseq == seq {
				if ra, isShed := shedRetryAfter(rdl); isShed {
					buf.Release(msg)
					retry, serr := c.handleShed(&ss, dest, seq, overall, ra, req)
					if !retry {
						return nil, serr
					}
					continue
				}
				c.breakerOnSuccess(dest, req)
				return body, nil
			}
			// Stale or corrupt — possibly a pooled frame from an abandoned
			// stream; recycle it.
			buf.Release(msg)
		}
	}
	backoff := c.Backoff
	var down *mpi.RankFailedError
	pacer := newPollPacer(c.Timeout)
	for attempt := 0; ; attempt++ {
		attempts = attempt + 1
		deadline := time.Now().Add(c.Timeout)
		if overall != 0 {
			if od := time.Unix(0, overall); od.Before(deadline) {
				deadline = od
			}
		}
		for time.Now().Before(deadline) {
			msg, got, pd := c.tryRecv(dest)
			if pd != nil {
				down = pd
				pacer.wait(deadline)
				continue
			}
			if !got {
				pacer.reset()
				spin.Wait(pollInterval)
				continue
			}
			rseq, rdl, body, ok := unseal(msg)
			if ok && rseq == seq {
				if ra, isShed := shedRetryAfter(rdl); isShed {
					buf.Release(msg)
					retry, serr := c.handleShed(&ss, dest, seq, overall, ra, req)
					if !retry {
						return nil, serr
					}
					// A shed proves the server alive: restart the attempt
					// clock for the post-backoff resend instead of charging
					// the sleep against this attempt's receive window.
					deadline = time.Now().Add(c.Timeout)
					if overall != 0 {
						if od := time.Unix(0, overall); od.Before(deadline) {
							deadline = od
						}
					}
					continue
				}
				c.breakerOnSuccess(dest, req)
				return body, nil
			}
			buf.Release(msg)
		}
		spent := overall != 0 && time.Now().UnixNano() >= overall
		if attempt >= c.Retries || spent {
			c.timeouts.Add(1)
			c.mTimeouts.Inc()
			c.breakerOnFailure(dest, req)
			if down != nil {
				return nil, &CallError{Dest: dest, Attempts: attempts, Elapsed: time.Since(start), Err: down}
			}
			to := &TimeoutError{Dest: dest, Timeout: c.Timeout, Attempts: attempts, Elapsed: time.Since(start)}
			return nil, &CallError{Dest: dest, Attempts: attempts, Elapsed: time.Since(start), Err: to}
		}
		if backoff > 0 {
			spin.Wait(backoff)
			backoff *= 2
		}
		down = nil
		c.noteRetry(dest, attempt+1)
		c.IC.Send(dest, tagRequest, seal(seq, overall, req))
	}
}

// CallHedged sends req to dest and, if no response arrives within
// HedgeDelay (or dest is observed down), also to hedge — racing the
// primary against a replica so one straggling or partitioned rank cannot
// hold the call to its full timeout. The first valid response wins and is
// returned with the rank that produced it; the loser's late response is
// discarded by sequence matching on a later call. Requires a Timeout and a
// distinct hedge rank, otherwise it degrades to a plain Call.
func (c *Client) CallHedged(dest, hedge int, req []byte) (resp []byte, winner int, err error) {
	if c.Timeout <= 0 || hedge == dest {
		resp, err = c.Call(dest, req)
		return resp, dest, err
	}
	if berr := c.breakerAllow(dest, req); berr != nil {
		// Primary's breaker is open: route straight to the replica (its own
		// breaker gate applies inside Call) instead of fast-failing the
		// whole query.
		resp, err = c.Call(hedge, req)
		return resp, hedge, err
	}
	start := time.Now()
	c.instruments()
	seq := c.nextSeq()
	overall := c.deadline()
	c.IC.Send(dest, tagRequest, seal(seq, overall, req))
	hd := c.HedgeDelay
	if hd <= 0 {
		hd = c.Timeout / 4
	}
	targets := []int{dest}
	downs := make(map[int]*mpi.RankFailedError)
	shedRA := make(map[int]time.Duration) // last RetryAfter per shed target
	shedCount := 0
	hedgedSent := false
	sendHedge := func() {
		hedgedSent = true
		c.hedged.Add(1)
		c.mHedged.Inc()
		if c.Track != nil {
			c.Track.Instant("rpc", "rpc.hedge",
				trace.I64("primary", int64(dest)), trace.I64("hedge", int64(hedge)))
		}
		c.IC.Send(hedge, tagRequest, seal(seq, overall, req))
		targets = append(targets, hedge)
	}
	attempts := 1
	defer func() { c.observe(req, start, attempts) }()
	backoff := c.Backoff
	pacer := newPollPacer(c.Timeout)
	for attempt := 0; ; attempt++ {
		attempts = attempt + 1
		deadline := time.Now().Add(c.Timeout)
		if overall != 0 {
			if od := time.Unix(0, overall); od.Before(deadline) {
				deadline = od
			}
		}
		for time.Now().Before(deadline) {
			if !hedgedSent && (time.Since(start) >= hd || downs[dest] != nil || shedRA[dest] > 0) {
				sendHedge()
			}
			progress := false
			for _, d := range targets {
				msg, got, pd := c.tryRecvSafe(d)
				if pd != nil {
					downs[d] = pd
					continue
				}
				if !got {
					continue
				}
				progress = true
				rseq, rdl, body, ok := unseal(msg)
				if ok && rseq == seq {
					if ra, isShed := shedRetryAfter(rdl); isShed {
						// This target shed us: count it, feed its breaker,
						// and let the race continue — the other target (or
						// the next timed resend) may still answer.
						buf.Release(msg)
						c.noteShed(d)
						c.breakerOnFailure(d, req)
						shedRA[d] = ra
						shedCount++
						continue
					}
					c.breakerOnSuccess(d, req)
					if d == hedge {
						c.hedgeWins.Add(1)
						c.mHedgeWin.Inc()
					}
					return body, d, nil
				}
				buf.Release(msg)
			}
			if !progress {
				if !c.RetryFailed && hedgedSent && downs[dest] != nil && downs[hedge] != nil {
					// Both targets are down and no restart is coming.
					c.timeouts.Add(1)
					c.mTimeouts.Inc()
					return nil, dest, &CallError{Dest: dest, Attempts: attempts, Elapsed: time.Since(start), Err: downs[dest]}
				}
				if len(downs) > 0 {
					pacer.wait(deadline)
				} else {
					pacer.reset()
					spin.Wait(pollInterval)
				}
			}
		}
		spent := overall != 0 && time.Now().UnixNano() >= overall
		if attempt >= c.Retries || spent {
			c.timeouts.Add(1)
			c.mTimeouts.Inc()
			c.breakerOnFailure(dest, req)
			if hedgedSent {
				c.breakerOnFailure(hedge, req)
			}
			if pd := downs[dest]; pd != nil {
				return nil, dest, &CallError{Dest: dest, Attempts: attempts, Elapsed: time.Since(start), Err: pd}
			}
			if ra := shedRA[dest]; ra > 0 && shedCount > 0 {
				// The primary's last word was a shed, not silence: surface
				// the overload (with its backoff hint) rather than a timeout.
				return nil, dest, &OverloadedError{Dest: dest, RetryAfter: ra, Sheds: shedCount}
			}
			to := &TimeoutError{Dest: dest, Timeout: c.Timeout, Attempts: attempts, Elapsed: time.Since(start)}
			return nil, dest, &CallError{Dest: dest, Attempts: attempts, Elapsed: time.Since(start), Err: to}
		}
		if backoff > 0 {
			spin.Wait(backoff)
			backoff *= 2
		}
		for d := range downs {
			delete(downs, d)
		}
		for d := range shedRA {
			delete(shedRA, d)
		}
		for _, d := range targets {
			c.noteRetry(d, attempt+1)
			c.IC.Send(d, tagRequest, seal(seq, overall, req))
		}
	}
}

// tryRecvSafe is tryRecv with a crashed peer always surfaced as a value
// instead of a panic, regardless of RetryFailed: a hedged call outlives the
// death of one of its targets as long as the other can still answer.
func (c *Client) tryRecvSafe(dest int) (msg []byte, got bool, down *mpi.RankFailedError) {
	defer func() {
		if r := recover(); r != nil {
			if rf, ok := r.(*mpi.RankFailedError); ok {
				msg, got, down = nil, false, rf
				return
			}
			panic(r)
		}
	}()
	return c.tryRecv(dest)
}

// tryRecv polls for one response message from dest. With RetryFailed set, a
// crashed peer surfaces as a non-nil down error instead of a panic, so the
// polling loops can wait out a supervised restart window; without it the
// mpi.RankFailedError panic propagates (fail-stop behavior, recovered by the
// callers' deferred handlers).
func (c *Client) tryRecv(dest int) (msg []byte, got bool, down *mpi.RankFailedError) {
	if c.RetryFailed {
		defer func() {
			if r := recover(); r != nil {
				if rf, ok := r.(*mpi.RankFailedError); ok {
					msg, got, down = nil, false, rf
					return
				}
				panic(r)
			}
		}()
	}
	msg, _, got = c.IC.TryRecv(dest, tagResponse)
	return msg, got, nil
}

// Handler processes one request from remote rank src. Returning a nil
// response with respond=false means the request was a one-way notification.
type Handler func(src int, req []byte) (resp []byte, respond bool)

// reqState tracks one (src, seq) request through the server: seen but not
// yet answered (in flight or parked), or answered with a cached response.
type reqState struct {
	answered bool
	resp     []byte
}

// Server answers requests arriving on an intercommunicator. It deduplicates
// by (source, sequence): a duplicate of an already-answered request gets the
// cached response resent, and a duplicate of one still in flight (parked,
// or a one-way notification) is swallowed, so client retries are idempotent.
type Server struct {
	IC      *mpi.Intercomm
	Handler Handler

	// Metrics, when set, counts deadline-rejected requests as
	// "rpc.server.deadline_rejected".
	Metrics *metrics.Registry

	mu     sync.Mutex
	seen   map[int]map[uint64]*reqState
	newest map[int]uint64

	expired  atomic.Int64
	expOnce  sync.Once
	mExpired *metrics.Counter
}

// Expired counts requests rejected because their end-to-end deadline had
// already passed on arrival — work the server refused to dispatch because
// no caller was still awaiting the answer.
func (s *Server) Expired() int64 { return s.expired.Load() }

// ServeOne blocks for a single request, dispatches it, and replies if the
// handler produced a response. It returns the source rank.
func (s *Server) ServeOne() int {
	src, seq, req := s.Recv()
	resp, respond := s.Handler(src, req)
	if respond {
		s.Respond(src, seq, resp)
	}
	return src
}

// Recv blocks for one fresh request, for servers that need to defer or
// re-queue requests instead of answering immediately. Corrupt envelopes are
// dropped (the client's retry recovers them); duplicates never reach the
// caller.
func (s *Server) Recv() (src int, seq uint64, req []byte) {
	for {
		msg, st := s.IC.Recv(mpi.AnySource, tagRequest)
		rseq, deadline, body, ok := unseal(msg)
		if !ok {
			continue // corrupt on the wire; treated as lost
		}
		if deadline != 0 && time.Now().UnixNano() > deadline {
			// The caller's end-to-end budget is spent: nobody awaits this
			// answer, so reject without dispatching the handler.
			s.expired.Add(1)
			if s.Metrics != nil {
				s.expOnce.Do(func() {
					s.mExpired = s.Metrics.Counter("rpc.server.deadline_rejected")
				})
				s.mExpired.Inc()
			}
			buf.Release(msg)
			continue
		}
		if cached, dup := s.register(st.Source, rseq); dup {
			if cached != nil {
				// Already answered: replay the response for the retry.
				s.IC.Send(st.Source, tagResponse, seal(rseq, 0, cached.resp))
			}
			continue
		}
		return st.Source, rseq, body
	}
}

// Respond sends a response for a request previously obtained via Recv and
// caches it so duplicates of the request replay it.
func (s *Server) Respond(src int, seq uint64, resp []byte) {
	s.mu.Lock()
	if m := s.seen[src]; m != nil {
		if st, ok := m[seq]; ok {
			st.answered = true
			st.resp = resp
		}
	}
	s.mu.Unlock()
	s.IC.Send(src, tagResponse, seal(seq, 0, resp))
}

// register records a (src, seq) sighting. It returns dup=true when the
// request was seen before; cached is non-nil when it was already answered.
func (s *Server) register(src int, seq uint64) (cached *reqState, dup bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seen == nil {
		s.seen = map[int]map[uint64]*reqState{}
		s.newest = map[int]uint64{}
	}
	m := s.seen[src]
	if m == nil {
		m = map[uint64]*reqState{}
		s.seen[src] = m
	}
	if st, ok := m[seq]; ok {
		if st.answered {
			return st, true
		}
		return nil, true
	}
	if newest := s.newest[src]; newest > dedupWindow && seq < newest-dedupWindow {
		// An ancient duplicate whose state was already pruned: it can only
		// be a replay of a request answered long ago (the client moved on
		// hundreds of sequence numbers), so swallow it rather than treat it
		// as fresh and re-dispatch the handler.
		return nil, true
	}
	m[seq] = &reqState{}
	if seq > s.newest[src] {
		s.newest[src] = seq
		// Prune states that have fallen out of the duplicate window so the
		// cache stays bounded over long many-timestep runs.
		if seq > dedupWindow {
			for old := range m {
				if old < seq-dedupWindow {
					delete(m, old)
				}
			}
		}
	}
	return nil, false
}

// Pending reports whether a request is waiting (for multiplexing several
// servers on one thread).
func (s *Server) Pending() bool {
	_, ok := s.IC.Iprobe(mpi.AnySource, tagRequest)
	return ok
}
