// Package rpc provides the minimal remote-procedure-call abstraction over
// MPI intercommunicators that the paper's index, serve and query functions
// are written in (§III-B): a client sends a tagged request to a rank of the
// remote group and blocks for the reply; a server receives requests from any
// remote rank, dispatches them to a handler, and sends the reply back.
package rpc

import "lowfive/mpi"

const (
	tagRequest  = 71
	tagResponse = 72
)

// Client issues blocking calls to ranks of the remote group.
type Client struct {
	IC *mpi.Intercomm
}

// Call sends req to remote rank dest and blocks for its response.
func (c *Client) Call(dest int, req []byte) []byte {
	c.IC.Send(dest, tagRequest, req)
	resp, _ := c.IC.Recv(dest, tagResponse)
	return resp
}

// Notify sends req to remote rank dest without expecting a response.
func (c *Client) Notify(dest int, req []byte) {
	c.IC.Send(dest, tagRequest, req)
}

// CallAll pipelines the same request to several remote ranks: all sends are
// posted before any response is awaited (the nonblocking-send pattern of
// the paper's query step), and the responses are returned in dests order.
func (c *Client) CallAll(dests []int, req []byte) [][]byte {
	for _, d := range dests {
		c.IC.Send(d, tagRequest, req)
	}
	out := make([][]byte, len(dests))
	for i, d := range dests {
		out[i], _ = c.IC.Recv(d, tagResponse)
	}
	return out
}

// Handler processes one request from remote rank src. Returning a nil
// response with respond=false means the request was a one-way notification.
type Handler func(src int, req []byte) (resp []byte, respond bool)

// Server answers requests arriving on an intercommunicator.
type Server struct {
	IC      *mpi.Intercomm
	Handler Handler
}

// ServeOne blocks for a single request, dispatches it, and replies if the
// handler produced a response. It returns the source rank.
func (s *Server) ServeOne() int {
	req, st := s.IC.Recv(mpi.AnySource, tagRequest)
	resp, respond := s.Handler(st.Source, req)
	if respond {
		s.IC.Send(st.Source, tagResponse, resp)
	}
	return st.Source
}

// Recv blocks for one raw request, for servers that need to defer or
// re-queue requests instead of answering immediately.
func (s *Server) Recv() (src int, req []byte) {
	r, st := s.IC.Recv(mpi.AnySource, tagRequest)
	return st.Source, r
}

// Respond sends a response for a request previously obtained via Recv.
func (s *Server) Respond(src int, resp []byte) {
	s.IC.Send(src, tagResponse, resp)
}

// Pending reports whether a request is waiting (for multiplexing several
// servers on one thread).
func (s *Server) Pending() bool {
	_, ok := s.IC.Iprobe(mpi.AnySource, tagRequest)
	return ok
}
