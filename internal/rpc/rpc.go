// Package rpc provides the minimal remote-procedure-call abstraction over
// MPI intercommunicators that the paper's index, serve and query functions
// are written in (§III-B): a client sends a tagged request to a rank of the
// remote group and blocks for the reply; a server receives requests from any
// remote rank, dispatches them to a handler, and sends the reply back.
//
// Requests and responses travel in a small envelope — a per-client sequence
// number plus a CRC of the body — that makes the exchange safe under an
// unreliable transport: a duplicated request is answered once (the server
// replays the cached response instead of re-dispatching), a corrupted
// payload is discarded as if lost, and a retried call reuses its sequence
// number so the server recognizes it. With a Timeout configured, Call
// bounds each attempt and retries with exponential backoff; a crashed peer
// surfaces as a typed error instead of a hang.
package rpc

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"lowfive/internal/buf"
	"lowfive/internal/spin"
	"lowfive/mpi"
)

// TagRequest and TagResponse are the message tags RPC traffic travels on,
// exported so fault plans (mpi.FaultRule.Tag) can target request or response
// messages specifically.
const (
	TagRequest  = 71
	TagResponse = 72

	tagRequest  = TagRequest
	tagResponse = TagResponse

	headerLen = 12 // seq (8) + crc32 (4)

	// dedupWindow bounds the server's per-source response cache: entries
	// more than this many sequence numbers behind the newest are pruned.
	// Duplicates are reorderings of recent traffic, never arbitrarily old.
	dedupWindow = 256

	// pollInterval paces the timeout-mode receive poll.
	pollInterval = 200 * time.Microsecond
)

// seal wraps a body in the wire envelope: sequence number and body CRC.
func seal(seq uint64, body []byte) []byte {
	buf := make([]byte, headerLen+len(body))
	binary.LittleEndian.PutUint64(buf[0:], seq)
	binary.LittleEndian.PutUint32(buf[8:], crc32.ChecksumIEEE(body))
	copy(buf[headerLen:], body)
	return buf
}

// unseal unwraps an envelope, verifying the CRC. ok=false means the message
// is truncated or corrupt and must be treated as lost.
func unseal(msg []byte) (seq uint64, body []byte, ok bool) {
	if len(msg) < headerLen {
		return 0, nil, false
	}
	seq = binary.LittleEndian.Uint64(msg[0:])
	body = msg[headerLen:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(msg[8:]) {
		return 0, nil, false
	}
	return seq, body, true
}

// TimeoutError reports that a call's attempts all expired without a reply.
type TimeoutError struct {
	// Dest is the remote rank that did not answer.
	Dest int
	// Timeout is the per-attempt deadline that expired.
	Timeout time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("rpc: call to rank %d timed out after %v", e.Dest, e.Timeout)
}

// CallError wraps a failure of one call with the rank it addressed, so
// callers fanning out to many ranks know which peer to fail over from.
type CallError struct {
	// Dest is the remote rank the failed call addressed.
	Dest int
	// Err is the underlying failure (a *TimeoutError or *mpi.RankFailedError).
	Err error
}

func (e *CallError) Error() string {
	return fmt.Sprintf("rpc: call to rank %d failed: %v", e.Dest, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *CallError) Unwrap() error { return e.Err }

// Client issues blocking calls to ranks of the remote group. The zero value
// (plus IC) behaves like the original fail-stop client: calls block forever
// and a crashed peer is the only possible error. Setting Timeout turns on
// bounded attempts with retries.
type Client struct {
	IC *mpi.Intercomm

	// Timeout bounds each call attempt; zero or negative blocks forever.
	Timeout time.Duration
	// Retries is how many times a timed-out attempt is resent.
	Retries int
	// Backoff is the wait after the first timed-out attempt; it doubles per
	// retry. Zero means retry immediately.
	Backoff time.Duration
	// RetryFailed keeps polling when the addressed peer has crashed instead
	// of failing the call immediately: under a supervised workflow the peer
	// may be torn down and relaunched, and a retried request (sends to a
	// dead rank are silently dropped) reaches the fresh incarnation. The
	// call still fails once the retry budget is spent with the peer down,
	// with a *CallError wrapping mpi.RankFailedError — so the budget bounds
	// how long a restart may take. Requires a Timeout; the fail-stop path
	// ignores it.
	RetryFailed bool

	mu  sync.Mutex
	seq uint64
}

func (c *Client) nextSeq() uint64 {
	c.mu.Lock()
	c.seq++
	s := c.seq
	c.mu.Unlock()
	return s
}

// Call sends req to remote rank dest and blocks for its response. A crashed
// peer returns a *CallError wrapping mpi.RankFailedError; with a Timeout
// configured, lost or corrupted messages return a *CallError wrapping
// TimeoutError once the retry budget is spent.
func (c *Client) Call(dest int, req []byte) ([]byte, error) {
	seq := c.nextSeq()
	c.IC.Send(dest, tagRequest, seal(seq, req))
	return c.await(dest, seq, req)
}

// CallAll pipelines the same request to several remote ranks: all sends are
// posted before any response is awaited (the nonblocking-send pattern of
// the paper's query step), and the responses are returned in dests order.
// The first failed call aborts with its *CallError (identifying the rank,
// for failover); responses already received stay in their slots, the failed
// and later slots are nil.
func (c *Client) CallAll(dests []int, req []byte) ([][]byte, error) {
	seqs := make([]uint64, len(dests))
	for i, d := range dests {
		seqs[i] = c.nextSeq()
		c.IC.Send(d, tagRequest, seal(seqs[i], req))
	}
	out := make([][]byte, len(dests))
	for i, d := range dests {
		resp, err := c.await(d, seqs[i], req)
		if err != nil {
			return out, err
		}
		out[i] = resp
	}
	return out, nil
}

// Notify sends req to remote rank dest without expecting a response. It is
// fire-and-forget: with no reply there is nothing to time out on, so callers
// that must know the notification arrived should use Call against a server
// that acknowledges.
func (c *Client) Notify(dest int, req []byte) {
	c.IC.Send(dest, tagRequest, seal(c.nextSeq(), req))
}

// await blocks for the response carrying seq from dest, resending the
// request on timeout (same sequence number — the server deduplicates).
// Responses with other sequence numbers are stale replies to abandoned
// attempts and are discarded.
func (c *Client) await(dest int, seq uint64, req []byte) (resp []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			if rf, ok := r.(*mpi.RankFailedError); ok {
				resp, err = nil, &CallError{Dest: dest, Err: rf}
				return
			}
			panic(r)
		}
	}()
	if c.Timeout <= 0 {
		// Fail-stop mode: block until the response (or a peer crash) arrives.
		for {
			msg, _ := c.IC.Recv(dest, tagResponse)
			rseq, body, ok := unseal(msg)
			if ok && rseq == seq {
				return body, nil
			}
			// Stale or corrupt — possibly a pooled frame from an abandoned
			// stream; recycle it.
			buf.Release(msg)
		}
	}
	backoff := c.Backoff
	var down *mpi.RankFailedError
	for attempt := 0; ; attempt++ {
		deadline := time.Now().Add(c.Timeout)
		for time.Now().Before(deadline) {
			msg, got, pd := c.tryRecv(dest)
			if pd != nil {
				down = pd
				spin.Wait(pollInterval)
				continue
			}
			if !got {
				spin.Wait(pollInterval)
				continue
			}
			rseq, body, ok := unseal(msg)
			if ok && rseq == seq {
				return body, nil
			}
			buf.Release(msg)
		}
		if attempt >= c.Retries {
			if down != nil {
				return nil, &CallError{Dest: dest, Err: down}
			}
			return nil, &CallError{Dest: dest, Err: &TimeoutError{Dest: dest, Timeout: c.Timeout}}
		}
		if backoff > 0 {
			spin.Wait(backoff)
			backoff *= 2
		}
		down = nil
		c.IC.Send(dest, tagRequest, seal(seq, req))
	}
}

// tryRecv polls for one response message from dest. With RetryFailed set, a
// crashed peer surfaces as a non-nil down error instead of a panic, so the
// polling loops can wait out a supervised restart window; without it the
// mpi.RankFailedError panic propagates (fail-stop behavior, recovered by the
// callers' deferred handlers).
func (c *Client) tryRecv(dest int) (msg []byte, got bool, down *mpi.RankFailedError) {
	if c.RetryFailed {
		defer func() {
			if r := recover(); r != nil {
				if rf, ok := r.(*mpi.RankFailedError); ok {
					msg, got, down = nil, false, rf
					return
				}
				panic(r)
			}
		}()
	}
	msg, _, got = c.IC.TryRecv(dest, tagResponse)
	return msg, got, nil
}

// Handler processes one request from remote rank src. Returning a nil
// response with respond=false means the request was a one-way notification.
type Handler func(src int, req []byte) (resp []byte, respond bool)

// reqState tracks one (src, seq) request through the server: seen but not
// yet answered (in flight or parked), or answered with a cached response.
type reqState struct {
	answered bool
	resp     []byte
}

// Server answers requests arriving on an intercommunicator. It deduplicates
// by (source, sequence): a duplicate of an already-answered request gets the
// cached response resent, and a duplicate of one still in flight (parked,
// or a one-way notification) is swallowed, so client retries are idempotent.
type Server struct {
	IC      *mpi.Intercomm
	Handler Handler

	mu     sync.Mutex
	seen   map[int]map[uint64]*reqState
	newest map[int]uint64
}

// ServeOne blocks for a single request, dispatches it, and replies if the
// handler produced a response. It returns the source rank.
func (s *Server) ServeOne() int {
	src, seq, req := s.Recv()
	resp, respond := s.Handler(src, req)
	if respond {
		s.Respond(src, seq, resp)
	}
	return src
}

// Recv blocks for one fresh request, for servers that need to defer or
// re-queue requests instead of answering immediately. Corrupt envelopes are
// dropped (the client's retry recovers them); duplicates never reach the
// caller.
func (s *Server) Recv() (src int, seq uint64, req []byte) {
	for {
		msg, st := s.IC.Recv(mpi.AnySource, tagRequest)
		rseq, body, ok := unseal(msg)
		if !ok {
			continue // corrupt on the wire; treated as lost
		}
		if cached, dup := s.register(st.Source, rseq); dup {
			if cached != nil {
				// Already answered: replay the response for the retry.
				s.IC.Send(st.Source, tagResponse, seal(rseq, cached.resp))
			}
			continue
		}
		return st.Source, rseq, body
	}
}

// Respond sends a response for a request previously obtained via Recv and
// caches it so duplicates of the request replay it.
func (s *Server) Respond(src int, seq uint64, resp []byte) {
	s.mu.Lock()
	if m := s.seen[src]; m != nil {
		if st, ok := m[seq]; ok {
			st.answered = true
			st.resp = resp
		}
	}
	s.mu.Unlock()
	s.IC.Send(src, tagResponse, seal(seq, resp))
}

// register records a (src, seq) sighting. It returns dup=true when the
// request was seen before; cached is non-nil when it was already answered.
func (s *Server) register(src int, seq uint64) (cached *reqState, dup bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seen == nil {
		s.seen = map[int]map[uint64]*reqState{}
		s.newest = map[int]uint64{}
	}
	m := s.seen[src]
	if m == nil {
		m = map[uint64]*reqState{}
		s.seen[src] = m
	}
	if st, ok := m[seq]; ok {
		if st.answered {
			return st, true
		}
		return nil, true
	}
	m[seq] = &reqState{}
	if seq > s.newest[src] {
		s.newest[src] = seq
		// Prune states that have fallen out of the duplicate window so the
		// cache stays bounded over long many-timestep runs.
		if seq > dedupWindow {
			for old := range m {
				if old < seq-dedupWindow {
					delete(m, old)
				}
			}
		}
	}
	return nil, false
}

// Pending reports whether a request is waiting (for multiplexing several
// servers on one thread).
func (s *Server) Pending() bool {
	_, ok := s.IC.Iprobe(mpi.AnySource, tagRequest)
	return ok
}
