package rpc

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"lowfive/mpi"
)

// The fault tests launch a 1-proc client task (world rank 0) and a 1-proc
// server task (world rank 1) and perturb the RPC tags (71 request, 72
// response) with a seeded plan.

func faultyClient(p *mpi.Proc) *Client {
	return &Client{
		IC:      p.Intercomm("server"),
		Timeout: 50 * time.Millisecond,
		Retries: 5,
		Backoff: time.Millisecond,
	}
}

func TestCallRetriesAfterDroppedRequest(t *testing.T) {
	plan := mpi.FaultPlan{Seed: 1, Rules: []mpi.FaultRule{
		{Action: mpi.FaultDrop, Rank: 0, Tag: 71, Count: 1},
	}}
	var served atomic.Int64
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "client", Procs: 1, Main: func(p *mpi.Proc) {
			resp, err := faultyClient(p).Call(0, []byte("ping"))
			if err != nil {
				t.Errorf("call: %v", err)
			}
			if string(resp) != "pong" {
				t.Errorf("got %q", resp)
			}
		}},
		{Name: "server", Procs: 1, Main: func(p *mpi.Proc) {
			s := &Server{IC: p.Intercomm("client"), Handler: func(src int, req []byte) ([]byte, bool) {
				served.Add(1)
				if string(req) != "ping" {
					t.Errorf("request arrived as %q", req)
				}
				return []byte("pong"), true
			}}
			s.ServeOne()
		}},
	}, mpi.WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	if served.Load() != 1 {
		t.Errorf("handler ran %d times, want 1", served.Load())
	}
}

// lossyResponseTrial runs a call whose first response is perturbed by the
// given rule; the retry must be answered from the server's dedup cache, so
// the handler dispatches the request exactly once.
func lossyResponseTrial(t *testing.T, rule mpi.FaultRule) {
	t.Helper()
	plan := mpi.FaultPlan{Seed: 3, Rules: []mpi.FaultRule{rule}}
	var pings atomic.Int64
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "client", Procs: 1, Main: func(p *mpi.Proc) {
			c := faultyClient(p)
			resp, err := c.Call(0, []byte("ping"))
			if err != nil {
				t.Errorf("call: %v", err)
			}
			if string(resp) != "pong" {
				t.Errorf("got %q", resp)
			}
			// A final fresh request lets the server's second ServeOne (which
			// first replays the duplicate) terminate.
			if _, err := c.Call(0, []byte("bye")); err != nil {
				t.Errorf("bye: %v", err)
			}
		}},
		{Name: "server", Procs: 1, Main: func(p *mpi.Proc) {
			s := &Server{IC: p.Intercomm("client"), Handler: func(src int, req []byte) ([]byte, bool) {
				if string(req) == "ping" {
					pings.Add(1)
					return []byte("pong"), true
				}
				return []byte("ok"), true
			}}
			s.ServeOne()
			s.ServeOne()
		}},
	}, mpi.WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	if pings.Load() != 1 {
		t.Errorf("ping dispatched %d times, want 1 (dedup must replay, not re-dispatch)", pings.Load())
	}
}

func TestCallRetriesAfterDroppedResponse(t *testing.T) {
	lossyResponseTrial(t, mpi.FaultRule{Action: mpi.FaultDrop, Rank: 1, Tag: 72, Count: 1})
}

func TestCallRetriesAfterCorruptResponse(t *testing.T) {
	// Wherever the flips land — body (CRC fails) or header (stale sequence)
	// — the client discards the envelope and the retry recovers.
	lossyResponseTrial(t, mpi.FaultRule{Action: mpi.FaultCorrupt, Rank: 1, Tag: 72, Count: 1})
}

func TestDuplicatedRequestDispatchedOnce(t *testing.T) {
	lossyResponseTrial(t, mpi.FaultRule{Action: mpi.FaultDuplicate, Rank: 0, Tag: 71, Count: 1})
}

func TestCallTimeoutBudgetExhausted(t *testing.T) {
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "client", Procs: 1, Main: func(p *mpi.Proc) {
			c := &Client{IC: p.Intercomm("server"), Timeout: 10 * time.Millisecond, Retries: 2}
			start := time.Now()
			_, err := c.Call(0, []byte("void"))
			var ce *CallError
			if !errors.As(err, &ce) || ce.Dest != 0 {
				t.Fatalf("err = %v, want *CallError for rank 0", err)
			}
			var te *TimeoutError
			if !errors.As(err, &te) {
				t.Fatalf("err = %v does not unwrap to *TimeoutError", err)
			}
			// 1 attempt + 2 retries, each bounded by the timeout.
			if took := time.Since(start); took < 30*time.Millisecond {
				t.Errorf("gave up after %v, before the retry budget was spent", took)
			}
		}},
		{Name: "server", Procs: 1, Main: func(p *mpi.Proc) {
			// Never answers; the requests age out in its mailbox.
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCallOnCrashedPeerReturnsRankFailedError(t *testing.T) {
	// The server rank (world rank 1) dies receiving its first request. The
	// blocked client must get a typed failure, not a hang — even in
	// fail-stop mode with no timeout configured.
	plan := mpi.FaultPlan{Rules: []mpi.FaultRule{
		{Action: mpi.FaultCrash, Rank: 1, Tag: 71, OnRecv: true},
	}}
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "client", Procs: 1, Main: func(p *mpi.Proc) {
			c := &Client{IC: p.Intercomm("server")}
			_, err := c.Call(0, []byte("ping"))
			var ce *CallError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v, want *CallError", err)
			}
			var rf *mpi.RankFailedError
			if !errors.As(err, &rf) || rf.Rank != 1 {
				t.Fatalf("err = %v does not name the crashed world rank", err)
			}
		}},
		{Name: "server", Procs: 1, Main: func(p *mpi.Proc) {
			s := &Server{IC: p.Intercomm("client"), Handler: func(src int, req []byte) ([]byte, bool) {
				t.Error("handler ran on a crashed rank")
				return nil, false
			}}
			s.ServeOne()
			t.Error("ServeOne returned after an injected crash")
		}},
	}, mpi.WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
}
