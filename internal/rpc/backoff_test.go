package rpc

import (
	"testing"
	"time"
)

// A restart storm: many consumers observe the same producer crash in the
// same instant and start polling for its restart. With the old fixed
// interval every poller ticked at identical multiples of pollInterval; the
// jittered pacer must spread their schedules so the restarted rank is not
// hit by the whole herd at once.
func TestPollPacerDesynchronizesStorm(t *testing.T) {
	const pollers = 32
	const steps = 6
	timeout := 250 * time.Millisecond
	deadline := time.Now().Add(time.Hour) // no clamping in this test

	fire := make([][]time.Duration, pollers)
	for i := range fire {
		p := newPollPacer(timeout)
		var at time.Duration
		for s := 0; s < steps; s++ {
			d := p.next(deadline)
			if d < pollInterval {
				t.Fatalf("poller %d step %d: wait %v below base interval %v", i, s, d, pollInterval)
			}
			if max := timeout / 8; d > max {
				t.Fatalf("poller %d step %d: wait %v above budget cap %v", i, s, d, max)
			}
			at += d
			fire[i] = append(fire[i], at)
		}
	}

	// Quantize each poller's cumulative fire times to pollInterval buckets —
	// the resolution at which a synchronized herd would collide — and check
	// the later steps have spread out. Step 0 is allowed to collide (the
	// first wait is the base interval for everyone); by the final step the
	// doubling ceilings plus jitter must have produced mostly distinct
	// schedules.
	last := map[int64]int{}
	for i := range fire {
		last[int64(fire[i][steps-1]/pollInterval)]++
	}
	if len(last) < pollers/2 {
		t.Fatalf("restart storm still synchronized: %d pollers share %d distinct fire buckets", pollers, len(last))
	}
	for bucket, n := range last {
		if n > pollers/4 {
			t.Fatalf("restart storm still synchronized: %d of %d pollers fire in the same bucket %d", n, pollers, bucket)
		}
	}
}

// The backoff ceiling must ramp up (so a long outage is cheap to wait
// through) but stay capped by the per-attempt budget, and reset() must
// drop it back to the base interval.
func TestPollPacerRampCapAndReset(t *testing.T) {
	timeout := 800 * time.Millisecond
	p := newPollPacer(timeout)
	deadline := time.Now().Add(time.Hour)
	max := timeout / 8
	if p.b.Max() != max {
		t.Fatalf("cap = %v, want timeout/8 = %v", p.b.Max(), max)
	}
	for i := 0; i < 20; i++ {
		p.next(deadline)
	}
	if p.b.Ceiling() != max {
		t.Fatalf("after 20 steps ceiling = %v, want saturated at %v", p.b.Ceiling(), max)
	}
	p.reset()
	if p.b.Ceiling() != pollInterval {
		t.Fatalf("after reset ceiling = %v, want %v", p.b.Ceiling(), pollInterval)
	}
	// With no timeout (hedged path constructed without one) the ceiling
	// degrades to a small fixed bound rather than zero or negative.
	q := newPollPacer(0)
	if q.b.Max() <= 0 {
		t.Fatalf("zero-timeout pacer got non-positive cap %v", q.b.Max())
	}
}

// A wait must never overshoot the attempt deadline: the pacer is pacing a
// retry loop, not extending it.
func TestPollPacerClampsToDeadline(t *testing.T) {
	p := newPollPacer(time.Second)
	// Saturate the ceiling so the drawn wait would be large.
	far := time.Now().Add(time.Hour)
	for i := 0; i < 20; i++ {
		p.next(far)
	}
	remain := 50 * time.Microsecond
	d := p.next(time.Now().Add(remain))
	if d > remain {
		t.Fatalf("wait %v overshoots remaining deadline %v", d, remain)
	}
}
