package rpc

import (
	"sync/atomic"
	"time"

	"lowfive/internal/spin"
)

// Polling a crashed peer that a supervisor will restart is different from
// polling a live one: latency no longer matters (the peer is down for a
// restart's worth of time), and a fixed interval is actively harmful —
// every consumer whose producer died at the same instant polls on the same
// schedule forever after, and the restarted rank absorbs the whole herd in
// one burst. The pacer below replaces the fixed interval with full-jitter
// exponential backoff: each wait is uniform in [pollInterval, cur], with
// cur doubling up to a ceiling derived from the call's per-attempt budget,
// and no wait overshoots the attempt deadline.

// pollSeeds hands each pacer a distinct xorshift seed. The golden-ratio
// increment keeps successive seeds well-separated in state space, so
// pacers created in the same nanosecond still decorrelate.
var pollSeeds atomic.Uint64

// pollPacer paces the down-peer receive poll for one call.
type pollPacer struct {
	rng uint64        // xorshift64 state, private per pacer
	cur time.Duration // current backoff ceiling, doubles per step
	max time.Duration // hard ceiling (fraction of the per-attempt budget)
}

// newPollPacer builds a pacer whose backoff is capped at an eighth of the
// per-attempt timeout, so waiting never eats a meaningful slice of an
// attempt; timeout <= 0 (fail-stop mode never constructs one, but hedged
// paths may) degrades to a 2ms ceiling.
func newPollPacer(timeout time.Duration) pollPacer {
	max := timeout / 8
	if max < pollInterval {
		max = 2 * time.Millisecond
	}
	seed := pollSeeds.Add(0x9e3779b97f4a7c15) ^ uint64(time.Now().UnixNano())
	if seed == 0 {
		seed = 1
	}
	return pollPacer{rng: seed, cur: pollInterval, max: max}
}

// next draws the jittered wait for this step and advances the backoff,
// clamping to the time remaining before deadline. Exposed separately from
// wait so tests can examine schedules without sleeping through them.
func (p *pollPacer) next(deadline time.Time) time.Duration {
	x := p.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	p.rng = x
	span := uint64(p.cur-pollInterval) + 1
	d := pollInterval + time.Duration(x%span)
	if p.cur < p.max {
		p.cur *= 2
		if p.cur > p.max {
			p.cur = p.max
		}
	}
	if remain := time.Until(deadline); remain < d {
		d = remain
	}
	return d
}

// wait sleeps one backoff step.
func (p *pollPacer) wait(deadline time.Time) { spin.Wait(p.next(deadline)) }

// reset drops the ceiling back to the base interval — called whenever the
// peer is observed alive, so a later crash starts a fresh ramp.
func (p *pollPacer) reset() { p.cur = pollInterval }
