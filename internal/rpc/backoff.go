package rpc

import (
	"time"

	"lowfive/internal/backoff"
	"lowfive/internal/spin"
)

// Polling a crashed peer that a supervisor will restart is different from
// polling a live one: latency no longer matters (the peer is down for a
// restart's worth of time), and a fixed interval is actively harmful —
// every consumer whose producer died at the same instant polls on the same
// schedule forever after, and the restarted rank absorbs the whole herd in
// one burst. The pacer below paces that poll with the shared full-jitter
// exponential backoff of internal/backoff (also the sock transport's
// reconnect pacing): each wait is uniform in [pollInterval, cur], with cur
// doubling up to a ceiling derived from the call's per-attempt budget, and
// no wait overshoots the attempt deadline.

// pollPacer paces the down-peer receive poll for one call.
type pollPacer struct {
	b *backoff.Backoff
}

// newPollPacer builds a pacer whose backoff is capped at an eighth of the
// per-attempt timeout, so waiting never eats a meaningful slice of an
// attempt; timeout <= 0 (fail-stop mode never constructs one, but hedged
// paths may) degrades to a 2ms ceiling.
func newPollPacer(timeout time.Duration) pollPacer {
	max := timeout / 8
	if max < pollInterval {
		max = 2 * time.Millisecond
	}
	return pollPacer{b: backoff.New(pollInterval, max, 0)}
}

// next draws the jittered wait for this step and advances the backoff,
// clamping to the time remaining before deadline. Exposed separately from
// wait so tests can examine schedules without sleeping through them.
func (p *pollPacer) next(deadline time.Time) time.Duration { return p.b.Next(deadline) }

// wait sleeps one backoff step.
func (p *pollPacer) wait(deadline time.Time) { spin.Wait(p.next(deadline)) }

// reset drops the ceiling back to the base interval — called whenever the
// peer is observed alive, so a later crash starts a fresh ramp.
func (p *pollPacer) reset() { p.b.Reset() }
