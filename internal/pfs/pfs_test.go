package pfs

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

func TestWriteReadRoundTrip(t *testing.T) {
	fs := NewZeroCost()
	f, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("hello parallel world")
	if _, err := f.WriteAt(data, 100); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(data))
	if _, err := f.ReadAt(out, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Errorf("got %q", out)
	}
	if sz, _ := f.Size(); sz != 100+int64(len(data)) {
		t.Errorf("size %d", sz)
	}
}

func TestSparseReadsZeroFill(t *testing.T) {
	fs := NewZeroCost()
	f, _ := fs.Create("s")
	f.WriteAt([]byte{1}, 0)
	out := []byte{9, 9, 9}
	if _, err := f.ReadAt(out, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, []byte{1, 0, 0}) {
		t.Errorf("got %v", out)
	}
}

func TestSharedHandlesAliasOneFile(t *testing.T) {
	fs := NewZeroCost()
	a, _ := fs.Create("f")
	b, _ := fs.Create("f")
	a.WriteAt([]byte{42}, 7)
	out := make([]byte, 1)
	b.ReadAt(out, 7)
	if out[0] != 42 {
		t.Error("handles should share the file")
	}
}

func TestOpenMissing(t *testing.T) {
	fs := NewZeroCost()
	if _, err := fs.Open("nope"); err == nil {
		t.Error("open of missing file should fail")
	}
	fs.Create("yes")
	if _, err := fs.Open("yes"); err != nil {
		t.Error(err)
	}
	fs.Remove("yes")
	if fs.Exists("yes") {
		t.Error("removed file should not exist")
	}
}

func TestNegativeOffsets(t *testing.T) {
	fs := NewZeroCost()
	f, _ := fs.Create("n")
	if _, err := f.WriteAt([]byte{1}, -1); err == nil {
		t.Error("negative write offset should fail")
	}
	if _, err := f.ReadAt([]byte{1}, -1); err == nil {
		t.Error("negative read offset should fail")
	}
}

func TestStats(t *testing.T) {
	fs := NewZeroCost()
	f, _ := fs.Create("s")
	f.WriteAt(make([]byte, 100), 0)
	f.ReadAt(make([]byte, 40), 0)
	w, r := fs.Stats()
	if w != 100 || r != 40 {
		t.Errorf("stats w=%d r=%d", w, r)
	}
}

func TestConcurrentWritersDisjointRegions(t *testing.T) {
	fs := NewZeroCost()
	f, _ := fs.Create("c")
	var wg sync.WaitGroup
	const n = 16
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			chunk := bytes.Repeat([]byte{byte(i + 1)}, 1000)
			f.WriteAt(chunk, int64(i)*1000)
		}(i)
	}
	wg.Wait()
	out := make([]byte, n*1000)
	f.ReadAt(out, 0)
	for i := 0; i < n; i++ {
		if out[i*1000] != byte(i+1) || out[i*1000+999] != byte(i+1) {
			t.Errorf("chunk %d corrupted", i)
		}
	}
}

func TestOSTContentionSerializes(t *testing.T) {
	// One OST with per-request latency: k concurrent writes must take at
	// least k * latency in total.
	fs := New(Options{NumOSTs: 1, StripeSize: 1 << 20, OSTLatency: 10 * time.Millisecond})
	f, _ := fs.Create("x")
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f.WriteAt([]byte{1}, int64(i))
		}(i)
	}
	wg.Wait()
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Errorf("5 serialized requests took only %v", d)
	}
}

func TestStripingSpreadsAcrossOSTs(t *testing.T) {
	// With 4 OSTs, 4 writes to different stripes proceed in parallel:
	// total ≈ 1 latency, not 4.
	fs := New(Options{NumOSTs: 4, StripeSize: 1024, OSTLatency: 20 * time.Millisecond})
	f, _ := fs.Create("x")
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f.WriteAt([]byte{1}, int64(i)*1024)
		}(i)
	}
	wg.Wait()
	if d := time.Since(start); d > 60*time.Millisecond {
		t.Errorf("striped writes should parallelize, took %v", d)
	}
}

func TestSharedLockSerializesWriters(t *testing.T) {
	fs := New(Options{NumOSTs: 8, StripeSize: 1024, SharedLockLatency: 10 * time.Millisecond})
	f, _ := fs.Create("x")
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f.WriteAt([]byte{1}, int64(i)*1024)
		}(i)
	}
	wg.Wait()
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Errorf("shared-file lock should serialize writers, took %v", d)
	}
}

func TestWriteReadRunsVectored(t *testing.T) {
	fs := NewZeroCost()
	f, _ := fs.Create("v")
	packed := []byte{1, 2, 3, 4, 5, 6}
	// Three runs landing at scattered offsets.
	offs := []int64{0, 100, 10}
	lens := []int64{2, 3, 1}
	if err := f.WriteRuns(packed, offs, lens); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 6)
	if err := f.ReadRuns(dst, offs, lens); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, packed) {
		t.Errorf("got %v want %v", dst, packed)
	}
	// Spot-check placement.
	one := make([]byte, 1)
	f.ReadAt(one, 102)
	if one[0] != 5 {
		t.Errorf("byte at 102 = %d want 5", one[0])
	}
}

func TestWriteRunsValidation(t *testing.T) {
	fs := NewZeroCost()
	f, _ := fs.Create("bad")
	if err := f.WriteRuns([]byte{1}, []int64{0, 1}, []int64{1}); err == nil {
		t.Error("offs/lens mismatch should fail")
	}
	if err := f.WriteRuns([]byte{1}, []int64{-1}, []int64{1}); err == nil {
		t.Error("negative offset should fail")
	}
	if err := f.WriteRuns([]byte{1}, []int64{0}, []int64{5}); err == nil {
		t.Error("packed too short should fail")
	}
	if err := f.ReadRuns([]byte{1}, []int64{0, 1}, []int64{1}); err == nil {
		t.Error("read offs/lens mismatch should fail")
	}
	if err := f.ReadRuns([]byte{1}, []int64{0}, []int64{5}); err == nil {
		t.Error("dst too short should fail")
	}
	if err := f.ReadRuns([]byte{1}, []int64{-2}, []int64{1}); err == nil {
		t.Error("negative read offset should fail")
	}
}

func TestWriteRunsChargesLockPerStripe(t *testing.T) {
	// A scattered vectored write touching many stripes must pay more lock
	// time than a contiguous one of the same size.
	opts := Options{NumOSTs: 4, StripeSize: 1024, SharedLockLatency: 3 * time.Millisecond}
	fs := New(opts)
	f, _ := fs.Create("l")
	packed := make([]byte, 8)
	scattered := []int64{0, 1024, 2048, 3072, 4096, 5120, 6144, 7168}
	ones := []int64{1, 1, 1, 1, 1, 1, 1, 1}
	start := time.Now()
	if err := f.WriteRuns(packed, scattered, ones); err != nil {
		t.Fatal(err)
	}
	scatteredTime := time.Since(start)
	start = time.Now()
	if err := f.WriteRuns(packed, []int64{0}, []int64{8}); err != nil {
		t.Fatal(err)
	}
	contiguousTime := time.Since(start)
	if scatteredTime < 4*contiguousTime {
		t.Errorf("scattered %v should cost far more lock time than contiguous %v",
			scatteredTime, contiguousTime)
	}
}

func TestDefaultOptionsSane(t *testing.T) {
	o := DefaultOptions()
	if o.NumOSTs <= 0 || o.StripeSize <= 0 || o.OSTBandwidth <= 0 {
		t.Errorf("defaults %+v", o)
	}
	f, err := New(o).Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
