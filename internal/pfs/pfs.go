// Package pfs simulates a striped parallel file system in the style of
// Lustre: files are striped across object storage targets (OSTs), each OST
// serves one request at a time with a configurable per-request latency and
// bandwidth, and shared-file writes additionally contend on a per-file
// extent lock. Bytes are really stored (in memory), so data written through
// the simulator reads back exactly — the timing model shapes performance,
// not correctness.
//
// This is the substitution for the paper's Lustre scratch file systems on
// Theta and Cori: what separates file-based transport from in situ
// transport in Figures 5–6 and Table II is exactly the striping contention
// and shared-file locking this model reproduces.
package pfs

import (
	"fmt"
	"sync"
	"time"

	"lowfive/internal/spin"
	"lowfive/metrics"
	"lowfive/trace"
)

// Options configure the simulated file system. Zero values disable the
// corresponding cost (useful in unit tests).
type Options struct {
	// NumOSTs is the number of object storage targets (stripes servers).
	NumOSTs int
	// StripeSize is the number of bytes per stripe.
	StripeSize int64
	// OSTBandwidth is the sustained bandwidth of one OST in bytes/second.
	OSTBandwidth float64
	// OSTLatency is the fixed cost of one request at one OST.
	OSTLatency time.Duration
	// SharedLockLatency is the cost of taking the file's extent lock for a
	// write; concurrent writers to one file serialize on it. This is the
	// single-shared-file penalty that makes N-to-1 HDF5 writes collapse.
	SharedLockLatency time.Duration
}

// DefaultOptions models a mid-size Lustre scratch allocation scaled to the
// benchmark harness's simulation regime (the interconnect model runs about
// three orders of magnitude slower than a real Cray Aries so that delays
// are resolvable by the host's sleep granularity; the file system is scaled
// by the same factor, keeping every ratio meaningful).
func DefaultOptions() Options {
	return Options{
		NumOSTs:           8,
		StripeSize:        64 << 10,
		OSTBandwidth:      8e6,
		OSTLatency:        2 * time.Millisecond,
		SharedLockLatency: 500 * time.Microsecond,
	}
}

// FS is one simulated parallel file system shared by all ranks of a world.
// It is safe for concurrent use.
type FS struct {
	opts Options

	mu    sync.Mutex
	files map[string]*fileData
	osts  []*ost

	bytesWritten int64
	bytesRead    int64
}

type ost struct {
	mu sync.Mutex

	// Cumulative accounting, guarded by mu (updated while the request
	// holds the OST anyway, so this costs nothing extra).
	requests  int64
	bytes     int64
	queueWait time.Duration
	busy      time.Duration

	track *trace.Track

	// Per-OST request latency histograms (queue wait + service, in
	// microseconds), split by direction. Nil without SetMetrics.
	readLat  *metrics.Histogram
	writeLat *metrics.Histogram
}

// OSTStat is the cumulative load of one object storage target.
type OSTStat struct {
	// Requests is the number of striped requests served.
	Requests int64
	// Bytes is the total bytes transferred through this OST.
	Bytes int64
	// QueueWait is the total time requests spent waiting for the OST while
	// it served others — the striping-contention signal.
	QueueWait time.Duration
	// Busy is the total simulated service time (latency + transfer).
	Busy time.Duration
}

// OSTStats returns a snapshot of per-OST load, indexed by OST.
func (fs *FS) OSTStats() []OSTStat {
	out := make([]OSTStat, len(fs.osts))
	for i, t := range fs.osts {
		t.mu.Lock()
		out[i] = OSTStat{Requests: t.requests, Bytes: t.bytes, QueueWait: t.queueWait, Busy: t.busy}
		t.mu.Unlock()
	}
	return out
}

// SetTracer gives every OST its own recording track (process "pfs", one
// thread per OST), so striping contention shows up on the timeline next to
// the ranks that caused it. Call before issuing I/O.
func (fs *FS) SetTracer(tr *trace.Tracer) {
	for i, t := range fs.osts {
		t.mu.Lock()
		t.track = tr.NewTrack("pfs", 1000, fmt.Sprintf("OST %d", i), i)
		t.mu.Unlock()
	}
}

// SetMetrics publishes per-OST read/write request-latency histograms
// ("pfs.ost<i>.read_us" / "pfs.ost<i>.write_us", covering queue wait plus
// service time) into the registry. Call before issuing I/O.
func (fs *FS) SetMetrics(r *metrics.Registry) {
	for i, t := range fs.osts {
		t.mu.Lock()
		t.readLat = r.Histogram(fmt.Sprintf("pfs.ost%d.read_us", i))
		t.writeLat = r.Histogram(fmt.Sprintf("pfs.ost%d.write_us", i))
		t.mu.Unlock()
	}
}

type fileData struct {
	mu     sync.Mutex
	lockMu sync.Mutex // the shared-file extent lock
	data   []byte
	// lastWriter tracks which handle last wrote each stripe, for the
	// extent-lock ping-pong model.
	lastWriter map[int64]*File
}

// New creates a simulated file system.
func New(opts Options) *FS {
	if opts.NumOSTs <= 0 {
		opts.NumOSTs = 1
	}
	if opts.StripeSize <= 0 {
		opts.StripeSize = 1 << 20
	}
	fs := &FS{opts: opts, files: map[string]*fileData{}}
	fs.osts = make([]*ost, opts.NumOSTs)
	for i := range fs.osts {
		fs.osts[i] = &ost{}
	}
	return fs
}

// NewZeroCost creates a file system with no simulated delays (for tests).
func NewZeroCost() *FS { return New(Options{NumOSTs: 4, StripeSize: 1 << 16}) }

// Stats returns cumulative bytes written and read.
func (fs *FS) Stats() (written, read int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.bytesWritten, fs.bytesRead
}

// Remove deletes a file.
func (fs *FS) Remove(name string) {
	fs.mu.Lock()
	delete(fs.files, name)
	fs.mu.Unlock()
}

// Exists reports whether a file exists.
func (fs *FS) Exists(name string) bool {
	fs.mu.Lock()
	_, ok := fs.files[name]
	fs.mu.Unlock()
	return ok
}

// File is a handle to one simulated file. Handles from different ranks
// alias the same underlying file, like a shared file on a real PFS.
type File struct {
	fs *FS
	fd *fileData
}

// Create creates (or truncates) a file and returns a handle.
func (fs *FS) Create(name string) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fd, ok := fs.files[name]
	if !ok {
		fd = &fileData{}
		fs.files[name] = fd
	}
	// Concurrent collective creates from many ranks must not re-truncate a
	// sibling's data: truncation happens only for a genuinely new file.
	return &File{fs: fs, fd: fd}, nil
}

// Open opens an existing file.
func (fs *FS) Open(name string) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fd, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("pfs: file %q does not exist", name)
	}
	return &File{fs: fs, fd: fd}, nil
}

// chargeOSTs charges each involved OST its latency plus the transfer time
// of the bytes striped onto it. ostBytes maps OST index to byte count;
// write selects the direction's latency histogram. Requests at one OST
// serialize; different OSTs proceed in parallel.
func (f *File) chargeOSTs(ostBytes map[int]int64, write bool) {
	o := &f.fs.opts
	costed := o.OSTLatency != 0 || o.OSTBandwidth != 0
	for osti, n := range ostBytes {
		t := f.fs.osts[osti]
		// Clocks are read only when there is a cost to measure or an
		// observer (track or histogram) to feed; a zero-cost unobserved FS
		// pays just the counter updates.
		var queued time.Time
		hist := t.readLat
		if write {
			hist = t.writeLat
		}
		timed := costed || t.track != nil || hist != nil
		if timed {
			queued = time.Now()
		}
		t.mu.Lock()
		var wait time.Duration
		if timed {
			wait = time.Since(queued)
		}
		var d time.Duration
		if costed {
			d = o.OSTLatency
			if o.OSTBandwidth > 0 {
				d += time.Duration(float64(n) / o.OSTBandwidth * float64(time.Second))
			}
			spin.Wait(d)
		}
		t.requests++
		t.bytes += n
		t.queueWait += wait
		t.busy += d
		if t.track != nil {
			t.track.Span("pfs", "request", queued, time.Now(),
				trace.I64("bytes", n),
				trace.I64("queue_us", int64(wait/time.Microsecond)))
		}
		t.mu.Unlock()
		// The request's latency as its issuer saw it: queue wait plus
		// service. Recorded outside the OST lock — the histogram is atomic.
		hist.Observe(wait + d)
	}
}

// stripeSpread accumulates, for a byte range, the per-OST byte counts and
// the distinct stripes touched.
func (f *File) stripeSpread(off, n int64, ostBytes map[int]int64, stripes map[int64]bool) {
	o := &f.fs.opts
	pos := off
	remaining := n
	for remaining > 0 {
		stripe := pos / o.StripeSize
		inStripe := o.StripeSize - pos%o.StripeSize
		chunk := remaining
		if chunk > inStripe {
			chunk = inStripe
		}
		ostBytes[int(stripe)%len(f.fs.osts)] += chunk
		stripes[stripe] = true
		pos += chunk
		remaining -= chunk
	}
}

// chargeSharedLock charges one lock-transfer latency for every written
// stripe whose previous writer was a different handle, and records this
// handle as the new owner. Writers streaming private contiguous regions
// pay only at region boundaries; writers interleaving rows of a shared
// file pay on almost every stripe, serially — the N-to-1 collapse.
func (f *File) chargeSharedLock(stripes map[int64]bool) {
	o := &f.fs.opts
	if o.SharedLockLatency == 0 || len(stripes) == 0 {
		return
	}
	f.fd.lockMu.Lock()
	if f.fd.lastWriter == nil {
		f.fd.lastWriter = map[int64]*File{}
	}
	contended := 0
	for s := range stripes {
		if f.fd.lastWriter[s] != f {
			contended++
			f.fd.lastWriter[s] = f
		}
	}
	spin.Wait(time.Duration(contended) * o.SharedLockLatency)
	f.fd.lockMu.Unlock()
}

// chargeStripes is the single-range convenience used by WriteAt/ReadAt.
func (f *File) chargeStripes(off int64, n int, write bool) {
	ostBytes := map[int]int64{}
	stripes := map[int64]bool{}
	f.stripeSpread(off, int64(n), ostBytes, stripes)
	f.chargeOSTs(ostBytes, write)
}

// WriteAt writes p at offset off, paying the shared-file lock plus striped
// OST costs, then storing the bytes.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("pfs: negative offset %d", off)
	}
	ostBytes := map[int]int64{}
	stripes := map[int64]bool{}
	f.stripeSpread(off, int64(len(p)), ostBytes, stripes)
	f.chargeSharedLock(stripes)
	f.chargeOSTs(ostBytes, true)
	f.store(p, off)
	return len(p), nil
}

// store copies the bytes into the backing buffer (no cost accounting).
func (f *File) store(p []byte, off int64) {
	f.fd.mu.Lock()
	if need := off + int64(len(p)); int64(len(f.fd.data)) < need {
		grown := make([]byte, need)
		copy(grown, f.fd.data)
		f.fd.data = grown
	}
	copy(f.fd.data[off:], p)
	f.fd.mu.Unlock()
	f.fs.mu.Lock()
	f.fs.bytesWritten += int64(len(p))
	f.fs.mu.Unlock()
}

// WriteRuns writes a vectored request: consecutive segments of packed land
// at the given offsets with the given lengths (MPI-IO style collective
// aggregation). The whole request pays one shared-lock charge proportional
// to the distinct stripes it touches, plus per-OST transfer costs for the
// aggregate bytes — so a rank scattering many small interleaved rows over
// a shared file pays far more locking than one writing a contiguous record.
func (f *File) WriteRuns(packed []byte, offs, lens []int64) error {
	if len(offs) != len(lens) {
		return fmt.Errorf("pfs: WriteRuns offs/lens mismatch: %d vs %d", len(offs), len(lens))
	}
	ostBytes := map[int]int64{}
	stripes := map[int64]bool{}
	total := int64(0)
	for i := range offs {
		if offs[i] < 0 || lens[i] < 0 {
			return fmt.Errorf("pfs: WriteRuns negative offset or length at run %d", i)
		}
		f.stripeSpread(offs[i], lens[i], ostBytes, stripes)
		total += lens[i]
	}
	if total > int64(len(packed)) {
		return fmt.Errorf("pfs: WriteRuns needs %d bytes, packed has %d", total, len(packed))
	}
	f.chargeSharedLock(stripes)
	f.chargeOSTs(ostBytes, true)
	pos := int64(0)
	for i := range offs {
		f.store(packed[pos:pos+lens[i]], offs[i])
		pos += lens[i]
	}
	return nil
}

// ReadRuns reads a vectored request into consecutive segments of dst,
// with the same aggregate cost accounting as WriteRuns (reads do not take
// the shared extent lock).
func (f *File) ReadRuns(dst []byte, offs, lens []int64) error {
	if len(offs) != len(lens) {
		return fmt.Errorf("pfs: ReadRuns offs/lens mismatch: %d vs %d", len(offs), len(lens))
	}
	ostBytes := map[int]int64{}
	stripes := map[int64]bool{}
	total := int64(0)
	for i := range offs {
		if offs[i] < 0 || lens[i] < 0 {
			return fmt.Errorf("pfs: ReadRuns negative offset or length at run %d", i)
		}
		f.stripeSpread(offs[i], lens[i], ostBytes, stripes)
		total += lens[i]
	}
	if total > int64(len(dst)) {
		return fmt.Errorf("pfs: ReadRuns needs %d bytes, dst has %d", total, len(dst))
	}
	f.chargeOSTs(ostBytes, false)
	pos := int64(0)
	for i := range offs {
		f.fetch(dst[pos:pos+lens[i]], offs[i])
		pos += lens[i]
	}
	return nil
}

// fetch copies bytes out of the backing buffer, zero-filling past the end.
func (f *File) fetch(p []byte, off int64) {
	f.fd.mu.Lock()
	n := 0
	if off < int64(len(f.fd.data)) {
		n = copy(p, f.fd.data[off:])
	}
	f.fd.mu.Unlock()
	for i := n; i < len(p); i++ {
		p[i] = 0
	}
	f.fs.mu.Lock()
	f.fs.bytesRead += int64(len(p))
	f.fs.mu.Unlock()
}

// ReadAt reads into p from offset off, paying striped OST costs. Regions
// beyond the written extent read as zeros (sparse-file semantics; dataset
// extents are allocated lazily).
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("pfs: negative offset %d", off)
	}
	f.chargeStripes(off, len(p), false)
	f.fetch(p, off)
	return len(p), nil
}

// Size returns the current file size.
func (f *File) Size() (int64, error) {
	f.fd.mu.Lock()
	defer f.fd.mu.Unlock()
	return int64(len(f.fd.data)), nil
}

// Close releases the handle (a no-op for the simulated store).
func (f *File) Close() error { return nil }
