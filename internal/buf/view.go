package buf

import "encoding/binary"

// Writer is a chunked scatter-gather sink: callers Grab contiguous byte
// regions and fill them in place; whenever the current chunk cannot hold the
// next region the filled frame is handed to the flush callback and a fresh
// chunk is started. The first headroom bytes of every frame are reserved for
// the transport's header, so framing never copies the payload.
//
// Ownership: each flushed frame is chunk-backed (or a plain one-off
// allocation for regions larger than a chunk) and is handed off exactly once
// — the receiver releases it via Release. The Writer never touches a frame
// after flushing it.
type Writer struct {
	pool     *Pool
	headroom int
	onFlush  func(frame []byte)
	cur      []byte // current frame backing: chunk slab or oversize plain alloc
	used     int    // payload bytes written after the headroom
}

// NewWriter returns a Writer drawing chunks from pool (nil means Default),
// reserving headroom bytes per frame, and emitting filled frames to onFlush.
func NewWriter(pool *Pool, headroom int, onFlush func(frame []byte)) *Writer {
	if pool == nil {
		pool = Default
	}
	return &Writer{pool: pool, headroom: headroom, onFlush: onFlush}
}

// MaxGrab returns the largest region that fits a single pooled frame.
// Larger grabs still work via a one-off plain allocation.
func (w *Writer) MaxGrab() int { return w.pool.ChunkBytes() - w.headroom }

// Grab returns an n-byte region of the current frame for the caller to fill
// in place, flushing the previous frame first if n does not fit.
func (w *Writer) Grab(n int) []byte {
	if n <= 0 {
		return nil
	}
	if w.cur != nil && w.headroom+w.used+n > len(w.cur) {
		w.Flush()
	}
	if w.cur == nil {
		if w.headroom+n > w.pool.ChunkBytes() {
			// Oversize region (e.g. one element wider than the chunk knob):
			// a plain single-region frame keeps the stream moving.
			w.cur = make([]byte, w.headroom+n)
		} else {
			w.cur = w.pool.Get().Bytes()
		}
	}
	r := w.cur[w.headroom+w.used : w.headroom+w.used+n]
	w.used += n
	return r
}

// Take detaches the pending frame (headroom plus filled payload) without
// flushing it, or returns nil if nothing is pending.
func (w *Writer) Take() []byte {
	if w.cur == nil {
		return nil
	}
	f := w.cur[:w.headroom+w.used]
	w.cur, w.used = nil, 0
	return f
}

// Flush emits the pending frame, if any, to the flush callback.
func (w *Writer) Flush() {
	if f := w.Take(); f != nil {
		w.onFlush(f)
	}
}

// Reader is a zero-copy cursor over a received frame payload. Span returns
// sub-slices aliasing the frame, so everything read must be consumed (or
// copied out) before the frame is Released.
type Reader struct {
	b   []byte
	off int
	bad bool
}

// NewReader returns a cursor over b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.b) - r.off }

// OK reports whether every read so far was in bounds.
func (r *Reader) OK() bool { return !r.bad }

// U8 reads one byte.
func (r *Reader) U8() byte {
	if r.off+1 > len(r.b) {
		r.bad = true
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	if r.off+4 > len(r.b) {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 {
	if r.off+8 > len(r.b) {
		r.bad = true
		return 0
	}
	v := int64(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

// Span returns the next n bytes without copying. The slice aliases the
// frame and dies with it.
func (r *Reader) Span(n int) []byte {
	if n < 0 || r.off+n > len(r.b) {
		r.bad = true
		return nil
	}
	v := r.b[r.off : r.off+n : r.off+n]
	r.off += n
	return v
}
