package buf

import (
	"sync"
	"testing"
	"time"
)

func TestGetReleaseRoundTrip(t *testing.T) {
	p := NewPool(64, 4)
	c := p.Get()
	if len(c.Bytes()) != 64 {
		t.Fatalf("chunk size = %d, want 64", len(c.Bytes()))
	}
	if p.Outstanding() != 1 {
		t.Fatalf("outstanding = %d, want 1", p.Outstanding())
	}
	c.Release()
	if p.Outstanding() != 0 {
		t.Fatalf("outstanding after release = %d, want 0", p.Outstanding())
	}
	// The slab must be reusable: get again and check the pool didn't grow.
	c2 := p.Get()
	defer c2.Release()
	if p.HighWater() != 1 {
		t.Fatalf("high water = %d, want 1", p.HighWater())
	}
}

func TestRetainDelaysRecycle(t *testing.T) {
	p := NewPool(32, 2)
	c := p.Get()
	c.Retain()
	c.Release()
	if p.Outstanding() != 1 {
		t.Fatalf("chunk recycled while a retain was held")
	}
	c.Release()
	if p.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after final release", p.Outstanding())
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	p := NewPool(8, 1)
	c := p.Get()
	c.Release()
	defer func() {
		if recover() == nil {
			t.Fatalf("double release did not panic")
		}
	}()
	c.Release()
}

func TestSliceReleaseByBasePointer(t *testing.T) {
	p := NewPool(128, 4)
	c := p.Get()
	msg := c.Bytes()[:17] // what a receiver sees: slab prefix
	Release(msg)
	if p.Outstanding() != 0 {
		t.Fatalf("Release(msg) did not resolve the chunk")
	}
	// Non-chunk slices are a no-op.
	Release(make([]byte, 9))
	Release(nil)
}

func TestSliceRetain(t *testing.T) {
	p := NewPool(128, 4)
	c := p.Get()
	msg := c.Bytes()[:5]
	if !Retain(msg) {
		t.Fatalf("Retain(msg) did not find the chunk")
	}
	Release(msg)
	if p.Outstanding() != 1 {
		t.Fatalf("retained chunk was recycled")
	}
	c.Release()
	if Retain(make([]byte, 3)) {
		t.Fatalf("Retain claimed an unregistered slice")
	}
}

func TestLimitBlocksThenOverflows(t *testing.T) {
	p := NewPool(16, 1)
	p.grace = 10 * time.Millisecond
	c1 := p.Get()
	start := time.Now()
	c2 := p.Get() // at the limit: waits out grace, then falls back
	if time.Since(start) < p.grace {
		t.Fatalf("Get at the limit returned before the grace period")
	}
	if p.Overflow() != 1 {
		t.Fatalf("overflow = %d, want 1", p.Overflow())
	}
	c2.Release()
	c1.Release()
	// After releases the pooled path works again without overflow.
	c3 := p.Get()
	c3.Release()
	if p.Overflow() != 1 {
		t.Fatalf("overflow grew on the healthy path")
	}
}

func TestLimitUnblocksOnRelease(t *testing.T) {
	p := NewPool(16, 1)
	p.grace = 5 * time.Second // long enough that only a release can unblock
	c1 := p.Get()
	done := make(chan *Chunk)
	go func() { done <- p.Get() }()
	time.Sleep(5 * time.Millisecond)
	c1.Release()
	select {
	case c2 := <-done:
		c2.Release()
	case <-time.After(2 * time.Second):
		t.Fatalf("Get did not unblock on release")
	}
	if p.Overflow() != 0 {
		t.Fatalf("overflow = %d on a release-unblocked get", p.Overflow())
	}
}

func TestHighWaterTracksPeak(t *testing.T) {
	p := NewPool(8, 8)
	var cs []*Chunk
	for i := 0; i < 5; i++ {
		cs = append(cs, p.Get())
	}
	for _, c := range cs {
		c.Release()
	}
	c := p.Get()
	c.Release()
	if p.HighWater() != 5 {
		t.Fatalf("high water = %d, want 5", p.HighWater())
	}
}

func TestConcurrentChurn(t *testing.T) {
	p := NewPool(256, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c := p.Get()
				msg := c.Bytes()[:1]
				msg[0] = byte(i)
				Release(msg)
			}
		}()
	}
	wg.Wait()
	if p.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after churn", p.Outstanding())
	}
	if hw := p.HighWater(); hw > 8 {
		t.Fatalf("high water = %d with limit 4 (grace overflow bound exceeded)", hw)
	}
}

func TestStatsSnapshotAndResetHighWater(t *testing.T) {
	p := NewPool(8, 8)
	var cs []*Chunk
	for i := 0; i < 3; i++ {
		cs = append(cs, p.Get())
	}
	s := p.Stats()
	if s.Gets != 3 || s.Outstanding != 3 || s.HighWater != 3 || s.Overflow != 0 {
		t.Fatalf("stats = %+v, want 3 gets / 3 outstanding / 3 high water", s)
	}
	cs[0].Release()
	cs[1].Release()
	p.ResetHighWater() // rebase to the one chunk still live
	if hw := p.HighWater(); hw != 1 {
		t.Fatalf("high water after reset = %d, want 1", hw)
	}
	c := p.Get()
	c.Release()
	cs[2].Release()
	s = p.Stats()
	if s.Outstanding != 0 {
		t.Fatalf("outstanding = %d after all releases", s.Outstanding)
	}
	if s.HighWater != 2 {
		t.Fatalf("high water = %d after reset + one more get, want 2", s.HighWater)
	}
}
