// Package buf is the shared buffer plane of the streaming data path: a
// pool of fixed-size reference-counted chunks with explicit ownership.
//
// The transport layers (core serve/query, rpc streaming, mpi delivery) pass
// dataset payloads through pooled chunks instead of allocating a fresh
// buffer per hop. Ownership is explicit: a Get returns a chunk with one
// reference, Retain adds one, Release drops one, and the last Release
// returns the slab to the pool. Because the in-process "wire" hands the
// receiver a raw []byte (not a *Chunk), every live chunk is registered by
// the base pointer of its slab, so a receiver can release what it was
// handed with Release(msg) without knowing which pool it came from —
// and releasing a slice that is not chunk-backed is a safe no-op, which is
// what lets pooled and plain messages share one code path.
//
// The pool is bounded: at most Limit chunks are outstanding, so peak
// transport memory is O(chunks in flight), not O(dataset). A Get beyond the
// limit waits for a release; if none comes within a grace period (a crashed
// consumer whose queued frames will never be drained), Get falls back to a
// fresh unpooled allocation so the system stays live, and the Overflow
// counter records that the bound was exceeded. HighWater reports the peak
// number of chunks ever outstanding — the observable form of the bound.
package buf

import (
	"sync"
	"sync/atomic"
	"time"

	"lowfive/metrics"
)

// DefaultChunkBytes is the default chunk (frame) size of the streaming
// data path: large enough to amortize per-frame overhead, small enough
// that a handful of in-flight chunks bound peak transport memory.
const DefaultChunkBytes = 1 << 20 // 1 MiB

// DefaultLimit is the default bound on outstanding chunks per pool.
const DefaultLimit = 64

// defaultGrace is how long a Get waits at the limit before falling back to
// an unpooled allocation. It only matters when chunks leak (e.g. frames
// queued to a crashed rank), so liveness beats strictness here.
const defaultGrace = 100 * time.Millisecond

// registry maps the base pointer of every live chunk's slab to its Chunk,
// so Release can resolve a raw message slice back to its owner. Global on
// purpose: the receiver of a message does not know the sender's pool.
var registry sync.Map // *byte -> *Chunk

// Pool hands out fixed-size chunks, bounding how many are outstanding.
type Pool struct {
	size  int
	limit int
	grace time.Duration

	slabs  sync.Pool     // spare []byte slabs
	tokens chan struct{} // capacity limit; one token per outstanding pooled chunk

	mu          sync.Mutex
	outstanding int
	highWater   int
	overflow    int64
	gets        int64
}

// NewPool builds a pool of size-byte chunks with at most limit outstanding
// (limit <= 0 means unbounded). size is clamped to at least 1.
func NewPool(size, limit int) *Pool {
	if size < 1 {
		size = 1
	}
	p := &Pool{size: size, limit: limit, grace: defaultGrace}
	p.slabs.New = func() any { return make([]byte, size) }
	if limit > 0 {
		p.tokens = make(chan struct{}, limit)
		for i := 0; i < limit; i++ {
			p.tokens <- struct{}{}
		}
	}
	return p
}

// Default is the process-wide pool the transport uses unless a layer is
// configured with its own.
var Default = NewPool(DefaultChunkBytes, DefaultLimit)

// shared holds one process-wide pool per non-default chunk size, so every
// producer configured with the same frame size draws from one bounded pool
// instead of multiplying the bound by the number of producers.
var shared sync.Map // int -> *Pool

// SharedPool returns the process-wide pool for the given chunk size
// (Default for size <= 0 or the default size). Shared pools keep the
// Default pool's BYTE budget, not its chunk count: smaller chunks get
// proportionally more tokens, so shrinking the frame size never shrinks
// the number of streams that can be in flight.
func SharedPool(size int) *Pool {
	if size <= 0 || size == DefaultChunkBytes {
		return Default
	}
	if p, ok := shared.Load(size); ok {
		return p.(*Pool)
	}
	limit := DefaultLimit * DefaultChunkBytes / size
	if limit < 8 {
		limit = 8
	}
	p, _ := shared.LoadOrStore(size, NewPool(size, limit))
	return p.(*Pool)
}

// ChunkBytes returns the pool's chunk size.
func (p *Pool) ChunkBytes() int { return p.size }

// Limit returns the pool's bound on outstanding chunks (0 means unbounded).
// Admission control reads it to convert Outstanding into a pressure ratio.
func (p *Pool) Limit() int { return p.limit }

// Get returns a chunk with one reference. It blocks while the pool is at
// its outstanding limit, falling back to a fresh unpooled slab after the
// grace period so a leaked chunk can never wedge a producer.
func (p *Pool) Get() *Chunk {
	pooled := true
	if p.tokens != nil {
		select {
		case <-p.tokens:
		default:
			t := time.NewTimer(p.grace)
			select {
			case <-p.tokens:
				t.Stop()
			case <-t.C:
				pooled = false
			}
		}
	}
	var slab []byte
	if pooled {
		slab = p.slabs.Get().([]byte)
	} else {
		slab = make([]byte, p.size)
	}
	c := &Chunk{pool: p, slab: slab, pooled: pooled}
	c.refs.Store(1)
	registry.Store(&slab[0], c)
	p.mu.Lock()
	p.gets++
	p.outstanding++
	if p.outstanding > p.highWater {
		p.highWater = p.outstanding
	}
	if !pooled {
		p.overflow++
	}
	p.mu.Unlock()
	return c
}

// put returns a released chunk's slab to the pool.
func (p *Pool) put(c *Chunk) {
	registry.Delete(&c.slab[0])
	p.mu.Lock()
	p.outstanding--
	p.mu.Unlock()
	if c.pooled {
		p.slabs.Put(c.slab)
		if p.tokens != nil {
			p.tokens <- struct{}{}
		}
	}
}

// PoolStats is a consistent snapshot of a pool's counters.
type PoolStats struct {
	// Gets is the total number of chunks handed out.
	Gets int64
	// Outstanding is the number of live (unreleased) chunks right now; a
	// quiesced transport must be back at zero, including after a crashed
	// rank's queued frames were purged by teardown.
	Outstanding int
	// HighWater is the peak Outstanding since creation or the last
	// ResetHighWater — the measured bound on transport buffering.
	HighWater int
	// Overflow counts Gets that fell back to an unpooled allocation after
	// waiting out the grace period at the limit.
	Overflow int64
}

// Stats returns a consistent snapshot of all counters (the individual
// accessors read each counter under a separate lock acquisition).
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Gets:        p.gets,
		Outstanding: p.outstanding,
		HighWater:   p.highWater,
		Overflow:    p.overflow,
	}
}

// ResetHighWater rebases the high-water mark to the current outstanding
// count, so a phase can be measured in isolation from earlier peaks.
func (p *Pool) ResetHighWater() {
	p.mu.Lock()
	p.highWater = p.outstanding
	p.mu.Unlock()
}

// Outstanding returns the number of live (unreleased) chunks.
func (p *Pool) Outstanding() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.outstanding
}

// HighWater returns the peak number of chunks ever outstanding at once —
// the measured bound on transport buffering.
func (p *Pool) HighWater() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.highWater
}

// Overflow returns how many Gets fell back to an unpooled allocation after
// waiting out the grace period at the limit.
func (p *Pool) Overflow() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.overflow
}

// Gets returns the total number of chunks handed out.
func (p *Pool) Gets() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gets
}

// RegisterMetrics publishes the pool's counters as sampled gauges under
// prefix (e.g. "buf.pool" → "buf.pool.outstanding"). The gauges read the
// pool's existing counters at snapshot time, so registration adds nothing
// to the Get/Release hot path; re-registering the same prefix is
// idempotent.
func (p *Pool) RegisterMetrics(r *metrics.Registry, prefix string) {
	r.GaugeFunc(prefix+".outstanding", func() int64 { return int64(p.Outstanding()) })
	r.GaugeFunc(prefix+".highwater", func() int64 { return int64(p.HighWater()) })
	r.GaugeFunc(prefix+".overflow", p.Overflow)
	r.GaugeFunc(prefix+".gets", p.Gets)
	r.GaugeFunc(prefix+".limit", func() int64 { return int64(p.Limit()) })
}

// Chunk is one pooled buffer with explicit reference-counted ownership.
type Chunk struct {
	pool   *Pool
	slab   []byte
	pooled bool
	refs   atomic.Int32
}

// Bytes returns the full slab. Callers slice it to the bytes they filled.
func (c *Chunk) Bytes() []byte { return c.slab }

// Retain adds a reference; every Retain needs a matching Release.
func (c *Chunk) Retain() { c.refs.Add(1) }

// Release drops a reference; the last one returns the slab to its pool.
// Releasing more times than retained panics — that is a double free.
func (c *Chunk) Release() {
	n := c.refs.Add(-1)
	if n == 0 {
		c.pool.put(c)
	} else if n < 0 {
		panic("buf: chunk released more times than retained")
	}
}

// Release resolves a raw message slice back to its chunk (by slab base
// pointer) and drops one reference. Slices that are not chunk-backed —
// plain allocations, sub-slices past the slab start — are ignored, so
// receivers can release everything they are handed unconditionally.
func Release(b []byte) {
	if len(b) == 0 {
		return
	}
	if v, ok := registry.Load(&b[0]); ok {
		v.(*Chunk).Release()
	}
}

// Retain is the slice-addressed form of Chunk.Retain, for holders that only
// have the raw message. It reports whether the slice was chunk-backed.
func Retain(b []byte) bool {
	if len(b) == 0 {
		return false
	}
	if v, ok := registry.Load(&b[0]); ok {
		v.(*Chunk).Retain()
		return true
	}
	return false
}
