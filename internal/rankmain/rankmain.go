// Package rankmain is the rank-process entry point of the sock transport:
// the deterministic producer→consumer workload one lowfive-rank process
// (or a re-exec'd test binary) runs as its share of a multi-process
// world. The workload is designed so the harness can prove transport
// equivalence and restart correctness end to end:
//
//   - Every payload is a pure function of (seed, producer, consumer,
//     epoch), so a consumer's digest over a complete run is bit-identical
//     whether frames moved in-proc or over sockets, and whatever order
//     they arrived in.
//   - A producer re-sends every epoch from the top when it is respawned,
//     and consumers deduplicate by (producer, epoch), so a SIGKILLed and
//     restarted producer converges to the exact same digest.
//   - Consumers receive producer-by-producer and treat RankFailedError as
//     "wait for the supervisor to respawn the peer", with a deadline, so
//     a kill mid-stream stalls the consumer instead of failing it.
package rankmain

import (
	"fmt"
	"hash/fnv"
	"time"

	"lowfive/mpi"
)

// Spec sizes the workload. The world has Producers+Consumers ranks:
// producers are world ranks [0,Producers), consumers follow.
type Spec struct {
	// Producers and Consumers are the two group sizes.
	Producers, Consumers int
	// Epochs is how many timesteps each producer publishes.
	Epochs int
	// SliceBytes is the payload size of one (producer, consumer, epoch)
	// piece.
	SliceBytes int
	// Seed derives every payload byte.
	Seed int64
	// PaceMs is the per-epoch pause on each producer, stretching the send
	// phase so a kill lands mid-stream.
	PaceMs int
	// ToleranceMs is how long a consumer waits for a dead producer to be
	// respawned before giving up (default 20s).
	ToleranceMs int
	// Workload selects the traffic: "" or "digest" for raw tagged slices
	// (restart-protocol testing), "vol" for the full distributed-metadata
	// VOL exchange per epoch (transport-transparency testing). In vol
	// mode GridPoints/Particles size the per-producer data and SliceBytes
	// is unused.
	Workload              string
	GridPoints, Particles int64
	// Wire injects seeded wire-level faults into every rank process's
	// outgoing connections; it rides the child-process environment as
	// part of the spec.
	Wire *mpi.WirePlan `json:"wire,omitempty"`
	// FastRecovery tightens the sock engine's recovery timings so fault
	// cases tear/redial/resend in milliseconds.
	FastRecovery bool
}

// sockTuning maps FastRecovery onto the transport timing overrides.
func (s Spec) sockTuning() mpi.SockTuning {
	if !s.FastRecovery {
		return mpi.SockTuning{}
	}
	return mpi.SockTuning{
		HandshakeTimeout:  500 * time.Millisecond,
		RetransmitTimeout: 300 * time.Millisecond,
		AckInterval:       5 * time.Millisecond,
	}
}

// WorldSize is the total rank count of the workload's world.
func (s Spec) WorldSize() int { return s.Producers + s.Consumers }

// IsConsumer reports whether a world rank belongs to the consumer group.
func (s Spec) IsConsumer(worldRank int) bool { return worldRank >= s.Producers }

func (s Spec) tolerance() time.Duration {
	if s.ToleranceMs <= 0 {
		return 20 * time.Second
	}
	return time.Duration(s.ToleranceMs) * time.Millisecond
}

// slice generates the deterministic payload producer p sends consumer c
// (consumer group index) at epoch e: a splitmix-style stream keyed by
// (Seed, p, c, e).
func (s Spec) slice(p, c, e int) []byte {
	out := make([]byte, s.SliceBytes)
	x := uint64(s.Seed)*0x9e3779b97f4a7c15 ^
		uint64(p+1)*0xbf58476d1ce4e5b9 ^
		uint64(c+1)*0x94d049bb133111eb ^
		uint64(e+1)*0xd6e8feb86659fd93
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = byte(x)
	}
	return out
}

// pieceHash hashes one received piece with its identity; consumers sum
// piece hashes, which is order-independent (arrival order differs between
// engines) yet sensitive to every payload byte.
func pieceHash(producer, epoch int, data []byte) uint64 {
	h := fnv.New64a()
	var hdr [16]byte
	for i := 0; i < 8; i++ {
		hdr[i] = byte(producer >> (8 * i))
		hdr[8+i] = byte(epoch >> (8 * i))
	}
	h.Write(hdr[:])
	h.Write(data)
	return h.Sum64()
}

// Digest is the order-independent accumulation of a consumer's pieces.
func digestOf(pieces map[[2]int]uint64) uint64 {
	var d uint64
	for _, h := range pieces {
		d += h
	}
	return d
}

// producerMain publishes all epochs to every consumer. A respawned
// producer runs the identical loop — resending everything is the restart
// protocol; consumers deduplicate.
func (s Spec) producerMain(c *mpi.Comm) {
	p := c.Rank()
	for e := 0; e < s.Epochs; e++ {
		for ci := 0; ci < s.Consumers; ci++ {
			c.Send(s.Producers+ci, e, s.slice(p, ci, e))
		}
		if s.PaceMs > 0 {
			time.Sleep(time.Duration(s.PaceMs) * time.Millisecond)
		}
	}
}

// consumerMain collects Epochs pieces from every producer, tolerating
// producer death while a respawn is pending, and returns the digest.
func (s Spec) consumerMain(w *mpi.World, c *mpi.Comm) (uint64, error) {
	ci := c.Rank() - s.Producers
	pieces := make(map[[2]int]uint64, s.Producers*s.Epochs)
	deadline := time.Now().Add(s.tolerance())
	for p := 0; p < s.Producers; p++ {
		have := 0
		for have < s.Epochs {
			data, st, err := s.recvTolerant(w, c, p, deadline)
			if err != nil {
				return 0, fmt.Errorf("consumer %d: %w", ci, err)
			}
			key := [2]int{p, st.Tag}
			if _, dup := pieces[key]; dup {
				continue // an epoch re-sent by a respawned producer
			}
			pieces[key] = pieceHash(p, st.Tag, data)
			have++
		}
	}
	return digestOf(pieces), nil
}

// recvTolerant receives the next message from producer p, converting the
// RankFailedError panic of a dead producer into a bounded wait for its
// respawn. While waiting it keeps polling the mailbox: a producer that
// exited cleanly races its last frames (still in the socket buffer)
// against the coordinator's death broadcast, and those frames must win.
func (s Spec) recvTolerant(w *mpi.World, c *mpi.Comm, p int, deadline time.Time) (data []byte, st mpi.Status, err error) {
	for {
		failed := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if rf, ok := r.(*mpi.RankFailedError); ok && rf.Rank == p {
						failed = true
						return
					}
					panic(r)
				}
			}()
			data, st = c.Recv(p, mpi.AnyTag)
		}()
		if !failed {
			return data, st, nil
		}
		// The producer is (currently) dead. Poll for either a late frame
		// already delivered, or the revive that follows a respawn.
		for {
			got := false
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(*mpi.RankFailedError); ok {
							return // still dead, nothing queued
						}
						panic(r)
					}
				}()
				if _, ok := c.Iprobe(p, mpi.AnyTag); ok {
					data, st = c.Recv(p, mpi.AnyTag)
					got = true
				}
			}()
			if got {
				return data, st, nil
			}
			if !w.RankFailed(p) {
				break // revived: back to blocking receive
			}
			if time.Now().After(deadline) {
				return nil, st, fmt.Errorf("producer %d dead and not respawned in time", p)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// RunChan runs the whole workload in-proc over the chan engine and
// returns the per-consumer digests: the bit-identical reference the sock
// run must reproduce.
func RunChan(s Spec) ([]uint64, error) {
	w := mpi.NewWorld(s.WorldSize())
	digests := make([]uint64, s.Consumers)
	errs := make([]error, s.Consumers)
	err := w.Run(func(c *mpi.Comm) {
		if !s.IsConsumer(c.Rank()) {
			s.producerMain(c)
			return
		}
		ci := c.Rank() - s.Producers
		digests[ci], errs[ci] = s.consumerMain(w, c)
	})
	if err != nil {
		return nil, err
	}
	for ci, e := range errs {
		if e != nil {
			return nil, fmt.Errorf("consumer %d: %w", ci, e)
		}
	}
	return digests, nil
}

// RunSockRank runs one world rank of the workload in this process as a
// sock-world member: rendezvous, run, close. For consumers it returns the
// digest; producers return 0. The returned stats snapshot (taken before
// the world closes) carries the transport's recovery counters.
func RunSockRank(s Spec, network, coord string, rank int, inc uint32) (uint64, mpi.SockStats, error) {
	w, err := mpi.NewSockWorld(mpi.SockWorldConfig{
		Network: network, Coord: coord, Rank: rank, Size: s.WorldSize(), Inc: inc,
		Wire: s.Wire, Tuning: s.sockTuning(),
	})
	if err != nil {
		return 0, mpi.SockStats{}, err
	}
	defer w.Close()
	var digest uint64
	var workErr error
	var runErr error
	if s.Workload == "vol" {
		runErr = w.RunWorkflowLocal(s.volTaskSpecs(
			func(err error) {
				if err != nil && workErr == nil {
					workErr = err
				}
			},
			func(ci int, d uint64) { digest = d },
		))
	} else {
		runErr = w.RunLocal(func(c *mpi.Comm) {
			if !s.IsConsumer(rank) {
				s.producerMain(c)
				return
			}
			digest, workErr = s.consumerMain(w, c)
		})
	}
	st, _ := w.SockStats()
	if runErr != nil {
		return 0, st, runErr
	}
	return digest, st, workErr
}
