package rankmain

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"

	"lowfive/mpi"
)

// The harness spawns rank processes by re-executing its own binary (the
// test binary or lowfive-bench) with these environment variables set;
// ChildFromEnv intercepts the re-exec before any flag parsing or test
// running happens. cmd/lowfive-rank uses the same entry with flags.
const (
	// EnvChild marks a process as a spawned rank ("1").
	EnvChild = "LOWFIVE_RANK_CHILD"
	// EnvSpec is the JSON-encoded Spec.
	EnvSpec = "LOWFIVE_RANK_SPEC"
	// EnvRank, EnvInc are this process's world rank and incarnation.
	EnvRank = "LOWFIVE_RANK_RANK"
	EnvInc  = "LOWFIVE_RANK_INC"
	// EnvCoord, EnvNet locate the rendezvous coordinator.
	EnvCoord = "LOWFIVE_RANK_COORD"
	EnvNet   = "LOWFIVE_RANK_NET"
)

// digestMarker prefixes the one stdout line a consumer rank prints; the
// parent greps for it to collect digests. sockStatsMarker prefixes the
// transport-counter line every rank prints, which the fault sweeps use to
// prove recovery actually happened (reconnects > 0, resends > 0).
const (
	digestMarker    = "LOWFIVE_DIGEST"
	sockStatsMarker = "LOWFIVE_SOCKSTATS"
)

// FormatDigest renders the digest line a consumer process prints.
func FormatDigest(rank int, digest uint64) string {
	return fmt.Sprintf("%s rank=%d digest=%016x", digestMarker, rank, digest)
}

// ParseDigest extracts (rank, digest) from one line of child output,
// returning false for non-digest lines.
func ParseDigest(line string) (rank int, digest uint64, ok bool) {
	var d string
	if _, err := fmt.Sscanf(line, digestMarker+" rank=%d digest=%s", &rank, &d); err != nil {
		return 0, 0, false
	}
	v, err := strconv.ParseUint(d, 16, 64)
	if err != nil {
		return 0, 0, false
	}
	return rank, v, true
}

// FormatSockStats renders the transport-counter line a rank process
// prints on exit.
func FormatSockStats(rank int, st mpi.SockStats) string {
	return fmt.Sprintf("%s rank=%d reconnects=%d redials=%d resent=%d",
		sockStatsMarker, rank, st.Reconnects, st.Redials, st.ResentFrames)
}

// ParseSockStats extracts a rank's recovery counters from one line of
// child output, returning false for other lines.
func ParseSockStats(line string) (rank int, st mpi.SockStats, ok bool) {
	_, err := fmt.Sscanf(line, sockStatsMarker+" rank=%d reconnects=%d redials=%d resent=%d",
		&rank, &st.Reconnects, &st.Redials, &st.ResentFrames)
	if err != nil {
		return 0, mpi.SockStats{}, false
	}
	return rank, st, true
}

// ChildEnv builds the environment additions that turn a re-exec of the
// current binary into the given rank process.
func ChildEnv(s Spec, network, coord string, rank int, inc uint32) []string {
	spec, _ := json.Marshal(s)
	return []string{
		EnvChild + "=1",
		EnvSpec + "=" + string(spec),
		EnvRank + "=" + strconv.Itoa(rank),
		EnvInc + "=" + strconv.FormatUint(uint64(inc), 10),
		EnvCoord + "=" + coord,
		EnvNet + "=" + network,
	}
}

// ChildFromEnv checks whether this process was spawned as a rank child
// and, if so, runs the rank to completion and exits the process (0 on
// success). Call it first thing in TestMain or main; it returns
// immediately in the parent.
func ChildFromEnv() {
	if os.Getenv(EnvChild) != "1" {
		return
	}
	var s Spec
	if err := json.Unmarshal([]byte(os.Getenv(EnvSpec)), &s); err != nil {
		fmt.Fprintf(os.Stderr, "rank child: bad spec: %v\n", err)
		os.Exit(2)
	}
	rank, err := strconv.Atoi(os.Getenv(EnvRank))
	if err != nil {
		fmt.Fprintf(os.Stderr, "rank child: bad rank: %v\n", err)
		os.Exit(2)
	}
	inc64, err := strconv.ParseUint(os.Getenv(EnvInc), 10, 32)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rank child: bad inc: %v\n", err)
		os.Exit(2)
	}
	network, coord := os.Getenv(EnvNet), os.Getenv(EnvCoord)
	digest, st, err := RunSockRank(s, network, coord, rank, uint32(inc64))
	if err != nil {
		fmt.Fprintf(os.Stderr, "rank %d: %v\n", rank, err)
		os.Exit(1)
	}
	fmt.Println(FormatSockStats(rank, st))
	if s.IsConsumer(rank) {
		fmt.Println(FormatDigest(rank, digest))
	}
	os.Exit(0)
}
