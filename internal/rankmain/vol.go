package rankmain

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"time"

	"lowfive/h5"
	"lowfive/internal/core"
	"lowfive/internal/workload"
	"lowfive/mpi"
)

// The "vol" workload: instead of raw tagged slices, each epoch runs the
// paper's full distributed-metadata exchange — producers write a synthetic
// HDF5 file through the VOL and serve it, consumers open it over the
// intercomm, read their decomposition and validate it. The consumer digest
// hashes every byte read across all epochs, so a sock run under wire
// faults must deliver bit-identical science data to prove the transport's
// recovery is invisible above the codec.

// volSpec maps the rank workload sizes onto the synthetic-workload spec.
func (s Spec) volSpec() workload.Spec {
	return workload.Spec{
		Producers: s.Producers, Consumers: s.Consumers,
		GridPointsPerProducer: s.GridPoints,
		ParticlesPerProducer:  s.Particles,
	}
}

func volFileName(e int) string { return fmt.Sprintf("synthetic-e%d.h5", e) }

// volProducer writes and serves one synthetic file per epoch. Close blocks
// until every consumer has finished with the epoch's file, and the world
// barriers keep epochs from overlapping on the shared intercomm.
func (s Spec) volProducer(p *mpi.Proc) error {
	ws := s.volSpec()
	gridVals, partVals := workload.GenerateProducer(ws, p.Task.Rank())
	for e := 0; e < s.Epochs; e++ {
		vol := core.NewDistMetadataVOL(p.Task, nil)
		vol.SetIntercomm("*", p.Intercomm("consumer"))
		vol.SetZeroCopy("*", "*")
		fapl := h5.NewFileAccessProps(vol)
		p.World.Barrier()
		f, err := h5.CreateFile(volFileName(e), fapl)
		if err != nil {
			return fmt.Errorf("epoch %d: %w", e, err)
		}
		if err := workload.WriteSynthetic(f, ws, p.Task.Rank(), gridVals, partVals); err != nil {
			return fmt.Errorf("epoch %d: %w", e, err)
		}
		if err := f.Close(); err != nil { // index + serve until consumers close
			return fmt.Errorf("epoch %d: %w", e, err)
		}
		p.World.Barrier()
		if s.PaceMs > 0 {
			time.Sleep(time.Duration(s.PaceMs) * time.Millisecond)
		}
	}
	return nil
}

// volConsumer reads and validates every epoch's file, folding each buffer
// it read into one chained digest.
func (s Spec) volConsumer(p *mpi.Proc) (uint64, error) {
	ws := s.volSpec()
	h := fnv.New64a()
	var b8 [8]byte
	for e := 0; e < s.Epochs; e++ {
		vol := core.NewDistMetadataVOL(p.Task, nil)
		vol.SetIntercomm("*", p.Intercomm("producer"))
		fapl := h5.NewFileAccessProps(vol)
		p.World.Barrier()
		f, err := h5.OpenFile(volFileName(e), fapl)
		if err != nil {
			return 0, fmt.Errorf("epoch %d: %w", e, err)
		}
		gridBuf, partBuf, err := workload.ReadConsumer(f, ws, p.Task.Rank())
		if err != nil {
			return 0, fmt.Errorf("epoch %d: %w", e, err)
		}
		if err := f.Close(); err != nil {
			return 0, fmt.Errorf("epoch %d: %w", e, err)
		}
		p.World.Barrier()
		if err := workload.ValidateConsumer(ws, p.Task.Rank(), gridBuf, partBuf); err != nil {
			return 0, fmt.Errorf("epoch %d: %w", e, err)
		}
		binary.LittleEndian.PutUint64(b8[:], uint64(e))
		h.Write(b8[:])
		for _, g := range gridBuf {
			binary.LittleEndian.PutUint64(b8[:], g)
			h.Write(b8[:])
		}
		for _, v := range partBuf {
			binary.LittleEndian.PutUint32(b8[:4], math.Float32bits(v))
			h.Write(b8[:4])
		}
		if s.PaceMs > 0 {
			time.Sleep(time.Duration(s.PaceMs) * time.Millisecond)
		}
	}
	return h.Sum64(), nil
}

// volTaskSpecs lays the vol workload out as the standard two-task
// workflow: producer ranks first, consumer ranks after, the same world
// shape the digest workload uses. report sees every rank's error; digest
// sees each consumer's result.
func (s Spec) volTaskSpecs(report func(error), digest func(ci int, d uint64)) []mpi.TaskSpec {
	return []mpi.TaskSpec{
		{Name: "producer", Procs: s.Producers, Main: func(p *mpi.Proc) {
			report(s.volProducer(p))
		}},
		{Name: "consumer", Procs: s.Consumers, Main: func(p *mpi.Proc) {
			d, err := s.volConsumer(p)
			report(err)
			if err == nil {
				digest(p.Task.Rank(), d)
			}
		}},
	}
}

// RunChanVOL runs the vol workload in-proc over the chan engine and
// returns the per-consumer digests — the bit-identical reference a sock
// run under wire faults must reproduce.
func RunChanVOL(s Spec) ([]uint64, error) {
	digests := make([]uint64, s.Consumers)
	var mu sync.Mutex
	var firstErr error
	err := mpi.RunWorkflow(s.volTaskSpecs(
		func(err error) {
			if err == nil {
				return
			}
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		},
		func(ci int, d uint64) {
			mu.Lock()
			digests[ci] = d
			mu.Unlock()
		},
	))
	if err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return digests, nil
}
