package rankmain

import (
	"sync"
	"testing"

	"lowfive/internal/transport"
)

func testSpec() Spec {
	return Spec{Producers: 2, Consumers: 2, Epochs: 4, SliceBytes: 512, Seed: 42}
}

func TestRunChanDeterministic(t *testing.T) {
	s := testSpec()
	a, err := RunChan(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChan(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != s.Consumers {
		t.Fatalf("got %d digests, want %d", len(a), s.Consumers)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("consumer %d digest drifted between runs: %x vs %x", i, a[i], b[i])
		}
		if a[i] == 0 {
			t.Fatalf("consumer %d digest is zero", i)
		}
	}
	if a[0] == a[1] {
		t.Fatal("different consumers produced the same digest (payloads not consumer-specific)")
	}
}

// TestSockMatchesChan runs the workload over a real sock world (one
// endpoint per rank, Unix sockets, all in this process) and asserts the
// consumer digests are bit-identical to the in-proc reference.
func TestSockMatchesChan(t *testing.T) {
	s := testSpec()
	ref, err := RunChan(s)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := transport.NewCoordinator("unix", t.TempDir()+"/coord.sock", s.WorldSize())
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	digests := make([]uint64, s.WorldSize())
	errs := make([]error, s.WorldSize())
	var wg sync.WaitGroup
	for r := 0; r < s.WorldSize(); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			digests[r], _, errs[r] = RunSockRank(s, "unix", coord.Addr(), r, 0)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for ci := 0; ci < s.Consumers; ci++ {
		got := digests[s.Producers+ci]
		if got != ref[ci] {
			t.Fatalf("consumer %d: sock digest %x != chan digest %x", ci, got, ref[ci])
		}
	}
}

// TestSockVOLMatchesChan runs the distributed-VOL workload over a real
// sock world and asserts consumer digests match the in-proc reference:
// the full metadata exchange is transport-transparent.
func TestSockVOLMatchesChan(t *testing.T) {
	s := Spec{Producers: 2, Consumers: 2, Epochs: 2, Seed: 42,
		Workload: "vol", GridPoints: 512, Particles: 128}
	ref, err := RunChanVOL(s)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := transport.NewCoordinator("unix", t.TempDir()+"/coord.sock", s.WorldSize())
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	digests := make([]uint64, s.WorldSize())
	errs := make([]error, s.WorldSize())
	var wg sync.WaitGroup
	for r := 0; r < s.WorldSize(); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			digests[r], _, errs[r] = RunSockRank(s, "unix", coord.Addr(), r, 0)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for ci := 0; ci < s.Consumers; ci++ {
		got := digests[s.Producers+ci]
		if got != ref[ci] {
			t.Fatalf("consumer %d: sock vol digest %x != chan digest %x", ci, got, ref[ci])
		}
		if got == 0 {
			t.Fatalf("consumer %d: zero digest", ci)
		}
	}
}

func TestSockStatsLineRoundTrip(t *testing.T) {
	st := transport.SockStats{Reconnects: 3, Redials: 7, ResentFrames: 42}
	line := FormatSockStats(2, st)
	rank, got, ok := ParseSockStats(line)
	if !ok || rank != 2 || got.Reconnects != 3 || got.Redials != 7 || got.ResentFrames != 42 {
		t.Fatalf("parsed (%d, %+v, %v) from %q", rank, got, ok, line)
	}
	if _, _, ok := ParseSockStats("LOWFIVE_DIGEST rank=1 digest=0abc"); ok {
		t.Fatal("parsed stats from a digest line")
	}
}

func TestDigestLineRoundTrip(t *testing.T) {
	line := FormatDigest(3, 0xdeadbeef12345678)
	rank, d, ok := ParseDigest(line)
	if !ok || rank != 3 || d != 0xdeadbeef12345678 {
		t.Fatalf("parsed (%d, %x, %v) from %q", rank, d, ok, line)
	}
	if _, _, ok := ParseDigest("unrelated output"); ok {
		t.Fatal("parsed a digest from noise")
	}
}
