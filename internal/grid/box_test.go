package grid

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewBoxAndCounts(t *testing.T) {
	b := NewBox([]int64{2, 3}, []int64{4, 5})
	if b.IsEmpty() {
		t.Fatal("box should not be empty")
	}
	if got := b.NumPoints(); got != 20 {
		t.Errorf("NumPoints=%d", got)
	}
	if !reflect.DeepEqual(b.Count(), []int64{4, 5}) {
		t.Errorf("Count=%v", b.Count())
	}
	if b.Min[0] != 2 || b.Max[0] != 5 || b.Min[1] != 3 || b.Max[1] != 7 {
		t.Errorf("bounds %v", b)
	}
}

func TestEmptyBoxes(t *testing.T) {
	if !(Box{}).IsEmpty() {
		t.Error("zero box should be empty")
	}
	b := NewBox([]int64{0}, []int64{0})
	if !b.IsEmpty() || b.NumPoints() != 0 {
		t.Error("zero-count box should be empty")
	}
	a := NewBox([]int64{0, 0}, []int64{2, 2})
	c := NewBox([]int64{5, 5}, []int64{2, 2})
	if a.Intersects(c) {
		t.Error("disjoint boxes should not intersect")
	}
	if !a.Intersect(c).IsEmpty() {
		t.Error("intersection of disjoint boxes should be empty")
	}
}

func TestIntersect(t *testing.T) {
	a := NewBox([]int64{0, 0}, []int64{4, 4})
	b := NewBox([]int64{2, 2}, []int64{4, 4})
	got := a.Intersect(b)
	want := NewBox([]int64{2, 2}, []int64{2, 2})
	if !got.Equal(want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestContains(t *testing.T) {
	b := NewBox([]int64{1, 1, 1}, []int64{2, 2, 2})
	if !b.Contains([]int64{2, 2, 2}) {
		t.Error("interior point")
	}
	if b.Contains([]int64{0, 1, 1}) || b.Contains([]int64{1, 3, 1}) {
		t.Error("exterior point")
	}
}

func TestBoundingBox(t *testing.T) {
	bb := BoundingBox([]Box{
		NewBox([]int64{5, 0}, []int64{1, 1}),
		NewBox([]int64{0, 7}, []int64{2, 1}),
		{Min: []int64{9, 9}, Max: []int64{0, 0}}, // empty, ignored
	})
	want := Box{Min: []int64{0, 0}, Max: []int64{5, 7}}
	if !bb.Equal(want) {
		t.Errorf("got %v want %v", bb, want)
	}
}

func TestLinearIndexRoundTrip(t *testing.T) {
	dims := []int64{3, 4, 5}
	for i := int64(0); i < 60; i++ {
		pt := Coords(dims, i)
		if got := LinearIndex(dims, pt); got != i {
			t.Fatalf("roundtrip %d -> %v -> %d", i, pt, got)
		}
	}
}

func TestRunsSimple2D(t *testing.T) {
	dims := []int64{4, 6}
	b := NewBox([]int64{1, 2}, []int64{2, 3})
	var runs [][2]int64
	b.Runs(dims, func(off, n int64) { runs = append(runs, [2]int64{off, n}) })
	want := [][2]int64{{8, 3}, {14, 3}}
	if !reflect.DeepEqual(runs, want) {
		t.Errorf("runs=%v want %v", runs, want)
	}
}

func TestRunsCoalesceFullRows(t *testing.T) {
	dims := []int64{4, 6}
	// Box spans the full second dimension -> rows coalesce into one run.
	b := NewBox([]int64{1, 0}, []int64{2, 6})
	var runs [][2]int64
	b.Runs(dims, func(off, n int64) { runs = append(runs, [2]int64{off, n}) })
	want := [][2]int64{{6, 12}}
	if !reflect.DeepEqual(runs, want) {
		t.Errorf("runs=%v want %v", runs, want)
	}
}

func TestRunsWholeExtentSingleRun(t *testing.T) {
	dims := []int64{3, 4, 5}
	b := WholeExtent(dims)
	var runs [][2]int64
	b.Runs(dims, func(off, n int64) { runs = append(runs, [2]int64{off, n}) })
	if len(runs) != 1 || runs[0] != [2]int64{0, 60} {
		t.Errorf("runs=%v", runs)
	}
}

func TestRuns1D(t *testing.T) {
	dims := []int64{10}
	b := NewBox([]int64{3}, []int64{4})
	var runs [][2]int64
	b.Runs(dims, func(off, n int64) { runs = append(runs, [2]int64{off, n}) })
	if len(runs) != 1 || runs[0] != [2]int64{3, 4} {
		t.Errorf("runs=%v", runs)
	}
}

func TestRuns3DPartial(t *testing.T) {
	dims := []int64{2, 3, 4}
	b := NewBox([]int64{0, 1, 1}, []int64{2, 2, 2})
	seen := map[int64]bool{}
	total := int64(0)
	b.Runs(dims, func(off, n int64) {
		total += n
		for i := off; i < off+n; i++ {
			if seen[i] {
				t.Fatalf("index %d covered twice", i)
			}
			seen[i] = true
		}
	})
	if total != b.NumPoints() {
		t.Errorf("covered %d points want %d", total, b.NumPoints())
	}
	// Every covered linear index must correspond to a point in the box.
	for i := range seen {
		if !b.Contains(Coords(dims, i)) {
			t.Errorf("index %d (%v) outside the box", i, Coords(dims, i))
		}
	}
}

// randomBoxInExtent builds a random non-empty box inside dims.
func randomBoxInExtent(r *rand.Rand, dims []int64) Box {
	start := make([]int64, len(dims))
	count := make([]int64, len(dims))
	for d := range dims {
		start[d] = r.Int63n(dims[d])
		count[d] = 1 + r.Int63n(dims[d]-start[d])
	}
	return NewBox(start, count)
}

func randomDims(r *rand.Rand, maxDim int) []int64 {
	d := 1 + r.Intn(3)
	dims := make([]int64, d)
	for i := range dims {
		dims[i] = 1 + r.Int63n(int64(maxDim))
	}
	return dims
}

func TestRunsPropertyCoverExactly(t *testing.T) {
	// Property: Runs covers exactly the box's points, once each.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dims := randomDims(r, 9)
		b := randomBoxInExtent(r, dims)
		covered := map[int64]bool{}
		b.Runs(dims, func(off, n int64) {
			for i := off; i < off+n; i++ {
				if covered[i] {
					t.Logf("dims=%v box=%v: duplicate %d", dims, b, i)
					return
				}
				covered[i] = true
			}
		})
		if int64(len(covered)) != b.NumPoints() {
			t.Logf("dims=%v box=%v: covered %d want %d", dims, b, len(covered), b.NumPoints())
			return false
		}
		for i := range covered {
			if !b.Contains(Coords(dims, i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIntersectPropertyCommutesAndBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dims := randomDims(r, 12)
		a := randomBoxInExtent(r, dims)
		b := randomBoxInExtent(r, dims)
		ab := a.Intersect(b)
		ba := b.Intersect(a)
		if !ab.Equal(ba) {
			return false
		}
		if ab.IsEmpty() {
			return true
		}
		// Intersection is contained in both.
		return a.Intersect(ab).Equal(ab) && b.Intersect(ab).Equal(ab) &&
			ab.NumPoints() <= a.NumPoints() && ab.NumPoints() <= b.NumPoints()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
