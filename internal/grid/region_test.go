package grid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func fillPattern(b Box, elemSize int) []byte {
	buf := make([]byte, b.NumPoints()*int64(elemSize))
	for i := range buf {
		buf[i] = byte(i * 31)
	}
	return buf
}

func TestLocalIndex(t *testing.T) {
	b := NewBox([]int64{2, 3}, []int64{4, 5})
	if got := LocalIndex(b, []int64{2, 3}); got != 0 {
		t.Errorf("origin index %d", got)
	}
	if got := LocalIndex(b, []int64{3, 4}); got != 6 {
		t.Errorf("(3,4) index %d want 6", got)
	}
	if got := LocalIndex(b, []int64{5, 7}); got != 19 {
		t.Errorf("last index %d want 19", got)
	}
}

func TestCopyRegionIdentity(t *testing.T) {
	b := NewBox([]int64{0, 0}, []int64{3, 4})
	src := fillPattern(b, 2)
	dst := make([]byte, len(src))
	CopyRegion(dst, b, src, b, b, 2)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("byte %d: %d != %d", i, dst[i], src[i])
		}
	}
}

func TestCopyRegionSubBox(t *testing.T) {
	srcBox := NewBox([]int64{0, 0}, []int64{4, 4})
	dstBox := NewBox([]int64{1, 1}, []int64{2, 2})
	src := make([]byte, srcBox.NumPoints())
	for i := range src {
		src[i] = byte(i)
	}
	dst := make([]byte, dstBox.NumPoints())
	CopyRegion(dst, dstBox, src, srcBox, dstBox, 1)
	// dstBox covers points (1,1),(1,2),(2,1),(2,2) = linear 5,6,9,10 in src.
	want := []byte{5, 6, 9, 10}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("dst[%d]=%d want %d", i, dst[i], want[i])
		}
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dims := randomDims(r, 8)
		whole := WholeExtent(dims)
		region := randomBoxInExtent(r, dims)
		elem := 1 + r.Intn(8)
		src := make([]byte, whole.NumPoints()*int64(elem))
		r.Read(src)
		gathered := GatherRegion(nil, src, whole, region, elem)
		if int64(len(gathered)) != region.NumPoints()*int64(elem) {
			return false
		}
		dst := make([]byte, len(src))
		n := ScatterRegion(dst, whole, gathered, region, elem)
		if n != int64(len(gathered)) {
			return false
		}
		// Every point in region must match src; everything else must be zero.
		ok := true
		region.Runs(dims, func(off, cnt int64) {
			for i := off * int64(elem); i < (off+cnt)*int64(elem); i++ {
				if dst[i] != src[i] {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSubtractDisjoint(t *testing.T) {
	a := NewBox([]int64{0, 0}, []int64{2, 2})
	b := NewBox([]int64{5, 5}, []int64{2, 2})
	out := Subtract(a, b)
	if len(out) != 1 || !out[0].Equal(a) {
		t.Errorf("got %v", out)
	}
}

func TestSubtractFullCover(t *testing.T) {
	a := NewBox([]int64{1, 1}, []int64{2, 2})
	b := NewBox([]int64{0, 0}, []int64{5, 5})
	if out := Subtract(a, b); len(out) != 0 {
		t.Errorf("got %v", out)
	}
}

func TestSubtractProperty(t *testing.T) {
	// Property: Subtract(a,b) pieces are disjoint, contained in a, disjoint
	// from b, and together with a∩b cover a exactly (by point count).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dims := randomDims(r, 10)
		a := randomBoxInExtent(r, dims)
		b := randomBoxInExtent(r, dims)
		pieces := Subtract(a, b)
		total := a.Intersect(b).NumPoints()
		for i, p := range pieces {
			if p.IsEmpty() {
				return false
			}
			if !a.Intersect(p).Equal(p) {
				return false // not contained in a
			}
			if p.Intersects(b) {
				return false
			}
			for j := i + 1; j < len(pieces); j++ {
				if p.Intersects(pieces[j]) {
					return false
				}
			}
			total += p.NumPoints()
		}
		return total == a.NumPoints()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
