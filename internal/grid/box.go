// Package grid provides the N-dimensional box arithmetic and block
// decomposition that LowFive's data redistribution is built on: axis-aligned
// boxes with intersection, bounding boxes, contiguous-run iteration in
// row-major order, and the "common decomposition" of a dataset extent into
// one block per producer process (paper §III-B, Figure 4).
//
// It plays the role the DIY block-parallel library plays in the original
// implementation.
package grid

import "fmt"

// Box is an axis-aligned box with inclusive bounds. A box is empty if
// Max[d] < Min[d] in any dimension.
type Box struct {
	Min, Max []int64
}

// NewBox builds a box from a start coordinate and per-dimension counts
// (HDF5 hyperslab style). Counts of zero produce an empty box.
func NewBox(start, count []int64) Box {
	if len(start) != len(count) {
		panic("grid: start/count dimension mismatch")
	}
	b := Box{Min: make([]int64, len(start)), Max: make([]int64, len(start))}
	for d := range start {
		b.Min[d] = start[d]
		b.Max[d] = start[d] + count[d] - 1
	}
	return b
}

// WholeExtent returns the box covering an entire extent of the given dims.
func WholeExtent(dims []int64) Box {
	start := make([]int64, len(dims))
	return NewBox(start, dims)
}

// Dim returns the dimensionality.
func (b Box) Dim() int { return len(b.Min) }

// IsEmpty reports whether the box contains no points.
func (b Box) IsEmpty() bool {
	if len(b.Min) == 0 {
		return true
	}
	for d := range b.Min {
		if b.Max[d] < b.Min[d] {
			return true
		}
	}
	return false
}

// NumPoints returns the number of lattice points in the box.
func (b Box) NumPoints() int64 {
	if b.IsEmpty() {
		return 0
	}
	n := int64(1)
	for d := range b.Min {
		n *= b.Max[d] - b.Min[d] + 1
	}
	return n
}

// Count returns the per-dimension point counts.
func (b Box) Count() []int64 {
	c := make([]int64, b.Dim())
	for d := range c {
		c[d] = b.Max[d] - b.Min[d] + 1
		if c[d] < 0 {
			c[d] = 0
		}
	}
	return c
}

// Clone deep-copies the box.
func (b Box) Clone() Box {
	return Box{Min: append([]int64(nil), b.Min...), Max: append([]int64(nil), b.Max...)}
}

// Equal reports exact equality of bounds.
func (b Box) Equal(o Box) bool {
	if b.Dim() != o.Dim() {
		return false
	}
	for d := range b.Min {
		if b.Min[d] != o.Min[d] || b.Max[d] != o.Max[d] {
			return false
		}
	}
	return true
}

// Contains reports whether the point lies inside the box.
func (b Box) Contains(pt []int64) bool {
	for d := range b.Min {
		if pt[d] < b.Min[d] || pt[d] > b.Max[d] {
			return false
		}
	}
	return true
}

// Intersect returns the intersection of two boxes (possibly empty).
func (b Box) Intersect(o Box) Box {
	if b.Dim() != o.Dim() {
		panic("grid: intersecting boxes of different dimension")
	}
	out := Box{Min: make([]int64, b.Dim()), Max: make([]int64, b.Dim())}
	for d := range b.Min {
		out.Min[d] = max64(b.Min[d], o.Min[d])
		out.Max[d] = min64(b.Max[d], o.Max[d])
	}
	return out
}

// Intersects reports whether the two boxes share at least one point.
func (b Box) Intersects(o Box) bool { return !b.Intersect(o).IsEmpty() }

// String renders the box as [min..max] per dimension.
func (b Box) String() string {
	s := "["
	for d := range b.Min {
		if d > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d..%d", b.Min[d], b.Max[d])
	}
	return s + "]"
}

// BoundingBox returns the smallest box containing all the given boxes.
// Empty boxes are ignored; if all are empty (or none given), an empty
// zero-dimensional box is returned.
func BoundingBox(boxes []Box) Box {
	var out Box
	first := true
	for _, b := range boxes {
		if b.IsEmpty() {
			continue
		}
		if first {
			out = b.Clone()
			first = false
			continue
		}
		for d := range out.Min {
			out.Min[d] = min64(out.Min[d], b.Min[d])
			out.Max[d] = max64(out.Max[d], b.Max[d])
		}
	}
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// LinearIndex returns the row-major linear index of pt within an extent of
// the given dims.
func LinearIndex(dims, pt []int64) int64 {
	idx := int64(0)
	for d := range dims {
		idx = idx*dims[d] + pt[d]
	}
	return idx
}

// Coords inverts LinearIndex.
func Coords(dims []int64, idx int64) []int64 {
	pt := make([]int64, len(dims))
	for d := len(dims) - 1; d >= 0; d-- {
		pt[d] = idx % dims[d]
		idx /= dims[d]
	}
	return pt
}

// Runs calls fn once per maximal contiguous row-major run of the box inside
// an extent of the given dims, with the run's starting linear index and
// length. Adjacent rows that happen to be contiguous in memory (because the
// box spans the full extent of the trailing dimensions) are coalesced into a
// single run — this coalescing is the serialization optimization the paper
// credits for LowFive beating the hand-written MPI code at small scale.
func (b Box) Runs(dims []int64, fn func(offset, length int64)) {
	if b.IsEmpty() {
		return
	}
	d := b.Dim()
	if d != len(dims) {
		panic("grid: box/extent dimension mismatch")
	}
	// Find how many trailing dimensions the box spans completely; runs can
	// be coalesced across those.
	full := 0
	for k := d - 1; k >= 0; k-- {
		if b.Min[k] == 0 && b.Max[k] == dims[k]-1 {
			full++
		} else {
			break
		}
	}
	// Run length: the innermost non-full dimension's extent in the box times
	// the product of the full trailing extents.
	runLen := int64(1)
	for k := d - full; k < d; k++ {
		runLen *= dims[k]
	}
	lead := d - full // dimensions we iterate over, the innermost of which contributes a contiguous segment
	if lead > 0 {
		runLen *= b.Max[lead-1] - b.Min[lead-1] + 1
	}
	if lead <= 1 {
		// Entire box is a single contiguous run.
		pt := append([]int64(nil), b.Min...)
		fn(LinearIndex(dims, pt), runLen)
		return
	}
	// Iterate over the leading lead-1 dimensions.
	pt := append([]int64(nil), b.Min...)
	for {
		fn(LinearIndex(dims, pt), runLen)
		// Increment pt over dims [0, lead-1), odometer-style.
		k := lead - 2
		for k >= 0 {
			pt[k]++
			if pt[k] <= b.Max[k] {
				break
			}
			pt[k] = b.Min[k]
			k--
		}
		if k < 0 {
			return
		}
	}
}
