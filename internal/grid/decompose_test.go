package grid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFactorBalanced(t *testing.T) {
	cases := []struct {
		n, d int
		want []int64
	}{
		{6, 2, []int64{3, 2}},
		{12, 2, []int64{4, 3}},
		{12, 3, []int64{3, 2, 2}},
		{8, 3, []int64{2, 2, 2}},
		{7, 2, []int64{7, 1}},
		{1, 3, []int64{1, 1, 1}},
		{64, 3, []int64{4, 4, 4}},
		{48, 3, []int64{4, 4, 3}},
		{1024, 2, []int64{32, 32}},
	}
	for _, c := range cases {
		got := FactorBalanced(c.n, c.d)
		prod := int64(1)
		for _, f := range got {
			prod *= f
		}
		if prod != int64(c.n) {
			t.Errorf("FactorBalanced(%d,%d)=%v: product %d", c.n, c.d, got, prod)
		}
		for i, f := range got {
			if c.want[i] != f {
				t.Errorf("FactorBalanced(%d,%d)=%v want %v", c.n, c.d, got, c.want)
				break
			}
		}
	}
}

func TestFactorBalancedProductProperty(t *testing.T) {
	f := func(n0, d0 uint8) bool {
		n := int(n0)%500 + 1
		d := int(d0)%4 + 1
		factors := FactorBalanced(n, d)
		prod := int64(1)
		for _, f := range factors {
			if f < 1 {
				return false
			}
			prod *= f
		}
		return prod == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCommonDecompositionPartitions(t *testing.T) {
	dims := []int64{8, 12}
	dc := CommonDecomposition(dims, 6)
	if dc.NumBlocks() != 6 {
		t.Fatalf("NumBlocks=%d", dc.NumBlocks())
	}
	covered := map[int64]bool{}
	for i := 0; i < dc.NumBlocks(); i++ {
		b := dc.Block(i)
		b.Runs(dims, func(off, n int64) {
			for k := off; k < off+n; k++ {
				if covered[k] {
					t.Fatalf("block %d re-covers index %d", i, k)
				}
				covered[k] = true
			}
		})
	}
	if int64(len(covered)) != 8*12 {
		t.Errorf("covered %d of %d points", len(covered), 8*12)
	}
}

func TestCommonDecompositionLargerFactorOnLargerDim(t *testing.T) {
	dc := CommonDecomposition([]int64{4, 100}, 8)
	// 8 = 4*2; the larger factor must go to the length-100 dimension.
	if dc.Blocks[1] < dc.Blocks[0] {
		t.Errorf("blocks=%v: larger factor should be on the larger dimension", dc.Blocks)
	}
}

func TestCommonDecompositionDeterministic(t *testing.T) {
	a := CommonDecomposition([]int64{64, 64, 64}, 48)
	b := CommonDecomposition([]int64{64, 64, 64}, 48)
	for d := range a.Blocks {
		if a.Blocks[d] != b.Blocks[d] {
			t.Fatalf("nondeterministic decomposition: %v vs %v", a.Blocks, b.Blocks)
		}
	}
}

func TestIntersectingMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dims := randomDims(r, 20)
		n := 1 + r.Intn(16)
		dc := CommonDecomposition(dims, n)
		q := randomBoxInExtent(r, dims)
		got := map[int]bool{}
		for _, i := range dc.Intersecting(q) {
			got[i] = true
		}
		for i := 0; i < dc.NumBlocks(); i++ {
			want := dc.Block(i).Intersects(q)
			if got[i] != want {
				t.Logf("dims=%v n=%d q=%v block %d (%v): got %v want %v",
					dims, n, q, i, dc.Block(i), got[i], want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestDecompositionPartitionProperty(t *testing.T) {
	// Property: for random dims and n, blocks partition the extent exactly.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dims := randomDims(r, 10)
		n := 1 + r.Intn(12)
		dc := CommonDecomposition(dims, n)
		total := int64(0)
		for i := 0; i < dc.NumBlocks(); i++ {
			total += dc.Block(i).NumPoints()
		}
		want := int64(1)
		for _, d := range dims {
			want *= d
		}
		return total == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
