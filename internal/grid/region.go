package grid

// LocalIndex returns the row-major linear index of pt within the local
// extent of box b (i.e. treating b.Min as the origin).
func LocalIndex(b Box, pt []int64) int64 {
	idx := int64(0)
	for d := range b.Min {
		idx = idx*(b.Max[d]-b.Min[d]+1) + (pt[d] - b.Min[d])
	}
	return idx
}

// CopyRegion copies the lattice points of region from src to dst, where src
// holds srcBox in row-major order and dst holds dstBox in row-major order,
// with elemSize bytes per point. region must be contained in both boxes.
// Rows of the region are copied as contiguous chunks.
func CopyRegion(dst []byte, dstBox Box, src []byte, srcBox Box, region Box, elemSize int) {
	if region.IsEmpty() {
		return
	}
	d := region.Dim()
	rowLen := region.Max[d-1] - region.Min[d-1] + 1
	pt := append([]int64(nil), region.Min...)
	for {
		so := LocalIndex(srcBox, pt) * int64(elemSize)
		do := LocalIndex(dstBox, pt) * int64(elemSize)
		copy(dst[do:do+rowLen*int64(elemSize)], src[so:so+rowLen*int64(elemSize)])
		// Odometer over all but the last dimension.
		k := d - 2
		for k >= 0 {
			pt[k]++
			if pt[k] <= region.Max[k] {
				break
			}
			pt[k] = region.Min[k]
			k--
		}
		if k < 0 {
			return
		}
	}
}

// GatherRegion appends the points of region (row-major) from src, which
// holds srcBox in row-major order, to out and returns the extended slice.
func GatherRegion(out []byte, src []byte, srcBox Box, region Box, elemSize int) []byte {
	if region.IsEmpty() {
		return out
	}
	d := region.Dim()
	rowBytes := (region.Max[d-1] - region.Min[d-1] + 1) * int64(elemSize)
	pt := append([]int64(nil), region.Min...)
	for {
		so := LocalIndex(srcBox, pt) * int64(elemSize)
		out = append(out, src[so:so+rowBytes]...)
		k := d - 2
		for k >= 0 {
			pt[k]++
			if pt[k] <= region.Max[k] {
				break
			}
			pt[k] = region.Min[k]
			k--
		}
		if k < 0 {
			return out
		}
	}
}

// ScatterRegion is the inverse of GatherRegion: it consumes len(region)
// points from data (row-major over region) and writes them into dst, which
// holds dstBox in row-major order. It returns the number of bytes consumed.
func ScatterRegion(dst []byte, dstBox Box, data []byte, region Box, elemSize int) int64 {
	if region.IsEmpty() {
		return 0
	}
	d := region.Dim()
	rowBytes := (region.Max[d-1] - region.Min[d-1] + 1) * int64(elemSize)
	pt := append([]int64(nil), region.Min...)
	consumed := int64(0)
	for {
		do := LocalIndex(dstBox, pt) * int64(elemSize)
		copy(dst[do:do+rowBytes], data[consumed:consumed+rowBytes])
		consumed += rowBytes
		k := d - 2
		for k >= 0 {
			pt[k]++
			if pt[k] <= region.Max[k] {
				break
			}
			pt[k] = region.Min[k]
			k--
		}
		if k < 0 {
			return consumed
		}
	}
}

// Subtract returns a minus b as a set of disjoint boxes. The result has at
// most 2*dim pieces (the standard axis-sweep decomposition).
func Subtract(a, b Box) []Box {
	inter := a.Intersect(b)
	if inter.IsEmpty() {
		if a.IsEmpty() {
			return nil
		}
		return []Box{a.Clone()}
	}
	var out []Box
	cur := a.Clone()
	for d := 0; d < a.Dim(); d++ {
		// Piece below the intersection along dimension d.
		if cur.Min[d] < inter.Min[d] {
			p := cur.Clone()
			p.Max[d] = inter.Min[d] - 1
			out = append(out, p)
		}
		// Piece above the intersection along dimension d.
		if cur.Max[d] > inter.Max[d] {
			p := cur.Clone()
			p.Min[d] = inter.Max[d] + 1
			out = append(out, p)
		}
		// Clamp cur to the intersection along d and continue.
		cur.Min[d] = inter.Min[d]
		cur.Max[d] = inter.Max[d]
	}
	return out
}
