package grid

import "sort"

// FactorBalanced factors n into d factors that are as close to each other as
// possible (paper §III-B: "The decomposition is found by factoring n into d
// factors n1,...,nd that are as close to each other as possible"). The
// product of the result is exactly n. Factors are returned unordered-by-size
// but deterministically; callers map them onto dimensions themselves.
func FactorBalanced(n, d int) []int64 {
	if n <= 0 || d <= 0 {
		panic("grid: FactorBalanced requires positive n and d")
	}
	factors := make([]int64, d)
	for i := range factors {
		factors[i] = 1
	}
	// Assign prime factors of n, largest first, to the currently smallest
	// factor slot (the classic MPI_Dims_create strategy).
	for _, p := range primeFactorsDesc(n) {
		smallest := 0
		for i := 1; i < d; i++ {
			if factors[i] < factors[smallest] {
				smallest = i
			}
		}
		factors[smallest] *= p
	}
	sort.Slice(factors, func(i, j int) bool { return factors[i] > factors[j] })
	return factors
}

// primeFactorsDesc returns the prime factorization of n in descending order.
func primeFactorsDesc(n int) []int64 {
	var f []int64
	m := int64(n)
	for p := int64(2); p*p <= m; p++ {
		for m%p == 0 {
			f = append(f, p)
			m /= p
		}
	}
	if m > 1 {
		f = append(f, m)
	}
	sort.Slice(f, func(i, j int) bool { return f[i] > f[j] })
	return f
}

// Decomposition is a regular block decomposition of an extent: the paper's
// "common decomposition" that producer and consumer implicitly agree on.
type Decomposition struct {
	// Dims is the extent being decomposed.
	Dims []int64
	// Blocks is the per-dimension block grid shape (n1, ..., nd).
	Blocks []int64
}

// CommonDecomposition cuts a dataset extent of the given dims into n blocks,
// one per producer process: factor n into len(dims) near-equal factors,
// assigning larger factors to larger extents so blocks stay close to cubic.
func CommonDecomposition(dims []int64, n int) Decomposition {
	d := len(dims)
	factors := FactorBalanced(n, d) // descending
	// Assign the largest factor to the largest dimension; ties broken by
	// dimension order for determinism.
	order := make([]int, d)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return dims[order[i]] > dims[order[j]] })
	blocks := make([]int64, d)
	for i, dim := range order {
		blocks[dim] = factors[i]
	}
	return Decomposition{Dims: append([]int64(nil), dims...), Blocks: blocks}
}

// NumBlocks returns the total number of blocks.
func (dc Decomposition) NumBlocks() int {
	n := int64(1)
	for _, b := range dc.Blocks {
		n *= b
	}
	return int(n)
}

// Block returns the bounds of block i (row-major order over the block grid).
// Blocks partition the extent; along a dimension of length L split into k
// blocks, block j spans [floor(j*L/k), floor((j+1)*L/k)-1], which may be
// empty when L < k.
func (dc Decomposition) Block(i int) Box {
	coords := Coords(dc.Blocks, int64(i))
	b := Box{Min: make([]int64, len(dc.Dims)), Max: make([]int64, len(dc.Dims))}
	for d := range dc.Dims {
		L, k, j := dc.Dims[d], dc.Blocks[d], coords[d]
		b.Min[d] = j * L / k
		b.Max[d] = (j+1)*L/k - 1
	}
	return b
}

// Intersecting returns the indices of all blocks whose bounds intersect the
// query box. It walks only the block-coordinate subrange covering the query
// rather than scanning all n blocks.
func (dc Decomposition) Intersecting(q Box) []int {
	if q.IsEmpty() {
		return nil
	}
	d := len(dc.Dims)
	lo := make([]int64, d)
	hi := make([]int64, d)
	for k := 0; k < d; k++ {
		L, nb := dc.Dims[k], dc.Blocks[k]
		qmin, qmax := q.Min[k], q.Max[k]
		if qmin < 0 {
			qmin = 0
		}
		if qmax > L-1 {
			qmax = L - 1
		}
		if qmin > qmax {
			return nil
		}
		// Block j spans [j*L/nb, (j+1)*L/nb-1]; invert: the block containing
		// coordinate x is floor(((x+1)*nb-1)/L) == largest j with j*L/nb <= x.
		lo[k] = blockOf(qmin, L, nb)
		hi[k] = blockOf(qmax, L, nb)
	}
	var out []int
	cur := append([]int64(nil), lo...)
	for {
		idx := LinearIndex(dc.Blocks, cur)
		// Guard against empty blocks at this coordinate (possible when L < nb).
		if dc.Block(int(idx)).Intersects(q) {
			out = append(out, int(idx))
		}
		k := d - 1
		for k >= 0 {
			cur[k]++
			if cur[k] <= hi[k] {
				break
			}
			cur[k] = lo[k]
			k--
		}
		if k < 0 {
			return out
		}
	}
}

// blockOf returns the index of the block containing coordinate x when an
// extent of length L is split into nb blocks with bounds [j*L/nb, (j+1)*L/nb-1].
func blockOf(x, L, nb int64) int64 {
	j := (x*nb + nb - 1) / L
	// Adjust for integer-rounding boundary cases.
	for j > 0 && j*L/nb > x {
		j--
	}
	for (j+1)*L/nb-1 < x {
		j++
	}
	return j
}
