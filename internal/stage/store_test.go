package stage

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"lowfive/internal/grid"
	"lowfive/metrics"
)

func box(min, max int64) grid.Box {
	return grid.Box{Min: []int64{min}, Max: []int64{max}}
}

// publishEpoch runs one full begin/append/commit cycle for a shard, with
// the chunk payload derived from the epoch so time-travel reads are
// distinguishable.
func publishEpoch(t *testing.T, st *Store, file string, rank int) int64 {
	t.Helper()
	epoch, err := st.Begin(file, rank, []byte("meta"))
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	data := bytes.Repeat([]byte{byte(epoch)}, 16)
	if err := st.Append(file, rank, epoch, "/grid", box(0, 15), data); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := st.Commit(file, rank, epoch); err != nil {
		t.Fatalf("commit: %v", err)
	}
	return epoch
}

func TestStoreCommitVisibility(t *testing.T) {
	st := NewStore(Options{})
	if _, n := st.CommittedEpoch("f"); n != 0 {
		t.Fatal("epoch visible before any publish")
	}
	e := publishEpoch(t, st, "f", 0)
	if e != 1 {
		t.Fatalf("first epoch %d", e)
	}
	got, n := st.CommittedEpoch("f")
	if got != 1 || n != 1 {
		t.Fatalf("committed %d over %d shards", got, n)
	}
	chunks, err := st.Chunks("f", 1, "/grid", grid.Box{})
	if err != nil || len(chunks) != 1 {
		t.Fatalf("chunks: %v (%d)", err, len(chunks))
	}
	if chunks[0].Data[0] != 1 {
		t.Fatal("wrong chunk payload")
	}
	if _, err := st.Meta("f", 1); err != nil {
		t.Fatalf("meta: %v", err)
	}
}

func TestStoreWaitCommitted(t *testing.T) {
	st := NewStore(Options{})
	go func() {
		time.Sleep(10 * time.Millisecond)
		publishEpoch(t, st, "f", 0)
		publishEpoch(t, st, "f", 1)
	}()
	e, err := st.WaitCommitted("f", 2, time.Second)
	if err != nil || e != 1 {
		t.Fatalf("wait: epoch %d, %v", e, err)
	}
	if _, err := st.WaitCommitted("other", 1, 20*time.Millisecond); !errors.Is(err, ErrWaitCommit) {
		t.Fatalf("want ErrWaitCommit, got %v", err)
	}
}

func TestStoreAcksMonotone(t *testing.T) {
	st := NewStore(Options{Replicas: 2})
	var prev uint64
	for e := 0; e < 3; e++ {
		publishEpoch(t, st, "f", 0)
		acks := st.Acked("f", 0)
		if len(acks) != 3 {
			t.Fatalf("replicas %d", len(acks))
		}
		for i, a := range acks {
			if a != acks[0] {
				t.Fatalf("replica %d ack %d diverges from leader %d", i, a, acks[0])
			}
		}
		if acks[0] <= prev {
			t.Fatalf("acks not monotone: %d after %d", acks[0], prev)
		}
		prev = acks[0]
	}
	// 3 epochs x (begin + chunk + commit).
	if prev != 9 {
		t.Fatalf("leader acked %d, want 9", prev)
	}
}

func TestStoreLeaderFailover(t *testing.T) {
	reg := metrics.NewRegistry()
	st := NewStore(Options{Replicas: 1, Metrics: reg})
	publishEpoch(t, st, "f", 0)
	if !st.FailLeader("f", 0) {
		t.Fatal("fail leader")
	}
	// Reads and subsequent appends continue from the promoted follower.
	chunks, err := st.Chunks("f", 1, "/grid", grid.Box{})
	if err != nil || len(chunks) != 1 {
		t.Fatalf("post-failover chunks: %v", err)
	}
	publishEpoch(t, st, "f", 0)
	if got, _ := st.CommittedEpoch("f"); got != 2 {
		t.Fatalf("epoch after failover %d", got)
	}
	s := st.Stats()
	if s.Failovers != 1 || s.DeadReplicas != 1 {
		t.Fatalf("stats %+v", s)
	}
	if reg.Counter("stage.failovers").Value() != 1 {
		t.Fatal("failover counter not bumped")
	}
	// Killing the last replica leaves the shard down.
	if !st.FailLeader("f", 0) {
		t.Fatal("fail second replica")
	}
	if _, err := st.Begin("f", 0, nil); !errors.Is(err, ErrShardDown) {
		t.Fatalf("want ErrShardDown, got %v", err)
	}
}

func TestStoreFollowerCrash(t *testing.T) {
	st := NewStore(Options{Replicas: 1})
	publishEpoch(t, st, "f", 0)
	if !st.FailFollower("f", 0) {
		t.Fatal("fail follower")
	}
	publishEpoch(t, st, "f", 0)
	if got, _ := st.CommittedEpoch("f"); got != 2 {
		t.Fatalf("epoch %d", got)
	}
	s := st.Stats()
	if s.DeadReplicas != 1 || s.Failovers != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestStoreCrashDuringCommitSupersedes(t *testing.T) {
	crash := true
	st := NewStore(Options{})
	st.opt.OnCommit = func(file string, rank int, epoch int64) {
		if crash {
			crash = false
			panic("injected crash during commit")
		}
	}
	if _, err := st.Begin("f", 0, []byte("m0")); err != nil {
		t.Fatal(err)
	}
	if err := st.Append("f", 0, 1, "/grid", box(0, 3), []byte{1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() { recover() }()
		st.Commit("f", 0, 1)
		t.Error("commit did not crash")
	}()
	// The torn epoch is invisible.
	if e, _ := st.CommittedEpoch("f"); e != 0 {
		t.Fatalf("torn epoch visible: %d", e)
	}
	// The restarted producer re-begins the same epoch, superseding the span.
	e2 := publishEpoch(t, st, "f", 0)
	if e2 != 1 {
		t.Fatalf("superseding epoch %d", e2)
	}
	chunks, err := st.Chunks("f", 1, "/grid", grid.Box{})
	if err != nil || len(chunks) != 1 {
		t.Fatalf("chunks: %v (%d)", err, len(chunks))
	}
	if chunks[0].Data[0] != 1 || len(chunks[0].Data) != 16 {
		t.Fatal("read torn span instead of superseding one")
	}
	if st.Stats().SupersededEpochs != 1 {
		t.Fatalf("superseded %d", st.Stats().SupersededEpochs)
	}
}

func TestStoreReplayIsDelta(t *testing.T) {
	reg := metrics.NewRegistry()
	st := NewStore(Options{Metrics: reg})
	for i := 0; i < 5; i++ {
		publishEpoch(t, st, "f", 0)
	}
	rd, err := st.Replay("f", 0)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Epoch != 5 || len(rd.Chunks) != 1 || !bytes.Equal(rd.Meta, []byte("meta")) {
		t.Fatalf("replay %+v", rd)
	}
	// Replay scanned one span (begin + chunk + commit), not the whole log.
	if rd.Records != 3 {
		t.Fatalf("replay scanned %d records", rd.Records)
	}
	if total := st.Stats().Appends; int64(rd.Records)*3 > total {
		t.Fatalf("replay %d not a delta of %d", rd.Records, total)
	}
	if reg.Histogram("stage.replay.latency_us").Snapshot().Count != 1 {
		t.Fatal("replay latency not observed")
	}
}

// --- GC watermark edges (satellite: ack regression, retention floor,
// time-travel of the oldest retained epoch) ---

func TestGCAckRegressionRejected(t *testing.T) {
	st := NewStore(Options{})
	publishEpoch(t, st, "f", 0)
	st.Subscribe("f", "c0")
	if err := st.Ack("f", "c0", 3); err != nil {
		t.Fatal(err)
	}
	err := st.Ack("f", "c0", 2)
	if !errors.Is(err, ErrAckRegression) {
		t.Fatalf("want ErrAckRegression, got %v", err)
	}
	if st.Watermark("f") != 3 {
		t.Fatal("regression moved the watermark")
	}
}

func TestGCRetainsEpochWhileSubscriberBelow(t *testing.T) {
	st := NewStore(Options{})
	for i := 0; i < 3; i++ {
		publishEpoch(t, st, "f", 0)
	}
	st.Subscribe("f", "fast")
	st.Subscribe("f", "slow")
	if err := st.Ack("f", "fast", 2); err != nil {
		t.Fatal(err)
	}
	if err := st.Ack("f", "slow", 1); err != nil {
		t.Fatal(err)
	}
	if wm := st.Watermark("f"); wm != 1 {
		t.Fatalf("watermark %d", wm)
	}
	if n := st.GC("f"); n == 0 {
		t.Fatal("GC dropped nothing")
	}
	// Epoch 2 is pinned by the slow subscriber even though fast acked it.
	if _, err := st.Chunks("f", 2, "/grid", grid.Box{}); err != nil {
		t.Fatalf("epoch 2 not retained: %v", err)
	}
	if _, err := st.Chunks("f", 1, "/grid", grid.Box{}); !errors.Is(err, ErrEpochTruncated) {
		t.Fatalf("epoch 1 not truncated: %v", err)
	}
}

func TestGCTimeTravelOldestRetained(t *testing.T) {
	st := NewStore(Options{AutoGC: true})
	for i := 0; i < 4; i++ {
		publishEpoch(t, st, "f", 0)
	}
	st.Subscribe("f", "c0")
	if err := st.Ack("f", "c0", 2); err != nil {
		t.Fatal(err)
	}
	// AutoGC ran inside Ack; epochs 1-2 are gone, 3 is the oldest retained.
	for e := int64(1); e <= 2; e++ {
		if _, err := st.Chunks("f", e, "/grid", grid.Box{}); !errors.Is(err, ErrEpochTruncated) {
			t.Fatalf("epoch %d: %v", e, err)
		}
	}
	for e := int64(3); e <= 4; e++ {
		chunks, err := st.Chunks("f", e, "/grid", grid.Box{})
		if err != nil || len(chunks) != 1 {
			t.Fatalf("time-travel to %d: %v", e, err)
		}
		if chunks[0].Data[0] != byte(e) {
			t.Fatalf("epoch %d returned epoch-%d data", e, chunks[0].Data[0])
		}
		if _, err := st.Meta("f", e); err != nil {
			t.Fatalf("meta at %d: %v", e, err)
		}
	}
	// Replay after total truncation reports ErrEpochTruncated so the
	// caller falls back to the PFS container.
	if err := st.Ack("f", "c0", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Replay("f", 0); !errors.Is(err, ErrEpochTruncated) {
		t.Fatalf("replay of truncated shard: %v", err)
	}
	if st.Stats().TruncatedEpochs != 4 {
		t.Fatalf("truncated epochs %d", st.Stats().TruncatedEpochs)
	}
}

func TestGCKeepsUncommittedTail(t *testing.T) {
	st := NewStore(Options{})
	publishEpoch(t, st, "f", 0)
	// An open epoch's records must survive GC of everything acked.
	if _, err := st.Begin("f", 0, []byte("m2")); err != nil {
		t.Fatal(err)
	}
	if err := st.Append("f", 0, 2, "/grid", box(0, 3), []byte{2, 2, 2, 2}); err != nil {
		t.Fatal(err)
	}
	st.Subscribe("f", "c0")
	if err := st.Ack("f", "c0", 1); err != nil {
		t.Fatal(err)
	}
	st.GC("f")
	if err := st.Commit("f", 0, 2); err != nil {
		t.Fatalf("commit after GC: %v", err)
	}
	chunks, err := st.Chunks("f", 2, "/grid", grid.Box{})
	if err != nil || len(chunks) != 1 || chunks[0].Data[0] != 2 {
		t.Fatalf("open-epoch tail lost: %v", err)
	}
}

func TestWatermarkLagGauge(t *testing.T) {
	reg := metrics.NewRegistry()
	st := NewStore(Options{Metrics: reg})
	publishEpoch(t, st, "f", 0)
	publishEpoch(t, st, "f", 0)
	st.Subscribe("f", "c0")
	if err := st.Ack("f", "c0", 1); err != nil {
		t.Fatal(err)
	}
	for _, s := range reg.Snapshot() {
		if s.Name == "stage.watermark.lag" {
			if s.Value != 1 {
				t.Fatalf("lag %d, want 1", s.Value)
			}
			return
		}
	}
	t.Fatal("stage.watermark.lag not registered")
}
