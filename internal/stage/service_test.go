package stage

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"lowfive/internal/grid"
	"lowfive/internal/rpc"
	"lowfive/mpi"
)

// TestServiceAppendAckFetch drives the full wire protocol over a real
// intercommunicator: a producer rank appends an epoch record by record,
// observing monotonically-sequenced acks; a consumer acks its subscription
// and catches up via fetch-range, re-verifying every frame CRC.
func TestServiceAppendAckFetch(t *testing.T) {
	st := NewStore(Options{})
	served := 0
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "producer", Procs: 1, Main: func(p *mpi.Proc) {
			c := &Client{RPC: &rpc.Client{IC: p.Intercomm("staging"), Timeout: 2 * time.Second, Retries: 3, Method: func([]byte) string { return "stage" }}}
			epoch, ack, err := c.Append(0, "f", &Record{Type: RecEpochBegin, Rank: 0, Meta: []byte("meta")})
			if err != nil || epoch != 1 || ack != 1 {
				t.Errorf("begin: epoch=%d ack=%d err=%v", epoch, ack, err)
			}
			data := bytes.Repeat([]byte{7}, 8)
			_, ack, err = c.Append(0, "f", &Record{Type: RecChunk, Epoch: 1, Rank: 0, Dataset: "/grid",
				Box: grid.Box{Min: []int64{0}, Max: []int64{7}}, Data: data})
			if err != nil || ack != 2 {
				t.Errorf("chunk: ack=%d err=%v", ack, err)
			}
			_, ack, err = c.Append(0, "f", &Record{Type: RecEpochCommit, Epoch: 1, Rank: 0, Chunks: 1})
			if err != nil || ack != 3 {
				t.Errorf("commit: ack=%d err=%v", ack, err)
			}

			wm, err := c.AckEpoch(0, "f", "consumer/0", 1)
			if err != nil || wm != 1 {
				t.Errorf("ack: wm=%d err=%v", wm, err)
			}
			if _, err := c.AckEpoch(0, "f", "consumer/0", 0); !errors.Is(err, ErrAckRegression) {
				t.Errorf("regression over the wire: %v", err)
			}

			recs, err := c.FetchRange(0, "f", 0, 0, 0)
			if err != nil || len(recs) != 3 {
				t.Errorf("fetch: %d recs, %v", len(recs), err)
			} else {
				if recs[0].Type != RecEpochBegin || recs[1].Type != RecChunk || recs[2].Type != RecEpochCommit {
					t.Errorf("fetch order: %d %d %d", recs[0].Type, recs[1].Type, recs[2].Type)
				}
				if !bytes.Equal(recs[1].Data, data) {
					t.Error("fetched chunk bytes differ")
				}
			}
			// Tail-only catch-up from the last acked offset.
			recs, err = c.FetchRange(0, "f", 0, 2, 0)
			if err != nil || len(recs) != 1 || recs[0].Seq != 2 {
				t.Errorf("tail fetch: %v", err)
			}
			if _, err := c.FetchRange(0, "missing", 0, 0, 0); !errors.Is(err, ErrNoEpoch) {
				t.Errorf("fetch of unknown shard: %v", err)
			}
		}},
		{Name: "staging", Procs: 1, Main: func(p *mpi.Proc) {
			svc := NewService(st, &rpc.Server{IC: p.Intercomm("producer")})
			// 3 appends + 2 acks + 3 fetches.
			for i := 0; i < 8; i++ {
				svc.ServeOne()
				served++
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if served != 8 {
		t.Fatalf("served %d", served)
	}
	if e, _ := st.CommittedEpoch("f"); e != 1 {
		t.Fatalf("store epoch %d", e)
	}
}

// TestServiceFetchHedged exercises the hedged fetch-range path across two
// staging ranks holding the same store.
func TestServiceFetchHedged(t *testing.T) {
	st := NewStore(Options{})
	publishEpochNoT(st, "f", 0)
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "consumer", Procs: 1, Main: func(p *mpi.Proc) {
			c := &Client{RPC: &rpc.Client{IC: p.Intercomm("staging"), Timeout: time.Second, Retries: 2, HedgeDelay: time.Millisecond, Method: func([]byte) string { return "stage" }}}
			recs, winner, err := c.FetchRangeHedged(0, 1, "f", 0, 0, 0)
			if err != nil || len(recs) != 3 {
				t.Errorf("hedged fetch: %d recs from %d, %v", len(recs), winner, err)
			}
		}},
		{Name: "staging", Procs: 2, Main: func(p *mpi.Proc) {
			svc := NewService(st, &rpc.Server{IC: p.Intercomm("consumer")})
			// The losing hedge target may see zero requests, so poll with
			// Pending instead of blocking in ServeOne.
			deadline := time.Now().Add(500 * time.Millisecond)
			for time.Now().Before(deadline) {
				if svc.Server.Pending() {
					svc.ServeOne()
				} else {
					time.Sleep(time.Millisecond)
				}
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func publishEpochNoT(st *Store, file string, rank int) {
	epoch, _ := st.Begin(file, rank, []byte("meta"))
	st.Append(file, rank, epoch, "/grid", grid.Box{Min: []int64{0}, Max: []int64{15}}, bytes.Repeat([]byte{byte(epoch)}, 16))
	st.Commit(file, rank, epoch)
}
