package stage

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"lowfive/internal/grid"
	"lowfive/metrics"
)

// Store-level typed errors.
var (
	// ErrEpochTruncated reports a query or replay of an epoch the GC has
	// truncated; callers fall back to the PFS container file.
	ErrEpochTruncated = errors.New("stage: epoch truncated from log")
	// ErrNoEpoch reports an epoch that was never committed for the file.
	ErrNoEpoch = errors.New("stage: no such committed epoch")
	// ErrAckRegression reports a subscriber ack below its previous ack;
	// watermarks only move forward.
	ErrAckRegression = errors.New("stage: subscriber ack regression")
	// ErrShardDown reports a shard with no live replica left.
	ErrShardDown = errors.New("stage: no live replica for shard")
	// ErrWaitCommit reports a WaitCommitted that ran out its budget.
	ErrWaitCommit = errors.New("stage: timed out waiting for committed epoch")
)

// Options configures a Store.
type Options struct {
	// Replicas is the follower count F; every shard keeps 1+F log copies.
	// Zero or negative defaults to 1 follower.
	Replicas int
	// Metrics receives log/replay/watermark instruments when non-nil.
	Metrics *metrics.Registry
	// AutoGC truncates acked epochs eagerly on every subscriber ack.
	AutoGC bool
	// OnCommit, when set, runs synchronously inside Commit after the
	// commit record is replicated but before the epoch becomes visible to
	// consumers. The harness uses it to inject replica faults and
	// crash-during-commit at a deterministic point.
	OnCommit func(file string, rank int, epoch int64)
}

// Chunk is one queried or replayed data extent.
type Chunk struct {
	Dataset string
	Box     grid.Box
	Data    []byte
}

// ReplayData is the result of replaying one shard's latest committed span:
// the epoch-begin metadata snapshot plus the chunk tail.
type ReplayData struct {
	Epoch   int64
	Meta    []byte
	Chunks  []Chunk
	Records int   // records scanned — the O(delta) bound
	Bytes   int64 // framed bytes scanned
}

// StoreStats is a point-in-time aggregate over every shard.
type StoreStats struct {
	Shards           int
	Appends          int64 // records appended (leader copies)
	AppendedBytes    int64 // framed bytes appended (leader copies)
	CommittedEpochs  int64
	SupersededEpochs int64 // torn epochs replaced by a re-begin after a crash
	Failovers        int64
	DeadReplicas     int
	TruncatedEpochs  int64
	TruncatedRecords int64
	Replays          int64
	ReplayRecords    int64 // total records scanned across all replays
}

type span struct {
	begin     uint64 // seq of the epoch-begin record
	commit    uint64 // seq of the epoch-commit record (valid when committed)
	chunks    int64
	committed bool
	truncated bool
}

type replica struct {
	id    int
	log   shardLog
	acked uint64 // every seq < acked is acknowledged by this replica
	down  bool
}

type shard struct {
	file          string
	rank          int
	replicas      []*replica
	leader        int
	spans         map[int64]*span
	lastCommitted int64
	pending       int64 // epoch begun but not yet committed (0 = none)
}

type shardKey struct {
	file string
	rank int
}

// Store is the staging store: one shard per (file, producer rank), each a
// leader-replicated append-only log, plus subscriber ack bookkeeping for
// watermark-driven GC. A Store outlives task restarts — it models dedicated
// staging ranks, the way a DataSpaces/ADIOS staging area outlives the
// applications it couples.
type Store struct {
	opt Options

	mu     sync.Mutex
	cond   *sync.Cond
	shards map[shardKey]*shard
	order  map[string][]int // file -> sorted shard ranks
	subs   map[string]map[string]int64

	stats StoreStats

	mRecords   *metrics.Counter
	mBytes     *metrics.Counter
	mTruncated *metrics.Counter
	mFailovers *metrics.Counter
	mReplay    *metrics.Histogram
}

// NewStore creates a staging store.
func NewStore(opt Options) *Store {
	if opt.Replicas <= 0 {
		opt.Replicas = 1
	}
	s := &Store{
		opt:    opt,
		shards: make(map[shardKey]*shard),
		order:  make(map[string][]int),
		subs:   make(map[string]map[string]int64),
	}
	s.cond = sync.NewCond(&s.mu)
	if m := opt.Metrics; m != nil {
		s.mRecords = m.Counter("stage.log.records")
		s.mBytes = m.Counter("stage.log.appended_bytes")
		s.mTruncated = m.Counter("stage.log.truncated_records")
		s.mFailovers = m.Counter("stage.failovers")
		s.mReplay = m.Histogram("stage.replay.latency_us")
		m.GaugeFunc("stage.watermark.lag", s.watermarkLag)
	}
	return s
}

func (s *Store) shardLocked(file string, rank int, create bool) *shard {
	k := shardKey{file: file, rank: rank}
	sh, ok := s.shards[k]
	if !ok && create {
		sh = &shard{file: file, rank: rank, spans: make(map[int64]*span)}
		for i := 0; i <= s.opt.Replicas; i++ {
			sh.replicas = append(sh.replicas, &replica{id: i})
		}
		s.shards[k] = sh
		s.order[file] = append(s.order[file], rank)
		sort.Ints(s.order[file])
	}
	return sh
}

// appendLocked appends r to the shard's leader and replicates the framed
// bytes to every live follower, advancing each replica's ack. All live
// replicas move in lockstep, so acks are monotonic and hole-free.
func (s *Store) appendLocked(sh *shard, r *Record) (uint64, error) {
	if sh.replicas[sh.leader].down {
		if !s.failoverLocked(sh) {
			return 0, fmt.Errorf("%w: %s rank %d", ErrShardDown, sh.file, sh.rank)
		}
	}
	lead := sh.replicas[sh.leader]
	seq := lead.log.append(r)
	lead.acked = lead.log.nextSeq
	frame := lead.log.frameAt(seq)
	for _, rep := range sh.replicas {
		if rep == lead || rep.down {
			continue
		}
		if _, err := rep.log.appendFrame(frame); err != nil {
			// A replica that rejects a replicated frame is corrupt;
			// drop it rather than diverge.
			rep.down = true
			continue
		}
		rep.acked = rep.log.nextSeq
	}
	s.stats.Appends++
	s.stats.AppendedBytes += int64(len(frame))
	if s.mRecords != nil {
		s.mRecords.Inc()
		s.mBytes.Add(int64(len(frame)))
	}
	return seq, nil
}

// failoverLocked promotes the live replica with the highest ack. Returns
// false when none is left.
func (s *Store) failoverLocked(sh *shard) bool {
	best := -1
	for i, rep := range sh.replicas {
		if rep.down {
			continue
		}
		if best < 0 || rep.acked > sh.replicas[best].acked {
			best = i
		}
	}
	if best < 0 {
		return false
	}
	sh.leader = best
	s.stats.Failovers++
	if s.mFailovers != nil {
		s.mFailovers.Inc()
	}
	return true
}

// Begin opens the next epoch of a shard, recording the metadata snapshot.
// Re-beginning after a crash-during-commit supersedes the torn span: its
// records stay in the log but the epoch index points at the new span.
func (s *Store) Begin(file string, rank int, meta []byte) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh := s.shardLocked(file, rank, true)
	epoch := sh.lastCommitted + 1
	if sh.pending != 0 {
		s.stats.SupersededEpochs++
	}
	seq, err := s.appendLocked(sh, &Record{Type: RecEpochBegin, Epoch: epoch, Rank: rank, Meta: meta})
	if err != nil {
		return 0, err
	}
	sh.spans[epoch] = &span{begin: seq}
	sh.pending = epoch
	return epoch, nil
}

// Append adds one chunk record to the open epoch.
func (s *Store) Append(file string, rank int, epoch int64, dataset string, box grid.Box, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh := s.shardLocked(file, rank, false)
	if sh == nil || sh.pending != epoch {
		return fmt.Errorf("%w: append to epoch %d of %s rank %d", ErrNoEpoch, epoch, file, rank)
	}
	_, err := s.appendLocked(sh, &Record{Type: RecChunk, Epoch: epoch, Rank: rank, Dataset: dataset, Box: box, Data: data})
	return err
}

// Commit seals the open epoch. The commit record is appended and replicated
// first; only then does the epoch become visible to waiting consumers, so a
// crash inside commit (or injected by the OnCommit hook) leaves a torn span
// that the restarted producer supersedes.
func (s *Store) Commit(file string, rank int, epoch int64) error {
	s.mu.Lock()
	sh := s.shardLocked(file, rank, false)
	if sh == nil || sh.pending != epoch {
		s.mu.Unlock()
		return fmt.Errorf("%w: commit of epoch %d of %s rank %d", ErrNoEpoch, epoch, file, rank)
	}
	sp := sh.spans[epoch]
	chunks := int64(0)
	lead := sh.replicas[sh.leader]
	for q := sp.begin + 1; q < lead.log.nextSeq; q++ {
		if r := lead.log.get(q); r != nil && r.Type == RecChunk && r.Epoch == epoch {
			chunks++
		}
	}
	seq, err := s.appendLocked(sh, &Record{Type: RecEpochCommit, Epoch: epoch, Rank: rank, Chunks: chunks})
	if err != nil {
		s.mu.Unlock()
		return err
	}
	s.mu.Unlock()

	if s.opt.OnCommit != nil {
		s.opt.OnCommit(file, rank, epoch)
	}

	s.mu.Lock()
	sp.commit = seq
	sp.chunks = chunks
	sp.committed = true
	sh.lastCommitted = epoch
	sh.pending = 0
	s.stats.CommittedEpochs++
	s.mu.Unlock()
	s.cond.Broadcast()
	return nil
}

// committedLocked returns the highest epoch committed by every shard of the
// file and the shard count.
func (s *Store) committedLocked(file string) (int64, int) {
	ranks := s.order[file]
	if len(ranks) == 0 {
		return 0, 0
	}
	min := int64(-1)
	for _, r := range ranks {
		sh := s.shards[shardKey{file: file, rank: r}]
		if min < 0 || sh.lastCommitted < min {
			min = sh.lastCommitted
		}
	}
	return min, len(ranks)
}

// CommittedEpoch returns the highest epoch committed by all current shards
// of the file, and how many shards it has.
func (s *Store) CommittedEpoch(file string) (int64, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.committedLocked(file)
}

// WaitCommitted blocks until at least ranks shards of the file each have a
// committed epoch, returning the highest epoch committed by all of them.
// timeout <= 0 waits forever (fail-stop mode); otherwise the wait is capped
// — the staging analogue of the consumer's restart-poll budget.
func (s *Store) WaitCommitted(file string, ranks int, timeout time.Duration) (int64, error) {
	if ranks < 1 {
		ranks = 1
	}
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		t := time.AfterFunc(timeout, s.cond.Broadcast)
		defer t.Stop()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if e, n := s.committedLocked(file); n >= ranks && e >= 1 {
			return e, nil
		}
		if timeout > 0 && !time.Now().Before(deadline) {
			return 0, fmt.Errorf("%w: %s after %s", ErrWaitCommit, file, timeout)
		}
		s.cond.Wait()
	}
}

// spanLocked resolves the epoch index entry of one shard, classifying
// missing versus truncated.
func (s *Store) spanLocked(sh *shard, epoch int64) (*span, error) {
	sp, ok := sh.spans[epoch]
	if !ok || !sp.committed {
		return nil, fmt.Errorf("%w: epoch %d of %s rank %d", ErrNoEpoch, epoch, sh.file, sh.rank)
	}
	if sp.truncated {
		return nil, fmt.Errorf("%w: epoch %d of %s rank %d", ErrEpochTruncated, epoch, sh.file, sh.rank)
	}
	return sp, nil
}

// Meta returns the encoded metadata tree of one committed epoch, read from
// the lowest-rank shard (the tree structure is replicated across ranks).
func (s *Store) Meta(file string, epoch int64) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ranks := s.order[file]
	if len(ranks) == 0 {
		return nil, fmt.Errorf("%w: no shards for %s", ErrNoEpoch, file)
	}
	sh := s.shards[shardKey{file: file, rank: ranks[0]}]
	sp, err := s.spanLocked(sh, epoch)
	if err != nil {
		return nil, err
	}
	r := sh.replicas[sh.leader].log.get(sp.begin)
	if r == nil || r.Type != RecEpochBegin {
		return nil, fmt.Errorf("%w: epoch %d of %s", ErrEpochTruncated, epoch, file)
	}
	return r.Meta, nil
}

// Chunks resolves epoch -> log offsets and returns every chunk of dataset
// intersecting bb (an empty bb selects all), across all shards of the file,
// in (rank, seq) order. This is the consumer query path, and the time-travel
// path for any retained epoch.
func (s *Store) Chunks(file string, epoch int64, dataset string, bb grid.Box) ([]Chunk, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Chunk
	ranks := s.order[file]
	if len(ranks) == 0 {
		return nil, fmt.Errorf("%w: no shards for %s", ErrNoEpoch, file)
	}
	for _, rank := range ranks {
		sh := s.shards[shardKey{file: file, rank: rank}]
		sp, err := s.spanLocked(sh, epoch)
		if err != nil {
			return nil, err
		}
		log := &sh.replicas[sh.leader].log
		for q := sp.begin + 1; q < sp.commit; q++ {
			r := log.get(q)
			if r == nil {
				return nil, fmt.Errorf("%w: seq %d of %s rank %d", ErrEpochTruncated, q, file, rank)
			}
			if r.Type != RecChunk || r.Epoch != epoch || r.Dataset != dataset {
				continue
			}
			if bb.Dim() != 0 && !bb.Intersects(r.Box) {
				continue
			}
			out = append(out, Chunk{Dataset: r.Dataset, Box: r.Box, Data: r.Data})
		}
	}
	return out, nil
}

// Replay reads one shard's latest committed span — metadata snapshot plus
// chunk tail — for a restarted producer rank. Cost is proportional to the
// span, not the log: the epoch index seeks straight to the begin offset.
func (s *Store) Replay(file string, rank int) (*ReplayData, error) {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	sh := s.shardLocked(file, rank, false)
	if sh == nil || sh.lastCommitted == 0 {
		return nil, fmt.Errorf("%w: no committed epoch of %s rank %d", ErrNoEpoch, file, rank)
	}
	epoch := sh.lastCommitted
	sp, err := s.spanLocked(sh, epoch)
	if err != nil {
		return nil, err
	}
	log := &sh.replicas[sh.leader].log
	rd := &ReplayData{Epoch: epoch}
	for q := sp.begin; q <= sp.commit; q++ {
		r := log.get(q)
		if r == nil {
			return nil, fmt.Errorf("%w: seq %d of %s rank %d", ErrEpochTruncated, q, file, rank)
		}
		rd.Records++
		rd.Bytes += int64(len(log.frameAt(q)))
		switch {
		case r.Type == RecEpochBegin && r.Epoch == epoch:
			rd.Meta = r.Meta
		case r.Type == RecChunk && r.Epoch == epoch:
			rd.Chunks = append(rd.Chunks, Chunk{Dataset: r.Dataset, Box: r.Box, Data: r.Data})
		}
	}
	if rd.Meta == nil || int64(len(rd.Chunks)) != sp.chunks {
		return nil, fmt.Errorf("%w: torn span for epoch %d of %s rank %d", ErrEpochTruncated, epoch, file, rank)
	}
	s.stats.Replays++
	s.stats.ReplayRecords += int64(rd.Records)
	if s.mReplay != nil {
		s.mReplay.ObserveSince(start)
	}
	return rd, nil
}

// Subscribe registers a consumer for watermark accounting. A subscriber
// that never acks pins every epoch of the file.
func (s *Store) Subscribe(file, sub string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.subs[file] == nil {
		s.subs[file] = make(map[string]int64)
	}
	if _, ok := s.subs[file][sub]; !ok {
		s.subs[file][sub] = 0
	}
}

// Ack records that a subscriber has fully consumed every epoch <= epoch.
// Acks are monotonic; a regression is rejected with ErrAckRegression.
func (s *Store) Ack(file, sub string, epoch int64) error {
	s.mu.Lock()
	if s.subs[file] == nil {
		s.subs[file] = make(map[string]int64)
	}
	if cur := s.subs[file][sub]; epoch < cur {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s acked %d after %d for %s", ErrAckRegression, sub, epoch, cur, file)
	}
	s.subs[file][sub] = epoch
	auto := s.opt.AutoGC
	s.mu.Unlock()
	if auto {
		s.GC(file)
	}
	return nil
}

func (s *Store) watermarkLocked(file string) int64 {
	subs := s.subs[file]
	if len(subs) == 0 {
		return 0
	}
	min := int64(-1)
	for _, e := range subs {
		if min < 0 || e < min {
			min = e
		}
	}
	return min
}

// Watermark returns the minimum acked epoch across the file's subscribers
// (0 when there are none, or any has yet to ack).
func (s *Store) Watermark(file string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.watermarkLocked(file)
}

// watermarkLag is the gauge body: the widest gap between any file's latest
// committed epoch and its subscriber watermark.
func (s *Store) watermarkLag() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var lag int64
	for file := range s.order {
		e, _ := s.committedLocked(file)
		if e <= 0 {
			continue
		}
		if d := e - s.watermarkLocked(file); d > lag {
			lag = d
		}
	}
	return lag
}

// GC truncates every epoch at or below the file's watermark from all shard
// replicas, returning the number of records dropped. The PFS container file
// remains the low-watermark fallback, so truncation never destroys the only
// copy.
func (s *Store) GC(file string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	wm := s.watermarkLocked(file)
	if wm <= 0 {
		return 0
	}
	dropped := 0
	for _, rank := range s.order[file] {
		sh := s.shards[shardKey{file: file, rank: rank}]
		// Find the cut point: the first seq of the lowest retained epoch.
		cut := uint64(0)
		found := false
		for e := wm + 1; e <= sh.lastCommitted; e++ {
			if sp, ok := sh.spans[e]; ok && sp.committed && !sp.truncated {
				cut = sp.begin
				found = true
				break
			}
		}
		if !found {
			// Everything acked: drop the whole retained log.
			cut = sh.replicas[sh.leader].log.nextSeq
			if sh.pending != 0 {
				if sp, ok := sh.spans[sh.pending]; ok {
					cut = sp.begin
				}
			}
		}
		for e, sp := range sh.spans {
			if e <= wm && sp.committed && !sp.truncated {
				sp.truncated = true
				s.stats.TruncatedEpochs++
			}
		}
		for _, rep := range sh.replicas {
			if rep.down {
				continue
			}
			n := rep.log.truncateBefore(cut)
			if rep.id == sh.replicas[sh.leader].id {
				dropped += n
				s.stats.TruncatedRecords += int64(n)
				if s.mTruncated != nil {
					s.mTruncated.Add(int64(n))
				}
			}
		}
	}
	return dropped
}

// Frames returns the framed records of one shard with seq in [from, to);
// to == 0 means the current tail. A from below the truncation point is
// ErrEpochTruncated — the caller must fall back to a snapshot source.
func (s *Store) Frames(file string, rank int, from, to uint64) ([][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh := s.shardLocked(file, rank, false)
	if sh == nil {
		return nil, fmt.Errorf("%w: no shard for %s rank %d", ErrNoEpoch, file, rank)
	}
	if sh.replicas[sh.leader].down && !s.failoverLocked(sh) {
		return nil, fmt.Errorf("%w: %s rank %d", ErrShardDown, file, rank)
	}
	log := &sh.replicas[sh.leader].log
	if to == 0 || to > log.nextSeq {
		to = log.nextSeq
	}
	if from < log.firstSeq {
		return nil, fmt.Errorf("%w: seq %d truncated below %d", ErrEpochTruncated, from, log.firstSeq)
	}
	var out [][]byte
	for q := from; q < to; q++ {
		out = append(out, log.frameAt(q))
	}
	return out, nil
}

// FailLeader marks the current leader replica of a shard dead, forcing the
// next append to fail over. Fault injection for the harness.
func (s *Store) FailLeader(file string, rank int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh := s.shardLocked(file, rank, false)
	if sh == nil || sh.replicas[sh.leader].down {
		return false
	}
	sh.replicas[sh.leader].down = true
	s.failoverLocked(sh)
	return true
}

// FailFollower marks one live non-leader replica of a shard dead. Fault
// injection for the harness.
func (s *Store) FailFollower(file string, rank int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh := s.shardLocked(file, rank, false)
	if sh == nil {
		return false
	}
	for i, rep := range sh.replicas {
		if i != sh.leader && !rep.down {
			rep.down = true
			return true
		}
	}
	return false
}

// Acked returns each replica's ack offset for a shard, leader first — the
// monotonically-sequenced append invariant tests assert on it.
func (s *Store) Acked(file string, rank int) []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh := s.shardLocked(file, rank, false)
	if sh == nil {
		return nil
	}
	out := []uint64{sh.replicas[sh.leader].acked}
	for i, rep := range sh.replicas {
		if i != sh.leader {
			out = append(out, rep.acked)
		}
	}
	return out
}

// Files returns every file with at least one shard.
func (s *Store) Files() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.order))
	for f := range s.order {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Stats returns a snapshot of store-wide counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Shards = len(s.shards)
	for _, sh := range s.shards {
		for _, rep := range sh.replicas {
			if rep.down {
				st.DeadReplicas++
			}
		}
	}
	return st
}
