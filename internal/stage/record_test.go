package stage

import (
	"bytes"
	"errors"
	"hash/crc32"
	"testing"

	"lowfive/internal/grid"
)

func sampleRecords() []*Record {
	return []*Record{
		{Type: RecEpochBegin, Seq: 7, Epoch: 3, Rank: 1, Meta: []byte("tree-bytes")},
		{Type: RecChunk, Seq: 8, Epoch: 3, Rank: 1, Dataset: "/grid",
			Box:  grid.Box{Min: []int64{0, 4}, Max: []int64{7, 11}},
			Data: bytes.Repeat([]byte{0xab}, 64)},
		{Type: RecEpochCommit, Seq: 9, Epoch: 3, Rank: 1, Chunks: 1},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for _, r := range sampleRecords() {
		frame := EncodeRecord(r)
		got, n, err := DecodeRecord(frame)
		if err != nil {
			t.Fatalf("type %d: %v", r.Type, err)
		}
		if n != len(frame) {
			t.Fatalf("type %d: consumed %d of %d", r.Type, n, len(frame))
		}
		if got.Type != r.Type || got.Seq != r.Seq || got.Epoch != r.Epoch || got.Rank != r.Rank {
			t.Fatalf("header mismatch: %+v vs %+v", got, r)
		}
		switch r.Type {
		case RecEpochBegin:
			if !bytes.Equal(got.Meta, r.Meta) {
				t.Fatal("meta mismatch")
			}
		case RecChunk:
			if got.Dataset != r.Dataset || !got.Box.Equal(r.Box) || !bytes.Equal(got.Data, r.Data) {
				t.Fatal("chunk mismatch")
			}
		case RecEpochCommit:
			if got.Chunks != r.Chunks {
				t.Fatal("chunks mismatch")
			}
		}
	}
}

func TestRecordStreamDecode(t *testing.T) {
	var stream []byte
	for _, r := range sampleRecords() {
		stream = append(stream, EncodeRecord(r)...)
	}
	var types []uint8
	for len(stream) > 0 {
		r, n, err := DecodeRecord(stream)
		if err != nil {
			t.Fatal(err)
		}
		types = append(types, r.Type)
		stream = stream[n:]
	}
	want := []uint8{RecEpochBegin, RecChunk, RecEpochCommit}
	if len(types) != len(want) {
		t.Fatalf("decoded %d records", len(types))
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("record %d type %d, want %d", i, types[i], want[i])
		}
	}
}

func TestRecordTornWrite(t *testing.T) {
	frame := EncodeRecord(sampleRecords()[1])
	for cut := 0; cut < len(frame); cut++ {
		_, _, err := DecodeRecord(frame[:cut])
		if !errors.Is(err, ErrTruncatedFrame) {
			t.Fatalf("cut at %d: got %v, want ErrTruncatedFrame", cut, err)
		}
	}
}

func TestRecordBitFlips(t *testing.T) {
	frame := EncodeRecord(sampleRecords()[1])
	for pos := 0; pos < len(frame); pos++ {
		corrupt := append([]byte(nil), frame...)
		corrupt[pos] ^= 0xff
		_, _, err := DecodeRecord(corrupt)
		if err == nil {
			t.Fatalf("flip at %d: decoded corrupt frame", pos)
		}
		if !errors.Is(err, ErrTruncatedFrame) && !errors.Is(err, ErrBadCRC) && !errors.Is(err, ErrBadRecord) {
			t.Fatalf("flip at %d: untyped error %v", pos, err)
		}
	}
}

func TestRecordUnknownType(t *testing.T) {
	frame := EncodeRecord(&Record{Type: 99, Seq: 1, Epoch: 1, Rank: 0})
	_, _, err := DecodeRecord(frame)
	if !errors.Is(err, ErrBadRecord) {
		t.Fatalf("got %v, want ErrBadRecord", err)
	}
}

func TestRecordHostileBoxRank(t *testing.T) {
	// A chunk whose box-rank field claims more dimensions than the frame
	// holds must be rejected before any allocation.
	r := &Record{Type: RecChunk, Epoch: 1, Rank: 0, Dataset: "d",
		Box: grid.Box{Min: []int64{0}, Max: []int64{1}}, Data: []byte{1}}
	frame := EncodeRecord(r)
	good, n, err := DecodeRecord(frame)
	if err != nil || n != len(frame) || good.Box.Dim() != 1 {
		t.Fatalf("control decode failed: %v", err)
	}
	// The rank i64 sits right after the dataset string; rewrite it in the
	// body and refresh the CRC so only the semantic check can reject it.
	body := append([]byte(nil), frame[frameHeaderLen:]...)
	// [seq 8][type 1][epoch 8][rank 8][dslen 8]["d" 1] -> rank field at 34.
	off := 8 + 1 + 8 + 8 + 8 + 1
	for i := 0; i < 8; i++ {
		body[off+i] = 0xff
	}
	body[off+7] = 0x7f // a huge positive rank
	var e2 []byte
	e2 = append(e2, frame[:frameHeaderLen]...)
	e2 = append(e2, body...)
	putU32(e2[4:8], crc32.Checksum(body, crcTable))
	_, _, err = DecodeRecord(e2)
	if !errors.Is(err, ErrBadRecord) {
		t.Fatalf("got %v, want ErrBadRecord", err)
	}
}
