// Package stage implements a log-structured, epoch-versioned staging store:
// the durable middle tier between producers and consumers that the ADIOS
// line of streaming papers calls a staging area. Every producer shard is an
// append-only log of framed, CRC'd records — epoch-begin, chunk,
// epoch-commit — replicated to follower replicas with acked, monotonically
// sequenced appends. Restarted ranks and late consumers catch up by
// replaying the tail of the log from their last known offset instead of
// re-serving the producer, and retention is driven by subscriber ack
// watermarks with the PFS container file as the low-watermark fallback.
package stage

import (
	"errors"
	"fmt"
	"hash/crc32"

	"lowfive/h5"
	"lowfive/internal/grid"
)

// Record types, in the order they appear within one epoch span.
const (
	// RecEpochBegin opens an epoch: its payload carries the encoded
	// metadata tree (the snapshot part of snapshot + tail).
	RecEpochBegin uint8 = 1
	// RecChunk carries one contiguous box of packed dataset bytes.
	RecChunk uint8 = 2
	// RecEpochCommit seals an epoch; its chunk count lets replay verify
	// the span is whole.
	RecEpochCommit uint8 = 3
)

// Typed decode errors. The decoder must return one of these for any
// malformed input — never panic, never allocate proportional to a corrupt
// length claim.
var (
	// ErrTruncatedFrame reports a frame cut short: a torn write, or a
	// length prefix that promises more bytes than the log holds.
	ErrTruncatedFrame = errors.New("stage: truncated log frame")
	// ErrBadCRC reports a frame whose checksum does not match its body.
	ErrBadCRC = errors.New("stage: log frame CRC mismatch")
	// ErrBadRecord reports a structurally invalid record inside an intact
	// frame (unknown type, bad box rank, short payload).
	ErrBadRecord = errors.New("stage: malformed log record")
)

// Record is one decoded log entry.
type Record struct {
	Type  uint8
	Seq   uint64 // log sequence number, assigned at append
	Epoch int64  // store epoch this record belongs to
	Rank  int    // producer rank that owns the shard

	// RecEpochBegin
	Meta []byte // encoded metadata tree (aliases the frame on decode)

	// RecChunk
	Dataset string
	Box     grid.Box
	Data    []byte // packed bytes in Box row-major order (aliases the frame)

	// RecEpochCommit
	Chunks int64 // number of chunk records in the span
}

// frameHeaderLen is the fixed prefix of every frame: a u32 body length and
// a u32 CRC. The CRC covers the body (seq + payload), mirroring the RPC
// envelope's layout so a frame cut anywhere is detectable.
const frameHeaderLen = 8

// maxFrameBody caps a single frame body at 1 GiB; a length prefix beyond it
// is treated as corruption rather than an allocation request.
const maxFrameBody = 1 << 30

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// EncodeRecord frames one record: [len u32][crc u32][seq i64][payload].
func EncodeRecord(r *Record) []byte {
	var e h5.Encoder
	e.Buf = make([]byte, frameHeaderLen, frameHeaderLen+64+len(r.Meta)+len(r.Data))
	e.PutI64(int64(r.Seq))
	e.PutU8(r.Type)
	e.PutI64(r.Epoch)
	e.PutI64(int64(r.Rank))
	switch r.Type {
	case RecEpochBegin:
		e.PutBytes(r.Meta)
	case RecChunk:
		e.PutString(r.Dataset)
		e.PutI64(int64(r.Box.Dim()))
		for d := 0; d < r.Box.Dim(); d++ {
			e.PutI64(r.Box.Min[d])
			e.PutI64(r.Box.Max[d])
		}
		e.PutBytes(r.Data)
	case RecEpochCommit:
		e.PutI64(r.Chunks)
	}
	body := e.Buf[frameHeaderLen:]
	putU32(e.Buf[0:4], uint32(len(body)))
	putU32(e.Buf[4:8], crc32.Checksum(body, crcTable))
	return e.Buf
}

// DecodeRecord decodes one frame from the head of buf, returning the record
// and the number of bytes consumed. Decoded Meta/Data slices alias buf.
func DecodeRecord(buf []byte) (*Record, int, error) {
	if len(buf) < frameHeaderLen {
		return nil, 0, ErrTruncatedFrame
	}
	n := int(getU32(buf[0:4]))
	if n > maxFrameBody {
		return nil, 0, fmt.Errorf("%w: body length %d", ErrBadRecord, n)
	}
	if frameHeaderLen+n > len(buf) {
		return nil, 0, ErrTruncatedFrame
	}
	body := buf[frameHeaderLen : frameHeaderLen+n]
	if crc32.Checksum(body, crcTable) != getU32(buf[4:8]) {
		return nil, 0, ErrBadCRC
	}
	d := &h5.Decoder{Buf: body}
	r := &Record{Seq: uint64(d.I64()), Type: d.U8(), Epoch: d.I64(), Rank: int(d.I64())}
	switch r.Type {
	case RecEpochBegin:
		r.Meta = d.Bytes()
	case RecChunk:
		r.Dataset = d.String()
		nd := d.I64()
		// A box encodes 16 bytes per dimension; a rank the remaining
		// bytes cannot hold is corruption, rejected before allocating.
		if d.Err != nil || nd <= 0 || nd > 64 || nd > remaining(d)/16 {
			return nil, 0, fmt.Errorf("%w: box rank %d", ErrBadRecord, nd)
		}
		r.Box = grid.Box{Min: make([]int64, nd), Max: make([]int64, nd)}
		for k := int64(0); k < nd; k++ {
			r.Box.Min[k] = d.I64()
			r.Box.Max[k] = d.I64()
		}
		r.Data = d.Bytes()
	case RecEpochCommit:
		r.Chunks = d.I64()
	default:
		return nil, 0, fmt.Errorf("%w: unknown type %d", ErrBadRecord, r.Type)
	}
	if d.Err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrBadRecord, d.Err)
	}
	return r, frameHeaderLen + n, nil
}

func remaining(d *h5.Decoder) int64 {
	if d.Err != nil || d.Pos > len(d.Buf) {
		return 0
	}
	return int64(len(d.Buf) - d.Pos)
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
