package stage

import (
	"errors"
	"fmt"

	"lowfive/h5"
	"lowfive/internal/rpc"
)

// Wire protocol for remote staging ranks: append, ack, and fetch-range
// methods carried by the existing RPC envelopes, so staging traffic gets the
// same deadline, retry, and hedging treatment as the metadata plane. The
// append payload is a framed record — the same CRC'd encoding the log
// stores — so corruption is detectable end to end.
const (
	opAppend uint8 = 1
	opAck    uint8 = 2
	opFetch  uint8 = 3
)

const (
	stOK         uint8 = 0
	stErr        uint8 = 1
	stTruncated  uint8 = 2
	stRegression uint8 = 3
	stNoEpoch    uint8 = 4
)

// Service serves one Store over an intercommunicator.
type Service struct {
	Store  *Store
	Server *rpc.Server
}

// NewService wraps a store in an RPC server on ic.
func NewService(st *Store, server *rpc.Server) *Service {
	s := &Service{Store: st, Server: server}
	server.Handler = s.handle
	return s
}

// ServeOne blocks for a single request and handles it, returning the
// source rank.
func (s *Service) ServeOne() int { return s.Server.ServeOne() }

func (s *Service) handle(src int, req []byte) ([]byte, bool) {
	d := &h5.Decoder{Buf: req}
	switch d.U8() {
	case opAppend:
		return s.handleAppend(d), true
	case opAck:
		return s.handleAck(d), true
	case opFetch:
		return s.handleFetch(d), true
	}
	return statusResp(stErr, "unknown op"), true
}

func (s *Service) handleAppend(d *h5.Decoder) []byte {
	file := d.String()
	frame := d.Bytes()
	if d.Err != nil {
		return statusResp(stErr, d.Err.Error())
	}
	rec, n, err := DecodeRecord(frame)
	if err != nil || n != len(frame) {
		return statusResp(stErr, fmt.Sprintf("bad append frame: %v", err))
	}
	epoch := rec.Epoch
	switch rec.Type {
	case RecEpochBegin:
		epoch, err = s.Store.Begin(file, rec.Rank, rec.Meta)
	case RecChunk:
		err = s.Store.Append(file, rec.Rank, rec.Epoch, rec.Dataset, rec.Box, rec.Data)
	case RecEpochCommit:
		err = s.Store.Commit(file, rec.Rank, rec.Epoch)
	default:
		err = fmt.Errorf("%w: append type %d", ErrBadRecord, rec.Type)
	}
	if err != nil {
		return errResp(err)
	}
	acked := s.Store.Acked(file, rec.Rank)
	var e h5.Encoder
	e.PutU8(stOK)
	e.PutI64(epoch)
	e.PutI64(int64(acked[0]))
	return e.Buf
}

func (s *Service) handleAck(d *h5.Decoder) []byte {
	file, sub, epoch := d.String(), d.String(), d.I64()
	if d.Err != nil {
		return statusResp(stErr, d.Err.Error())
	}
	if err := s.Store.Ack(file, sub, epoch); err != nil {
		return errResp(err)
	}
	var e h5.Encoder
	e.PutU8(stOK)
	e.PutI64(s.Store.Watermark(file))
	return e.Buf
}

func (s *Service) handleFetch(d *h5.Decoder) []byte {
	file, rank := d.String(), int(d.I64())
	from, to := uint64(d.I64()), uint64(d.I64())
	if d.Err != nil {
		return statusResp(stErr, d.Err.Error())
	}
	frames, err := s.Store.Frames(file, rank, from, to)
	if err != nil {
		return errResp(err)
	}
	var e h5.Encoder
	e.PutU8(stOK)
	e.PutI64(int64(len(frames)))
	for _, fr := range frames {
		e.PutBytes(fr)
	}
	return e.Buf
}

func statusResp(st uint8, msg string) []byte {
	var e h5.Encoder
	e.PutU8(st)
	e.PutString(msg)
	return e.Buf
}

func errResp(err error) []byte {
	switch {
	case errors.Is(err, ErrEpochTruncated):
		return statusResp(stTruncated, err.Error())
	case errors.Is(err, ErrAckRegression):
		return statusResp(stRegression, err.Error())
	case errors.Is(err, ErrNoEpoch):
		return statusResp(stNoEpoch, err.Error())
	}
	return statusResp(stErr, err.Error())
}

// decodeStatus maps a response status back to the typed store errors.
func decodeStatus(d *h5.Decoder) error {
	switch st := d.U8(); st {
	case stOK:
		return nil
	case stTruncated:
		return fmt.Errorf("%w: %s", ErrEpochTruncated, d.String())
	case stRegression:
		return fmt.Errorf("%w: %s", ErrAckRegression, d.String())
	case stNoEpoch:
		return fmt.Errorf("%w: %s", ErrNoEpoch, d.String())
	default:
		return fmt.Errorf("stage: remote error: %s", d.String())
	}
}

// Client issues staging RPCs through a configured rpc.Client, inheriting
// its timeout, retry, budget, and hedging envelopes.
type Client struct {
	RPC *rpc.Client
}

// Append sends one logical record (begin, chunk, or commit) to the staging
// rank dest, returning the epoch the leader assigned and its durable acked
// offset — the wire form of acked, monotonically-sequenced appends.
func (c *Client) Append(dest int, file string, rec *Record) (epoch int64, acked uint64, err error) {
	var e h5.Encoder
	e.PutU8(opAppend)
	e.PutString(file)
	e.PutBytes(EncodeRecord(rec))
	resp, err := c.RPC.Call(dest, e.Buf)
	if err != nil {
		return 0, 0, err
	}
	d := &h5.Decoder{Buf: resp}
	if err := decodeStatus(d); err != nil {
		return 0, 0, err
	}
	epoch = d.I64()
	acked = uint64(d.I64())
	return epoch, acked, d.Err
}

// AckEpoch acknowledges consumption through epoch for a subscriber,
// returning the file's new watermark.
func (c *Client) AckEpoch(dest int, file, sub string, epoch int64) (int64, error) {
	var e h5.Encoder
	e.PutU8(opAck)
	e.PutString(file)
	e.PutString(sub)
	e.PutI64(epoch)
	resp, err := c.RPC.Call(dest, e.Buf)
	if err != nil {
		return 0, err
	}
	d := &h5.Decoder{Buf: resp}
	if err := decodeStatus(d); err != nil {
		return 0, err
	}
	return d.I64(), d.Err
}

// FetchRange retrieves the framed records of one shard with seq in
// [from, to) — to == 0 meaning the tail — and decodes them, verifying each
// frame's CRC on the consumer side. This is the catch-up path for a
// restarted rank resuming from its last acked offset.
func (c *Client) FetchRange(dest int, file string, rank int, from, to uint64) ([]*Record, error) {
	resp, err := c.RPC.Call(dest, fetchReq(file, rank, from, to))
	if err != nil {
		return nil, err
	}
	return decodeFetch(resp)
}

// FetchRangeHedged is FetchRange with a hedged second request to another
// replica holder, for tail-tolerant catch-up.
func (c *Client) FetchRangeHedged(dest, hedge int, file string, rank int, from, to uint64) ([]*Record, int, error) {
	resp, winner, err := c.RPC.CallHedged(dest, hedge, fetchReq(file, rank, from, to))
	if err != nil {
		return nil, winner, err
	}
	recs, err := decodeFetch(resp)
	return recs, winner, err
}

func fetchReq(file string, rank int, from, to uint64) []byte {
	var e h5.Encoder
	e.PutU8(opFetch)
	e.PutString(file)
	e.PutI64(int64(rank))
	e.PutI64(int64(from))
	e.PutI64(int64(to))
	return e.Buf
}

func decodeFetch(resp []byte) ([]*Record, error) {
	d := &h5.Decoder{Buf: resp}
	if err := decodeStatus(d); err != nil {
		return nil, err
	}
	n := d.I64()
	if d.Err != nil || n < 0 || n > remaining(d)/frameHeaderLen {
		return nil, fmt.Errorf("%w: fetch count %d", ErrBadRecord, n)
	}
	recs := make([]*Record, 0, n)
	for i := int64(0); i < n; i++ {
		frame := d.Bytes()
		if d.Err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRecord, d.Err)
		}
		rec, used, err := DecodeRecord(frame)
		if err != nil || used != len(frame) {
			return nil, fmt.Errorf("stage: fetched frame %d: %w", i, err)
		}
		recs = append(recs, rec)
	}
	return recs, nil
}
