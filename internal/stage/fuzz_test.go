package stage

import (
	"errors"
	"testing"

	"lowfive/internal/grid"
)

// seedFrames returns one valid frame of each record type plus a
// concatenated stream, the honest inputs fuzzing mutates from.
func seedFrames() [][]byte {
	var frames [][]byte
	var stream []byte
	for _, r := range []*Record{
		{Type: RecEpochBegin, Seq: 0, Epoch: 1, Rank: 0, Meta: []byte("meta-tree")},
		{Type: RecChunk, Seq: 1, Epoch: 1, Rank: 0, Dataset: "/particles/x",
			Box:  grid.Box{Min: []int64{0, 0}, Max: []int64{3, 7}},
			Data: make([]byte, 256)},
		{Type: RecEpochCommit, Seq: 2, Epoch: 1, Rank: 0, Chunks: 1},
	} {
		f := EncodeRecord(r)
		frames = append(frames, f)
		stream = append(stream, f...)
	}
	return append(frames, stream)
}

// FuzzDecodeRecord asserts the log-record decoder is total: any input —
// torn writes, flipped bits, hostile length fields — either decodes to a
// record that re-encodes consistently or returns one of the typed errors.
// It must never panic and never allocate proportional to a corrupt claim.
func FuzzDecodeRecord(f *testing.F) {
	for _, frame := range seedFrames() {
		f.Add(frame)
		// Torn writes: truncations at the frame header boundary, mid-body,
		// and one byte short.
		for _, cut := range []int{0, 1, frameHeaderLen - 1, frameHeaderLen, len(frame) / 2, len(frame) - 1} {
			if cut >= 0 && cut < len(frame) {
				f.Add(append([]byte(nil), frame[:cut]...))
			}
		}
		// Bit rot in the header, the CRC, and the body.
		for _, pos := range []int{0, 4, frameHeaderLen, frameHeaderLen + 8, len(frame) - 1} {
			if pos >= 0 && pos < len(frame) {
				mut := append([]byte(nil), frame...)
				mut[pos] ^= 0xff
				f.Add(mut)
			}
		}
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		r, n, err := DecodeRecord(in)
		if err != nil {
			if !errors.Is(err, ErrTruncatedFrame) && !errors.Is(err, ErrBadCRC) && !errors.Is(err, ErrBadRecord) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if n < frameHeaderLen || n > len(in) {
			t.Fatalf("consumed %d of %d", n, len(in))
		}
		switch r.Type {
		case RecEpochBegin, RecChunk, RecEpochCommit:
		default:
			t.Fatalf("accepted record with type %d", r.Type)
		}
		if r.Type == RecChunk && (r.Box.Dim() <= 0 || r.Box.Dim() > 64) {
			t.Fatalf("accepted box rank %d", r.Box.Dim())
		}
		// A decoded record must survive a re-encode/re-decode round trip.
		again, _, err := DecodeRecord(EncodeRecord(r))
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if again.Type != r.Type || again.Seq != r.Seq || again.Epoch != r.Epoch {
			t.Fatal("round trip drifted")
		}
	})
}
