package stage

import "fmt"

// entry is one appended record: the framed bytes (what replication and
// fetch-range ship) alongside the decoded form (what local replay and
// queries read). Both views share the same backing array.
type entry struct {
	frame []byte
	rec   *Record
}

// shardLog is one replica's append-only record sequence. Sequence numbers
// are dense and monotonic; truncation advances firstSeq, so an offset below
// it is provably garbage-collected rather than merely absent.
type shardLog struct {
	firstSeq uint64 // seq of entries[0]
	nextSeq  uint64 // seq the next append receives
	entries  []entry
	bytes    int64 // framed bytes currently retained
}

// append assigns the next sequence number to r, frames it, and returns the
// assigned seq.
func (l *shardLog) append(r *Record) uint64 {
	r.Seq = l.nextSeq
	fr := EncodeRecord(r)
	l.entries = append(l.entries, entry{frame: fr, rec: r})
	l.nextSeq++
	l.bytes += int64(len(fr))
	return r.Seq
}

// appendFrame validates and appends an already-framed record (the follower
// side of replication). The frame's seq must be exactly nextSeq — acked
// appends are monotonically sequenced, with no holes.
func (l *shardLog) appendFrame(frame []byte) (*Record, error) {
	r, n, err := DecodeRecord(frame)
	if err != nil {
		return nil, err
	}
	if n != len(frame) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadRecord, len(frame)-n)
	}
	if r.Seq != l.nextSeq {
		return nil, fmt.Errorf("stage: out-of-order append seq %d, want %d", r.Seq, l.nextSeq)
	}
	l.entries = append(l.entries, entry{frame: frame, rec: r})
	l.nextSeq++
	l.bytes += int64(len(frame))
	return r, nil
}

// get returns the record at seq, or nil when it is truncated or beyond the
// tail.
func (l *shardLog) get(seq uint64) *Record {
	if seq < l.firstSeq || seq >= l.nextSeq {
		return nil
	}
	return l.entries[seq-l.firstSeq].rec
}

// frameAt returns the framed bytes at seq for fetch-range serving.
func (l *shardLog) frameAt(seq uint64) []byte {
	if seq < l.firstSeq || seq >= l.nextSeq {
		return nil
	}
	return l.entries[seq-l.firstSeq].frame
}

// truncateBefore drops every record with seq < seq, returning how many were
// dropped. Truncating past the tail is rejected.
func (l *shardLog) truncateBefore(seq uint64) int {
	if seq <= l.firstSeq {
		return 0
	}
	if seq > l.nextSeq {
		seq = l.nextSeq
	}
	n := int(seq - l.firstSeq)
	for i := 0; i < n; i++ {
		l.bytes -= int64(len(l.entries[i].frame))
		l.entries[i] = entry{}
	}
	l.entries = append([]entry(nil), l.entries[n:]...)
	l.firstSeq = seq
	return n
}

// len reports how many records are currently retained.
func (l *shardLog) len() int { return len(l.entries) }
