package core_test

import (
	"testing"

	"lowfive/h5"
	"lowfive/internal/buf"
	"lowfive/internal/core"
	"lowfive/mpi"
)

// TestStreamBoundedBuffering is the data-plane acceptance test: a dataset
// far larger than the configured chunk size streams end to end while the
// producer's transport buffering stays bounded by the pool limit, measured
// by the pool's high-water mark.
func TestStreamBoundedBuffering(t *testing.T) {
	const (
		chunkBytes = 4 << 10
		poolLimit  = 4
	)
	dims := []int64{128, 64} // 64 KiB of u64 >> one 4 KiB chunk
	pool := buf.NewPool(chunkBytes, poolLimit)
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "prod", Procs: 1, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("cons"))
			vol.ChunkPool = pool
			produceGrid(t, p, h5.NewFileAccessProps(vol), "big.h5", dims)
			if st := vol.Stats(); st.ChunksServed < 8 {
				t.Errorf("chunks served %d, want a multi-frame stream", st.ChunksServed)
			}
			if hw := pool.HighWater(); hw > poolLimit {
				t.Errorf("pool high water %d exceeds limit %d", hw, poolLimit)
			}
			if of := pool.Overflow(); of != 0 {
				t.Errorf("pool overflowed %d times; buffering was not bounded", of)
			}
			if out := pool.Outstanding(); out != 0 {
				t.Errorf("%d chunks leaked", out)
			}
		}},
		{Name: "cons", Procs: 1, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("prod"))
			fapl := h5.NewFileAccessProps(vol)
			consumeGridColumns(t, p, fapl, "big.h5", dims)
			qs := vol.QueryStats()
			if qs.ChunksFetched < 8 {
				t.Errorf("chunks fetched %d, want a multi-frame stream", qs.ChunksFetched)
			}
			if qs.BytesFetched < int64(dims[0]*dims[1]*8) {
				t.Errorf("bytes fetched %d, want at least %d", qs.BytesFetched, dims[0]*dims[1]*8)
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStreamSmallChunksManyRanks exercises the streamed path with frames
// crossing triple and box boundaries: several producers, several consumers,
// chunks so small every region splits into many segments.
func TestStreamSmallChunksManyRanks(t *testing.T) {
	dims := []int64{12, 10}
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "prod", Procs: 3, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("cons"))
			vol.ChunkBytes = 256 // a few elements per frame
			produceGrid(t, p, h5.NewFileAccessProps(vol), "tiny.h5", dims)
		}},
		{Name: "cons", Procs: 2, Main: func(p *mpi.Proc) {
			consumeGridColumns(t, p, distFapl(p, "prod"), "tiny.h5", dims)
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestZeroCopyGroupedDataset pins the dataset-pattern fix: SetZeroCopy("*",
// "*") must cover datasets inside groups (paths like /group1/grid), so a
// zero-copy write is shallow — mutating the caller's buffer afterwards is
// visible on read-back.
func TestZeroCopyGroupedDataset(t *testing.T) {
	vol := core.NewMetadataVOL(nil)
	vol.SetZeroCopy("*", "*")
	f, err := h5.CreateFile("zcg.h5", h5.NewFileAccessProps(vol))
	if err != nil {
		t.Fatal(err)
	}
	g, err := f.CreateGroup("group1")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := g.CreateDataset("grid", h5.U64, h5.NewSimple(8))
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]uint64, 8)
	if err := ds.Write(nil, nil, h5.Bytes(vals)); err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		vals[i] = uint64(100 + i) // mutate after the write
	}
	out := make([]uint64, 8)
	if err := ds.Read(nil, nil, h5.Bytes(out)); err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != uint64(100+i) {
			t.Fatalf("out[%d]=%d: zero-copy write was deep-copied for a grouped dataset", i, out[i])
		}
	}
	ds.Close()
	g.Close()
	f.Close()
}
