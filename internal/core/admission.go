// Admission control for the producer's serve path: a bounded concurrency
// semaphore in front of data-stream dispatch, a per-tenant weighted fair
// queue behind it, and load shedding when the queue (or the chunk pool)
// saturates.
//
// The scheduler is stride scheduling over tenants: each tenant queue carries
// a pass value advanced by strideK/weight per admitted request, and dispatch
// always picks the non-empty tenant with the smallest pass — so over any
// contended interval tenants are admitted in proportion to their weights,
// FIFO within a tenant, and an idle tenant accumulates no credit (its pass
// is forwarded to the current virtual time when it becomes busy again).
//
// Back-pressure is layered, cheapest refusal first:
//
//  1. pool pressure ≥ shedFrac of the byte budget → shed outright;
//  2. pool pressure ≥ squeezeFrac → the concurrency bound halves (streams
//     in flight are the only source of new chunks, so narrowing the window
//     lets the pool drain before shedding is needed);
//  3. queue longer than the per-tenant cap → shed;
//  4. queued longer than the queue deadline → shed that waiter.
//
// A shed is answered with rpc's overloaded reply carrying RetryAfter, so
// consumers back off instead of re-storming.
package core

import (
	"fmt"
	"sync"
	"time"

	"lowfive/internal/buf"
	"lowfive/metrics"
)

// ErrOverloaded reports that admission control refused a request: the
// producer is saturated and the consumer should retry after the hint.
type ErrOverloaded struct {
	// Tenant is the consumer task the refused request belonged to.
	Tenant string
	// RetryAfter is the backoff hint carried back in the shed reply.
	RetryAfter time.Duration
	// Reason says which limit refused: "queue-full", "queue-deadline",
	// "pool-pressure".
	Reason string
}

func (e *ErrOverloaded) Error() string {
	return fmt.Sprintf("lowfive: overloaded (%s, tenant %q, retry after %v)",
		e.Reason, e.Tenant, e.RetryAfter)
}

const (
	// strideK is the stride numerator; weights divide it, so relative
	// precision holds for weights up to ~1e4.
	strideK = 1 << 20

	// defaultQueueDeadline bounds how long a request may wait for admission
	// when the VOL does not configure one. A deadline must exist: a waiter
	// whose client died would otherwise be queued forever and wedge drain.
	defaultQueueDeadline = 50 * time.Millisecond

	// defaultMaxQueuedPerTenant caps each tenant's admission queue.
	defaultMaxQueuedPerTenant = 64

	// squeezeFrac and shedFrac are the pool-pressure thresholds, in tenths
	// of the chunk budget: at squeezeFrac the concurrency bound halves, at
	// shedFrac admission sheds outright.
	squeezeFrac = 7 // 70%
	shedFrac    = 9 // 90%
)

// admWaiter is one queued admission request. ready is closed exactly once —
// on admit (err nil) or on shed (err set first, under the admission lock).
type admWaiter struct {
	ready chan struct{}
	err   error
	enq   time.Time
}

// tenantQ is one tenant's FIFO plus its stride-scheduling state.
type tenantQ struct {
	name   string
	stride uint64
	pass   uint64
	q      []*admWaiter
}

// admission is the controller. One per VOL, shared by every intercomm's
// serve loop, so the concurrency bound and the fairness ledger are global
// across tenants.
type admission struct {
	maxInflight int
	deadline    time.Duration
	maxQueued   int
	weights     map[string]int
	pool        *buf.Pool

	mu       sync.Mutex
	idle     *sync.Cond // signaled when inflight+queued returns to zero
	inflight int
	nqueued  int
	vtime    uint64 // pass of the last dispatched tenant (virtual time)
	tenants  map[string]*tenantQ

	admitted int64
	shed     int64
	queuedEv int64 // requests that had to queue (did not fast-path)

	queueWait *metrics.Histogram // admission queue wait, µs

	mInflight *metrics.Gauge
	mQueued   *metrics.Gauge
	mAdmitted *metrics.Counter
	mShed     *metrics.Counter
}

// newAdmission builds the controller. reg may be nil (counters still work;
// only the registry surface is absent). pool may be nil (no pressure
// coupling).
func newAdmission(maxInflight int, deadline time.Duration, maxQueued int,
	weights map[string]int, pool *buf.Pool, reg *metrics.Registry) *admission {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if deadline <= 0 {
		deadline = defaultQueueDeadline
	}
	if maxQueued < 1 {
		maxQueued = defaultMaxQueuedPerTenant
	}
	a := &admission{
		maxInflight: maxInflight,
		deadline:    deadline,
		maxQueued:   maxQueued,
		weights:     weights,
		pool:        pool,
		tenants:     map[string]*tenantQ{},
		queueWait:   &metrics.Histogram{},
	}
	a.idle = sync.NewCond(&a.mu)
	if reg != nil {
		a.queueWait = reg.Histogram("core.admission.queue_us")
		a.mInflight = reg.Gauge("core.admission.inflight")
		a.mQueued = reg.Gauge("core.admission.queued")
		a.mAdmitted = reg.Counter("core.admission.admitted")
		a.mShed = reg.Counter("core.admission.shed")
	}
	return a
}

// retryAfter is the backoff hint carried in shed replies: the queue deadline
// — by construction the horizon over which the current congestion can clear.
func (a *admission) retryAfter() time.Duration { return a.deadline }

// effectiveMax is the concurrency bound under current pool pressure: the
// configured bound, halved (to at least 1) while Outstanding is past the
// squeeze threshold of the chunk budget.
func (a *admission) effectiveMax() int {
	m := a.maxInflight
	if a.pool != nil {
		if limit := a.pool.Limit(); limit > 0 && a.pool.Outstanding() >= limit*squeezeFrac/10 {
			m /= 2
		}
	}
	if m < 1 {
		m = 1
	}
	return m
}

// overPressure reports whether the chunk pool is so close to its budget
// that admitting any stream risks overflowing it.
func (a *admission) overPressure() bool {
	if a.pool == nil {
		return false
	}
	limit := a.pool.Limit()
	return limit > 0 && a.pool.Outstanding() >= limit*shedFrac/10
}

// tenant returns (creating on demand) the tenant's queue, forwarding its
// pass to the current virtual time so an idle tenant cannot bank credit.
func (a *admission) tenant(name string) *tenantQ {
	tq, ok := a.tenants[name]
	if !ok {
		w := a.weights[name]
		if w < 1 {
			w = 1
		}
		tq = &tenantQ{name: name, stride: strideK / uint64(w)}
		a.tenants[tq.name] = tq
	}
	if len(tq.q) == 0 && tq.pass < a.vtime {
		tq.pass = a.vtime
	}
	return tq
}

// acquire admits one request for tenant, queueing it under the weighted
// fair scheduler when the concurrency bound is reached. It blocks until
// admitted or shed; a shed returns *ErrOverloaded. Every successful acquire
// must be paired with a release.
func (a *admission) acquire(tenant string) error {
	a.mu.Lock()
	if a.overPressure() {
		a.shed++
		a.mShed.Inc()
		ra := a.retryAfter()
		a.mu.Unlock()
		return &ErrOverloaded{Tenant: tenant, RetryAfter: ra, Reason: "pool-pressure"}
	}
	if a.nqueued == 0 && a.inflight < a.effectiveMax() {
		a.inflight++
		a.admitted++
		a.mAdmitted.Inc()
		a.mInflight.Set(int64(a.inflight))
		a.mu.Unlock()
		a.queueWait.Record(0)
		return nil
	}
	tq := a.tenant(tenant)
	if len(tq.q) >= a.maxQueued {
		a.shed++
		a.mShed.Inc()
		ra := a.retryAfter()
		a.mu.Unlock()
		return &ErrOverloaded{Tenant: tenant, RetryAfter: ra, Reason: "queue-full"}
	}
	w := &admWaiter{ready: make(chan struct{}), enq: time.Now()}
	tq.q = append(tq.q, w)
	a.nqueued++
	a.queuedEv++
	a.mQueued.Set(int64(a.nqueued))
	a.mu.Unlock()

	t := time.NewTimer(a.deadline)
	select {
	case <-w.ready:
		t.Stop()
		if w.err == nil {
			a.queueWait.Observe(time.Since(w.enq))
		}
		return w.err
	case <-t.C:
	}
	a.mu.Lock()
	select {
	case <-w.ready:
		// Admitted (or shed by drain) in the race with the timer.
		a.mu.Unlock()
		if w.err == nil {
			a.queueWait.Observe(time.Since(w.enq))
		}
		return w.err
	default:
	}
	a.removeLocked(tenant, w)
	a.shed++
	a.mShed.Inc()
	ra := a.retryAfter()
	w.err = &ErrOverloaded{Tenant: tenant, RetryAfter: ra, Reason: "queue-deadline"}
	close(w.ready)
	a.maybeIdleLocked()
	a.mu.Unlock()
	return w.err
}

// removeLocked unlinks an expired waiter from its tenant's FIFO.
func (a *admission) removeLocked(tenant string, w *admWaiter) {
	tq := a.tenants[tenant]
	if tq == nil {
		return
	}
	for i, have := range tq.q {
		if have == w {
			tq.q = append(tq.q[:i], tq.q[i+1:]...)
			a.nqueued--
			a.mQueued.Set(int64(a.nqueued))
			return
		}
	}
}

// release returns one admission slot and dispatches queued waiters.
func (a *admission) release() {
	a.mu.Lock()
	a.inflight--
	a.mInflight.Set(int64(a.inflight))
	a.dispatchLocked()
	a.maybeIdleLocked()
	a.mu.Unlock()
}

// dispatchLocked admits queued waiters while slots are free: always the
// non-empty tenant with the smallest pass, advancing it by its stride.
func (a *admission) dispatchLocked() {
	for a.inflight < a.effectiveMax() {
		var next *tenantQ
		for _, tq := range a.tenants {
			if len(tq.q) == 0 {
				continue
			}
			if next == nil || tq.pass < next.pass ||
				(tq.pass == next.pass && tq.name < next.name) {
				next = tq
			}
		}
		if next == nil {
			return
		}
		w := next.q[0]
		next.q = next.q[1:]
		a.vtime = next.pass
		next.pass += next.stride
		a.nqueued--
		a.inflight++
		a.admitted++
		a.mAdmitted.Inc()
		a.mQueued.Set(int64(a.nqueued))
		a.mInflight.Set(int64(a.inflight))
		close(w.ready)
	}
}

// maybeIdleLocked wakes quiesce waiters when the controller has gone idle.
func (a *admission) maybeIdleLocked() {
	if a.inflight == 0 && a.nqueued == 0 {
		a.idle.Broadcast()
	}
}

// quiesce blocks until no request is in flight or queued — the end-of-serve
// barrier that guarantees no admitted stream goroutine outlives its session
// (and no pooled chunk is left in a half-written frame). Queued waiters
// resolve on their own: they are either dispatched by releases or shed by
// their queue deadline.
func (a *admission) quiesce() {
	a.mu.Lock()
	for a.inflight > 0 || a.nqueued > 0 {
		a.idle.Wait()
	}
	a.mu.Unlock()
}

// admissionStats is a snapshot of the controller's counters.
type admissionStats struct {
	admitted, shed, queued int64
	queueP99               time.Duration
}

func (a *admission) stats() admissionStats {
	a.mu.Lock()
	s := admissionStats{admitted: a.admitted, shed: a.shed, queued: a.queuedEv}
	a.mu.Unlock()
	p99 := a.queueWait.Snapshot().Quantile(0.99)
	s.queueP99 = time.Duration(p99 * float64(time.Microsecond))
	return s
}
