package core

import (
	"bytes"
	"math/rand"
	"testing"

	"lowfive/h5"
	"lowfive/internal/grid"
)

func buildSampleTree(t *testing.T) *FileNode {
	t.Helper()
	fn := NewFileNode("step1.h5")
	g1 := NewGroupNode("group1")
	g2 := NewGroupNode("group2")
	if err := fn.AddChild(g1); err != nil {
		t.Fatal(err)
	}
	if err := fn.AddChild(g2); err != nil {
		t.Fatal(err)
	}
	gridDS := NewDatasetNode("grid", h5.U64, h5.NewSimple(4, 4, 4))
	if err := g1.AddChild(gridDS); err != nil {
		t.Fatal(err)
	}
	particles := NewDatasetNode("particles", h5.F32, h5.NewSimple(100, 3))
	if err := g2.AddChild(particles); err != nil {
		t.Fatal(err)
	}
	return fn
}

func TestTreeStructure(t *testing.T) {
	fn := buildSampleTree(t)
	n, err := fn.Resolve("group1/grid")
	if err != nil {
		t.Fatal(err)
	}
	if n.Kind != h5.KindDataset || n.Path() != "/group1/grid" {
		t.Errorf("kind=%v path=%q", n.Kind, n.Path())
	}
	if _, err := fn.Resolve("group1/missing"); err == nil {
		t.Error("missing child should fail")
	}
	if len(fn.Children()) != 2 {
		t.Errorf("children=%d", len(fn.Children()))
	}
	// Duplicate names rejected.
	if err := fn.AddChild(NewGroupNode("group1")); err == nil {
		t.Error("duplicate child should fail")
	}
	// Parent links.
	if n.Parent.Name != "group1" || n.Parent.Parent != fn.Node {
		t.Error("parent links broken")
	}
}

func TestAddChildToDataset(t *testing.T) {
	ds := NewDatasetNode("d", h5.U8, h5.NewSimple(4))
	if err := ds.AddChild(NewGroupNode("g")); err == nil {
		t.Error("adding a child to a dataset should fail")
	}
}

func TestAttributes(t *testing.T) {
	n := NewGroupNode("g")
	n.SetAttribute(&Attribute{Name: "b", Type: h5.U8, Space: h5.NewSimple(1), Data: []byte{1}})
	n.SetAttribute(&Attribute{Name: "a", Type: h5.U8, Space: h5.NewSimple(1), Data: []byte{2}})
	n.SetAttribute(&Attribute{Name: "b", Type: h5.U8, Space: h5.NewSimple(1), Data: []byte{3}}) // replace
	names := n.AttributeNames()
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Errorf("names=%v (creation order expected, replacement keeps slot)", names)
	}
	a, ok := n.Attribute("b")
	if !ok || a.Data[0] != 3 {
		t.Errorf("replaced attribute: %+v", a)
	}
}

func TestRecordWriteDeepSnapshotsData(t *testing.T) {
	ds := NewDatasetNode("d", h5.U8, h5.NewSimple(8))
	fs := h5.NewSimple(8)
	fs.SelectHyperslab(h5.SelectSet, []int64{2}, []int64{3})
	buf := []byte{10, 11, 12}
	if err := ds.RecordWrite(nil, fs, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99 // user reuses the buffer; deep copy must be unaffected
	got, err := ds.ReadPacked(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0, 0, 10, 11, 12, 0, 0, 0}
	if !bytes.Equal(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestRecordWriteShallowSeesUserBuffer(t *testing.T) {
	ds := NewDatasetNode("d", h5.U8, h5.NewSimple(4))
	ds.Ownership = OwnShallow
	buf := []byte{1, 2, 3, 4}
	mem := h5.NewSimple(4)
	if err := ds.RecordWrite(mem, nil, buf); err != nil {
		t.Fatal(err)
	}
	// Mutation before first read is visible (shallow semantics).
	buf[0] = 42
	got, err := ds.ReadPacked(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 {
		t.Errorf("shallow write should reference the user buffer, got %v", got)
	}
	// After the first read the packed cache is fixed.
	buf[1] = 77
	got2, _ := ds.ReadPacked(nil)
	if got2[1] != 2 {
		t.Errorf("packed cache should be stable after first access, got %v", got2)
	}
}

func TestReadPackedOverwriteOrder(t *testing.T) {
	ds := NewDatasetNode("d", h5.U8, h5.NewSimple(6))
	fs1 := h5.NewSimple(6)
	fs1.SelectHyperslab(h5.SelectSet, []int64{0}, []int64{4})
	ds.RecordWrite(nil, fs1, []byte{1, 1, 1, 1})
	fs2 := h5.NewSimple(6)
	fs2.SelectHyperslab(h5.SelectSet, []int64{2}, []int64{4})
	ds.RecordWrite(nil, fs2, []byte{2, 2, 2, 2})
	got, _ := ds.ReadPacked(nil)
	want := []byte{1, 1, 2, 2, 2, 2}
	if !bytes.Equal(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestReadPackedSubSelection(t *testing.T) {
	ds := NewDatasetNode("d", h5.U16, h5.NewSimple(4, 4))
	whole := make([]uint16, 16)
	for i := range whole {
		whole[i] = uint16(i)
	}
	ds.RecordWrite(nil, nil, h5.Bytes(whole))
	sel := h5.NewSimple(4, 4)
	sel.SelectHyperslab(h5.SelectSet, []int64{1, 1}, []int64{2, 2})
	got, err := ds.ReadPacked(sel)
	if err != nil {
		t.Fatal(err)
	}
	vals := h5.View[uint16](got)
	want := []uint16{5, 6, 9, 10}
	for i := range want {
		if vals[i] != want[i] {
			t.Errorf("vals[%d]=%d want %d", i, vals[i], want[i])
		}
	}
}

func TestExtractRegions(t *testing.T) {
	ds := NewDatasetNode("d", h5.U8, h5.NewSimple(8))
	fs := h5.NewSimple(8)
	fs.SelectHyperslab(h5.SelectSet, []int64{0}, []int64{4})
	ds.RecordWrite(nil, fs, []byte{1, 2, 3, 4})
	q := h5.NewSimple(8)
	q.SelectHyperslab(h5.SelectSet, []int64{2}, []int64{4})
	pieces, err := ds.ExtractRegions(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(pieces) != 1 {
		t.Fatalf("pieces=%d", len(pieces))
	}
	wantBox := grid.NewBox([]int64{2}, []int64{2})
	if !pieces[0].Box.Equal(wantBox) || !bytes.Equal(pieces[0].Data, []byte{3, 4}) {
		t.Errorf("piece %v %v", pieces[0].Box, pieces[0].Data)
	}
}

func TestExtractRegionsNoOverlap(t *testing.T) {
	ds := NewDatasetNode("d", h5.U8, h5.NewSimple(8))
	fs := h5.NewSimple(8)
	fs.SelectHyperslab(h5.SelectSet, []int64{0}, []int64{2})
	ds.RecordWrite(nil, fs, []byte{1, 2})
	q := h5.NewSimple(8)
	q.SelectHyperslab(h5.SelectSet, []int64{5}, []int64{2})
	pieces, err := ds.ExtractRegions(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(pieces) != 0 {
		t.Errorf("expected no pieces, got %v", pieces)
	}
}

func TestWrittenBoxes(t *testing.T) {
	ds := NewDatasetNode("d", h5.U8, h5.NewSimple(4, 4))
	fs := h5.NewSimple(4, 4)
	fs.SelectHyperslab(h5.SelectSet, []int64{0, 0}, []int64{2, 4})
	ds.RecordWrite(nil, fs, make([]byte, 8))
	fs2 := h5.NewSimple(4, 4)
	fs2.SelectHyperslab(h5.SelectSet, []int64{2, 0}, []int64{2, 4})
	ds.RecordWrite(nil, fs2, make([]byte, 8))
	boxes := ds.WrittenBoxes()
	if len(boxes) != 2 {
		t.Fatalf("boxes=%v", boxes)
	}
	if !boxes[0].Equal(grid.NewBox([]int64{0, 0}, []int64{2, 4})) {
		t.Errorf("box0=%v", boxes[0])
	}
}

func TestTreeCodecRoundTrip(t *testing.T) {
	fn := buildSampleTree(t)
	n, _ := fn.Resolve("group1/grid")
	n.SetAttribute(&Attribute{Name: "units", Type: h5.NewString(2), Space: h5.NewSimple(1), Data: []byte("kg")})
	var e h5.Encoder
	EncodeTree(&e, fn.Node, nil)
	d := &h5.Decoder{Buf: e.Buf}
	got, err := DecodeTree(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := (&FileNode{Node: got}).Resolve("group1/grid")
	if err != nil {
		t.Fatal(err)
	}
	if !g.Type.Equal(h5.U64) || g.Space.NumPoints() != 64 {
		t.Errorf("decoded dataset %v %v", g.Type, g.Space)
	}
	a, ok := g.Attribute("units")
	if !ok || string(a.Data) != "kg" {
		t.Errorf("attribute lost: %+v", a)
	}
	p, err := (&FileNode{Node: got}).Resolve("group2/particles")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Type.Equal(h5.F32) {
		t.Errorf("particles type %v", p.Type)
	}
}

func TestTreeCodecCorruptInput(t *testing.T) {
	fn := buildSampleTree(t)
	var e h5.Encoder
	EncodeTree(&e, fn.Node, nil)
	for _, n := range []int{0, 1, 5, len(e.Buf) / 2} {
		d := &h5.Decoder{Buf: e.Buf[:n]}
		if _, err := DecodeTree(d, nil); err == nil && d.Err == nil {
			t.Errorf("truncation at %d should fail", n)
		}
	}
}

func TestAssemblePieces(t *testing.T) {
	sel := h5.NewSimple(8)
	sel.SelectHyperslab(h5.SelectSet, []int64{1}, []int64{6})
	pieces := []Piece{
		{Box: grid.NewBox([]int64{1}, []int64{3}), Data: []byte{1, 2, 3}},
		{Box: grid.NewBox([]int64{4}, []int64{3}), Data: []byte{4, 5, 6}},
	}
	got := AssemblePieces(sel, pieces, 1)
	want := []byte{1, 2, 3, 4, 5, 6}
	if !bytes.Equal(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestEncodeRegionsMatchesExtractRegions(t *testing.T) {
	// The single-copy serve path must produce exactly the wire format the
	// consumer's decoder expects, with the same pieces ExtractRegions finds.
	ds := NewDatasetNode("d", h5.U16, h5.NewSimple(8, 8))
	fs1 := h5.NewSimple(8, 8)
	fs1.SelectHyperslab(h5.SelectSet, []int64{0, 0}, []int64{4, 8})
	vals1 := make([]uint16, 32)
	for i := range vals1 {
		vals1[i] = uint16(i)
	}
	ds.RecordWrite(nil, fs1, h5.Bytes(vals1))
	fs2 := h5.NewSimple(8, 8)
	fs2.SelectHyperslab(h5.SelectSet, []int64{4, 0}, []int64{4, 8})
	vals2 := make([]uint16, 32)
	for i := range vals2 {
		vals2[i] = uint16(100 + i)
	}
	ds.RecordWrite(nil, fs2, h5.Bytes(vals2))

	q := h5.NewSimple(8, 8)
	q.SelectHyperslab(h5.SelectSet, []int64{2, 1}, []int64{4, 3})

	want, err := ds.ExtractRegions(q)
	if err != nil {
		t.Fatal(err)
	}
	var e h5.Encoder
	if err := ds.EncodeRegions(&e, q); err != nil {
		t.Fatal(err)
	}
	got, err := decodeDataResp(e.Buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("pieces: got %d want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Box.Equal(want[i].Box) {
			t.Errorf("piece %d box %v want %v", i, got[i].Box, want[i].Box)
		}
		if !bytes.Equal(got[i].Data, want[i].Data) {
			t.Errorf("piece %d data differs", i)
		}
	}
	// And the assembled result matches a direct packed read.
	assembled := AssemblePieces(q, got, 2)
	direct, _ := ds.ReadPacked(q)
	if !bytes.Equal(assembled, direct) {
		t.Error("assembled pieces differ from direct read")
	}
}

func TestProtocolDecodersRejectGarbage(t *testing.T) {
	// Property: arbitrary bytes fed to the response decoders and to the
	// request dispatcher return errors or empty results, never panic.
	rng := rand.New(rand.NewSource(7))
	vol := NewDistMetadataVOL(nil, nil) // nil comm: dispatcher must not need it for parsing
	for i := 0; i < 500; i++ {
		buf := make([]byte, rng.Intn(200))
		rng.Read(buf)
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("panic on %d bytes: %v", len(buf), rec)
				}
			}()
			decodeBoxesResp(buf)
			decodeDataResp(buf)
			vol.HandleRequestBytes(buf)
		}()
	}
}
