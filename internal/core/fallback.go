package core

import (
	"fmt"

	"lowfive/h5"
)

// File-transport fallback: when the in-memory index–serve–query path fails
// (a crashed producer rank, retries run dry), a consumer can still read the
// dataset from the parallel file system, provided the producer also wrote
// the file through to storage (passthru). This is the paper's dual-transport
// design degrading gracefully — the file path doubles as the recovery path.

// objectContainer is the slice of the file/group handle API the fallback
// needs to navigate to a dataset.
type objectContainer interface {
	GroupOpen(name string) (h5.ObjectHandle, error)
	DatasetOpen(name string) (h5.DatasetHandle, error)
}

// fallbackPieces reads the selected region of a dataset from the base
// connector's copy of the file, returning it as pieces in the same shape the
// in-memory query path produces (one piece per selection box), so assembly
// is identical on both paths.
func (v *DistMetadataVOL) fallbackPieces(file, dsetPath string, fileSpace *h5.Dataspace, elemSize int) ([]Piece, error) {
	if v == nil || v.base == nil {
		return nil, fmt.Errorf("lowfive: no base connector for file fallback")
	}
	fh, err := v.base.FileOpen(file, nil)
	if err != nil {
		return nil, fmt.Errorf("lowfive: file fallback open %q: %w", file, err)
	}
	defer fh.Close()

	segs := splitSegs(dsetPath)
	if len(segs) == 0 {
		return nil, fmt.Errorf("lowfive: file fallback: empty dataset path")
	}
	var cur objectContainer = fh
	var groups []h5.ObjectHandle
	defer func() {
		for _, g := range groups {
			g.Close()
		}
	}()
	for _, seg := range segs[:len(segs)-1] {
		g, err := cur.GroupOpen(seg)
		if err != nil {
			return nil, fmt.Errorf("lowfive: file fallback: %w", err)
		}
		groups = append(groups, g)
		cur = g
	}
	dh, err := cur.DatasetOpen(segs[len(segs)-1])
	if err != nil {
		return nil, fmt.Errorf("lowfive: file fallback: %w", err)
	}
	defer dh.Close()

	var pieces []Piece
	for _, rb := range fileSpace.SelectionBoxes() {
		sel := fileSpace.Clone()
		if err := sel.SelectBox(h5.SelectSet, rb); err != nil {
			return nil, fmt.Errorf("lowfive: file fallback: %w", err)
		}
		buf := make([]byte, rb.NumPoints()*int64(elemSize))
		if err := dh.Read(nil, sel, buf); err != nil {
			return nil, fmt.Errorf("lowfive: file fallback read %q: %w", dsetPath, err)
		}
		pieces = append(pieces, Piece{Box: rb, Data: buf})
	}
	return pieces, nil
}
