package core

import (
	"fmt"

	"lowfive/h5"
)

// Binary encoding of a metadata hierarchy (structure, types, spaces and
// attributes — not dataset triple data). Used by the native container file
// format (with per-node extras for data extents) and by the distributed VOL
// when a producer ships file metadata to a consumer at open time.

// NodeExtra hooks let callers append and parse extra per-node payload
// (e.g. the native format's dataset extents).
type NodeExtra struct {
	Encode func(e *h5.Encoder, n *Node)
	Decode func(d *h5.Decoder, n *Node)
}

// EncodeTree appends the hierarchy rooted at n.
func EncodeTree(e *h5.Encoder, n *Node, extra *NodeExtra) {
	e.PutString(n.Name)
	e.PutU8(uint8(n.Kind))
	if n.Kind == h5.KindDataset {
		h5.EncodeDatatype(e, n.Type)
		h5.EncodeDataspace(e, n.Space)
	}
	e.PutI64(int64(len(n.attrNames)))
	for _, an := range n.attrNames {
		a := n.attrs[an]
		e.PutString(a.Name)
		h5.EncodeDatatype(e, a.Type)
		h5.EncodeDataspace(e, a.Space)
		e.PutBytes(a.Data)
	}
	if extra != nil && extra.Encode != nil {
		extra.Encode(e, n)
	}
	e.PutI64(int64(len(n.children)))
	for _, c := range n.children {
		EncodeTree(e, c, extra)
	}
}

// maxTreeDepth bounds DecodeTree recursion so a corrupt encoding claiming
// absurd nesting cannot exhaust the stack.
const maxTreeDepth = 1024

// DecodeTree reads a hierarchy encoded by EncodeTree.
func DecodeTree(d *h5.Decoder, extra *NodeExtra) (*Node, error) {
	return decodeTreeDepth(d, extra, 0)
}

func decodeTreeDepth(d *h5.Decoder, extra *NodeExtra, depth int) (*Node, error) {
	if depth > maxTreeDepth {
		return nil, fmt.Errorf("lowfive: corrupt tree encoding (nesting deeper than %d)", maxTreeDepth)
	}
	name := d.String()
	kind := h5.ObjectKind(d.U8())
	var n *Node
	if kind == h5.KindDataset {
		dt := h5.DecodeDatatype(d)
		sp := h5.DecodeDataspace(d)
		n = NewDatasetNode(name, dt, sp)
	} else {
		n = NewGroupNode(name)
	}
	na := d.I64()
	// Each attribute costs at least 8 bytes (its name length prefix).
	if d.Err != nil || na < 0 || na > int64(len(d.Buf)-d.Pos)/8 {
		return nil, fmt.Errorf("lowfive: corrupt tree encoding (attribute count %d): %v", na, d.Err)
	}
	for i := int64(0); i < na; i++ {
		a := &Attribute{Name: d.String()}
		a.Type = h5.DecodeDatatype(d)
		a.Space = h5.DecodeDataspace(d)
		a.Data = append([]byte(nil), d.Bytes()...)
		if d.Err != nil {
			return nil, fmt.Errorf("lowfive: corrupt attribute encoding: %v", d.Err)
		}
		n.SetAttribute(a)
	}
	if extra != nil && extra.Decode != nil {
		extra.Decode(d, n)
	}
	nc := d.I64()
	// Each child costs at least 8 bytes (its name length prefix).
	if d.Err != nil || nc < 0 || nc > int64(len(d.Buf)-d.Pos)/8 {
		return nil, fmt.Errorf("lowfive: corrupt tree encoding (child count %d): %v", nc, d.Err)
	}
	for i := int64(0); i < nc; i++ {
		c, err := decodeTreeDepth(d, extra, depth+1)
		if err != nil {
			return nil, err
		}
		if err := n.AddChild(c); err != nil {
			return nil, err
		}
	}
	return n, nil
}
