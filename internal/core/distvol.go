package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"lowfive/h5"
	"lowfive/internal/buf"
	"lowfive/internal/grid"
	"lowfive/internal/rpc"
	"lowfive/internal/stage"
	"lowfive/metrics"
	"lowfive/mpi"
	"lowfive/trace"
)

// DistMetadataVOL is the top VOL class (§III-A-c): it extends the metadata
// VOL with distributed producer/consumer data exchange over MPI
// intercommunicators, implementing the index–serve–query redistribution of
// §III-B (Algorithms 1–3).
//
// Roles are implicit, as in LowFive: a task that creates a file matching a
// data intercomm pattern is a producer for it; closing that file builds the
// distributed index and serves consumer queries until every consumer rank
// has signaled done. A task that opens a file it does not hold locally, and
// that matches a data intercomm pattern, is a consumer: the open fetches the
// file's metadata from its partner producer rank, reads run Algorithm 3, and
// the close sends done.
type DistMetadataVOL struct {
	*MetadataVOL

	local *mpi.Comm

	intercomms   []*mpi.Intercomm
	dataPatterns []icPattern

	// ServeOnClose makes a producer's file close trigger Serve
	// automatically (the LowFive default). When false, the producer must
	// call Serve explicitly — this is the paper's future-work knob for
	// overlapping production with serving.
	ServeOnClose bool

	// CallTimeout bounds each consumer-side RPC attempt. Zero (the default)
	// keeps the original fail-stop behavior: calls block until answered or
	// the peer crashes. Setting it enables retries on lost or corrupted
	// messages and the failover/fallback paths below.
	CallTimeout time.Duration
	// CallRetries is the number of resends after a timed-out attempt.
	CallRetries int
	// CallBackoff is the wait before the first retry, doubling per retry.
	CallBackoff time.Duration
	// CallBudget bounds each consumer-side call end to end, however many
	// attempts the retry schedule would still allow; the deadline travels in
	// the request envelope so producers reject work nobody awaits. Zero
	// means per-attempt timeouts only.
	CallBudget time.Duration
	// HedgeDelay enables tail-latency hedging of queries that any of
	// several producer ranks can answer (metadata opens task-wide, box
	// queries across index replicas when ReplicationFactor > 1): if the
	// primary has not answered within this delay, the same request races a
	// replica and the first response wins. Per-rank response EWMAs pick the
	// hedge target and proactively demote a straggling shard to hedge
	// before its timeout. Zero disables hedging. Requires CallTimeout.
	HedgeDelay time.Duration

	// MaxInflightServes enables producer-side admission control on streamed
	// data queries: at most this many streams are dispatched concurrently
	// (no longer serialized under serveMu), excess requests wait in a
	// per-tenant weighted fair queue, and a full queue or an expired queue
	// deadline sheds the request with an overloaded reply carrying a
	// RetryAfter hint. Zero (the default) keeps the original fully
	// serialized, never-shedding serve path.
	MaxInflightServes int
	// TenantWeights sets the fair-queue share of each tenant (consumer
	// task), by the name registered with SetTenant. Admission under
	// contention is proportional to weight; unlisted tenants weigh 1.
	TenantWeights map[string]int
	// QueueDeadline bounds how long a request may wait for admission before
	// it is shed; it doubles as the RetryAfter hint in shed replies. Zero
	// defaults to 50ms (a deadline must exist, or an abandoned waiter could
	// wedge the serve teardown).
	QueueDeadline time.Duration
	// MaxQueuedPerTenant caps each tenant's admission queue; a request
	// arriving to a full queue is shed immediately. Zero defaults to 64.
	MaxQueuedPerTenant int
	// ShedRetries is how many overloaded replies a consumer-side call
	// absorbs (backing off by the carried RetryAfter) before giving up with
	// the typed overload error. Zero fails on the first shed.
	ShedRetries int
	// BreakerThreshold arms a per-(producer rank, method) circuit breaker on
	// the consumer side: after this many consecutive failures (sheds,
	// timeouts, crashes) of one request kind against one rank, such calls to
	// it fast-fail until BreakerCooldown elapses and a half-open probe
	// succeeds. Zero disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is the breaker's open interval before a half-open
	// probe. Zero defaults to 25ms.
	BreakerCooldown time.Duration

	// ReplicationFactor stores each distributed-index entry on this many
	// consecutive ranks of the producer task ((owner+k) mod size), so a
	// consumer can re-route a redirect query around a failed owner. 0 or 1
	// means no replication. Producer and consumer must agree on the value.
	ReplicationFactor int

	// ChunkBytes is the frame size of streamed data responses. Zero uses
	// the default (buf.DefaultChunkBytes, 1 MiB); other sizes draw from a
	// process-wide pool shared by every vol configured with that size.
	// Smaller chunks bound peak transport memory tighter at the cost of
	// more per-frame overhead.
	ChunkBytes int
	// ChunkPool overrides the pool streamed frames are drawn from (mainly
	// for tests asserting the pool's high-water mark). Takes precedence
	// over ChunkBytes.
	ChunkPool *buf.Pool

	// WaitForRestart makes consumer-side RPC clients keep polling when a
	// producer rank has crashed, instead of failing over immediately: under
	// a supervised workflow the producer may be relaunched, and retried
	// requests reach the fresh incarnation. The retry budget
	// (CallTimeout × CallRetries with backoff) bounds how long a restart
	// may take before the replica/file fallbacks kick in anyway.
	WaitForRestart bool

	// PersistOwnership records each producer rank's written regions into
	// the container file (as __lf_own_<rank> root attributes) when a served
	// file also passes through to storage. A restarted producer rank uses
	// them to Rejoin with its exact pre-crash ownership layout.
	PersistOwnership bool

	// Metrics, when set, records this rank's layer instruments: consumer
	// query latency ("core.query.latency_us") and producer serve latency
	// ("core.serve.latency_us") histograms, per-epoch served bytes/chunks
	// histograms, straggler demotions, and the rpc.client.*/rpc.server.*
	// instruments of every client and server this VOL creates.
	Metrics *metrics.Registry

	// Flight, when set, records every consumer data query slower than the
	// recorder's threshold as a structured SlowQuery — box, producer ranks,
	// attempts, hedging, bytes, and the per-phase breakdown (owner lookup
	// versus stream drain) — into a bounded ring for post-hoc dumps.
	Flight *metrics.FlightRecorder

	// Stage, when set, switches the VOL into staging mode: producer file
	// closes publish epochs into the append-only replicated chunk log
	// instead of serving RPC sessions, consumer opens and reads resolve
	// epoch → log offsets against the store, and restart recovery is log
	// replay (StageReplay) instead of Reindex/Rejoin re-serve.
	Stage *stage.Store
	// StageSubscriber is this rank's subscriber identity for staging
	// watermark acks (e.g. "task/rank"). Empty disables ack/GC
	// participation — reads then never advance the retention watermark.
	StageSubscriber string

	// OnServe, when set, is called with the file name every time this rank
	// starts serving a file (Serve or ServeAsync) — the supervised workflow
	// runner records served files so a restarted task knows what to
	// re-publish.
	OnServe func(name string)

	// OnDoneAcked, when set, is called on the consumer side each time a
	// done notification for a file has been acknowledged by one producer
	// rank. A supervised runner records these so a restarted producer can
	// credit dones that will never be resent (see CreditDone).
	OnDoneAcked func(ic *mpi.Intercomm, name string, producerRank int)

	// serveMu serializes request handling when several intercommunicators
	// are served concurrently (fan-out).
	serveMu sync.Mutex

	indexes map[string]map[string][]indexEntry // file -> dataset path -> entries

	// parked holds consumer requests for files this producer does not have
	// yet — e.g. a consumer racing ahead to the next timestep's file while
	// we are still serving the current one. They are replayed at the start
	// of each subsequent serve session.
	parked map[*mpi.Intercomm][]parkedReq

	// servers holds the per-intercommunicator receive loops that multiplex
	// (possibly overlapping) serve sessions.
	servers map[*mpi.Intercomm]*icServer

	// clients holds one RPC client per intercommunicator, shared across
	// file opens: the server deduplicates requests by (source rank,
	// sequence number), so all calls a rank makes over one intercomm must
	// draw from a single monotonic sequence.
	clients map[*mpi.Intercomm]*rpc.Client

	// health tracks per-producer-rank response-time EWMAs for each
	// intercommunicator this rank queries over, feeding hedge-target choice
	// and straggler demotion.
	health map[*mpi.Intercomm]*rankHealth

	// tenants names the consumer task behind each intercommunicator for
	// fair queueing; unnamed intercomms share the "default" tenant.
	tenants map[*mpi.Intercomm]string

	// adm is the producer-side admission controller, created lazily on the
	// first admitted request when MaxInflightServes > 0.
	admOnce sync.Once
	adm     *admission

	stats ServeStats

	// qmu guards qstats: the consumer side of a rank is single-threaded,
	// but stats may be read while an async serve session is still running.
	qmu    sync.Mutex
	qstats QueryStats

	// Instrument handles resolved once from Metrics, so the serve and query
	// paths never touch the registry lock. All nil (recording no-ops)
	// when Metrics is unset.
	instOnce    sync.Once
	mQueryLat   *metrics.Histogram
	mServeLat   *metrics.Histogram
	mEpochBytes *metrics.Histogram
	mEpochChunk *metrics.Histogram
	mDemotions  *metrics.Counter
}

// instruments lazily resolves the VOL's instrument handles. Metrics is
// assigned after construction, so resolution happens on first use instead
// of in NewDistMetadataVOL.
func (v *DistMetadataVOL) instruments() {
	v.instOnce.Do(func() {
		if v.Metrics == nil {
			return
		}
		v.mQueryLat = v.Metrics.Histogram("core.query.latency_us")
		v.mServeLat = v.Metrics.Histogram("core.serve.latency_us")
		v.mEpochBytes = v.Metrics.Histogram("core.serve.epoch_bytes")
		v.mEpochChunk = v.Metrics.Histogram("core.serve.epoch_chunks")
		v.mDemotions = v.Metrics.Counter("core.query.demotions")
	})
}

// ServeStats counts this rank's producer-side serve activity — the
// finer-grain communication profiling the paper lists as future work.
type ServeStats struct {
	// MetadataRequests is the number of file-metadata requests answered.
	MetadataRequests int64
	// BoxQueries is the number of redirect (intersection) queries answered
	// from the distributed index (Alg. 2 lines 4-8).
	BoxQueries int64
	// DataQueries is the number of data queries served (Alg. 2 lines 9-14).
	DataQueries int64
	// BytesServed is the total payload bytes of data responses.
	BytesServed int64
	// DoneMessages is the number of consumer done notifications received.
	DoneMessages int64
	// ParkedRequests counts requests deferred to a later serve session.
	ParkedRequests int64
	// ChunksServed is the number of stream frames sent for data queries.
	ChunksServed int64
	// Shed counts requests refused by admission control (overloaded reply
	// sent instead of a stream).
	Shed int64
	// Queued counts admitted requests that had to wait in the fair queue
	// (did not fast-path past an idle controller).
	Queued int64
	// QueueP99 is the 99th-percentile admission queue wait.
	QueueP99 time.Duration
}

// QueryStats counts this rank's consumer-side query activity (Alg. 3) —
// the mirror of ServeStats that makes both ends of an exchange measurable.
type QueryStats struct {
	// MetadataFetches is the number of remote file opens (metadata
	// requests issued to a producer rank).
	MetadataFetches int64
	// BoxQueries is the number of redirect queries issued to the owners of
	// intersecting common-decomposition blocks (Alg. 3 step 1).
	BoxQueries int64
	// DataQueries is the number of data requests issued to producers that
	// hold intersecting boxes (Alg. 3 step 2).
	DataQueries int64
	// BytesFetched is the total payload bytes of data responses received.
	BytesFetched int64
	// WaitTime is the cumulative wall time this rank spent blocked waiting
	// for producers to answer (serve-wait time).
	WaitTime time.Duration
	// Failovers counts queries re-routed to a replica owner or an alternate
	// producer rank after the primary failed.
	Failovers int64
	// FileFallbacks counts reads and opens that degraded to the parallel
	// file system after the in-memory transport failed.
	FileFallbacks int64
	// ChunksFetched is the number of stream frames received for data
	// queries.
	ChunksFetched int64
	// Retries counts RPC attempts resent beyond each call's first send.
	Retries int64
	// HedgedCalls counts queries whose hedge request was actually sent
	// (the primary missed the hedge delay).
	HedgedCalls int64
	// HedgeWins counts hedged queries the hedge rank answered first.
	HedgeWins int64
	// StragglersDemoted counts queries routed away from their preferred
	// rank because its response EWMA marked it a straggler.
	StragglersDemoted int64
	// Sheds counts overloaded (load-shed) replies this rank's queries
	// absorbed from saturated producers.
	Sheds int64
	// BreakerOpens counts circuit-breaker transitions to open across this
	// rank's RPC clients.
	BreakerOpens int64
}

type parkedReq struct {
	src int
	seq uint64
	req []byte
}

type icPattern struct {
	pat  string
	role Role
	ics  []int // indices into intercomms
}

// Role restricts which operations a data intercommunicator registration
// applies to — needed by pipeline tasks that both consume a pattern from an
// upstream task and produce it for a downstream one.
type Role uint8

const (
	// RoleBoth serves created files and opens missing ones (the default).
	RoleBoth Role = iota
	// RoleProduce only serves files this task creates.
	RoleProduce
	// RoleConsume only opens files from the remote task.
	RoleConsume
)

type indexEntry struct {
	box grid.Box
	src int // producer rank that wrote the box
}

// NewDistMetadataVOL builds the distributed VOL for one rank of a task.
// local is the task's communicator; base (optional) handles file passthru.
func NewDistMetadataVOL(local *mpi.Comm, base h5.Connector) *DistMetadataVOL {
	return &DistMetadataVOL{
		MetadataVOL:  NewMetadataVOL(base),
		local:        local,
		ServeOnClose: true,
		indexes:      map[string]map[string][]indexEntry{},
		parked:       map[*mpi.Intercomm][]parkedReq{},
	}
}

// ConnectorName implements h5.Connector.
func (v *DistMetadataVOL) ConnectorName() string { return "lowfive-dist-metadata" }

// track returns this rank's recording track (nil when the world has no
// tracer), so index/serve/query phases appear on the same per-rank timeline
// as the mpi operations they are built from.
func (v *DistMetadataVOL) track() *trace.Track {
	if v.local == nil {
		return nil
	}
	return v.local.Track()
}

// SetIntercomm routes files matching the glob pattern over the given
// intercommunicators in both roles: files this task creates are served to
// the remote task (fan-out over all of them); files it opens are fetched
// from the first.
func (v *DistMetadataVOL) SetIntercomm(filePat string, ics ...*mpi.Intercomm) {
	v.SetIntercommRole(filePat, RoleBoth, ics...)
}

// SetIntercommRole is the direction-aware registration used by pipeline
// tasks that consume a pattern from an upstream task (RoleConsume) and
// produce the same pattern for a downstream one (RoleProduce).
func (v *DistMetadataVOL) SetIntercommRole(filePat string, role Role, ics ...*mpi.Intercomm) {
	var idx []int
	for _, ic := range ics {
		found := -1
		for i, have := range v.intercomms {
			if have == ic {
				found = i
				break
			}
		}
		if found < 0 {
			v.intercomms = append(v.intercomms, ic)
			found = len(v.intercomms) - 1
		}
		idx = append(idx, found)
	}
	v.dataPatterns = append(v.dataPatterns, icPattern{pat: filePat, role: role, ics: idx})
}

// SetTenant names the consumer task behind an intercommunicator for
// admission control: requests arriving over ic are queued (and weighted,
// via TenantWeights) under this tenant. Unnamed intercomms share the
// "default" tenant. Call before serving starts.
func (v *DistMetadataVOL) SetTenant(ic *mpi.Intercomm, name string) {
	v.serveMu.Lock()
	if v.tenants == nil {
		v.tenants = map[*mpi.Intercomm]string{}
	}
	v.tenants[ic] = name
	v.serveMu.Unlock()
}

// tenantOf returns the tenant name of an intercommunicator.
func (v *DistMetadataVOL) tenantOf(ic *mpi.Intercomm) string {
	v.serveMu.Lock()
	defer v.serveMu.Unlock()
	if name, ok := v.tenants[ic]; ok {
		return name
	}
	return "default"
}

// admission returns the producer-side admission controller, or nil when
// MaxInflightServes is unset (the legacy serialized serve path).
func (v *DistMetadataVOL) admission() *admission {
	if v.MaxInflightServes <= 0 {
		return nil
	}
	v.admOnce.Do(func() {
		v.adm = newAdmission(v.MaxInflightServes, v.QueueDeadline,
			v.MaxQueuedPerTenant, v.TenantWeights, v.chunkPool(), v.Metrics)
	})
	return v.adm
}

// fileIntercomms returns the intercomms registered for a file name in a
// role compatible with want.
func (v *DistMetadataVOL) fileIntercomms(name string, want Role) []*mpi.Intercomm {
	var out []*mpi.Intercomm
	for _, p := range v.dataPatterns {
		if p.role != RoleBoth && want != RoleBoth && p.role != want {
			continue
		}
		if matchPattern(p.pat, name) {
			for _, i := range p.ics {
				out = append(out, v.intercomms[i])
			}
		}
	}
	return out
}

// FileCreate implements h5.Connector: it creates the file through the
// metadata VOL and, if the file is exchanged over an intercomm, hooks the
// close to index + serve.
func (v *DistMetadataVOL) FileCreate(name string, fapl *h5.FileAccessProps) (h5.FileHandle, error) {
	fh, err := v.MetadataVOL.FileCreate(name, fapl)
	if err != nil {
		return nil, err
	}
	mf := fh.(*metaFile)
	if ics := v.fileIntercomms(name, RoleProduce); len(ics) > 0 && mf.node != nil {
		mf.closeHook = func(f *metaFile) error {
			if !v.ServeOnClose {
				return nil
			}
			if v.Stage != nil {
				return v.stagePublish(f.name)
			}
			return v.Serve(f.name)
		}
	}
	return mf, nil
}

// FileOpen implements h5.Connector: local in-memory files win; otherwise a
// file matching a data intercomm pattern is opened remotely from the
// producer task; otherwise the open passes through to the base connector.
func (v *DistMetadataVOL) FileOpen(name string, fapl *h5.FileAccessProps) (h5.FileHandle, error) {
	if fn, ok := v.File(name); ok && v.memoryOn(name) {
		return &metaFile{vol: v.MetadataVOL, name: name, node: fn.Node}, nil
	}
	if ics := v.fileIntercomms(name, RoleConsume); len(ics) > 0 {
		if v.Stage != nil {
			return v.openStaged(name, ics[0])
		}
		return v.openRemote(name, ics[0])
	}
	return v.MetadataVOL.FileOpen(name, fapl)
}

// --- producer side ---

// Serve builds the distributed index for the named local file (Alg. 1) and
// answers consumer queries (Alg. 2) until every consumer rank on every
// intercomm registered for the file has sent done. It must be called
// collectively by all producer ranks (file close does this automatically
// when ServeOnClose is set).
func (v *DistMetadataVOL) Serve(name string) error {
	fn, ok := v.File(name)
	if !ok {
		return fmt.Errorf("lowfive: Serve(%q): file not in memory", name)
	}
	ics := v.fileIntercomms(name, RoleProduce)
	if len(ics) == 0 {
		return fmt.Errorf("lowfive: Serve(%q): no intercomm registered", name)
	}
	if err := v.buildIndex(fn); err != nil {
		return err
	}
	if err := v.persistOwnership(fn); err != nil {
		return err
	}
	if v.OnServe != nil {
		v.OnServe(name)
	}
	// Serve all intercomms concurrently (fan-out); request handling is
	// serialized by serveMu, preserving single-threaded rank semantics.
	before := v.Stats()
	var wg sync.WaitGroup
	errs := make([]error, len(ics))
	for i, ic := range ics {
		wg.Add(1)
		go func(i int, ic *mpi.Intercomm) {
			defer wg.Done()
			errs[i] = v.serveIntercomm(name, ic)
		}(i, ic)
	}
	wg.Wait()
	// With admission control on, wait out any still-running or queued
	// stream goroutines before declaring the epoch done: no admitted stream
	// may outlive its session, and no pooled chunk may be left in a
	// half-written frame.
	if adm := v.admission(); adm != nil {
		adm.quiesce()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	v.recordEpoch(before)
	return nil
}

// recordEpoch folds one completed serve session into the per-epoch
// histograms: the deltas of the serve counters across the session are what
// this epoch actually moved.
func (v *DistMetadataVOL) recordEpoch(before ServeStats) {
	if v.Metrics == nil {
		return
	}
	v.instruments()
	after := v.Stats()
	v.mEpochBytes.Record(after.BytesServed - before.BytesServed)
	v.mEpochChunk.Record(after.ChunksServed - before.ChunksServed)
}

// ServeHandle tracks an asynchronous serve session started by ServeAsync.
type ServeHandle struct {
	done chan error
}

// Wait blocks until the serve session completes (every consumer rank has
// sent done) and returns its error.
func (h *ServeHandle) Wait() error { return <-h.done }

// ServeAsync is the paper's future-work overlap: it builds the index
// synchronously (a collective over the producer task, so all producer
// ranks must call it together) and then serves consumers from a background
// goroutine, returning immediately so the producer can compute — and even
// write the next timestep's file — while the previous one is consumed.
// Call Wait before mutating or removing the served file's data; with
// shallow (zero-copy) datasets that includes the user buffers.
func (v *DistMetadataVOL) ServeAsync(name string) (*ServeHandle, error) {
	fn, ok := v.File(name)
	if !ok {
		return nil, fmt.Errorf("lowfive: ServeAsync(%q): file not in memory", name)
	}
	ics := v.fileIntercomms(name, RoleProduce)
	if len(ics) == 0 {
		return nil, fmt.Errorf("lowfive: ServeAsync(%q): no intercomm registered", name)
	}
	// The index exchange stays synchronous: it is collective over the
	// producer ranks, and overlapping two collectives would reorder them.
	if err := v.buildIndex(fn); err != nil {
		return nil, err
	}
	if err := v.persistOwnership(fn); err != nil {
		return nil, err
	}
	if v.OnServe != nil {
		v.OnServe(name)
	}
	h := &ServeHandle{done: make(chan error, 1)}
	before := v.Stats()
	go func() {
		var wg sync.WaitGroup
		errs := make([]error, len(ics))
		for i, ic := range ics {
			wg.Add(1)
			go func(i int, ic *mpi.Intercomm) {
				defer wg.Done()
				errs[i] = v.serveIntercomm(name, ic)
			}(i, ic)
		}
		wg.Wait()
		if adm := v.admission(); adm != nil {
			adm.quiesce()
		}
		var first error
		for _, err := range errs {
			if err != nil {
				first = err
				break
			}
		}
		if first == nil {
			v.recordEpoch(before)
		}
		h.done <- first
	}()
	return h, nil
}

// buildIndex implements Algorithm 1: every producer rank sends the bounding
// box of each written data space to the ranks owning intersecting blocks of
// the common decomposition; owners record (box, source).
func (v *DistMetadataVOL) buildIndex(fn *FileNode) error {
	if tr := v.track(); tr != nil {
		t0 := tr.Begin()
		defer func() { tr.End(t0, "core", "index", trace.Str("file", fn.FileName)) }()
	}
	n := v.local.Size()
	repl := v.ReplicationFactor
	if repl < 1 {
		repl = 1
	}
	if repl > n {
		repl = n
	}
	out := make([]*h5.Encoder, n)
	for i := range out {
		out[i] = &h5.Encoder{}
	}
	var walk func(node *Node)
	walk = func(node *Node) {
		if node.Kind == h5.KindDataset {
			dc := grid.CommonDecomposition(node.Space.Dims(), n)
			path := node.Path()
			for _, bb := range node.WrittenBoxes() {
				for _, blk := range dc.Intersecting(bb) {
					// With replication, each entry also goes to the next
					// repl-1 ranks, the failover targets consumers try
					// when the block's primary owner is unreachable.
					for k := 0; k < repl; k++ {
						e := out[(blk+k)%n]
						e.PutString(path)
						encodeBox(e, bb)
					}
				}
			}
		}
		for _, c := range node.Children() {
			walk(c)
		}
	}
	walk(fn.Node)
	msgs := make([][]byte, n)
	for i, e := range out {
		msgs[i] = e.Buf
	}
	// The index exchange is the collective synchronization the paper
	// blames for part of LowFive's overhead vs DataSpaces (§IV-B-d).
	in, err := v.local.Alltoall(msgs)
	if err != nil {
		return err
	}
	idx := map[string][]indexEntry{}
	for src, buf := range in {
		d := &h5.Decoder{Buf: buf}
		for d.Pos < len(d.Buf) {
			path := d.String()
			box := decodeBox(d)
			if d.Err != nil {
				return fmt.Errorf("lowfive: corrupt index message from rank %d: %v", src, d.Err)
			}
			idx[path] = append(idx[path], indexEntry{box: box, src: src})
		}
	}
	v.serveMu.Lock()
	v.indexes[fn.FileName] = idx
	v.serveMu.Unlock()
	return nil
}

// icServer multiplexes serve sessions for one intercommunicator: a single
// receive loop dispatches requests (for any file) and routes done messages
// to the session that is waiting for them, so an asynchronous serve of one
// timestep's file can overlap the next one's session without the two
// stealing each other's messages.
type icServer struct {
	ic  *mpi.Intercomm
	srv *rpc.Server

	mu          sync.Mutex
	sessions    map[string]*serveSession
	pendingDone map[string]int // dones that arrived before their session
	running     bool
}

type serveSession struct {
	want, got int
	finished  chan struct{}
}

func (v *DistMetadataVOL) icServerFor(ic *mpi.Intercomm) *icServer {
	v.serveMu.Lock()
	defer v.serveMu.Unlock()
	if v.servers == nil {
		v.servers = map[*mpi.Intercomm]*icServer{}
	}
	s, ok := v.servers[ic]
	if !ok {
		s = &icServer{
			ic:          ic,
			srv:         &rpc.Server{IC: ic, Metrics: v.Metrics},
			sessions:    map[string]*serveSession{},
			pendingDone: map[string]int{},
		}
		v.servers[ic] = s
	}
	return s
}

// serveIntercomm implements Algorithm 2 for one intercommunicator: answer
// redirect and data queries until all remote ranks sent done for this file.
// Requests referencing files this rank does not have yet (a consumer racing
// ahead to a future timestep) are parked and replayed when they become
// answerable.
func (v *DistMetadataVOL) serveIntercomm(name string, ic *mpi.Intercomm) error {
	if tr := v.track(); tr != nil {
		t0 := tr.Begin()
		defer func() { tr.End(t0, "core", "serve", trace.Str("file", name)) }()
	}
	s := v.icServerFor(ic)

	// Register the session, consuming any dones that arrived early.
	s.mu.Lock()
	sess := &serveSession{want: ic.RemoteSize(), finished: make(chan struct{})}
	sess.got = s.pendingDone[name]
	delete(s.pendingDone, name)
	if sess.got >= sess.want {
		close(sess.finished)
		s.mu.Unlock()
		return nil
	}
	s.sessions[name] = sess
	startLoop := !s.running
	if startLoop {
		s.running = true
	}
	s.mu.Unlock()

	if startLoop {
		go v.serveLoop(s)
	}
	// The serve loop runs on a helper goroutine; an injected crash of this
	// rank fires there, so also watch the world's failure signal — otherwise
	// the crashed rank's main goroutine would wait here forever.
	w := v.local.World()
	self := v.local.WorldRank(v.local.Rank())
	select {
	case <-sess.finished:
	case <-w.FailedChan(self):
		return &mpi.RankFailedError{Rank: self}
	}
	if w.RankFailed(self) {
		return &mpi.RankFailedError{Rank: self}
	}
	return nil
}

// serveLoop is the single receiver for an intercommunicator. It replays
// parked requests, then receives until every registered session has
// finished, exiting so a blocked receive never outlives the rank. A crash
// of this rank (or a world abort) unwinds here: the loop releases every
// waiting session instead of killing the process with an unhandled panic.
func (v *DistMetadataVOL) serveLoop(s *icServer) {
	defer func() {
		if r := recover(); r != nil {
			if !mpi.IsHaltPanic(r) {
				panic(r)
			}
			s.mu.Lock()
			for name, sess := range s.sessions {
				delete(s.sessions, name)
				close(sess.finished)
			}
			s.running = false
			s.mu.Unlock()
		}
	}()
	// Replay requests parked by earlier loops.
	v.serveMu.Lock()
	replay := v.parked[s.ic]
	v.parked[s.ic] = nil
	v.serveMu.Unlock()
	for _, pr := range replay {
		v.processRequest(s, pr.src, pr.seq, pr.req)
	}
	for {
		s.mu.Lock()
		active := len(s.sessions)
		if active == 0 {
			s.running = false
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		src, seq, req := s.srv.Recv()
		v.processRequest(s, src, seq, req)
	}
}

func (v *DistMetadataVOL) processRequest(s *icServer, src int, seq uint64, req []byte) {
	if len(req) > 0 && req[0] == opDataStream {
		// Streamed responses write frames directly; they never park (a
		// missing file streams empty, like the scalar zero-piece response).
		if adm := v.admission(); adm != nil {
			// Admission-controlled path: dispatch on a goroutine so the
			// receive loop keeps draining (and shedding) while up to
			// MaxInflightServes streams run concurrently. Goroutine count is
			// bounded by the requests actually in flight: each one either
			// holds an admission slot, waits in a capped tenant queue, or
			// sheds within the queue deadline.
			go v.serveDataStreamAdmitted(adm, s, src, seq, req)
			return
		}
		v.serveDataStream(s, src, seq, req)
		return
	}
	v.serveMu.Lock()
	resp, isDone, file, park := v.handleRequest(req)
	if park {
		v.parked[s.ic] = append(v.parked[s.ic], parkedReq{src: src, seq: seq, req: req})
		v.stats.ParkedRequests++
		v.serveMu.Unlock()
		return
	}
	v.serveMu.Unlock()
	if isDone {
		// Acknowledge before the session bookkeeping: a fault-tolerant
		// consumer blocks on this ack, and the server's dedup cache makes a
		// retried done count once.
		s.srv.Respond(src, seq, []byte{1})
		s.mu.Lock()
		if sess, ok := s.sessions[file]; ok {
			sess.got++
			if sess.got >= sess.want {
				delete(s.sessions, file)
				close(sess.finished)
			}
		} else {
			// Done for a session not yet registered (another rank's close
			// raced ahead); credit it when the session starts.
			s.pendingDone[file]++
		}
		s.mu.Unlock()
		return
	}
	if resp != nil {
		s.srv.Respond(src, seq, resp)
	}
}

// handleRequest dispatches one consumer request. A nil response means
// one-way (done). The returned file name is meaningful for done messages.
// park=true means the request refers to a file this rank does not have yet.
func (v *DistMetadataVOL) handleRequest(req []byte) (resp []byte, isDone bool, file string, park bool) {
	d := &h5.Decoder{Buf: req}
	op := d.U8()
	file = d.String()
	v.instruments()
	if v.mServeLat != nil {
		start := time.Now()
		defer func() {
			if park {
				return // parked requests are replayed (and then recorded) later
			}
			v.mServeLat.Observe(time.Since(start))
		}()
	}
	if tr := v.track(); tr != nil {
		t0 := time.Now()
		defer func() {
			if park {
				return // parked requests are replayed (and then recorded) later
			}
			tr.Span("core", "serve."+opName(op), t0, time.Now(),
				trace.Str("file", file), trace.I64("bytes", int64(len(resp))))
		}()
	}
	switch op {
	case opMetadata:
		fn, ok := v.File(file)
		if !ok {
			return nil, false, file, true
		}
		v.stats.MetadataRequests++
		return encodeMetadataResp(fn), false, file, false
	case opBoxes:
		dset := d.String()
		bb := decodeBox(d)
		var ranks []int
		seen := map[int]bool{}
		for _, ent := range v.indexes[file][dset] {
			if ent.box.Intersects(bb) && !seen[ent.src] {
				seen[ent.src] = true
				ranks = append(ranks, ent.src)
			}
		}
		v.stats.BoxQueries++
		return encodeBoxesResp(ranks), false, file, false
	case opData:
		dset := d.String()
		sel := h5.DecodeDataspace(d)
		e := &h5.Encoder{}
		served := false
		if fn, ok := v.File(file); ok {
			if node, err := fn.Resolve(dset); err == nil {
				if err := node.EncodeRegions(e, sel); err == nil {
					served = true
				}
			}
		}
		if !served {
			e.PutI64(0)
		}
		v.stats.DataQueries++
		v.stats.BytesServed += int64(len(e.Buf))
		return e.Buf, false, file, false
	case opDone:
		v.stats.DoneMessages++
		return nil, true, file, false
	default:
		return encodeBoxesResp(nil), false, file, false
	}
}

// opName names a protocol op for trace spans.
func opName(op uint8) string {
	switch op {
	case opMetadata:
		return "metadata"
	case opBoxes:
		return "boxes"
	case opData:
		return "data"
	case opDone:
		return "done"
	case opDataStream:
		return "datastream"
	default:
		return "unknown"
	}
}

// Stats returns a snapshot of this rank's producer-side serve counters.
// Admission-control counters are folded in at snapshot time.
func (v *DistMetadataVOL) Stats() ServeStats {
	v.serveMu.Lock()
	s := v.stats
	v.serveMu.Unlock()
	if adm := v.admission(); adm != nil {
		as := adm.stats()
		s.Shed = as.shed
		s.Queued = as.queued
		s.QueueP99 = as.queueP99
	}
	return s
}

// QueryStats returns a snapshot of this rank's consumer-side query counters.
// The RPC clients' retry and hedging counters are folded in at snapshot
// time, so the caller sees one coherent view of the rank's query effort.
func (v *DistMetadataVOL) QueryStats() QueryStats {
	v.qmu.Lock()
	defer v.qmu.Unlock()
	qs := v.qstats
	for _, c := range v.clients {
		cs := c.Stats()
		qs.Retries += cs.Retries
		qs.HedgedCalls += cs.HedgedCalls
		qs.HedgeWins += cs.HedgeWins
		qs.Sheds += cs.Sheds
		qs.BreakerOpens += cs.BreakerOpens
	}
	return qs
}

// --- consumer side ---

// distFile is the consumer-side handle to a file living in a producer task.
type distFile struct {
	vol    *DistMetadataVOL
	name   string
	ic     *mpi.Intercomm
	client *rpc.Client
	root   *Node
}

// clientFor returns this rank's RPC client for an intercommunicator,
// creating it on first use with the VOL's fault-tolerance settings (all
// zero by default: fail-stop semantics). Set CallTimeout/CallRetries/
// CallBackoff before the first remote open.
func (v *DistMetadataVOL) clientFor(ic *mpi.Intercomm) *rpc.Client {
	v.qmu.Lock()
	defer v.qmu.Unlock()
	if v.clients == nil {
		v.clients = map[*mpi.Intercomm]*rpc.Client{}
	}
	c, ok := v.clients[ic]
	if !ok {
		c = &rpc.Client{
			IC: ic, Timeout: v.CallTimeout, Retries: v.CallRetries,
			Backoff: v.CallBackoff, RetryFailed: v.WaitForRestart,
			Budget: v.CallBudget, HedgeDelay: v.HedgeDelay, Track: v.track(),
			Metrics: v.Metrics, Method: rpcMethod,
			ShedRetries:      v.ShedRetries,
			BreakerThreshold: v.BreakerThreshold,
			BreakerCooldown:  v.BreakerCooldown,
		}
		v.clients[ic] = c
	}
	return c
}

// rpcMethod classifies a request body by its protocol op so the RPC client
// can label its per-method latency histograms ("rpc.client.call_us.boxes",
// ".data", ".datastream", ...).
func rpcMethod(req []byte) string {
	if len(req) == 0 {
		return "unknown"
	}
	return opName(req[0])
}

// CreditDone pre-credits n consumer done notifications for a file's next
// serve session on this intercommunicator. A restarted producer rank calls
// it before re-serving: consumers that already had their done acknowledged
// by the previous incarnation will never resend it, so the fresh session
// must not wait for them.
func (v *DistMetadataVOL) CreditDone(ic *mpi.Intercomm, name string, n int) {
	if n <= 0 {
		return
	}
	s := v.icServerFor(ic)
	s.mu.Lock()
	s.pendingDone[name] += n
	s.mu.Unlock()
}

// persistOwnership records every rank's written regions into the container
// file as root attributes (__lf_own_<rank>: encoded dataset path + region
// boxes). The lists are allgathered over the producer task so EVERY rank
// writes the complete, identical attribute set — the native connector
// persists whichever rank's metadata block lands last at close, and that is
// only safe when the blocks agree (the base VOL's idempotent-close
// contract). No-op unless PersistOwnership is set and the file passes
// through to storage.
func (v *DistMetadataVOL) persistOwnership(fn *FileNode) error {
	if !v.PersistOwnership || v.base == nil || !v.passthruOn(fn.FileName) {
		return nil
	}
	e := &h5.Encoder{}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Kind == h5.KindDataset && len(n.Triples) > 0 {
			var boxes []grid.Box
			for _, tr := range n.Triples {
				boxes = append(boxes, tr.FileSpace.SelectionBoxes()...)
			}
			if len(boxes) > 0 {
				e.PutString(n.Path())
				e.PutI64(int64(len(boxes)))
				for _, b := range boxes {
					encodeBox(e, b)
				}
			}
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(fn.Node)
	all := v.local.Allgather(e.Buf)
	bh, err := v.base.FileOpen(fn.FileName, nil)
	if err != nil {
		return fmt.Errorf("lowfive: persisting ownership of %q: %w", fn.FileName, err)
	}
	for k, blob := range all {
		if len(blob) == 0 {
			continue
		}
		sp := h5.NewSimple(int64(len(blob)))
		if err := bh.AttributeWrite(fmt.Sprintf("%s%d", ownPrefix, k), h5.U8, sp, blob); err != nil {
			bh.Close()
			return err
		}
	}
	return bh.Close()
}

func (v *DistMetadataVOL) openRemote(name string, ic *mpi.Intercomm) (h5.FileHandle, error) {
	client := v.clientFor(ic)
	n := ic.RemoteSize()
	partner := ic.LocalRank() % n
	tr := v.track()
	var root *Node
	var lastErr error
	// Any producer rank can answer a metadata request (the hierarchy is
	// replicated task-wide), so fail over through all of them before giving
	// up on the in-memory transport. With hedging on, the first attempt
	// races the partner against the healthiest of the other ranks (every
	// rank is a metadata replica), so a straggling partner costs a hedge
	// delay instead of a timeout ladder.
	for k := 0; k < n; k++ {
		p := (partner + k) % n
		t0 := time.Now()
		var resp []byte
		var err error
		if k == 0 && v.hedging() {
			resp, err = v.hedgedCall(client, ic, p, n, n, encodeMetadataReq(name))
		} else {
			resp, err = client.Call(p, encodeMetadataReq(name))
		}
		wait := time.Since(t0)
		if tr != nil {
			tr.Span("core", "query.metadata", t0, time.Now(),
				trace.Str("file", name), trace.I64("bytes", int64(len(resp))))
		}
		v.qmu.Lock()
		v.qstats.MetadataFetches++
		v.qstats.WaitTime += wait
		if k > 0 {
			v.qstats.Failovers++
		}
		v.qmu.Unlock()
		if err != nil {
			lastErr = err
			if tr != nil {
				tr.Instant("core", "query.failover",
					trace.Str("file", name), trace.I64("rank", int64(p)))
			}
			continue
		}
		root, err = decodeMetadataResp(resp)
		if err != nil {
			return nil, fmt.Errorf("lowfive: opening %q remotely: %w", name, err)
		}
		break
	}
	if root == nil {
		// Every producer rank is unreachable: degrade to the paper's file
		// transport if the file also went to storage.
		if fh, ferr := v.fileFallbackOpen(name); ferr == nil {
			return fh, nil
		}
		return nil, fmt.Errorf("lowfive: opening %q remotely: %w", name, lastErr)
	}
	f := &distFile{vol: v, name: name, ic: ic, client: client, root: root}
	return f, nil
}

// fileFallbackOpen opens the named file through the base connector (full
// file mode) when the in-memory transport is unreachable.
func (v *DistMetadataVOL) fileFallbackOpen(name string) (h5.FileHandle, error) {
	if v.base == nil {
		return nil, fmt.Errorf("lowfive: no base connector for file fallback of %q", name)
	}
	bh, err := v.base.FileOpen(name, nil)
	if err != nil {
		return nil, err
	}
	v.qmu.Lock()
	v.qstats.FileFallbacks++
	v.qmu.Unlock()
	if tr := v.track(); tr != nil {
		tr.Instant("core", "query.file-fallback", trace.Str("file", name))
	}
	return &metaFile{vol: v.MetadataVOL, name: name, base: bh}, nil
}

// Close sends done to every producer rank, releasing its serve loop. With
// fault tolerance on, each done is acknowledged (and retried if lost) —
// a lost done would strand the producer's serve session. Two per-rank
// failures are tolerated, and neither stops the remaining ranks from being
// notified: a crashed producer (its sessions already unwound), and an
// exhausted retry budget on the acknowledgment. The latter is the last-ack
// race: a producer counts its final done and exits the serve loop, so a
// corrupted or lost ack can never be replayed from the dedup cache. While
// the serve loop is alive, any one of the retries would have been answered
// (fresh or replayed); a terminal timeout therefore means the done was
// counted and only its ack died, not that the done was lost.
func (f *distFile) Close() error {
	v := f.vol
	var first error
	for p := 0; p < f.ic.RemoteSize(); p++ {
		if v != nil && v.CallTimeout > 0 {
			if _, err := f.client.Call(p, encodeDone(f.name)); err != nil {
				var rf *mpi.RankFailedError
				var tmo *rpc.TimeoutError
				if errors.As(err, &rf) || errors.As(err, &tmo) {
					continue
				}
				if first == nil {
					first = fmt.Errorf("lowfive: closing %q: %w", f.name, err)
				}
				continue
			}
		} else {
			f.client.Notify(p, encodeDone(f.name))
		}
		if v != nil && v.OnDoneAcked != nil {
			// Per-producer-rank granularity: a partially-acknowledged close
			// (some producer ranks answered, then the task crashed) must
			// credit exactly the acknowledged ranks on restart.
			v.OnDoneAcked(f.ic, f.name, p)
		}
	}
	return first
}

func (f *distFile) object(n *Node) *distObject { return &distObject{file: f, node: n} }

func (f *distFile) GroupCreate(string) (h5.ObjectHandle, error) {
	return nil, fmt.Errorf("lowfive: remote file %q is read-only", f.name)
}
func (f *distFile) GroupOpen(name string) (h5.ObjectHandle, error) {
	return f.object(f.root).GroupOpen(name)
}
func (f *distFile) DatasetCreate(string, *h5.Datatype, *h5.Dataspace) (h5.DatasetHandle, error) {
	return nil, fmt.Errorf("lowfive: remote file %q is read-only", f.name)
}
func (f *distFile) DatasetOpen(name string) (h5.DatasetHandle, error) {
	return f.object(f.root).DatasetOpen(name)
}
func (f *distFile) Children() ([]h5.ObjectInfo, error) { return f.object(f.root).Children() }
func (f *distFile) Delete(string) error {
	return fmt.Errorf("lowfive: remote file %q is read-only", f.name)
}
func (f *distFile) AttributeWrite(string, *h5.Datatype, *h5.Dataspace, []byte) error {
	return fmt.Errorf("lowfive: remote file %q is read-only", f.name)
}
func (f *distFile) AttributeRead(name string) (*h5.Datatype, *h5.Dataspace, []byte, error) {
	return f.object(f.root).AttributeRead(name)
}
func (f *distFile) AttributeNames() ([]string, error) { return f.object(f.root).AttributeNames() }

// distObject is a consumer-side group handle over the fetched metadata.
type distObject struct {
	file *distFile
	node *Node
}

func (o *distObject) GroupCreate(string) (h5.ObjectHandle, error) {
	return nil, fmt.Errorf("lowfive: remote file %q is read-only", o.file.name)
}

func (o *distObject) GroupOpen(name string) (h5.ObjectHandle, error) {
	c, ok := o.node.Child(name)
	if !ok || c.Kind != h5.KindGroup {
		return nil, fmt.Errorf("lowfive: group %q not found under %q", name, o.node.Path())
	}
	return &distObject{file: o.file, node: c}, nil
}

func (o *distObject) DatasetCreate(string, *h5.Datatype, *h5.Dataspace) (h5.DatasetHandle, error) {
	return nil, fmt.Errorf("lowfive: remote file %q is read-only", o.file.name)
}

func (o *distObject) DatasetOpen(name string) (h5.DatasetHandle, error) {
	c, ok := o.node.Child(name)
	if !ok || c.Kind != h5.KindDataset {
		return nil, fmt.Errorf("lowfive: dataset %q not found under %q", name, o.node.Path())
	}
	return &distDataset{file: o.file, node: c}, nil
}

func (o *distObject) Children() ([]h5.ObjectInfo, error) {
	var out []h5.ObjectInfo
	for _, c := range o.node.Children() {
		out = append(out, h5.ObjectInfo{Name: c.Name, Kind: c.Kind})
	}
	return out, nil
}

func (o *distObject) Delete(string) error {
	return fmt.Errorf("lowfive: remote file %q is read-only", o.file.name)
}

func (o *distObject) AttributeWrite(string, *h5.Datatype, *h5.Dataspace, []byte) error {
	return fmt.Errorf("lowfive: remote file %q is read-only", o.file.name)
}

func (o *distObject) AttributeRead(name string) (*h5.Datatype, *h5.Dataspace, []byte, error) {
	a, ok := o.node.Attribute(name)
	if !ok {
		return nil, nil, nil, fmt.Errorf("lowfive: attribute %q not found on %q", name, o.node.Path())
	}
	return a.Type, a.Space, a.Data, nil
}

func (o *distObject) AttributeNames() ([]string, error) { return o.node.AttributeNames(), nil }

func (o *distObject) Close() error { return nil }

// distDataset reads via Algorithm 3.
type distDataset struct {
	file *distFile
	node *Node
}

func (d *distDataset) Datatype() *h5.Datatype   { return d.node.Type }
func (d *distDataset) Dataspace() *h5.Dataspace { return d.node.Space.Clone().SelectAll() }

func (d *distDataset) Write(_, _ *h5.Dataspace, _ []byte) error {
	return fmt.Errorf("lowfive: remote dataset %q is read-only", d.node.Path())
}

// Read implements Algorithm 3 over the streaming data plane: query the
// common-decomposition block owners intersecting the selection's bounding
// box for redirects, then drain one bounded-chunk stream per producer that
// has data, scattering each frame directly into the destination buffer —
// no whole-selection attachment is ever materialized on either side.
func (d *distDataset) Read(memSpace, fileSpace *h5.Dataspace, data []byte) error {
	es := d.node.Type.Size
	if fileSpace == nil {
		fileSpace = d.node.Space.Clone().SelectAll()
	}
	v := d.file.vol
	var t0 time.Time
	tr := v.track()
	if tr != nil {
		t0 = time.Now()
	}
	// With no memory-space mapping, frames scatter straight into the
	// caller's buffer; otherwise they stage into one packed buffer that is
	// scattered once at the end.
	var dst []byte
	staged := memSpace != nil
	if staged {
		dst = make([]byte, fileSpace.NumSelected()*int64(es))
	} else {
		dst = data[:fileSpace.NumSelected()*int64(es)]
	}
	tq := time.Now()
	err := v.queryStream(d.file.client, d.file.ic, d.file.name, d.node, fileSpace, dst)
	if tr != nil {
		tr.Span("core", "query", t0, time.Now(),
			trace.Str("dataset", d.node.Path()),
			trace.I64("bytes", fileSpace.NumSelected()*int64(es)))
	}
	if err != nil {
		// Even a fast failure goes to the flight recorder: a sweep that
		// fails on this query must be able to show it afterwards.
		reason := "file-fallback"
		var tmo *rpc.TimeoutError
		var ovl *rpc.OverloadedError
		var brk *rpc.BreakerOpenError
		switch {
		case errors.As(err, &ovl):
			reason = "shed"
		case errors.As(err, &brk):
			reason = "breaker-open"
		case errors.As(err, &tmo):
			reason = "retries-exhausted"
		}
		v.recordQueryFault(d.file.name, d.node.Path(), time.Since(tq), reason)
		if ovl != nil || brk != nil {
			// Overload is transient by design: the producer is alive and
			// told us when to come back, so degrading to the file system
			// would both mask the shed and pile more load onto shared
			// storage. Surface the typed error; the caller backs off.
			return fmt.Errorf("lowfive: reading %q: %w", d.node.Path(), err)
		}
		// The in-memory transport failed (a producer crashed, or retries
		// ran dry). The data a crashed rank held exists nowhere else in
		// memory — but if the producer also wrote the file to storage, the
		// paper's file transport doubles as the recovery path. The fallback
		// pieces cover the whole selection, overwriting any partial stream.
		fp, ferr := v.fallbackPieces(d.file.name, d.node.Path(), fileSpace, es)
		if ferr != nil {
			return fmt.Errorf("lowfive: reading %q: %w (file fallback: %v)", d.node.Path(), err, ferr)
		}
		v.qmu.Lock()
		v.qstats.FileFallbacks++
		v.qmu.Unlock()
		if tr != nil {
			tr.Instant("core", "query.file-fallback", trace.Str("dataset", d.node.Path()))
		}
		AssemblePiecesInto(dst, fileSpace, fp, es)
	}
	if staged {
		h5.ScatterSelected(data, memSpace, dst, es)
	}
	return nil
}

// QueryPieces runs the two steps of Algorithm 3 and returns the raw pieces.
func QueryPieces(client *rpc.Client, ic *mpi.Intercomm, file string, node *Node, fileSpace *h5.Dataspace) ([]Piece, error) {
	var v *DistMetadataVOL // no stats accounting for the bare function
	return v.queryPieces(client, ic, file, node, fileSpace)
}

// queryPieces is QueryPieces plus consumer-side stats accounting; the
// receiver may be nil.
func (v *DistMetadataVOL) queryPieces(client *rpc.Client, ic *mpi.Intercomm, file string, node *Node, fileSpace *h5.Dataspace) ([]Piece, error) {
	bb := fileSpace.Bounds()
	if bb.IsEmpty() {
		return nil, nil
	}
	start := time.Now()
	// Step 1: redirects from the owners of intersecting blocks. Requests to
	// all owners are pipelined (posted as nonblocking sends) before any
	// response is awaited. An owner that fails is retried on its replicas
	// ((owner+k) mod n holds the same index entries when ReplicationFactor
	// is set on both sides).
	order, boxWait, nOwners, err := v.queryOwners(client, ic, file, node, bb)
	if err != nil {
		return nil, err
	}
	// Step 2: request the data from each producer that has some, again
	// pipelined. Data is held only by the rank that wrote it — no replica
	// can answer for a crashed writer, so a failure here propagates and the
	// caller degrades to the file transport.
	var pieces []Piece
	var dataBytes int64
	t1 := time.Now()
	dataResps, err := client.CallAll(order, encodeDataReq(file, node.Path(), fileSpace))
	if err != nil {
		return nil, err
	}
	for i, resp := range dataResps {
		ps, err := decodeDataResp(resp)
		if err != nil {
			return nil, fmt.Errorf("lowfive: data query to producer %d: %w", order[i], err)
		}
		dataBytes += int64(len(resp))
		pieces = append(pieces, ps...)
	}
	if v != nil {
		v.qmu.Lock()
		v.qstats.BoxQueries += int64(nOwners)
		v.qstats.DataQueries += int64(len(order))
		v.qstats.BytesFetched += dataBytes
		v.qstats.WaitTime += boxWait + time.Since(t1)
		v.qmu.Unlock()
		v.instruments()
		v.mQueryLat.Observe(time.Since(start))
	}
	return pieces, nil
}

// callReplicas retries a failed query on the replica owners of a block:
// (owner+k) mod n for k < repl, which hold the same index entries when the
// producer built the index with the matching ReplicationFactor.
func (v *DistMetadataVOL) callReplicas(client *rpc.Client, owner, repl, n int, req []byte) ([]byte, error) {
	var lastErr error
	for k := 0; k < repl; k++ {
		dest := (owner + k) % n
		resp, err := client.Call(dest, req)
		if err == nil {
			if k > 0 && v != nil {
				v.qmu.Lock()
				v.qstats.Failovers++
				v.qmu.Unlock()
				if tr := v.track(); tr != nil {
					tr.Instant("core", "query.failover",
						trace.I64("owner", int64(owner)), trace.I64("replica", int64(dest)))
				}
			}
			return resp, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

func (d *distDataset) SetExtent([]int64) error {
	return fmt.Errorf("lowfive: remote dataset %q is read-only", d.node.Path())
}

func (d *distDataset) AttributeWrite(string, *h5.Datatype, *h5.Dataspace, []byte) error {
	return fmt.Errorf("lowfive: remote dataset %q is read-only", d.node.Path())
}

func (d *distDataset) AttributeRead(name string) (*h5.Datatype, *h5.Dataspace, []byte, error) {
	a, ok := d.node.Attribute(name)
	if !ok {
		return nil, nil, nil, fmt.Errorf("lowfive: attribute %q not found on %q", name, d.node.Path())
	}
	return a.Type, a.Space, a.Data, nil
}

func (d *distDataset) AttributeNames() ([]string, error) { return d.node.AttributeNames(), nil }

func (d *distDataset) Close() error { return nil }
