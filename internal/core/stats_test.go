package core_test

import (
	"sync"
	"testing"

	"lowfive/h5"
	"lowfive/internal/core"
	"lowfive/mpi"
)

// TestServeAndQueryStatsMirror runs one redistribution and checks the
// producers' serve-side counters agree with the consumers' query-side
// counters: every request issued was answered, every byte fetched was
// served.
func TestServeAndQueryStatsMirror(t *testing.T) {
	dims := []int64{6, 8}
	var mu sync.Mutex
	var serve core.ServeStats
	var query core.QueryStats
	err := mpi.RunWorkflow([]mpi.TaskSpec{
		{Name: "producer", Procs: 3, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("consumer"))
			produceGrid(t, p, h5.NewFileAccessProps(vol), "stats.h5", dims)
			s := vol.Stats()
			mu.Lock()
			serve.MetadataRequests += s.MetadataRequests
			serve.BoxQueries += s.BoxQueries
			serve.DataQueries += s.DataQueries
			serve.BytesServed += s.BytesServed
			serve.DoneMessages += s.DoneMessages
			mu.Unlock()
		}},
		{Name: "consumer", Procs: 2, Main: func(p *mpi.Proc) {
			vol := core.NewDistMetadataVOL(p.Task, nil)
			vol.SetIntercomm("*", p.Intercomm("producer"))
			consumeGridColumns(t, p, h5.NewFileAccessProps(vol), "stats.h5", dims)
			q := vol.QueryStats()
			mu.Lock()
			query.MetadataFetches += q.MetadataFetches
			query.BoxQueries += q.BoxQueries
			query.DataQueries += q.DataQueries
			query.BytesFetched += q.BytesFetched
			query.WaitTime += q.WaitTime
			mu.Unlock()
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if query.MetadataFetches == 0 || query.BoxQueries == 0 || query.DataQueries == 0 {
		t.Errorf("consumer query stats empty: %+v", query)
	}
	if query.BytesFetched == 0 {
		t.Error("no bytes fetched")
	}
	if query.WaitTime <= 0 {
		t.Errorf("WaitTime=%v, want > 0", query.WaitTime)
	}
	if serve.MetadataRequests != query.MetadataFetches {
		t.Errorf("metadata: served %d fetched %d", serve.MetadataRequests, query.MetadataFetches)
	}
	if serve.BoxQueries != query.BoxQueries {
		t.Errorf("box queries: served %d issued %d", serve.BoxQueries, query.BoxQueries)
	}
	if serve.DataQueries != query.DataQueries {
		t.Errorf("data queries: served %d issued %d", serve.DataQueries, query.DataQueries)
	}
	if serve.BytesServed != query.BytesFetched {
		t.Errorf("bytes: served %d fetched %d", serve.BytesServed, query.BytesFetched)
	}
	if serve.DoneMessages != 6 {
		t.Errorf("DoneMessages=%d, want 6 (each of 2 consumers notifies all 3 producers)", serve.DoneMessages)
	}
}
