package core

import (
	"errors"
	"fmt"
	"time"

	"lowfive/h5"
	"lowfive/internal/buf"
	"lowfive/internal/grid"
	"lowfive/internal/rpc"
	"lowfive/metrics"
	"lowfive/mpi"
	"lowfive/trace"
)

// Streamed data queries: the producer answers opDataStream by gathering the
// query intersection of a dataset's triples directly into pooled frames (one
// copy: triple storage → frame), and the consumer scatters each frame
// straight into the read destination (one copy: frame → caller's buffer).
// Peak transport memory is bounded by the producer's chunk pool, not by the
// selection size, and the consumer starts placing chunk k while chunk k+1 is
// still in flight.
//
// Frame payloads hold whole segments, each one rectangular fragment:
//
//	[dim i64][min,max i64 per dim][byteLen i64][bytes]
//
// Segment order preserves triple order, so overlapping writes keep their
// overwrite semantics at the consumer exactly as in the scalar opData path.

// StreamRegions sends the query intersection of a dataset's triples over a
// response stream, splitting each intersection region into sub-boxes that
// fit one frame. It is EncodeRegions without the flat buffer: bytes move
// once, from the stored triples into pooled frames.
func (n *Node) StreamRegions(st *rpc.Stream, query *h5.Dataspace) error {
	if n.Kind != h5.KindDataset {
		return fmt.Errorf("lowfive: extract from non-dataset %q", n.Name)
	}
	es := int64(n.Type.Size)
	qBoxes := query.SelectionBoxes()
	for _, tr := range n.Triples {
		var packed []byte // fetched lazily: only if some region intersects
		triBase := int64(0)
		for _, tb := range tr.FileSpace.SelectionBoxes() {
			for _, qb := range qBoxes {
				region := tb.Intersect(qb)
				if region.IsEmpty() {
					continue
				}
				if packed == nil {
					packed = tr.PackedData(int(es))
				}
				hdr := 8 + 16*region.Dim() + 8
				it := h5.NewChunkIterBoxes([]grid.Box{region}, es, st.MaxSegment()-hdr)
				for {
					sub, ok := it.Next()
					if !ok {
						break
					}
					segBytes := sub.NumPoints() * es
					dst := st.Grab(hdr + int(segBytes))
					// Encode the segment in place: the appends land inside
					// the grabbed region (capacity capped to its length).
					e := &h5.Encoder{Buf: dst[:0:len(dst)]}
					encodeBox(e, sub)
					e.PutI64(segBytes)
					e.Buf = grid.GatherRegion(e.Buf, packed[triBase*es:], tb, sub, int(es))
				}
			}
			triBase += tb.NumPoints()
		}
	}
	return nil
}

// serveDataStream answers one opDataStream request on the legacy serialized
// path: the whole stream runs under serveMu, preserving single-threaded
// rank semantics when admission control is off. A file or dataset this rank
// does not have yields an empty stream (mirroring the scalar path's
// zero-piece response); the consumer's other producers hold the data.
func (v *DistMetadataVOL) serveDataStream(s *icServer, src int, seq uint64, req []byte) {
	v.serveMu.Lock()
	defer v.serveMu.Unlock()
	bytes, frames := v.streamResponse(s, src, seq, req)
	v.stats.DataQueries++
	v.stats.BytesServed += bytes
	v.stats.ChunksServed += frames
}

// serveDataStreamAdmitted answers one opDataStream request under admission
// control: acquire a slot (or shed with an overloaded reply), stream
// WITHOUT serveMu — the metadata tree is immutable during a serve session
// and the chunk pool bounds memory — and fold the stats in under serveMu
// afterwards. Runs on its own goroutine, so comm halt panics (this rank
// crashing mid-stream) are recovered here instead of killing the process.
func (v *DistMetadataVOL) serveDataStreamAdmitted(adm *admission, s *icServer, src int, seq uint64, req []byte) {
	defer func() {
		if r := recover(); r != nil && !mpi.IsHaltPanic(r) {
			panic(r)
		}
	}()
	tenant := v.tenantOf(s.ic)
	if err := adm.acquire(tenant); err != nil {
		var ov *ErrOverloaded
		ra := time.Duration(0)
		if errors.As(err, &ov) {
			ra = ov.RetryAfter
			v.recordShed(src, ov)
		}
		v.serveMu.Lock()
		v.stats.Shed++ // running count; Stats() overwrites from the controller
		v.serveMu.Unlock()
		s.srv.RespondOverloaded(src, seq, ra)
		return
	}
	defer adm.release()
	bytes, frames := v.streamResponse(s, src, seq, req)
	v.serveMu.Lock()
	v.stats.DataQueries++
	v.stats.BytesServed += bytes
	v.stats.ChunksServed += frames
	v.serveMu.Unlock()
}

// recordShed puts one shed into the flight recorder, so a failed storm
// sweep can show who was refused, when, and why.
func (v *DistMetadataVOL) recordShed(src int, ov *ErrOverloaded) {
	if v.Flight == nil {
		return
	}
	v.Flight.Record(metrics.SlowQuery{
		Time:      time.Now(),
		File:      ov.Tenant,
		Producers: []int{src},
		Duration:  ov.RetryAfter,
		Reason:    "shed-" + ov.Reason,
	})
}

// streamResponse decodes one opDataStream request and writes the response
// stream, returning the payload bytes and frame count. It touches no shared
// serve state: File is guarded by its own lock and the metadata tree is
// immutable while being served, so admitted streams may run concurrently.
func (v *DistMetadataVOL) streamResponse(s *icServer, src int, seq uint64, req []byte) (bytes int64, frames int64) {
	d := &h5.Decoder{Buf: req}
	_ = d.U8()
	file := d.String()
	dset := d.String()
	sel := h5.DecodeDataspace(d)
	v.instruments()
	var t0 time.Time
	tr := v.track()
	if tr != nil || v.mServeLat != nil {
		t0 = time.Now()
	}
	st := s.srv.NewStream(src, seq, v.chunkPool())
	if d.Err == nil && sel != nil {
		if fn, ok := v.File(file); ok {
			if node, err := fn.Resolve(dset); err == nil {
				// An error mid-stream leaves a short stream; the consumer's
				// decoder rejects a truncated segment and falls back.
				_ = node.StreamRegions(st, sel)
			}
		}
	}
	st.Close()
	if v.mServeLat != nil {
		v.mServeLat.Observe(time.Since(t0))
	}
	if tr != nil {
		tr.Span("core", "serve.datastream", t0, time.Now(),
			trace.Str("file", file), trace.I64("bytes", st.Bytes()),
			trace.I64("chunks", int64(st.Frames())))
	}
	return st.Bytes(), int64(st.Frames())
}

// chunkPool returns the pool streamed responses draw frames from: the
// explicit override, or the process-wide shared pool for the configured
// chunk size — shared so many producer vols keep one global bound on
// in-flight frames instead of one bound each.
func (v *DistMetadataVOL) chunkPool() *buf.Pool {
	if v.ChunkPool != nil {
		return v.ChunkPool
	}
	return buf.SharedPool(v.ChunkBytes)
}

// streamTarget scatters stream segments directly into a packed destination
// covering fileSel — the consumer half of the single-copy path.
type streamTarget struct {
	dst   []byte
	boxes []grid.Box // fileSel's selection boxes
	bases []int64    // running element offset of each box in dst
	es    int
}

func newStreamTarget(dst []byte, fileSel *h5.Dataspace, es int) *streamTarget {
	t := &streamTarget{dst: dst, boxes: fileSel.SelectionBoxes(), es: es}
	t.bases = make([]int64, len(t.boxes))
	base := int64(0)
	for i, b := range t.boxes {
		t.bases[i] = base
		base += b.NumPoints()
	}
	return t
}

// consume scatters every segment of one frame payload into the destination.
// The payload is released by the caller right after consume returns, so all
// bytes are copied out here.
func (t *streamTarget) consume(payload []byte) error {
	r := buf.NewReader(payload)
	for r.Len() > 0 {
		nd := r.I64()
		if !r.OK() || nd < 0 || nd > 64 {
			return fmt.Errorf("lowfive: corrupt stream segment rank %d", nd)
		}
		box := grid.Box{Min: make([]int64, nd), Max: make([]int64, nd)}
		for k := int64(0); k < nd; k++ {
			box.Min[k] = r.I64()
			box.Max[k] = r.I64()
		}
		n := r.I64()
		if !r.OK() || n != box.NumPoints()*int64(t.es) {
			return fmt.Errorf("lowfive: stream segment length %d does not match its box", n)
		}
		data := r.Span(int(n))
		if !r.OK() {
			return fmt.Errorf("lowfive: truncated stream segment")
		}
		for i, rb := range t.boxes {
			region := box.Intersect(rb)
			if region.IsEmpty() {
				continue
			}
			grid.CopyRegion(t.dst[t.bases[i]*int64(t.es):], rb, data, box, region, t.es)
		}
	}
	return nil
}

// streamWindow is how many streams a consumer requests ahead of the one it
// is draining. Enough look-ahead that producer k+1 fills frames while
// frames from producer k are being placed; small enough that frames parked
// in mailboxes for not-yet-drained streams cannot hoard the chunk pool and
// starve the stream at the drain cursor.
const streamWindow = 2

// queryStream runs Algorithm 3 with a streamed data step: redirect queries
// as before, then one stream per producer holding data, drained in producer
// order with each frame scattered straight into dst (packed over fileSpace).
// Streams are requested a sliding window ahead of the drain cursor.
func (v *DistMetadataVOL) queryStream(client *rpc.Client, ic *mpi.Intercomm, file string, node *Node, fileSpace *h5.Dataspace, dst []byte) error {
	es := node.Type.Size
	bb := fileSpace.Bounds()
	if bb.IsEmpty() {
		return nil
	}
	v.instruments()
	var csBefore rpc.ClientStats
	if v.Flight != nil {
		csBefore = client.Stats()
	}
	start := time.Now()
	order, boxWait, nOwners, err := v.queryOwners(client, ic, file, node, bb)
	if err != nil {
		return err
	}
	target := newStreamTarget(dst, fileSpace, es)
	req := encodeDataStreamReq(file, node.Path(), fileSpace)
	t1 := time.Now()
	calls := make([]*rpc.StreamCall, len(order))
	started := 0
	startThrough := func(n int) {
		for ; started < n && started < len(order); started++ {
			calls[started] = client.StartStream(order[started], req)
		}
	}
	startThrough(streamWindow)
	var chunks, dataBytes int64
	for i, sc := range calls {
		err := sc.Drain(func(payload []byte) error {
			chunks++
			dataBytes += int64(len(payload))
			return target.consume(payload)
		})
		if err != nil {
			// Drain the window's other started streams before giving up:
			// abandoning them would strand their in-flight frames (pooled
			// chunks) in the mailbox.
			for j := i + 1; j < started; j++ {
				calls[j].Discard()
			}
			return fmt.Errorf("lowfive: data stream from producer %d: %w", order[i], err)
		}
		startThrough(i + 1 + streamWindow)
	}
	v.qmu.Lock()
	v.qstats.BoxQueries += int64(nOwners)
	v.qstats.DataQueries += int64(len(order))
	v.qstats.BytesFetched += dataBytes
	v.qstats.ChunksFetched += chunks
	v.qstats.WaitTime += boxWait + time.Since(t1)
	v.qmu.Unlock()
	total := time.Since(start)
	v.mQueryLat.Observe(total)
	if v.Flight.Slow(total) {
		// Attempts/hedging come from the client counter deltas across this
		// query; concurrent queries on the same client can inflate them, but
		// a slow query during a fault sweep is exactly when that attribution
		// is still the right lead.
		cs := client.Stats()
		self := v.local.WorldRank(v.local.Rank())
		v.Flight.Record(metrics.SlowQuery{
			Time:      time.Now(),
			Epoch:     v.local.World().Epoch(self),
			File:      file,
			Dataset:   node.Path(),
			Box:       fmt.Sprintf("%v-%v", bb.Min, bb.Max),
			Producers: order,
			Attempts:  1 + cs.Retries - csBefore.Retries,
			Hedged:    cs.HedgedCalls > csBefore.HedgedCalls,
			Bytes:     dataBytes,
			Chunks:    chunks,
			Duration:  total,
			Reason:    "slow",
			Phases: []metrics.Phase{
				{Name: "boxes", Duration: boxWait},
				{Name: "stream", Duration: time.Since(t1)},
			},
		})
	}
	return nil
}

// queryOwners is step 1 of Algorithm 3: ask the owners of the intersecting
// common-decomposition blocks which producer ranks hold data, with replica
// failover. Shared by the scalar and streamed data paths; v may be nil (no
// stats, no replication).
func (v *DistMetadataVOL) queryOwners(client *rpc.Client, ic *mpi.Intercomm, file string, node *Node, bb grid.Box) (order []int, boxWait time.Duration, nOwners int, err error) {
	n := ic.RemoteSize()
	dc := grid.CommonDecomposition(node.Space.Dims(), n)
	path := node.Path()
	repl := 1
	if v != nil && v.ReplicationFactor > repl {
		repl = v.ReplicationFactor
	}
	if repl > n {
		repl = n
	}
	owners := dc.Intersecting(bb)
	withData := map[int]bool{}
	t0 := time.Now()
	boxReq := encodeBoxesReq(file, path, bb)
	var resps [][]byte
	if v.hedging() {
		// Each owner's query races it against its healthiest replica (all
		// replicas hold the same index entries), with EWMA-driven demotion
		// of a straggling owner — so one slow or partitioned rank costs a
		// hedge delay, not a full timeout ladder.
		resps = make([][]byte, len(owners))
		for i, o := range owners {
			resps[i], err = v.hedgedCall(client, ic, o, repl, n, boxReq)
			if err != nil {
				return nil, 0, len(owners), err
			}
		}
	} else if resps, err = client.CallAll(owners, boxReq); err != nil {
		if repl <= 1 {
			return nil, 0, len(owners), err
		}
		if resps == nil {
			resps = make([][]byte, len(owners))
		}
		for i := range owners {
			if resps[i] != nil {
				continue
			}
			resps[i], err = v.callReplicas(client, owners[i], repl, n, boxReq)
			if err != nil {
				return nil, 0, len(owners), err
			}
		}
	}
	for i, resp := range resps {
		ranks, derr := decodeBoxesResp(resp)
		if derr != nil {
			return nil, 0, len(owners), fmt.Errorf("lowfive: redirect query %d: %w", i, derr)
		}
		for _, r := range ranks {
			if !withData[r] {
				withData[r] = true
				order = append(order, r)
			}
		}
	}
	return order, time.Since(t0), len(owners), nil
}
