package core

import (
	"errors"
	"fmt"
	"time"

	"lowfive/h5"
	"lowfive/internal/stage"
	"lowfive/metrics"
	"lowfive/mpi"
)

// Staging mode: when DistMetadataVOL.Stage is set, producers publish each
// file close as one epoch of an append-only replicated chunk log instead of
// holding a serve session open, and consumers resolve opens and reads
// against the log — epoch → offsets via the store's span index. Recovery
// becomes replay: a restarted rank rebuilds its tree from its shard's
// latest committed span (snapshot + tail) instead of re-reading the PFS
// container and re-serving, and the container file remains the
// low-watermark fallback once the GC has truncated an epoch.

// ReplayStats reports what one rank rebuilt by log replay.
type ReplayStats struct {
	// Epoch is the store epoch the shard was replayed to.
	Epoch int64
	// Records is the number of log records scanned — proportional to the
	// last committed span, not to every epoch ever served.
	Records int
	// Bytes is the framed log volume scanned.
	Bytes int64
	// PFSFallback reports that the log span was truncated (or never
	// existed) and recovery degraded to the container-file Rejoin path.
	PFSFallback bool
}

// stagePublish is the producer file-close path in staging mode: one epoch
// begin (carrying the encoded metadata tree), one chunk record per written
// region box, and a commit. Ownership attributes still go to the passthru
// container so the PFS fallback can rejoin exactly.
func (v *DistMetadataVOL) stagePublish(name string) error {
	fn, ok := v.File(name)
	if !ok {
		return fmt.Errorf("lowfive: stagePublish(%q): file not in memory", name)
	}
	if err := v.persistOwnership(fn); err != nil {
		return err
	}
	if v.OnServe != nil {
		v.OnServe(name)
	}
	rank := v.local.Rank()
	var e h5.Encoder
	EncodeTree(&e, fn.Node, nil)
	epoch, err := v.Stage.Begin(name, rank, e.Buf)
	if err != nil {
		return err
	}
	var bytes, chunks int64
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n.Kind == h5.KindDataset {
			es := int64(n.Type.Size)
			for _, tr := range n.Triples {
				packed := tr.PackedData(n.Type.Size)
				base := int64(0)
				// Packed bytes lie in FileSpace selection order, box-major,
				// so each box's slice starts at the running point offset.
				for _, b := range tr.FileSpace.SelectionBoxes() {
					np := b.NumPoints()
					data := packed[base*es : (base+np)*es]
					if err := v.Stage.Append(name, rank, epoch, n.Path(), b, data); err != nil {
						return err
					}
					base += np
					bytes += np * es
					chunks++
				}
			}
		}
		for _, c := range n.Children() {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(fn.Node); err != nil {
		return err
	}
	if err := v.Stage.Commit(name, rank, epoch); err != nil {
		return err
	}
	v.instruments()
	if v.mEpochBytes != nil {
		v.mEpochBytes.Record(bytes)
		v.mEpochChunk.Record(chunks)
	}
	return nil
}

// stageWaitBudget bounds how long a consumer open waits for a committed
// epoch: the same retry budget the RPC path would have spent. Zero (no
// CallTimeout) keeps fail-stop semantics — wait forever.
func (v *DistMetadataVOL) stageWaitBudget() time.Duration {
	if v.CallTimeout <= 0 {
		return 0
	}
	budget := v.CallTimeout * time.Duration(v.CallRetries+1)
	if v.CallBudget > 0 && v.CallBudget < budget {
		budget = v.CallBudget
	}
	return budget
}

// openStaged resolves a consumer open against the staging store: wait for
// an epoch committed by every producer rank, subscribe for watermark
// accounting, and decode the epoch's metadata snapshot. A wait that runs
// out its budget, or an epoch the GC already truncated, degrades to the
// container file.
func (v *DistMetadataVOL) openStaged(name string, ic *mpi.Intercomm) (h5.FileHandle, error) {
	nProd := 1
	if ic != nil {
		nProd = ic.RemoteSize()
	}
	start := time.Now()
	epoch, err := v.Stage.WaitCommitted(name, nProd, v.stageWaitBudget())
	if err != nil {
		v.recordQueryFault(name, "", time.Since(start), "stage-wait-exhausted")
		if fh, ferr := v.fileFallbackOpen(name); ferr == nil {
			return fh, nil
		}
		return nil, fmt.Errorf("lowfive: opening %q staged: %w", name, err)
	}
	fh, err := v.openStagedEpoch(name, epoch)
	if err != nil && errors.Is(err, stage.ErrEpochTruncated) {
		v.recordQueryFault(name, "", time.Since(start), "stage-truncated")
		if fb, ferr := v.fileFallbackOpen(name); ferr == nil {
			return fb, nil
		}
	}
	return fh, err
}

// OpenStagedEpoch opens one retained epoch of a staged file — the
// time-travel query path. The epoch must still be above the GC watermark.
func (v *DistMetadataVOL) OpenStagedEpoch(name string, epoch int64) (h5.FileHandle, error) {
	if v.Stage == nil {
		return nil, fmt.Errorf("lowfive: OpenStagedEpoch(%q): staging off", name)
	}
	return v.openStagedEpoch(name, epoch)
}

func (v *DistMetadataVOL) openStagedEpoch(name string, epoch int64) (h5.FileHandle, error) {
	meta, err := v.Stage.Meta(name, epoch)
	if err != nil {
		return nil, fmt.Errorf("lowfive: opening %q staged: %w", name, err)
	}
	root, err := DecodeTree(&h5.Decoder{Buf: meta}, nil)
	if err != nil {
		return nil, fmt.Errorf("lowfive: opening %q staged: %w", name, err)
	}
	if v.StageSubscriber != "" {
		v.Stage.Subscribe(name, v.StageSubscriber)
	}
	return &stageFile{vol: v, name: name, epoch: epoch, root: root}, nil
}

// StageReplay rebuilds this rank's in-memory tree for a file from its
// shard's latest committed span. When the span has been truncated below the
// watermark, recovery falls back to the PFS container (Rejoin without the
// index exchange — staging mode has no distributed index to rebuild).
func (v *DistMetadataVOL) StageReplay(name string) (ReplayStats, error) {
	var out ReplayStats
	if v.Stage == nil {
		return out, fmt.Errorf("lowfive: StageReplay(%q): staging off", name)
	}
	rank := v.local.Rank()
	rd, err := v.Stage.Replay(name, rank)
	if err != nil {
		if errors.Is(err, stage.ErrEpochTruncated) || errors.Is(err, stage.ErrNoEpoch) {
			rs, rerr := v.rejoinLocal(name)
			out.PFSFallback = true
			out.Bytes = rs.Bytes
			if rerr != nil {
				return out, fmt.Errorf("lowfive: StageReplay(%q): %v; PFS fallback: %w", name, err, rerr)
			}
			return out, nil
		}
		return out, err
	}
	root, err := DecodeTree(&h5.Decoder{Buf: rd.Meta}, nil)
	if err != nil {
		return out, fmt.Errorf("lowfive: StageReplay(%q): %w", name, err)
	}
	fn := &FileNode{Node: root, FileName: name}
	for _, c := range rd.Chunks {
		node, err := root.Resolve(c.Dataset)
		if err != nil {
			return out, fmt.Errorf("lowfive: StageReplay(%q): %w", name, err)
		}
		sel := h5.NewSimple(node.Space.Dims()...)
		if err := sel.SelectBox(h5.SelectSet, c.Box); err != nil {
			return out, err
		}
		if err := node.RecordWrite(nil, sel, c.Data); err != nil {
			return out, err
		}
	}
	v.putFile(name, fn)
	out.Epoch = rd.Epoch
	out.Records = rd.Records
	out.Bytes = rd.Bytes
	return out, nil
}

// recordQueryFault records a failed or degraded query into the flight
// recorder regardless of how fast it was — a sweep failure must show the
// failing query even when the failure itself was quick.
func (v *DistMetadataVOL) recordQueryFault(file, dset string, d time.Duration, reason string) {
	if v.Flight == nil {
		return
	}
	v.Flight.Record(metrics.SlowQuery{
		Time: time.Now(), File: file, Dataset: dset, Duration: d, Reason: reason,
	})
}

// --- consumer-side staged handles ---

// stageFile is a consumer's handle on one committed epoch of a staged file.
type stageFile struct {
	vol   *DistMetadataVOL
	name  string
	epoch int64
	root  *Node
}

func (f *stageFile) object(n *Node) *stageObject { return &stageObject{file: f, node: n} }

// Close acknowledges consumption of the epoch, advancing the subscriber
// watermark. A regression (a time-travel read below the current ack) is not
// an error at close — older acks simply do not move the watermark back.
func (f *stageFile) Close() error {
	v := f.vol
	if v.StageSubscriber == "" {
		return nil
	}
	if err := v.Stage.Ack(f.name, v.StageSubscriber, f.epoch); err != nil && !errors.Is(err, stage.ErrAckRegression) {
		return err
	}
	return nil
}

func (f *stageFile) GroupCreate(string) (h5.ObjectHandle, error) {
	return nil, fmt.Errorf("lowfive: staged file %q is read-only", f.name)
}
func (f *stageFile) GroupOpen(name string) (h5.ObjectHandle, error) {
	return f.object(f.root).GroupOpen(name)
}
func (f *stageFile) DatasetCreate(string, *h5.Datatype, *h5.Dataspace) (h5.DatasetHandle, error) {
	return nil, fmt.Errorf("lowfive: staged file %q is read-only", f.name)
}
func (f *stageFile) DatasetOpen(name string) (h5.DatasetHandle, error) {
	return f.object(f.root).DatasetOpen(name)
}
func (f *stageFile) Children() ([]h5.ObjectInfo, error) { return f.object(f.root).Children() }
func (f *stageFile) Delete(string) error {
	return fmt.Errorf("lowfive: staged file %q is read-only", f.name)
}
func (f *stageFile) AttributeWrite(string, *h5.Datatype, *h5.Dataspace, []byte) error {
	return fmt.Errorf("lowfive: staged file %q is read-only", f.name)
}
func (f *stageFile) AttributeRead(name string) (*h5.Datatype, *h5.Dataspace, []byte, error) {
	return f.object(f.root).AttributeRead(name)
}
func (f *stageFile) AttributeNames() ([]string, error) { return f.root.AttributeNames(), nil }

// stageObject is a group handle over the epoch's metadata snapshot.
type stageObject struct {
	file *stageFile
	node *Node
}

func (o *stageObject) GroupCreate(string) (h5.ObjectHandle, error) {
	return nil, fmt.Errorf("lowfive: staged file %q is read-only", o.file.name)
}

func (o *stageObject) GroupOpen(name string) (h5.ObjectHandle, error) {
	c, ok := o.node.Child(name)
	if !ok || c.Kind != h5.KindGroup {
		return nil, fmt.Errorf("lowfive: group %q not found under %q", name, o.node.Path())
	}
	return &stageObject{file: o.file, node: c}, nil
}

func (o *stageObject) DatasetCreate(string, *h5.Datatype, *h5.Dataspace) (h5.DatasetHandle, error) {
	return nil, fmt.Errorf("lowfive: staged file %q is read-only", o.file.name)
}

func (o *stageObject) DatasetOpen(name string) (h5.DatasetHandle, error) {
	c, ok := o.node.Child(name)
	if !ok || c.Kind != h5.KindDataset {
		return nil, fmt.Errorf("lowfive: dataset %q not found under %q", name, o.node.Path())
	}
	return &stageDataset{file: o.file, node: c}, nil
}

func (o *stageObject) Children() ([]h5.ObjectInfo, error) {
	var out []h5.ObjectInfo
	for _, c := range o.node.Children() {
		out = append(out, h5.ObjectInfo{Name: c.Name, Kind: c.Kind})
	}
	return out, nil
}

func (o *stageObject) Delete(string) error {
	return fmt.Errorf("lowfive: staged file %q is read-only", o.file.name)
}

func (o *stageObject) AttributeWrite(string, *h5.Datatype, *h5.Dataspace, []byte) error {
	return fmt.Errorf("lowfive: staged file %q is read-only", o.file.name)
}

func (o *stageObject) AttributeRead(name string) (*h5.Datatype, *h5.Dataspace, []byte, error) {
	a, ok := o.node.Attribute(name)
	if !ok {
		return nil, nil, nil, fmt.Errorf("lowfive: attribute %q not found on %q", name, o.node.Path())
	}
	return a.Type, a.Space, a.Data, nil
}

func (o *stageObject) AttributeNames() ([]string, error) { return o.node.AttributeNames(), nil }

func (o *stageObject) Close() error { return nil }

// stageDataset reads by resolving epoch → log offsets through the store's
// span index and assembling the intersecting chunks.
type stageDataset struct {
	file *stageFile
	node *Node
}

func (d *stageDataset) Datatype() *h5.Datatype   { return d.node.Type }
func (d *stageDataset) Dataspace() *h5.Dataspace { return d.node.Space.Clone().SelectAll() }

func (d *stageDataset) Write(_, _ *h5.Dataspace, _ []byte) error {
	return fmt.Errorf("lowfive: staged dataset %q is read-only", d.node.Path())
}

func (d *stageDataset) Read(memSpace, fileSpace *h5.Dataspace, data []byte) error {
	es := d.node.Type.Size
	if fileSpace == nil {
		fileSpace = d.node.Space.Clone().SelectAll()
	}
	v := d.file.vol
	start := time.Now()
	var dst []byte
	staged := memSpace != nil
	if staged {
		dst = make([]byte, fileSpace.NumSelected()*int64(es))
	} else {
		dst = data[:fileSpace.NumSelected()*int64(es)]
	}
	chunks, err := v.Stage.Chunks(d.file.name, d.file.epoch, d.node.Path(), fileSpace.Bounds())
	if err != nil {
		// The log no longer holds the epoch (GC truncation, replica loss):
		// degrade to the container file, and record why even though the
		// failed query was fast.
		v.recordQueryFault(d.file.name, d.node.Path(), time.Since(start), "stage-truncated")
		fp, ferr := v.fallbackPieces(d.file.name, d.node.Path(), fileSpace, es)
		if ferr != nil {
			return fmt.Errorf("lowfive: reading %q staged: %w (file fallback: %v)", d.node.Path(), err, ferr)
		}
		v.qmu.Lock()
		v.qstats.FileFallbacks++
		v.qmu.Unlock()
		AssemblePiecesInto(dst, fileSpace, fp, es)
	} else {
		pieces := make([]Piece, len(chunks))
		for i, c := range chunks {
			pieces[i] = Piece{Box: c.Box, Data: c.Data}
		}
		AssemblePiecesInto(dst, fileSpace, pieces, es)
	}
	if staged {
		h5.ScatterSelected(data, memSpace, dst, es)
	}
	v.instruments()
	if v.mQueryLat != nil {
		v.mQueryLat.ObserveSince(start)
	}
	return nil
}

func (d *stageDataset) AttributeWrite(string, *h5.Datatype, *h5.Dataspace, []byte) error {
	return fmt.Errorf("lowfive: staged dataset %q is read-only", d.node.Path())
}

func (d *stageDataset) AttributeRead(name string) (*h5.Datatype, *h5.Dataspace, []byte, error) {
	a, ok := d.node.Attribute(name)
	if !ok {
		return nil, nil, nil, fmt.Errorf("lowfive: attribute %q not found on %q", name, d.node.Path())
	}
	return a.Type, a.Space, a.Data, nil
}

func (d *stageDataset) AttributeNames() ([]string, error) { return d.node.AttributeNames(), nil }

func (d *stageDataset) SetExtent([]int64) error {
	return fmt.Errorf("lowfive: staged dataset %q is read-only", d.node.Path())
}

func (d *stageDataset) Close() error { return nil }
