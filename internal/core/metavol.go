package core

import (
	"fmt"
	"path"
	"strings"
	"sync"

	"lowfive/h5"
)

// MetadataVOL is the middle VOL class (§III-A-b): it replicates the user's
// HDF5 hierarchy in memory, holding data triples per dataset, and can
// additionally pass operations through to a base connector (native file
// I/O) per file-name pattern.
//
// A fresh MetadataVOL keeps every file in memory only. Use SetPassthru /
// SetMemory with glob patterns to choose per file, and SetZeroCopy to make
// matching datasets store shallow references instead of deep copies.
//
// Instances are per-process (per-rank) and not safe for concurrent use,
// matching the single-threaded MPI rank model.
type MetadataVOL struct {
	base h5.Connector

	// filesMu guards the files map: with asynchronous serving, a background
	// serve goroutine looks files up while the application creates the next
	// timestep's file.
	filesMu sync.Mutex
	files   map[string]*FileNode

	memory   []patternFlag
	passthru []patternFlag
	zeroCopy []dsetPattern
}

type patternFlag struct {
	pat string
	on  bool
}

type dsetPattern struct {
	filePat string
	dsetPat string
}

// NewMetadataVOL builds a metadata VOL. base may be nil if no file is ever
// passed through to storage.
func NewMetadataVOL(base h5.Connector) *MetadataVOL {
	return &MetadataVOL{base: base, files: map[string]*FileNode{}, memory: []patternFlag{{"*", true}}}
}

// ConnectorName implements h5.Connector.
func (v *MetadataVOL) ConnectorName() string { return "lowfive-metadata" }

// SetMemory turns the in-memory metadata hierarchy on or off for files
// matching the glob pattern. Later settings take precedence.
func (v *MetadataVOL) SetMemory(filePat string, on bool) {
	v.memory = append(v.memory, patternFlag{filePat, on})
}

// SetPassthru turns base-connector (file) passthrough on or off for files
// matching the glob pattern. Later settings take precedence.
func (v *MetadataVOL) SetPassthru(filePat string, on bool) {
	v.passthru = append(v.passthru, patternFlag{filePat, on})
}

// SetZeroCopy makes datasets matching (file pattern, dataset-path pattern)
// store shallow references to user buffers rather than deep copies.
func (v *MetadataVOL) SetZeroCopy(filePat, dsetPat string) {
	v.zeroCopy = append(v.zeroCopy, dsetPattern{filePat, dsetPat})
}

func matchPattern(pat, name string) bool {
	ok, err := path.Match(pat, name)
	return err == nil && ok
}

func lastMatch(list []patternFlag, name string, def bool) bool {
	out := def
	for _, pf := range list {
		if matchPattern(pf.pat, name) {
			out = pf.on
		}
	}
	return out
}

// memoryOn reports whether the file is kept in memory.
func (v *MetadataVOL) memoryOn(name string) bool { return lastMatch(v.memory, name, false) }

// passthruOn reports whether the file is written through to the base.
func (v *MetadataVOL) passthruOn(name string) bool { return lastMatch(v.passthru, name, false) }

// matchDataset matches a pattern against a dataset path like
// "/group1/grid". path.Match's `*` never crosses a separator, so a pattern
// without one ("*", "grid*") is matched against the path's base name —
// making SetZeroCopy("*", "*") cover datasets inside groups, as intended —
// while a pattern containing a separator matches the full path.
func matchDataset(pat, dsetPath string) bool {
	if !strings.Contains(pat, "/") {
		return matchPattern(pat, path.Base(dsetPath))
	}
	return matchPattern(pat, dsetPath)
}

func (v *MetadataVOL) zeroCopyOn(fileName, dsetPath string) bool {
	for _, zp := range v.zeroCopy {
		if matchPattern(zp.filePat, fileName) && matchDataset(zp.dsetPat, dsetPath) {
			return true
		}
	}
	return false
}

// File returns the in-memory file node (for tools and tests).
func (v *MetadataVOL) File(name string) (*FileNode, bool) {
	v.filesMu.Lock()
	defer v.filesMu.Unlock()
	f, ok := v.files[name]
	return f, ok
}

// RemoveFile drops an in-memory file, releasing its data.
func (v *MetadataVOL) RemoveFile(name string) {
	v.filesMu.Lock()
	delete(v.files, name)
	v.filesMu.Unlock()
}

// FileNames lists the in-memory files.
func (v *MetadataVOL) FileNames() []string {
	v.filesMu.Lock()
	defer v.filesMu.Unlock()
	out := make([]string, 0, len(v.files))
	for n := range v.files {
		out = append(out, n)
	}
	return out
}

// putFile registers an in-memory file root.
func (v *MetadataVOL) putFile(name string, fn *FileNode) {
	v.filesMu.Lock()
	v.files[name] = fn
	v.filesMu.Unlock()
}

// FileCreate implements h5.Connector.
func (v *MetadataVOL) FileCreate(name string, fapl *h5.FileAccessProps) (h5.FileHandle, error) {
	mem := v.memoryOn(name)
	pass := v.passthruOn(name)
	if !mem && !pass {
		return nil, fmt.Errorf("lowfive: file %q matches neither memory nor passthru patterns", name)
	}
	mf := &metaFile{vol: v, name: name}
	if mem {
		fn := NewFileNode(name)
		v.putFile(name, fn)
		mf.node = fn.Node
	}
	if pass {
		if v.base == nil {
			return nil, fmt.Errorf("lowfive: passthru requested for %q but no base connector", name)
		}
		bh, err := v.base.FileCreate(name, fapl)
		if err != nil {
			return nil, err
		}
		mf.base = bh
	}
	return mf, nil
}

// FileOpen implements h5.Connector. An in-memory file (left behind by a
// previous create in this process) is preferred; otherwise the open passes
// through to the base connector.
func (v *MetadataVOL) FileOpen(name string, fapl *h5.FileAccessProps) (h5.FileHandle, error) {
	if fn, ok := v.File(name); ok && v.memoryOn(name) {
		return &metaFile{vol: v, name: name, node: fn.Node}, nil
	}
	if v.base != nil {
		bh, err := v.base.FileOpen(name, fapl)
		if err != nil {
			return nil, err
		}
		return &metaFile{vol: v, name: name, base: bh}, nil
	}
	return nil, fmt.Errorf("lowfive: file %q not in memory and no base connector", name)
}

// onFileClose is overridden by the distributed VOL (via the hook field on
// metaFile) — the base metadata VOL does nothing special at close.

// metaFile is the root handle; metaObject/metaDataset mirror child handles.
// Each holds the in-memory node (if the file is in memory) and the base
// handle (if the file passes through), applying every operation to both.
type metaFile struct {
	vol  *MetadataVOL
	name string
	node *Node         // nil when passthru-only
	base h5.FileHandle // nil when memory-only

	closeHook func(*metaFile) error // set by DistMetadataVOL
}

type metaObject struct {
	vol  *MetadataVOL
	file *metaFile
	node *Node
	base h5.ObjectHandle
}

type metaDataset struct {
	vol  *MetadataVOL
	file *metaFile
	node *Node
	base h5.DatasetHandle
}

func (f *metaFile) asObject() *metaObject {
	return &metaObject{vol: f.vol, file: f, node: f.node, base: f.base}
}

// --- group-level operations (shared by file root and groups) ---

func (o *metaObject) GroupCreate(name string) (h5.ObjectHandle, error) {
	child := &metaObject{vol: o.vol, file: o.file}
	if o.node != nil {
		g := NewGroupNode(name)
		if err := o.node.AddChild(g); err != nil {
			return nil, err
		}
		child.node = g
	}
	if o.base != nil {
		bg, err := o.base.GroupCreate(name)
		if err != nil {
			return nil, err
		}
		child.base = bg
	}
	return child, nil
}

func (o *metaObject) GroupOpen(name string) (h5.ObjectHandle, error) {
	child := &metaObject{vol: o.vol, file: o.file}
	if o.node != nil {
		g, ok := o.node.Child(name)
		if !ok || g.Kind != h5.KindGroup {
			return nil, fmt.Errorf("lowfive: group %q not found under %q", name, o.node.Path())
		}
		child.node = g
	}
	if o.base != nil {
		bg, err := o.base.GroupOpen(name)
		if err != nil {
			if o.node != nil {
				// Memory copy exists even though the base lacks it; serve from memory.
				child.base = nil
				return child, nil
			}
			return nil, err
		}
		child.base = bg
	}
	if child.node == nil && child.base == nil {
		return nil, fmt.Errorf("lowfive: group %q not found", name)
	}
	return child, nil
}

func (o *metaObject) DatasetCreate(name string, dt *h5.Datatype, space *h5.Dataspace) (h5.DatasetHandle, error) {
	ds := &metaDataset{vol: o.vol, file: o.file}
	if o.node != nil {
		n := NewDatasetNode(name, dt, space.Clone())
		if err := o.node.AddChild(n); err != nil {
			return nil, err
		}
		if o.vol.zeroCopyOn(o.file.name, n.Path()) {
			n.Ownership = OwnShallow
		}
		ds.node = n
	}
	if o.base != nil {
		bd, err := o.base.DatasetCreate(name, dt, space)
		if err != nil {
			return nil, err
		}
		ds.base = bd
	}
	return ds, nil
}

func (o *metaObject) DatasetOpen(name string) (h5.DatasetHandle, error) {
	ds := &metaDataset{vol: o.vol, file: o.file}
	if o.node != nil {
		n, ok := o.node.Child(name)
		if !ok || n.Kind != h5.KindDataset {
			return nil, fmt.Errorf("lowfive: dataset %q not found under %q", name, o.node.Path())
		}
		ds.node = n
	}
	if o.base != nil {
		bd, err := o.base.DatasetOpen(name)
		if err != nil {
			if o.node != nil {
				return ds, nil
			}
			return nil, err
		}
		ds.base = bd
	}
	if ds.node == nil && ds.base == nil {
		return nil, fmt.Errorf("lowfive: dataset %q not found", name)
	}
	return ds, nil
}

func (o *metaObject) Children() ([]h5.ObjectInfo, error) {
	if o.node != nil {
		var out []h5.ObjectInfo
		for _, c := range o.node.Children() {
			out = append(out, h5.ObjectInfo{Name: c.Name, Kind: c.Kind})
		}
		return out, nil
	}
	return o.base.Children()
}

func (o *metaObject) Delete(name string) error {
	if o.node != nil {
		if err := o.node.RemoveChild(name); err != nil {
			return err
		}
	}
	if o.base != nil {
		return o.base.Delete(name)
	}
	return nil
}

func (o *metaObject) AttributeWrite(name string, dt *h5.Datatype, space *h5.Dataspace, data []byte) error {
	if o.node != nil {
		// The VOL boundary contract says the caller keeps ownership of data;
		// this connector retains attributes in the tree, so it copies here.
		o.node.SetAttribute(&Attribute{Name: name, Type: dt, Space: space, Data: append([]byte(nil), data...)})
	}
	if o.base != nil {
		return o.base.AttributeWrite(name, dt, space, data)
	}
	return nil
}

func (o *metaObject) AttributeRead(name string) (*h5.Datatype, *h5.Dataspace, []byte, error) {
	if o.node != nil {
		a, ok := o.node.Attribute(name)
		if !ok {
			return nil, nil, nil, fmt.Errorf("lowfive: attribute %q not found on %q", name, o.node.Path())
		}
		return a.Type, a.Space, a.Data, nil
	}
	return o.base.AttributeRead(name)
}

func (o *metaObject) AttributeNames() ([]string, error) {
	if o.node != nil {
		return o.node.AttributeNames(), nil
	}
	return o.base.AttributeNames()
}

func (o *metaObject) Close() error {
	if o.base != nil {
		return o.base.Close()
	}
	return nil
}

// --- file handle ---

func (f *metaFile) GroupCreate(name string) (h5.ObjectHandle, error) {
	return f.asObject().GroupCreate(name)
}
func (f *metaFile) GroupOpen(name string) (h5.ObjectHandle, error) {
	return f.asObject().GroupOpen(name)
}
func (f *metaFile) DatasetCreate(name string, dt *h5.Datatype, space *h5.Dataspace) (h5.DatasetHandle, error) {
	return f.asObject().DatasetCreate(name, dt, space)
}
func (f *metaFile) DatasetOpen(name string) (h5.DatasetHandle, error) {
	return f.asObject().DatasetOpen(name)
}
func (f *metaFile) Children() ([]h5.ObjectInfo, error) { return f.asObject().Children() }
func (f *metaFile) Delete(name string) error           { return f.asObject().Delete(name) }
func (f *metaFile) AttributeWrite(name string, dt *h5.Datatype, space *h5.Dataspace, data []byte) error {
	return f.asObject().AttributeWrite(name, dt, space, data)
}
func (f *metaFile) AttributeRead(name string) (*h5.Datatype, *h5.Dataspace, []byte, error) {
	return f.asObject().AttributeRead(name)
}
func (f *metaFile) AttributeNames() ([]string, error) { return f.asObject().AttributeNames() }

// Close closes the base file (flushing it to storage) and fires the
// distributed close hook — the producer-side serve / consumer-side done
// signaling happens there.
func (f *metaFile) Close() error {
	var err error
	if f.base != nil {
		err = f.base.Close()
	}
	if f.closeHook != nil {
		if herr := f.closeHook(f); err == nil {
			err = herr
		}
	}
	return err
}

// --- dataset handle ---

func (d *metaDataset) Datatype() *h5.Datatype {
	if d.node != nil {
		return d.node.Type
	}
	return d.base.Datatype()
}

func (d *metaDataset) Dataspace() *h5.Dataspace {
	if d.node != nil {
		return d.node.Space.Clone().SelectAll()
	}
	return d.base.Dataspace()
}

func (d *metaDataset) Write(memSpace, fileSpace *h5.Dataspace, data []byte) error {
	if d.node != nil {
		if err := d.node.RecordWrite(memSpace, fileSpace, data); err != nil {
			return err
		}
	}
	if d.base != nil {
		return d.base.Write(memSpace, fileSpace, data)
	}
	return nil
}

func (d *metaDataset) Read(memSpace, fileSpace *h5.Dataspace, data []byte) error {
	if d.node != nil {
		if fileSpace == nil {
			fileSpace = d.node.Space.Clone().SelectAll()
		}
		packed, err := d.node.ReadPacked(fileSpace)
		if err != nil {
			return err
		}
		if memSpace == nil {
			copy(data, packed)
			return nil
		}
		h5.ScatterSelected(data, memSpace, packed, d.node.Type.Size)
		return nil
	}
	return d.base.Read(memSpace, fileSpace, data)
}

func (d *metaDataset) SetExtent(dims []int64) error {
	if d.node != nil {
		if err := d.node.Space.SetExtent(dims); err != nil {
			return err
		}
	}
	if d.base != nil {
		return d.base.SetExtent(dims)
	}
	return nil
}

func (d *metaDataset) AttributeWrite(name string, dt *h5.Datatype, space *h5.Dataspace, data []byte) error {
	if d.node != nil {
		// Caller keeps ownership of data (VOL boundary contract); the tree
		// retains the attribute, so copy at the retention point.
		d.node.SetAttribute(&Attribute{Name: name, Type: dt, Space: space, Data: append([]byte(nil), data...)})
	}
	if d.base != nil {
		return d.base.AttributeWrite(name, dt, space, data)
	}
	return nil
}

func (d *metaDataset) AttributeRead(name string) (*h5.Datatype, *h5.Dataspace, []byte, error) {
	if d.node != nil {
		a, ok := d.node.Attribute(name)
		if !ok {
			return nil, nil, nil, fmt.Errorf("lowfive: attribute %q not found on %q", name, d.node.Path())
		}
		return a.Type, a.Space, a.Data, nil
	}
	return d.base.AttributeRead(name)
}

func (d *metaDataset) AttributeNames() ([]string, error) {
	if d.node != nil {
		return d.node.AttributeNames(), nil
	}
	return d.base.AttributeNames()
}

func (d *metaDataset) Close() error {
	if d.base != nil {
		return d.base.Close()
	}
	return nil
}
