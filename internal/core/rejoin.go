package core

import (
	"fmt"
	"sort"
	"strings"

	"lowfive/h5"
	"lowfive/internal/grid"
	"lowfive/trace"
)

// Epoch-based recovery: a restarted producer rank rebuilds its in-memory
// metadata tree from the container file the previous incarnation wrote
// through passthru (the base connector doubles as the durable checkpoint
// store), reclaims the regions it owned, and re-runs the index exchange so
// the distributed index points at the fresh incarnation. Ownership comes
// from the __lf_own_<rank> root attributes persistOwnership recorded at
// serve time; a file without them (persistence off, or written before it
// was enabled) falls back to the canonical block decomposition, which
// over-claims at worst — serving file bytes for any region is value-correct
// because the container file holds the merged global state.

// ownPrefix is the root-attribute namespace persistOwnership writes into.
const ownPrefix = "__lf_own_"

// RejoinStats reports what one rank rebuilt during a Rejoin.
type RejoinStats struct {
	// Datasets is the number of datasets whose ownership this rank
	// reclaimed (datasets it re-published at least one region of).
	Datasets int
	// Entries is the number of region boxes re-published into the index.
	Entries int
	// Bytes is the data volume re-read from the container file.
	Bytes int64
	// Persisted reports whether exact persisted ownership was found;
	// false means the block-decomposition fallback was used.
	Persisted bool
}

// Reindex re-runs the collective index exchange (Alg. 1) for a file already
// in memory, rebuilding every rank's index shard and re-replicating entries
// whose replica set lost a member. Collective over the local task.
func (v *DistMetadataVOL) Reindex(name string) error {
	fn, ok := v.File(name)
	if !ok {
		return fmt.Errorf("lowfive: Reindex(%q): file not in memory", name)
	}
	if tr := v.track(); tr != nil {
		t0 := tr.Begin()
		defer func() { tr.End(t0, "core", "vol.reindex", trace.Str("file", name)) }()
	}
	return v.buildIndex(fn)
}

// Rejoin rebuilds this rank's metadata tree for a passthru file from the
// container on storage, reclaims the regions this rank owns, registers the
// file in memory, and Reindexes it. Collective over the local task (every
// rank of a restarted task must call it for the same file). Returns what
// was rebuilt.
func (v *DistMetadataVOL) Rejoin(name string) (RejoinStats, error) {
	st, err := v.rejoinLocal(name)
	if err != nil {
		return st, err
	}
	if err := v.Reindex(name); err != nil {
		return st, err
	}
	return st, nil
}

// rejoinLocal is Rejoin without the collective index exchange: the
// container-file rebuild alone. Staging-mode recovery uses it as the
// low-watermark fallback — there is no distributed index to rebuild, so it
// must not block on a collective other ranks may never enter.
func (v *DistMetadataVOL) rejoinLocal(name string) (RejoinStats, error) {
	var st RejoinStats
	if v.base == nil {
		return st, fmt.Errorf("lowfive: Rejoin(%q): no base connector", name)
	}
	if !v.passthruOn(name) {
		return st, fmt.Errorf("lowfive: Rejoin(%q): file is not passed through to storage", name)
	}
	bh, err := v.base.FileOpen(name, nil)
	if err != nil {
		return st, fmt.Errorf("lowfive: Rejoin(%q): %w", name, err)
	}
	defer bh.Close()

	rank := v.local.Rank()
	own, persisted, err := readOwnership(bh, rank)
	if err != nil {
		return st, err
	}
	st.Persisted = persisted

	fn := NewFileNode(name)
	if err := copyAttrs(bh, fn.Node); err != nil {
		return st, err
	}
	if err := v.rejoinChildren(bh, fn.Node, own, persisted, &st); err != nil {
		return st, err
	}
	v.putFile(name, fn)
	return st, nil
}

// readOwnership decodes this rank's persisted region list from the file
// root. persisted reports whether ANY rank's ownership attribute exists —
// if so, a missing attribute for this rank means it owned nothing, while a
// file with none at all signals the fallback decomposition.
func readOwnership(bh h5.FileHandle, rank int) (own map[string][]grid.Box, persisted bool, err error) {
	names, err := bh.AttributeNames()
	if err != nil {
		return nil, false, err
	}
	var blob []byte
	mine := fmt.Sprintf("%s%d", ownPrefix, rank)
	for _, n := range names {
		if !strings.HasPrefix(n, ownPrefix) {
			continue
		}
		persisted = true
		if n == mine {
			if _, _, data, aerr := bh.AttributeRead(n); aerr == nil {
				blob = data
			}
		}
	}
	if len(blob) == 0 {
		return nil, persisted, nil
	}
	own = map[string][]grid.Box{}
	d := &h5.Decoder{Buf: blob}
	for d.Err == nil && d.Pos < len(d.Buf) {
		path := d.String()
		n := d.I64()
		if d.Err != nil || n < 0 {
			break
		}
		for k := int64(0); k < n && d.Err == nil; k++ {
			b := decodeBox(d)
			if !b.IsEmpty() {
				own[path] = append(own[path], b)
			}
		}
	}
	if d.Err != nil {
		return nil, persisted, fmt.Errorf("lowfive: corrupt ownership attribute %q: %w", mine, d.Err)
	}
	return own, persisted, nil
}

// rejoinChildren walks the container hierarchy under src, mirroring it into
// dst and reclaiming this rank's regions of every dataset.
func (v *DistMetadataVOL) rejoinChildren(src h5.ObjectHandle, dst *Node, own map[string][]grid.Box, persisted bool, st *RejoinStats) error {
	kids, err := src.Children()
	if err != nil {
		return err
	}
	for _, ci := range kids {
		switch ci.Kind {
		case h5.KindGroup:
			gh, err := src.GroupOpen(ci.Name)
			if err != nil {
				return err
			}
			gn := NewGroupNode(ci.Name)
			if err := copyAttrs(gh, gn); err == nil {
				err = dst.AddChild(gn)
			}
			if err == nil {
				err = v.rejoinChildren(gh, gn, own, persisted, st)
			}
			gh.Close()
			if err != nil {
				return err
			}
		case h5.KindDataset:
			if err := v.rejoinDataset(src, dst, ci.Name, own, persisted, st); err != nil {
				return err
			}
		}
	}
	return nil
}

// rejoinDataset mirrors one dataset node and re-reads the regions this rank
// owns, re-recording them as write triples so the rebuilt index and serve
// sessions see them exactly as first-incarnation writes.
func (v *DistMetadataVOL) rejoinDataset(parent h5.ObjectHandle, dst *Node, name string, own map[string][]grid.Box, persisted bool, st *RejoinStats) error {
	dh, err := parent.DatasetOpen(name)
	if err != nil {
		return err
	}
	defer dh.Close()
	dims := dh.Dataspace().Dims()
	node := NewDatasetNode(name, dh.Datatype(), h5.NewSimple(dims...))
	if err := copyAttrs(dh, node); err != nil {
		return err
	}
	if err := dst.AddChild(node); err != nil {
		return err
	}
	var boxes []grid.Box
	if persisted {
		boxes = own[node.Path()]
	} else {
		// No persisted ownership: reclaim this rank's block of the
		// canonical decomposition — the same tiling the index uses — which
		// covers the full extent across the task and is idempotent across
		// restarts.
		dc := grid.CommonDecomposition(dims, v.local.Size())
		if r := v.local.Rank(); r < dc.NumBlocks() {
			if b := dc.Block(r); !b.IsEmpty() {
				boxes = []grid.Box{b}
			}
		}
	}
	es := int64(node.Type.Size)
	for _, b := range boxes {
		sel := h5.NewSimple(dims...)
		if err := sel.SelectBox(h5.SelectSet, b); err != nil {
			return err
		}
		data := make([]byte, b.NumPoints()*es)
		if err := dh.Read(nil, sel, data); err != nil {
			return err
		}
		if err := node.RecordWrite(nil, sel, data); err != nil {
			return err
		}
		st.Entries++
		st.Bytes += int64(len(data))
	}
	if len(boxes) > 0 {
		st.Datasets++
	}
	return nil
}

// copyAttrs mirrors an object's attributes into a tree node, skipping the
// ownership bookkeeping namespace.
func copyAttrs(src h5.AttrOps, dst *Node) error {
	names, err := src.AttributeNames()
	if err != nil {
		return err
	}
	sort.Strings(names)
	for _, an := range names {
		if strings.HasPrefix(an, ownPrefix) {
			continue
		}
		dt, sp, data, err := src.AttributeRead(an)
		if err != nil {
			return err
		}
		dst.SetAttribute(&Attribute{Name: an, Type: dt, Space: sp, Data: append([]byte(nil), data...)})
	}
	return nil
}
