package core

import (
	"sync"
	"time"

	"lowfive/internal/rpc"
	"lowfive/mpi"
	"lowfive/trace"
)

// Tail-latency defense for queries that more than one producer rank can
// answer (metadata opens, and box queries across index replicas). The
// consumer tracks a response-time EWMA per producer rank; a query to a rank
// whose EWMA marks it a straggler is proactively demoted — re-routed to the
// healthiest replica before the straggler's timeout is paid, with the
// straggler kept as the hedge so its recovery is still observed. Queries to
// healthy ranks go out hedged (rpc.CallHedged): if the primary misses the
// hedge delay, a replica races it and the first answer wins.

// rankHealth holds per-producer-rank response-time EWMAs for one
// intercommunicator. Samples mix observed service times with censored
// penalties for ranks that failed to answer; the smoothing factor of 1/2
// adapts within a couple of queries, which is the horizon that matters when
// a partition opens mid-exchange.
type rankHealth struct {
	mu      sync.Mutex
	ewma    []time.Duration
	samples []int
}

func newRankHealth(n int) *rankHealth {
	return &rankHealth{ewma: make([]time.Duration, n), samples: make([]int, n)}
}

// observe folds one response-time sample into a rank's EWMA.
func (h *rankHealth) observe(rank int, d time.Duration) {
	if d <= 0 {
		d = time.Nanosecond
	}
	h.mu.Lock()
	if h.ewma[rank] == 0 {
		h.ewma[rank] = d
	} else {
		h.ewma[rank] = (h.ewma[rank] + d) / 2
	}
	h.samples[rank]++
	h.mu.Unlock()
}

// penalize records a censored sample for a rank that spent d without
// answering (the hedge or a replica won, or the call failed): its true
// service time is unknown but at least d, so it is charged double.
func (h *rankHealth) penalize(rank int, d time.Duration) {
	h.observe(rank, 2*d)
}

// route picks the primary and hedge ranks for a query whose candidate
// answerers are (owner+k) mod n for k < repl. The owner stays primary
// unless its EWMA marks it a straggler — at least the floor (queries
// faster than the hedge delay never need demotion), at least three times
// the best other candidate, and backed by at least two samples (a single
// slow sample is usually the exchange's cold start, not a link fault) —
// in which case the healthiest candidate becomes primary and the demoted
// owner the hedge, so its recovery is still probed. A candidate that has
// never been sampled is unknown, not infinitely fast: it can be hedged to,
// but nobody is demoted in its favor. demoted reports whether the owner
// lost its slot.
func (h *rankHealth) route(owner, repl, n int, floor time.Duration) (primary, hedge int, demoted bool) {
	if repl > n {
		repl = n
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	best, bestEwma := -1, time.Duration(0)
	for k := 1; k < repl; k++ {
		c := (owner + k) % n
		if best == -1 || h.ewma[c] < bestEwma {
			best, bestEwma = c, h.ewma[c]
		}
	}
	if best == -1 {
		return owner, owner, false // no replicas: nothing to route to
	}
	e := h.ewma[owner]
	if e >= floor && floor > 0 && h.samples[owner] >= 2 && bestEwma > 0 && e >= 3*bestEwma {
		return best, owner, true
	}
	return owner, best, false
}

// healthFor returns (creating on first use) the EWMA tracker for an
// intercommunicator's producer ranks.
func (v *DistMetadataVOL) healthFor(ic *mpi.Intercomm) *rankHealth {
	v.qmu.Lock()
	defer v.qmu.Unlock()
	if v.health == nil {
		v.health = map[*mpi.Intercomm]*rankHealth{}
	}
	h, ok := v.health[ic]
	if !ok {
		h = newRankHealth(ic.RemoteSize())
		v.health[ic] = h
	}
	return h
}

// hedging reports whether query hedging is enabled: it needs a hedge delay,
// bounded attempts, and more than one rank able to answer.
func (v *DistMetadataVOL) hedging() bool {
	return v != nil && v.HedgeDelay > 0 && v.CallTimeout > 0 && v.ReplicationFactor > 1
}

// hedgeWait is the effective hedge delay of a client (mirroring the rpc
// default when HedgeDelay is unset).
func hedgeWait(client *rpc.Client) time.Duration {
	if client.HedgeDelay > 0 {
		return client.HedgeDelay
	}
	return client.Timeout / 4
}

// hedgedCall issues one query with the full tail-latency defense: EWMA
// routing (with straggler demotion), then a hedged call racing the chosen
// primary against the chosen hedge. Response times feed back into the
// EWMAs — a winner is credited its service time, a loser charged a
// censored penalty — so a rank that stops answering is demoted within a
// couple of queries and a healed one earns its slot back through hedge
// probes.
func (v *DistMetadataVOL) hedgedCall(client *rpc.Client, ic *mpi.Intercomm, owner, repl, n int, req []byte) ([]byte, error) {
	h := v.healthFor(ic)
	primary, hedge, demoted := h.route(owner, repl, n, hedgeWait(client))
	if demoted {
		v.qmu.Lock()
		v.qstats.StragglersDemoted++
		v.qmu.Unlock()
		v.instruments()
		v.mDemotions.Inc()
		if tr := v.track(); tr != nil {
			tr.Instant("core", "query.demote",
				trace.I64("owner", int64(owner)), trace.I64("primary", int64(primary)))
		}
	}
	t0 := time.Now()
	resp, winner, err := client.CallHedged(primary, hedge, req)
	elapsed := time.Since(t0)
	if err != nil {
		h.penalize(primary, elapsed)
		return nil, err
	}
	if winner == primary {
		h.observe(primary, elapsed)
	} else {
		// The hedge answered first. Its own service time excludes the hedge
		// delay spent waiting on the primary.
		d := elapsed - hedgeWait(client)
		if d < time.Millisecond {
			d = time.Millisecond
		}
		h.observe(winner, d)
		if d >= hedgeWait(client) {
			// The winner was slow too: the delay was shared (a cold start,
			// congestion), not the primary's own fault — charge the primary
			// what was seen, without the censoring multiplier.
			h.observe(primary, elapsed)
		} else {
			// A fast winner proves the path was healthy while the primary
			// had the whole hedge window and stayed silent: a censored
			// penalty.
			h.penalize(primary, elapsed)
		}
	}
	return resp, nil
}
