package core_test

import (
	"bytes"
	"testing"

	"lowfive/h5"
	"lowfive/internal/core"
	"lowfive/internal/native"
	"lowfive/internal/pfs"
)

func TestMetaVOLPassthruAndMemoryCombined(t *testing.T) {
	fs := pfs.NewZeroCost()
	base := native.New(native.PFSBackend(fs))
	vol := core.NewMetadataVOL(base)
	vol.SetPassthru("*", true) // memory "*" is on by default: both modes
	fapl := h5.NewFileAccessProps(vol)

	f, err := h5.CreateFile("both.h5", fapl)
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := f.CreateDataset("d", h5.U32, h5.NewSimple(4))
	ds.Write(nil, nil, h5.Bytes([]uint32{1, 2, 3, 4}))
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// The file must exist on "disk" and be readable via the base connector
	// directly.
	bf, err := h5.OpenFile("both.h5", h5.NewFileAccessProps(base))
	if err != nil {
		t.Fatal(err)
	}
	bds, err := bf.OpenDataset("d")
	if err != nil {
		t.Fatal(err)
	}
	out := make([]uint32, 4)
	if err := bds.Read(nil, nil, h5.Bytes(out)); err != nil {
		t.Fatal(err)
	}
	if out[3] != 4 {
		t.Errorf("file passthrough data %v", out)
	}
	// And it is also still in memory.
	if _, ok := vol.File("both.h5"); !ok {
		t.Error("file should also be in memory")
	}
}

func TestMetaVOLPassthruOnlyReadsFromBase(t *testing.T) {
	fs := pfs.NewZeroCost()
	base := native.New(native.PFSBackend(fs))
	vol := core.NewMetadataVOL(base)
	vol.SetMemory("*", false)
	vol.SetPassthru("*", true)
	fapl := h5.NewFileAccessProps(vol)

	f, _ := h5.CreateFile("disk.h5", fapl)
	ds, _ := f.CreateDataset("d", h5.U8, h5.NewSimple(2))
	ds.Write(nil, nil, []byte{5, 6})
	f.Close()
	if _, ok := vol.File("disk.h5"); ok {
		t.Error("memory-off file should not be in the tree")
	}

	f2, err := h5.OpenFile("disk.h5", fapl)
	if err != nil {
		t.Fatal(err)
	}
	ds2, _ := f2.OpenDataset("d")
	out := make([]byte, 2)
	ds2.Read(nil, nil, out)
	if !bytes.Equal(out, []byte{5, 6}) {
		t.Errorf("got %v", out)
	}
}
